// Paperscale benchmarks: the paper's real 2,320,895-user / >60M-link
// scale, end to end on the compact CSR substrate. Each stage is one
// BenchmarkPaperscale* entry - generate, persist, load, attack, risk -
// reporting its wall time as ns/op and the process RSS high-water mark
// after the stage as rss_mb. The stages share one pipeline (later stages
// reuse earlier artifacts; running one stage alone computes its
// prerequisites untimed), so
//
//	PAPERSCALE=1 go test -run '^$' -bench Paperscale -benchtime 1x -v .
//
// reproduces the EXPERIMENTS.md "paper scale" table in one pass. Without
// PAPERSCALE set the benchmarks skip: they need ~14 GB of RAM and several
// minutes, which has no place in the default bench sweep. The committed
// numbers live in BENCH_5.json; the benchdiff gate tolerates the entries
// being absent from uninstrumented runs.
//
// TestPaperscaleSmoke is the permanently-on miniature: the same
// generate -> stream -> persist -> load -> attack -> risk pipeline at
// 3000 users, asserting backend equivalence at every step. `make verify`
// runs it unless SKIP_PAPERSCALE=1.
package bench

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"

	"github.com/hinpriv/dehin/internal/anonymize"
	"github.com/hinpriv/dehin/internal/dehin"
	"github.com/hinpriv/dehin/internal/hin"
	"github.com/hinpriv/dehin/internal/randx"
	"github.com/hinpriv/dehin/internal/risk"
	"github.com/hinpriv/dehin/internal/tqq"
)

// paperscaleUsers is the paper's reported t.qq crawl size (Section 6:
// 2,320,895 users). With the calibrated generator defaults this yields
// >60M typed links, matching the reported scale.
const paperscaleUsers = 2320895

func paperscaleGate(b *testing.B) {
	b.Helper()
	if os.Getenv("PAPERSCALE") == "" {
		b.Skip("set PAPERSCALE=1 to run the 2.3M-user paperscale pipeline")
	}
}

// rssMB reads the process's current resident set size from
// /proc/self/status, in MiB. Returns 0 when the file or field is
// unavailable (non-Linux), so the metric degrades to absent rather than
// failing the run.
func rssMB() float64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(line, "VmRSS:"); ok {
			fields := strings.Fields(rest)
			if len(fields) >= 1 {
				kb, err := strconv.ParseInt(fields[0], 10, 64)
				if err == nil {
					return float64(kb) / 1024
				}
			}
		}
	}
	return 0
}

// psState carries the paperscale pipeline's shared artifacts across the
// stage benchmarks.
var psState struct {
	mu   sync.Mutex
	ds   *tqq.Dataset
	path string // CSR file, persisted once
	file *hin.CSRFile
}

func psConfig() tqq.Config {
	cfg := tqq.DefaultConfig(paperscaleUsers, 1)
	cfg.Communities = []tqq.CommunitySpec{{Size: 1000, Density: 0.01}}
	return cfg
}

// psDataset returns the generated 2.3M-user dataset, generating it
// (untimed from the caller's perspective unless the caller is
// BenchmarkPaperscaleGenerate itself) at most once per process.
func psDataset(b *testing.B) *tqq.Dataset {
	b.Helper()
	psState.mu.Lock()
	defer psState.mu.Unlock()
	if psState.ds == nil {
		ds, err := tqq.Generate(psConfig())
		if err != nil {
			b.Fatal(err)
		}
		psState.ds = ds
	}
	return psState.ds
}

// psFile returns the persisted-and-reloaded CSR graph, building the file
// at most once per process.
func psFile(b *testing.B) *hin.CSRFile {
	ds := psDataset(b)
	psState.mu.Lock()
	defer psState.mu.Unlock()
	if psState.file == nil {
		path := filepath.Join(b.TempDir(), "paperscale.hincsr")
		if err := hin.WriteCSRFile(path, ds.Graph); err != nil {
			b.Fatal(err)
		}
		cf, err := hin.OpenCSRFile(path)
		if err != nil {
			b.Fatal(err)
		}
		psState.path, psState.file = path, cf
	}
	return psState.file
}

// BenchmarkPaperscaleGenerate synthesizes the full 2,320,895-user
// auxiliary network with one planted 1000-user community.
func BenchmarkPaperscaleGenerate(b *testing.B) {
	paperscaleGate(b)
	for i := 0; i < b.N; i++ {
		ds, err := tqq.Generate(psConfig())
		if err != nil {
			b.Fatal(err)
		}
		psState.mu.Lock()
		psState.ds = ds
		psState.mu.Unlock()
		if i == 0 {
			b.ReportMetric(float64(ds.Graph.NumEntities()), "users")
			b.ReportMetric(float64(ds.Graph.NumEdgesTotal()), "edges")
		}
	}
	b.ReportMetric(rssMB(), "rss_mb")
}

// BenchmarkPaperscalePersist streams the in-memory graph into the
// on-disk CSR format (varint adjacency, interned attributes, checksummed
// sections).
func BenchmarkPaperscalePersist(b *testing.B) {
	paperscaleGate(b)
	ds := psDataset(b)
	dir := b.TempDir()
	b.ResetTimer()
	var path string
	for i := 0; i < b.N; i++ {
		path = filepath.Join(dir, "persist.hincsr")
		if err := hin.WriteCSRFile(path, ds.Graph); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if st, err := os.Stat(path); err == nil {
		b.ReportMetric(float64(st.Size())/(1<<20), "file_mb")
	}
	b.ReportMetric(rssMB(), "rss_mb")
	os.Remove(path)
}

// BenchmarkPaperscaleLoad mmaps and fully validates the persisted file
// (magic, checksum, and a strict decode of all >60M adjacency entries -
// the price of a trusting zero-alloc hot path).
func BenchmarkPaperscaleLoad(b *testing.B) {
	paperscaleGate(b)
	psFile(b) // ensure the file exists; also caches the handle for later stages
	psState.mu.Lock()
	path := psState.path
	psState.mu.Unlock()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cf, err := hin.OpenCSRFile(path)
		if err != nil {
			b.Fatal(err)
		}
		if cf.Graph().NumEntities() != paperscaleUsers {
			b.Fatalf("loaded %d entities", cf.Graph().NumEntities())
		}
		if err := cf.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(rssMB(), "rss_mb")
}

// BenchmarkPaperscaleAttack runs the full DeHIN attack - profile index
// over all 2.3M auxiliary users, degree signature, then de-anonymizing
// every user of a released 1000-user community target - with the
// auxiliary network on the loaded CSR backend.
func BenchmarkPaperscaleAttack(b *testing.B) {
	paperscaleGate(b)
	ds := psDataset(b)
	aux := psFile(b).Graph()
	tgt, err := tqq.CommunityTarget(ds, 0, randx.New(11))
	if err != nil {
		b.Fatal(err)
	}
	anon, err := anonymize.RandomizeIDs(tgt.Graph, 12)
	if err != nil {
		b.Fatal(err)
	}
	truth := make([]hin.EntityID, len(anon.ToOrig))
	for i, t0 := range anon.ToOrig {
		truth[i] = tgt.Orig[t0]
	}
	target := hin.FromGraph(anon.Graph)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := dehin.NewAttack(aux, dehin.Config{
			MaxDistance: 2,
			Profile:     dehin.TQQProfile(),
			UseIndex:    true,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := a.Run(target, truth)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Precision*100, "precision_pct")
			b.ReportMetric(res.ReductionRate*100, "reduction_pct")
		}
	}
	b.StopTimer()
	b.ReportMetric(rssMB(), "rss_mb")
}

// BenchmarkPaperscaleRisk computes the dataset privacy risk (distance 1,
// all four link types, tag-count attribute - the Section 6.1 setting)
// over the CSR backend, decoding all >60M adjacency entries per pass.
func BenchmarkPaperscaleRisk(b *testing.B) {
	paperscaleGate(b)
	g := psFile(b).Graph()
	s := g.Schema()
	lts := make([]hin.LinkTypeID, s.NumLinkTypes())
	for i := range lts {
		lts[i] = hin.LinkTypeID(i)
	}
	cfg := risk.SignatureConfig{
		MaxDistance: 1,
		LinkTypes:   lts,
		EntityAttrs: []int{tqq.AttrNumTags},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := risk.NetworkRisk(g, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r*100, "risk_pct")
		}
	}
	b.StopTimer()
	b.ReportMetric(rssMB(), "rss_mb")
}

// TestPaperscaleSmoke is the scaled-down always-on pipeline: generate,
// stream through the bounded-RSS CSRWriter, persist, reload, attack, and
// measure risk - asserting at each step that the compact backend agrees
// with the in-memory one. `make verify` runs it unless SKIP_PAPERSCALE=1.
func TestPaperscaleSmoke(t *testing.T) {
	cfg := tqq.DefaultConfig(3000, 21)
	cfg.Communities = []tqq.CommunitySpec{{Size: 200, Density: 0.01}}
	ds, err := tqq.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := ds.Graph

	// Stream every entity and edge through the spill-file builder, exactly
	// as an out-of-core ingest would.
	path := filepath.Join(t.TempDir(), "smoke.hincsr")
	w, err := hin.NewCSRWriter(g.Schema(), path)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumEntities(); v++ {
		id := hin.EntityID(v)
		w.AddEntity(g.EntityType(id), g.Label(id), g.Attrs(id)...)
		for _, name := range g.SetNames() {
			if s := g.Set(name, id); len(s) > 0 {
				w.SetSet(name, id, s)
			}
		}
	}
	for lt := 0; lt < g.Schema().NumLinkTypes(); lt++ {
		for v := 0; v < g.NumEntities(); v++ {
			tos, ws := g.OutEdges(hin.LinkTypeID(lt), hin.EntityID(v))
			for i, to := range tos {
				if err := w.AddEdge(hin.LinkTypeID(lt), hin.EntityID(v), to, ws[i]); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := w.Finalize(); err != nil {
		t.Fatal(err)
	}

	cf, err := hin.OpenCSRFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	aux := cf.Graph()
	if aux.NumEntities() != g.NumEntities() || aux.NumEdgesTotal() != g.NumEdgesTotal() {
		t.Fatalf("reloaded %d entities / %d edges, want %d / %d",
			aux.NumEntities(), aux.NumEdgesTotal(), g.NumEntities(), g.NumEdgesTotal())
	}

	// Attack a released community target on both backends; outcomes must
	// be identical.
	tgt, err := tqq.CommunityTarget(ds, 0, randx.New(5))
	if err != nil {
		t.Fatal(err)
	}
	anon, err := anonymize.RandomizeIDs(tgt.Graph, 6)
	if err != nil {
		t.Fatal(err)
	}
	truth := make([]hin.EntityID, len(anon.ToOrig))
	for i, t0 := range anon.ToOrig {
		truth[i] = tgt.Orig[t0]
	}
	attCfg := dehin.Config{MaxDistance: 2, Profile: dehin.TQQProfile(), UseIndex: true}
	aCSR, err := dehin.NewAttack(aux, attCfg)
	if err != nil {
		t.Fatal(err)
	}
	aMem, err := dehin.NewAttack(g, attCfg)
	if err != nil {
		t.Fatal(err)
	}
	rCSR, err := aCSR.Run(hin.FromGraph(anon.Graph), truth)
	if err != nil {
		t.Fatal(err)
	}
	rMem, err := aMem.Run(anon.Graph, truth)
	if err != nil {
		t.Fatal(err)
	}
	if rCSR.Precision != rMem.Precision || rCSR.ReductionRate != rMem.ReductionRate {
		t.Fatalf("attack fingerprints differ: csr %v/%v, mem %v/%v",
			rCSR.Precision, rCSR.ReductionRate, rMem.Precision, rMem.ReductionRate)
	}

	// Risk must agree across backends too.
	lts := make([]hin.LinkTypeID, g.Schema().NumLinkTypes())
	for i := range lts {
		lts[i] = hin.LinkTypeID(i)
	}
	rk := risk.SignatureConfig{MaxDistance: 2, LinkTypes: lts, EntityAttrs: []int{tqq.AttrNumTags}}
	riskCSR, err := risk.NetworkRisk(aux, rk)
	if err != nil {
		t.Fatal(err)
	}
	riskMem, err := risk.NetworkRisk(g, rk)
	if err != nil {
		t.Fatal(err)
	}
	if riskCSR != riskMem {
		t.Fatalf("risk differs across backends: csr %v, mem %v", riskCSR, riskMem)
	}
}

// BenchmarkDeanonymizeSingleCSR is BenchmarkDeanonymizeSingle with both
// graphs on the compact CSR backend: one steady-state distance-2 query
// decoding varint adjacency rows through the pooled frame cursors.
// allocs/op must stay 0 (the deterministic twin lives in internal/dehin's
// TestDeanonymizeSteadyStateZeroAllocCSR).
func BenchmarkDeanonymizeSingleCSR(b *testing.B) {
	w := bench(b)
	targets, err := w.Targets(len(w.Params.Densities) - 1)
	if err != nil {
		b.Fatal(err)
	}
	tg := hin.FromGraph(targets[0].Graph)
	aux := hin.FromGraph(w.Dataset.Graph)
	a, err := dehin.NewAttack(aux, dehin.Config{
		MaxDistance: 2,
		Profile:     dehin.TQQProfile(),
		UseIndex:    true,
	})
	if err != nil {
		b.Fatal(err)
	}
	n := tg.NumEntities()
	var dst []hin.EntityID
	for tv := 0; tv < n; tv++ { // warm the pooled scratch past its high-water mark
		dst = a.DeanonymizeAppend(dst[:0], tg, hin.EntityID(tv))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = a.DeanonymizeAppend(dst[:0], tg, hin.EntityID(i%n))
	}
}
