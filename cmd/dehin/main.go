// Command dehin runs the DeHIN de-anonymization attack against datasets on
// disk: an auxiliary dataset directory (the adversary's crawl) and a target
// dataset directory (the anonymized release), both in the tqqgen layout.
// Ground truth is matched by user label when -truth is set, enabling
// precision scoring; otherwise the attack reports candidate-set statistics
// only.
//
// Usage:
//
//	tqqgen -out data -users 20000 -communities 1000x0.01
//	dehin -aux data -community 0 -distance 2
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"
	"time"

	"github.com/hinpriv/dehin/internal/anonymize"
	"github.com/hinpriv/dehin/internal/dehin"
	"github.com/hinpriv/dehin/internal/hin"
	"github.com/hinpriv/dehin/internal/obs"
	"github.com/hinpriv/dehin/internal/obs/trace"
	"github.com/hinpriv/dehin/internal/randx"
	"github.com/hinpriv/dehin/internal/tqq"
)

// logger carries the command's levelled stderr output; fatalf routes
// through it so every diagnostic line shares one structured format.
var logger *obs.Logger

func main() {
	var (
		auxDir    = flag.String("aux", "", "auxiliary dataset directory (required)")
		community = flag.Int("community", 0, "planted community index to release as the target")
		distance  = flag.Int("distance", 1, "max distance of utilized neighbors")
		links     = flag.String("links", "", "comma-separated link types to utilize (default all)")
		reconfig  = flag.Bool("reconfigured", false, "remove majority-strength links first (Section 6.2)")
		fallback  = flag.Bool("fallback", false, "fall back to profile-only candidates when neighbor matching empties the set")
		seed      = flag.Uint64("seed", 1, "sampling/anonymization seed")
		par       = flag.Int("parallelism", 0, "attack parallelism (0 = all cores)")
		ranked    = flag.Int("ranked", 0, "also print the top-N ranked candidates for the first ambiguous target")
		metrics   = flag.String("metrics", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. :9090 or 127.0.0.1:0)")
		metDump   = flag.String("metrics-dump", "", "write a final JSON metrics snapshot to this file")
		traceOut  = flag.String("trace", "", "record a span timeline and write it as Chrome trace-event JSON (Perfetto/about://tracing) to this file")
		verbose   = flag.Bool("v", false, "debug-level progress logging on stderr")
	)
	flag.Parse()
	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	logger = obs.NewLogger(os.Stderr, level)
	if *auxDir == "" {
		fatalf("-aux is required")
	}
	ds, err := tqq.LoadDataset(*auxDir)
	if err != nil {
		fatalf("load aux: %v", err)
	}
	if len(ds.Communities) == 0 {
		fatalf("dataset has no planted communities; regenerate with tqqgen -communities")
	}
	tgt, err := tqq.CommunityTarget(ds, *community, randx.New(*seed))
	if err != nil {
		fatalf("sample target: %v", err)
	}
	anon, err := anonymize.RandomizeIDs(tgt.Graph, *seed+1)
	if err != nil {
		fatalf("anonymize: %v", err)
	}
	truth := make([]hin.EntityID, len(anon.ToOrig))
	for i, t0 := range anon.ToOrig {
		truth[i] = tgt.Orig[t0]
	}

	var reg *obs.Registry
	if *metrics != "" || *metDump != "" {
		reg = obs.New()
	}
	if *metrics != "" {
		ln, err := obs.Serve(*metrics, reg)
		if err != nil {
			fatalf("metrics listener: %v", err)
		}
		logger.Info("metrics endpoint up", "url", fmt.Sprintf("http://%s/metrics", ln.Addr()))
	}
	var tracer *trace.Tracer
	if *traceOut != "" {
		tracer = trace.New(trace.DefaultCapacity)
	}

	cfg := dehin.Config{
		MaxDistance:            *distance,
		Profile:                dehin.TQQProfile(),
		UseIndex:               true,
		RemoveMajorityStrength: *reconfig,
		FallbackProfileOnly:    *fallback,
		Parallelism:            *par,
		Metrics:                reg,
		Trace:                  tracer,
	}
	if *links != "" {
		for _, name := range strings.Split(*links, ",") {
			lt, ok := ds.Graph.Schema().LinkTypeID(strings.TrimSpace(name))
			if !ok {
				fatalf("unknown link type %q", name)
			}
			cfg.LinkTypes = append(cfg.LinkTypes, lt)
		}
	}
	attack, err := dehin.NewAttack(ds.Graph, cfg)
	if err != nil {
		fatalf("attack: %v", err)
	}
	start := time.Now()
	res, err := attack.Run(anon.Graph, truth)
	if err != nil {
		fatalf("run: %v", err)
	}
	elapsed := time.Since(start)

	report := dehin.NewReport(res)
	fmt.Printf("auxiliary users: %d   distance: %d\n", ds.Graph.NumEntities(), *distance)
	fmt.Print(report)
	fmt.Printf("effective anonymity after reduction: %d\n", report.EffectiveAnonymity())
	fmt.Printf("elapsed: %v\n", elapsed.Round(time.Millisecond))

	if *ranked > 0 {
		prepared, err := attack.PrepareTarget(anon.Graph)
		if err != nil {
			fatalf("prepare: %v", err)
		}
		for tv, o := range res.PerTarget {
			if o.Candidates <= 1 {
				continue
			}
			fmt.Printf("\nranked candidates for ambiguous target %q (|C|=%d):\n",
				anon.Graph.Label(hin.EntityID(tv)), o.Candidates)
			rc := attack.DeanonymizeRanked(prepared, hin.EntityID(tv))
			for i, c := range rc {
				if i == *ranked {
					break
				}
				marker := ""
				if c.Entity == truth[tv] {
					marker = "   <- true counterpart"
				}
				fmt.Printf("  %2d. %-12s score %.3f%s\n", i+1, ds.Graph.Label(c.Entity), c.Score, marker)
			}
			break
		}
	}

	if *metDump != "" {
		if err := reg.DumpJSON(*metDump); err != nil {
			fatalf("metrics dump: %v", err)
		}
		logger.Info("metrics snapshot written", "path", *metDump)
	}
	if *traceOut != "" {
		if err := tracer.DumpChromeTrace(*traceOut); err != nil {
			fatalf("trace dump: %v", err)
		}
		logger.Info("trace written", "path", *traceOut,
			"spans", tracer.Len(), "dropped", tracer.Dropped())
	}
}

func fatalf(format string, args ...any) {
	logger.Error(fmt.Sprintf(format, args...))
	os.Exit(1)
}
