// Command benchdump runs the repository's benchmarks and writes a
// machine-readable snapshot (name -> ns/op, allocs/op, B/op, and every
// custom ReportMetric value) so performance regressions show up as a JSON
// diff instead of a scroll through `go test -bench` output.
//
// Usage:
//
//	benchdump                            # all root benchmarks -> BENCH_1.json
//	benchdump -bench 'EndToEnd|Single' -out bench.json -benchtime 3x
//
// The command shells out to `go test -run ^$ -bench ... -benchmem` in the
// given package and parses the standard benchmark output format, so it
// needs the go toolchain on PATH (it is a development tool, not a library
// dependency).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
)

// Entry is one benchmark's parsed result. Metrics holds every reported
// unit beyond the timing triple (precision_pct, risk_fmcr_pct, ...).
type Entry struct {
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// The allocation pair is always emitted (benchdump passes -benchmem),
	// so a literal 0 is a measured zero, not a missing value.
	AllocsOp float64            `json:"allocs_per_op"`
	BytesOp  float64            `json:"bytes_per_op"`
	Metrics  map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	var (
		bench     = flag.String("bench", ".", "benchmark regexp passed to go test -bench")
		out       = flag.String("out", "BENCH_1.json", "output JSON path")
		benchtime = flag.String("benchtime", "", "go test -benchtime value (empty for default)")
		pkg       = flag.String("pkg", ".", "package pattern to benchmark")
		count     = flag.Int("count", 1, "go test -count value")
	)
	flag.Parse()

	args := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem",
		"-count", strconv.Itoa(*count)}
	if *benchtime != "" {
		args = append(args, "-benchtime", *benchtime)
	}
	args = append(args, *pkg)

	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	fmt.Print(string(raw))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdump: go %s: %v\n", strings.Join(args, " "), err)
		os.Exit(1)
	}

	results := parse(string(raw))
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchdump: no benchmark lines in output")
		os.Exit(1)
	}
	blob, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdump: %v\n", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchdump: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchdump: wrote %d benchmarks to %s\n", len(results), *out)
}

// parse extracts Benchmark lines from go test output. The format is
//
//	BenchmarkName-8   	 iterations	 value unit	 value unit ...
//
// with one value/unit pair per reported measurement. Repeated runs of the
// same benchmark (-count > 1) keep the last measurement.
func parse(output string) map[string]Entry {
	results := make(map[string]Entry)
	for _, line := range strings.Split(output, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		// Strip the -GOMAXPROCS suffix go test appends.
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		e := Entry{Iterations: iters, Metrics: make(map[string]float64)}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				e.NsPerOp = v
			case "allocs/op":
				e.AllocsOp = v
			case "B/op":
				e.BytesOp = v
			default:
				e.Metrics[unit] = v
			}
		}
		if len(e.Metrics) == 0 {
			e.Metrics = nil
		}
		results[name] = e
	}
	return results
}
