// Command benchdump runs the repository's benchmarks and writes a
// machine-readable snapshot (name -> ns/op, allocs/op, B/op, and every
// custom ReportMetric value) so performance regressions show up as a JSON
// diff instead of a scroll through `go test -bench` output. Compare two
// snapshots with cmd/benchdiff.
//
// Usage:
//
//	benchdump                            # all root benchmarks -> BENCH_1.json
//	benchdump -bench 'EndToEnd|Single' -out bench.json -benchtime 3x
//
// The command shells out to `go test -run ^$ -bench ... -benchmem` in the
// given package and parses the standard benchmark output format, so it
// needs the go toolchain on PATH (it is a development tool, not a library
// dependency).
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/exec"
	"strconv"
	"strings"

	"github.com/hinpriv/dehin/internal/benchjson"
	"github.com/hinpriv/dehin/internal/obs"
)

// logger carries the command's error reporting (stdout is reserved for
// the passthrough of go test's benchmark output).
var logger = obs.NewLogger(os.Stderr, slog.LevelInfo)

func main() {
	var (
		bench     = flag.String("bench", ".", "benchmark regexp passed to go test -bench")
		out       = flag.String("out", "BENCH_1.json", "output JSON path")
		benchtime = flag.String("benchtime", "", "go test -benchtime value (empty for default)")
		pkg       = flag.String("pkg", ".", "package pattern(s) to benchmark, space-separated")
		count     = flag.Int("count", 1, "go test -count value")
	)
	flag.Parse()

	args := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem",
		"-count", strconv.Itoa(*count)}
	if *benchtime != "" {
		args = append(args, "-benchtime", *benchtime)
	}
	args = append(args, strings.Fields(*pkg)...)

	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	fmt.Print(string(raw))
	if err != nil {
		logger.Error("go test failed", "args", strings.Join(args, " "), "err", err)
		os.Exit(1)
	}

	results := benchjson.Parse(string(raw))
	if len(results) == 0 {
		logger.Error("no benchmark lines in output")
		os.Exit(1)
	}
	if err := benchjson.Write(*out, results); err != nil {
		logger.Error("snapshot write failed", "err", err)
		os.Exit(1)
	}
	fmt.Printf("benchdump: wrote %d benchmarks to %s\n", len(results), *out)
}
