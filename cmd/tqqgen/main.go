// Command tqqgen generates a synthetic t.qq-style dataset and writes it to
// a directory in the KDD-Cup-like text layout (see internal/tqq).
//
// Usage:
//
//	tqqgen -out data/ -users 50000 -seed 1 \
//	       -communities 1000x0.01,1000x0.005
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strconv"
	"strings"

	"github.com/hinpriv/dehin/internal/hin"
	"github.com/hinpriv/dehin/internal/obs"
	"github.com/hinpriv/dehin/internal/tqq"
)

// logger carries the command's levelled stderr output; fatalf routes
// through it so every diagnostic line shares one structured format.
var logger *obs.Logger

func main() {
	var (
		out      = flag.String("out", "", "output directory (required)")
		users    = flag.Int("users", 10000, "number of users")
		seed     = flag.Uint64("seed", 1, "generator seed")
		comms    = flag.String("communities", "", "planted communities as SIZExDENSITY, comma-separated")
		grow     = flag.Bool("grow", false, "also write a grown auxiliary crawl under <out>/grown")
		graphOut = flag.String("graph-out", "", "also persist the graph as a compact CSR file at this path")
		dot      = flag.Bool("dot", false, "also write the target network schema as <out>/schema.dot")
		verbose  = flag.Bool("v", false, "debug-level generator progress logging on stderr")
	)
	flag.Parse()
	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	logger = obs.NewLogger(os.Stderr, level)
	if *out == "" {
		fatalf("-out is required")
	}
	cfg := tqq.DefaultConfig(*users, *seed)
	if *verbose {
		cfg.Log = logger
	}
	if *comms != "" {
		for _, part := range strings.Split(*comms, ",") {
			sz, den, err := parseCommunity(part)
			if err != nil {
				fatalf("%v", err)
			}
			cfg.Communities = append(cfg.Communities, tqq.CommunitySpec{Size: sz, Density: den})
		}
	}
	d, err := tqq.Generate(cfg)
	if err != nil {
		fatalf("generate: %v", err)
	}
	if err := tqq.WriteDataset(d, *out); err != nil {
		fatalf("write: %v", err)
	}
	den := "-"
	if v, err := hin.Density(d.Graph); err == nil {
		den = fmt.Sprintf("%.6f", v)
	}
	fmt.Printf("wrote %s: %d users, %d edges, density %s, %d communities, %d rec entries\n",
		*out, d.Graph.NumEntities(), d.Graph.NumEdgesTotal(), den, len(d.Communities), len(d.Rec))

	if *graphOut != "" {
		if err := hin.WriteCSRFile(*graphOut, d.Graph); err != nil {
			fatalf("graph-out: %v", err)
		}
		// Reopen to verify and report: the loader revalidates everything,
		// so a reported size is also a round-trip proof.
		cf, err := hin.OpenCSRFile(*graphOut)
		if err != nil {
			fatalf("graph-out reopen: %v", err)
		}
		st, err := os.Stat(*graphOut)
		if err != nil {
			fatalf("graph-out stat: %v", err)
		}
		fmt.Printf("wrote %s: %d entities, %d edges, %d bytes (CSR)\n",
			*graphOut, cf.Graph().NumEntities(), cf.Graph().NumEdgesTotal(), st.Size())
		if err := cf.Close(); err != nil {
			fatalf("graph-out close: %v", err)
		}
	}

	if *dot {
		f, err := os.Create(*out + "/schema.dot")
		if err != nil {
			fatalf("schema.dot: %v", err)
		}
		if err := hin.WriteSchemaDOT(f, d.Graph.Schema()); err != nil {
			f.Close()
			fatalf("schema.dot: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("schema.dot: %v", err)
		}
		fmt.Printf("wrote %s/schema.dot\n", *out)
	}

	if *grow {
		g, err := tqq.Grow(d, cfg, tqq.DefaultGrowth(*seed+1))
		if err != nil {
			fatalf("grow: %v", err)
		}
		dir := *out + "/grown"
		if err := tqq.WriteDataset(g, dir); err != nil {
			fatalf("write grown: %v", err)
		}
		fmt.Printf("wrote %s: %d users, %d edges\n", dir, g.Graph.NumEntities(), g.Graph.NumEdgesTotal())
	}
}

func parseCommunity(s string) (int, float64, error) {
	parts := strings.SplitN(strings.TrimSpace(s), "x", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("bad community %q, want SIZExDENSITY", s)
	}
	sz, err := strconv.Atoi(parts[0])
	if err != nil {
		return 0, 0, fmt.Errorf("bad community size %q: %v", parts[0], err)
	}
	den, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad community density %q: %v", parts[1], err)
	}
	return sz, den, nil
}

func fatalf(format string, args ...any) {
	logger.Error(fmt.Sprintf(format, args...))
	os.Exit(1)
}
