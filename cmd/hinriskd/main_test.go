package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/hinpriv/dehin/internal/hin"
	"github.com/hinpriv/dehin/internal/tqq"
)

var update = flag.Bool("update", false, "rewrite golden files")

// ageRE masks the wall-clock snapshot age in healthz bodies.
var ageRE = regexp.MustCompile(`"age_s":[0-9.eE+-]+`)

// TestMain lets the test binary impersonate the real command: re-executed
// with HINRISKD_RUN_MAIN=1 it runs main() on the given arguments, so the
// conformance suite exercises the true daemon (flag parsing, snapshot
// load, signal handling, HTTP stack) without a separate build step.
func TestMain(m *testing.M) {
	if os.Getenv("HINRISKD_RUN_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// fixtureUsers/fixtureSeed pin the conformance graph; tqq generation is
// byte-deterministic, so every response below is reproducible and the
// transcript can be a golden file.
const (
	fixtureUsers = 800
	fixtureSeed  = 11
)

// startDaemon launches hinriskd as a real subprocess on a free port and
// returns its base URL plus a shutdown func that SIGTERMs and waits.
func startDaemon(t *testing.T, args ...string) (string, func()) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "HINRISKD_RUN_MAIN=1")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	lines := make(chan string, 1)
	go func() {
		if sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	var line string
	select {
	case line = <-lines:
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("daemon did not announce its address\nstderr:\n%s", stderr.String())
	}
	base, ok := strings.CutPrefix(line, "listening ")
	if !ok {
		cmd.Process.Kill()
		t.Fatalf("unexpected announcement %q", line)
	}
	stop := func() {
		cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("daemon exit: %v\nstderr:\n%s", err, stderr.String())
			}
		case <-time.After(10 * time.Second):
			cmd.Process.Kill()
			t.Error("daemon did not exit on SIGTERM")
		}
	}
	return base, stop
}

func writeFixtureGraph(t *testing.T) (string, *hin.Graph) {
	t.Helper()
	ds, err := tqq.Generate(tqq.DefaultConfig(fixtureUsers, fixtureSeed))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "fixture.hincsr")
	if err := hin.WriteCSRFile(path, ds.Graph); err != nil {
		t.Fatal(err)
	}
	return path, ds.Graph
}

// apiCase is one conformance request. Body "" means GET; bodyFile loads a
// committed fixture from testdata.
type apiCase struct {
	name     string
	method   string
	path     string
	bodyFile string
	body     string // inline body; used when bodyFile is empty
	bodyNote string // transcript annotation for generated bodies
}

// TestAPIConformanceGolden drives every /v1 endpoint of a live daemon -
// happy paths, malformed bodies, unknown users, oversized k, snippet
// limit overflows, wrong methods, and a reload - and pins the full
// byte-exact transcript (status + body per request) as a golden file.
// Regenerate with: go test ./cmd/hinriskd -run Conformance -update
func TestAPIConformanceGolden(t *testing.T) {
	graphPath, g := writeFixtureGraph(t)

	if *update {
		writeSnippetFixtures(t, g)
	}

	base, stop := startDaemon(t, "-graph", graphPath, "-addr", "127.0.0.1:0")
	defer stop()

	oversized, err := json.Marshal(oversizedSnippet(300))
	if err != nil {
		t.Fatal(err)
	}
	cases := []apiCase{
		{name: "snapshot", method: "GET", path: "/v1/snapshot"},
		{name: "risk default distance", method: "GET", path: "/v1/risk?user=17"},
		{name: "risk distance 0", method: "GET", path: "/v1/risk?user=17&distance=0"},
		{name: "risk missing user", method: "GET", path: "/v1/risk"},
		{name: "risk malformed user", method: "GET", path: "/v1/risk?user=abc"},
		{name: "risk distance out of range", method: "GET", path: "/v1/risk?user=17&distance=9"},
		{name: "risk unknown user", method: "GET", path: "/v1/risk?user=99999"},
		{name: "topk", method: "GET", path: "/v1/topk?k=5&distance=2"},
		{name: "topk oversized k", method: "GET", path: "/v1/topk?k=5000"},
		{name: "topk non-positive k", method: "GET", path: "/v1/topk?k=-1"},
		{name: "dehin", method: "POST", path: "/v1/dehin", bodyFile: "dehin_happy.json"},
		{name: "dehin no links", method: "POST", path: "/v1/dehin", bodyFile: "dehin_profile_only.json"},
		{name: "dehin malformed body", method: "POST", path: "/v1/dehin", bodyFile: "dehin_malformed.json"},
		{name: "dehin unknown entity type", method: "POST", path: "/v1/dehin", bodyFile: "dehin_badtype.json"},
		{name: "dehin oversized snippet", method: "POST", path: "/v1/dehin",
			body: string(oversized), bodyNote: "(generated: 300-entity snippet)"},
		{name: "dehin wrong method", method: "GET", path: "/v1/dehin"},
		{name: "reload", method: "POST", path: "/v1/reload", body: "{}"},
		{name: "risk after reload", method: "GET", path: "/v1/risk?user=17"},
		{name: "healthz", method: "GET", path: "/v1/healthz"},
		{name: "debug requests disabled", method: "GET", path: "/debug/requests"},
	}

	var transcript bytes.Buffer
	for _, c := range cases {
		body := c.body
		note := c.bodyNote
		if c.bodyFile != "" {
			raw, err := os.ReadFile(filepath.Join("testdata", c.bodyFile))
			if err != nil {
				t.Fatalf("%s: missing fixture (regenerate with -update): %v", c.name, err)
			}
			body = string(raw)
			note = "<- testdata/" + c.bodyFile
		}
		var req *http.Request
		if c.method == "GET" {
			req, err = http.NewRequest("GET", base+c.path, nil)
		} else {
			req, err = http.NewRequest(c.method, base+c.path, strings.NewReader(body))
			if req != nil {
				req.Header.Set("Content-Type", "application/json")
			}
		}
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		respBody, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		fmt.Fprintf(&transcript, "=== %s: %s %s %s\nstatus %d\n%s\n",
			c.name, c.method, c.path, note, resp.StatusCode, respBody)
	}

	// The fixture lives in a per-run temp dir and the healthz age is wall
	// time; normalize both run-dependent tokens so the transcript is
	// stable.
	normalized := strings.ReplaceAll(transcript.String(), graphPath, "GRAPH")
	normalized = ageRE.ReplaceAllString(normalized, `"age_s":AGE`)

	golden := filepath.Join("testdata", "api_conformance.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(normalized), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if normalized != string(want) {
		t.Fatalf("transcript differs from %s\ngot:\n%s", golden, diffHint(normalized, string(want)))
	}
}

// writeSnippetFixtures derives the committed request fixtures from the
// deterministic fixture graph: a real user-42 neighborhood snippet, a
// profile-only snippet, and the two malformed bodies.
func writeSnippetFixtures(t *testing.T, g *hin.Graph) {
	t.Helper()
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(name string, data []byte) {
		if err := os.WriteFile(filepath.Join("testdata", name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	happy, err := json.MarshalIndent(snippetFromUser(g, 42), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	write("dehin_happy.json", append(happy, '\n'))
	profile, err := json.MarshalIndent(snippetFromUser(g, 7), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	var profileOnly map[string]any
	if err := json.Unmarshal(profile, &profileOnly); err != nil {
		t.Fatal(err)
	}
	delete(profileOnly, "links")
	if ents, ok := profileOnly["entities"].([]any); ok && len(ents) > 0 {
		profileOnly["entities"] = ents[:1]
	}
	po, err := json.MarshalIndent(profileOnly, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	write("dehin_profile_only.json", append(po, '\n'))
	write("dehin_malformed.json", []byte("{\"entities\": [ truncated\n"))
	write("dehin_badtype.json", []byte(`{"target":0,"entities":[{"type":"Robot","attrs":[1,2,3,4]}]}`+"\n"))
}

// snippet is the wire shape of a /v1/dehin request (mirrors the serve
// package's request types, spelled out here so the fixture writer does
// not reach into internal/serve).
type snippet struct {
	Target   int             `json:"target"`
	Entities []snippetEntity `json:"entities"`
	Links    []snippetLink   `json:"links,omitempty"`
}

type snippetEntity struct {
	Type  string  `json:"type"`
	Attrs []int64 `json:"attrs"`
}

type snippetLink struct {
	Type     string `json:"type"`
	From     int    `json:"from"`
	To       int    `json:"to"`
	Strength int32  `json:"strength,omitempty"`
}

func snippetFromUser(g *hin.Graph, u hin.EntityID) snippet {
	schema := g.Schema()
	req := snippet{Target: 0}
	ids := map[hin.EntityID]int{}
	addEntity := func(v hin.EntityID) int {
		if i, ok := ids[v]; ok {
			return i
		}
		i := len(req.Entities)
		ids[v] = i
		req.Entities = append(req.Entities, snippetEntity{
			Type:  schema.EntityType(g.EntityType(v)).Name,
			Attrs: g.Attrs(v),
		})
		return i
	}
	addEntity(u)
	for lt := 0; lt < schema.NumLinkTypes(); lt++ {
		tos, ws := g.OutEdges(hin.LinkTypeID(lt), u)
		for i, to := range tos {
			j := addEntity(to)
			req.Links = append(req.Links, snippetLink{
				Type: schema.LinkType(hin.LinkTypeID(lt)).Name,
				From: 0, To: j, Strength: ws[i],
			})
		}
	}
	return req
}

func oversizedSnippet(n int) snippet {
	s := snippet{}
	for i := 0; i < n; i++ {
		s.Entities = append(s.Entities, snippetEntity{Type: "User", Attrs: []int64{1980, 0, 1, 1}})
	}
	return s
}

// diffHint locates the first divergence for the failure message.
func diffHint(got, want string) string {
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	for i := 0; i < n; i++ {
		if got[i] != want[i] {
			lo := i - 80
			if lo < 0 {
				lo = 0
			}
			hi := i + 80
			if hi > len(got) {
				hi = len(got)
			}
			return fmt.Sprintf("first divergence at byte %d:\n...%s...", i, got[lo:hi])
		}
	}
	return fmt.Sprintf("length mismatch: got %d bytes, want %d", len(got), len(want))
}

// TestObservabilityFlags boots the daemon with the full opt-in
// observability surface — flight recorder at a 1ns threshold, runtime
// metrics at the floor interval — and checks the wiring end to end:
// captured requests on /debug/requests, runtime families on /metrics,
// and a SIGQUIT flight dump on stderr while the daemon keeps serving.
func TestObservabilityFlags(t *testing.T) {
	graphPath, _ := writeFixtureGraph(t)
	cmd := exec.Command(os.Args[0],
		"-graph", graphPath, "-addr", "127.0.0.1:0",
		"-flight", "8", "-flight-slow", "1ns", "-runtime-metrics", "100ms")
	cmd.Env = append(os.Environ(), "HINRISKD_RUN_MAIN=1")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("daemon exit: %v\nstderr:\n%s", err, stderr.String())
			}
		case <-time.After(10 * time.Second):
			cmd.Process.Kill()
			t.Error("daemon did not exit on SIGTERM")
		}
	}()
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no announcement\nstderr:\n%s", stderr.String())
	}
	base, ok := strings.CutPrefix(sc.Text(), "listening ")
	if !ok {
		t.Fatalf("unexpected announcement %q", sc.Text())
	}

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}

	// Every 200 is "slow" at 1ns, so the very first request is captured.
	if code, _ := get("/v1/risk?user=17"); code != 200 {
		t.Fatalf("risk = %d", code)
	}
	if code, _ := get("/v1/risk?user=99999"); code != 404 {
		t.Fatalf("unknown user = %d", code)
	}
	code, body := get("/debug/requests?format=json")
	if code != 200 {
		t.Fatalf("debug/requests = %d: %s", code, body)
	}
	var env struct {
		Captured int64 `json:"captured"`
		Total    int64 `json:"total"`
		Records  []struct {
			Path   string `json:"path"`
			Reason string `json:"reason"`
		} `json:"records"`
	}
	if err := json.Unmarshal([]byte(body), &env); err != nil {
		t.Fatalf("decoding %q: %v", body, err)
	}
	if env.Captured < 2 || env.Total < 2 || len(env.Records) < 2 {
		t.Fatalf("envelope = %+v", env)
	}

	// Runtime metric families appear on /metrics after the first tick.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, metrics := get("/metrics")
		if strings.Contains(metrics, "# TYPE runtime_goroutines gauge") &&
			strings.Contains(metrics, "# TYPE runtime_heap_live_bytes gauge") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("runtime families never appeared on /metrics:\n%s", metrics)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// SIGQUIT dumps the retained requests to stderr and keeps serving.
	cmd.Process.Signal(syscall.SIGQUIT)
	deadline = time.Now().Add(5 * time.Second)
	for !strings.Contains(stderr.String(), "flight recorder:") {
		if time.Now().After(deadline) {
			t.Fatalf("no flight dump after SIGQUIT\nstderr:\n%s", stderr.String())
		}
		time.Sleep(50 * time.Millisecond)
	}
	if code, _ := get("/v1/risk?user=17"); code != 200 {
		t.Fatalf("daemon stopped serving after SIGQUIT: %d", code)
	}
}
