// Command hinriskd serves privacy-risk and de-anonymization queries over
// an anonymized HIN snapshot (an HINCSR01 file) via HTTP/JSON:
//
//	GET  /v1/risk?user=U&distance=N   per-user risk (1/class size)
//	GET  /v1/topk?k=K&distance=N      most identifiable users
//	POST /v1/dehin                    run the DeHIN attack for a snippet
//	GET  /v1/snapshot                 current epoch and dataset risk
//	GET  /v1/healthz                  readiness: snapshot present + age
//	POST /v1/reload                   load a new snapshot file
//	GET  /metrics, /debug/...         the obs operational surface
//	GET  /debug/requests              flight recorder (-flight)
//
// Reads are lock-free (see internal/serve): queries answer from an
// immutable snapshot swapped atomically by /v1/reload or SIGHUP, and
// in-flight requests always finish on the epoch they started on.
//
// Observability is opt-in: -flight N retains the span trees of the last
// N slow (>= -flight-slow) or failed requests for /debug/requests and a
// SIGQUIT stderr dump; -runtime-metrics D polls runtime/metrics onto
// /metrics every D.
//
// Usage:
//
//	hinriskd -graph snapshot.hincsr -addr :8321
//	kill -HUP $(pidof hinriskd)    # re-load the same file in place
//	kill -QUIT $(pidof hinriskd)   # dump retained requests to stderr
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/hinpriv/dehin/internal/dehin"
	"github.com/hinpriv/dehin/internal/hin"
	"github.com/hinpriv/dehin/internal/obs"
	"github.com/hinpriv/dehin/internal/obs/trace"
	"github.com/hinpriv/dehin/internal/serve"
)

// logger is the command's structured stderr output (see internal/obs).
var logger = obs.NewLogger(os.Stderr, slog.LevelInfo)

func main() {
	var (
		graph    = flag.String("graph", "", "HINCSR01 snapshot file (required)")
		addr     = flag.String("addr", "127.0.0.1:8321", "listen address (host:0 picks a free port)")
		maxDist  = flag.Int("maxdistance", 2, "largest risk distance served; classes for 0..n are precomputed")
		atkDist  = flag.Int("attackdistance", 1, "neighborhood depth of /v1/dehin matching")
		attrs    = flag.String("attrs", "3", "comma-separated attr indices feeding distance-0 signatures")
		links    = flag.String("linktypes", "", "comma-separated link type ids to utilize (empty = all)")
		exact    = flag.String("exact", "0,1", "comma-separated exact-match profile attr indices")
		grow     = flag.String("grow", "2,3", "comma-separated growth-match profile attr indices")
		topkMax  = flag.Int("topk-max", 1000, "largest accepted /v1/topk k")
		inflight = flag.Int("inflight", 0, "max concurrent /v1/dehin attacks (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", 64, "max queued /v1/dehin requests before 429 (negative = none)")
		workers  = flag.Int("workers", 0, "snapshot build worker pool size (0 = GOMAXPROCS)")

		flightN    = flag.Int("flight", 0, "flight recorder capacity: retain the last N slow/failed request span trees (0 = off)")
		flightSlow = flag.Duration("flight-slow", 100*time.Millisecond, "flight recorder slow threshold; 2xx requests at or above it are retained")
		runtimeInt = flag.Duration("runtime-metrics", 0, "poll runtime/metrics onto /metrics at this interval (0 = off)")
	)
	flag.Parse()
	if *graph == "" {
		fatalf("-graph is required")
	}

	reg := obs.New()
	var flight *trace.Flight
	if *flightN > 0 {
		flight = trace.NewFlight(trace.FlightConfig{Capacity: *flightN, SlowThreshold: *flightSlow})
	}
	if *runtimeInt > 0 {
		defer obs.StartRuntime(reg, *runtimeInt).Stop()
	}
	s := serve.New(serve.Config{
		MaxDistance:    *maxDist,
		AttackDistance: *atkDist,
		LinkTypes:      linkTypeList(*links),
		EntityAttrs:    intList(*attrs),
		Profile: dehin.ProfileSpec{
			ExactAttrs: intList(*exact),
			GrowAttrs:  intList(*grow),
		},
		MaxTopK:           *topkMax,
		MaxAttackInFlight: *inflight,
		MaxAttackQueue:    *queue,
		Workers:           *workers,
		Metrics:           reg,
		Log:               logger,
		Flight:            flight,
	})
	if err := s.Load(*graph); err != nil {
		fatalf("%v", err)
	}

	mux := obs.NewMux(reg)
	s.Register(mux)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("listen: %v", err)
	}
	// The bound address goes to stdout - it is the command's one machine-
	// readable output, parsed by hinload -launch and serve-smoke.
	fmt.Printf("listening http://%s\n", ln.Addr())

	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if err := s.Reload(""); err != nil {
				logger.Error("reload failed; keeping current epoch", "err", err)
			}
		}
	}()

	// SIGQUIT dumps the flight recorder to stderr (with durations) and
	// keeps serving — the operator's "what just went slow?" lever.
	// Registering the handler replaces the runtime's default
	// stack-dump-and-exit behavior for this signal.
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	go func() {
		for range quit {
			if flight == nil {
				logger.Info("flight recorder off; start with -flight to retain requests")
				continue
			}
			if err := flight.WriteText(os.Stderr, trace.TreeOptions{Durations: true}); err != nil {
				logger.Error("flight dump", "err", err)
			}
		}
	}()

	srv := &http.Server{Handler: mux}
	term := make(chan os.Signal, 1)
	signal.Notify(term, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-term
		// Graceful: stop accepting, let in-flight requests finish.
		if err := srv.Shutdown(context.Background()); err != nil {
			logger.Error("shutdown", "err", err)
		}
	}()
	if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
		fatalf("serve: %v", err)
	}
	if err := s.Close(); err != nil {
		fatalf("close: %v", err)
	}
}

// intList parses a comma-separated list of non-negative integers; the
// empty string is the empty list.
func intList(s string) []int {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 0 {
			fatalf("bad index %q in %q", p, s)
		}
		out = append(out, v)
	}
	return out
}

func linkTypeList(s string) []hin.LinkTypeID {
	ints := intList(s)
	out := make([]hin.LinkTypeID, len(ints))
	for i, v := range ints {
		out[i] = hin.LinkTypeID(v)
	}
	return out
}

func fatalf(format string, args ...any) {
	logger.Error(fmt.Sprintf(format, args...))
	os.Exit(1)
}
