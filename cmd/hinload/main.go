// Command hinload drives a deterministic query load against a hinriskd
// server and reports exact latency quantiles in the benchjson snapshot
// format, so service p99s join the same benchdiff regression gate as the
// library benchmarks.
//
// The query mix is seeded: worker w draws its request stream from
// randx.Shard(seed, w), so two runs with the same flags issue the same
// requests in the same per-worker order. Pacing is an open-loop QPS
// schedule - request i fires at start + i/qps, taken from a shared atomic
// counter - so the offered load is reproducible and does not degrade
// coordinated-omission style when the server slows down; -qps 0 switches
// to a closed loop that fires as fast as -conc workers allow.
//
// Usage:
//
//	hinload -url http://127.0.0.1:8321 -duration 30s -qps 12000
//	hinload -launch "bin/hinriskd -graph g.hincsr -addr 127.0.0.1:0" \
//	        -duration 5s -out report.json
//
// With -launch, hinload starts the server itself, parses the bound
// address from its "listening http://..." stdout line, and SIGTERMs it
// when the run completes.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/hinpriv/dehin/internal/benchjson"
	"github.com/hinpriv/dehin/internal/obs"
	"github.com/hinpriv/dehin/internal/randx"
)

// logger is the command's structured stderr output (see internal/obs).
var logger = obs.NewLogger(os.Stderr, slog.LevelInfo)

func main() {
	var (
		url         = flag.String("url", "", "base URL of a running hinriskd (mutually exclusive with -launch)")
		launch      = flag.String("launch", "", "hinriskd command line to start and drive")
		duration    = flag.Duration("duration", 30*time.Second, "load duration")
		qps         = flag.Float64("qps", 0, "offered aggregate QPS (0 = closed loop)")
		conc        = flag.Int("conc", 8, "concurrent workers")
		seed        = flag.Uint64("seed", 1, "query-mix seed")
		mix         = flag.String("mix", "risk=90,topk=4,snapshot=3,dehin=3", "endpoint weights")
		out         = flag.String("out", "", "write a benchjson report here")
		failOnErr   = flag.Bool("fail-on-error", true, "exit non-zero if any request fails")
		checkEpochs = flag.Bool("check-epochs", true, "decode bodies and fail responses without an epoch")
		waitReady   = flag.Duration("wait-ready", 0, "poll /v1/healthz for up to this long before starting the schedule")
		checkObs    = flag.Bool("check-obs", false, "after the run, scrape /metrics and /debug/requests and fail if the serve/runtime families are missing or malformed")
	)
	flag.Parse()
	if (*url == "") == (*launch == "") {
		fatalf("exactly one of -url or -launch is required")
	}

	base := *url
	var stopServer func()
	if *launch != "" {
		var err error
		base, stopServer, err = launchServer(*launch)
		if err != nil {
			fatalf("launch: %v", err)
		}
		defer stopServer()
	}
	base = strings.TrimRight(base, "/")

	if *waitReady > 0 {
		if err := waitHealthy(base, *waitReady); err != nil {
			fatalf("wait-ready: %v", err)
		}
	}

	users, maxDistance, err := probeSnapshot(base)
	if err != nil {
		fatalf("probe %s/v1/snapshot: %v", base, err)
	}
	weights, err := parseMix(*mix)
	if err != nil {
		fatalf("%v", err)
	}
	logger.Info("load starting", "url", base, "users", users,
		"duration", duration.String(), "qps", *qps, "conc", *conc, "seed", *seed)

	res := run(loadSpec{
		base: base, users: users, maxDistance: maxDistance,
		duration: *duration, qps: *qps, conc: *conc, seed: *seed,
		weights: weights, checkEpochs: *checkEpochs,
	})

	printReport(res)
	if *out != "" {
		if err := benchjson.Write(*out, res.benchEntries()); err != nil {
			fatalf("write %s: %v", *out, err)
		}
	}
	if *checkObs {
		// Scrape while the (possibly -launch'd) server is still up.
		if err := checkObsSurface(base); err != nil {
			fatalf("check-obs: %v", err)
		}
		logger.Info("obs surface ok", "url", base)
	}
	if stopServer != nil {
		stopServer()
		stopServer = nil
	}
	if *failOnErr && res.errors() > 0 {
		fatalf("%d request(s) failed", res.errors())
	}
}

// launchServer starts the given server command line, waits for its
// "listening http://..." announcement, and returns the base URL plus an
// idempotent stop func (SIGTERM, then wait).
func launchServer(cmdline string) (string, func(), error) {
	args := strings.Fields(cmdline)
	if len(args) == 0 {
		return "", nil, fmt.Errorf("empty -launch command")
	}
	cmd := exec.Command(args[0], args[1:]...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return "", nil, err
	}
	if err := cmd.Start(); err != nil {
		return "", nil, err
	}
	lines := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		if sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
		// Keep draining so the child never blocks on a full pipe.
		for sc.Scan() {
		}
	}()
	var line string
	select {
	case line = <-lines:
	case <-time.After(2 * time.Minute):
		cmd.Process.Kill()
		return "", nil, fmt.Errorf("server did not announce an address")
	}
	base, ok := strings.CutPrefix(line, "listening ")
	if !ok {
		cmd.Process.Kill()
		return "", nil, fmt.Errorf("unexpected announcement %q", line)
	}
	stopped := false
	stop := func() {
		if stopped {
			return
		}
		stopped = true
		cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { cmd.Wait(); close(done) }() //hin:allow errdrop -- reaping at teardown: the exit status is irrelevant here
		select {
		case <-done:
		case <-time.After(15 * time.Second):
			cmd.Process.Kill()
			<-done
		}
	}
	return base, stop, nil
}

// waitHealthy polls /v1/healthz until it answers 200 (snapshot loaded)
// or the timeout lapses — the readiness gate for scripts that race the
// daemon's first load.
func waitHealthy(base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	client := &http.Client{Timeout: 2 * time.Second}
	var last error
	for time.Now().Before(deadline) {
		resp, err := client.Get(base + "/v1/healthz")
		if err != nil {
			last = err
		} else {
			io.Copy(io.Discard, resp.Body) //hin:allow errdrop -- best-effort drain so the keep-alive connection is reusable
			resp.Body.Close()
			if resp.StatusCode == 200 {
				return nil
			}
			last = fmt.Errorf("status %d", resp.StatusCode)
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("not ready after %v: %v", timeout, last)
}

// requiredMetricFamilies are the families -check-obs demands on
// /metrics: the request-path surface plus the runtime collector's. The
// smoke launches hinriskd with the flight recorder and runtime
// telemetry on, so their absence means the wiring broke.
var requiredMetricFamilies = []string{
	"serve_requests_total",
	"serve_request_ns",
	"serve_epoch",
	"serve_snapshot_age_s",
	"serve_flight_captured_total",
	"runtime_heap_live_bytes",
	"runtime_heap_goal_bytes",
	"runtime_goroutines",
	"runtime_gc_pause_ns",
	"runtime_sched_latency_ns",
}

// checkObsSurface asserts the server's observability endpoints are
// present and well-formed: every required family appears in the
// Prometheus text (with a # TYPE line), /v1/healthz answers ok, and
// /debug/requests?format=json decodes into the flight recorder
// envelope.
func checkObsSurface(base string) error {
	if err := waitHealthy(base, 2*time.Second); err != nil {
		return fmt.Errorf("healthz: %v", err)
	}
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	text, _ := io.ReadAll(resp.Body) //hin:allow errdrop -- diagnostic body: a partial read still improves the error message
	resp.Body.Close()
	if resp.StatusCode != 200 {
		return fmt.Errorf("/metrics status %d", resp.StatusCode)
	}
	for _, fam := range requiredMetricFamilies {
		if !bytes.Contains(text, []byte("# TYPE "+fam+" ")) {
			return fmt.Errorf("/metrics missing family %s", fam)
		}
		if !bytes.Contains(text, []byte("\n"+fam)) && !bytes.HasPrefix(text, []byte(fam)) {
			return fmt.Errorf("/metrics family %s has no samples", fam)
		}
	}
	resp, err = http.Get(base + "/debug/requests?format=json")
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body) //hin:allow errdrop -- diagnostic body: a partial read still improves the error message
	resp.Body.Close()
	if resp.StatusCode != 200 {
		return fmt.Errorf("/debug/requests status %d: %s", resp.StatusCode, body)
	}
	var flight struct {
		Captured int64             `json:"captured"`
		Total    int64             `json:"total"`
		Records  []json.RawMessage `json:"records"`
	}
	if err := json.Unmarshal(body, &flight); err != nil {
		return fmt.Errorf("/debug/requests: %v", err)
	}
	if flight.Total == 0 {
		return fmt.Errorf("/debug/requests reports zero finished requests after a load run")
	}
	if int64(len(flight.Records)) < min64(flight.Captured, 1) {
		return fmt.Errorf("/debug/requests: %d captured but %d records", flight.Captured, len(flight.Records))
	}
	return nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func probeSnapshot(base string) (users, maxDistance int, err error) {
	resp, err := http.Get(base + "/v1/snapshot")
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body) //hin:allow errdrop -- diagnostic body: a partial read still improves the error message
	if resp.StatusCode != 200 {
		return 0, 0, fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	var info struct {
		Users       int `json:"users"`
		MaxDistance int `json:"max_distance"`
	}
	if err := json.Unmarshal(body, &info); err != nil {
		return 0, 0, err
	}
	if info.Users == 0 {
		return 0, 0, fmt.Errorf("empty snapshot")
	}
	return info.Users, info.MaxDistance, nil
}

// kinds are the drivable endpoints, in mix order.
var kinds = []string{"risk", "topk", "snapshot", "dehin"}

func parseMix(s string) (map[string]int, error) {
	w := map[string]int{}
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad mix element %q", part)
		}
		n, err := strconv.Atoi(val)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad mix weight %q", part)
		}
		known := false
		for _, k := range kinds {
			known = known || k == name
		}
		if !known {
			return nil, fmt.Errorf("unknown mix endpoint %q", name)
		}
		w[name] = n
	}
	total := 0
	for _, n := range w {
		total += n
	}
	if total == 0 {
		return nil, fmt.Errorf("mix %q has zero total weight", s)
	}
	return w, nil
}

type loadSpec struct {
	base        string
	users       int
	maxDistance int
	duration    time.Duration
	qps         float64
	conc        int
	seed        uint64
	weights     map[string]int
	checkEpochs bool
}

// kindStats collects one endpoint's raw latencies (exact quantiles beat
// bucketed ones for a sub-5ms p99 gate) and failure count.
type kindStats struct {
	lat  []int64
	errs int64
}

type loadResult struct {
	spec    loadSpec
	elapsed time.Duration
	stats   map[string]*kindStats
}

// run fires the load and aggregates per-endpoint stats. Worker w's query
// stream comes from randx.Shard(seed, w); with -qps the global schedule
// assigns request i the start time i/qps via a shared atomic counter.
func run(spec loadSpec) loadResult {
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		merged  = map[string]*kindStats{}
		nextReq atomic.Int64
	)
	for _, k := range kinds {
		merged[k] = &kindStats{}
	}
	start := time.Now()
	deadline := start.Add(spec.duration)
	for w := 0; w < spec.conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := map[string]*kindStats{}
			for _, k := range kinds {
				local[k] = &kindStats{}
			}
			worker(spec, w, start, deadline, &nextReq, local)
			mu.Lock()
			for k, st := range local {
				merged[k].lat = append(merged[k].lat, st.lat...)
				merged[k].errs += st.errs
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	return loadResult{spec: spec, elapsed: time.Since(start), stats: merged}
}

func worker(spec loadSpec, w int, start, deadline time.Time, nextReq *atomic.Int64, stats map[string]*kindStats) {
	rng := randx.Shard(spec.seed, uint64(w))
	client := &http.Client{Timeout: 10 * time.Second}
	total := 0
	for _, n := range spec.weights {
		total += n
	}
	for {
		if spec.qps > 0 {
			i := nextReq.Add(1) - 1
			at := start.Add(time.Duration(float64(i) / spec.qps * float64(time.Second)))
			if at.After(deadline) {
				return
			}
			time.Sleep(time.Until(at))
		} else if !time.Now().Before(deadline) {
			return
		}
		kind := pickKind(rng, spec.weights, total)
		req := buildRequest(rng, spec, kind)
		t0 := time.Now()
		ok := fire(client, req)
		ns := time.Since(t0).Nanoseconds()
		st := stats[kind]
		st.lat = append(st.lat, ns)
		if !ok {
			st.errs++
		}
	}
}

func pickKind(rng *randx.RNG, weights map[string]int, total int) string {
	n := rng.Intn(total)
	for _, k := range kinds {
		n -= weights[k]
		if n < 0 {
			return k
		}
	}
	return kinds[0]
}

// request is one prepared query: method, URL, optional body, and whether
// the response body must carry an epoch.
type request struct {
	method     string
	url        string
	body       []byte
	checkEpoch bool
}

func buildRequest(rng *randx.RNG, spec loadSpec, kind string) request {
	switch kind {
	case "risk":
		return request{method: "GET", checkEpoch: spec.checkEpochs,
			url: fmt.Sprintf("%s/v1/risk?user=%d&distance=%d",
				spec.base, rng.Intn(spec.users), rng.Intn(spec.maxDistance+1))}
	case "topk":
		return request{method: "GET", checkEpoch: spec.checkEpochs,
			url: fmt.Sprintf("%s/v1/topk?k=%d&distance=%d",
				spec.base, rng.IntRange(1, 50), rng.Intn(spec.maxDistance+1))}
	case "snapshot":
		return request{method: "GET", checkEpoch: spec.checkEpochs, url: spec.base + "/v1/snapshot"}
	default: // dehin: a profile-only snippet with plausible t.qq-ish attrs
		//hin:allow errdrop -- marshaling a literal map of strings and ints cannot fail
		body, _ := json.Marshal(map[string]any{
			"target": 0,
			"entities": []map[string]any{{
				"type": "User",
				"attrs": []int64{int64(rng.IntRange(1940, 2005)), int64(rng.Intn(3)),
					int64(rng.Intn(1000)), int64(rng.Intn(11))},
			}},
		})
		return request{method: "POST", url: spec.base + "/v1/dehin",
			body: body, checkEpoch: spec.checkEpochs}
	}
}

// fire issues one request and reports success: HTTP 200 and, when epoch
// checking is on, a decodable body with a non-zero epoch (the reload soak
// relies on this to prove no request ever saw a torn or retired state).
func fire(client *http.Client, r request) bool {
	var (
		resp *http.Response
		err  error
	)
	if r.method == "GET" {
		resp, err = client.Get(r.url)
	} else {
		resp, err = client.Post(r.url, "application/json", bytes.NewReader(r.body))
	}
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != 200 {
		return false
	}
	if r.checkEpoch {
		var e struct {
			Epoch uint64 `json:"epoch"`
		}
		if json.Unmarshal(body, &e) != nil || e.Epoch == 0 {
			return false
		}
	}
	return true
}

func (r loadResult) errors() int64 {
	var n int64
	for _, st := range r.stats {
		n += st.errs
	}
	return n
}

func (r loadResult) requests() int64 {
	var n int64
	for _, st := range r.stats {
		n += int64(len(st.lat))
	}
	return n
}

// quantile returns the exact q-th latency quantile of a sorted sample.
func quantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func printReport(r loadResult) {
	fmt.Printf("ran %s: %d requests, %d errors, %.0f req/s\n",
		r.elapsed.Round(time.Millisecond), r.requests(), r.errors(),
		float64(r.requests())/r.elapsed.Seconds())
	fmt.Printf("%-10s %10s %8s %10s %10s %10s\n", "endpoint", "requests", "errors", "p50", "p95", "p99")
	for _, k := range kinds {
		st := r.stats[k]
		if len(st.lat) == 0 {
			continue
		}
		sort.Slice(st.lat, func(i, j int) bool { return st.lat[i] < st.lat[j] })
		fmt.Printf("%-10s %10d %8d %10s %10s %10s\n", k, len(st.lat), st.errs,
			time.Duration(quantile(st.lat, 0.50)).Round(time.Microsecond),
			time.Duration(quantile(st.lat, 0.95)).Round(time.Microsecond),
			time.Duration(quantile(st.lat, 0.99)).Round(time.Microsecond))
	}
}

// benchEntries renders the run as benchjson entries: one per endpoint,
// named BenchmarkLoad<Endpoint>, with ns_per_op = exact p99 so benchdiff
// gates service tail latency exactly like library ns/op regressions.
func (r loadResult) benchEntries() map[string]benchjson.Entry {
	out := map[string]benchjson.Entry{}
	for _, k := range kinds {
		st := r.stats[k]
		if len(st.lat) == 0 {
			continue
		}
		sort.Slice(st.lat, func(i, j int) bool { return st.lat[i] < st.lat[j] })
		out["BenchmarkLoad"+strings.ToUpper(k[:1])+k[1:]] = benchjson.Entry{
			Iterations: int64(len(st.lat)),
			NsPerOp:    float64(quantile(st.lat, 0.99)),
			Metrics: map[string]float64{
				"p50_ns": float64(quantile(st.lat, 0.50)),
				"p95_ns": float64(quantile(st.lat, 0.95)),
				"errors": float64(st.errs),
				"qps":    float64(r.requests()) / r.elapsed.Seconds(),
			},
		}
	}
	return out
}

func fatalf(format string, args ...any) {
	logger.Error(fmt.Sprintf(format, args...))
	os.Exit(1)
}
