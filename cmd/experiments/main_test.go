package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestMain lets the test binary impersonate the real command: re-executed
// with EXPERIMENTS_RUN_MAIN=1 it runs main() on the given arguments, which
// is how the golden test below captures the command's true stdout without
// a separate build step.
func TestMain(m *testing.M) {
	if os.Getenv("EXPERIMENTS_RUN_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// TestRunAllGolden pins the byte-exact stdout of `experiments -exp all
// -quick`: every table of the full suite, in the fixed streaming order, at
// the committed quick parameters. Any change to experiment output - a
// number, a header, table order, even trailing whitespace - must show up
// as a deliberate golden update (go test ./cmd/experiments -update).
// Running at two worker counts also re-checks the suite's concurrency
// contract end to end: stdout must not depend on scheduling.
func TestRunAllGolden(t *testing.T) {
	golden := filepath.Join("testdata", "runall_quick.golden")
	for _, workers := range []int{1, 4} {
		cmd := exec.Command(os.Args[0], "-exp", "all", "-quick", "-parallel", fmt.Sprint(workers))
		cmd.Env = append(os.Environ(), "EXPERIMENTS_RUN_MAIN=1")
		var stdout, stderr bytes.Buffer
		cmd.Stdout, cmd.Stderr = &stdout, &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("workers=%d: %v\nstderr:\n%s", workers, err, stderr.String())
		}
		if workers == 1 && *update {
			if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(golden, stdout.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("missing golden file (regenerate with -update): %v", err)
		}
		if !bytes.Equal(stdout.Bytes(), want) {
			t.Fatalf("workers=%d: stdout differs from %s (%d vs %d bytes)\nfirst divergence at byte %d\nregenerate with -update if the change is intended",
				workers, golden, stdout.Len(), len(want), firstDiff(stdout.Bytes(), want))
		}
	}
}

func firstDiff(a, b []byte) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
