// Command experiments regenerates the paper's tables and figures (and the
// repository's ablations) on the synthetic t.qq substrate.
//
// Usage:
//
//	experiments -exp table2            # one experiment, full-scale params
//	experiments -exp all -quick        # everything, reduced params
//	experiments -list                  # show experiment ids
//	experiments -exp table2 -aux 100000 -target 1000 -samples 3 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"github.com/hinpriv/dehin/internal/experiments"
	"github.com/hinpriv/dehin/internal/obs"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id or 'all'")
		quick    = flag.Bool("quick", false, "use reduced parameters")
		paper    = flag.Bool("paperscale", false, "use the large 50k-user configuration (hours on one core)")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		seed     = flag.Uint64("seed", 0, "override seed (0 keeps the default)")
		aux      = flag.Int("aux", 0, "override auxiliary user count")
		target   = flag.Int("target", 0, "override target graph size")
		samples  = flag.Int("samples", 0, "override samples per density")
		dens     = flag.String("densities", "", "override densities, comma-separated")
		par      = flag.Int("parallelism", 0, "attack parallelism (0 = all cores)")
		parallel = flag.Int("parallel", 0, "pipeline workers: generator shards, release warm-up, concurrent experiments (0 = all cores, 1 = serial)")
		timing   = flag.Bool("timing", false, "print per-experiment wall time and cache hit/miss counts to stderr")
		outDir   = flag.String("out", "", "also write each table as CSV into this directory")
		metrics  = flag.String("metrics", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. :9090 or 127.0.0.1:0)")
		metDump  = flag.String("metrics-dump", "", "write a final JSON metrics snapshot to this file")
	)
	flag.Parse()

	if *list {
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
		return
	}
	p := experiments.DefaultParams()
	if *paper {
		p = experiments.PaperScaleParams()
	}
	if *quick {
		p = experiments.QuickParams()
	}
	if *seed != 0 {
		p.Seed = *seed
	}
	if *aux != 0 {
		p.AuxUsers = *aux
	}
	if *target != 0 {
		p.TargetSize = *target
	}
	if *samples != 0 {
		p.SamplesPerDensity = *samples
	}
	if *dens != "" {
		p.Densities = nil
		for _, s := range strings.Split(*dens, ",") {
			d, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				fatalf("bad density %q: %v", s, err)
			}
			p.Densities = append(p.Densities, d)
		}
	}
	p.Parallelism = *par
	p.Workers = *parallel

	var reg *obs.Registry
	if *metrics != "" || *metDump != "" {
		reg = obs.New()
		p.Metrics = reg
	}
	if *metrics != "" {
		ln, err := obs.Serve(*metrics, reg)
		if err != nil {
			fatalf("metrics listener: %v", err)
		}
		fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics\n", ln.Addr())
	}

	fmt.Printf("params: aux=%d target=%d samples/density=%d densities=%v distances=%v seed=%d\n\n",
		p.AuxUsers, p.TargetSize, p.SamplesPerDensity, p.Densities, p.Distances, p.Seed)

	start := time.Now()
	var tables []*experiments.Table
	var err error
	streamed := *exp == "all"
	if streamed {
		var perExp []experiments.ExperimentTiming
		var stats experiments.CacheStats
		tables, perExp, stats, err = experiments.RunAllTimed(os.Stdout, p)
		if *timing {
			for _, t := range perExp {
				fmt.Fprintf(os.Stderr, "timing: %-20s %v\n", t.ID, t.Elapsed.Round(time.Millisecond))
			}
			fmt.Fprintln(os.Stderr, stats)
		}
	} else {
		var w *experiments.Workbench
		w, err = experiments.NewWorkbench(p)
		if err == nil {
			tables, err = experiments.RunOn(w, *exp)
			if *timing {
				fmt.Fprintf(os.Stderr, "timing: %-20s %v\n", *exp, time.Since(start).Round(time.Millisecond))
				fmt.Fprintln(os.Stderr, w.Stats())
			}
		}
	}
	if err != nil {
		fatalf("%v", err)
	}
	if !streamed {
		for _, t := range tables {
			fmt.Println(t)
		}
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatalf("%v", err)
		}
		for _, t := range tables {
			path := filepath.Join(*outDir, t.Slug()+".csv")
			if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
				fatalf("%v", err)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
	if *metDump != "" {
		if err := reg.DumpJSON(*metDump); err != nil {
			fatalf("metrics dump: %v", err)
		}
		fmt.Fprintf(os.Stderr, "metrics snapshot written to %s\n", *metDump)
	}
	fmt.Fprintf(os.Stderr, "done in %v\n", time.Since(start).Round(time.Millisecond))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "experiments: "+format+"\n", args...)
	os.Exit(1)
}
