// Command experiments regenerates the paper's tables and figures (and the
// repository's ablations) on the synthetic t.qq substrate.
//
// Usage:
//
//	experiments -exp table2            # one experiment, full-scale params
//	experiments -exp all -quick        # everything, reduced params
//	experiments -list                  # show experiment ids
//	experiments -exp table2 -aux 100000 -target 1000 -samples 3 -seed 7
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/hinpriv/dehin/internal/experiments"
	"github.com/hinpriv/dehin/internal/hin"
	"github.com/hinpriv/dehin/internal/obs"
	"github.com/hinpriv/dehin/internal/obs/trace"
	"github.com/hinpriv/dehin/internal/risk"
)

// logger carries the command's levelled stderr output; fatalf routes
// through it so every diagnostic line shares one structured format.
var logger *obs.Logger

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id or 'all'")
		quick    = flag.Bool("quick", false, "use reduced parameters")
		paper    = flag.Bool("paperscale", false, "use the large 50k-user configuration (hours on one core)")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		seed     = flag.Uint64("seed", 0, "override seed (0 keeps the default)")
		aux      = flag.Int("aux", 0, "override auxiliary user count")
		target   = flag.Int("target", 0, "override target graph size")
		samples  = flag.Int("samples", 0, "override samples per density")
		dens     = flag.String("densities", "", "override densities, comma-separated")
		par      = flag.Int("parallelism", 0, "attack parallelism (0 = all cores)")
		parallel = flag.Int("parallel", 0, "pipeline workers: generator shards, release warm-up, concurrent experiments (0 = all cores, 1 = serial)")
		timing   = flag.Bool("timing", false, "print per-experiment wall time and cache hit/miss counts to stderr")
		outDir   = flag.String("out", "", "also write each table as CSV into this directory")
		metrics  = flag.String("metrics", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. :9090 or 127.0.0.1:0)")
		metDump  = flag.String("metrics-dump", "", "write a final JSON metrics snapshot to this file")
		traceOut = flag.String("trace", "", "record a span timeline and write it as Chrome trace-event JSON (Perfetto/about://tracing) to this file")
		backend  = flag.String("backend", "", "auxiliary graph backend: mem (default) or csr (compact, varint-compressed)")
		graphIn  = flag.String("graph-in", "", "inspect a persisted CSR graph file (stats + dataset risk) and exit")
		verbose  = flag.Bool("v", false, "debug-level progress logging on stderr")
	)
	flag.Parse()
	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	logger = obs.NewLogger(os.Stderr, level)

	if *list {
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
		return
	}
	if *graphIn != "" {
		if err := inspectGraph(*graphIn, *parallel); err != nil {
			fatalf("%v", err)
		}
		return
	}
	p := experiments.DefaultParams()
	if *paper {
		p = experiments.PaperScaleParams()
	}
	if *quick {
		p = experiments.QuickParams()
	}
	if *seed != 0 {
		p.Seed = *seed
	}
	if *aux != 0 {
		p.AuxUsers = *aux
	}
	if *target != 0 {
		p.TargetSize = *target
	}
	if *samples != 0 {
		p.SamplesPerDensity = *samples
	}
	if *dens != "" {
		p.Densities = nil
		for _, s := range strings.Split(*dens, ",") {
			d, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				fatalf("bad density %q: %v", s, err)
			}
			p.Densities = append(p.Densities, d)
		}
	}
	p.Parallelism = *par
	p.Workers = *parallel
	p.Backend = *backend

	var reg *obs.Registry
	if *metrics != "" || *metDump != "" || *timing {
		reg = obs.New()
		p.Metrics = reg
	}
	if *metrics != "" {
		ln, err := obs.Serve(*metrics, reg)
		if err != nil {
			fatalf("metrics listener: %v", err)
		}
		logger.Info("metrics endpoint up", "url", fmt.Sprintf("http://%s/metrics", ln.Addr()))
	}
	var tracer *trace.Tracer
	if *traceOut != "" {
		tracer = trace.New(trace.DefaultCapacity)
		p.Trace = tracer
	}
	if *verbose {
		p.Log = logger
	}

	be := p.Backend
	if be == "" {
		be = experiments.BackendMem
	}
	fmt.Printf("params: aux=%d target=%d samples/density=%d densities=%v distances=%v seed=%d backend=%s\n\n",
		p.AuxUsers, p.TargetSize, p.SamplesPerDensity, p.Densities, p.Distances, p.Seed, be)

	start := time.Now()
	var tables []*experiments.Table
	var err error
	streamed := *exp == "all"
	if streamed {
		var perExp []experiments.ExperimentTiming
		var stats experiments.CacheStats
		tables, perExp, stats, err = experiments.RunAllTimed(os.Stdout, p)
		if *timing {
			for _, t := range perExp {
				//hin:allow logdiscipline -- -timing emits an aligned report, not log lines; stdout carries the result tables
				fmt.Fprintf(os.Stderr, "timing: %-20s %v\n", t.ID, t.Elapsed.Round(time.Millisecond))
			}
			//hin:allow logdiscipline -- part of the aligned -timing report
			fmt.Fprintln(os.Stderr, stats)
			printTimingQuantiles(reg)
		}
	} else {
		var w *experiments.Workbench
		w, err = experiments.NewWorkbench(p)
		if err == nil {
			tables, err = experiments.RunOn(w, *exp)
			if *timing {
				//hin:allow logdiscipline -- -timing emits an aligned report, not log lines; stdout carries the result tables
				fmt.Fprintf(os.Stderr, "timing: %-20s %v\n", *exp, time.Since(start).Round(time.Millisecond))
				//hin:allow logdiscipline -- part of the aligned -timing report
				fmt.Fprintln(os.Stderr, w.Stats())
				printTimingQuantiles(reg)
			}
		}
	}
	if err != nil {
		fatalf("%v", err)
	}
	if !streamed {
		for _, t := range tables {
			fmt.Println(t)
		}
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatalf("%v", err)
		}
		for _, t := range tables {
			path := filepath.Join(*outDir, t.Slug()+".csv")
			if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
				fatalf("%v", err)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
	if *metDump != "" {
		if err := reg.DumpJSON(*metDump); err != nil {
			fatalf("metrics dump: %v", err)
		}
		logger.Info("metrics snapshot written", "path", *metDump)
	}
	if *traceOut != "" {
		if err := tracer.DumpChromeTrace(*traceOut); err != nil {
			fatalf("trace dump: %v", err)
		}
		logger.Info("trace written", "path", *traceOut,
			"spans", tracer.Len(), "dropped", tracer.Dropped())
	}
	logger.Info("done", "elapsed", time.Since(start).Round(time.Millisecond).String())
}

// inspectGraph opens a persisted CSR graph (as written by tqqgen
// -graph-out), prints its headline statistics, and computes the dataset
// privacy risk over all link types at distances 0..2 - a quick check that
// a multi-gigabyte artifact is intact and attackable without rerunning
// the generator. Load validation and the risk sweep both run on workers
// (0 = all cores).
func inspectGraph(path string, workers int) error {
	start := time.Now()
	cf, err := hin.OpenCSRFileOpt(path, hin.CSRFileOptions{Workers: workers})
	if err != nil {
		return err
	}
	defer cf.Close() //hin:allow errdrop -- read-only inspection: nothing to lose on a close failure
	g := cf.Graph()
	fmt.Printf("%s: %d entities, %d edges (loaded+validated in %v)\n",
		path, g.NumEntities(), g.NumEdgesTotal(), time.Since(start).Round(time.Millisecond))
	if d, err := hin.Density(g); err == nil {
		fmt.Printf("  density %.6f\n", d)
	}
	s := g.Schema()
	lts := make([]hin.LinkTypeID, 0, s.NumLinkTypes())
	for lt := 0; lt < s.NumLinkTypes(); lt++ {
		fmt.Printf("  link %-10s %12d edges\n", s.LinkType(hin.LinkTypeID(lt)).Name, g.NumEdges(hin.LinkTypeID(lt)))
		lts = append(lts, hin.LinkTypeID(lt))
	}
	rs := time.Now()
	sw, err := risk.NetworkSweep(g, risk.SignatureConfig{MaxDistance: 2, LinkTypes: lts, Workers: workers})
	if err != nil {
		return err
	}
	elapsed := time.Since(rs).Round(time.Millisecond)
	for d := 0; d <= 2; d++ {
		fmt.Printf("  risk(d=%d) = %.6f\n", d, sw.Risk[d])
	}
	fmt.Printf("  (one sweep, %v)\n", elapsed)
	return nil
}

// printTimingQuantiles extends the -timing table with the p50/p95/p99
// estimates of every recorded latency histogram (generator task, attack
// run, per-experiment slot times).
func printTimingQuantiles(reg *obs.Registry) {
	s := reg.Snapshot()
	ids := make([]string, 0, len(s.Histograms))
	for id := range s.Histograms {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		h := s.Histograms[id]
		if h.Count == 0 {
			continue
		}
		//hin:allow logdiscipline -- part of the aligned -timing report
		fmt.Fprintf(os.Stderr, "timing: %-44s n=%-5d p50=%-10v p95=%-10v p99=%v\n",
			id, h.Count,
			time.Duration(h.P50).Round(time.Microsecond),
			time.Duration(h.P95).Round(time.Microsecond),
			time.Duration(h.P99).Round(time.Microsecond))
	}
}

func fatalf(format string, args ...any) {
	logger.Error(fmt.Sprintf(format, args...))
	os.Exit(1)
}
