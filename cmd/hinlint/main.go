// Command hinlint runs the repository's custom static-analysis suite
// (internal/lint) over the named packages and fails the build on any
// finding. It is the mechanical form of the invariants the attack
// pipeline's evaluation rests on: determinism of the result-producing
// packages, nil-safety of the instrumentation layer, the zero-allocation
// contract of the //hin:hot query path, and obs.Logger log discipline.
// See LINT.md for the check catalogue and the //hin:allow / //hin:hot
// directives.
//
// Usage:
//
//	hinlint ./...                       # lint the whole module (make lint)
//	hinlint -format=json ./... > d.json # machine-readable diagnostics
//	hinlint -format=sarif ./... > d.sarif # SARIF 2.1.0 for code scanning
//	hinlint -checks                     # list the analyzers and exit
//
// -json remains as an alias for -format=json.
//
// Diagnostics go to stdout as "file:line:col: [check] message", sorted and
// with paths relative to the working directory, so output is stable for CI
// annotation tooling. Exit status is 0 when clean, 1 on findings, 2 on
// load or usage errors. Run from inside the module: package loading
// resolves imports through the go command.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"github.com/hinpriv/dehin/internal/lint"
	"github.com/hinpriv/dehin/internal/obs"
)

var logger = obs.NewLogger(os.Stderr, slog.LevelInfo)

func main() {
	var (
		jsonOut = flag.Bool("json", false, "emit diagnostics as a JSON array (alias for -format=json)")
		format  = flag.String("format", "", "output format: text (default), json, or sarif")
		checks  = flag.Bool("checks", false, "list the analyzers and exit")
	)
	flag.Parse()
	if *format == "" {
		if *jsonOut {
			*format = "json"
		} else {
			*format = "text"
		}
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		logger.Error("unknown -format", "format", *format)
		os.Exit(2)
	}

	if *checks {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.NewLoader().LoadPatterns(".", patterns...)
	if err != nil {
		logger.Error(err.Error())
		os.Exit(2)
	}
	diags := lint.Run(pkgs)

	cwd, _ := os.Getwd() //hin:allow errdrop -- cwd only prettifies paths; empty on failure keeps them absolute
	switch *format {
	case "json":
		fmt.Print(renderJSON(diags, cwd))
	case "sarif":
		fmt.Print(renderSARIF(diags, cwd))
	default:
		for _, d := range diags {
			d.Pos.Filename = relPath(cwd, d.Pos.Filename)
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if *format == "text" {
			logger.Error("hinlint failed", "findings", len(diags))
		}
		os.Exit(1)
	}
}

// relPath shortens an absolute diagnostic path relative to the working
// directory when possible (keeps output readable and machine-stable).
func relPath(cwd, path string) string {
	if cwd == "" {
		return path
	}
	if rel, err := filepath.Rel(cwd, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}

// renderJSON hand-rolls the diagnostic array in the internal/benchjson
// spirit: the format is small and fixed, so an explicit emitter (ordered
// fields, strconv.Quote escaping, trailing newline) beats reflection and
// documents the schema in code. Empty input renders "[]" so consumers can
// always json-decode the output.
func renderJSON(diags []lint.Diagnostic, cwd string) string {
	var b strings.Builder
	b.WriteString("[")
	for i, d := range diags {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString("\n  {\"file\":")
		b.WriteString(strconv.Quote(relPath(cwd, d.Pos.Filename)))
		b.WriteString(",\"line\":")
		b.WriteString(strconv.Itoa(d.Pos.Line))
		b.WriteString(",\"col\":")
		b.WriteString(strconv.Itoa(d.Pos.Column))
		b.WriteString(",\"check\":")
		b.WriteString(strconv.Quote(d.Check))
		b.WriteString(",\"message\":")
		b.WriteString(strconv.Quote(d.Message))
		b.WriteString("}")
	}
	if len(diags) > 0 {
		b.WriteString("\n")
	}
	b.WriteString("]\n")
	return b.String()
}
