package main

import (
	"encoding/json"
	"path/filepath"

	"github.com/hinpriv/dehin/internal/lint"
)

// toURI renders a (possibly relative) file path as a SARIF artifact URI:
// forward slashes regardless of host separator.
func toURI(path string) string { return filepath.ToSlash(path) }

// SARIF 2.1.0 output (-format=sarif) for code-scanning upload: one run,
// the analyzer catalogue as the tool's rule set, one error-level result
// per diagnostic with a physical location. The structs mirror just the
// slice of the spec the GitHub ingester consumes; unlike renderJSON's
// hand-rolled emitter this one goes through encoding/json — the schema
// is nested enough that explicit types plus Marshal document it better
// than a string builder would.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

const sarifSchema = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"

// renderSARIF emits the diagnostics as a SARIF 2.1.0 log. Paths are
// relativized against cwd (forward slashes, per the spec's uri field),
// and the results array is always present — an empty run is how a clean
// tree uploads.
func renderSARIF(diags []lint.Diagnostic, cwd string) string {
	rules := make([]sarifRule, 0, len(lint.Analyzers())+1)
	for _, a := range lint.Analyzers() {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	rules = append(rules, sarifRule{ID: "directive", ShortDescription: sarifMessage{Text: "malformed //hin: directive"}})

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Check,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: toURI(relPath(cwd, d.Pos.Filename))},
				Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
			}}},
		})
	}
	log := sarifLog{
		Schema:  sarifSchema,
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "hinlint", Rules: rules}},
			Results: results,
		}},
	}
	out, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		// The structs contain only strings, ints, and slices; Marshal
		// cannot fail on them.
		panic(err)
	}
	return string(out) + "\n"
}
