package main

import (
	"encoding/json"
	"go/token"
	"testing"

	"github.com/hinpriv/dehin/internal/lint"
)

// TestRenderJSON pins the hand-rolled emitter's schema: ordered fields,
// proper escaping, decodable output, and "[]" for no findings.
func TestRenderJSON(t *testing.T) {
	if got := renderJSON(nil, "/w"); got != "[]\n" {
		t.Fatalf("empty render = %q, want %q", got, "[]\n")
	}

	diags := []lint.Diagnostic{
		{
			Pos:     token.Position{Filename: "/w/a/b.go", Line: 3, Column: 7},
			Check:   "nilsafe",
			Message: `method "X" dereferences receiver`,
		},
		{
			Pos:     token.Position{Filename: "/elsewhere/c.go", Line: 1, Column: 1},
			Check:   "determinism",
			Message: "time.Now reads the wall clock",
		},
	}
	var decoded []struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Col     int    `json:"col"`
		Check   string `json:"check"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal([]byte(renderJSON(diags, "/w")), &decoded); err != nil {
		t.Fatalf("output does not decode: %v", err)
	}
	if len(decoded) != 2 {
		t.Fatalf("decoded %d diagnostics, want 2", len(decoded))
	}
	if decoded[0].File != "a/b.go" {
		t.Errorf("path under cwd not relativized: %q", decoded[0].File)
	}
	if decoded[1].File != "/elsewhere/c.go" {
		t.Errorf("path outside cwd rewritten: %q", decoded[1].File)
	}
	if decoded[0].Line != 3 || decoded[0].Col != 7 || decoded[0].Check != "nilsafe" {
		t.Errorf("fields mangled: %+v", decoded[0])
	}
	if decoded[0].Message != `method "X" dereferences receiver` {
		t.Errorf("quote escaping broken: %q", decoded[0].Message)
	}
}
