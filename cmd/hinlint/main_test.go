package main

import (
	"encoding/json"
	"go/token"
	"testing"

	"github.com/hinpriv/dehin/internal/lint"
)

// TestRenderJSON pins the hand-rolled emitter's schema: ordered fields,
// proper escaping, decodable output, and "[]" for no findings.
func TestRenderJSON(t *testing.T) {
	if got := renderJSON(nil, "/w"); got != "[]\n" {
		t.Fatalf("empty render = %q, want %q", got, "[]\n")
	}

	diags := []lint.Diagnostic{
		{
			Pos:     token.Position{Filename: "/w/a/b.go", Line: 3, Column: 7},
			Check:   "nilsafe",
			Message: `method "X" dereferences receiver`,
		},
		{
			Pos:     token.Position{Filename: "/elsewhere/c.go", Line: 1, Column: 1},
			Check:   "determinism",
			Message: "time.Now reads the wall clock",
		},
	}
	var decoded []struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Col     int    `json:"col"`
		Check   string `json:"check"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal([]byte(renderJSON(diags, "/w")), &decoded); err != nil {
		t.Fatalf("output does not decode: %v", err)
	}
	if len(decoded) != 2 {
		t.Fatalf("decoded %d diagnostics, want 2", len(decoded))
	}
	if decoded[0].File != "a/b.go" {
		t.Errorf("path under cwd not relativized: %q", decoded[0].File)
	}
	if decoded[1].File != "/elsewhere/c.go" {
		t.Errorf("path outside cwd rewritten: %q", decoded[1].File)
	}
	if decoded[0].Line != 3 || decoded[0].Col != 7 || decoded[0].Check != "nilsafe" {
		t.Errorf("fields mangled: %+v", decoded[0])
	}
	if decoded[0].Message != `method "X" dereferences receiver` {
		t.Errorf("quote escaping broken: %q", decoded[0].Message)
	}
}

// TestRenderSARIF checks the 2.1.0 log against what the code-scanning
// ingester needs: schema/version headers, the analyzer catalogue as
// rules, error-level results with file:line regions, and a present (not
// null) results array on a clean run.
func TestRenderSARIF(t *testing.T) {
	diags := []lint.Diagnostic{
		{
			Pos:     token.Position{Filename: "/w/a/b.go", Line: 3, Column: 7},
			Check:   "pairing",
			Message: `snapshot acquired by "acquire" leaks`,
		},
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(renderSARIF(diags, "/w")), &log); err != nil {
		t.Fatalf("output does not decode: %v", err)
	}
	if log.Version != "2.1.0" || log.Schema == "" {
		t.Errorf("bad header: version %q schema %q", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "hinlint" {
		t.Errorf("driver name %q", run.Tool.Driver.Name)
	}
	ruleIDs := make(map[string]bool)
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	for _, a := range lint.Analyzers() {
		if !ruleIDs[a.Name] {
			t.Errorf("analyzer %q missing from rules", a.Name)
		}
	}
	if !ruleIDs["directive"] {
		t.Error("directive rule missing")
	}
	if len(run.Results) != 1 {
		t.Fatalf("got %d results, want 1", len(run.Results))
	}
	res := run.Results[0]
	if res.RuleID != "pairing" || res.Level != "error" {
		t.Errorf("result header mangled: %+v", res)
	}
	if res.Message.Text != `snapshot acquired by "acquire" leaks` {
		t.Errorf("message mangled: %q", res.Message.Text)
	}
	if len(res.Locations) != 1 {
		t.Fatalf("got %d locations, want 1", len(res.Locations))
	}
	phys := res.Locations[0].PhysicalLocation
	if phys.ArtifactLocation.URI != "a/b.go" {
		t.Errorf("path under cwd not relativized: %q", phys.ArtifactLocation.URI)
	}
	if phys.Region.StartLine != 3 || phys.Region.StartColumn != 7 {
		t.Errorf("region mangled: %+v", phys.Region)
	}

	// A clean tree uploads an empty-but-present results array.
	var raw map[string]any
	if err := json.Unmarshal([]byte(renderSARIF(nil, "/w")), &raw); err != nil {
		t.Fatal(err)
	}
	runs := raw["runs"].([]any)
	if results, ok := runs[0].(map[string]any)["results"].([]any); !ok {
		t.Error("clean run must carry a results array, not null")
	} else if len(results) != 0 {
		t.Errorf("clean run has %d results", len(results))
	}
}
