// Command benchdiff compares two benchdump snapshots (see cmd/benchdump
// and BENCH_*.json) and fails when a selected benchmark regressed: ns/op
// worse than the tolerance, or allocs/op growth beyond -alloc-tol percent
// of the baseline. The alloc tolerance is proportional, so a zero-alloc
// baseline always demands exactly zero - no percentage loosens the
// zero-allocation guarantees. It is the
// bench-regression gate `make verify` runs against the committed baseline,
// keeping the repository's zero-allocation guarantees enforced instead of
// documented.
//
// Usage:
//
//	benchdiff -old BENCH_3.json -new /tmp/bench.json
//	benchdiff -old BENCH_3.json -new /tmp/bench.json \
//	          -match 'DeanonymizeSingle|DeanonymizeInstrumented' -tol 15
//
// Exit status is 0 when every compared benchmark is within tolerance, 1 on
// any regression (or when -match selects nothing), 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"regexp"
	"sort"

	"github.com/hinpriv/dehin/internal/benchjson"
	"github.com/hinpriv/dehin/internal/obs"
)

// logger carries the gate's error reporting (stdout is reserved for the
// per-benchmark comparison table).
var logger = obs.NewLogger(os.Stderr, slog.LevelInfo)

func main() {
	var (
		oldPath = flag.String("old", "", "baseline snapshot (required)")
		newPath = flag.String("new", "", "candidate snapshot (required)")
		match   = flag.String("match", ".", "regexp selecting benchmark names to gate")
		tol     = flag.Float64("tol", 15, "maximum allowed ns/op regression, percent")
		aTol    = flag.Float64("alloc-tol", 0, "maximum allowed allocs/op growth, percent of baseline (0 = exact)")
	)
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		logger.Error("-old and -new are required")
		os.Exit(2)
	}
	re, err := regexp.Compile(*match)
	if err != nil {
		logger.Error("bad -match", "err", err)
		os.Exit(2)
	}
	oldM, err := benchjson.Load(*oldPath)
	if err != nil {
		logger.Error("baseline load failed", "err", err)
		os.Exit(2)
	}
	newM, err := benchjson.Load(*newPath)
	if err != nil {
		logger.Error("candidate load failed", "err", err)
		os.Exit(2)
	}

	// Gate over the union of both snapshots: a benchmark only in the
	// candidate is new (no baseline to regress against - reported, then
	// skipped, so landing a benchmark and its baseline can be one change);
	// one only in the baseline is reported as gone but does not fail the
	// gate, since renames land the same way. Only an empty union - the
	// -match selecting nothing anywhere - is an error.
	seen := make(map[string]bool)
	var names []string
	for _, m := range []map[string]benchjson.Entry{newM, oldM} {
		for name := range m {
			if re.MatchString(name) && !seen[name] {
				seen[name] = true
				names = append(names, name)
			}
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		logger.Error("-match selects no benchmark", "match", *match, "in", *newPath)
		os.Exit(1)
	}

	failed := false
	fmt.Printf("benchdiff: %s -> %s (tolerance %.0f%% ns/op, %.0f%% allocs/op growth)\n",
		*oldPath, *newPath, *tol, *aTol)
	for _, name := range names {
		nw, inNew := newM[name]
		od, inOld := oldM[name]
		if !inNew {
			fmt.Printf("  %-36s GONE (baseline only, skipped)\n", name)
			continue
		}
		if !inOld {
			fmt.Printf("  %-36s NEW  %.1f ns/op  %.0f allocs/op (no baseline, skipped)\n",
				name, nw.NsPerOp, nw.AllocsOp)
			continue
		}
		verdict := "ok"
		deltaPct := 0.0
		if od.NsPerOp > 0 {
			deltaPct = (nw.NsPerOp - od.NsPerOp) / od.NsPerOp * 100
		}
		if deltaPct > *tol {
			verdict = fmt.Sprintf("FAIL ns/op regression > %.0f%%", *tol)
			failed = true
		}
		if nw.AllocsOp > od.AllocsOp*(1+*aTol/100) {
			verdict = fmt.Sprintf("FAIL allocs/op %.0f -> %.0f", od.AllocsOp, nw.AllocsOp)
			failed = true
		}
		fmt.Printf("  %-36s %9.1f -> %9.1f ns/op (%+6.1f%%)  %3.0f -> %3.0f allocs/op  %s\n",
			name, od.NsPerOp, nw.NsPerOp, deltaPct, od.AllocsOp, nw.AllocsOp, verdict)
	}
	if failed {
		logger.Error("regression detected")
		os.Exit(1)
	}
}
