// Command hinrisk computes the privacy risk (Theorem 1) of a dataset on
// disk, sweeping link-type subsets and neighbor distances like the paper's
// Table 1.
//
// Usage:
//
//	hinrisk -data data/ -maxdistance 3
//	hinrisk -data data/ -community 0 -maxdistance 3
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"github.com/hinpriv/dehin/internal/experiments"
	"github.com/hinpriv/dehin/internal/hin"
	"github.com/hinpriv/dehin/internal/obs"
	"github.com/hinpriv/dehin/internal/randx"
	"github.com/hinpriv/dehin/internal/risk"
	"github.com/hinpriv/dehin/internal/tqq"
)

// logger is the command's structured stderr output (see internal/obs).
var logger = obs.NewLogger(os.Stderr, slog.LevelInfo)

func main() {
	var (
		dataDir   = flag.String("data", "", "dataset directory (required)")
		community = flag.Int("community", -1, "analyze a planted community instead of the whole graph")
		maxDist   = flag.Int("maxdistance", 3, "largest max-distance to sweep")
		seed      = flag.Uint64("seed", 1, "sampling seed")
		workers   = flag.Int("workers", 0, "refinement worker pool size (0 = GOMAXPROCS); results are identical at any count")
	)
	flag.Parse()
	if *dataDir == "" {
		fatalf("-data is required")
	}
	ds, err := tqq.LoadDataset(*dataDir)
	if err != nil {
		fatalf("load: %v", err)
	}
	g := ds.Graph
	if *community >= 0 {
		tgt, err := tqq.CommunityTarget(ds, *community, randx.New(*seed))
		if err != nil {
			fatalf("community: %v", err)
		}
		g = tgt.Graph
	}
	den := "-"
	if v, err := hin.Density(g); err == nil {
		den = fmt.Sprintf("%.6f", v)
	}
	fmt.Printf("graph: %d users, %d edges, density %s\n\n", g.NumEntities(), g.NumEdgesTotal(), den)

	r0, err := risk.NetworkRisk(g, risk.SignatureConfig{
		MaxDistance: 0,
		EntityAttrs: []int{tqq.AttrNumTags},
		Workers:     *workers,
	})
	if err != nil {
		fatalf("risk: %v", err)
	}
	fmt.Printf("distance 0 (profiles only): risk %.1f%%\n\n", r0*100)
	fmt.Printf("%-10s", "subset")
	for n := 1; n <= *maxDist; n++ {
		fmt.Printf("  n=%d   ", n)
	}
	fmt.Println()
	for _, s := range experiments.LinkSubsets(g.Schema()) {
		fmt.Printf("%-10s", s.Name)
		// One sweep per subset yields every distance column.
		sw, err := risk.NetworkSweep(g, risk.SignatureConfig{
			MaxDistance: *maxDist,
			LinkTypes:   s.Links,
			EntityAttrs: []int{tqq.AttrNumTags},
			Workers:     *workers,
		})
		if err != nil {
			fatalf("risk: %v", err)
		}
		for n := 1; n <= *maxDist; n++ {
			fmt.Printf("  %5.1f%%", sw.Risk[n]*100)
		}
		fmt.Println()
	}
}

func fatalf(format string, args ...any) {
	logger.Error(fmt.Sprintf(format, args...))
	os.Exit(1)
}
