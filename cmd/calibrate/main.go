// Command calibrate measures, for candidate generator settings, the
// quantities the paper's evaluation shapes depend on - distance-0
// precision (the profile floor), distance-1 precision at the sparsest and
// densest targets, and single-link-type risk at distances 1-2 - so the
// scaled-down auxiliary network can be tuned to reproduce the shapes of
// Tables 1-4 (see DESIGN.md on why the raw profile cardinalities must
// shrink with the auxiliary size).
//
// Usage:
//
//	calibrate -aux 50000 -target 1000 -yobspan 87,30,12 -bgdeg 1.6,4,6.5
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/hinpriv/dehin/internal/anonymize"
	"github.com/hinpriv/dehin/internal/dehin"
	"github.com/hinpriv/dehin/internal/hin"
	"github.com/hinpriv/dehin/internal/obs"
	"github.com/hinpriv/dehin/internal/randx"
	"github.com/hinpriv/dehin/internal/risk"
	"github.com/hinpriv/dehin/internal/tqq"
)

// logger is the command's structured stderr output (see internal/obs).
var logger *obs.Logger

func main() {
	var (
		aux      = flag.Int("aux", 50000, "auxiliary users")
		target   = flag.Int("target", 1000, "target size")
		yobSpans = flag.String("yobspan", "87,30,12", "yob spans to sweep")
		bgDegs   = flag.String("bgdeg", "1.6,4,6.5", "background avg out-degrees per link type to sweep")
		seed     = flag.Uint64("seed", 1, "seed")
	)
	flag.Parse()
	logger = obs.NewLogger(os.Stderr, slog.LevelInfo)

	fmt.Printf("%-8s %-6s | %-7s %-7s %-7s | %-7s %-7s\n",
		"yobspan", "bgdeg", "p(n=0)", "p@.001", "p@.01", "r_f(1)", "r_f(2)")
	for _, ys := range parseList(*yobSpans) {
		for _, bg := range parseList(*bgDegs) {
			measure(*aux, *target, int(ys), bg, *seed)
		}
	}
}

func parseList(s string) []float64 {
	var out []float64
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			logger.Error("bad sweep value", "value", p)
			os.Exit(1)
		}
		out = append(out, v)
	}
	return out
}

func measure(aux, target, yobSpan int, bgDeg float64, seed uint64) {
	start := time.Now()
	cfg := tqq.DefaultConfig(aux, seed)
	cfg.YearMax = cfg.YearMin + yobSpan - 1
	cfg.BackgroundAvgOutDeg = bgDeg
	cfg.Communities = []tqq.CommunitySpec{
		{Size: target, Density: 0.001},
		{Size: target, Density: 0.01},
	}
	ds, err := tqq.Generate(cfg)
	if err != nil {
		fatal(err)
	}
	idx, err := dehin.NewIndex(ds.Graph, dehin.TQQProfile())
	if err != nil {
		fatal(err)
	}
	prec := func(ci, dist int) float64 {
		tgt, err := tqq.CommunityTarget(ds, ci, randx.New(seed+7))
		if err != nil {
			fatal(err)
		}
		anon, err := anonymize.RandomizeIDs(tgt.Graph, seed+9)
		if err != nil {
			fatal(err)
		}
		truth := make([]hin.EntityID, len(anon.ToOrig))
		for i, t0 := range anon.ToOrig {
			truth[i] = tgt.Orig[t0]
		}
		a, err := dehin.NewAttack(ds.Graph, dehin.Config{
			MaxDistance: dist,
			Profile:     dehin.TQQProfile(),
			SharedIndex: idx,
		})
		if err != nil {
			fatal(err)
		}
		res, err := a.Run(anon.Graph, truth)
		if err != nil {
			fatal(err)
		}
		return res.Precision
	}
	riskF := func(ci, dist int) float64 {
		tgt, err := tqq.CommunityTarget(ds, ci, randx.New(seed+7))
		if err != nil {
			fatal(err)
		}
		f := ds.Graph.Schema().MustLinkTypeID(tqq.LinkFollow)
		r, err := risk.NetworkRisk(tgt.Graph, risk.SignatureConfig{
			MaxDistance: dist,
			LinkTypes:   []hin.LinkTypeID{f},
			EntityAttrs: []int{tqq.AttrNumTags},
		})
		if err != nil {
			fatal(err)
		}
		return r
	}
	fmt.Printf("%-8d %-6.1f | %-7.3f %-7.3f %-7.3f | %-7.3f %-7.3f  (%v)\n",
		yobSpan, bgDeg,
		prec(1, 0), prec(0, 1), prec(1, 1),
		riskF(1, 1), riskF(1, 2),
		time.Since(start).Round(time.Second))
}

func fatal(err error) {
	logger.Error("calibrate failed", "err", err)
	os.Exit(1)
}
