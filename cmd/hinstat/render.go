package main

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"github.com/hinpriv/dehin/internal/obs"
)

// parseSeries splits an obs series id — name{k1="v1",k2="v2"} — back
// into its family name and label map. The registry canonicalizes ids
// (labels sorted, values escaped), and every label value the repository
// emits is a plain identifier, so a simple scan suffices; a malformed id
// comes back with nil labels rather than an error.
func parseSeries(id string) (string, map[string]string) {
	brace := strings.IndexByte(id, '{')
	if brace < 0 {
		return id, nil
	}
	family := id[:brace]
	body := strings.TrimSuffix(id[brace+1:], "}")
	labels := map[string]string{}
	for _, part := range strings.Split(body, ",") {
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			continue
		}
		labels[k] = strings.Trim(v, `"`)
	}
	return family, labels
}

// fmtValue renders a metric value for humans: families carrying
// nanoseconds (…_ns and their quantile offshoots) become rounded
// durations, byte families become KiB/MiB/GiB, everything else is the
// plain integer.
func fmtValue(family string, v int64) string {
	switch {
	case strings.Contains(family, "_ns"):
		return time.Duration(v).Round(time.Microsecond).String()
	case strings.HasSuffix(family, "_bytes"):
		return fmtBytes(v)
	default:
		return fmt.Sprintf("%d", v)
	}
}

func fmtBytes(v int64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(v)/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(v)/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(v)/(1<<10))
	default:
		return fmt.Sprintf("%dB", v)
	}
}

// diffHistogram returns the histogram of observations recorded between
// two cumulative snapshots of the same series: per-bucket count
// subtraction, with quantiles recomputed over the delta. Buckets stay in
// ascending upper-bound order, which Quantile requires.
func diffHistogram(prev, cur obs.HistSnapshot) obs.HistSnapshot {
	prevCount := make(map[int64]int64, len(prev.Buckets))
	for _, b := range prev.Buckets {
		prevCount[b.UpperBound] = b.Count
	}
	var out obs.HistSnapshot
	for _, b := range cur.Buckets {
		d := b.Count - prevCount[b.UpperBound]
		if d <= 0 {
			continue
		}
		out.Count += d
		out.Buckets = append(out.Buckets, obs.Bucket{UpperBound: b.UpperBound, Count: d})
	}
	out.Sum = cur.Sum - prev.Sum
	if out.Count > 0 {
		out.P50 = out.Quantile(0.50)
		out.P95 = out.Quantile(0.95)
		out.P99 = out.Quantile(0.99)
	}
	return out
}

// health is the decoded /v1/healthz body.
type health struct {
	Status string  `json:"status"`
	Epoch  uint64  `json:"epoch"`
	AgeS   float64 `json:"age_s"`
}

// endpointRow is one line of the live per-endpoint table, aggregated
// from the serve_requests_total and serve_request_ns series.
type endpointRow struct {
	name            string
	requests        int64 // delta over the interval
	ok, clientErr   int64
	serverErr, busy int64
	lat             obs.HistSnapshot
}

// collectEndpoints aggregates the serve request series into per-endpoint
// interval rows (cur minus prev; pass an empty prev for absolute
// totals). Rows come back sorted by endpoint name.
func collectEndpoints(prev, cur obs.Snapshot) []endpointRow {
	rows := map[string]*endpointRow{}
	get := func(name string) *endpointRow {
		r, ok := rows[name]
		if !ok {
			r = &endpointRow{name: name}
			rows[name] = r
		}
		return r
	}
	for id, v := range cur.Counters {
		family, labels := parseSeries(id)
		if family != "serve_requests_total" || labels["endpoint"] == "" {
			continue
		}
		d := v - prev.Counters[id]
		if d < 0 {
			d = v // counter reset (server restart): fall back to absolute
		}
		r := get(labels["endpoint"])
		r.requests += d
		switch c := labels["code"]; {
		case strings.HasPrefix(c, "2"):
			r.ok += d
		case c == "429":
			r.busy += d
		case strings.HasPrefix(c, "4"):
			r.clientErr += d
		default:
			r.serverErr += d
		}
	}
	for id, h := range cur.Histograms {
		family, labels := parseSeries(id)
		if family != "serve_request_ns" || labels["endpoint"] == "" {
			continue
		}
		get(labels["endpoint"]).lat = diffHistogram(prev.Histograms[id], h)
	}
	names := make([]string, 0, len(rows))
	for n := range rows {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]endpointRow, 0, len(names))
	for _, n := range names {
		out = append(out, *rows[n])
	}
	return out
}

// renderLive writes one refresh of the top-like view: a header line
// (epoch, admission pressure, runtime state), the per-endpoint table
// with interval QPS and latency quantiles, and the flight/GC counters.
// dt is the interval in seconds; pass 0 (with an empty prev) for a
// single absolute view, which prints totals instead of rates.
// console funnels all render output through one choke point: hinstat
// renders to a terminal (or a golden-test buffer), where a failed write
// has no in-process remedy, so the error is dropped exactly once here.
type console struct{ w io.Writer }

func (c console) printf(format string, args ...any) {
	_, _ = fmt.Fprintf(c.w, format, args...) //hin:allow errdrop -- terminal rendering: a console write failure has no in-process remedy
}

func (c console) println(args ...any) {
	_, _ = fmt.Fprintln(c.w, args...) //hin:allow errdrop -- terminal rendering: a console write failure has no in-process remedy
}

func renderLive(w io.Writer, prev, cur obs.Snapshot, dt float64, h *health) {
	c := console{w}
	status, epoch := "?", int64(cur.Gauge("serve_epoch"))
	if h != nil {
		status = h.Status
		epoch = int64(h.Epoch)
	}
	c.printf("hinriskd %s  epoch %d", status, epoch)
	if h != nil {
		c.printf("  snapshot age %s", (time.Duration(h.AgeS * float64(time.Second))).Round(time.Second))
	}
	c.printf("\nattack inflight %d  queue %d  rejected %d  flight captured %d\n",
		cur.Gauge("serve_attack_inflight"), cur.Gauge("serve_attack_queue_depth"),
		cur.Counter("serve_attack_rejected_total"), cur.Counter("serve_flight_captured_total"))
	c.printf("goroutines %d  heap %s live / %s goal  gc cycles %d  gc pause p99 %s  sched p99 %s\n",
		cur.Gauge("runtime_goroutines"),
		fmtBytes(cur.Gauge("runtime_heap_live_bytes")), fmtBytes(cur.Gauge("runtime_heap_goal_bytes")),
		cur.Counter("runtime_gc_cycles_total"),
		fmtValue("_ns", cur.Histograms["runtime_gc_pause_ns"].P99),
		fmtValue("_ns", cur.Histograms["runtime_sched_latency_ns"].P99))

	rows := collectEndpoints(prev, cur)
	if len(rows) == 0 {
		c.println("(no serve metrics yet)")
		return
	}
	rate := "qps"
	if dt <= 0 {
		rate = "reqs"
	}
	c.printf("%-10s %10s %10s %10s %10s %6s %6s %6s %6s\n",
		"endpoint", rate, "p50", "p95", "p99", "2xx", "4xx", "429", "5xx")
	for _, r := range rows {
		rateCell := fmt.Sprintf("%d", r.requests)
		if dt > 0 {
			rateCell = fmt.Sprintf("%.1f", float64(r.requests)/dt)
		}
		c.printf("%-10s %10s %10s %10s %10s %6d %6d %6d %6d\n",
			r.name, rateCell,
			fmtValue("_ns", r.lat.P50), fmtValue("_ns", r.lat.P95), fmtValue("_ns", r.lat.P99),
			r.ok, r.clientErr, r.busy, r.serverErr)
	}
}

// renderDiff writes the before/after comparison of two snapshots as a
// deterministic table: counters, gauges, then histograms, each sorted by
// series id, showing old → new and the delta. Series present in only one
// snapshot show on their side with a "-" on the other. This is the
// golden-tested surface behind `hinstat -diff a.json b.json`.
func renderDiff(w io.Writer, a, b obs.Snapshot) {
	c := console{w}
	c.println("counters")
	for _, id := range unionKeys(a.Counters, b.Counters) {
		family, _ := parseSeries(id)
		av, aok := a.Counters[id]
		bv, bok := b.Counters[id]
		c.printf("  %-60s %12s -> %-12s %+d\n", id,
			presentValue(family, av, aok), presentValue(family, bv, bok), bv-av)
	}
	c.println("gauges")
	for _, id := range unionKeys(a.Gauges, b.Gauges) {
		family, _ := parseSeries(id)
		av, aok := a.Gauges[id]
		bv, bok := b.Gauges[id]
		c.printf("  %-60s %12s -> %-12s %+d\n", id,
			presentValue(family, av, aok), presentValue(family, bv, bok), bv-av)
	}
	c.println("histograms")
	for _, id := range unionKeys(a.Histograms, b.Histograms) {
		family, _ := parseSeries(id)
		ah := a.Histograms[id]
		bh := b.Histograms[id]
		d := diffHistogram(ah, bh)
		c.printf("  %-60s count %d -> %d (%+d)  p50 %s -> %s  p99 %s -> %s",
			id, ah.Count, bh.Count, bh.Count-ah.Count,
			fmtValue(family, ah.P50), fmtValue(family, bh.P50),
			fmtValue(family, ah.P99), fmtValue(family, bh.P99))
		if d.Count > 0 {
			c.printf("  interval p50 %s p99 %s",
				fmtValue(family, d.P50), fmtValue(family, d.P99))
		}
		c.println()
	}
}

func presentValue(family string, v int64, present bool) string {
	if !present {
		return "-"
	}
	return fmtValue(family, v)
}

func unionKeys[V any](a, b map[string]V) []string {
	seen := map[string]bool{}
	for k := range a {
		seen[k] = true
	}
	for k := range b {
		seen[k] = true
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
