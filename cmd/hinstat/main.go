// Command hinstat is the live operator console for hinriskd: it polls a
// running daemon's /debug/vars and /v1/healthz and renders a top-like
// view of QPS, per-endpoint latency quantiles, admission pressure,
// snapshot epoch, and runtime/GC state. It can also diff two archived
// metric snapshots (the obs -metrics-dump / WriteJSON format) for
// before/after comparisons without a live server.
//
// Usage:
//
//	hinstat -url http://127.0.0.1:8321            # refresh every 2s
//	hinstat -url http://127.0.0.1:8321 -once      # one absolute view
//	hinstat -diff before.json after.json          # offline comparison
//
// Live rates are interval deltas: QPS and the latency quantiles cover
// only the requests that arrived between two consecutive polls, so the
// view tracks "now", not the lifetime average.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/hinpriv/dehin/internal/obs"
)

// logger is the command's structured stderr output (see internal/obs).
var logger = obs.NewLogger(os.Stderr, slog.LevelInfo)

func main() {
	var (
		url      = flag.String("url", "http://127.0.0.1:8321", "base URL of the hinriskd instance to watch")
		interval = flag.Duration("interval", 2*time.Second, "poll interval for the live view")
		count    = flag.Int("count", 0, "exit after this many refreshes (0 = until interrupted)")
		once     = flag.Bool("once", false, "print one absolute (lifetime totals) view and exit")
		noClear  = flag.Bool("no-clear", false, "append refreshes instead of clearing the screen")
		diff     = flag.Bool("diff", false, "compare two metric snapshot files: hinstat -diff a.json b.json")
	)
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			fatalf("-diff needs exactly two snapshot files, got %d args", flag.NArg())
		}
		a, err := readSnapshotFile(flag.Arg(0))
		if err != nil {
			fatalf("%v", err)
		}
		b, err := readSnapshotFile(flag.Arg(1))
		if err != nil {
			fatalf("%v", err)
		}
		renderDiff(os.Stdout, a, b)
		return
	}

	base := strings.TrimRight(*url, "/")
	client := &http.Client{Timeout: 5 * time.Second}

	if *once {
		cur, h, err := poll(client, base)
		if err != nil {
			fatalf("%v", err)
		}
		renderLive(os.Stdout, obs.Snapshot{}, cur, 0, h)
		return
	}

	prev, prevH, err := poll(client, base)
	if err != nil {
		fatalf("%v", err)
	}
	if !*noClear {
		fmt.Print("\x1b[2J")
	}
	renderFrame(prev, prevH, obs.Snapshot{}, 0, *noClear)
	prevAt := time.Now()
	for i := 1; *count == 0 || i < *count; i++ {
		time.Sleep(*interval)
		cur, h, err := poll(client, base)
		if err != nil {
			logger.Error("poll failed; retrying", "url", base, "err", err)
			continue
		}
		now := time.Now()
		renderFrame(cur, h, prev, now.Sub(prevAt).Seconds(), *noClear)
		prev, prevAt = cur, now
	}
}

// renderFrame draws one refresh, home-cursoring first unless -no-clear.
func renderFrame(cur obs.Snapshot, h *health, prev obs.Snapshot, dt float64, noClear bool) {
	if !noClear {
		// Home the cursor and clear to end of screen: repaint in place
		// without the full-clear flicker.
		fmt.Print("\x1b[H\x1b[0J")
	}
	renderLive(os.Stdout, prev, cur, dt, h)
}

// poll fetches one consistent view of the daemon: the metric snapshot
// from /debug/vars (the expvar "obs" key is obs.Snapshot JSON) and the
// readiness state from /v1/healthz. A healthz failure is not fatal —
// the view degrades to metrics-only — but the metrics fetch must work.
func poll(client *http.Client, base string) (obs.Snapshot, *health, error) {
	var vars struct {
		Obs obs.Snapshot `json:"obs"`
	}
	if err := getJSON(client, base+"/debug/vars", &vars); err != nil {
		return obs.Snapshot{}, nil, err
	}
	var h health
	if err := getJSON(client, base+"/v1/healthz", &h); err != nil {
		return vars.Obs, nil, nil
	}
	return vars.Obs, &h, nil
}

// getJSON fetches url and decodes the body. Non-2xx status is an error
// except for healthz's 503, whose body still carries the status field.
func getJSON(client *http.Client, url string, dst any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		return fmt.Errorf("GET %s: decode: %w", url, err)
	}
	return nil
}

// readSnapshotFile loads an obs.Snapshot from disk, accepting both the
// bare WriteJSON/-metrics-dump format and a /debug/vars capture (where
// the snapshot sits under the expvar "obs" key).
func readSnapshotFile(path string) (obs.Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return obs.Snapshot{}, err
	}
	var envelope struct {
		Obs *obs.Snapshot `json:"obs"`
	}
	if err := json.Unmarshal(data, &envelope); err == nil && envelope.Obs != nil {
		return *envelope.Obs, nil
	}
	var s obs.Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return obs.Snapshot{}, fmt.Errorf("%s: not a metric snapshot: %w", path, err)
	}
	return s, nil
}

func fatalf(format string, args ...any) {
	logger.Error(fmt.Sprintf(format, args...))
	os.Exit(1)
}
