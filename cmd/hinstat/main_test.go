package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/hinpriv/dehin/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// snapBefore/snapAfter are the deterministic fixture pair: a serving
// registry early in a load run and the same registry later, with an
// endpoint and a histogram that only exist on one side to exercise the
// union rendering.
func snapBefore() obs.Snapshot {
	r := obs.New()
	r.Counter("serve_requests_total", "endpoint", "risk", "code", "200").Add(100)
	r.Counter("serve_requests_total", "endpoint", "risk", "code", "404").Add(3)
	r.Counter("serve_old_only_total").Add(7)
	r.Gauge("serve_epoch").Set(1)
	r.Gauge("runtime_heap_live_bytes").Set(5 << 20)
	r.Histogram("serve_request_ns", "endpoint", "risk").ObserveN(4000, 100)
	return r.Snapshot()
}

func snapAfter() obs.Snapshot {
	r := obs.New()
	r.Counter("serve_requests_total", "endpoint", "risk", "code", "200").Add(350)
	r.Counter("serve_requests_total", "endpoint", "risk", "code", "404").Add(3)
	r.Counter("serve_requests_total", "endpoint", "dehin", "code", "429").Add(12)
	r.Gauge("serve_epoch").Set(3)
	r.Gauge("runtime_heap_live_bytes").Set(9 << 20)
	h := r.Histogram("serve_request_ns", "endpoint", "risk")
	h.ObserveN(4000, 100)
	h.ObserveN(60000, 250) // the interval's requests were slower
	r.Histogram("serve_request_ns", "endpoint", "dehin").ObserveN(3_000_000, 12)
	return r.Snapshot()
}

func TestParseSeries(t *testing.T) {
	fam, labels := parseSeries(`serve_requests_total{code="200",endpoint="risk"}`)
	if fam != "serve_requests_total" || labels["code"] != "200" || labels["endpoint"] != "risk" {
		t.Fatalf("parse = %q %v", fam, labels)
	}
	fam, labels = parseSeries("runtime_goroutines")
	if fam != "runtime_goroutines" || labels != nil {
		t.Fatalf("bare parse = %q %v", fam, labels)
	}
}

// TestDiffHistogram pins the interval arithmetic: only the between-poll
// observations survive, and quantiles are recomputed over the delta.
func TestDiffHistogram(t *testing.T) {
	id := `serve_request_ns{endpoint="risk"}`
	a, b := snapBefore(), snapAfter()
	d := diffHistogram(a.Histograms[id], b.Histograms[id])
	if d.Count != 250 {
		t.Fatalf("delta count = %d, want 250", d.Count)
	}
	// All 250 interval observations landed in the 60000ns power-of-two
	// bucket, so every quantile must sit in that bucket's range.
	if d.P50 < 32769 || d.P50 > 65536 || d.P99 < 32769 || d.P99 > 65536 {
		t.Fatalf("delta quantiles p50=%d p99=%d outside the interval bucket", d.P50, d.P99)
	}
	// Diff against an empty previous snapshot is the absolute histogram.
	abs := diffHistogram(obs.HistSnapshot{}, b.Histograms[id])
	if abs.Count != 350 {
		t.Fatalf("absolute count = %d, want 350", abs.Count)
	}
}

// TestRenderDiffGolden pins the deterministic before/after table, the
// surface behind `hinstat -diff a.json b.json`. Regenerate with:
//
//	go test ./cmd/hinstat -run RenderDiffGolden -update
func TestRenderDiffGolden(t *testing.T) {
	var buf bytes.Buffer
	renderDiff(&buf, snapBefore(), snapAfter())

	golden := filepath.Join("testdata", "diff.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if buf.String() != string(want) {
		t.Fatalf("diff table mismatch:\ngot:\n%s\nwant:\n%s", buf.String(), want)
	}
}

// TestRenderLive checks the live view's aggregation: QPS from counter
// deltas over the interval, per-endpoint latency from histogram deltas,
// status-class bucketing, and the header gauges.
func TestRenderLive(t *testing.T) {
	var buf bytes.Buffer
	h := &health{Status: "ok", Epoch: 3, AgeS: 12}
	renderLive(&buf, snapBefore(), snapAfter(), 5.0, h)
	out := buf.String()

	for _, want := range []string{
		"hinriskd ok  epoch 3",
		"snapshot age 12s",
		"heap 9.0MiB live",
		"endpoint",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("live view missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	var riskLine, dehinLine string
	for _, l := range lines {
		if strings.HasPrefix(l, "risk ") {
			riskLine = l
		}
		if strings.HasPrefix(l, "dehin ") {
			dehinLine = l
		}
	}
	// risk: 250 new requests over 5s = 50.0 qps, all 2xx.
	if !strings.Contains(riskLine, "50.0") {
		t.Fatalf("risk qps wrong: %q", riskLine)
	}
	// dehin appeared this interval: 12 rejected requests = 2.4 qps,
	// bucketed under 429.
	if !strings.Contains(dehinLine, "2.4") || !strings.Contains(dehinLine, "12") {
		t.Fatalf("dehin line wrong: %q", dehinLine)
	}

	// Absolute mode (dt=0) shows totals, not rates.
	buf.Reset()
	renderLive(&buf, obs.Snapshot{}, snapAfter(), 0, nil)
	if !strings.Contains(buf.String(), "reqs") || !strings.Contains(buf.String(), "350") {
		t.Fatalf("absolute view wrong:\n%s", buf.String())
	}
}

// TestReadSnapshotFile accepts both on-disk formats: the bare
// -metrics-dump WriteJSON object and a /debug/vars capture with the
// snapshot under the "obs" key.
func TestReadSnapshotFile(t *testing.T) {
	dir := t.TempDir()
	bare := filepath.Join(dir, "bare.json")
	if err := os.WriteFile(bare, []byte(`{"counters":{"x":5},"histograms":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := readSnapshotFile(bare)
	if err != nil || s.Counters["x"] != 5 {
		t.Fatalf("bare = %+v, %v", s, err)
	}
	wrapped := filepath.Join(dir, "vars.json")
	if err := os.WriteFile(wrapped, []byte(`{"cmdline":["x"],"obs":{"counters":{"y":9},"histograms":{}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err = readSnapshotFile(wrapped)
	if err != nil || s.Counters["y"] != 9 {
		t.Fatalf("wrapped = %+v, %v", s, err)
	}
	if _, err := readSnapshotFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file must error")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("not json"), 0o644)
	if _, err := readSnapshotFile(bad); err == nil {
		t.Fatal("malformed file must error")
	}
}
