# Development entry points. The repository is pure Go with no external
# dependencies; every target needs only the go toolchain.

GO ?= go

.PHONY: build test verify bench benchdump

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the CI gate: static checks plus the race-detector run over the
# packages with real concurrency (the sharded generator and the parallel
# workbench/registry). Keep it green before committing.
verify:
	$(GO) vet ./...
	$(GO) test -race ./internal/experiments ./internal/tqq

bench:
	$(GO) test -run '^$$' -bench . -benchmem

# benchdump refreshes the committed benchmark snapshot (see BENCH_*.json).
benchdump:
	$(GO) run ./cmd/benchdump -pkg ./... -out BENCH_2.json
