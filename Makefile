# Development entry points. The repository is pure Go with no external
# dependencies; every target needs only the go toolchain.

GO ?= go
FUZZTIME ?= 30s

# bench-diff gate knobs (see OBSERVABILITY.md "Bench-regression gate"):
#   BENCH_BASELINE   committed snapshot to compare against
#   BENCH_DIFF_MATCH benchmarks gated on every verify (keep them fast)
#   BENCH_DIFF_TOL   allowed ns/op regression in percent; raise on noisy
#                    shared machines
#   BENCH_DIFF_ALLOC_TOL  allowed allocs/op growth in percent of baseline.
#                    Proportional, so the zero-alloc query benchmarks still
#                    fail on any allocation; the slack only covers scheduler
#                    jitter in the parallel BenchmarkHinlintSelf
#   SKIP_BENCH_DIFF  set non-empty to skip the gate entirely
BENCH_BASELINE ?= BENCH_9.json
BENCH_DIFF_MATCH ?= BenchmarkDeanonymizeSingle|BenchmarkDeanonymizeSingleCSR|BenchmarkDeanonymizeInstrumented|BenchmarkPaperscale|BenchmarkServeRisk|BenchmarkHinlintSelf
BENCH_DIFF_PKGS ?= . ./internal/serve ./internal/lint
BENCH_DIFF_TOL ?= 15
BENCH_DIFF_ALLOC_TOL ?= 1
BENCH_VERIFY_OUT ?= /tmp/dehin-bench-verify.json

# serve-smoke knobs (see SERVICE.md "Load testing"):
#   SERVE_SMOKE_USERS    fixture graph size (small: this is a smoke, not
#                        the committed BENCH_7.json load run)
#   SERVE_SMOKE_SECONDS  burst duration
#   SERVE_SMOKE_TOL      allowed p99 regression in percent vs BENCH_7.json;
#                        wide because the smoke fixture is smaller and the
#                        burst shorter than the committed 30s/50k-user run
#   SKIP_SERVE_SMOKE     set non-empty to skip the smoke in verify
SERVE_SMOKE_USERS ?= 5000
SERVE_SMOKE_SECONDS ?= 5
SERVE_SMOKE_TOL ?= 300
SERVE_SMOKE_DIR ?= /tmp/dehin-serve-smoke

.PHONY: build test lint lint-mut verify race-par bench-diff fuzz bench benchdump serve-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint runs hinlint, the repository's custom analyzer suite (see LINT.md):
# the syntactic checks (determinism, nilsafe, hotpath, logdiscipline) plus
# the flow-sensitive CFG analyzers (pairing, shardsafety, goleak, errdrop)
# over every package. Must run from the module root - package loading
# resolves imports through the go command.
lint:
	$(GO) run ./cmd/hinlint ./...

# lint-mut runs the lint suite's mutation tests: copies of the real serve
# and risk packages with the canonical regressions re-introduced (an
# unpaired acquire, a hollowed-out release, an out-of-shard write) must
# each produce a file:line diagnostic, and the unmutated copies must lint
# clean. This is the proof that the gate still has teeth.
lint-mut:
	$(GO) test -run TestMutation -count=1 ./internal/lint

# verify is the CI gate: static checks (vet, then vet restricted to the
# mutex-copy and loop-capture analyzers so they stay on even if the default
# set changes, then hinlint), the race-detector run over the packages with
# real concurrency (the sharded generator, the parallel workbench/registry,
# the obs metrics registry, and the span tracer), the paperscale smoke
# (the miniature generate->persist->load->attack->risk pipeline; skip with
# SKIP_PAPERSCALE=1), the hinriskd end-to-end smoke (a real daemon under a
# short hinload burst, p99 gated against BENCH_7.json; skip with
# SKIP_SERVE_SMOKE=1), and the bench-regression gate on the
# zero-allocation query benchmarks. Keep it green before committing.
verify:
	$(GO) vet ./...
	$(GO) vet -copylocks -loopclosure ./...
	$(MAKE) lint
	$(GO) test -race ./internal/experiments ./internal/tqq ./internal/obs ./internal/obs/trace
	$(MAKE) race-par
ifeq ($(strip $(SKIP_PAPERSCALE)),)
	$(GO) test -run TestPaperscaleSmoke -count=1 .
endif
ifeq ($(strip $(SKIP_SERVE_SMOKE)),)
	$(MAKE) serve-smoke
endif
ifeq ($(strip $(SKIP_BENCH_DIFF)),)
	$(MAKE) bench-diff
endif

# race-par exercises the deterministic parallel-sweep paths under the race
# detector at GOMAXPROCS=2 - the smallest setting where workers actually
# interleave (single-core boxes otherwise collapse every pool to serial).
# The par primitives run in full; the heavier packages run only their
# worker-count determinism / byte-identity / parallel-path tests so the
# lane stays fast enough for every verify.
race-par:
	GOMAXPROCS=2 $(GO) test -race -count=1 ./internal/par
	GOMAXPROCS=2 $(GO) test -race -count=1 \
		-run 'Worker|Parallel|Sweep|Combine|Checksum|Reload' \
		./internal/risk ./internal/hin ./internal/dehin ./internal/serve

# serve-smoke is the end-to-end service gate: build the real binaries,
# generate a small deterministic fixture graph, run hinriskd under a short
# hinload burst (every request must succeed), and gate the measured p99
# against the committed BENCH_7.json load baseline via benchdiff. The
# burst is closed-loop at hinload's default concurrency, so it doubles as
# a quick sanity check that the admission-control path stays out of the
# read-only endpoints. The daemon runs with the full opt-in observability
# surface (flight recorder + runtime metrics), so the p99 gate measures
# the instrumented configuration; hinload -check-obs then scrapes
# /metrics and /debug/requests and asserts every serve_* and runtime_*
# family is present and the recorder saw the burst.
serve-smoke:
	mkdir -p $(SERVE_SMOKE_DIR)
	$(GO) build -o $(SERVE_SMOKE_DIR)/ ./cmd/hinriskd ./cmd/hinload ./cmd/tqqgen
	$(SERVE_SMOKE_DIR)/tqqgen -users $(SERVE_SMOKE_USERS) -seed 3 \
		-out $(SERVE_SMOKE_DIR)/fixture -graph-out $(SERVE_SMOKE_DIR)/fixture.hincsr
	$(SERVE_SMOKE_DIR)/hinload \
		-launch '$(SERVE_SMOKE_DIR)/hinriskd -graph $(SERVE_SMOKE_DIR)/fixture.hincsr -addr 127.0.0.1:0 -flight 64 -flight-slow 100ms -runtime-metrics 500ms' \
		-wait-ready 10s -check-obs \
		-duration $(SERVE_SMOKE_SECONDS)s -seed 1 -out $(SERVE_SMOKE_DIR)/report.json
	$(GO) run ./cmd/benchdiff -old BENCH_7.json -new $(SERVE_SMOKE_DIR)/report.json \
		-match 'BenchmarkLoad' -tol $(SERVE_SMOKE_TOL)

# bench-diff re-measures the gated benchmarks and fails on a >BENCH_DIFF_TOL%
# ns/op or any allocs/op regression against BENCH_BASELINE. The serve
# package rides along for BenchmarkServeRisk/-Instrumented, whose
# allocs/op part of the gate pins the instrumented serving path at zero
# allocations; the lint package rides along for BenchmarkHinlintSelf so
# analyzer slowdowns fail the same gate.
bench-diff:
	$(GO) run ./cmd/benchdump -bench '$(BENCH_DIFF_MATCH)' -pkg '$(BENCH_DIFF_PKGS)' -out $(BENCH_VERIFY_OUT)
	$(GO) run ./cmd/benchdiff -old $(BENCH_BASELINE) -new $(BENCH_VERIFY_OUT) \
		-match '$(BENCH_DIFF_MATCH)' -tol $(BENCH_DIFF_TOL) -alloc-tol $(BENCH_DIFF_ALLOC_TOL)

# fuzz runs each fuzz target for FUZZTIME (default 30s each). The committed
# seed corpora under testdata/fuzz also run as plain tests in `make test`.
fuzz:
	$(GO) test -fuzz FuzzProfileSpecValidate -fuzztime $(FUZZTIME) -run '^$$' ./internal/dehin
	$(GO) test -fuzz FuzzGenerateSmall -fuzztime $(FUZZTIME) -run '^$$' ./internal/tqq
	$(GO) test -fuzz FuzzAdjRowCodec -fuzztime $(FUZZTIME) -run '^$$' ./internal/hin

bench:
	$(GO) test -run '^$$' -bench . -benchmem

# benchdump refreshes the committed benchmark snapshot (see BENCH_*.json).
benchdump:
	$(GO) run ./cmd/benchdump -pkg ./... -out BENCH_9.json
