# Development entry points. The repository is pure Go with no external
# dependencies; every target needs only the go toolchain.

GO ?= go
FUZZTIME ?= 30s

.PHONY: build test verify fuzz bench benchdump

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the CI gate: static checks plus the race-detector run over the
# packages with real concurrency (the sharded generator, the parallel
# workbench/registry, and the obs metrics registry). Keep it green before
# committing.
verify:
	$(GO) vet ./...
	$(GO) test -race ./internal/experiments ./internal/tqq ./internal/obs

# fuzz runs each fuzz target for FUZZTIME (default 30s each). The committed
# seed corpora under testdata/fuzz also run as plain tests in `make test`.
fuzz:
	$(GO) test -fuzz FuzzProfileSpecValidate -fuzztime $(FUZZTIME) -run '^$$' ./internal/dehin
	$(GO) test -fuzz FuzzGenerateSmall -fuzztime $(FUZZTIME) -run '^$$' ./internal/tqq

bench:
	$(GO) test -run '^$$' -bench . -benchmem

# benchdump refreshes the committed benchmark snapshot (see BENCH_*.json).
benchdump:
	$(GO) run ./cmd/benchdump -pkg ./... -out BENCH_3.json
