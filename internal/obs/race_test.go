package obs

import (
	"runtime"
	"sync"
	"testing"
)

// TestConcurrentExactTotals hammers one counter, one histogram, and the
// registry lookup path from GOMAXPROCS goroutines and asserts the totals
// are exact - the metrics are plain atomics, so not a single increment may
// be lost. Run under -race via `make verify`.
func TestConcurrentExactTotals(t *testing.T) {
	r := New()
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	const perWorker = 5000

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Resolve handles inside the goroutine: the lookup path must
			// be safe concurrently with other lookups and with writes.
			c := r.Counter("hammer_total")
			h := r.Histogram("hammer_ns")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				c.Add(2)
				h.Observe(int64(i % 1024))
				if i%64 == 0 {
					// Interleave snapshots with writes.
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()

	wantCount := int64(workers * perWorker)
	if got := r.Counter("hammer_total").Value(); got != 3*wantCount {
		t.Fatalf("counter = %d, want %d", got, 3*wantCount)
	}
	h := r.Histogram("hammer_ns")
	if got := h.Count(); got != wantCount {
		t.Fatalf("histogram count = %d, want %d", got, wantCount)
	}
	var wantSum int64
	for i := 0; i < perWorker; i++ {
		wantSum += int64(i % 1024)
	}
	wantSum *= int64(workers)
	if got := h.Sum(); got != wantSum {
		t.Fatalf("histogram sum = %d, want %d", got, wantSum)
	}

	// The settled snapshot must agree exactly with the live values.
	s := r.Snapshot()
	if s.Counter("hammer_total") != 3*wantCount {
		t.Fatalf("snapshot counter = %d", s.Counter("hammer_total"))
	}
	hs := s.Histograms["hammer_ns"]
	if hs.Count != wantCount || hs.Sum != wantSum {
		t.Fatalf("snapshot histogram = %+v", hs)
	}
}

// TestSnapshotMonotone asserts that successive snapshots taken while
// writers are running never observe a counter moving backwards.
func TestSnapshotMonotone(t *testing.T) {
	r := New()
	c := r.Counter("mono_total")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Inc()
				}
			}
		}()
	}
	var last int64
	for i := 0; i < 200; i++ {
		v := r.Snapshot().Counter("mono_total")
		if v < last {
			t.Fatalf("snapshot went backwards: %d -> %d", last, v)
		}
		last = v
	}
	close(stop)
	wg.Wait()
}
