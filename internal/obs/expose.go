package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
)

// Snapshot is a point-in-time copy of every metric in a registry,
// suitable for JSON encoding, expvar publishing, or asserting in tests.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]int64        `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// HistSnapshot is one histogram's copied state. Buckets lists only the
// non-empty buckets (raw, not cumulative) by their inclusive upper bound.
// P50/P95/P99 are the Quantile estimates at snapshot time (0 when the
// histogram is empty).
type HistSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	P50     int64    `json:"p50"`
	P95     int64    `json:"p95"`
	P99     int64    `json:"p99"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Quantile estimates the q-th quantile (q in [0,1]) from the power-of-two
// buckets: the bucket holding the q*Count-th observation is found by a
// cumulative walk and the value is linearly interpolated inside it. The
// bucket bounds cap the error at a factor of 2, which is plenty for
// latency triage (is p99 microseconds or milliseconds?); exact ranks
// would require recording raw observations, which the fixed-size
// histogram deliberately does not.
func (h HistSnapshot) Quantile(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.Count)
	var cum int64
	for _, b := range h.Buckets {
		if float64(cum+b.Count) < target {
			cum += b.Count
			continue
		}
		lo := b.UpperBound/2 + 1 // inclusive lower bound; bucket 0 is {0}
		if b.UpperBound == 0 {
			lo = 0
		}
		frac := (target - float64(cum)) / float64(b.Count)
		return lo + int64(frac*float64(b.UpperBound-lo))
	}
	// Only reachable through floating-point edge rounding: fall back to
	// the largest observed bucket's bound.
	return h.Buckets[len(h.Buckets)-1].UpperBound
}

// Bucket is one non-empty histogram bucket.
type Bucket struct {
	UpperBound int64 `json:"le"`
	Count      int64 `json:"count"`
}

// Counter returns the snapshotted value of the named series (0 when
// absent), so views over a snapshot read consistently instead of
// re-loading live atomics one by one.
func (s Snapshot) Counter(id string) int64 { return s.Counters[id] }

// Gauge returns the snapshotted level of the named gauge series (0 when
// absent).
func (s Snapshot) Gauge(id string) int64 { return s.Gauges[id] }

// Snapshot copies every metric. Writers are never blocked - metrics stay
// lock-free - so a snapshot taken mid-run cannot be a single atomic cut;
// instead the registry is read repeatedly until two consecutive passes
// observe identical values (a quiescent-point read), giving an internally
// consistent snapshot whenever writers pause even briefly. Under sustained
// writer pressure the read is capped at snapshotAttempts passes and the
// last pass is returned: every individual value is then still a real value
// the metric held during the call, and all values are monotone, so
// successive snapshots never move backwards.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{Counters: map[string]int64{}, Gauges: map[string]int64{}, Histograms: map[string]HistSnapshot{}}
	}
	prev := r.readPass()
	for i := 0; i < snapshotAttempts-1; i++ {
		cur := r.readPass()
		if passesEqual(prev, cur) {
			break
		}
		prev = cur
	}
	return prev.toSnapshot()
}

const snapshotAttempts = 4

// pass is one raw read of every metric, in a deterministic order so two
// passes can be compared cheaply.
type pass struct {
	counterIDs []string
	counters   []int64
	gaugeIDs   []string
	gauges     []int64
	histIDs    []string
	hists      [][NumBuckets + 1]int64 // buckets then sum
}

func (r *Registry) readPass() pass {
	r.mu.Lock()
	var p pass
	p.counterIDs = make([]string, 0, len(r.counters))
	for id := range r.counters {
		p.counterIDs = append(p.counterIDs, id)
	}
	p.gaugeIDs = make([]string, 0, len(r.gauges))
	for id := range r.gauges {
		p.gaugeIDs = append(p.gaugeIDs, id)
	}
	p.histIDs = make([]string, 0, len(r.hists))
	for id := range r.hists {
		p.histIDs = append(p.histIDs, id)
	}
	counters := make([]*Counter, len(p.counterIDs))
	gauges := make([]*Gauge, len(p.gaugeIDs))
	hists := make([]*Histogram, len(p.histIDs))
	sort.Strings(p.counterIDs)
	sort.Strings(p.gaugeIDs)
	sort.Strings(p.histIDs)
	for i, id := range p.counterIDs {
		counters[i] = r.counters[id]
	}
	for i, id := range p.gaugeIDs {
		gauges[i] = r.gauges[id]
	}
	for i, id := range p.histIDs {
		hists[i] = r.hists[id]
	}
	r.mu.Unlock()

	p.counters = make([]int64, len(counters))
	for i, c := range counters {
		p.counters[i] = c.Value()
	}
	p.gauges = make([]int64, len(gauges))
	for i, g := range gauges {
		p.gauges[i] = g.Value()
	}
	p.hists = make([][NumBuckets + 1]int64, len(hists))
	for i, h := range hists {
		for b := 0; b < NumBuckets; b++ {
			p.hists[i][b] = h.counts[b].Load()
		}
		p.hists[i][NumBuckets] = h.sum.Load()
	}
	return p
}

func passesEqual(a, b pass) bool {
	if len(a.counters) != len(b.counters) || len(a.gauges) != len(b.gauges) || len(a.hists) != len(b.hists) {
		return false
	}
	for i := range a.counters {
		if a.counters[i] != b.counters[i] || a.counterIDs[i] != b.counterIDs[i] {
			return false
		}
	}
	for i := range a.gauges {
		if a.gauges[i] != b.gauges[i] || a.gaugeIDs[i] != b.gaugeIDs[i] {
			return false
		}
	}
	for i := range a.hists {
		if a.hists[i] != b.hists[i] || a.histIDs[i] != b.histIDs[i] {
			return false
		}
	}
	return true
}

func (p pass) toSnapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64, len(p.counters)),
		Histograms: make(map[string]HistSnapshot, len(p.hists)),
	}
	for i, id := range p.counterIDs {
		s.Counters[id] = p.counters[i]
	}
	if len(p.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(p.gauges))
		for i, id := range p.gaugeIDs {
			s.Gauges[id] = p.gauges[i]
		}
	}
	for i, id := range p.histIDs {
		var hs HistSnapshot
		hs.Sum = p.hists[i][NumBuckets]
		for b := 0; b < NumBuckets; b++ {
			if c := p.hists[i][b]; c > 0 {
				hs.Count += c
				hs.Buckets = append(hs.Buckets, Bucket{UpperBound: BucketUpperBound(b), Count: c})
			}
		}
		hs.P50 = hs.Quantile(0.50)
		hs.P95 = hs.Quantile(0.95)
		hs.P99 = hs.Quantile(0.99)
		s.Histograms[id] = hs
	}
	return s
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one # TYPE line per family, series sorted, and
// histograms expanded into cumulative _bucket/_sum/_count series with
// power-of-two le bounds. Families are emitted counters first, then
// histograms, each alphabetically, so output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	p := r.Snapshot()

	counterIDs := sortedKeys(p.Counters)
	lastFamily := ""
	for _, id := range counterIDs {
		family, labels := splitSeries(id)
		if family != lastFamily {
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", family); err != nil {
				return err
			}
			lastFamily = family
		}
		if _, err := fmt.Fprintf(w, "%s%s %d\n", family, labels, p.Counters[id]); err != nil {
			return err
		}
	}

	gaugeIDs := sortedKeys(p.Gauges)
	lastFamily = ""
	for _, id := range gaugeIDs {
		family, labels := splitSeries(id)
		if family != lastFamily {
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", family); err != nil {
				return err
			}
			lastFamily = family
		}
		if _, err := fmt.Fprintf(w, "%s%s %d\n", family, labels, p.Gauges[id]); err != nil {
			return err
		}
	}

	histIDs := sortedKeys(p.Histograms)
	lastFamily = ""
	for _, id := range histIDs {
		family, labels := splitSeries(id)
		if family != lastFamily {
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", family); err != nil {
				return err
			}
			lastFamily = family
		}
		h := p.Histograms[id]
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				family, withLE(labels, strconv.FormatInt(b.UpperBound, 10)), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", family, withLE(labels, "+Inf"), h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", family, labels, h.Sum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", family, labels, h.Count); err != nil {
			return err
		}
	}

	// Quantile estimates ride along as per-family gauge families
	// (<family>_p50/_p95/_p99) after the histogram blocks, keeping each
	// family's samples contiguous as the text format requires.
	for _, suffix := range []struct {
		name string
		q    float64
	}{{"p50", 0.50}, {"p95", 0.95}, {"p99", 0.99}} {
		lastFamily = ""
		for _, id := range histIDs {
			family, labels := splitSeries(id)
			if family != lastFamily {
				if _, err := fmt.Fprintf(w, "# TYPE %s_%s gauge\n", family, suffix.name); err != nil {
					return err
				}
				lastFamily = family
			}
			if _, err := fmt.Fprintf(w, "%s_%s%s %d\n",
				family, suffix.name, labels, p.Histograms[id].Quantile(suffix.q)); err != nil {
				return err
			}
		}
	}
	return nil
}

// withLE merges the reserved le label into an existing (possibly empty)
// label block.
func withLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// WriteJSON renders the snapshot as indented JSON (the -metrics-dump
// format archived next to BENCH_*.json).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// DumpJSON writes the snapshot to a file.
func (r *Registry) DumpJSON(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
