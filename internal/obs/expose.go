package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
)

// Snapshot is a point-in-time copy of every metric in a registry,
// suitable for JSON encoding, expvar publishing, or asserting in tests.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// HistSnapshot is one histogram's copied state. Buckets lists only the
// non-empty buckets (raw, not cumulative) by their inclusive upper bound.
type HistSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Bucket is one non-empty histogram bucket.
type Bucket struct {
	UpperBound int64 `json:"le"`
	Count      int64 `json:"count"`
}

// Counter returns the snapshotted value of the named series (0 when
// absent), so views over a snapshot read consistently instead of
// re-loading live atomics one by one.
func (s Snapshot) Counter(id string) int64 { return s.Counters[id] }

// Snapshot copies every metric. Writers are never blocked - metrics stay
// lock-free - so a snapshot taken mid-run cannot be a single atomic cut;
// instead the registry is read repeatedly until two consecutive passes
// observe identical values (a quiescent-point read), giving an internally
// consistent snapshot whenever writers pause even briefly. Under sustained
// writer pressure the read is capped at snapshotAttempts passes and the
// last pass is returned: every individual value is then still a real value
// the metric held during the call, and all values are monotone, so
// successive snapshots never move backwards.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{Counters: map[string]int64{}, Histograms: map[string]HistSnapshot{}}
	}
	prev := r.readPass()
	for i := 0; i < snapshotAttempts-1; i++ {
		cur := r.readPass()
		if passesEqual(prev, cur) {
			break
		}
		prev = cur
	}
	return prev.toSnapshot()
}

const snapshotAttempts = 4

// pass is one raw read of every metric, in a deterministic order so two
// passes can be compared cheaply.
type pass struct {
	counterIDs []string
	counters   []int64
	histIDs    []string
	hists      [][NumBuckets + 1]int64 // buckets then sum
}

func (r *Registry) readPass() pass {
	r.mu.Lock()
	var p pass
	p.counterIDs = make([]string, 0, len(r.counters))
	for id := range r.counters {
		p.counterIDs = append(p.counterIDs, id)
	}
	p.histIDs = make([]string, 0, len(r.hists))
	for id := range r.hists {
		p.histIDs = append(p.histIDs, id)
	}
	counters := make([]*Counter, len(p.counterIDs))
	hists := make([]*Histogram, len(p.histIDs))
	sort.Strings(p.counterIDs)
	sort.Strings(p.histIDs)
	for i, id := range p.counterIDs {
		counters[i] = r.counters[id]
	}
	for i, id := range p.histIDs {
		hists[i] = r.hists[id]
	}
	r.mu.Unlock()

	p.counters = make([]int64, len(counters))
	for i, c := range counters {
		p.counters[i] = c.Value()
	}
	p.hists = make([][NumBuckets + 1]int64, len(hists))
	for i, h := range hists {
		for b := 0; b < NumBuckets; b++ {
			p.hists[i][b] = h.counts[b].Load()
		}
		p.hists[i][NumBuckets] = h.sum.Load()
	}
	return p
}

func passesEqual(a, b pass) bool {
	if len(a.counters) != len(b.counters) || len(a.hists) != len(b.hists) {
		return false
	}
	for i := range a.counters {
		if a.counters[i] != b.counters[i] || a.counterIDs[i] != b.counterIDs[i] {
			return false
		}
	}
	for i := range a.hists {
		if a.hists[i] != b.hists[i] || a.histIDs[i] != b.histIDs[i] {
			return false
		}
	}
	return true
}

func (p pass) toSnapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64, len(p.counters)),
		Histograms: make(map[string]HistSnapshot, len(p.hists)),
	}
	for i, id := range p.counterIDs {
		s.Counters[id] = p.counters[i]
	}
	for i, id := range p.histIDs {
		var hs HistSnapshot
		hs.Sum = p.hists[i][NumBuckets]
		for b := 0; b < NumBuckets; b++ {
			if c := p.hists[i][b]; c > 0 {
				hs.Count += c
				hs.Buckets = append(hs.Buckets, Bucket{UpperBound: BucketUpperBound(b), Count: c})
			}
		}
		s.Histograms[id] = hs
	}
	return s
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one # TYPE line per family, series sorted, and
// histograms expanded into cumulative _bucket/_sum/_count series with
// power-of-two le bounds. Families are emitted counters first, then
// histograms, each alphabetically, so output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	p := r.Snapshot()

	counterIDs := sortedKeys(p.Counters)
	lastFamily := ""
	for _, id := range counterIDs {
		family, labels := splitSeries(id)
		if family != lastFamily {
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", family); err != nil {
				return err
			}
			lastFamily = family
		}
		if _, err := fmt.Fprintf(w, "%s%s %d\n", family, labels, p.Counters[id]); err != nil {
			return err
		}
	}

	histIDs := sortedKeys(p.Histograms)
	lastFamily = ""
	for _, id := range histIDs {
		family, labels := splitSeries(id)
		if family != lastFamily {
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", family); err != nil {
				return err
			}
			lastFamily = family
		}
		h := p.Histograms[id]
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				family, withLE(labels, strconv.FormatInt(b.UpperBound, 10)), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", family, withLE(labels, "+Inf"), h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", family, labels, h.Sum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", family, labels, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// withLE merges the reserved le label into an existing (possibly empty)
// label block.
func withLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// WriteJSON renders the snapshot as indented JSON (the -metrics-dump
// format archived next to BENCH_*.json).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// DumpJSON writes the snapshot to a file.
func (r *Registry) DumpJSON(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
