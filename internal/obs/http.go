package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
)

// expvarRegistry is the registry the process-wide expvar bridge reads.
// expvar.Publish is once-per-name for the process lifetime, so the bridge
// publishes a single "obs" var whose Func dereferences this pointer; the
// most recently served registry wins (in practice there is one per
// process).
var expvarRegistry atomic.Pointer[Registry]

var expvarPublished atomic.Bool

func bridgeExpvar(r *Registry) {
	expvarRegistry.Store(r)
	if expvarPublished.CompareAndSwap(false, true) {
		expvar.Publish("obs", expvar.Func(func() any {
			return expvarRegistry.Load().Snapshot()
		}))
	}
}

// Handler serves the registry in Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w) //hin:allow errdrop -- a failed scrape response write is the scraper's problem, not ours
	})
}

// NewMux builds the operational endpoint set for one registry:
//
//	/metrics       Prometheus text format
//	/debug/vars    expvar (process vars plus the registry under "obs")
//	/debug/pprof/  the standard pprof handlers
//
// The mux is self-contained - nothing is registered on
// http.DefaultServeMux - so embedding callers keep control of their own
// routing.
func NewMux(r *Registry) *http.ServeMux {
	bridgeExpvar(r)
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the NewMux endpoints on addr in a background goroutine and
// returns the live listener, so callers learn the bound address (":0" is
// supported for tests) and can Close it to stop serving. The server lives
// for the remainder of the process; commands serve during a run and exit.
func Serve(addr string, r *Registry) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: NewMux(r)}
	//hin:allow goleak -- process-lifetime debug server: it ends when the returned listener is closed
	go func() { _ = srv.Serve(ln) }() //hin:allow errdrop -- Serve always returns ErrServerClosed after Listener.Close
	return ln, nil
}
