package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total")
	g := r.Gauge("z_depth")
	h := r.Histogram("y_ns")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil metrics")
	}
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter value")
	}
	g.Inc()
	g.Dec()
	g.Set(9)
	g.Add(-3)
	if g.Value() != 0 {
		t.Fatal("nil gauge value")
	}
	h.Observe(3)
	tm := h.Time()
	tm.Stop()
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram observed something")
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

func TestCounterAndIdempotentLookup(t *testing.T) {
	r := New()
	a := r.Counter("req_total", "kind", "a")
	b := r.Counter("req_total", "kind", "b")
	if a == b {
		t.Fatal("distinct labels must be distinct series")
	}
	if again := r.Counter("req_total", "kind", "a"); again != a {
		t.Fatal("same series must return the same counter")
	}
	a.Inc()
	a.Add(2)
	a.Add(-7) // ignored: monotone
	b.Add(10)
	if a.Value() != 3 || b.Value() != 10 {
		t.Fatalf("got %d / %d", a.Value(), b.Value())
	}
}

func TestGauge(t *testing.T) {
	r := New()
	g := r.Gauge("queue_depth", "endpoint", "dehin")
	g.Inc()
	g.Inc()
	g.Dec()
	g.Add(5)
	if g.Value() != 6 {
		t.Fatalf("gauge = %d, want 6", g.Value())
	}
	g.Set(2)
	if again := r.Gauge("queue_depth", "endpoint", "dehin"); again != g {
		t.Fatal("same series must return the same gauge")
	}
	s := r.Snapshot()
	if got := s.Gauge(`queue_depth{endpoint="dehin"}`); got != 2 {
		t.Fatalf("snapshot gauge = %d, want 2", got)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "# TYPE queue_depth gauge\n") ||
		!strings.Contains(out, `queue_depth{endpoint="dehin"} 2`+"\n") {
		t.Fatalf("prometheus output missing gauge family:\n%s", out)
	}

	// A name may not be reused across metric kinds: the mismatch is a
	// programming error and must fail loudly.
	mustPanic := func(fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatal("cross-kind reuse did not panic")
			}
		}()
		fn()
	}
	mustPanic(func() { r.Counter("queue_depth", "endpoint", "dehin") })
	mustPanic(func() { r.Histogram("queue_depth", "endpoint", "dehin") })
	r.Counter("events_total")
	mustPanic(func() { r.Gauge("events_total") })
	r.Histogram("lat_ns")
	mustPanic(func() { r.Gauge("lat_ns") })
}

func TestLabelOrderCanonicalized(t *testing.T) {
	r := New()
	a := r.Counter("x_total", "b", "2", "a", "1")
	b := r.Counter("x_total", "a", "1", "b", "2")
	if a != b {
		t.Fatal("label order must not create a second series")
	}
	s := r.Snapshot()
	if _, ok := s.Counters[`x_total{a="1",b="2"}`]; !ok {
		t.Fatalf("canonical id missing: %v", s.Counters)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("lat_ns")
	for _, v := range []int64{0, 1, 2, 3, 4, 1023, 1024, -5} {
		h.Observe(v)
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 0+1+2+3+4+1023+1024+0 {
		t.Fatalf("sum = %d", h.Sum())
	}
	s := r.Snapshot().Histograms["lat_ns"]
	want := map[int64]int64{
		0:    2, // 0 and the clamped -5
		1:    1, // 1
		3:    2, // 2, 3
		7:    1, // 4
		1023: 1,
		2047: 1, // 1024
	}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v", s.Buckets)
	}
	for _, b := range s.Buckets {
		if want[b.UpperBound] != b.Count {
			t.Fatalf("bucket %d = %d, want %d", b.UpperBound, b.Count, want[b.UpperBound])
		}
	}
}

func TestBucketUpperBound(t *testing.T) {
	cases := []struct {
		i    int
		want int64
	}{{0, 0}, {1, 1}, {2, 3}, {10, 1023}, {63, int64(^uint64(0) >> 1)}}
	for _, c := range cases {
		if got := BucketUpperBound(c.i); got != c.want {
			t.Errorf("BucketUpperBound(%d) = %d, want %d", c.i, got, c.want)
		}
	}
}

func TestTimerObservesElapsed(t *testing.T) {
	r := New()
	h := r.Histogram("stage_ns")
	tm := h.Time()
	time.Sleep(2 * time.Millisecond)
	tm.Stop()
	if h.Count() != 1 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() < (1 * time.Millisecond).Nanoseconds() {
		t.Fatalf("sum = %dns, expected >= 1ms", h.Sum())
	}
}

func TestWritePrometheusWellFormed(t *testing.T) {
	r := New()
	r.Counter("attack_pruned_total").Add(7)
	r.Counter("runs_total", "id", "table1").Inc()
	r.Counter("runs_total", "id", "table2").Add(2)
	h := r.Histogram("run_ns", "id", "table1")
	h.Observe(100)
	h.Observe(3000)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# TYPE attack_pruned_total counter\n",
		"attack_pruned_total 7\n",
		"# TYPE runs_total counter\n",
		`runs_total{id="table1"} 1` + "\n",
		`runs_total{id="table2"} 2` + "\n",
		"# TYPE run_ns histogram\n",
		`run_ns_bucket{id="table1",le="127"} 1` + "\n",
		`run_ns_bucket{id="table1",le="4095"} 2` + "\n",
		`run_ns_bucket{id="table1",le="+Inf"} 2` + "\n",
		`run_ns_sum{id="table1"} 3100` + "\n",
		`run_ns_count{id="table1"} 2` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
	// One TYPE line per family even with several series.
	if strings.Count(out, "# TYPE runs_total counter") != 1 {
		t.Errorf("duplicate TYPE lines:\n%s", out)
	}
	// Deterministic: a second render is byte-identical.
	var sb2 strings.Builder
	if err := r.WritePrometheus(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Error("exposition output not deterministic")
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	r := New()
	r.Counter("c_total").Add(3)
	r.Histogram("h_ns").Observe(42)
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal([]byte(sb.String()), &s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["c_total"] != 3 {
		t.Fatalf("counters = %v", s.Counters)
	}
	hs := s.Histograms["h_ns"]
	if hs.Count != 1 || hs.Sum != 42 {
		t.Fatalf("histogram = %+v", hs)
	}
}

func TestServeEndpoints(t *testing.T) {
	r := New()
	r.Counter("served_total").Inc()
	ln, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	base := "http://" + ln.Addr().String()

	get := func(path string) (int, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != 200 || !strings.Contains(body, "served_total 1") {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	code, body = get("/debug/vars")
	if code != 200 || !strings.Contains(body, `"obs"`) {
		t.Fatalf("/debug/vars = %d, missing obs bridge: %.200s", code, body)
	}
	code, _ = get("/debug/pprof/cmdline")
	if code != 200 {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}
}

func TestSnapshotCounterView(t *testing.T) {
	r := New()
	r.Counter("a_total").Add(4)
	s := r.Snapshot()
	if s.Counter("a_total") != 4 || s.Counter("missing_total") != 0 {
		t.Fatalf("snapshot view: %v", s.Counters)
	}
}
