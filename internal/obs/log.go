package obs

import (
	"io"
	"log/slog"
)

// Logger is the repository's nil-safe structured logging handle: a thin
// wrapper over log/slog following the same contract as the metric types -
// a nil *Logger is a no-op on every method and costs one predictable
// branch, so commands and packages log unconditionally and disable output
// by holding nil. Progress lines that used to be ad-hoc
// fmt.Fprintf(os.Stderr, ...) calls go through here instead, which makes
// them levelled (-v flips Debug on), structured (key=value pairs), and
// capturable in tests (NewLogger takes any io.Writer).
type Logger struct {
	s *slog.Logger
}

// NewLogger returns a logger writing slog text lines at or above level to
// w. The time attribute is stripped: these are CLI progress lines, and a
// time-free format keeps captured output deterministic for tests.
func NewLogger(w io.Writer, level slog.Level) *Logger {
	h := slog.NewTextHandler(w, &slog.HandlerOptions{
		Level: level,
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			if a.Key == slog.TimeKey && len(groups) == 0 {
				return slog.Attr{}
			}
			return a
		},
	})
	return &Logger{s: slog.New(h)}
}

// With returns a logger that adds args to every record; nil stays nil.
func (l *Logger) With(args ...any) *Logger {
	if l == nil {
		return nil
	}
	return &Logger{s: l.s.With(args...)}
}

// Debug logs at LevelDebug; no-op on nil.
func (l *Logger) Debug(msg string, args ...any) {
	if l == nil {
		return
	}
	l.s.Debug(msg, args...)
}

// Info logs at LevelInfo; no-op on nil.
func (l *Logger) Info(msg string, args ...any) {
	if l == nil {
		return
	}
	l.s.Info(msg, args...)
}

// Warn logs at LevelWarn; no-op on nil.
func (l *Logger) Warn(msg string, args ...any) {
	if l == nil {
		return
	}
	l.s.Warn(msg, args...)
}

// Error logs at LevelError; no-op on nil.
func (l *Logger) Error(msg string, args ...any) {
	if l == nil {
		return
	}
	l.s.Error(msg, args...)
}
