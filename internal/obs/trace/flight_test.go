package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// finishRequest records a small fixed span tree under the recorder and
// finishes with the given status code.
func finishRequest(f *Flight, method, path string, code int) bool {
	r := f.StartRequest(method, path, "")
	r.Root("serve.test")
	r.SetEpoch(3)
	s := r.Span("stage")
	s.Attr("items", 7)
	s.End()
	return r.Finish(code)
}

// TestFlightNilSafety pins the off-by-default contract for the recorder:
// a nil *Flight and the nil *FlightReq it hands out must no-op every
// method, and the zero Spans flowing out of them are themselves no-ops.
func TestFlightNilSafety(t *testing.T) {
	var f *Flight
	r := f.StartRequest("GET", "/x", "")
	if r != nil {
		t.Fatal("nil recorder returned a live request")
	}
	root := r.Root("root")
	if root.Active() {
		t.Fatal("nil request produced an active span")
	}
	r.Span("child").End()
	r.SetEpoch(1)
	if r.Finish(500) {
		t.Fatal("nil request captured")
	}
	if f.Total() != 0 || f.Captured() != 0 || f.SlowThreshold() != 0 {
		t.Fatal("nil recorder counted")
	}
	if f.Records() != nil {
		t.Fatal("nil recorder has records")
	}
	var b bytes.Buffer
	if err := f.WriteText(&b, TreeOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != "flight recorder disabled\n" {
		t.Fatalf("nil text = %q", got)
	}
	b.Reset()
	if err := f.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var env struct {
		Records []RequestRecord `json:"records"`
	}
	if err := json.Unmarshal(b.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if len(env.Records) != 0 {
		t.Fatal("nil recorder exported records")
	}
}

// TestFlightCaptureDecision pins the tail-based policy: non-2xx is always
// retained (reason "error"), 2xx is retained only at or above the slow
// threshold (reason "slow"), and fast successes leave no trace.
func TestFlightCaptureDecision(t *testing.T) {
	f := NewFlight(FlightConfig{Capacity: 8, SlowThreshold: time.Hour})
	if finishRequest(f, "GET", "/v1/risk", 200) {
		t.Fatal("fast 200 captured")
	}
	if !finishRequest(f, "POST", "/v1/dehin", 400) {
		t.Fatal("400 not captured")
	}
	if !finishRequest(f, "GET", "/v1/risk", 503) {
		t.Fatal("503 not captured")
	}
	if f.Total() != 3 || f.Captured() != 2 {
		t.Fatalf("total=%d captured=%d", f.Total(), f.Captured())
	}
	recs := f.Records()
	if len(recs) != 2 {
		t.Fatalf("%d records", len(recs))
	}
	if recs[0].Code != 400 || recs[0].Reason != "error" || recs[0].Method != "POST" {
		t.Fatalf("record 0 = %+v", recs[0])
	}
	if recs[1].Code != 503 || recs[1].Reason != "error" {
		t.Fatalf("record 1 = %+v", recs[1])
	}

	// With a 1ns threshold every finished 2xx qualifies as slow.
	slow := NewFlight(FlightConfig{Capacity: 8, SlowThreshold: time.Nanosecond})
	if !finishRequest(slow, "GET", "/v1/topk", 200) {
		t.Fatal("1ns-threshold 200 not captured")
	}
	if got := slow.Records()[0].Reason; got != "slow" {
		t.Fatalf("reason = %q", got)
	}
}

// TestFlightRingWrap fills a small ring far past capacity and checks the
// newest-evicts-oldest policy: exactly the last Capacity records survive,
// oldest first, with consecutive sequence numbers.
func TestFlightRingWrap(t *testing.T) {
	f := NewFlight(FlightConfig{Capacity: 4, SlowThreshold: time.Hour})
	for i := 0; i < 11; i++ {
		finishRequest(f, "GET", "/v1/risk", 500)
	}
	recs := f.Records()
	if len(recs) != 4 {
		t.Fatalf("%d records after wrap", len(recs))
	}
	for i, rec := range recs {
		if rec.Seq != uint64(7+i) {
			t.Fatalf("record %d seq = %d, want %d", i, rec.Seq, 7+i)
		}
	}
	if f.Captured() != 11 {
		t.Fatalf("captured = %d", f.Captured())
	}
}

// TestFlightSpanTreeExport checks that a retained record carries the
// complete span tree: root first, children indexed by Parent, attributes
// and epoch intact.
func TestFlightSpanTreeExport(t *testing.T) {
	f := NewFlight(FlightConfig{Capacity: 4, SlowThreshold: time.Nanosecond})
	r := f.StartRequest("POST", "/v1/dehin", "k=1")
	root := r.Root("serve.dehin")
	r.SetEpoch(9)
	d := r.Span("decode")
	d.End()
	a := r.Span("attack")
	a.Attr("candidates", 3)
	inner := a.Child("neighbor_match")
	inner.Attr("pruned", 12)
	inner.End()
	a.End()
	root.Attr("code", 200)
	if !r.Finish(200) {
		t.Fatal("not captured")
	}

	recs := f.Records()
	rec := recs[len(recs)-1]
	if rec.Path != "/v1/dehin" || rec.Query != "k=1" || rec.Epoch != 9 || rec.DurationNS < 0 {
		t.Fatalf("record = %+v", rec)
	}
	names := make([]string, len(rec.Spans))
	for i, sp := range rec.Spans {
		names[i] = sp.Name
	}
	want := []string{"serve.dehin", "decode", "attack", "neighbor_match"}
	if strings.Join(names, " ") != strings.Join(want, " ") {
		t.Fatalf("span order = %v, want %v", names, want)
	}
	if rec.Spans[0].Parent != -1 {
		t.Fatalf("root parent = %d", rec.Spans[0].Parent)
	}
	if rec.Spans[1].Parent != 0 || rec.Spans[2].Parent != 0 {
		t.Fatalf("stage parents = %d, %d", rec.Spans[1].Parent, rec.Spans[2].Parent)
	}
	if rec.Spans[3].Parent != 2 {
		t.Fatalf("neighbor_match parent = %d", rec.Spans[3].Parent)
	}
	if rec.Spans[0].Attrs["code"] != 200 || rec.Spans[2].Attrs["candidates"] != 3 || rec.Spans[3].Attrs["pruned"] != 12 {
		t.Fatalf("attrs lost: %+v", rec.Spans)
	}
	for _, sp := range rec.Spans {
		if sp.DurNS < 0 {
			t.Fatalf("span %s still open in export", sp.Name)
		}
	}
}

// TestFlightPoolReuse drives many requests through a capacity-1 pool
// cycle and checks that a reused tracer never leaks the previous
// request's spans into the next record.
func TestFlightPoolReuse(t *testing.T) {
	f := NewFlight(FlightConfig{Capacity: 2, SlowThreshold: time.Nanosecond, MaxSpans: 64})
	// First request: a wide tree.
	r := f.StartRequest("GET", "/wide", "")
	r.Root("serve.wide")
	for i := 0; i < 10; i++ {
		r.Span("stage").End()
	}
	r.Finish(200)
	// Second request (same pooled tracer): two spans only.
	r = f.StartRequest("GET", "/narrow", "")
	r.Root("serve.narrow")
	r.Span("only").End()
	r.Finish(200)

	recs := f.Records()
	last := recs[len(recs)-1]
	if last.Path != "/narrow" || len(last.Spans) != 2 {
		t.Fatalf("reused tracer leaked spans: %+v", last)
	}
	if last.Spans[0].Name != "serve.narrow" || last.Spans[1].Name != "only" {
		t.Fatalf("span names = %v", last.Spans)
	}
}

// TestFlightSteadyStateAllocs pins the allocation-free recording path for
// both outcomes: a fast success (pool get/put only) and a captured
// request (commit copies into preallocated ring storage).
func TestFlightSteadyStateAllocs(t *testing.T) {
	fast := NewFlight(FlightConfig{Capacity: 8, SlowThreshold: time.Hour})
	finishRequest(fast, "GET", "/v1/risk", 200) // warm the pool
	if got := testing.AllocsPerRun(500, func() {
		finishRequest(fast, "GET", "/v1/risk", 200)
	}); got != 0 {
		t.Fatalf("uncaptured request allocates %.1f/op", got)
	}
	hot := NewFlight(FlightConfig{Capacity: 8, SlowThreshold: time.Nanosecond})
	finishRequest(hot, "GET", "/v1/risk", 200)
	if got := testing.AllocsPerRun(500, func() {
		finishRequest(hot, "GET", "/v1/risk", 200)
	}); got != 0 {
		t.Fatalf("captured request allocates %.1f/op", got)
	}
}

// TestFlightWriteText pins the deterministic structure-only text format:
// header with the retained count, one block per record with the indented
// span tree, no timestamps or durations anywhere.
func TestFlightWriteText(t *testing.T) {
	f := NewFlight(FlightConfig{Capacity: 4, SlowThreshold: time.Hour})
	finishRequest(f, "POST", "/v1/dehin", 400)
	r := f.StartRequest("GET", "/v1/risk", "user=5")
	r.Root("serve.risk")
	r.SetEpoch(2)
	r.Finish(503)

	var b bytes.Buffer
	if err := f.WriteText(&b, TreeOptions{}); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"flight recorder: 2 captured (capacity 4)",
		"",
		"#0 POST /v1/dehin code=400 reason=error epoch=3",
		"  serve.test",
		"    stage [items=7]",
		"",
		"#1 GET /v1/risk?user=5 code=503 reason=error epoch=2",
		"  serve.risk",
		"",
	}, "\n")
	if got := b.String(); got != want {
		t.Fatalf("text mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	// With durations on, every request line gains a parenthesized time
	// and the header reports the live counters.
	b.Reset()
	if err := f.WriteText(&b, TreeOptions{Durations: true}); err != nil {
		t.Fatal(err)
	}
	head, _, _ := strings.Cut(b.String(), "\n")
	if !strings.Contains(head, "2 captured / 2 finished") {
		t.Fatalf("durations header = %q", head)
	}
}

// TestFlightWriteJSON round-trips the JSON envelope.
func TestFlightWriteJSON(t *testing.T) {
	f := NewFlight(FlightConfig{Capacity: 4, SlowThreshold: time.Hour})
	finishRequest(f, "GET", "/v1/risk", 500)
	var b bytes.Buffer
	if err := f.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var env flightJSON
	if err := json.Unmarshal(b.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Captured != 1 || env.Total != 1 || env.SlowThresholdNS != time.Hour.Nanoseconds() {
		t.Fatalf("envelope = %+v", env)
	}
	if len(env.Records) != 1 || env.Records[0].Code != 500 || len(env.Records[0].Spans) != 2 {
		t.Fatalf("records = %+v", env.Records)
	}
}
