package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"
)

// chromeEvent is one Chrome trace-event object. Only the "X" (complete)
// and "M" (metadata) phases are emitted; both Perfetto and
// about://tracing load the {"traceEvents": [...]} wrapper form.
type chromeEvent struct {
	Name string           `json:"name"`
	Cat  string           `json:"cat,omitempty"`
	Ph   string           `json:"ph"`
	TS   float64          `json:"ts"`
	Dur  *float64         `json:"dur,omitempty"`
	PID  int              `json:"pid"`
	TID  uint64           `json:"tid"`
	Args map[string]int64 `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []json.RawMessage `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
}

// snapshot returns the recorded spans sorted by (start, id) - a stable,
// deterministic export order. Open spans (never Ended, e.g. because the
// traced work was cut short) are included with duration 0.
func (t *Tracer) snapshot() []span {
	if t == nil {
		return nil
	}
	out := make([]span, 0, t.Len())
	for i := 0; i < t.Len(); i++ {
		if t.spans[i].id != 0 {
			out = append(out, t.spans[i])
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].start != out[j].start {
			return out[i].start < out[j].start
		}
		return out[i].id < out[j].id
	})
	return out
}

// WriteChromeTrace renders the buffer as Chrome trace-event JSON, the
// format Perfetto (https://ui.perfetto.dev) and about://tracing open
// directly. One metadata event names each track after its root span, then
// every span becomes a complete ("X") event with microsecond timestamps
// and its attributes under args. Events are ordered by (start, id), so
// output for a serial run is deterministic up to the timestamp values.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.snapshot()
	events := make([]json.RawMessage, 0, len(spans)+8)

	// Name each track after the first (earliest) span that opens it.
	named := map[uint64]bool{}
	for _, sp := range spans {
		if named[sp.track] {
			continue
		}
		named[sp.track] = true
		raw, err := json.Marshal(struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			PID  int               `json:"pid"`
			TID  uint64            `json:"tid"`
			Args map[string]string `json:"args"`
		}{Name: "thread_name", Ph: "M", PID: 1, TID: sp.track,
			Args: map[string]string{"name": sp.name}})
		if err != nil {
			return err
		}
		events = append(events, raw)
	}

	for _, sp := range spans {
		dur := sp.dur
		incomplete := dur < 0
		if incomplete {
			dur = 0
		}
		ev := chromeEvent{
			Name: sp.name,
			Cat:  "obs",
			Ph:   "X",
			TS:   float64(sp.start) / 1e3,
			PID:  1,
			TID:  sp.track,
		}
		d := float64(dur) / 1e3
		ev.Dur = &d
		if sp.nattrs > 0 || incomplete {
			ev.Args = make(map[string]int64, sp.nattrs+1)
			for i := int32(0); i < sp.nattrs; i++ {
				ev.Args[sp.attrs[i].key] = sp.attrs[i].val
			}
			if incomplete {
				ev.Args["incomplete"] = 1
			}
		}
		raw, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		events = append(events, raw)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeFile{TraceEvents: events, DisplayTimeUnit: "ns"})
}

// DumpChromeTrace writes the Chrome trace-event JSON to a file (the
// -trace flag's backend).
func (t *Tracer) DumpChromeTrace(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// TreeOptions configures WriteTree. With Durations off the dump is a pure
// function of the span structure (names, nesting, attributes, order for a
// serial run), which is what golden tests pin.
type TreeOptions struct {
	Durations bool
}

// WriteTree renders the buffer as an indented parent/child tree, two
// spaces per level:
//
//	tqq.generate [users=4000] (12.3ms)
//	  profiles
//	    profiles_shard [shard=0]
//
// Roots and siblings are ordered by (start time, span id); spans whose
// parent was dropped are promoted to roots. A trailing "dropped N spans"
// line reports buffer overflow.
func (t *Tracer) WriteTree(w io.Writer, opt TreeOptions) error {
	return writeSpanTree(w, t.snapshot(), t.Dropped(), opt, "")
}

// writeSpanTree renders a (start, id)-sorted span slice as the indented
// tree WriteTree documents, prefixing every line with indent. It is
// shared between whole-tracer dumps and the flight recorder's per-request
// renderings (which operate on copied span slices, see flight.go).
func writeSpanTree(w io.Writer, spans []span, dropped int64, opt TreeOptions, indent string) error {
	index := make(map[uint64]int, len(spans))
	for i, sp := range spans {
		index[sp.id] = i
	}
	children := make([][]int, len(spans))
	var roots []int
	for i, sp := range spans {
		if p, ok := index[sp.parent]; ok && sp.parent != 0 {
			children[p] = append(children[p], i)
		} else {
			roots = append(roots, i)
		}
	}
	// span order is already (start, id); appends preserve it.
	var rec func(i, depth int) error
	rec = func(i, depth int) error {
		sp := spans[i]
		var b strings.Builder
		b.WriteString(indent)
		for d := 0; d < depth; d++ {
			b.WriteString("  ")
		}
		b.WriteString(sp.name)
		if sp.nattrs > 0 {
			b.WriteString(" [")
			for a := int32(0); a < sp.nattrs; a++ {
				if a > 0 {
					b.WriteByte(' ')
				}
				fmt.Fprintf(&b, "%s=%d", sp.attrs[a].key, sp.attrs[a].val)
			}
			b.WriteByte(']')
		}
		if opt.Durations {
			if sp.dur < 0 {
				b.WriteString(" (open)")
			} else {
				fmt.Fprintf(&b, " (%v)", time.Duration(sp.dur).Round(time.Microsecond))
			}
		}
		b.WriteByte('\n')
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
		for _, c := range children[i] {
			if err := rec(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range roots {
		if err := rec(r, 0); err != nil {
			return err
		}
	}
	if dropped > 0 {
		if _, err := fmt.Fprintf(w, "%sdropped %d spans\n", indent, dropped); err != nil {
			return err
		}
	}
	return nil
}

// sortSpans orders a span slice by (start, id), the canonical export
// order snapshot produces.
func sortSpans(spans []span) {
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].start != spans[j].start {
			return spans[i].start < spans[j].start
		}
		return spans[i].id < spans[j].id
	})
}

// Tree returns WriteTree's output as a string (test convenience).
func (t *Tracer) Tree(opt TreeOptions) string {
	var b strings.Builder
	_ = t.WriteTree(&b, opt) //hin:allow errdrop -- strings.Builder writes cannot fail
	return b.String()
}
