// Package trace is the repository's zero-dependency span tracer: the
// timeline companion to the internal/obs metrics registry. Metrics say
// what happened and how often; spans say when and in what order - which
// generator shard straggled, which experiment serialized behind a
// workbench cache fill, where a long attack Run spends its wall time.
//
// The package follows the same design contract as obs.Registry:
//
//   - Off by default, one branch when off. A nil *Tracer returns zero
//     Span values and every Span method is a no-op on the zero value, so
//     instrumented code runs unconditionally and disables the whole layer
//     by holding a nil tracer.
//   - Never touches a random stream, so traced and untraced runs produce
//     byte-identical datasets and results.
//   - Allocation-free on the recording path: spans live in a fixed
//     pre-allocated buffer, names must be static strings, and attributes
//     are bounded int64 key=value pairs. Only construction (New) and
//     export allocate.
//
// Recording is goroutine-safe and lock-free: a slot is claimed with one
// atomic increment and then owned exclusively by the claiming goroutine
// until End. When the buffer is full new spans are dropped (and counted)
// rather than overwriting live slots, which keeps a traced 500k-user
// generate or 12k-target Run bounded and race-free. Export (Chrome
// trace-event JSON for Perfetto / about://tracing, or a deterministic
// plain-text tree for golden tests) is meant to run after the traced work
// has completed.
package trace

import (
	"sync/atomic"
	"time"
)

// MaxAttrs bounds the per-span attribute count; further Attr calls are
// dropped silently. Six covers every call site in the pipeline while
// keeping span records small and fixed-size.
const MaxAttrs = 6

// attr is one bounded key=value span annotation. Values are int64 only
// (shard indices, edge counts, target ids): formatting happens at export,
// never on the recording path.
type attr struct {
	key string
	val int64
}

// span is one recorded slot. Fields are written only by the goroutine
// that claimed the slot (between Start and End); readers run after the
// traced work has finished.
type span struct {
	id     uint64 // 0 = slot never claimed
	parent uint64 // 0 = root
	track  uint64
	name   string
	start  int64 // ns since Tracer construction
	dur    int64 // ns; -1 while the span is open
	attrs  [MaxAttrs]attr
	nattrs int32
}

// Tracer records named spans into a fixed-capacity buffer. Construct with
// New; the zero value and nil are valid "tracing off" tracers.
type Tracer struct {
	begin   time.Time
	spans   []span
	next    atomic.Uint64 // span ids, 1-based; slot = id-1
	tracks  atomic.Uint64 // track (Perfetto tid) ids, 1-based
	dropped atomic.Int64
}

// Track is a Perfetto thread-track id. Each root span opens its own
// track; concurrent children (one per worker or per shard) fork tracks so
// the exported timeline shows the real schedule as parallel lanes.
type Track uint64

// DefaultCapacity is the span capacity commands use for -trace: large
// enough for a paper-scale generate plus a fully sampled suite, small
// enough (~6 MB) to sit preallocated for a whole run.
const DefaultCapacity = 1 << 16

// New returns a tracer with room for capacity spans (minimum 64;
// non-positive values get DefaultCapacity). Once the buffer fills, new
// spans are dropped and counted - see Dropped.
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if capacity < 64 {
		capacity = 64
	}
	return &Tracer{begin: time.Now(), spans: make([]span, capacity)}
}

// Span is a handle to one live (or ended) span. The zero value is a valid
// no-op span: every method costs one predictable branch and does nothing.
type Span struct {
	t  *Tracer
	id uint64
}

// NewTrack allocates a fresh timeline lane. Use with Span.ChildOn to give
// each worker of a parallel stage its own lane, mirroring the actual
// concurrency schedule in the exported trace.
func (t *Tracer) NewTrack() Track {
	if t == nil {
		return 0
	}
	return Track(t.tracks.Add(1))
}

// Start opens a root span on a fresh track. Nil tracer returns the no-op
// zero Span. name must be a static (or otherwise retained) string: the
// tracer stores it by reference and never copies.
func (t *Tracer) Start(name string) Span {
	if t == nil {
		return Span{}
	}
	return t.open(name, 0, uint64(t.NewTrack()))
}

// StartOn opens a root span on an explicit track (see NewTrack). Use when
// a long-lived component records many independent root spans that should
// share one timeline lane instead of opening a fresh lane each (e.g. the
// workbench artifact cache). Same-track spans must nest, so the caller
// must not overlap spans on the track.
func (t *Tracer) StartOn(tr Track, name string) Span {
	if t == nil {
		return Span{}
	}
	return t.open(name, 0, uint64(tr))
}

// Child opens a sub-span on the same track as s. Use for sequential
// stages of one logical unit; same-track spans must nest.
func (s Span) Child(name string) Span {
	if s.t == nil {
		return Span{}
	}
	sp := s.t.slot(s.id)
	if sp == nil {
		return Span{}
	}
	return s.t.open(name, s.id, sp.track)
}

// ChildOn opens a sub-span of s on an explicit track (see NewTrack). Use
// for concurrent children: parent/child links stay intact while each lane
// only holds properly nested spans.
func (s Span) ChildOn(tr Track, name string) Span {
	if s.t == nil {
		return Span{}
	}
	return s.t.open(name, s.id, uint64(tr))
}

// Fork opens a sub-span of s on its own fresh track - shorthand for
// ChildOn(t.NewTrack(), name) for one-off concurrent children.
func (s Span) Fork(name string) Span {
	if s.t == nil {
		return Span{}
	}
	return s.t.open(name, s.id, uint64(s.t.NewTrack()))
}

// open claims a slot. Beyond capacity the span is dropped (counted) and
// the zero Span returned, so a burst can never overwrite live history nor
// race a slot owner.
func (t *Tracer) open(name string, parent, track uint64) Span {
	id := t.next.Add(1)
	if id > uint64(len(t.spans)) {
		t.dropped.Add(1)
		return Span{}
	}
	sp := &t.spans[id-1]
	sp.id = id
	sp.parent = parent
	sp.track = track
	sp.name = name
	sp.start = time.Since(t.begin).Nanoseconds()
	sp.dur = -1
	sp.nattrs = 0
	return Span{t: t, id: id}
}

// slot returns the record behind a live handle; nil for the zero handle.
func (t *Tracer) slot(id uint64) *span {
	if id == 0 || id > uint64(len(t.spans)) {
		return nil
	}
	return &t.spans[id-1]
}

// Attr annotates the span with one key=value pair. Beyond MaxAttrs the
// pair is dropped. No-op on the zero Span.
func (s Span) Attr(key string, val int64) {
	if s.t == nil {
		return
	}
	sp := s.t.slot(s.id)
	if sp == nil || sp.nattrs >= MaxAttrs {
		return
	}
	sp.attrs[sp.nattrs] = attr{key: key, val: val}
	sp.nattrs++
}

// End closes the span, recording its duration. No-op on the zero Span;
// ending twice keeps the later duration (harmless, and only reachable
// from a caller bug).
func (s Span) End() {
	if s.t == nil {
		return
	}
	sp := s.t.slot(s.id)
	if sp == nil {
		return
	}
	sp.dur = time.Since(s.t.begin).Nanoseconds() - sp.start
}

// Active reports whether the handle records anywhere - false for the zero
// Span. Call sites use it to skip work that only feeds span attributes.
func (s Span) Active() bool { return s.t != nil }

// Len returns the number of recorded (claimed) spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	n := t.next.Load()
	if n > uint64(len(t.spans)) {
		n = uint64(len(t.spans))
	}
	return int(n)
}

// Dropped returns how many spans were discarded because the buffer was
// full.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Reset discards every recorded span and re-stamps the tracer's time
// origin, making the buffer reusable without reallocation. It is meant
// for pooled per-request tracers (see Flight): the caller must own the
// tracer exclusively — no live Span handles, no concurrent recording —
// because stale slot contents become unreachable only through the reset
// counters, not through clearing. open re-stamps every field of a slot
// it claims, so records from before the Reset can never leak into a
// later snapshot.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.begin = time.Now()
	t.next.Store(0)
	t.tracks.Store(0)
	t.dropped.Store(0)
}

// Cap returns the tracer's span capacity.
func (t *Tracer) Cap() int {
	if t == nil {
		return 0
	}
	return len(t.spans)
}
