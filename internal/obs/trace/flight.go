package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Flight is a tail-based request flight recorder: every request records a
// full span tree into a pooled per-request Tracer, and the tree is kept
// only when the finished request turns out interesting — slower than the
// configured threshold, or ended with a non-2xx status. Retained trees
// live in a fixed-capacity ring buffer (newest evicts oldest), so the
// recorder answers "what did the last N slow or failed requests actually
// do?" without sampling up front or retaining the fast steady state.
//
// The recorder follows the package's off-by-default contract: a nil
// *Flight no-ops every method at one predictable branch, and the zero
// FlightReq / Span values returned through a nil recorder are themselves
// no-ops, so the serving path instruments itself unconditionally.
// Recording is allocation-free in steady state: per-request tracers are
// pooled and reset, the ring's span storage is preallocated at
// construction, and a commit copies spans into the evicted slot under a
// short mutex. Only construction and export allocate.
type Flight struct {
	slowNS   int64
	maxSpans int
	pool     sync.Pool

	mu   sync.Mutex
	ring []record
	seq  uint64 // total committed records; next slot = seq % len(ring)

	total    atomic.Int64 // finished requests, captured or not
	captured atomic.Int64
}

// record is one retained request: metadata plus a copy of its span tree.
// The spans slice is preallocated to the recorder's MaxSpans and reused
// across evictions.
type record struct {
	seq     uint64
	method  string
	path    string
	query   string
	code    int
	epoch   uint64
	wall    time.Time
	durNS   int64
	reason  string
	spans   []span
	dropped int64
}

// FlightConfig sizes a Flight. The zero value is usable: 64 retained
// requests, 64 spans per request, 100ms slow threshold.
type FlightConfig struct {
	// Capacity is the number of retained requests (default 64).
	Capacity int
	// SlowThreshold is the duration at or above which a 2xx request is
	// captured (default 100ms). Non-2xx requests are always captured.
	SlowThreshold time.Duration
	// MaxSpans bounds each request's span tree; spans beyond it are
	// dropped and counted, exactly like a full Tracer (default 64,
	// which is also the Tracer minimum).
	MaxSpans int
}

// NewFlight builds a recorder. All ring storage is allocated here, so
// the recording path never grows anything.
func NewFlight(cfg FlightConfig) *Flight {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 64
	}
	if cfg.SlowThreshold <= 0 {
		cfg.SlowThreshold = 100 * time.Millisecond
	}
	if cfg.MaxSpans <= 0 {
		cfg.MaxSpans = 64
	}
	f := &Flight{
		slowNS:   cfg.SlowThreshold.Nanoseconds(),
		maxSpans: cfg.MaxSpans,
		ring:     make([]record, cfg.Capacity),
	}
	for i := range f.ring {
		f.ring[i].spans = make([]span, 0, cfg.MaxSpans)
	}
	f.pool.New = func() any {
		return &FlightReq{t: New(cfg.MaxSpans)}
	}
	return f
}

// FlightReq is one in-flight request's recording state: a pooled tracer
// plus the request metadata a retained record carries. Obtain with
// StartRequest, finish exactly once with Finish. A nil *FlightReq (from a
// nil recorder) no-ops every method.
type FlightReq struct {
	f      *Flight
	t      *Tracer
	method string
	path   string
	query  string
	epoch  uint64
	root   Span
	start  time.Time
	wall   time.Time
}

// StartRequest begins recording one request. Nil recorder returns nil,
// which every FlightReq method (and the zero Spans it hands out)
// tolerates.
func (f *Flight) StartRequest(method, path, query string) *FlightReq {
	if f == nil {
		return nil
	}
	r := f.pool.Get().(*FlightReq)
	r.f = f
	r.t.Reset()
	r.method = method
	r.path = path
	r.query = query
	r.epoch = 0
	r.root = Span{}
	r.start = time.Now()
	r.wall = r.start
	return r
}

// Root opens the request's root span. Call once per request; children
// attach via Span (or the returned handle's own Child/Fork).
func (r *FlightReq) Root(name string) Span {
	if r == nil {
		return Span{}
	}
	r.root = r.t.Start(name)
	return r.root
}

// Span opens a child of the request's root span on the same track (the
// request is one logical lane; stages nest).
func (r *FlightReq) Span(name string) Span {
	if r == nil {
		return Span{}
	}
	return r.root.Child(name)
}

// SetEpoch stamps the snapshot epoch that answered the request, so a
// retained record is attributable to an exact served state.
func (r *FlightReq) SetEpoch(epoch uint64) {
	if r == nil {
		return
	}
	r.epoch = epoch
}

// Finish ends the request: the root span is closed, the capture decision
// is made (non-2xx status, or duration at or above the slow threshold),
// and the FlightReq returns to the pool either way. Reports whether the
// request was captured. The FlightReq must not be used after Finish.
func (r *FlightReq) Finish(code int) bool {
	if r == nil {
		return false
	}
	r.root.End()
	f := r.f
	durNS := time.Since(r.start).Nanoseconds()
	f.total.Add(1)
	reason := ""
	if code < 200 || code >= 300 {
		reason = "error"
	} else if durNS >= f.slowNS {
		reason = "slow"
	}
	if reason != "" {
		f.commit(r, code, durNS, reason)
		f.captured.Add(1)
	}
	r.f = nil
	f.pool.Put(r)
	return reason != ""
}

// commit copies the request's spans into the ring slot it evicts. The
// copy happens under the ring mutex, but the section is short (metadata
// assignment plus one bounded memmove) and only runs for captured — by
// definition rare — requests.
func (f *Flight) commit(r *FlightReq, code int, durNS int64, reason string) {
	n := r.t.Len()
	f.mu.Lock()
	slot := &f.ring[f.seq%uint64(len(f.ring))]
	slot.seq = f.seq
	f.seq++
	slot.method = r.method
	slot.path = r.path
	slot.query = r.query
	slot.code = code
	slot.epoch = r.epoch
	slot.wall = r.wall
	slot.durNS = durNS
	slot.reason = reason
	slot.dropped = r.t.Dropped()
	slot.spans = append(slot.spans[:0], r.t.spans[:n]...)
	f.mu.Unlock()
}

// Total returns how many requests have finished under the recorder.
func (f *Flight) Total() int64 {
	if f == nil {
		return 0
	}
	return f.total.Load()
}

// Captured returns how many finished requests were retained.
func (f *Flight) Captured() int64 {
	if f == nil {
		return 0
	}
	return f.captured.Load()
}

// SlowThreshold returns the capture threshold.
func (f *Flight) SlowThreshold() time.Duration {
	if f == nil {
		return 0
	}
	return time.Duration(f.slowNS)
}

// SpanRecord is one span of an exported request record. Parent indexes
// the record's Spans slice (-1 for the root), so consumers rebuild the
// tree without knowing tracer ids.
type SpanRecord struct {
	Name    string           `json:"name"`
	Parent  int              `json:"parent"`
	StartNS int64            `json:"start_ns"`
	DurNS   int64            `json:"dur_ns"`
	Attrs   map[string]int64 `json:"attrs,omitempty"`
}

// RequestRecord is one retained request as exported by Records and
// WriteJSON. Spans are in (start, id) order — parents precede children.
type RequestRecord struct {
	Seq          uint64       `json:"seq"`
	Method       string       `json:"method"`
	Path         string       `json:"path"`
	Query        string       `json:"query,omitempty"`
	Code         int          `json:"code"`
	Epoch        uint64       `json:"epoch,omitempty"`
	Start        time.Time    `json:"start"`
	DurationNS   int64        `json:"duration_ns"`
	Reason       string       `json:"reason"`
	DroppedSpans int64        `json:"dropped_spans,omitempty"`
	Spans        []SpanRecord `json:"spans"`
}

// snapshotRecords copies the retained ring oldest-first. Each element's
// span slice is a private copy, so callers own the result outright.
func (f *Flight) snapshotRecords() []record {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.seq
	cap64 := uint64(len(f.ring))
	lo := uint64(0)
	if n > cap64 {
		lo = n - cap64
	}
	out := make([]record, 0, n-lo)
	for s := lo; s < n; s++ {
		rec := f.ring[s%cap64]
		rec.spans = append([]span(nil), rec.spans...)
		out = append(out, rec)
	}
	return out
}

// Records returns the retained requests, oldest first.
func (f *Flight) Records() []RequestRecord {
	if f == nil {
		return nil
	}
	recs := f.snapshotRecords()
	out := make([]RequestRecord, len(recs))
	for i, rec := range recs {
		out[i] = exportRecord(rec)
	}
	return out
}

func exportRecord(rec record) RequestRecord {
	spans := rec.spans
	live := spans[:0:0]
	for _, sp := range spans {
		if sp.id != 0 {
			live = append(live, sp)
		}
	}
	sortSpans(live)
	index := make(map[uint64]int, len(live))
	for i, sp := range live {
		index[sp.id] = i
	}
	rr := RequestRecord{
		Seq:          rec.seq,
		Method:       rec.method,
		Path:         rec.path,
		Query:        rec.query,
		Code:         rec.code,
		Epoch:        rec.epoch,
		Start:        rec.wall,
		DurationNS:   rec.durNS,
		Reason:       rec.reason,
		DroppedSpans: rec.dropped,
		Spans:        make([]SpanRecord, len(live)),
	}
	for i, sp := range live {
		sr := SpanRecord{Name: sp.name, Parent: -1, StartNS: sp.start, DurNS: sp.dur}
		if p, ok := index[sp.parent]; ok && sp.parent != 0 {
			sr.Parent = p
		}
		if sp.nattrs > 0 {
			sr.Attrs = make(map[string]int64, sp.nattrs)
			for a := int32(0); a < sp.nattrs; a++ {
				sr.Attrs[sp.attrs[a].key] = sp.attrs[a].val
			}
		}
		rr.Spans[i] = sr
	}
	return rr
}

// flightJSON is the WriteJSON envelope.
type flightJSON struct {
	Captured        int64           `json:"captured"`
	Total           int64           `json:"total"`
	SlowThresholdNS int64           `json:"slow_threshold_ns"`
	Records         []RequestRecord `json:"records"`
}

// WriteJSON renders the retained requests (oldest first) inside an
// envelope carrying the capture counters and threshold.
func (f *Flight) WriteJSON(w io.Writer) error {
	if f == nil {
		return json.NewEncoder(w).Encode(flightJSON{Records: []RequestRecord{}})
	}
	env := flightJSON{
		Captured:        f.Captured(),
		Total:           f.Total(),
		SlowThresholdNS: f.slowNS,
		Records:         f.Records(),
	}
	if env.Records == nil {
		env.Records = []RequestRecord{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(env)
}

// WriteText renders the retained requests as a deterministic text page in
// the style of x/net/trace: a header with the capture counters, then one
// block per request (oldest first) with its indented span tree. With
// opt.Durations off the output is a pure function of the request
// sequence — no timestamps, no durations — which is what the golden test
// pins.
func (f *Flight) WriteText(w io.Writer, opt TreeOptions) error {
	if f == nil {
		_, err := io.WriteString(w, "flight recorder disabled\n")
		return err
	}
	recs := f.snapshotRecords()
	if opt.Durations {
		if _, err := fmt.Fprintf(w, "flight recorder: %d captured / %d finished (threshold %v, capacity %d)\n",
			f.Captured(), f.Total(), time.Duration(f.slowNS), len(f.ring)); err != nil {
			return err
		}
	} else {
		if _, err := fmt.Fprintf(w, "flight recorder: %d captured (capacity %d)\n",
			len(recs), len(f.ring)); err != nil {
			return err
		}
	}
	for _, rec := range recs {
		line := fmt.Sprintf("\n#%d %s %s", rec.seq, rec.method, rec.path)
		if rec.query != "" {
			line += "?" + rec.query
		}
		line += fmt.Sprintf(" code=%d reason=%s", rec.code, rec.reason)
		if rec.epoch != 0 {
			line += fmt.Sprintf(" epoch=%d", rec.epoch)
		}
		if opt.Durations {
			line += fmt.Sprintf(" (%v)", time.Duration(rec.durNS).Round(time.Microsecond))
		}
		if _, err := io.WriteString(w, line+"\n"); err != nil {
			return err
		}
		live := rec.spans[:0:0]
		for _, sp := range rec.spans {
			if sp.id != 0 {
				live = append(live, sp)
			}
		}
		sortSpans(live)
		if err := writeSpanTree(w, live, rec.dropped, opt, "  "); err != nil {
			return err
		}
	}
	return nil
}
