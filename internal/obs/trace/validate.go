package trace

import (
	"encoding/json"
	"fmt"
)

// ChromeTraceStats summarizes a trace that passed ValidateChromeTrace,
// so callers can assert on coverage (which spans were recorded, on how
// many tracks) without re-parsing the JSON.
type ChromeTraceStats struct {
	// Spans counts "X" (complete) events, i.e. recorded spans.
	Spans int
	// Tracks counts distinct tid values among span events.
	Tracks int
	// Names maps span name -> occurrence count.
	Names map[string]int
}

// ValidateChromeTrace checks the invariants a Chrome trace-event dump
// must satisfy for Perfetto to load it sensibly: the JSON parses, every
// event is an "X" span or "M" metadata record, timestamps and durations
// are non-negative, timestamps are monotonic in export order, and spans
// sharing a track nest like a stack (a span never overflows the
// still-open span beneath it). It is used both by this package's tests
// and by integration tests that trace a real pipeline run.
func ValidateChromeTrace(blob []byte) (ChromeTraceStats, error) {
	var d struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			TID  uint64  `json:"tid"`
		} `json:"traceEvents"`
	}
	stats := ChromeTraceStats{Names: map[string]int{}}
	if err := json.Unmarshal(blob, &d); err != nil {
		return stats, fmt.Errorf("trace JSON does not parse: %w", err)
	}
	lastTS := -1.0
	type open struct{ end float64 }
	stacks := map[uint64][]open{}
	tracks := map[uint64]bool{}
	for _, ev := range d.TraceEvents {
		switch ev.Ph {
		case "M":
			continue
		case "X":
		default:
			return stats, fmt.Errorf("unexpected phase %q in event %q", ev.Ph, ev.Name)
		}
		if ev.TS < 0 || ev.Dur < 0 {
			return stats, fmt.Errorf("negative time in %q: ts=%g dur=%g", ev.Name, ev.TS, ev.Dur)
		}
		if ev.TS < lastTS {
			return stats, fmt.Errorf("timestamps not monotonic at %q: %g after %g", ev.Name, ev.TS, lastTS)
		}
		lastTS = ev.TS
		stats.Spans++
		stats.Names[ev.Name]++
		tracks[ev.TID] = true
		// Pop spans that finished before this one starts, then require
		// containment in the innermost still-open span of the track. The
		// small tolerance absorbs the microsecond rounding of export.
		st := stacks[ev.TID]
		for len(st) > 0 && ev.TS >= st[len(st)-1].end {
			st = st[:len(st)-1]
		}
		if len(st) > 0 && ev.TS+ev.Dur > st[len(st)-1].end+1e-3 {
			return stats, fmt.Errorf("span %q [%g,%g] overflows its enclosing span (ends %g) on track %d",
				ev.Name, ev.TS, ev.TS+ev.Dur, st[len(st)-1].end, ev.TID)
		}
		stacks[ev.TID] = append(st, open{end: ev.TS + ev.Dur})
	}
	stats.Tracks = len(tracks)
	return stats, nil
}
