package trace

import (
	"strings"
	"sync"
	"testing"
)

// TestNilSafety pins the off-by-default contract: a nil tracer and the
// zero Span must be no-ops on every method, so instrumented code can run
// unconditionally.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	s := tr.Start("root")
	if s.Active() {
		t.Fatal("nil tracer produced an active span")
	}
	s.Attr("k", 1)
	c := s.Child("child")
	c.End()
	s.Fork("fork").End()
	s.ChildOn(tr.NewTrack(), "on").End()
	s.End()
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatalf("nil tracer counted spans: len=%d dropped=%d", tr.Len(), tr.Dropped())
	}
	if got := tr.Tree(TreeOptions{}); got != "" {
		t.Fatalf("nil tracer tree = %q", got)
	}
	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
}

// TestTreeGolden pins the deterministic plain-text dump for a hand-built
// span structure: nesting, attribute rendering, sibling order by start
// time, and orphan promotion are all part of the format contract.
func TestTreeGolden(t *testing.T) {
	tr := New(64)
	root := tr.Start("root")
	root.Attr("users", 4000)
	a := root.Child("stage_a")
	a.Attr("shard", 0)
	a.Attr("edges", 123)
	a.End()
	b := root.Fork("stage_b")
	b.Child("leaf").End()
	b.End()
	root.End()
	lone := tr.Start("solo")
	lone.End()

	want := strings.Join([]string{
		"root [users=4000]",
		"  stage_a [shard=0 edges=123]",
		"  stage_b",
		"    leaf",
		"solo",
		"",
	}, "\n")
	if got := tr.Tree(TreeOptions{}); got != want {
		t.Fatalf("tree mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	// With durations every line gains a parenthesized suffix.
	for _, line := range strings.Split(strings.TrimSuffix(tr.Tree(TreeOptions{Durations: true}), "\n"), "\n") {
		if !strings.HasSuffix(line, ")") {
			t.Fatalf("line %q lacks a duration", line)
		}
	}
}

// TestDropWhenFull verifies the bounded-buffer policy: beyond capacity
// spans are dropped and counted, never overwriting recorded history.
func TestDropWhenFull(t *testing.T) {
	tr := New(64)
	for i := 0; i < 100; i++ {
		s := tr.Start("s")
		s.End()
	}
	if tr.Len() != 64 {
		t.Fatalf("len = %d, want 64", tr.Len())
	}
	if tr.Dropped() != 36 {
		t.Fatalf("dropped = %d, want 36", tr.Dropped())
	}
	if !strings.Contains(tr.Tree(TreeOptions{}), "dropped 36 spans") {
		t.Fatal("tree does not report drops")
	}
	// Children of dropped spans are themselves dropped handles.
	if c := (Span{}).Child("x"); c.Active() {
		t.Fatal("child of zero span is active")
	}
}

// TestAttrBound verifies attributes beyond MaxAttrs are discarded.
func TestAttrBound(t *testing.T) {
	tr := New(64)
	s := tr.Start("s")
	for i := 0; i < MaxAttrs+3; i++ {
		s.Attr("k", int64(i))
	}
	s.End()
	line := strings.TrimSuffix(tr.Tree(TreeOptions{}), "\n")
	if got := strings.Count(line, "k="); got != MaxAttrs {
		t.Fatalf("kept %d attrs, want %d: %s", got, MaxAttrs, line)
	}
}

// validateChrome runs the exported validator (see validate.go) and fails
// the test on any violated Perfetto invariant.
func validateChrome(t *testing.T, blob []byte) ChromeTraceStats {
	t.Helper()
	stats, err := ValidateChromeTrace(blob)
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

// TestChromeExport exercises the exporter against a concurrent recording
// session and validates the output invariants.
func TestChromeExport(t *testing.T) {
	tr := New(1024)
	root := tr.Start("run")
	root.Attr("targets", 7)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		lane := tr.NewTrack()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				s := root.ChildOn(lane, "task")
				s.Attr("i", int64(i))
				s.Child("inner").End()
				s.End()
			}
		}()
	}
	wg.Wait()
	root.End()

	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	stats := validateChrome(t, []byte(b.String()))
	if stats.Names["task"] != 80 || stats.Names["inner"] != 80 || stats.Names["run"] != 1 {
		t.Fatalf("unexpected event counts: %v", stats.Names)
	}
	if stats.Tracks != 5 { // root's track plus one lane per worker
		t.Fatalf("tracks = %d, want 5", stats.Tracks)
	}
	if !strings.Contains(b.String(), `"thread_name"`) {
		t.Fatal("no track metadata emitted")
	}
}

// TestConcurrentRecording hammers one tracer from many goroutines (run
// under -race by make verify) and checks accounting stays exact.
func TestConcurrentRecording(t *testing.T) {
	tr := New(256)
	var wg sync.WaitGroup
	const goroutines, per = 8, 100
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s := tr.Start("w")
				s.Attr("i", int64(i))
				s.End()
			}
		}()
	}
	wg.Wait()
	if got := tr.Len() + int(tr.Dropped()); got != goroutines*per {
		t.Fatalf("recorded+dropped = %d, want %d", got, goroutines*per)
	}
}
