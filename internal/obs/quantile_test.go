package obs

import (
	"strings"
	"testing"
)

// TestQuantileEstimation checks the interpolated estimates against known
// distributions, within the factor-of-2 bound the power-of-two buckets
// allow.
func TestQuantileEstimation(t *testing.T) {
	r := New()
	h := r.Histogram("q_ns")
	// 1000 observations of 100ns, 50 of 10_000ns: the p50 rank (525) and
	// p95 rank (997.5) both land in 100's [64,127] bucket, the p99 rank
	// (1039.5) in 10_000's [8192,16383] bucket.
	for i := 0; i < 1000; i++ {
		h.Observe(100)
	}
	for i := 0; i < 50; i++ {
		h.Observe(10_000)
	}
	s := r.Snapshot()
	hs := s.Histograms["q_ns"]
	if hs.P50 < 64 || hs.P50 > 127 {
		t.Errorf("p50 = %d, want within [64,127]", hs.P50)
	}
	if hs.P95 < 64 || hs.P95 > 127 {
		t.Errorf("p95 = %d, want within [64,127]", hs.P95)
	}
	if hs.P99 < 8192 || hs.P99 > 16383 {
		t.Errorf("p99 = %d, want within [8192,16383]", hs.P99)
	}

	// Edge cases: empty histogram and out-of-range q.
	var empty HistSnapshot
	if empty.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile != 0")
	}
	if hs.Quantile(-1) > hs.Quantile(0) || hs.Quantile(2) != hs.Quantile(1) {
		t.Error("out-of-range q not clamped")
	}
	// Monotone in q.
	prev := int64(-1)
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		v := hs.Quantile(q)
		if v < prev {
			t.Errorf("Quantile(%g) = %d < previous %d", q, v, prev)
		}
		prev = v
	}
}

// TestQuantileExposition verifies the p50/p95/p99 gauge families appear
// in the Prometheus text output and the JSON snapshot.
func TestQuantileExposition(t *testing.T) {
	r := New()
	h := r.Histogram("run_ns", "id", "t1")
	h.Observe(1000)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE run_ns_p50 gauge\n",
		"# TYPE run_ns_p95 gauge\n",
		"# TYPE run_ns_p99 gauge\n",
		`run_ns_p50{id="t1"} `,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	hs := r.Snapshot().Histograms[`run_ns{id="t1"}`]
	if hs.P50 < 512 || hs.P50 > 1023 {
		t.Errorf("snapshot p50 = %d, want within [512,1023]", hs.P50)
	}
	if hs.P99 < hs.P50 {
		t.Errorf("p99 %d < p50 %d", hs.P99, hs.P50)
	}
}
