package obs

import (
	"math"
	"runtime/metrics"
	"time"
)

// Runtime metric families and the runtime/metrics samples feeding them.
// Values are converted to the registry's native units: bytes and counts
// pass through, seconds become nanoseconds (the unit every histogram in
// the repository already uses).
const (
	runtimeHeapLive   = "/gc/heap/live:bytes"
	runtimeHeapGoal   = "/gc/heap/goal:bytes"
	runtimeGoroutines = "/sched/goroutines:goroutines"
	runtimeGCCycles   = "/gc/cycles/total:gc-cycles"
	runtimeGCPauses   = "/sched/pauses/total/gc:seconds"
	runtimeSchedLat   = "/sched/latencies:seconds"
)

// RuntimeCollector polls runtime/metrics into a Registry: heap live and
// goal gauges, goroutine count, cumulative GC cycles, and the GC pause
// and scheduler latency distributions folded into obs histograms by
// bucket delta. Construct with StartRuntime; a nil collector no-ops
// every method, following the package's nil-disables contract.
//
// Histogram folding: runtime/metrics exposes cumulative
// Float64Histograms with runtime-chosen bucket boundaries. Each poll
// takes the per-bucket count delta since the previous poll and records
// it at the bucket midpoint (in nanoseconds) via ObserveN, so the obs
// power-of-two histogram tracks the live distribution at bucket
// resolution without retaining raw samples. Samples the running
// runtime does not support (KindBad) are skipped, never errors.
type RuntimeCollector struct {
	heapLive   *Gauge
	heapGoal   *Gauge
	goroutines *Gauge
	gcCycles   *Counter
	gcPause    *Histogram
	schedLat   *Histogram

	samples    []metrics.Sample
	prevCycles uint64
	prevPause  []uint64 // previous cumulative bucket counts
	prevSched  []uint64

	stop chan struct{}
	done chan struct{}
}

// StartRuntime resolves the runtime metric families on r and begins
// polling every interval (minimum 100ms, default 1s when non-positive)
// until Stop. A nil registry returns a nil collector — runtime telemetry
// off — at the usual single-branch cost.
func StartRuntime(r *Registry, interval time.Duration) *RuntimeCollector {
	c := NewRuntimeCollector(r)
	if c == nil {
		return nil
	}
	if interval <= 0 {
		interval = time.Second
	}
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	//hin:allow goleak -- poller is joined by Stop, which closes c.stop and waits on c.done
	go func() {
		defer close(c.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				c.Poll()
			case <-c.stop:
				return
			}
		}
	}()
	return c
}

// NewRuntimeCollector builds an unstarted collector (no goroutine): the
// caller drives it with explicit Poll calls. Tests use this for
// deterministic single collections; StartRuntime wraps it with a ticker
// loop. Nil registry returns nil.
func NewRuntimeCollector(r *Registry) *RuntimeCollector {
	if r == nil {
		return nil
	}
	c := &RuntimeCollector{
		heapLive:   r.Gauge("runtime_heap_live_bytes"),
		heapGoal:   r.Gauge("runtime_heap_goal_bytes"),
		goroutines: r.Gauge("runtime_goroutines"),
		gcCycles:   r.Counter("runtime_gc_cycles_total"),
		gcPause:    r.Histogram("runtime_gc_pause_ns"),
		schedLat:   r.Histogram("runtime_sched_latency_ns"),
		samples: []metrics.Sample{
			{Name: runtimeHeapLive},
			{Name: runtimeHeapGoal},
			{Name: runtimeGoroutines},
			{Name: runtimeGCCycles},
			{Name: runtimeGCPauses},
			{Name: runtimeSchedLat},
		},
	}
	// Prime the cumulative baselines so the first Poll reports deltas
	// from collector construction, not from process start.
	metrics.Read(c.samples)
	for i := range c.samples {
		switch c.samples[i].Name {
		case runtimeGCCycles:
			if c.samples[i].Value.Kind() == metrics.KindUint64 {
				c.prevCycles = c.samples[i].Value.Uint64()
			}
		case runtimeGCPauses:
			c.prevPause = cloneBuckets(c.samples[i], nil)
		case runtimeSchedLat:
			c.prevSched = cloneBuckets(c.samples[i], nil)
		}
	}
	return c
}

// Poll reads every sample once and updates the registry. Safe to call
// directly (tests, or a caller with its own scheduler); the StartRuntime
// loop is just Poll on a ticker.
func (c *RuntimeCollector) Poll() {
	if c == nil {
		return
	}
	metrics.Read(c.samples)
	for i := range c.samples {
		s := &c.samples[i]
		switch s.Name {
		case runtimeHeapLive:
			setGaugeSample(c.heapLive, s)
		case runtimeHeapGoal:
			setGaugeSample(c.heapGoal, s)
		case runtimeGoroutines:
			setGaugeSample(c.goroutines, s)
		case runtimeGCCycles:
			if s.Value.Kind() != metrics.KindUint64 {
				continue
			}
			cur := s.Value.Uint64()
			if cur > c.prevCycles {
				c.gcCycles.Add(int64(cur - c.prevCycles))
			}
			c.prevCycles = cur
		case runtimeGCPauses:
			c.prevPause = foldHistogram(c.gcPause, s, c.prevPause)
		case runtimeSchedLat:
			c.prevSched = foldHistogram(c.schedLat, s, c.prevSched)
		}
	}
}

// Stop ends the polling goroutine (if StartRuntime started one) after a
// final Poll, so short-lived processes still report their last state.
func (c *RuntimeCollector) Stop() {
	if c == nil {
		return
	}
	if c.stop == nil {
		return
	}
	close(c.stop)
	<-c.done
	c.stop = nil
	c.Poll()
}

// setGaugeSample stores a uint64 sample into a gauge, clamping to the
// int64 range; unsupported kinds are skipped.
func setGaugeSample(g *Gauge, s *metrics.Sample) {
	if s.Value.Kind() != metrics.KindUint64 {
		return
	}
	v := s.Value.Uint64()
	if v > math.MaxInt64 {
		v = math.MaxInt64
	}
	g.Set(int64(v))
}

// cloneBuckets copies a Float64Histogram sample's cumulative counts into
// dst (grown as needed); nil when the sample kind is unsupported.
func cloneBuckets(s metrics.Sample, dst []uint64) []uint64 {
	if s.Value.Kind() != metrics.KindFloat64Histogram {
		return nil
	}
	h := s.Value.Float64Histogram()
	return append(dst[:0], h.Counts...)
}

// foldHistogram records the per-bucket count growth since prev into obs
// histogram h at each bucket's midpoint in nanoseconds, and returns the
// new cumulative counts (reusing prev's storage). A bucket-count change
// (runtime version differences) resets the baseline instead of
// misattributing deltas.
func foldHistogram(h *Histogram, s *metrics.Sample, prev []uint64) []uint64 {
	if s.Value.Kind() != metrics.KindFloat64Histogram {
		return prev
	}
	rh := s.Value.Float64Histogram()
	if len(prev) == len(rh.Counts) {
		for i, cur := range rh.Counts {
			if cur <= prev[i] {
				continue
			}
			h.ObserveN(bucketMidNS(rh.Buckets, i), int64(cur-prev[i]))
		}
	}
	return append(prev[:0], rh.Counts...)
}

// bucketMidNS returns the midpoint of runtime histogram bucket i in
// nanoseconds. Buckets has len(Counts)+1 boundaries; infinite edges
// clamp to the finite one.
func bucketMidNS(bounds []float64, i int) int64 {
	lo, hi := bounds[i], bounds[i+1]
	if math.IsInf(lo, -1) {
		lo = 0
	}
	if math.IsInf(hi, 1) {
		hi = lo
	}
	mid := (lo + hi) / 2
	if mid < 0 || math.IsNaN(mid) {
		return 0
	}
	return int64(mid * 1e9)
}
