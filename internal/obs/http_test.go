package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, mux *http.ServeMux, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	return rec
}

// TestMetricsEndpoint pins /metrics: status, the Prometheus content type,
// and deterministic (byte-identical across requests, sorted) output.
func TestMetricsEndpoint(t *testing.T) {
	r := New()
	r.Counter("b_total").Add(2)
	r.Counter("a_total").Inc()
	r.Histogram("lat_ns").Observe(100)
	mux := NewMux(r)

	rec := get(t, mux, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("content-type = %q", ct)
	}
	body := rec.Body.String()
	if strings.Index(body, "a_total") > strings.Index(body, "b_total") {
		t.Fatalf("families not sorted:\n%s", body)
	}
	if rec2 := get(t, mux, "/metrics"); rec2.Body.String() != body {
		t.Fatalf("two renders differ:\n%s\n---\n%s", body, rec2.Body.String())
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != body {
		t.Fatal("/metrics differs from WritePrometheus")
	}
}

// TestDebugVarsRoundTrip verifies the expvar bridge serves the same
// snapshot WriteJSON renders, under the "obs" key.
func TestDebugVarsRoundTrip(t *testing.T) {
	r := New()
	r.Counter("vars_total").Add(5)
	r.Histogram("vars_ns").Observe(1 << 10)
	mux := NewMux(r)

	rec := get(t, mux, "/debug/vars")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var vars struct {
		Obs Snapshot `json:"obs"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &vars); err != nil {
		t.Fatalf("/debug/vars does not parse: %v\n%s", err, rec.Body.String())
	}

	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var direct Snapshot
	if err := json.Unmarshal([]byte(sb.String()), &direct); err != nil {
		t.Fatal(err)
	}
	if vars.Obs.Counters["vars_total"] != direct.Counters["vars_total"] {
		t.Fatalf("counter mismatch: vars=%v direct=%v", vars.Obs.Counters, direct.Counters)
	}
	vh, dh := vars.Obs.Histograms["vars_ns"], direct.Histograms["vars_ns"]
	if vh.Count != dh.Count || vh.Sum != dh.Sum || vh.P50 != dh.P50 {
		t.Fatalf("histogram mismatch: vars=%+v direct=%+v", vh, dh)
	}
}

// TestPprofHandlersRegistered asserts the pprof endpoints are actually
// wired into the mux, not just documented.
func TestPprofHandlersRegistered(t *testing.T) {
	mux := NewMux(New())
	for _, path := range []string{
		"/debug/pprof/",
		"/debug/pprof/cmdline",
		"/debug/pprof/symbol",
	} {
		if rec := get(t, mux, path); rec.Code != http.StatusOK {
			t.Errorf("%s status = %d", path, rec.Code)
		}
	}
	// The index page must link the standard profiles.
	body := get(t, mux, "/debug/pprof/").Body.String()
	for _, profile := range []string{"goroutine", "heap"} {
		if !strings.Contains(body, profile) {
			t.Errorf("pprof index missing %q profile", profile)
		}
	}
}
