package obs

import (
	"log/slog"
	"strings"
	"testing"
)

// TestLoggerNilSafe pins the off-by-default contract for the log wrapper.
func TestLoggerNilSafe(t *testing.T) {
	var l *Logger
	l.Debug("d")
	l.Info("i", "k", 1)
	l.Warn("w")
	l.Error("e")
	if l.With("k", "v") != nil {
		t.Fatal("nil Logger.With returned non-nil")
	}
}

// TestLoggerOutput verifies levelling, structure, and that captured
// output is time-free (deterministic for tests).
func TestLoggerOutput(t *testing.T) {
	var b strings.Builder
	l := NewLogger(&b, slog.LevelInfo)
	l.Debug("hidden")
	l.With("stage", "edges").Info("generate done", "edges", 42)
	got := b.String()
	if strings.Contains(got, "hidden") {
		t.Fatalf("debug line leaked at info level: %q", got)
	}
	want := "level=INFO msg=\"generate done\" stage=edges edges=42\n"
	if got != want {
		t.Fatalf("got %q, want %q", got, want)
	}

	b.Reset()
	NewLogger(&b, slog.LevelDebug).Debug("visible")
	if !strings.Contains(b.String(), "level=DEBUG msg=visible") {
		t.Fatalf("debug line missing: %q", b.String())
	}
}
