// Package obs is the repository's zero-dependency instrumentation layer:
// atomic counters, fixed-bucket power-of-two histograms, and stage timers
// collected in a named Registry with Prometheus-text and JSON exposition
// (see expose.go) plus an optional HTTP endpoint (see http.go).
//
// The package is built for hot paths that must stay allocation-free:
//
//   - Every method on Counter, Histogram, and Timer is safe on a nil
//     receiver and costs exactly one predictable branch when nil. Code
//     instruments itself unconditionally and disables the whole layer by
//     holding nil handles (the result of looking up a metric on a nil
//     Registry), so the uninstrumented path never pays an atomic, a map
//     probe, or a time.Now call.
//   - Observe, Inc, and Add never allocate: histograms use a fixed array
//     of power-of-two buckets and counters are a single atomic word.
//     Metric construction (Registry lookups) is the only allocating
//     operation and belongs in setup code, not per-query code.
//
// All mutation is atomic, so one Registry may be hammered from any number
// of goroutines; Snapshot provides a read that is stable against
// concurrent writers (see expose.go).
package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil *Counter is a no-op on every method.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (negative deltas are ignored: counters are monotone).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value loads the current count; 0 on a nil counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value: a level that rises and falls
// (queue depth, in-flight requests, loaded epoch) rather than a monotone
// event count. The zero value is ready to use; a nil *Gauge is a no-op on
// every method, following the package's nil-disables contract.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Inc adds one.
func (g *Gauge) Inc() {
	if g == nil {
		return
	}
	g.v.Add(1)
}

// Dec subtracts one.
func (g *Gauge) Dec() {
	if g == nil {
		return
	}
	g.v.Add(-1)
}

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value loads the current level; 0 on a nil gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// NumBuckets is the fixed histogram resolution: bucket i counts observed
// values whose uint64 bit length is i, i.e. bucket 0 holds the value 0 and
// bucket i>0 holds [2^(i-1), 2^i - 1]. 64 buckets cover every non-negative
// int64, so Observe never needs a bounds branch beyond the clamp for
// negatives.
const NumBuckets = 64

// Histogram is a fixed power-of-two-bucket histogram of non-negative
// int64 observations (typically nanoseconds or sizes). The zero value is
// ready to use; a nil *Histogram is a no-op on every method.
type Histogram struct {
	counts [NumBuckets]atomic.Int64
	sum    atomic.Int64
}

// Observe records v. Negative values clamp to 0 (they only arise from
// clock anomalies) so the bucket index stays in range without error
// handling on the hot path.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.counts[bits.Len64(uint64(v))].Add(1)
	h.sum.Add(v)
}

// ObserveN records the value v, n times, in one pair of atomic adds.
// It exists for bulk transfers from external bucketed sources (the
// runtime/metrics collector folds whole bucket deltas in per poll);
// non-positive n is a no-op.
func (h *Histogram) ObserveN(v, n int64) {
	if h == nil || n <= 0 {
		return
	}
	if v < 0 {
		v = 0
	}
	h.counts[bits.Len64(uint64(v))].Add(n)
	h.sum.Add(v * n)
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Timer measures one stage and records the elapsed nanoseconds into a
// histogram. The zero Timer (from a nil histogram) is a no-op and its
// construction performs no clock read, so a disabled stage timer costs one
// branch at start and one at stop.
type Timer struct {
	h     *Histogram
	start time.Time
}

// Time starts a stage timer bound to h.
func (h *Histogram) Time() Timer {
	if h == nil {
		return Timer{}
	}
	return Timer{h: h, start: time.Now()}
}

// Stop records the elapsed time since Time.
func (t Timer) Stop() {
	if t.h == nil {
		return
	}
	t.h.Observe(time.Since(t.start).Nanoseconds())
}

// Registry is a named collection of counters and histograms. Lookups are
// idempotent - asking for the same (name, labels) twice returns the same
// metric - so packages can resolve their handles independently and share
// series. A nil *Registry returns nil handles, which is how instrumented
// code runs disabled. Construction takes a mutex and allocates; resolve
// handles at setup time, not per operation.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns (registering on first use) the counter with the given
// name and optional label key/value pairs. Nil registry returns nil.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	id := seriesID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[id]
	if !ok {
		if _, dup := r.hists[id]; dup {
			panic(fmt.Sprintf("obs: %q already registered as a histogram", id))
		}
		if _, dup := r.gauges[id]; dup {
			panic(fmt.Sprintf("obs: %q already registered as a gauge", id))
		}
		c = &Counter{}
		r.counters[id] = c
	}
	return c
}

// Gauge returns (registering on first use) the gauge with the given name
// and optional label key/value pairs. Nil registry returns nil.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	id := seriesID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[id]
	if !ok {
		if _, dup := r.counters[id]; dup {
			panic(fmt.Sprintf("obs: %q already registered as a counter", id))
		}
		if _, dup := r.hists[id]; dup {
			panic(fmt.Sprintf("obs: %q already registered as a histogram", id))
		}
		g = &Gauge{}
		r.gauges[id] = g
	}
	return g
}

// Histogram returns (registering on first use) the histogram with the
// given name and optional label key/value pairs. Nil registry returns nil.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	id := seriesID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[id]
	if !ok {
		if _, dup := r.counters[id]; dup {
			panic(fmt.Sprintf("obs: %q already registered as a counter", id))
		}
		if _, dup := r.gauges[id]; dup {
			panic(fmt.Sprintf("obs: %q already registered as a gauge", id))
		}
		h = &Histogram{}
		r.hists[id] = h
	}
	return h
}

// seriesID canonicalizes a metric name plus label pairs into the series
// key used for registration and exposition: name{k1="v1",k2="v2"} with
// labels sorted by key, Prometheus-escaped.
func seriesID(name string, labels []string) string {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	if len(labels) == 0 {
		return name
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list for %q: %v", name, labels))
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		if !validLabelName(labels[i]) {
			panic(fmt.Sprintf("obs: invalid label name %q for %q", labels[i], name))
		}
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// splitSeries splits a series key back into family name and the label
// block (including braces; empty when unlabeled).
func splitSeries(id string) (family, labels string) {
	if i := strings.IndexByte(id, '{'); i >= 0 {
		return id[:i], id[i:]
	}
	return id, ""
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || s == "le" { // le is reserved for histogram buckets
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// escapeLabelValue applies the Prometheus text-format escaping rules.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// BucketUpperBound returns the inclusive upper bound of histogram bucket
// i, i.e. 2^i - 1 (bucket 0 holds only the value 0). The last bucket's
// bound is math.MaxInt64.
func BucketUpperBound(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return int64(^uint64(0) >> 1)
	}
	return int64(1)<<i - 1
}
