package obs

import (
	"bytes"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestRuntimeCollectorNil pins the nil-disables contract: a nil registry
// yields a nil collector whose every method is a no-op.
func TestRuntimeCollectorNil(t *testing.T) {
	if c := NewRuntimeCollector(nil); c != nil {
		t.Fatal("nil registry produced a collector")
	}
	if c := StartRuntime(nil, time.Second); c != nil {
		t.Fatal("nil registry started a collector")
	}
	var c *RuntimeCollector
	c.Poll() // must not panic
	c.Stop()
}

// TestRuntimePollPopulatesFamilies drives one explicit Poll and checks
// every runtime family lands on the registry with a plausible value.
func TestRuntimePollPopulatesFamilies(t *testing.T) {
	r := New()
	c := NewRuntimeCollector(r)

	// Force GC activity so the cycle counter and pause histogram move
	// between the constructor baseline and the poll.
	runtime.GC()
	runtime.GC()
	c.Poll()

	s := r.Snapshot()
	if s.Gauge("runtime_heap_live_bytes") <= 0 {
		t.Fatalf("heap live = %d", s.Gauge("runtime_heap_live_bytes"))
	}
	if s.Gauge("runtime_heap_goal_bytes") <= 0 {
		t.Fatalf("heap goal = %d", s.Gauge("runtime_heap_goal_bytes"))
	}
	if s.Gauge("runtime_goroutines") < 1 {
		t.Fatalf("goroutines = %d", s.Gauge("runtime_goroutines"))
	}
	if s.Counter("runtime_gc_cycles_total") < 2 {
		t.Fatalf("gc cycles = %d", s.Counter("runtime_gc_cycles_total"))
	}
	if h := s.Histograms["runtime_gc_pause_ns"]; h.Count < 1 {
		t.Fatalf("gc pause histogram empty: %+v", h)
	}
	// Histogram families must also exist in the exposition output.
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{
		"runtime_heap_live_bytes", "runtime_heap_goal_bytes", "runtime_goroutines",
		"runtime_gc_cycles_total", "runtime_gc_pause_ns", "runtime_sched_latency_ns",
	} {
		if !strings.Contains(b.String(), "# TYPE "+fam+" ") {
			t.Fatalf("family %s missing from /metrics output", fam)
		}
	}
}

// TestRuntimeDeltaFolding verifies the cumulative-to-delta conversion:
// a second Poll only adds the GC activity that happened in between, so
// the histogram and cycle counter grow by the interval's work, not by
// the process lifetime again.
func TestRuntimeDeltaFolding(t *testing.T) {
	r := New()
	c := NewRuntimeCollector(r)
	runtime.GC()
	c.Poll()
	cycles1 := r.Snapshot().Counter("runtime_gc_cycles_total")
	count1 := r.Snapshot().Histograms["runtime_gc_pause_ns"].Count

	runtime.GC()
	c.Poll()
	s := r.Snapshot()
	cycles2 := s.Counter("runtime_gc_cycles_total")
	count2 := s.Histograms["runtime_gc_pause_ns"].Count
	if d := cycles2 - cycles1; d < 1 || d > 4 {
		t.Fatalf("cycle delta = %d (cumulative re-count?)", d)
	}
	if count2 < count1 {
		t.Fatalf("pause count moved backwards: %d -> %d", count1, count2)
	}
	// An idle Poll must not re-add history.
	c.Poll()
	if got := r.Snapshot().Counter("runtime_gc_cycles_total"); got < cycles2 || got > cycles2+1 {
		t.Fatalf("idle poll changed cycles %d -> %d", cycles2, got)
	}
}

// TestRuntimeStartStop exercises the ticker path end to end: StartRuntime
// polls at its floor interval and Stop performs the final collection.
func TestRuntimeStartStop(t *testing.T) {
	r := New()
	c := StartRuntime(r, time.Millisecond) // clamped to the 100ms floor
	if c == nil {
		t.Fatal("collector did not start")
	}
	c.Stop() // final Poll runs even if the ticker never fired
	c.Stop() // idempotent
	if r.Snapshot().Gauge("runtime_goroutines") < 1 {
		t.Fatal("Stop's final poll did not populate the registry")
	}
}

// TestObserveN pins the bulk-observe used by histogram folding: count
// and sum both scale with n, and non-positive n or a nil histogram are
// no-ops.
func TestObserveN(t *testing.T) {
	r := New()
	h := r.Histogram("fold_ns")
	h.ObserveN(100, 3)
	h.ObserveN(-5, 2) // clamps to 0, still 2 observations
	h.ObserveN(7, 0)  // no-op
	h.ObserveN(7, -1) // no-op
	s := r.Snapshot().Histograms["fold_ns"]
	if s.Count != 5 || s.Sum != 300 {
		t.Fatalf("count=%d sum=%d, want 5/300", s.Count, s.Sum)
	}
	var nilH *Histogram
	nilH.ObserveN(1, 1) // must not panic
}
