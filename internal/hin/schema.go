// Package hin implements the heterogeneous information network (HIN) model
// of Zhang et al. (EDBT 2014), Definitions 1-5: directed graphs whose
// entities (nodes) and links (edges) each belong to one of several declared
// types, a schema describing the meta structure, meta paths over the
// schema, and the projection of a full network onto a target network schema
// with short-circuited link features.
//
// Graphs are immutable after construction and stored in compressed
// sparse-row form per link type, so they scale to millions of entities;
// a Builder accumulates entities and edges and freezes them into a Graph.
package hin

import (
	"fmt"
	"strings"
)

// EntityID identifies an entity within one Graph. IDs are dense, starting
// at zero in insertion order.
type EntityID int32

// NoEntity is the sentinel returned by lookups that find nothing.
const NoEntity EntityID = -1

// EntityTypeID indexes a Schema's entity types.
type EntityTypeID uint8

// LinkTypeID indexes a Schema's link types.
type LinkTypeID uint8

// EntityType declares one type of entity and the names of its int64-valued
// attributes. Attribute order is significant: Builder.AddEntity takes
// values positionally and Graph.Attr retrieves them by index.
type EntityType struct {
	Name  string
	Attrs []string
	// SetAttrs names optional multi-valued int32 attributes (such as the
	// t.qq tag-ID sets), stored separately from the scalar attributes.
	SetAttrs []string
}

// LinkType declares one type of directed link between two entity types.
type LinkType struct {
	Name string
	// From and To name the source and destination entity types.
	From, To string
	// AllowSelf reports whether an entity may link to itself via this
	// type. It feeds the m vs |L|-m split in the paper's Equation 4
	// density denominator.
	AllowSelf bool
	// Weighted reports whether edges of this type carry an integer
	// strength (e.g. mention strength); unweighted edges store weight 1.
	Weighted bool
}

// Schema is the network schema T_G = (E, L) of Definition 3: a meta
// template declaring the entity types and the typed links among them.
type Schema struct {
	entityTypes []EntityType
	linkTypes   []LinkType
	etByName    map[string]EntityTypeID
	ltByName    map[string]LinkTypeID
	attrIndex   []map[string]int // per entity type: attr name -> position
	setIndex    []map[string]int // per entity type: set attr name -> position
}

// NewSchema validates and builds a schema from the given entity and link
// types. Entity type names, link type names, and attribute names within a
// type must be unique and non-empty; every link endpoint must name a
// declared entity type.
func NewSchema(entityTypes []EntityType, linkTypes []LinkType) (*Schema, error) {
	if len(entityTypes) == 0 {
		return nil, fmt.Errorf("hin: schema needs at least one entity type")
	}
	if len(entityTypes) > 250 || len(linkTypes) > 250 {
		return nil, fmt.Errorf("hin: too many types (max 250)")
	}
	s := &Schema{
		entityTypes: append([]EntityType(nil), entityTypes...),
		linkTypes:   append([]LinkType(nil), linkTypes...),
		etByName:    make(map[string]EntityTypeID, len(entityTypes)),
		ltByName:    make(map[string]LinkTypeID, len(linkTypes)),
	}
	for i, et := range s.entityTypes {
		if et.Name == "" {
			return nil, fmt.Errorf("hin: entity type %d has empty name", i)
		}
		if _, dup := s.etByName[et.Name]; dup {
			return nil, fmt.Errorf("hin: duplicate entity type %q", et.Name)
		}
		s.etByName[et.Name] = EntityTypeID(i)
		attrs := make(map[string]int, len(et.Attrs))
		for j, a := range et.Attrs {
			if a == "" {
				return nil, fmt.Errorf("hin: entity type %q attr %d has empty name", et.Name, j)
			}
			if _, dup := attrs[a]; dup {
				return nil, fmt.Errorf("hin: entity type %q has duplicate attr %q", et.Name, a)
			}
			attrs[a] = j
		}
		s.attrIndex = append(s.attrIndex, attrs)
		sets := make(map[string]int, len(et.SetAttrs))
		for j, a := range et.SetAttrs {
			if a == "" {
				return nil, fmt.Errorf("hin: entity type %q set attr %d has empty name", et.Name, j)
			}
			if _, dup := sets[a]; dup {
				return nil, fmt.Errorf("hin: entity type %q has duplicate set attr %q", et.Name, a)
			}
			sets[a] = j
		}
		s.setIndex = append(s.setIndex, sets)
	}
	for i, lt := range s.linkTypes {
		if lt.Name == "" {
			return nil, fmt.Errorf("hin: link type %d has empty name", i)
		}
		if _, dup := s.ltByName[lt.Name]; dup {
			return nil, fmt.Errorf("hin: duplicate link type %q", lt.Name)
		}
		if _, ok := s.etByName[lt.From]; !ok {
			return nil, fmt.Errorf("hin: link type %q: unknown source entity type %q", lt.Name, lt.From)
		}
		if _, ok := s.etByName[lt.To]; !ok {
			return nil, fmt.Errorf("hin: link type %q: unknown destination entity type %q", lt.Name, lt.To)
		}
		s.ltByName[lt.Name] = LinkTypeID(i)
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error, for statically known
// schemas such as the built-in t.qq ones.
func MustSchema(entityTypes []EntityType, linkTypes []LinkType) *Schema {
	s, err := NewSchema(entityTypes, linkTypes)
	if err != nil {
		panic(err)
	}
	return s
}

// NumEntityTypes returns |E| of Definition 2.
func (s *Schema) NumEntityTypes() int { return len(s.entityTypes) }

// NumLinkTypes returns |L| of Definition 2.
func (s *Schema) NumLinkTypes() int { return len(s.linkTypes) }

// Heterogeneous reports whether the schema describes a heterogeneous
// information network per Definition 2 (|E| > 1 or |L| > 1).
func (s *Schema) Heterogeneous() bool {
	return len(s.entityTypes) > 1 || len(s.linkTypes) > 1
}

// EntityType returns the declaration of entity type id.
func (s *Schema) EntityType(id EntityTypeID) EntityType { return s.entityTypes[id] }

// LinkType returns the declaration of link type id.
func (s *Schema) LinkType(id LinkTypeID) LinkType { return s.linkTypes[id] }

// EntityTypeID resolves an entity type by name.
func (s *Schema) EntityTypeID(name string) (EntityTypeID, bool) {
	id, ok := s.etByName[name]
	return id, ok
}

// LinkTypeID resolves a link type by name.
func (s *Schema) LinkTypeID(name string) (LinkTypeID, bool) {
	id, ok := s.ltByName[name]
	return id, ok
}

// MustLinkTypeID resolves a link type by name, panicking if absent; it is
// meant for statically known names.
func (s *Schema) MustLinkTypeID(name string) LinkTypeID {
	id, ok := s.ltByName[name]
	if !ok {
		panic(fmt.Sprintf("hin: unknown link type %q", name))
	}
	return id
}

// AttrIndex returns the position of attribute name within entity type t,
// or -1 if t has no such attribute.
func (s *Schema) AttrIndex(t EntityTypeID, name string) int {
	if i, ok := s.attrIndex[t][name]; ok {
		return i
	}
	return -1
}

// SetAttrIndex returns the position of multi-valued attribute name within
// entity type t, or -1 if t has no such set attribute.
func (s *Schema) SetAttrIndex(t EntityTypeID, name string) int {
	if i, ok := s.setIndex[t][name]; ok {
		return i
	}
	return -1
}

// LinkTypesFrom returns the ids of all link types whose source is entity
// type t.
func (s *Schema) LinkTypesFrom(t EntityTypeID) []LinkTypeID {
	var out []LinkTypeID
	name := s.entityTypes[t].Name
	for i, lt := range s.linkTypes {
		if lt.From == name {
			out = append(out, LinkTypeID(i))
		}
	}
	return out
}

// String renders the schema in a compact one-line-per-type form, e.g.
//
//	entity User(yob, gender, tweets, numtags | tags)
//	link   follow: User -> User
func (s *Schema) String() string {
	var b strings.Builder
	for _, et := range s.entityTypes {
		fmt.Fprintf(&b, "entity %s(%s", et.Name, strings.Join(et.Attrs, ", "))
		if len(et.SetAttrs) > 0 {
			fmt.Fprintf(&b, " | %s", strings.Join(et.SetAttrs, ", "))
		}
		b.WriteString(")\n")
	}
	for _, lt := range s.linkTypes {
		fmt.Fprintf(&b, "link   %s: %s -> %s", lt.Name, lt.From, lt.To)
		var flags []string
		if lt.Weighted {
			flags = append(flags, "weighted")
		}
		if lt.AllowSelf {
			flags = append(flags, "self")
		}
		if len(flags) > 0 {
			fmt.Fprintf(&b, " [%s]", strings.Join(flags, ","))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
