package hin

import (
	"fmt"
	"sort"
)

// Builder accumulates entities and edges and freezes them into an immutable
// Graph. A Builder is single-use: after Build it must not be reused.
//
// Entity-shape mistakes (unknown type, wrong attribute count) are
// programmer errors and panic; edge mistakes (bad endpoints, violated
// self-loop rule) are data-dependent and returned as errors.
type Builder struct {
	schema *Schema
	etype  []EntityTypeID
	labels []string

	attrOff  []int64
	attrData []int64

	sets map[string]map[EntityID][]int32

	eFrom [][]EntityID // per link type
	eTo   [][]EntityID
	eW    [][]int32

	built bool
}

// NewBuilder returns a Builder for the given schema.
func NewBuilder(schema *Schema) *Builder {
	return &Builder{
		schema:  schema,
		attrOff: []int64{0},
		sets:    make(map[string]map[EntityID][]int32),
		eFrom:   make([][]EntityID, schema.NumLinkTypes()),
		eTo:     make([][]EntityID, schema.NumLinkTypes()),
		eW:      make([][]int32, schema.NumLinkTypes()),
	}
}

// NumEntities returns how many entities have been added so far.
func (b *Builder) NumEntities() int { return len(b.etype) }

// AddEntity appends an entity of type t with the given label and scalar
// attribute values (positional, matching the type declaration) and returns
// its id. It panics if t is out of range or the attribute count is wrong.
func (b *Builder) AddEntity(t EntityTypeID, label string, attrs ...int64) EntityID {
	if int(t) >= b.schema.NumEntityTypes() {
		panic(fmt.Sprintf("hin: AddEntity with unknown entity type %d", t))
	}
	decl := b.schema.EntityType(t)
	if len(attrs) != len(decl.Attrs) {
		panic(fmt.Sprintf("hin: entity type %q takes %d attrs, got %d",
			decl.Name, len(decl.Attrs), len(attrs)))
	}
	id := EntityID(len(b.etype))
	b.etype = append(b.etype, t)
	b.labels = append(b.labels, label)
	b.attrData = append(b.attrData, attrs...)
	b.attrOff = append(b.attrOff, int64(len(b.attrData)))
	return id
}

// SetSet assigns the named multi-valued attribute of entity v. The entity's
// type must declare the set attribute. Values are copied and sorted; a nil
// or empty slice clears the set.
func (b *Builder) SetSet(name string, v EntityID, vals []int32) {
	if v < 0 || int(v) >= len(b.etype) {
		panic(fmt.Sprintf("hin: SetSet on unknown entity %d", v))
	}
	if b.schema.SetAttrIndex(b.etype[v], name) < 0 {
		panic(fmt.Sprintf("hin: entity type %q has no set attribute %q",
			b.schema.EntityType(b.etype[v]).Name, name))
	}
	col := b.sets[name]
	if col == nil {
		col = make(map[EntityID][]int32)
		b.sets[name] = col
	}
	if len(vals) == 0 {
		delete(col, v)
		return
	}
	cp := append([]int32(nil), vals...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	col[v] = cp
}

// AddEdge appends a directed edge of link type lt from -> to with strength
// w. Duplicate (lt, from, to) edges are merged at Build time by summing
// strengths. Unweighted link types require w == 1.
func (b *Builder) AddEdge(lt LinkTypeID, from, to EntityID, w int32) error {
	if int(lt) >= b.schema.NumLinkTypes() {
		return fmt.Errorf("hin: unknown link type %d", lt)
	}
	if from < 0 || int(from) >= len(b.etype) {
		return fmt.Errorf("hin: edge source %d out of range", from)
	}
	if to < 0 || int(to) >= len(b.etype) {
		return fmt.Errorf("hin: edge destination %d out of range", to)
	}
	decl := b.schema.LinkType(lt)
	if ft := b.schema.EntityType(b.etype[from]).Name; ft != decl.From {
		return fmt.Errorf("hin: link %q requires source type %q, entity %d has %q",
			decl.Name, decl.From, from, ft)
	}
	if tt := b.schema.EntityType(b.etype[to]).Name; tt != decl.To {
		return fmt.Errorf("hin: link %q requires destination type %q, entity %d has %q",
			decl.Name, decl.To, to, tt)
	}
	if from == to && !decl.AllowSelf {
		return fmt.Errorf("hin: link %q forbids self-loops (entity %d)", decl.Name, from)
	}
	if w <= 0 {
		return fmt.Errorf("hin: edge strength must be positive, got %d", w)
	}
	if !decl.Weighted && w != 1 {
		return fmt.Errorf("hin: unweighted link %q requires strength 1, got %d", decl.Name, w)
	}
	b.eFrom[lt] = append(b.eFrom[lt], from)
	b.eTo[lt] = append(b.eTo[lt], to)
	b.eW[lt] = append(b.eW[lt], w)
	return nil
}

// Build freezes the accumulated entities and edges into a Graph. Duplicate
// edges of the same link type are merged by summing strengths (unweighted
// duplicates collapse to a single strength-1 edge).
func (b *Builder) Build() (*Graph, error) {
	if b.built {
		return nil, fmt.Errorf("hin: Builder already built")
	}
	b.built = true
	n := len(b.etype)
	g := &Graph{
		schema:   b.schema,
		n:        n,
		etype:    b.etype,
		label:    b.labels,
		attrOff:  b.attrOff,
		attrData: b.attrData,
		sets:     make(map[string]*setCol, len(b.sets)),
		fwd:      make([]csr, b.schema.NumLinkTypes()),
		rev:      make([]csr, b.schema.NumLinkTypes()),
	}
	for name, vals := range b.sets {
		col := &setCol{off: make([]int64, n+1)}
		var total int64
		for v := 0; v < n; v++ {
			total += int64(len(vals[EntityID(v)]))
			col.off[v+1] = total
		}
		col.data = make([]int32, 0, total)
		for v := 0; v < n; v++ {
			//hin:allow determinism -- each column is rebuilt per set name in ascending entity order; the order b.sets is visited never reaches col.data
			col.data = append(col.data, vals[EntityID(v)]...)
		}
		g.sets[name] = col
	}
	for lt := range b.eFrom {
		merged := !b.schema.LinkType(LinkTypeID(lt)).Weighted
		fwd, err := buildCSR(n, b.eFrom[lt], b.eTo[lt], b.eW[lt], merged)
		if err != nil {
			return nil, err
		}
		rev, err := buildCSR(n, b.eTo[lt], b.eFrom[lt], b.eW[lt], merged)
		if err != nil {
			return nil, err
		}
		g.fwd[lt] = fwd
		g.rev[lt] = rev
		b.eFrom[lt], b.eTo[lt], b.eW[lt] = nil, nil, nil
	}
	return g, nil
}

// buildCSR assembles a CSR adjacency from parallel edge slices, sorting
// each row and merging duplicate destinations by summing weights. If
// collapse is true, merged weights are clamped to 1 (unweighted links).
func buildCSR(n int, from, to []EntityID, w []int32, collapse bool) (csr, error) {
	deg := make([]int64, n+1)
	for _, f := range from {
		deg[f+1]++
	}
	for i := 1; i <= n; i++ {
		deg[i] += deg[i-1]
	}
	off := deg // deg now holds offsets; reuse
	tos := make([]EntityID, len(to))
	ws := make([]int32, len(w))
	cursor := make([]int64, n)
	for i, f := range from {
		p := off[f] + cursor[f]
		cursor[f]++
		tos[p] = to[i]
		ws[p] = w[i]
	}
	// Sort each row by destination and merge duplicates in place, then
	// compact.
	outTo := tos[:0]
	outW := ws[:0]
	newOff := make([]int64, n+1)
	for v := 0; v < n; v++ {
		lo, hi := off[v], off[v+1]
		row := tos[lo:hi]
		roww := ws[lo:hi]
		sort.Sort(&edgeSorter{row, roww})
		for i := 0; i < len(row); {
			j := i + 1
			sum := int64(roww[i])
			for j < len(row) && row[j] == row[i] {
				sum += int64(roww[j])
				j++
			}
			if collapse {
				sum = 1
			}
			if sum > int64(maxInt32) {
				return csr{}, fmt.Errorf("hin: merged edge strength overflows int32 at entity %d", v)
			}
			outTo = append(outTo, row[i])
			outW = append(outW, int32(sum))
			i = j
		}
		newOff[v+1] = int64(len(outTo))
	}
	return csr{off: newOff, to: outTo, w: outW}, nil
}

const maxInt32 = 1<<31 - 1

type edgeSorter struct {
	to []EntityID
	w  []int32
}

func (s *edgeSorter) Len() int           { return len(s.to) }
func (s *edgeSorter) Less(i, j int) bool { return s.to[i] < s.to[j] }
func (s *edgeSorter) Swap(i, j int) {
	s.to[i], s.to[j] = s.to[j], s.to[i]
	s.w[i], s.w[j] = s.w[j], s.w[i]
}
