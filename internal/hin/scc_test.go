package hin

import (
	"sort"
	"testing"
	"testing/quick"

	"github.com/hinpriv/dehin/internal/randx"
)

// sccSchema: one entity type, two link types to exercise the union
// semantics.
func sccSchema() *Schema {
	return MustSchema(
		[]EntityType{{Name: "N"}},
		[]LinkType{
			{Name: "a", From: "N", To: "N"},
			{Name: "b", From: "N", To: "N"},
		},
	)
}

func sccGraph(t testing.TB, n int, edges [][3]int) *Graph {
	t.Helper()
	b := NewBuilder(sccSchema())
	for i := 0; i < n; i++ {
		b.AddEntity(0, "")
	}
	for _, e := range edges {
		if err := b.AddEdge(LinkTypeID(e[2]), EntityID(e[0]), EntityID(e[1]), 1); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func compSets(comps [][]EntityID) []string {
	var out []string
	for _, c := range comps {
		ids := make([]int, len(c))
		for i, v := range c {
			ids[i] = int(v)
		}
		sort.Ints(ids)
		s := ""
		for _, v := range ids {
			s += string(rune('a' + v))
		}
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func TestSCCSimpleCycle(t *testing.T) {
	// 0 -> 1 -> 2 -> 0 plus a tail 2 -> 3.
	g := sccGraph(t, 4, [][3]int{{0, 1, 0}, {1, 2, 0}, {2, 0, 0}, {2, 3, 1}})
	comps := StronglyConnectedComponents(g)
	got := compSets(comps)
	want := []string{"abc", "d"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("components = %v, want %v", got, want)
	}
}

func TestSCCCrossLinkTypeCycle(t *testing.T) {
	// Cycle only through the union: 0 -a-> 1, 1 -b-> 0.
	g := sccGraph(t, 2, [][3]int{{0, 1, 0}, {1, 0, 1}})
	comps := StronglyConnectedComponents(g)
	if len(comps) != 1 || len(comps[0]) != 2 {
		t.Fatalf("components = %v", compSets(comps))
	}
}

func TestSCCSingletons(t *testing.T) {
	g := sccGraph(t, 3, [][3]int{{0, 1, 0}, {1, 2, 0}})
	comps := StronglyConnectedComponents(g)
	if len(comps) != 3 {
		t.Fatalf("want 3 singleton components, got %v", compSets(comps))
	}
}

func TestSCCReverseTopologicalOrder(t *testing.T) {
	// 0 -> 1 (two singleton components): successor (1) must be emitted
	// first.
	g := sccGraph(t, 2, [][3]int{{0, 1, 0}})
	comps := StronglyConnectedComponents(g)
	if comps[0][0] != 1 || comps[1][0] != 0 {
		t.Fatalf("emission order wrong: %v", comps)
	}
}

func TestSourceComponents(t *testing.T) {
	// Gang {0,1} (mutual edges, edge out to 2), core {2,3} cycle with an
	// external in-edge from the gang -> not a source. Singleton 4 with no
	// edges: source but below minSize 2.
	g := sccGraph(t, 5, [][3]int{
		{0, 1, 0}, {1, 0, 0}, {0, 2, 0},
		{2, 3, 0}, {3, 2, 0},
	})
	srcs := SourceComponents(g, 2, 3)
	if len(srcs) != 1 {
		t.Fatalf("sources = %v", compSets(srcs))
	}
	got := compSets(srcs)
	if got[0] != "ab" {
		t.Fatalf("source = %v, want {0,1}", got)
	}
}

func TestSourceComponentsSizeBounds(t *testing.T) {
	g := sccGraph(t, 4, [][3]int{{0, 1, 0}, {1, 2, 0}, {2, 0, 0}})
	if srcs := SourceComponents(g, 2, 2); len(srcs) != 0 {
		t.Fatalf("3-cycle should exceed maxSize 2: %v", compSets(srcs))
	}
	if srcs := SourceComponents(g, 2, 3); len(srcs) != 1 {
		t.Fatalf("3-cycle should be found with maxSize 3")
	}
}

// Property: components partition the vertex set, and within a component
// every vertex reaches every other (checked by BFS over the union graph).
func TestSCCPartitionAndMutualReachability(t *testing.T) {
	f := func(seed uint64) bool {
		rng := randx.New(seed)
		n := rng.IntRange(2, 30)
		b := NewBuilder(sccSchema())
		for i := 0; i < n; i++ {
			b.AddEntity(0, "")
		}
		for e := 0; e < 3*n; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				_ = b.AddEdge(LinkTypeID(rng.Intn(2)), EntityID(u), EntityID(v), 1)
			}
		}
		g, _ := b.Build()
		comps := StronglyConnectedComponents(g)
		seen := make(map[EntityID]bool)
		for _, c := range comps {
			for _, v := range c {
				if seen[v] {
					return false // vertex in two components
				}
				seen[v] = true
			}
		}
		if len(seen) != n {
			return false // not a partition
		}
		reach := func(from, to EntityID) bool {
			if from == to {
				return true
			}
			visited := map[EntityID]bool{from: true}
			queue := []EntityID{from}
			for len(queue) > 0 {
				v := queue[0]
				queue = queue[1:]
				for lt := 0; lt < 2; lt++ {
					tos, _ := g.OutEdges(LinkTypeID(lt), v)
					for _, w := range tos {
						if w == to {
							return true
						}
						if !visited[w] {
							visited[w] = true
							queue = append(queue, w)
						}
					}
				}
			}
			return false
		}
		for _, c := range comps {
			if len(c) < 2 {
				continue
			}
			// Spot-check mutual reachability of the first pair.
			if !reach(c[0], c[1]) || !reach(c[1], c[0]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSCCDeepChainNoOverflow(t *testing.T) {
	// A 200k-long path would overflow a recursive Tarjan; the iterative
	// version must handle it.
	const n = 200000
	b := NewBuilder(sccSchema())
	for i := 0; i < n; i++ {
		b.AddEntity(0, "")
	}
	for i := 0; i+1 < n; i++ {
		if err := b.AddEdge(0, EntityID(i), EntityID(i+1), 1); err != nil {
			t.Fatal(err)
		}
	}
	g, _ := b.Build()
	comps := StronglyConnectedComponents(g)
	if len(comps) != n {
		t.Fatalf("path graph: %d components, want %d", len(comps), n)
	}
}
