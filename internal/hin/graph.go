package hin

import (
	"fmt"
	"sort"
)

// Edge is one directed link: the destination entity and the link's integer
// strength (1 for unweighted link types).
type Edge struct {
	To EntityID
	W  int32
}

// csr is a compressed sparse-row adjacency for one link type. Row v spans
// to[off[v]:off[v+1]] (destinations, sorted ascending) and the parallel
// weight slice w.
type csr struct {
	off []int64
	to  []EntityID
	w   []int32
}

func (c *csr) row(v EntityID) ([]EntityID, []int32) {
	lo, hi := c.off[v], c.off[v+1]
	return c.to[lo:hi], c.w[lo:hi]
}

// setCol stores one multi-valued int32 attribute for every entity: entity
// v's values (sorted ascending) are data[off[v]:off[v+1]].
type setCol struct {
	off  []int64
	data []int32
}

// Graph is an immutable heterogeneous information network instance: typed
// entities with scalar and set attributes, and per-link-type weighted
// adjacency in both directions. Construct one with a Builder.
type Graph struct {
	schema *Schema
	n      int
	etype  []EntityTypeID
	label  []string

	attrOff  []int64 // len n+1; entity v's attrs are attrData[attrOff[v]:attrOff[v+1]]
	attrData []int64

	sets map[string]*setCol

	fwd []csr // indexed by LinkTypeID
	rev []csr
}

// Schema returns the schema the graph was built against.
func (g *Graph) Schema() *Schema { return g.schema }

// NumEntities returns the number of entities.
func (g *Graph) NumEntities() int { return g.n }

// NumEdges returns the number of edges of link type lt.
func (g *Graph) NumEdges(lt LinkTypeID) int64 { return int64(len(g.fwd[lt].to)) }

// NumEdgesTotal returns the number of edges across all link types.
func (g *Graph) NumEdgesTotal() int64 {
	var total int64
	for i := range g.fwd {
		total += int64(len(g.fwd[i].to))
	}
	return total
}

// EntityType returns the type of entity v.
func (g *Graph) EntityType(v EntityID) EntityTypeID { return g.etype[v] }

// Label returns the external identifier of entity v (for t.qq users, the
// user-ID string). Labels are carried through sampling and anonymization
// ground-truth maps but are never consulted by the attack itself.
func (g *Graph) Label(v EntityID) string { return g.label[v] }

// NumAttrs returns how many scalar attributes entity v carries.
func (g *Graph) NumAttrs(v EntityID) int {
	return int(g.attrOff[v+1] - g.attrOff[v])
}

// Attr returns the i-th scalar attribute of entity v, positionally per the
// entity's type declaration.
func (g *Graph) Attr(v EntityID, i int) int64 {
	return g.attrData[g.attrOff[v]+int64(i)]
}

// Attrs returns a read-only view of all scalar attributes of entity v.
func (g *Graph) Attrs(v EntityID) []int64 {
	return g.attrData[g.attrOff[v]:g.attrOff[v+1]]
}

// Set returns the sorted values of the named multi-valued attribute of
// entity v, or nil if the entity has none.
func (g *Graph) Set(name string, v EntityID) []int32 {
	col, ok := g.sets[name]
	if !ok {
		return nil
	}
	return col.data[col.off[v]:col.off[v+1]]
}

// OutDegree returns the number of out-edges of v via link type lt.
func (g *Graph) OutDegree(lt LinkTypeID, v EntityID) int {
	c := &g.fwd[lt]
	return int(c.off[v+1] - c.off[v])
}

// InDegree returns the number of in-edges of v via link type lt.
func (g *Graph) InDegree(lt LinkTypeID, v EntityID) int {
	c := &g.rev[lt]
	return int(c.off[v+1] - c.off[v])
}

// OutDegrees appends the out-degree of every entity via link type lt to
// dst and returns the extended slice. One sequential pass over the CSR
// offsets; meant for bulk consumers such as degree-signature indexes and
// load-balanced work scheduling, where per-entity OutDegree calls would
// pay n bounds checks.
func (g *Graph) OutDegrees(lt LinkTypeID, dst []int32) []int32 {
	return degreesFromOffsets(g.fwd[lt].off, dst)
}

// InDegrees is OutDegrees over the reverse adjacency.
func (g *Graph) InDegrees(lt LinkTypeID, dst []int32) []int32 {
	return degreesFromOffsets(g.rev[lt].off, dst)
}

func degreesFromOffsets(off []int64, dst []int32) []int32 {
	for v := 0; v+1 < len(off); v++ {
		dst = append(dst, int32(off[v+1]-off[v]))
	}
	return dst
}

// OutEdges returns zero-copy views of v's out-neighbors via lt (sorted
// ascending by destination) and the parallel strengths.
func (g *Graph) OutEdges(lt LinkTypeID, v EntityID) ([]EntityID, []int32) {
	return g.fwd[lt].row(v)
}

// InEdges returns zero-copy views of v's in-neighbors via lt (sorted
// ascending by source) and the parallel strengths.
func (g *Graph) InEdges(lt LinkTypeID, v EntityID) ([]EntityID, []int32) {
	return g.rev[lt].row(v)
}

// FindEdge looks up the edge from -> to of link type lt, returning its
// strength and whether it exists.
func (g *Graph) FindEdge(lt LinkTypeID, from, to EntityID) (int32, bool) {
	tos, ws := g.fwd[lt].row(from)
	i := sort.Search(len(tos), func(i int) bool { return tos[i] >= to })
	if i < len(tos) && tos[i] == to {
		return ws[i], true
	}
	return 0, false
}

// EntitiesOfType returns the ids of all entities with type t, ascending.
func (g *Graph) EntitiesOfType(t EntityTypeID) []EntityID {
	var out []EntityID
	for v := 0; v < g.n; v++ {
		if g.etype[v] == t {
			out = append(out, EntityID(v))
		}
	}
	return out
}

// Induced returns the subgraph induced by the given entities: the entities
// keep their types, labels and attributes, and every edge whose endpoints
// are both in vs survives. The second result maps each new entity id to its
// id in g. Duplicate ids in vs are an error.
//
// Because vs fixes the new id order, passing a permutation of all entities
// relabels the graph - which is how ID randomization is implemented.
func (g *Graph) Induced(vs []EntityID) (*Graph, []EntityID, error) {
	remap := make(map[EntityID]EntityID, len(vs))
	for i, v := range vs {
		if v < 0 || int(v) >= g.n {
			return nil, nil, fmt.Errorf("hin: induced subgraph entity %d out of range", v)
		}
		if _, dup := remap[v]; dup {
			return nil, nil, fmt.Errorf("hin: duplicate entity %d in induced subgraph", v)
		}
		remap[v] = EntityID(i)
	}
	b := NewBuilder(g.schema)
	for _, v := range vs {
		b.AddEntity(g.etype[v], g.label[v], g.Attrs(v)...)
	}
	for name := range g.sets {
		for i, v := range vs {
			if s := g.Set(name, v); len(s) > 0 {
				b.SetSet(name, EntityID(i), s)
			}
		}
	}
	for lt := range g.fwd {
		ltid := LinkTypeID(lt)
		for _, v := range vs {
			nv := remap[v]
			tos, ws := g.OutEdges(ltid, v)
			for j, to := range tos {
				nt, in := remap[to]
				if !in {
					continue
				}
				if err := b.AddEdge(ltid, nv, nt, ws[j]); err != nil {
					return nil, nil, err
				}
			}
		}
	}
	sub, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	orig := append([]EntityID(nil), vs...)
	return sub, orig, nil
}

// setColView exists for tests; it returns whether the graph carries the
// named set column at all (even if every entity's set is empty).
func (g *Graph) hasSetCol(name string) bool {
	_, ok := g.sets[name]
	return ok
}
