package hin

import (
	"fmt"
	"strings"
)

// Step is one hop of a meta path over the network schema. It traverses the
// named link type forward (From -> To) or, when Reverse is set, backward
// (To -> From) - e.g. the paper's "posted by" hop is the reverse of "post".
type Step struct {
	Link    string
	Reverse bool
}

// MetaPath is a target meta path of Definition 4: a walk over the network
// schema beginning and ending at the target entity type, e.g.
//
//	User -post-> Tweet -mention-> User
//
// Name labels the short-circuited link type the path produces in the target
// network schema (Definition 5). Several MetaPaths may share a Name; their
// path-instance counts merge into a single short-circuited feature, exactly
// as the paper's mention strength merges the tweet- and comment-mediated
// mention paths.
type MetaPath struct {
	Name  string
	Steps []Step
}

// String renders the path as "name: link1 > ~link2 > link3" where ~ marks a
// reversed hop.
func (p MetaPath) String() string {
	parts := make([]string, len(p.Steps))
	for i, s := range p.Steps {
		if s.Reverse {
			parts[i] = "~" + s.Link
		} else {
			parts[i] = s.Link
		}
	}
	return p.Name + ": " + strings.Join(parts, " > ")
}

// validate checks p against the schema: every hop must name a declared link
// type, consecutive hops must compose, and the walk must start and end at
// target.
func (p MetaPath) validate(s *Schema, target string) error {
	if p.Name == "" {
		return fmt.Errorf("hin: meta path with empty name")
	}
	if len(p.Steps) == 0 {
		return fmt.Errorf("hin: meta path %q has no steps", p.Name)
	}
	at := target
	for i, st := range p.Steps {
		ltID, ok := s.LinkTypeID(st.Link)
		if !ok {
			return fmt.Errorf("hin: meta path %q step %d: unknown link type %q", p.Name, i, st.Link)
		}
		lt := s.LinkType(ltID)
		from, to := lt.From, lt.To
		if st.Reverse {
			from, to = to, from
		}
		if from != at {
			return fmt.Errorf("hin: meta path %q step %d: expects source %q, walk is at %q",
				p.Name, i, from, at)
		}
		at = to
	}
	if at != target {
		return fmt.Errorf("hin: meta path %q ends at %q, not target %q", p.Name, at, target)
	}
	return nil
}

// ProjectSchema derives the target network schema of Definition 5: a schema
// over only the target entity type whose link types are the (merged) names
// of the given target meta paths. Every projected link type is weighted
// (the short-circuited feature is the path-instance count) and, because
// paths of length >= 2 can in principle loop back to their origin,
// self-loops are permitted only for multi-step paths.
func ProjectSchema(s *Schema, target string, paths []MetaPath) (*Schema, error) {
	tid, ok := s.EntityTypeID(target)
	if !ok {
		return nil, fmt.Errorf("hin: unknown target entity type %q", target)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("hin: projection needs at least one meta path")
	}
	type linkInfo struct {
		weighted  bool
		allowSelf bool
	}
	order := make([]string, 0, len(paths))
	info := make(map[string]*linkInfo)
	for _, p := range paths {
		if err := p.validate(s, target); err != nil {
			return nil, err
		}
		li := info[p.Name]
		if li == nil {
			li = &linkInfo{}
			info[p.Name] = li
			order = append(order, p.Name)
		}
		if len(p.Steps) > 1 {
			// Short-circuited multi-hop paths carry an instance-count
			// strength and may return to the origin.
			li.weighted = true
			li.allowSelf = true
		} else if lt, _ := s.LinkTypeID(p.Steps[0].Link); s.LinkType(lt).Weighted {
			li.weighted = true
		}
	}
	et := s.EntityType(tid)
	lts := make([]LinkType, 0, len(order))
	for _, name := range order {
		lts = append(lts, LinkType{
			Name:      name,
			From:      target,
			To:        target,
			AllowSelf: info[name].allowSelf,
			Weighted:  info[name].weighted,
		})
	}
	return NewSchema([]EntityType{et}, lts)
}

// ProjectGraph projects the instance network g onto its target network
// schema: the result contains only entities of the target type (attributes,
// labels and set attributes preserved) and, for each target meta path, a
// weighted edge u -> v whose strength is the number of path instances from
// u to v (summed across same-named paths). Self-instances (paths returning
// to their origin) are kept only if the projected link type allows self-
// loops, i.e. for multi-hop paths.
//
// This realizes the paper's short-circuited features: mention, retweet and
// comment strengths arise as path-instance counts over the event-level
// network, while single-hop paths such as follow are reproduced as-is.
func ProjectGraph(g *Graph, target string, paths []MetaPath) (*Graph, []EntityID, error) {
	ps, err := ProjectSchema(g.Schema(), target, paths)
	if err != nil {
		return nil, nil, err
	}
	tid, _ := g.Schema().EntityTypeID(target)
	targets := g.EntitiesOfType(tid)
	remap := make(map[EntityID]EntityID, len(targets))
	for i, v := range targets {
		remap[v] = EntityID(i)
	}

	b := NewBuilder(ps)
	for _, v := range targets {
		b.AddEntity(0, g.Label(v), g.Attrs(v)...)
	}
	for _, sa := range g.Schema().EntityType(tid).SetAttrs {
		for i, v := range targets {
			if s := g.Set(sa, v); len(s) > 0 {
				b.SetSet(sa, EntityID(i), s)
			}
		}
	}

	for _, p := range paths {
		plt := ps.MustLinkTypeID(p.Name)
		allowSelf := ps.LinkType(plt).AllowSelf
		counts := make(map[EntityID]int64)
		for _, src := range targets {
			clear(counts)
			walkPath(g, src, p.Steps, 1, counts)
			nsrc := remap[src]
			for dst, c := range counts {
				if dst == src && !allowSelf {
					continue
				}
				ndst, ok := remap[dst]
				if !ok {
					continue
				}
				if c > int64(maxInt32) {
					return nil, nil, fmt.Errorf("hin: path count overflow projecting %q", p.Name)
				}
				if err := b.AddEdge(plt, nsrc, ndst, int32(c)); err != nil {
					return nil, nil, err
				}
			}
		}
	}
	pg, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return pg, targets, nil
}

// walkPath accumulates, into counts, the number of instances of the
// remaining steps starting from v, each weighted by mult (the product of
// strengths is NOT used - instance counts follow the paper, where a mention
// edge already aggregates the count, so each concrete edge contributes its
// strength on weighted hops and 1 on unweighted ones).
func walkPath(g *Graph, v EntityID, steps []Step, mult int64, counts map[EntityID]int64) {
	if len(steps) == 0 {
		counts[v] += mult
		return
	}
	st := steps[0]
	ltID, _ := g.Schema().LinkTypeID(st.Link)
	var tos []EntityID
	var ws []int32
	if st.Reverse {
		tos, ws = g.InEdges(ltID, v)
	} else {
		tos, ws = g.OutEdges(ltID, v)
	}
	weighted := g.Schema().LinkType(ltID).Weighted
	for i, to := range tos {
		m := mult
		if weighted {
			m *= int64(ws[i])
		}
		walkPath(g, to, steps[1:], m, counts)
	}
}
