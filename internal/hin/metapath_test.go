package hin

import (
	"strings"
	"testing"
)

// eventSchema mirrors the paper's Figure 2 (trimmed to User/Tweet/Comment):
// users post tweets and comments, tweets and comments mention users,
// retweets link tweets to tweets, comments attach to tweets, and users
// follow users.
func eventSchema(t *testing.T) *Schema {
	t.Helper()
	return MustSchema(
		[]EntityType{
			{Name: "User", Attrs: []string{"yob", "gender"}},
			{Name: "Tweet"},
			{Name: "Comment"},
		},
		[]LinkType{
			{Name: "post", From: "User", To: "Tweet"},
			{Name: "postc", From: "User", To: "Comment"},
			{Name: "mention", From: "Tweet", To: "User"},
			{Name: "mentionc", From: "Comment", To: "User"},
			{Name: "retweet", From: "Tweet", To: "Tweet"},
			{Name: "commenton", From: "Comment", To: "Tweet"},
			{Name: "follow", From: "User", To: "User"},
		},
	)
}

// buildEventGraph creates:
//
//	u0 posts t0; t0 mentions u1 and u2; t0 retweets t1 which u1 posted
//	u0 posts c0; c0 mentions u1; c0 comments-on t1 (posted by u1)
//	u0 follows u1; u1 follows u0
func buildEventGraph(t *testing.T) *Graph {
	t.Helper()
	s := eventSchema(t)
	b := NewBuilder(s)
	u0 := b.AddEntity(0, "u0", 1980, 1)
	u1 := b.AddEntity(0, "u1", 1985, 2)
	u2 := b.AddEntity(0, "u2", 1970, 1)
	t0 := b.AddEntity(1, "t0")
	t1 := b.AddEntity(1, "t1")
	c0 := b.AddEntity(2, "c0")
	lt := func(name string) LinkTypeID { return s.MustLinkTypeID(name) }
	edges := []struct {
		l        string
		from, to EntityID
	}{
		{"post", u0, t0}, {"post", u1, t1},
		{"postc", u0, c0},
		{"mention", t0, u1}, {"mention", t0, u2},
		{"mentionc", c0, u1},
		{"retweet", t0, t1},
		{"commenton", c0, t1},
		{"follow", u0, u1}, {"follow", u1, u0},
	}
	for _, e := range edges {
		if err := b.AddEdge(lt(e.l), e.from, e.to, 1); err != nil {
			t.Fatalf("%s %d->%d: %v", e.l, e.from, e.to, err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// tqqPaths are the paper's Section 3 target meta paths for the trimmed
// schema: mention via tweet or comment, retweet via tweet pairs, comment
// via comment-on-tweet, and follow reproduced directly.
func tqqPaths() []MetaPath {
	return []MetaPath{
		{Name: "mention", Steps: []Step{{Link: "post"}, {Link: "mention"}}},
		{Name: "mention", Steps: []Step{{Link: "postc"}, {Link: "mentionc"}}},
		{Name: "retweet", Steps: []Step{{Link: "post"}, {Link: "retweet"}, {Link: "post", Reverse: true}}},
		{Name: "comment", Steps: []Step{{Link: "postc"}, {Link: "commenton"}, {Link: "post", Reverse: true}}},
		{Name: "follow", Steps: []Step{{Link: "follow"}}},
	}
}

func TestMetaPathValidate(t *testing.T) {
	s := eventSchema(t)
	for _, p := range tqqPaths() {
		if err := p.validate(s, "User"); err != nil {
			t.Errorf("%s: %v", p, err)
		}
	}
	bad := []MetaPath{
		{Name: "", Steps: []Step{{Link: "follow"}}},
		{Name: "x"},
		{Name: "x", Steps: []Step{{Link: "nope"}}},
		{Name: "x", Steps: []Step{{Link: "mention"}}},           // starts at Tweet
		{Name: "x", Steps: []Step{{Link: "post"}}},              // ends at Tweet
		{Name: "x", Steps: []Step{{Link: "post"}, {Link: "post"}}}, // does not compose
	}
	for _, p := range bad {
		if err := p.validate(s, "User"); err == nil {
			t.Errorf("%s: expected error", p)
		}
	}
}

func TestMetaPathString(t *testing.T) {
	p := MetaPath{Name: "retweet", Steps: []Step{{Link: "post"}, {Link: "retweet"}, {Link: "post", Reverse: true}}}
	want := "retweet: post > retweet > ~post"
	if got := p.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestProjectSchema(t *testing.T) {
	s := eventSchema(t)
	ps, err := ProjectSchema(s, "User", tqqPaths())
	if err != nil {
		t.Fatal(err)
	}
	if ps.NumEntityTypes() != 1 || ps.NumLinkTypes() != 4 {
		t.Fatalf("projected: %d entity types, %d link types", ps.NumEntityTypes(), ps.NumLinkTypes())
	}
	mention := ps.MustLinkTypeID("mention")
	if !ps.LinkType(mention).Weighted {
		t.Fatal("short-circuited mention must be weighted")
	}
	follow := ps.MustLinkTypeID("follow")
	if ps.LinkType(follow).Weighted {
		t.Fatal("reproduced single-hop unweighted follow must stay unweighted")
	}
	if !strings.Contains(ps.String(), "mention: User -> User") {
		t.Fatalf("projected schema wrong:\n%s", ps)
	}
}

func TestProjectSchemaErrors(t *testing.T) {
	s := eventSchema(t)
	if _, err := ProjectSchema(s, "Nope", tqqPaths()); err == nil {
		t.Fatal("unknown target accepted")
	}
	if _, err := ProjectSchema(s, "User", nil); err == nil {
		t.Fatal("empty paths accepted")
	}
	if _, err := ProjectSchema(s, "User", []MetaPath{{Name: "x", Steps: []Step{{Link: "post"}}}}); err == nil {
		t.Fatal("non-returning path accepted")
	}
}

func TestProjectGraph(t *testing.T) {
	g := buildEventGraph(t)
	pg, origs, err := ProjectGraph(g, "User", tqqPaths())
	if err != nil {
		t.Fatal(err)
	}
	if pg.NumEntities() != 3 {
		t.Fatalf("projected entities = %d", pg.NumEntities())
	}
	if len(origs) != 3 || origs[0] != 0 {
		t.Fatalf("origs = %v", origs)
	}
	ps := pg.Schema()
	mention := ps.MustLinkTypeID("mention")
	retweet := ps.MustLinkTypeID("retweet")
	comment := ps.MustLinkTypeID("comment")
	follow := ps.MustLinkTypeID("follow")

	// u0 mentions u1 twice (once via tweet t0, once via comment c0).
	if w, ok := pg.FindEdge(mention, 0, 1); !ok || w != 2 {
		t.Fatalf("mention u0->u1 = %d %v, want 2 (tweet + comment path)", w, ok)
	}
	// u0 mentions u2 once.
	if w, ok := pg.FindEdge(mention, 0, 2); !ok || w != 1 {
		t.Fatalf("mention u0->u2 = %d %v", w, ok)
	}
	// u0 retweeted t1 (posted by u1) once via t0.
	if w, ok := pg.FindEdge(retweet, 0, 1); !ok || w != 1 {
		t.Fatalf("retweet u0->u1 = %d %v", w, ok)
	}
	// u0 commented on t1 (posted by u1) once via c0.
	if w, ok := pg.FindEdge(comment, 0, 1); !ok || w != 1 {
		t.Fatalf("comment u0->u1 = %d %v", w, ok)
	}
	// Follow reproduced in both directions.
	if _, ok := pg.FindEdge(follow, 0, 1); !ok {
		t.Fatal("follow u0->u1 missing")
	}
	if _, ok := pg.FindEdge(follow, 1, 0); !ok {
		t.Fatal("follow u1->u0 missing")
	}
	// No fabricated links.
	if d := pg.OutDegree(mention, 2); d != 0 {
		t.Fatalf("u2 should mention nobody, out-degree %d", d)
	}
	// User attributes preserved.
	if pg.Attr(1, 0) != 1985 || pg.Attr(1, 1) != 2 {
		t.Fatalf("u1 attrs lost: %v", pg.Attrs(1))
	}
	if pg.Label(2) != "u2" {
		t.Fatalf("label lost: %q", pg.Label(2))
	}
}

func TestProjectGraphWeightedHopMultiplies(t *testing.T) {
	// A weighted hop contributes its strength as a path-instance
	// multiplier.
	s := MustSchema(
		[]EntityType{{Name: "U"}, {Name: "M"}},
		[]LinkType{
			{Name: "a", From: "U", To: "M", Weighted: true},
			{Name: "b", From: "M", To: "U", Weighted: true},
		},
	)
	b := NewBuilder(s)
	u0 := b.AddEntity(0, "")
	u1 := b.AddEntity(0, "")
	m := b.AddEntity(1, "")
	if err := b.AddEdge(0, u0, m, 3); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, m, u1, 2); err != nil {
		t.Fatal(err)
	}
	g, _ := b.Build()
	pg, _, err := ProjectGraph(g, "U", []MetaPath{{Name: "ab", Steps: []Step{{Link: "a"}, {Link: "b"}}}})
	if err != nil {
		t.Fatal(err)
	}
	if w, ok := pg.FindEdge(0, 0, 1); !ok || w != 6 {
		t.Fatalf("weighted path product = %d %v, want 6", w, ok)
	}
}

func TestProjectGraphDropsSelfPathsWhenForbidden(t *testing.T) {
	// Single-hop reproduced follow forbids self loops; a multi-hop path
	// returning to its origin is kept as a self edge.
	g := buildEventGraph(t)
	// u1 posted t1; make t0 (posted by u0) retweet t1 and also t1 retweet
	// t1? Instead verify u0's retweet of its own tweet: add path where u0
	// retweets t0 (its own tweet).
	s := g.Schema()
	b := NewBuilder(s)
	u0 := b.AddEntity(0, "u0", 1980, 1)
	t0 := b.AddEntity(1, "t0")
	t1 := b.AddEntity(1, "t1")
	lt := func(n string) LinkTypeID { return s.MustLinkTypeID(n) }
	for _, e := range []struct {
		l        string
		from, to EntityID
	}{{"post", u0, t0}, {"post", u0, t1}, {"retweet", t0, t1}} {
		if err := b.AddEdge(lt(e.l), e.from, e.to, 1); err != nil {
			t.Fatal(err)
		}
	}
	g2, _ := b.Build()
	pg, _, err := ProjectGraph(g2, "User", []MetaPath{
		{Name: "retweet", Steps: []Step{{Link: "post"}, {Link: "retweet"}, {Link: "post", Reverse: true}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if w, ok := pg.FindEdge(0, 0, 0); !ok || w != 1 {
		t.Fatalf("self retweet via multi-hop path should be kept: %d %v", w, ok)
	}
}
