package hin

// StronglyConnectedComponents computes the SCCs of the directed graph
// formed by the union of all link types, using an iterative Tarjan
// algorithm (the graphs here can be deep enough to overflow a recursive
// stack). Components are returned in reverse topological order of the
// condensation - successors before predecessors - which is Tarjan's
// natural emission order.
func StronglyConnectedComponents(g *Graph) [][]EntityID {
	n := g.NumEntities()
	const unvisited = -1
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		counter int32
		stack   []EntityID // Tarjan stack
		comps   [][]EntityID
	)

	// Explicit DFS frames: v plus iteration state over link types and
	// row positions.
	type frame struct {
		v       EntityID
		lt      int
		pos     int
		childOf int32 // low updates flow to the parent via this marker
	}
	nLinks := g.Schema().NumLinkTypes()

	for start := 0; start < n; start++ {
		if index[start] != unvisited {
			continue
		}
		frames := []frame{{v: EntityID(start)}}
		index[start] = counter
		low[start] = counter
		counter++
		stack = append(stack, EntityID(start))
		onStack[start] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			advanced := false
			for f.lt < nLinks {
				tos, _ := g.OutEdges(LinkTypeID(f.lt), f.v)
				for f.pos < len(tos) {
					w := tos[f.pos]
					f.pos++
					if index[w] == unvisited {
						index[w] = counter
						low[w] = counter
						counter++
						stack = append(stack, w)
						onStack[w] = true
						frames = append(frames, frame{v: w})
						advanced = true
						break
					}
					if onStack[w] && index[w] < low[f.v] {
						low[f.v] = index[w]
					}
				}
				if advanced {
					break
				}
				f.lt++
				f.pos = 0
			}
			if advanced {
				continue
			}
			// f.v is finished: maybe emit a component, then propagate
			// low to the parent.
			if low[f.v] == index[f.v] {
				var comp []EntityID
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == f.v {
						break
					}
				}
				comps = append(comps, comp)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[f.v] < low[p.v] {
					low[p.v] = low[f.v]
				}
			}
		}
	}
	return comps
}

// SourceComponents returns the SCCs with no in-edges from outside the
// component, of size between minSize and maxSize inclusive. A gang of
// planted sybil accounts is necessarily such a source component - organic
// accounts follow nobody into it - which is what makes the active attack
// of Backstrom et al. detectable (Section 2.2: "such random subgraphs can
// be easily detected").
func SourceComponents(g *Graph, minSize, maxSize int) [][]EntityID {
	comps := StronglyConnectedComponents(g)
	whichComp := make([]int32, g.NumEntities())
	for ci, comp := range comps {
		for _, v := range comp {
			whichComp[v] = int32(ci)
		}
	}
	var out [][]EntityID
	for ci, comp := range comps {
		if len(comp) < minSize || len(comp) > maxSize {
			continue
		}
		isSource := true
	scan:
		for _, v := range comp {
			for lt := 0; lt < g.Schema().NumLinkTypes(); lt++ {
				froms, _ := g.InEdges(LinkTypeID(lt), v)
				for _, f := range froms {
					if whichComp[f] != int32(ci) {
						isSource = false
						break scan
					}
				}
			}
		}
		if isSource {
			out = append(out, comp)
		}
	}
	return out
}
