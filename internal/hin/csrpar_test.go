package hin

// Tests for the parallel CSR I/O paths: the CRC-32C combine underlying
// chunked checksumming, worker-count determinism of OpenCSRFileOpt (both
// the graph and the error a corrupt file reports), and byte-identity of
// the parallel writers.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"github.com/hinpriv/dehin/internal/randx"
)

// fillLCG fills buf with deterministic pseudo-random bytes.
func fillLCG(buf []byte, seed uint64) {
	x := seed*6364136223846793005 + 1442695040888963407
	for i := range buf {
		x = x*6364136223846793005 + 1442695040888963407
		buf[i] = byte(x >> 56)
	}
}

func TestCRC32Combine(t *testing.T) {
	data := make([]byte, 1<<16)
	fillLCG(data, 42)
	whole := crc32.Checksum(data, castagnoli)
	for _, cut := range []int{0, 1, 7, 100, 1 << 12, len(data) - 1, len(data)} {
		a, b := data[:cut], data[cut:]
		got := crc32Combine(crc32.Checksum(a, castagnoli), crc32.Checksum(b, castagnoli), int64(len(b)))
		if got != whole {
			t.Fatalf("cut %d: combined %08x, want %08x", cut, got, whole)
		}
	}
	// Folding many chunks must also agree.
	crc := uint32(0)
	const step = 977
	for lo := 0; lo < len(data); lo += step {
		hi := min(lo+step, len(data))
		crc = crc32Combine(crc, crc32.Checksum(data[lo:hi], castagnoli), int64(hi-lo))
	}
	if crc != whole {
		t.Fatalf("chunk fold %08x, want %08x", crc, whole)
	}
}

func TestCSRChecksumMatchesSerial(t *testing.T) {
	// Larger than two chunks so the parallel path really splits.
	body := make([]byte, 2*csrChecksumChunk+12345)
	fillLCG(body, 7)
	want := crc32.Checksum(body, castagnoli)
	for _, workers := range []int{1, 2, 3, 8, 0} {
		if got := csrChecksum(body, workers); got != want {
			t.Fatalf("workers=%d: checksum %08x, want %08x", workers, got, want)
		}
	}
	if got := csrChecksum(nil, 4); got != 0 {
		t.Fatalf("empty body checksum %08x, want 0", got)
	}
}

// wideRichGraph builds a graph with more entities than one adjacency
// validation shard (csrAdjShardRows), so the parallel open and write
// paths really fan out.
func wideRichGraph(t *testing.T, seed uint64) *Graph {
	t.Helper()
	s := userSchema(t)
	rng := randx.New(seed)
	n := csrAdjShardRows + 300
	b := NewBuilder(s)
	for i := 0; i < n; i++ {
		b.AddEntity(0, fmt.Sprintf("u%06d", i), int64(1900+rng.Intn(100)), int64(rng.Intn(3)))
	}
	follow, mention := s.MustLinkTypeID("follow"), s.MustLinkTypeID("mention")
	for i := 0; i < 4*n; i++ {
		f := EntityID(rng.Intn(n))
		to := EntityID(rng.Intn(n))
		if f == to {
			continue
		}
		if rng.Intn(2) == 0 {
			if err := b.AddEdge(follow, f, to, 1); err != nil {
				t.Fatal(err)
			}
		} else if err := b.AddEdge(mention, f, to, int32(rng.IntRange(1, 9))); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestOpenCSRFileOptWorkerDeterminism(t *testing.T) {
	g := wideRichGraph(t, 3)
	path := filepath.Join(t.TempDir(), "wide.hincsr")
	if err := WriteCSRFile(path, g); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, runtime.NumCPU(), 0} {
		cf, err := OpenCSRFileOpt(path, CSRFileOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		assertBackendsEqual(t, g, cf.Graph())
		cf.Close()
	}
}

// Satellite (d): the parallel loader must report exactly the error the
// serial loader reports, for every corruption in the failure-mode
// corpus - FirstErr keeps the lowest task index, which is serial
// validation order.
func TestOpenCSRFileOptErrorsMatchSerial(t *testing.T) {
	g := wideRichGraph(t, 9)
	valid := filepath.Join(t.TempDir(), "valid.hincsr")
	if err := WriteCSRFile(valid, g); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(valid)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		repair bool
		mutate func([]byte) []byte
	}{
		{"short file", false, func(d []byte) []byte { return d[:10] }},
		{"bad magic", false, func(d []byte) []byte { copy(d, "NOTACSR!"); return d }},
		{"size mismatch", false, func(d []byte) []byte { return d[:len(d)-5] }},
		{"checksum mismatch", false, func(d []byte) []byte { d[len(d)-1] ^= 0xff; return d }},
		{"trailing bytes", true, func(d []byte) []byte { return append(d, 0) }},
		{"schema garbage", true, func(d []byte) []byte { d[csrHeaderSize+8] = '!'; return d }},
		{"etype unknown", true, func(d []byte) []byte {
			// The etype section starts after schema and meta; smash a
			// byte deep inside it (entity csrAdjShardRows+1, so the
			// failing row is beyond the first shard).
			cur := &sectionCursor{data: d, pos: csrHeaderSize}
			cur.next("schema")
			cur.next("meta")
			et, _ := cur.next("etype")
			et[csrAdjShardRows+1] = 0xee
			return d
		}},
		{"adjacency corruption tail", true, func(d []byte) []byte { d[len(d)-9] ^= 0x55; return d }},
		{"adjacency corruption head", true, func(d []byte) []byte {
			// Corrupt the first adjacency dat section instead of the
			// last: 0xff as a row's first byte inflates its degree
			// uvarint past the entity count (or truncates it), so the
			// first non-empty row must fail strict validation.
			cur := &sectionCursor{data: d, pos: csrHeaderSize}
			for _, s := range []string{"schema", "meta", "etype", "labelOff", "labelBlob", "attrDict", "attrOff", "attrCodes", "sets"} {
				cur.next(s)
			}
			dat, _ := cur.next("fwd dat")
			dat[0] = 0xff
			return d
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			mutated := c.mutate(append([]byte(nil), data...))
			if c.repair {
				binary.LittleEndian.PutUint64(mutated[16:24], uint64(len(mutated)))
				binary.LittleEndian.PutUint32(mutated[12:16], crc32.Checksum(mutated[csrHeaderSize:], castagnoli))
			}
			path := filepath.Join(t.TempDir(), "corrupt.hincsr")
			if err := os.WriteFile(path, mutated, 0o644); err != nil {
				t.Fatal(err)
			}
			var msgs []string
			for _, workers := range []int{1, 4, 0} {
				cf, err := OpenCSRFileOpt(path, CSRFileOptions{Workers: workers})
				if err == nil {
					cf.Close()
					t.Fatalf("workers=%d: open succeeded on corrupt input", workers)
				}
				msgs = append(msgs, err.Error())
			}
			for i := 1; i < len(msgs); i++ {
				if msgs[i] != msgs[0] {
					t.Fatalf("error differs across worker counts:\n  serial:   %s\n  parallel: %s", msgs[0], msgs[i])
				}
			}
		})
	}
}

func TestWriteCSRFileOptByteIdentical(t *testing.T) {
	g := wideRichGraph(t, 17)
	dir := t.TempDir()
	serial := filepath.Join(dir, "serial.hincsr")
	if err := WriteCSRFile(serial, g); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(serial)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 0} {
		path := filepath.Join(dir, fmt.Sprintf("par%d.hincsr", workers))
		if err := WriteCSRFileOpt(path, g, CSRFileOptions{Workers: workers}); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: parallel write differs from serial (%d vs %d bytes)", workers, len(got), len(want))
		}
	}
}

func TestCSRWriterParallelByteIdentical(t *testing.T) {
	g := randomRichGraph(t, 29)
	dir := t.TempDir()
	serial := filepath.Join(dir, "serial.hincsr")
	replayToCSRWriter(t, g, serial)
	want, err := os.ReadFile(serial)
	if err != nil {
		t.Fatal(err)
	}
	// Shrink the bucket cap so even this small graph routes through
	// several buckets, exercising the concurrent sort/encode path.
	oldCap := bucketTargetBytes
	bucketTargetBytes = 1 << 10
	defer func() { bucketTargetBytes = oldCap }()
	par := filepath.Join(dir, "par.hincsr")
	w, err := NewCSRWriter(g.Schema(), par)
	if err != nil {
		t.Fatal(err)
	}
	w.Workers = 4
	n := g.NumEntities()
	for v := 0; v < n; v++ {
		w.AddEntity(g.EntityType(EntityID(v)), g.Label(EntityID(v)), g.Attrs(EntityID(v))...)
		for _, name := range g.SetNames() {
			if s := g.Set(name, EntityID(v)); len(s) > 0 {
				w.SetSet(name, EntityID(v), s)
			}
		}
	}
	for lt := 0; lt < g.Schema().NumLinkTypes(); lt++ {
		for v := 0; v < n; v++ {
			tos, ws := g.OutEdges(LinkTypeID(lt), EntityID(v))
			for i, to := range tos {
				if err := w.AddEdge(LinkTypeID(lt), EntityID(v), to, ws[i]); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := w.Finalize(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(par)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("parallel Finalize differs from serial (%d vs %d bytes)", len(got), len(want))
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 {
		t.Fatalf("temp files left behind: %v", ents)
	}
}
