//go:build unix

package hin

import (
	"fmt"
	"os"
	"syscall"
)

// mmapFile maps the file read-only. The returned release closure unmaps;
// it must be called exactly once (OpenCSRFile calls it on every error
// path and from CSRFile.Close).
func mmapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, nil, fmt.Errorf("mmap: %w", err)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
