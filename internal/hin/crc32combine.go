package hin

// CRC-32C combination: crc32Combine(crcA, crcB, lenB) computes the
// checksum of A||B from the independent checksums of A and B, letting the
// loader verify a file body in parallel chunks and fold the per-chunk
// results back into the single header value. hash/crc32 exports no
// combine, so this is the classic zlib construction: appending lenB zero
// bytes to A multiplies A's CRC state by x^(8*lenB) in GF(2)[x]/poly,
// and that linear operator is applied via repeated squaring of its
// 32x32 bit matrix.
//
// The matrices act on the reflected (bit-reversed) representation that
// hash/crc32 uses for Castagnoli, and the pre/post inversion in the
// finalized checksums cancels under the xor, so the function composes
// crc32.Checksum outputs directly.

// castagnoliReflected is the reflected CRC-32C polynomial, matching the
// table hash/crc32 builds from crc32.Castagnoli.
const castagnoliReflected = 0x82f63b78

// gf2MatrixTimes multiplies the 32x32 GF(2) matrix by a bit vector.
func gf2MatrixTimes(mat *[32]uint32, vec uint32) uint32 {
	var sum uint32
	for i := 0; vec != 0; vec >>= 1 {
		if vec&1 != 0 {
			sum ^= mat[i]
		}
		i++
	}
	return sum
}

// gf2MatrixSquare sets square to mat*mat.
func gf2MatrixSquare(square, mat *[32]uint32) {
	for i := range square {
		square[i] = gf2MatrixTimes(mat, mat[i])
	}
}

// crc32Combine returns the CRC-32C of the concatenation A||B given
// crcA = Checksum(A), crcB = Checksum(B) and lenB = len(B).
func crc32Combine(crcA, crcB uint32, lenB int64) uint32 {
	if lenB <= 0 {
		return crcA
	}
	var even, odd [32]uint32

	// odd = the operator for one zero bit: a right shift with the
	// reflected polynomial folded in at the top.
	odd[0] = castagnoliReflected
	row := uint32(1)
	for i := 1; i < 32; i++ {
		odd[i] = row
		row <<= 1
	}
	// even = operator for two zero bits, odd = for four.
	gf2MatrixSquare(&even, &odd)
	gf2MatrixSquare(&odd, &even)

	// Apply the operator for 8*lenB zero bits by walking lenB's binary
	// representation, squaring as we go (starting at one zero byte).
	for {
		gf2MatrixSquare(&even, &odd)
		if lenB&1 != 0 {
			crcA = gf2MatrixTimes(&even, crcA)
		}
		lenB >>= 1
		if lenB == 0 {
			break
		}
		gf2MatrixSquare(&odd, &even)
		if lenB&1 != 0 {
			crcA = gf2MatrixTimes(&odd, crcA)
		}
		lenB >>= 1
		if lenB == 0 {
			break
		}
	}
	return crcA ^ crcB
}
