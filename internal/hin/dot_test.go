package hin

import (
	"strings"
	"testing"
)

func TestWriteSchemaDOT(t *testing.T) {
	s := MustSchema(
		[]EntityType{
			{Name: "User", Attrs: []string{"yob"}, SetAttrs: []string{"tags"}},
			{Name: "Tweet"},
		},
		[]LinkType{
			{Name: "post", From: "User", To: "Tweet"},
			{Name: "mention", From: "Tweet", To: "User", Weighted: true},
		},
	)
	var b strings.Builder
	if err := WriteSchemaDOT(&b, s); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"digraph schema",
		`"User"`,
		`"User" -> "Tweet" [label="post"]`,
		`"Tweet" -> "User" [label="mention", style=bold]`,
		"yob",
		"tags",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("schema DOT missing %q:\n%s", want, out)
		}
	}
}

func TestWriteGraphDOT(t *testing.T) {
	g := buildToy(t)
	var b strings.Builder
	if err := WriteGraphDOT(&b, g, 0); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"digraph g",
		"n0 -> n1",
		`label="5"`, // mention strength
	} {
		if !strings.Contains(out, want) {
			t.Errorf("graph DOT missing %q:\n%s", want, out)
		}
	}
}

func TestWriteGraphDOTSizeGuard(t *testing.T) {
	s := MustSchema([]EntityType{{Name: "N"}}, []LinkType{})
	b := NewBuilder(s)
	for i := 0; i < 10; i++ {
		b.AddEntity(0, "")
	}
	g, _ := b.Build()
	var sb strings.Builder
	if err := WriteGraphDOT(&sb, g, 5); err == nil {
		t.Fatal("oversized DOT render accepted")
	}
	if err := WriteGraphDOT(&sb, g, 10); err != nil {
		t.Fatal(err)
	}
}
