//go:build !unix

package hin

import (
	"io"
	"os"
)

// mmapFile on platforms without syscall.Mmap reads the whole file into
// memory; the release closure is a no-op.
func mmapFile(f *os.File, size int64) ([]byte, func() error, error) {
	data := make([]byte, size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}
