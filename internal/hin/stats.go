package hin

import (
	"fmt"
	"math"
	"sort"
)

// Density computes the paper's Equation 4 for a graph whose link types all
// connect the same single entity type (a target network schema instance):
//
//	density = |E| / (m|V|^2 + (|L|-m)|V|(|V|-1))
//
// where m is the number of link types that allow self-loops. It returns an
// error if the graph has fewer than two entities or any link type spans
// different entity types.
func Density(g GraphBackend) (float64, error) {
	n := int64(g.NumEntities())
	if n < 2 {
		return 0, fmt.Errorf("hin: density undefined for %d entities", n)
	}
	s := g.Schema()
	var m, l int64
	for i := 0; i < s.NumLinkTypes(); i++ {
		lt := s.LinkType(LinkTypeID(i))
		if lt.From != lt.To {
			return 0, fmt.Errorf("hin: density requires same-typed link endpoints, %q is %s->%s",
				lt.Name, lt.From, lt.To)
		}
		l++
		if lt.AllowSelf {
			m++
		}
	}
	if l == 0 {
		return 0, fmt.Errorf("hin: density undefined without link types")
	}
	den := m*n*n + (l-m)*n*(n-1)
	return float64(g.NumEdgesTotal()) / float64(den), nil
}

// MaxEdges returns the Equation 4 denominator for a graph with n entities
// and the given link types: the maximum possible number of edges.
func MaxEdges(s *Schema, n int) int64 {
	nn := int64(n)
	var m, l int64
	for i := 0; i < s.NumLinkTypes(); i++ {
		l++
		if s.LinkType(LinkTypeID(i)).AllowSelf {
			m++
		}
	}
	return m*nn*nn + (l-m)*nn*(nn-1)
}

// DegreeStats summarizes an out-degree distribution.
type DegreeStats struct {
	Min, Max int
	Mean     float64
	// P50, P90, P99 are the 50th/90th/99th percentile degrees.
	P50, P90, P99 int
}

// OutDegreeStats computes degree statistics for link type lt over entities
// of the link's source type only (other entities never carry such edges).
func OutDegreeStats(g GraphBackend, lt LinkTypeID) DegreeStats {
	src := g.Schema().LinkType(lt).From
	srcID, _ := g.Schema().EntityTypeID(src)
	var degs []int
	for v := 0; v < g.NumEntities(); v++ {
		if g.EntityType(EntityID(v)) != srcID {
			continue
		}
		degs = append(degs, g.OutDegree(lt, EntityID(v)))
	}
	if len(degs) == 0 {
		return DegreeStats{}
	}
	sort.Ints(degs)
	sum := 0
	for _, d := range degs {
		sum += d
	}
	pct := func(p float64) int {
		i := int(math.Ceil(p*float64(len(degs)))) - 1
		if i < 0 {
			i = 0
		}
		return degs[i]
	}
	return DegreeStats{
		Min:  degs[0],
		Max:  degs[len(degs)-1],
		Mean: float64(sum) / float64(len(degs)),
		P50:  pct(0.50),
		P90:  pct(0.90),
		P99:  pct(0.99),
	}
}

// AttrCardinality returns the number of distinct values attribute index i
// takes across entities of type t - the per-attribute cardinality C(A_j) of
// Theorem 2 (and the "average cardinality of gender, yob, ..." statistics
// in Section 6.1).
func AttrCardinality(g GraphBackend, t EntityTypeID, i int) int {
	seen := make(map[int64]struct{})
	for v := 0; v < g.NumEntities(); v++ {
		if g.EntityType(EntityID(v)) != t {
			continue
		}
		seen[g.Attr(EntityID(v), i)] = struct{}{}
	}
	return len(seen)
}

// SetSizeCardinality returns the number of distinct sizes of the named set
// attribute across entities of type t (the paper uses the number of tags,
// not their identities, since tag IDs are anonymized).
func SetSizeCardinality(g GraphBackend, t EntityTypeID, name string) int {
	seen := make(map[int]struct{})
	for v := 0; v < g.NumEntities(); v++ {
		if g.EntityType(EntityID(v)) != t {
			continue
		}
		seen[len(g.Set(name, EntityID(v)))] = struct{}{}
	}
	return len(seen)
}

// StrengthCardinality returns the number of distinct edge strengths of link
// type lt - the homogeneous link cardinality C(L_i) of Theorem 2.
func StrengthCardinality(g GraphBackend, lt LinkTypeID) int {
	seen := make(map[int32]struct{})
	buf := &EdgeBuf{}
	for v := 0; v < g.NumEntities(); v++ {
		_, ws := g.OutEdgesBuf(buf, lt, EntityID(v))
		for _, w := range ws {
			seen[w] = struct{}{}
		}
	}
	return len(seen)
}

// MajorityStrength returns the most frequent edge strength of link type lt
// and its count. The re-configured DeHIN of Section 6.2 removes all links
// carrying the network-wide majority strength to strip Complete Graph
// Anonymity's fake edges. ok is false if the link type has no edges.
func MajorityStrength(g GraphBackend, lt LinkTypeID) (w int32, count int64, ok bool) {
	counts := make(map[int32]int64)
	buf := &EdgeBuf{}
	for v := 0; v < g.NumEntities(); v++ {
		_, ws := g.OutEdgesBuf(buf, lt, EntityID(v))
		for _, x := range ws {
			counts[x]++
		}
	}
	for x, c := range counts {
		if !ok || c > count || (c == count && x < w) {
			w, count, ok = x, c, true
		}
	}
	return w, count, ok
}
