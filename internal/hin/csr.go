package hin

import (
	"encoding/binary"
	"sort"
)

// csrAdj is the compact adjacency of one link type in one direction: the
// concatenated varint-encoded rows (see adjcodec.go) and the (n+1) row
// byte-offset table, both stored as raw little-endian byte slices so they
// can alias an mmap'd file directly.
type csrAdj struct {
	rowOff   []byte // (n+1) uint64 LE byte offsets into dat
	dat      []byte
	count    int64
	weighted bool
}

//hin:hot
func (c *csrAdj) row(v EntityID) []byte {
	lo := binary.LittleEndian.Uint64(c.rowOff[int(v)*8:])
	hi := binary.LittleEndian.Uint64(c.rowOff[int(v)*8+8:])
	return c.dat[lo:hi]
}

// CSRGraph is the compact GraphBackend: flat columns, varint/delta
// compressed adjacency, and dictionary-interned scalar attributes. Every
// variable-length column is a raw byte slice, so a CSRGraph either owns
// heap copies (FromGraph) or aliases an mmap'd CSR file (OpenCSRFile)
// with no per-entity unpacking at load time.
//
// Layout per entity v:
//
//	etype[v]                          entity type id (1 byte)
//	labelBlob[labelOff[v]:labelOff[v+1]]   label bytes
//	attrCodes[attrOff[v]*4 : attrOff[v+1]*4]  4-byte LE dict codes
//
// attrDict holds the distinct attribute values in first-occurrence order;
// a code indexes it. Sets are decoded to heap at load (they are small and
// consulted via map lookup).
type CSRGraph struct {
	schema *Schema
	n      int

	etype     []byte
	labelOff  []byte // (n+1) uint64 LE byte offsets into labelBlob
	labelBlob []byte

	attrDict  []int64
	attrOff   []byte // (n+1) uint64 LE code-index offsets into attrCodes
	attrCodes []byte // 4-byte LE dict code per scalar attribute

	sets map[string]*setCol

	fwd []csrAdj // indexed by LinkTypeID
	rev []csrAdj
}

var _ GraphBackend = (*CSRGraph)(nil)

// Schema returns the schema the graph was built against.
func (g *CSRGraph) Schema() *Schema { return g.schema }

// NumEntities returns the number of entities.
func (g *CSRGraph) NumEntities() int { return g.n }

// NumEdges returns the number of edges of link type lt.
func (g *CSRGraph) NumEdges(lt LinkTypeID) int64 { return g.fwd[lt].count }

// NumEdgesTotal returns the number of edges across all link types.
func (g *CSRGraph) NumEdgesTotal() int64 {
	var total int64
	for i := range g.fwd {
		total += g.fwd[i].count
	}
	return total
}

// EntityType returns the type of entity v.
func (g *CSRGraph) EntityType(v EntityID) EntityTypeID {
	return EntityTypeID(g.etype[v])
}

// Label returns the external identifier of entity v. Unlike the in-memory
// backend this converts from the packed blob and allocates; labels are
// only consulted on cold reporting paths.
func (g *CSRGraph) Label(v EntityID) string {
	lo := binary.LittleEndian.Uint64(g.labelOff[int(v)*8:])
	hi := binary.LittleEndian.Uint64(g.labelOff[int(v)*8+8:])
	return string(g.labelBlob[lo:hi])
}

func (g *CSRGraph) attrSpan(v EntityID) (int, int) {
	lo := binary.LittleEndian.Uint64(g.attrOff[int(v)*8:])
	hi := binary.LittleEndian.Uint64(g.attrOff[int(v)*8+8:])
	return int(lo), int(hi)
}

// NumAttrs returns how many scalar attributes entity v carries.
func (g *CSRGraph) NumAttrs(v EntityID) int {
	lo, hi := g.attrSpan(v)
	return hi - lo
}

// Attr returns the i-th scalar attribute of entity v.
//
//hin:hot
func (g *CSRGraph) Attr(v EntityID, i int) int64 {
	lo, _ := g.attrSpan(v)
	code := binary.LittleEndian.Uint32(g.attrCodes[(lo+i)*4:])
	return g.attrDict[code]
}

// AppendAttrs appends all scalar attributes of v to dst.
func (g *CSRGraph) AppendAttrs(dst []int64, v EntityID) []int64 {
	lo, hi := g.attrSpan(v)
	for i := lo; i < hi; i++ {
		code := binary.LittleEndian.Uint32(g.attrCodes[i*4:])
		dst = append(dst, g.attrDict[code])
	}
	return dst
}

// Set returns the sorted values of the named multi-valued attribute of
// entity v, or nil if the entity has none.
func (g *CSRGraph) Set(name string, v EntityID) []int32 {
	col, ok := g.sets[name]
	if !ok {
		return nil
	}
	return col.data[col.off[v]:col.off[v+1]]
}

// SetNames returns the names of the graph's set columns, ascending.
func (g *CSRGraph) SetNames() []string {
	names := make([]string, 0, len(g.sets))
	for name := range g.sets {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// OutDegree returns the number of out-edges of v via link type lt.
//
//hin:hot
func (g *CSRGraph) OutDegree(lt LinkTypeID, v EntityID) int {
	return adjRowDegree(g.fwd[lt].row(v))
}

// InDegree returns the number of in-edges of v via link type lt.
//
//hin:hot
func (g *CSRGraph) InDegree(lt LinkTypeID, v EntityID) int {
	return adjRowDegree(g.rev[lt].row(v))
}

// OutDegrees appends the out-degree of every entity via lt to dst.
func (g *CSRGraph) OutDegrees(lt LinkTypeID, dst []int32) []int32 {
	return degreesFromRows(&g.fwd[lt], g.n, dst)
}

// InDegrees is OutDegrees over the reverse adjacency.
func (g *CSRGraph) InDegrees(lt LinkTypeID, dst []int32) []int32 {
	return degreesFromRows(&g.rev[lt], g.n, dst)
}

func degreesFromRows(c *csrAdj, n int, dst []int32) []int32 {
	for v := 0; v < n; v++ {
		dst = append(dst, int32(adjRowDegree(c.row(EntityID(v)))))
	}
	return dst
}

// OutEdgesBuf decodes v's out-row via lt into buf and returns views. The
// views are valid until buf's next use.
//
//hin:hot
func (g *CSRGraph) OutEdgesBuf(buf *EdgeBuf, lt LinkTypeID, v EntityID) ([]EntityID, []int32) {
	c := &g.fwd[lt]
	return decodeAdjRowFast(c.row(v), c.weighted, buf)
}

// InEdgesBuf decodes v's in-row via lt into buf and returns views.
//
//hin:hot
func (g *CSRGraph) InEdgesBuf(buf *EdgeBuf, lt LinkTypeID, v EntityID) ([]EntityID, []int32) {
	c := &g.rev[lt]
	return decodeAdjRowFast(c.row(v), c.weighted, buf)
}

// FindEdge looks up the edge from -> to of link type lt by scanning the
// encoded row with early exit (rows are ascending).
func (g *CSRGraph) FindEdge(lt LinkTypeID, from, to EntityID) (int32, bool) {
	c := &g.fwd[lt]
	dat := c.row(from)
	deg, p := uvarintAt(dat, 0)
	prev := int64(-1)
	for i := uint64(0); i < deg; i++ {
		delta, np := uvarintAt(dat, p)
		p = np
		prev += int64(delta)
		w := int32(1)
		if c.weighted {
			uw, np := uvarintAt(dat, p)
			p = np
			w = int32(uw)
		}
		if prev == int64(to) {
			return w, true
		}
		if prev > int64(to) {
			return 0, false
		}
	}
	return 0, false
}

// EntitiesOfType returns the ids of all entities with type t, ascending.
func (g *CSRGraph) EntitiesOfType(t EntityTypeID) []EntityID {
	var out []EntityID
	for v := 0; v < g.n; v++ {
		if g.etype[v] == byte(t) {
			out = append(out, EntityID(v))
		}
	}
	return out
}

// appendU64 appends one little-endian uint64 to dst.
func appendU64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

// FromGraph converts an in-memory Graph to its compact form. The result
// shares g's (immutable) set columns; everything else is re-encoded. Use
// this for in-process backend comparisons and for workbench runs with
// -backend=csr; for datasets too large to build in memory first, stream
// through a CSRWriter instead.
func FromGraph(g *Graph) *CSRGraph {
	n := g.NumEntities()
	out := &CSRGraph{
		schema: g.schema,
		n:      n,
		etype:  make([]byte, n),
		sets:   g.sets,
	}
	labelOff := make([]byte, 0, (n+1)*8)
	var labelBlob []byte
	labelOff = appendU64(labelOff, 0)
	for v := 0; v < n; v++ {
		out.etype[v] = byte(g.etype[v])
		labelBlob = append(labelBlob, g.label[v]...)
		labelOff = appendU64(labelOff, uint64(len(labelBlob)))
	}
	out.labelOff, out.labelBlob = labelOff, labelBlob

	intern := newAttrInterner()
	attrOff := make([]byte, 0, (n+1)*8)
	attrOff = appendU64(attrOff, 0)
	codes := 0
	var attrCodes []byte
	for v := 0; v < n; v++ {
		for _, a := range g.Attrs(EntityID(v)) {
			attrCodes = binary.LittleEndian.AppendUint32(attrCodes, intern.code(a))
			codes++
		}
		attrOff = appendU64(attrOff, uint64(codes))
	}
	out.attrDict, out.attrOff, out.attrCodes = intern.dict, attrOff, attrCodes

	L := g.schema.NumLinkTypes()
	out.fwd = make([]csrAdj, L)
	out.rev = make([]csrAdj, L)
	for lt := 0; lt < L; lt++ {
		weighted := g.schema.LinkType(LinkTypeID(lt)).Weighted
		out.fwd[lt] = encodeCSRAdj(&g.fwd[lt], n, weighted)
		out.rev[lt] = encodeCSRAdj(&g.rev[lt], n, weighted)
	}
	return out
}

func encodeCSRAdj(src *csr, n int, weighted bool) csrAdj {
	var dat []byte
	rowOff := make([]byte, 0, (n+1)*8)
	rowOff = appendU64(rowOff, 0)
	for v := 0; v < n; v++ {
		tos, ws := src.row(EntityID(v))
		dat = appendAdjRow(dat, tos, ws, weighted)
		rowOff = appendU64(rowOff, uint64(len(dat)))
	}
	return csrAdj{
		rowOff:   rowOff,
		dat:      dat,
		count:    int64(len(src.to)),
		weighted: weighted,
	}
}

// attrInterner assigns dense codes to attribute values in first-occurrence
// order, so FromGraph and CSRWriter produce identical dictionaries for the
// same entity stream.
type attrInterner struct {
	dict   []int64
	code32 map[int64]uint32
}

func newAttrInterner() *attrInterner {
	return &attrInterner{code32: make(map[int64]uint32)}
}

func (in *attrInterner) code(a int64) uint32 {
	c, ok := in.code32[a]
	if !ok {
		c = uint32(len(in.dict))
		in.dict = append(in.dict, a)
		in.code32[a] = c
	}
	return c
}
