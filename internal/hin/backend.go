package hin

import "sort"

// EdgeBuf is a reusable decode buffer for adjacency rows. Backends that
// store adjacency in compressed form decode into it; backends with native
// in-memory rows ignore it and return zero-copy views. Callers own the
// buffer and reuse it across calls (typically one per scratch frame), so a
// steady-state query loop performs no per-row allocation on any backend.
type EdgeBuf struct {
	IDs []EntityID
	Ws  []int32
}

// GraphBackend is the read surface the attack, risk, and statistics layers
// consume. *Graph (in-memory CSR built by Builder) and *CSRGraph (compact
// varint-compressed CSR, optionally mmap-backed) both implement it.
//
// Semantics every implementation must honor:
//
//   - Adjacency rows are sorted ascending by neighbor id, with parallel
//     strengths (1 for unweighted link types).
//   - OutEdgesBuf/InEdgesBuf may return views into buf OR into backend
//     storage; the result is only valid until the next call with the same
//     buf, and callers must not mutate it.
//   - All accessors are safe for concurrent use (backends are immutable).
type GraphBackend interface {
	Schema() *Schema
	NumEntities() int
	NumEdges(lt LinkTypeID) int64
	NumEdgesTotal() int64

	EntityType(v EntityID) EntityTypeID
	Label(v EntityID) string
	NumAttrs(v EntityID) int
	Attr(v EntityID, i int) int64
	// AppendAttrs appends all scalar attributes of v to dst and returns
	// the extended slice (the interface-friendly form of Graph.Attrs).
	AppendAttrs(dst []int64, v EntityID) []int64
	Set(name string, v EntityID) []int32
	// SetNames returns the names of the graph's set columns, ascending.
	SetNames() []string

	OutDegree(lt LinkTypeID, v EntityID) int
	InDegree(lt LinkTypeID, v EntityID) int
	OutDegrees(lt LinkTypeID, dst []int32) []int32
	InDegrees(lt LinkTypeID, dst []int32) []int32

	OutEdgesBuf(buf *EdgeBuf, lt LinkTypeID, v EntityID) ([]EntityID, []int32)
	InEdgesBuf(buf *EdgeBuf, lt LinkTypeID, v EntityID) ([]EntityID, []int32)
	FindEdge(lt LinkTypeID, from, to EntityID) (int32, bool)

	EntitiesOfType(t EntityTypeID) []EntityID
}

var _ GraphBackend = (*Graph)(nil)

// AppendAttrs appends all scalar attributes of v to dst.
func (g *Graph) AppendAttrs(dst []int64, v EntityID) []int64 {
	return append(dst, g.Attrs(v)...)
}

// SetNames returns the names of the graph's set columns, ascending.
func (g *Graph) SetNames() []string {
	names := make([]string, 0, len(g.sets))
	for name := range g.sets {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// OutEdgesBuf returns v's out-row via lt. The in-memory backend ignores
// buf and returns zero-copy views.
//
//hin:hot
func (g *Graph) OutEdgesBuf(buf *EdgeBuf, lt LinkTypeID, v EntityID) ([]EntityID, []int32) {
	return g.fwd[lt].row(v)
}

// InEdgesBuf returns v's in-row via lt. The in-memory backend ignores buf
// and returns zero-copy views.
//
//hin:hot
func (g *Graph) InEdgesBuf(buf *EdgeBuf, lt LinkTypeID, v EntityID) ([]EntityID, []int32) {
	return g.rev[lt].row(v)
}
