package hin

import (
	"strings"
	"testing"
)

func userSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		[]EntityType{{Name: "User", Attrs: []string{"yob", "gender"}, SetAttrs: []string{"tags"}}},
		[]LinkType{
			{Name: "follow", From: "User", To: "User"},
			{Name: "mention", From: "User", To: "User", Weighted: true},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSchemaValid(t *testing.T) {
	s := userSchema(t)
	if s.NumEntityTypes() != 1 || s.NumLinkTypes() != 2 {
		t.Fatalf("got %d entity types, %d link types", s.NumEntityTypes(), s.NumLinkTypes())
	}
	if !s.Heterogeneous() {
		t.Fatal("|L|>1 must be heterogeneous (Definition 2)")
	}
	if id, ok := s.EntityTypeID("User"); !ok || id != 0 {
		t.Fatalf("EntityTypeID(User) = %d, %v", id, ok)
	}
	if id, ok := s.LinkTypeID("mention"); !ok || id != 1 {
		t.Fatalf("LinkTypeID(mention) = %d, %v", id, ok)
	}
	if _, ok := s.LinkTypeID("nope"); ok {
		t.Fatal("unknown link type resolved")
	}
	if i := s.AttrIndex(0, "gender"); i != 1 {
		t.Fatalf("AttrIndex(gender) = %d", i)
	}
	if i := s.AttrIndex(0, "missing"); i != -1 {
		t.Fatalf("AttrIndex(missing) = %d", i)
	}
	if i := s.SetAttrIndex(0, "tags"); i != 0 {
		t.Fatalf("SetAttrIndex(tags) = %d", i)
	}
	if i := s.SetAttrIndex(0, "missing"); i != -1 {
		t.Fatalf("SetAttrIndex(missing) = %d", i)
	}
}

func TestHomogeneousSchema(t *testing.T) {
	s, err := NewSchema(
		[]EntityType{{Name: "Node"}},
		[]LinkType{{Name: "edge", From: "Node", To: "Node"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if s.Heterogeneous() {
		t.Fatal("single entity and link type must be homogeneous")
	}
}

func TestNewSchemaErrors(t *testing.T) {
	cases := []struct {
		name string
		ets  []EntityType
		lts  []LinkType
	}{
		{"no entity types", nil, nil},
		{"empty entity name", []EntityType{{Name: ""}}, nil},
		{"dup entity name", []EntityType{{Name: "A"}, {Name: "A"}}, nil},
		{"empty attr name", []EntityType{{Name: "A", Attrs: []string{""}}}, nil},
		{"dup attr name", []EntityType{{Name: "A", Attrs: []string{"x", "x"}}}, nil},
		{"empty set attr", []EntityType{{Name: "A", SetAttrs: []string{""}}}, nil},
		{"dup set attr", []EntityType{{Name: "A", SetAttrs: []string{"t", "t"}}}, nil},
		{"empty link name", []EntityType{{Name: "A"}}, []LinkType{{Name: "", From: "A", To: "A"}}},
		{"dup link name", []EntityType{{Name: "A"}},
			[]LinkType{{Name: "l", From: "A", To: "A"}, {Name: "l", From: "A", To: "A"}}},
		{"unknown from", []EntityType{{Name: "A"}}, []LinkType{{Name: "l", From: "B", To: "A"}}},
		{"unknown to", []EntityType{{Name: "A"}}, []LinkType{{Name: "l", From: "A", To: "B"}}},
	}
	for _, tc := range cases {
		if _, err := NewSchema(tc.ets, tc.lts); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustSchema must panic on invalid schema")
		}
	}()
	MustSchema(nil, nil)
}

func TestLinkTypesFrom(t *testing.T) {
	s := MustSchema(
		[]EntityType{{Name: "User"}, {Name: "Tweet"}},
		[]LinkType{
			{Name: "post", From: "User", To: "Tweet"},
			{Name: "follow", From: "User", To: "User"},
			{Name: "mention", From: "Tweet", To: "User"},
		},
	)
	uid, _ := s.EntityTypeID("User")
	got := s.LinkTypesFrom(uid)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("LinkTypesFrom(User) = %v", got)
	}
}

func TestSchemaString(t *testing.T) {
	s := userSchema(t)
	out := s.String()
	for _, want := range []string{"entity User(yob, gender | tags)", "follow: User -> User", "mention: User -> User [weighted]"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q in:\n%s", want, out)
		}
	}
}

func TestMustLinkTypeIDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown link type")
		}
	}()
	userSchema(t).MustLinkTypeID("nope")
}
