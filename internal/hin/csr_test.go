package hin

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"github.com/hinpriv/dehin/internal/randx"
)

// randomRichGraph builds a labeled, attributed, set-carrying graph with
// duplicate edges (exercising merge) from a seeded RNG.
func randomRichGraph(t *testing.T, seed uint64) *Graph {
	t.Helper()
	s := userSchema(t)
	rng := randx.New(seed)
	n := rng.IntRange(2, 60)
	b := NewBuilder(s)
	for i := 0; i < n; i++ {
		b.AddEntity(0, fmt.Sprintf("u%04d", i), int64(1900+rng.Intn(100)), int64(rng.Intn(3)))
		if rng.Intn(3) > 0 {
			tags := make([]int32, rng.IntRange(1, 5))
			for j := range tags {
				tags[j] = int32(rng.Intn(20))
			}
			b.SetSet("tags", EntityID(i), tags)
		}
	}
	follow, mention := s.MustLinkTypeID("follow"), s.MustLinkTypeID("mention")
	for i := 0; i < 6*n; i++ {
		f := EntityID(rng.Intn(n))
		to := EntityID(rng.Intn(n))
		if f == to {
			continue
		}
		if rng.Intn(2) == 0 {
			if err := b.AddEdge(follow, f, to, 1); err != nil {
				t.Fatal(err)
			}
		} else if err := b.AddEdge(mention, f, to, int32(rng.IntRange(1, 9))); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// assertBackendsEqual checks every GraphBackend accessor agrees between
// the two backends.
func assertBackendsEqual(t *testing.T, want, got GraphBackend) {
	t.Helper()
	if want.Schema().String() != got.Schema().String() {
		t.Fatalf("schema mismatch:\n%s\nvs\n%s", want.Schema(), got.Schema())
	}
	n := want.NumEntities()
	if got.NumEntities() != n {
		t.Fatalf("NumEntities = %d, want %d", got.NumEntities(), n)
	}
	if w, g := want.NumEdgesTotal(), got.NumEdgesTotal(); w != g {
		t.Fatalf("NumEdgesTotal = %d, want %d", g, w)
	}
	names := want.SetNames()
	if gn := got.SetNames(); fmt.Sprint(gn) != fmt.Sprint(names) {
		t.Fatalf("SetNames = %v, want %v", gn, names)
	}
	var wAttrs, gAttrs []int64
	for v := 0; v < n; v++ {
		id := EntityID(v)
		if want.EntityType(id) != got.EntityType(id) {
			t.Fatalf("EntityType(%d) = %d, want %d", v, got.EntityType(id), want.EntityType(id))
		}
		if want.Label(id) != got.Label(id) {
			t.Fatalf("Label(%d) = %q, want %q", v, got.Label(id), want.Label(id))
		}
		if want.NumAttrs(id) != got.NumAttrs(id) {
			t.Fatalf("NumAttrs(%d) = %d, want %d", v, got.NumAttrs(id), want.NumAttrs(id))
		}
		wAttrs, gAttrs = want.AppendAttrs(wAttrs[:0], id), got.AppendAttrs(gAttrs[:0], id)
		if fmt.Sprint(wAttrs) != fmt.Sprint(gAttrs) {
			t.Fatalf("attrs(%d) = %v, want %v", v, gAttrs, wAttrs)
		}
		for i := 0; i < want.NumAttrs(id); i++ {
			if want.Attr(id, i) != got.Attr(id, i) {
				t.Fatalf("Attr(%d,%d) = %d, want %d", v, i, got.Attr(id, i), want.Attr(id, i))
			}
		}
		for _, name := range names {
			if fmt.Sprint(want.Set(name, id)) != fmt.Sprint(got.Set(name, id)) {
				t.Fatalf("Set(%q,%d) = %v, want %v", name, v, got.Set(name, id), want.Set(name, id))
			}
		}
	}
	wbuf, gbuf := &EdgeBuf{}, &EdgeBuf{}
	for lt := 0; lt < want.Schema().NumLinkTypes(); lt++ {
		ltid := LinkTypeID(lt)
		if w, g := want.NumEdges(ltid), got.NumEdges(ltid); w != g {
			t.Fatalf("NumEdges(%d) = %d, want %d", lt, g, w)
		}
		if w, g := want.OutDegrees(ltid, nil), got.OutDegrees(ltid, nil); fmt.Sprint(w) != fmt.Sprint(g) {
			t.Fatalf("OutDegrees(%d) mismatch", lt)
		}
		if w, g := want.InDegrees(ltid, nil), got.InDegrees(ltid, nil); fmt.Sprint(w) != fmt.Sprint(g) {
			t.Fatalf("InDegrees(%d) mismatch", lt)
		}
		for v := 0; v < n; v++ {
			id := EntityID(v)
			if want.OutDegree(ltid, id) != got.OutDegree(ltid, id) {
				t.Fatalf("OutDegree(%d,%d) = %d, want %d", lt, v, got.OutDegree(ltid, id), want.OutDegree(ltid, id))
			}
			if want.InDegree(ltid, id) != got.InDegree(ltid, id) {
				t.Fatalf("InDegree(%d,%d) mismatch", lt, v)
			}
			wt, ww := want.OutEdgesBuf(wbuf, ltid, id)
			gt, gw := got.OutEdgesBuf(gbuf, ltid, id)
			if fmt.Sprint(wt) != fmt.Sprint(gt) || fmt.Sprint(ww) != fmt.Sprint(gw) {
				t.Fatalf("OutEdgesBuf(%d,%d): (%v,%v) want (%v,%v)", lt, v, gt, gw, wt, ww)
			}
			wt, ww = want.InEdgesBuf(wbuf, ltid, id)
			gt, gw = got.InEdgesBuf(gbuf, ltid, id)
			if fmt.Sprint(wt) != fmt.Sprint(gt) || fmt.Sprint(ww) != fmt.Sprint(gw) {
				t.Fatalf("InEdgesBuf(%d,%d): (%v,%v) want (%v,%v)", lt, v, gt, gw, wt, ww)
			}
			for _, to := range wt {
				w1, ok1 := want.FindEdge(ltid, id, to)
				w2, ok2 := got.FindEdge(ltid, id, to)
				_ = w1
				_ = w2
				if ok1 != ok2 || (ok1 && w1 != w2) {
					t.Fatalf("FindEdge(%d,%d,%d) = (%d,%v), want (%d,%v)", lt, v, to, w2, ok2, w1, ok1)
				}
			}
			if _, ok := got.FindEdge(ltid, id, id); ok != func() bool { _, k := want.FindEdge(ltid, id, id); return k }() {
				t.Fatalf("FindEdge self mismatch at %d", v)
			}
		}
	}
	for ty := 0; ty < want.Schema().NumEntityTypes(); ty++ {
		if w, g := want.EntitiesOfType(EntityTypeID(ty)), got.EntitiesOfType(EntityTypeID(ty)); fmt.Sprint(w) != fmt.Sprint(g) {
			t.Fatalf("EntitiesOfType(%d) mismatch", ty)
		}
	}
}

func TestFromGraphEquivalence(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomRichGraph(t, seed)
		assertBackendsEqual(t, g, FromGraph(g))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCSRFileRoundTrip(t *testing.T) {
	g := randomRichGraph(t, 7)
	path := filepath.Join(t.TempDir(), "g.hincsr")
	if err := WriteCSRFile(path, g); err != nil {
		t.Fatal(err)
	}
	cf, err := OpenCSRFile(path)
	if err != nil {
		t.Fatal(err)
	}
	assertBackendsEqual(t, g, cf.Graph())
	if err := cf.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cf.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// The CSR backend persisted and reloaded must round-trip too (exercises
// writing *from* a CSRGraph, where labels decode from the packed blob).
func TestCSRFileRoundTripFromCSR(t *testing.T) {
	g := randomRichGraph(t, 11)
	c := FromGraph(g)
	path := filepath.Join(t.TempDir(), "g.hincsr")
	if err := WriteCSRFile(path, c); err != nil {
		t.Fatal(err)
	}
	cf, err := OpenCSRFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	assertBackendsEqual(t, g, cf.Graph())
}

func TestEmptyGraphCSRFile(t *testing.T) {
	s := userSchema(t)
	g, err := NewBuilder(s).Build()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "empty.hincsr")
	if err := WriteCSRFile(path, g); err != nil {
		t.Fatal(err)
	}
	cf, err := OpenCSRFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	assertBackendsEqual(t, g, cf.Graph())
}

// replayToCSRWriter feeds the exact entity/edge stream of g into a
// CSRWriter, using the same per-entity attr/set/edge order WriteCSRFile
// observes.
func replayToCSRWriter(t *testing.T, g *Graph, path string) {
	t.Helper()
	w, err := NewCSRWriter(g.Schema(), path)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumEntities()
	for v := 0; v < n; v++ {
		w.AddEntity(g.EntityType(EntityID(v)), g.Label(EntityID(v)), g.Attrs(EntityID(v))...)
		for _, name := range g.SetNames() {
			if s := g.Set(name, EntityID(v)); len(s) > 0 {
				w.SetSet(name, EntityID(v), s)
			}
		}
	}
	for lt := 0; lt < g.Schema().NumLinkTypes(); lt++ {
		for v := 0; v < n; v++ {
			tos, ws := g.OutEdges(LinkTypeID(lt), EntityID(v))
			for i, to := range tos {
				if err := w.AddEdge(LinkTypeID(lt), EntityID(v), to, ws[i]); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := w.Finalize(); err != nil {
		t.Fatal(err)
	}
}

func TestCSRWriterByteIdenticalToWriteCSRFile(t *testing.T) {
	g := randomRichGraph(t, 21)
	dir := t.TempDir()
	direct := filepath.Join(dir, "direct.hincsr")
	streamed := filepath.Join(dir, "streamed.hincsr")
	if err := WriteCSRFile(direct, g); err != nil {
		t.Fatal(err)
	}
	replayToCSRWriter(t, g, streamed)
	a, err := os.ReadFile(direct)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(streamed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("streamed CSR file differs from direct write: %d vs %d bytes", len(b), len(a))
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 {
		t.Fatalf("temp files left behind: %v", ents)
	}
}

func TestCSRWriterMergesDuplicates(t *testing.T) {
	s := userSchema(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "dup.hincsr")
	w, err := NewCSRWriter(s, path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		w.AddEntity(0, "", 1980, 0)
	}
	follow, mention := s.MustLinkTypeID("follow"), s.MustLinkTypeID("mention")
	for i := 0; i < 4; i++ {
		if err := w.AddEdge(follow, 0, 1, 1); err != nil {
			t.Fatal(err)
		}
		if err := w.AddEdge(mention, 0, 2, 3); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finalize(); err != nil {
		t.Fatal(err)
	}
	cf, err := OpenCSRFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	g := cf.Graph()
	if g.NumEdges(follow) != 1 || g.NumEdges(mention) != 1 {
		t.Fatalf("edge counts after merge: %d %d", g.NumEdges(follow), g.NumEdges(mention))
	}
	if w, ok := g.FindEdge(follow, 0, 1); !ok || w != 1 {
		t.Fatalf("follow edge = (%d,%v), want collapsed strength 1", w, ok)
	}
	if w, ok := g.FindEdge(mention, 0, 2); !ok || w != 12 {
		t.Fatalf("mention edge = (%d,%v), want summed strength 12", w, ok)
	}
}

func TestCSRWriterStrengthOverflow(t *testing.T) {
	s := userSchema(t)
	path := filepath.Join(t.TempDir(), "ovf.hincsr")
	w, err := NewCSRWriter(s, path)
	if err != nil {
		t.Fatal(err)
	}
	w.AddEntity(0, "", 1980, 0)
	w.AddEntity(0, "", 1981, 1)
	mention := s.MustLinkTypeID("mention")
	for i := 0; i < 2; i++ {
		if err := w.AddEdge(mention, 0, 1, maxInt32); err != nil {
			t.Fatal(err)
		}
	}
	err = w.Finalize()
	if err == nil || !strings.Contains(err.Error(), "overflows int32") {
		t.Fatalf("Finalize = %v, want overflow error", err)
	}
	if _, serr := os.Stat(path); !os.IsNotExist(serr) {
		t.Fatalf("failed Finalize left output file behind (stat err %v)", serr)
	}
}

func TestCSRWriterValidationMirrorsBuilder(t *testing.T) {
	s := userSchema(t)
	path := filepath.Join(t.TempDir(), "val.hincsr")
	w, err := NewCSRWriter(s, path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.removeTemp()
	w.AddEntity(0, "", 1980, 0)
	w.AddEntity(0, "", 1981, 1)
	follow, mention := s.MustLinkTypeID("follow"), s.MustLinkTypeID("mention")
	cases := []struct {
		name string
		err  error
	}{
		{"unknown lt", w.AddEdge(99, 0, 1, 1)},
		{"src range", w.AddEdge(follow, -1, 1, 1)},
		{"dst range", w.AddEdge(follow, 0, 9, 1)},
		{"self loop", w.AddEdge(follow, 0, 0, 1)},
		{"nonpositive", w.AddEdge(mention, 0, 1, 0)},
		{"unweighted w", w.AddEdge(follow, 0, 1, 2)},
	}
	for _, c := range cases {
		if c.err == nil {
			t.Fatalf("%s: expected error", c.name)
		}
	}
	for _, fn := range []func(){
		func() { w.AddEntity(9, "") },
		func() { w.AddEntity(0, "", 1980) },
		func() { w.SetSet("tags", 99, []int32{1}) },
		func() { w.SetSet("nope", 0, []int32{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

// corruptCSR copies the valid fixture, applies mutate, optionally repairs
// the header checksum/size, and returns the expected-to-fail path.
func corruptCSR(t *testing.T, src string, repair bool, mutate func([]byte) []byte) string {
	t.Helper()
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	data = mutate(append([]byte(nil), data...))
	if repair {
		binary.LittleEndian.PutUint64(data[16:24], uint64(len(data)))
		binary.LittleEndian.PutUint32(data[12:16], crc32.Checksum(data[csrHeaderSize:], castagnoli))
	}
	dst := filepath.Join(t.TempDir(), "corrupt.hincsr")
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return dst
}

func TestOpenCSRFileFailureModes(t *testing.T) {
	g := randomRichGraph(t, 5)
	valid := filepath.Join(t.TempDir(), "valid.hincsr")
	if err := WriteCSRFile(valid, g); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		repair bool
		want   string
		mutate func([]byte) []byte
	}{
		{"short file", false, "truncated", func(d []byte) []byte { return d[:10] }},
		{"bad magic", false, "bad magic", func(d []byte) []byte { copy(d, "NOTACSR!"); return d }},
		{"version skew", true, "unsupported format version", func(d []byte) []byte {
			binary.LittleEndian.PutUint32(d[8:12], 99)
			return d
		}},
		{"size mismatch", false, "header records", func(d []byte) []byte { return d[:len(d)-5] }},
		{"checksum mismatch", false, "checksum mismatch", func(d []byte) []byte {
			d[len(d)-1] ^= 0xff
			return d
		}},
		{"trailing bytes", true, "trailing bytes", func(d []byte) []byte { return append(d, 0) }},
		{"schema garbage", true, "schema section", func(d []byte) []byte {
			d[csrHeaderSize+8] = '!'
			return d
		}},
		{"adjacency corruption", true, "", func(d []byte) []byte {
			d[len(d)-9] ^= 0x55
			return d
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			path := corruptCSR(t, valid, c.repair, c.mutate)
			cf, err := OpenCSRFile(path)
			if err == nil {
				cf.Close()
				t.Fatal("OpenCSRFile succeeded on corrupt input")
			}
			if c.want != "" && !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
			if !strings.Contains(err.Error(), path) {
				t.Fatalf("error %q does not name the file", err)
			}
		})
	}
	if _, err := OpenCSRFile(filepath.Join(t.TempDir(), "missing.hincsr")); err == nil {
		t.Fatal("OpenCSRFile succeeded on missing file")
	}
}

// Satellite: both backends must report identical statistics.
func TestStatsCrossBackendEquality(t *testing.T) {
	g := randomRichGraph(t, 13)
	path := filepath.Join(t.TempDir(), "stats.hincsr")
	if err := WriteCSRFile(path, g); err != nil {
		t.Fatal(err)
	}
	cf, err := OpenCSRFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	for _, backend := range []struct {
		name string
		g    GraphBackend
	}{{"csr", FromGraph(g)}, {"file", cf.Graph()}} {
		c := backend.g
		if g.NumEdgesTotal() != c.NumEdgesTotal() {
			t.Fatalf("%s: NumEdgesTotal %d vs %d", backend.name, c.NumEdgesTotal(), g.NumEdgesTotal())
		}
		wd, werr := Density(g)
		gd, gerr := Density(c)
		if wd != gd || (werr == nil) != (gerr == nil) {
			t.Fatalf("%s: Density (%v,%v) vs (%v,%v)", backend.name, gd, gerr, wd, werr)
		}
		for lt := 0; lt < g.Schema().NumLinkTypes(); lt++ {
			ltid := LinkTypeID(lt)
			if a, b := OutDegreeStats(g, ltid), OutDegreeStats(c, ltid); a != b {
				t.Fatalf("%s: OutDegreeStats(%d) %+v vs %+v", backend.name, lt, b, a)
			}
			if a, b := StrengthCardinality(g, ltid), StrengthCardinality(c, ltid); a != b {
				t.Fatalf("%s: StrengthCardinality(%d) %d vs %d", backend.name, lt, b, a)
			}
			aw, ac, aok := MajorityStrength(g, ltid)
			bw, bc, bok := MajorityStrength(c, ltid)
			if aw != bw || ac != bc || aok != bok {
				t.Fatalf("%s: MajorityStrength(%d) (%d,%d,%v) vs (%d,%d,%v)", backend.name, lt, bw, bc, bok, aw, ac, aok)
			}
		}
		if a, b := AttrCardinality(g, 0, 0), AttrCardinality(c, 0, 0); a != b {
			t.Fatalf("%s: AttrCardinality %d vs %d", backend.name, b, a)
		}
		if a, b := SetSizeCardinality(g, 0, "tags"), SetSizeCardinality(c, 0, "tags"); a != b {
			t.Fatalf("%s: SetSizeCardinality %d vs %d", backend.name, b, a)
		}
	}
}
