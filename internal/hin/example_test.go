package hin_test

import (
	"fmt"

	"github.com/hinpriv/dehin/internal/hin"
)

// Example builds a miniature heterogeneous information network - a user
// posting a tweet that mentions another user - and projects it onto the
// user type along a short-circuited mention meta path.
func Example() {
	schema := hin.MustSchema(
		[]hin.EntityType{
			{Name: "User", Attrs: []string{"yob"}},
			{Name: "Tweet"},
		},
		[]hin.LinkType{
			{Name: "post", From: "User", To: "Tweet"},
			{Name: "mention", From: "Tweet", To: "User"},
		},
	)
	b := hin.NewBuilder(schema)
	alice := b.AddEntity(0, "alice", 1980)
	bob := b.AddEntity(0, "bob", 1985)
	tweet := b.AddEntity(1, "t1")
	if err := b.AddEdge(schema.MustLinkTypeID("post"), alice, tweet, 1); err != nil {
		panic(err)
	}
	if err := b.AddEdge(schema.MustLinkTypeID("mention"), tweet, bob, 1); err != nil {
		panic(err)
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}

	projected, _, err := hin.ProjectGraph(g, "User", []hin.MetaPath{
		{Name: "mentions", Steps: []hin.Step{{Link: "post"}, {Link: "mention"}}},
	})
	if err != nil {
		panic(err)
	}
	lt := projected.Schema().MustLinkTypeID("mentions")
	w, ok := projected.FindEdge(lt, 0, 1)
	fmt.Printf("%s mentions %s: %v (strength %d)\n",
		projected.Label(0), projected.Label(1), ok, w)
	// Output:
	// alice mentions bob: true (strength 1)
}

// ExampleDensity computes the paper's Equation 4 density for a two-user
// network with one follow edge.
func ExampleDensity() {
	schema := hin.MustSchema(
		[]hin.EntityType{{Name: "User"}},
		[]hin.LinkType{{Name: "follow", From: "User", To: "User"}},
	)
	b := hin.NewBuilder(schema)
	u := b.AddEntity(0, "u")
	v := b.AddEntity(0, "v")
	if err := b.AddEdge(0, u, v, 1); err != nil {
		panic(err)
	}
	g, _ := b.Build()
	d, _ := hin.Density(g)
	fmt.Printf("density = %.1f\n", d)
	// Output:
	// density = 0.5
}
