package hin

import (
	"fmt"
	"io"
	"strings"
)

// WriteSchemaDOT renders the network schema as a Graphviz digraph: one
// node per entity type (labelled with its attributes) and one edge per
// link type - the paper's Figure 2/3 style meta-structure diagrams.
func WriteSchemaDOT(w io.Writer, s *Schema) error {
	var b strings.Builder
	b.WriteString("digraph schema {\n  rankdir=LR;\n  node [shape=record];\n")
	for i := 0; i < s.NumEntityTypes(); i++ {
		et := s.EntityType(EntityTypeID(i))
		label := et.Name
		if len(et.Attrs) > 0 {
			label += "|" + strings.Join(et.Attrs, `\n`)
		}
		if len(et.SetAttrs) > 0 {
			label += "|{" + strings.Join(et.SetAttrs, `\n`) + "}"
		}
		fmt.Fprintf(&b, "  %q [label=\"{%s}\"];\n", et.Name, label)
	}
	for i := 0; i < s.NumLinkTypes(); i++ {
		lt := s.LinkType(LinkTypeID(i))
		style := ""
		if lt.Weighted {
			style = ", style=bold"
		}
		fmt.Fprintf(&b, "  %q -> %q [label=%q%s];\n", lt.From, lt.To, lt.Name, style)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteGraphDOT renders a (small) instance graph as a Graphviz digraph,
// one color-coded edge style per link type and weights as labels. Graphs
// above maxEntities are rejected - DOT rendering of large networks is a
// mistake, not a feature.
func WriteGraphDOT(w io.Writer, g *Graph, maxEntities int) error {
	if maxEntities <= 0 {
		maxEntities = 200
	}
	if g.NumEntities() > maxEntities {
		return fmt.Errorf("hin: refusing to render %d entities as DOT (max %d)",
			g.NumEntities(), maxEntities)
	}
	colors := []string{"black", "blue", "red", "darkgreen", "orange", "purple"}
	var b strings.Builder
	b.WriteString("digraph g {\n")
	for v := 0; v < g.NumEntities(); v++ {
		id := EntityID(v)
		label := g.Label(id)
		if label == "" {
			label = fmt.Sprintf("#%d", v)
		}
		fmt.Fprintf(&b, "  n%d [label=%q];\n", v, label)
	}
	for lt := 0; lt < g.Schema().NumLinkTypes(); lt++ {
		ltid := LinkTypeID(lt)
		color := colors[lt%len(colors)]
		weighted := g.Schema().LinkType(ltid).Weighted
		for v := 0; v < g.NumEntities(); v++ {
			tos, ws := g.OutEdges(ltid, EntityID(v))
			for j, to := range tos {
				if weighted {
					fmt.Fprintf(&b, "  n%d -> n%d [color=%s, label=\"%d\"];\n", v, to, color, ws[j])
				} else {
					fmt.Fprintf(&b, "  n%d -> n%d [color=%s];\n", v, to, color)
				}
			}
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
