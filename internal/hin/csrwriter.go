package hin

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"

	"github.com/hinpriv/dehin/internal/par"
)

// CSRWriter streams a graph straight to the on-disk CSR format without
// ever materializing full edge slices: edges spill to per-link-type temp
// files as 12-byte records, and Finalize routes them through bounded
// sort buckets into the final file. Peak memory is the O(n) entity
// columns plus one ~48MB sort bucket, independent of edge count - the
// builder for datasets too large for Builder + WriteCSRFile.
//
// Validation semantics mirror Builder exactly (same panics on entity
// shape mistakes, same errors on bad edges, same duplicate-edge merge at
// Finalize), and the output is byte-identical to
// WriteCSRFile(path, Builder.Build()) for the same entity/edge stream.
type CSRWriter struct {
	schema *Schema
	path   string

	// Workers sizes Finalize's bucket sort/encode pool (0 = GOMAXPROCS,
	// 1 = serial). The output file is byte-identical at any count; the
	// parallel path holds one direction's encoded adjacency in memory
	// instead of streaming bucket by bucket.
	Workers int

	etype     []byte
	labelOff  []byte
	labelBlob []byte

	intern    *attrInterner
	attrOff   []byte
	attrCodes []byte
	codes     int

	sets map[string]map[EntityID][]int32

	spills   []*spillFile
	finished bool
}

type spillFile struct {
	path    string
	w       *writerCounter
	records int64
}

const spillRecSize = 12

// bucketTargetBytes caps one sort bucket's record bytes. A variable so
// tests can shrink it to force multi-bucket Finalize runs on small
// graphs; the output is byte-identical at any bucket count.
var bucketTargetBytes = int64(48 << 20)

// NewCSRWriter opens the temp spill files next to path and returns a
// writer for the given schema.
func NewCSRWriter(schema *Schema, path string) (*CSRWriter, error) {
	w := &CSRWriter{
		schema:   schema,
		path:     path,
		labelOff: appendU64(nil, 0),
		intern:   newAttrInterner(),
		attrOff:  appendU64(nil, 0),
		sets:     make(map[string]map[EntityID][]int32),
		spills:   make([]*spillFile, schema.NumLinkTypes()),
	}
	for lt := range w.spills {
		p := fmt.Sprintf("%s.spill.%d", path, lt)
		f, err := os.Create(p)
		if err != nil {
			w.removeTemp()
			return nil, err
		}
		w.spills[lt] = &spillFile{path: p, w: &writerCounter{buf: make([]byte, 0, 1<<18), f: f}}
	}
	return w, nil
}

func (w *CSRWriter) removeTemp() {
	for _, s := range w.spills {
		if s != nil {
			s.w.f.Close()
			os.Remove(s.path)
		}
	}
}

// NumEntities returns how many entities have been added so far.
func (w *CSRWriter) NumEntities() int { return len(w.etype) }

// AddEntity appends an entity, mirroring Builder.AddEntity (panics on an
// unknown type or wrong attribute count).
func (w *CSRWriter) AddEntity(t EntityTypeID, label string, attrs ...int64) EntityID {
	if int(t) >= w.schema.NumEntityTypes() {
		panic(fmt.Sprintf("hin: AddEntity with unknown entity type %d", t))
	}
	decl := w.schema.EntityType(t)
	if len(attrs) != len(decl.Attrs) {
		panic(fmt.Sprintf("hin: entity type %q takes %d attrs, got %d",
			decl.Name, len(decl.Attrs), len(attrs)))
	}
	id := EntityID(len(w.etype))
	w.etype = append(w.etype, byte(t))
	w.labelBlob = append(w.labelBlob, label...)
	w.labelOff = appendU64(w.labelOff, uint64(len(w.labelBlob)))
	for _, a := range attrs {
		w.attrCodes = binary.LittleEndian.AppendUint32(w.attrCodes, w.intern.code(a))
		w.codes++
	}
	w.attrOff = appendU64(w.attrOff, uint64(w.codes))
	return id
}

// SetSet assigns the named multi-valued attribute of entity v, mirroring
// Builder.SetSet.
func (w *CSRWriter) SetSet(name string, v EntityID, vals []int32) {
	if v < 0 || int(v) >= len(w.etype) {
		panic(fmt.Sprintf("hin: SetSet on unknown entity %d", v))
	}
	if w.schema.SetAttrIndex(EntityTypeID(w.etype[v]), name) < 0 {
		panic(fmt.Sprintf("hin: entity type %q has no set attribute %q",
			w.schema.EntityType(EntityTypeID(w.etype[v])).Name, name))
	}
	col := w.sets[name]
	if col == nil {
		col = make(map[EntityID][]int32)
		w.sets[name] = col
	}
	if len(vals) == 0 {
		delete(col, v)
		return
	}
	cp := append([]int32(nil), vals...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	col[v] = cp
}

// AddEdge appends a directed edge, mirroring Builder.AddEdge's checks.
// The edge spills to disk; duplicates merge at Finalize.
func (w *CSRWriter) AddEdge(lt LinkTypeID, from, to EntityID, weight int32) error {
	if int(lt) >= w.schema.NumLinkTypes() {
		return fmt.Errorf("hin: unknown link type %d", lt)
	}
	if from < 0 || int(from) >= len(w.etype) {
		return fmt.Errorf("hin: edge source %d out of range", from)
	}
	if to < 0 || int(to) >= len(w.etype) {
		return fmt.Errorf("hin: edge destination %d out of range", to)
	}
	decl := w.schema.LinkType(lt)
	if ft := w.schema.EntityType(EntityTypeID(w.etype[from])).Name; ft != decl.From {
		return fmt.Errorf("hin: link %q requires source type %q, entity %d has %q",
			decl.Name, decl.From, from, ft)
	}
	if tt := w.schema.EntityType(EntityTypeID(w.etype[to])).Name; tt != decl.To {
		return fmt.Errorf("hin: link %q requires destination type %q, entity %d has %q",
			decl.Name, decl.To, to, tt)
	}
	if from == to && !decl.AllowSelf {
		return fmt.Errorf("hin: link %q forbids self-loops (entity %d)", decl.Name, from)
	}
	if weight <= 0 {
		return fmt.Errorf("hin: edge strength must be positive, got %d", weight)
	}
	if !decl.Weighted && weight != 1 {
		return fmt.Errorf("hin: unweighted link %q requires strength 1, got %d", decl.Name, weight)
	}
	var rec [spillRecSize]byte
	binary.LittleEndian.PutUint32(rec[0:4], uint32(from))
	binary.LittleEndian.PutUint32(rec[4:8], uint32(to))
	binary.LittleEndian.PutUint32(rec[8:12], uint32(weight))
	s := w.spills[lt]
	if err := s.w.write(rec[:]); err != nil {
		return err
	}
	s.records++
	return nil
}

type edgeRec struct{ src, dst, w int32 }

// Finalize merges the spilled edges, writes the CSR file, and removes the
// temp files. The writer must not be used afterwards.
func (w *CSRWriter) Finalize() (err error) {
	if w.finished {
		return fmt.Errorf("hin: CSRWriter already finalized")
	}
	w.finished = true
	defer w.removeTemp()

	sf, err := newSectionFile(w.path)
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			sf.f.Close()
			os.Remove(w.path)
		}
	}()

	sj, err := marshalSchema(w.schema)
	if err != nil {
		return err
	}
	sf.writeSection(sj)

	n := len(w.etype)
	L := w.schema.NumLinkTypes()
	setNames := make([]string, 0, len(w.sets))
	for name := range w.sets {
		setNames = append(setNames, name)
	}
	sort.Strings(setNames)
	meta := make([]byte, 0, 24)
	meta = appendU64(meta, uint64(n))
	meta = appendU64(meta, uint64(L))
	meta = appendU64(meta, uint64(len(setNames)))
	sf.writeSection(meta)
	sf.writeSection(w.etype)
	sf.writeSection(w.labelOff)
	sf.writeSection(w.labelBlob)
	dict := make([]byte, 0, len(w.intern.dict)*8)
	for _, a := range w.intern.dict {
		dict = appendU64(dict, uint64(a))
	}
	sf.writeSection(dict)
	sf.writeSection(w.attrOff)
	sf.writeSection(w.attrCodes)

	sf.begin()
	for _, name := range setNames {
		col := w.sets[name]
		payload := appendU64(nil, uint64(len(name)))
		payload = append(payload, name...)
		var total uint64
		payload = appendU64(payload, 0)
		for v := 0; v < n; v++ {
			total += uint64(len(col[EntityID(v)]))
			payload = appendU64(payload, total)
		}
		payload = appendU64(payload, total)
		for v := 0; v < n; v++ {
			for _, x := range col[EntityID(v)] {
				payload = binary.LittleEndian.AppendUint32(payload, uint32(x))
			}
		}
		sf.write(payload)
	}
	sf.end()

	rowOff := make([]byte, 0, (n+1)*8)
	for lt := 0; lt < L; lt++ {
		s := w.spills[lt]
		if err := s.w.flush(); err != nil {
			return err
		}
		weighted := w.schema.LinkType(LinkTypeID(lt)).Weighted

		nb := int(s.records*spillRecSize/bucketTargetBytes) + 1
		width := (n + nb - 1) / nb
		if width == 0 {
			width = 1
		}
		fwdB, revB, err := routeSpill(s, nb, width)
		if err != nil {
			return err
		}
		for _, bs := range [2][]*spillFile{fwdB, revB} {
			rowOff = rowOff[:0]
			rowOff = appendU64(rowOff, 0)
			var total uint64
			sf.begin()
			if par.Workers(w.Workers, len(bs)) <= 1 {
				// Serial: one bucket in memory at a time, streamed out
				// as soon as it is encoded.
				for b, bf := range bs {
					lo, hi := b*width, min((b+1)*width, n)
					enc, ends, err := encodeBucket(bf, weighted, lo, hi)
					if err != nil {
						return err
					}
					sf.write(enc)
					for _, e := range ends {
						rowOff = appendU64(rowOff, total+e)
					}
					total += uint64(len(enc))
				}
			} else {
				// Parallel: buckets sort/merge/encode concurrently
				// (each owns its slice of the entity range), then
				// concatenate in bucket order - byte-identical to the
				// serial path. The lowest bucket index's error wins,
				// matching the entity the serial scan would hit first.
				encs := make([][]byte, len(bs))
				ends := make([][]uint64, len(bs))
				var fe par.FirstErr
				par.Run(w.Workers, len(bs), func(_, b int) {
					lo, hi := b*width, min((b+1)*width, n)
					e, re, err := encodeBucket(bs[b], weighted, lo, hi)
					encs[b], ends[b] = e, re
					fe.Set(b, err)
				})
				if err := fe.Err(); err != nil {
					return err
				}
				for b := range encs {
					sf.write(encs[b])
					for _, e := range ends[b] {
						rowOff = appendU64(rowOff, total+e)
					}
					total += uint64(len(encs[b]))
					encs[b] = nil
				}
			}
			sf.end()
			sf.writeSection(rowOff)
		}
	}
	return sf.finish()
}

// encodeBucket drains one routed bucket file: read, sort by (src, dst),
// merge duplicate edges, and delta/varint-encode the rows of the bucket's
// entity range [lo, hi). Returns the encoded bytes and the cumulative
// end offset of every row within them. The bucket file is consumed and
// removed; buckets are independent, so Finalize may run several
// concurrently.
func encodeBucket(bf *spillFile, weighted bool, lo, hi int) ([]byte, []uint64, error) {
	if err := bf.w.flush(); err != nil {
		return nil, nil, err
	}
	bf.w.f.Close()
	recs, err := readBucket(bf.path)
	if err != nil {
		return nil, nil, err
	}
	os.Remove(bf.path)
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].src != recs[j].src {
			return recs[i].src < recs[j].src
		}
		return recs[i].dst < recs[j].dst
	})
	enc := make([]byte, 0, len(recs)*2+(hi-lo))
	ends := make([]uint64, 0, hi-lo)
	var rowIDs []EntityID
	var rowWs []int32
	idx := 0
	for v := lo; v < hi; v++ {
		rowIDs, rowWs = rowIDs[:0], rowWs[:0]
		for idx < len(recs) && recs[idx].src == int32(v) {
			d := recs[idx].dst
			sum := int64(recs[idx].w)
			idx++
			for idx < len(recs) && recs[idx].src == int32(v) && recs[idx].dst == d {
				sum += int64(recs[idx].w)
				idx++
			}
			if !weighted {
				sum = 1
			}
			if sum > int64(maxInt32) {
				return nil, nil, fmt.Errorf("hin: merged edge strength overflows int32 at entity %d", v)
			}
			rowIDs = append(rowIDs, EntityID(d))
			rowWs = append(rowWs, int32(sum))
		}
		enc = appendAdjRow(enc, rowIDs, rowWs, weighted)
		ends = append(ends, uint64(len(enc)))
	}
	return enc, ends, nil
}

// routeSpill distributes one link type's spilled records into per-range
// bucket files: forward keyed by source, reverse keyed by destination
// with endpoints swapped. The spill file is consumed and removed.
func routeSpill(s *spillFile, nb, width int) (fwd, rev []*spillFile, err error) {
	mk := func(dir string, b int) (*spillFile, error) {
		p := fmt.Sprintf("%s.%s.%d", s.path, dir, b)
		f, err := os.Create(p)
		if err != nil {
			return nil, err
		}
		return &spillFile{path: p, w: &writerCounter{buf: make([]byte, 0, 1<<20), f: f}}, nil
	}
	cleanup := func(bs []*spillFile) {
		for _, bf := range bs {
			if bf != nil {
				bf.w.f.Close()
				os.Remove(bf.path)
			}
		}
	}
	fwd = make([]*spillFile, nb)
	rev = make([]*spillFile, nb)
	for b := 0; b < nb; b++ {
		if fwd[b], err = mk("fwd", b); err == nil {
			rev[b], err = mk("rev", b)
		}
		if err != nil {
			cleanup(fwd)
			cleanup(rev)
			return nil, nil, err
		}
	}
	in, err := os.Open(s.path)
	if err != nil {
		cleanup(fwd)
		cleanup(rev)
		return nil, nil, err
	}
	r := bufio.NewReaderSize(in, 1<<20)
	var rec [spillRecSize]byte
	var swapped [spillRecSize]byte
	for i := int64(0); i < s.records; i++ {
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			in.Close()
			cleanup(fwd)
			cleanup(rev)
			return nil, nil, err
		}
		from := int(binary.LittleEndian.Uint32(rec[0:4]))
		to := int(binary.LittleEndian.Uint32(rec[4:8]))
		copy(swapped[0:4], rec[4:8])
		copy(swapped[4:8], rec[0:4])
		copy(swapped[8:12], rec[8:12])
		if err := fwd[from/width].w.write(rec[:]); err == nil {
			err = rev[to/width].w.write(swapped[:])
		} else {
			err = fmt.Errorf("hin: spill routing: %w", err)
		}
		if err != nil {
			in.Close()
			cleanup(fwd)
			cleanup(rev)
			return nil, nil, err
		}
	}
	in.Close()
	s.w.f.Close()
	os.Remove(s.path)
	return fwd, rev, nil
}

func readBucket(path string) ([]edgeRec, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw)%spillRecSize != 0 {
		return nil, fmt.Errorf("hin: bucket file %s: %d bytes not a record multiple", path, len(raw))
	}
	recs := make([]edgeRec, len(raw)/spillRecSize)
	for i := range recs {
		p := raw[i*spillRecSize:]
		recs[i] = edgeRec{
			src: int32(binary.LittleEndian.Uint32(p[0:4])),
			dst: int32(binary.LittleEndian.Uint32(p[4:8])),
			w:   int32(binary.LittleEndian.Uint32(p[8:12])),
		}
	}
	return recs, nil
}
