package hin

import (
	"fmt"
	"testing"
	"testing/quick"

	"github.com/hinpriv/dehin/internal/randx"
)

func randomRow(rng *randx.RNG, n int, weighted bool) ([]EntityID, []int32) {
	deg := rng.Intn(min(n, 12) + 1)
	seen := make(map[int32]bool)
	var ids []EntityID
	for len(ids) < deg {
		v := int32(rng.Intn(n))
		if !seen[v] {
			seen[v] = true
			ids = append(ids, EntityID(v))
		}
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	ws := make([]int32, len(ids))
	for i := range ws {
		if weighted {
			ws[i] = int32(rng.IntRange(1, 1000))
		} else {
			ws[i] = 1
		}
	}
	return ids, ws
}

func TestAdjRowCodecRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		rng := randx.New(seed)
		n := rng.IntRange(1, 500)
		weighted := rng.Intn(2) == 1
		ids, ws := randomRow(rng, n, weighted)
		enc := appendAdjRow(nil, ids, ws, weighted)

		strict := &EdgeBuf{}
		sIDs, sWs, err := decodeAdjRow(enc, weighted, n, strict)
		if err != nil {
			t.Fatalf("strict decode: %v", err)
		}
		fast := &EdgeBuf{}
		fIDs, fWs := decodeAdjRowFast(enc, weighted, fast)
		if fmt.Sprint(sIDs) != fmt.Sprint(ids) || fmt.Sprint(sWs) != fmt.Sprint(ws) {
			t.Fatalf("strict decode (%v,%v), want (%v,%v)", sIDs, sWs, ids, ws)
		}
		if fmt.Sprint(fIDs) != fmt.Sprint(ids) || fmt.Sprint(fWs) != fmt.Sprint(ws) {
			t.Fatalf("fast decode (%v,%v), want (%v,%v)", fIDs, fWs, ids, ws)
		}
		if adjRowDegree(enc) != len(ids) {
			t.Fatalf("adjRowDegree = %d, want %d", adjRowDegree(enc), len(ids))
		}
		// Every strict prefix must error, never succeed or panic.
		for k := 0; k < len(enc); k++ {
			if _, _, err := decodeAdjRow(enc[:k], weighted, n, strict); err == nil {
				t.Fatalf("prefix %d/%d decoded without error", k, len(enc))
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestAdjRowCodecErrors(t *testing.T) {
	enc := func(ids []EntityID, ws []int32, weighted bool) []byte {
		return appendAdjRow(nil, ids, ws, weighted)
	}
	cases := []struct {
		name     string
		dat      []byte
		weighted bool
		n        int
		want     error
	}{
		{"empty input", nil, false, 10, errAdjTruncated},
		{"degree exceeds entities", enc([]EntityID{0, 1, 2}, nil, false), false, 2, errAdjDegree},
		{"zero delta", []byte{2, 1, 0}, false, 10, errAdjOrder},
		{"dst out of range", []byte{2, 5, 6}, false, 10, errAdjRange},
		{"delta exceeds entities", []byte{1, 11}, false, 10, errAdjOrder},
		{"missing weight", []byte{1, 1}, true, 10, errAdjTruncated},
		{"zero weight", []byte{1, 1, 0}, true, 10, errAdjWeight},
		{"trailing bytes", append(enc([]EntityID{3}, nil, false), 0xAB), false, 10, errAdjTrailing},
	}
	buf := &EdgeBuf{}
	for _, c := range cases {
		if _, _, err := decodeAdjRow(c.dat, c.weighted, c.n, buf); err != c.want {
			t.Fatalf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
	// Oversized weight: 1<<31 encoded as uvarint.
	over := []byte{1, 1, 0x80, 0x80, 0x80, 0x80, 0x08}
	if _, _, err := decodeAdjRow(over, true, 10, buf); err != errAdjWeight {
		t.Fatalf("oversized weight: err = %v, want %v", err, errAdjWeight)
	}
}

// FuzzAdjRowCodec drives the strict decoder with arbitrary bytes (it must
// error, never panic) and checks that every successful decode re-encodes
// to a canonical row that decodes to the same values.
func FuzzAdjRowCodec(f *testing.F) {
	f.Add([]byte{}, false, 10)
	f.Add([]byte{0}, false, 10)
	f.Add(appendAdjRow(nil, []EntityID{0, 2, 5}, nil, false), false, 10)
	f.Add(appendAdjRow(nil, []EntityID{1, 3}, []int32{7, maxInt32}, true), true, 10)
	f.Add([]byte{2, 1, 0}, false, 10)
	f.Add([]byte{1, 0x80, 0x80, 0x80, 0x80, 0x08}, false, 1 << 30)
	f.Fuzz(func(t *testing.T, dat []byte, weighted bool, n int) {
		if n < 0 || n > 1<<30 {
			n = 1 << 30
		}
		buf := &EdgeBuf{}
		ids, ws, err := decodeAdjRow(dat, weighted, n, buf)
		if err != nil {
			return
		}
		if len(ids) != len(ws) {
			t.Fatalf("decoded %d ids but %d weights", len(ids), len(ws))
		}
		for i := range ids {
			if ids[i] < 0 || int(ids[i]) >= n {
				t.Fatalf("id %d out of range [0,%d)", ids[i], n)
			}
			if i > 0 && ids[i] <= ids[i-1] {
				t.Fatalf("ids not strictly ascending: %v", ids)
			}
			if ws[i] < 1 {
				t.Fatalf("strength %d < 1", ws[i])
			}
			if !weighted && ws[i] != 1 {
				t.Fatalf("unweighted row decoded strength %d", ws[i])
			}
		}
		// Canonical re-encode must round-trip to the same values. (Byte
		// equality is not required: the decoder accepts non-minimal
		// varints the encoder never emits.)
		canon := appendAdjRow(nil, ids, append([]int32(nil), ws...), weighted)
		buf2 := &EdgeBuf{}
		ids2, ws2, err := decodeAdjRow(canon, weighted, n, buf2)
		if err != nil {
			t.Fatalf("re-encoded row failed to decode: %v", err)
		}
		if fmt.Sprint(ids2) != fmt.Sprint(buf.IDs) || fmt.Sprint(ws2) != fmt.Sprint(buf.Ws) {
			t.Fatalf("re-encode round trip mismatch")
		}
		// The fast decoder must agree on valid input.
		fIDs, fWs := decodeAdjRowFast(dat, weighted, &EdgeBuf{})
		if fmt.Sprint(fIDs) != fmt.Sprint(ids2) || fmt.Sprint(fWs) != fmt.Sprint(ws2) {
			t.Fatalf("fast decoder disagrees with strict decoder")
		}
	})
}
