package hin

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"
)

// TestCSRFilePinBlocksClose pins the epoch-refcount contract the serve
// layer's snapshot retirement relies on: closing a CSR file while cursor
// leases are outstanding is ErrLiveCursors (and leaves the mapping fully
// usable), not a fault on the next row decode.
func TestCSRFilePinBlocksClose(t *testing.T) {
	g := randomRichGraph(t, 77)
	path := filepath.Join(t.TempDir(), "pin.hincsr")
	if err := WriteCSRFile(path, g); err != nil {
		t.Fatal(err)
	}
	cf, err := OpenCSRFile(path)
	if err != nil {
		t.Fatal(err)
	}

	if err := cf.Pin(); err != nil {
		t.Fatalf("Pin: %v", err)
	}
	if err := cf.Pin(); err != nil {
		t.Fatalf("second Pin: %v", err)
	}
	if got := cf.Pins(); got != 2 {
		t.Fatalf("Pins = %d, want 2", got)
	}
	if err := cf.Close(); !errors.Is(err, ErrLiveCursors) {
		t.Fatalf("Close with live cursors = %v, want ErrLiveCursors", err)
	}

	// The refused Close must leave the graph readable: decode a row
	// through an EdgeBuf cursor, which would fault had the file unmapped.
	buf := &EdgeBuf{}
	csr := cf.Graph()
	for lt := 0; lt < csr.Schema().NumLinkTypes(); lt++ {
		for v := 0; v < csr.NumEntities(); v++ {
			csr.OutEdgesBuf(buf, LinkTypeID(lt), EntityID(v))
		}
	}

	cf.Unpin()
	if err := cf.Close(); !errors.Is(err, ErrLiveCursors) {
		t.Fatalf("Close with one live cursor = %v, want ErrLiveCursors", err)
	}
	cf.Unpin()
	if got := cf.Pins(); got != 0 {
		t.Fatalf("Pins after unpin = %d, want 0", got)
	}
	if err := cf.Close(); err != nil {
		t.Fatalf("Close after drain: %v", err)
	}
	if err := cf.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := cf.Pin(); err == nil {
		t.Fatal("Pin after Close succeeded, want error")
	}
	if got := cf.Pins(); got != 0 {
		t.Fatalf("Pins after close = %d, want 0", got)
	}
}

// TestCSRFilePinConcurrent hammers Pin/Unpin from many goroutines while a
// closer retries, asserting exactly one Close eventually succeeds and no
// pin is stranded. Run under -race in the race-par lane.
func TestCSRFilePinConcurrent(t *testing.T) {
	g := randomRichGraph(t, 78)
	path := filepath.Join(t.TempDir(), "pinrace.hincsr")
	if err := WriteCSRFile(path, g); err != nil {
		t.Fatal(err)
	}
	cf, err := OpenCSRFile(path)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const rounds = 200
	var wg sync.WaitGroup
	buf := make([]*EdgeBuf, workers)
	for w := 0; w < workers; w++ {
		buf[w] = &EdgeBuf{}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			csr := cf.Graph()
			for i := 0; i < rounds; i++ {
				if err := cf.Pin(); err != nil {
					return // closed: pins must stop succeeding
				}
				csr.OutEdgesBuf(buf[w], 0, EntityID(i%csr.NumEntities()))
				cf.Unpin()
			}
		}(w)
	}
	wg.Wait()
	if err := cf.Close(); err != nil {
		t.Fatalf("Close after all readers drained: %v", err)
	}
}
