package hin

import (
	"testing"
	"testing/quick"

	"github.com/hinpriv/dehin/internal/randx"
)

// buildToy constructs a small two-link-type graph:
//
//	0 -follow-> 1, 0 -follow-> 2, 1 -follow-> 0
//	0 -mention(5)-> 1, 1 -mention(3)-> 2
func buildToy(t *testing.T) *Graph {
	t.Helper()
	s := userSchema(t)
	b := NewBuilder(s)
	for i := 0; i < 3; i++ {
		b.AddEntity(0, "", int64(1980+i), int64(i%2))
	}
	b.SetSet("tags", 0, []int32{7, 3})
	follow, mention := s.MustLinkTypeID("follow"), s.MustLinkTypeID("mention")
	for _, e := range []struct{ f, to EntityID }{{0, 1}, {0, 2}, {1, 0}} {
		if err := b.AddEdge(follow, e.f, e.to, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.AddEdge(mention, 0, 1, 5); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(mention, 1, 2, 3); err != nil {
		t.Fatal(err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGraphBasics(t *testing.T) {
	g := buildToy(t)
	if g.NumEntities() != 3 {
		t.Fatalf("NumEntities = %d", g.NumEntities())
	}
	if g.NumEdges(0) != 3 || g.NumEdges(1) != 2 || g.NumEdgesTotal() != 5 {
		t.Fatalf("edge counts: %d %d %d", g.NumEdges(0), g.NumEdges(1), g.NumEdgesTotal())
	}
	if g.Attr(1, 0) != 1981 || g.Attr(2, 1) != 0 {
		t.Fatalf("attrs wrong: %v %v", g.Attrs(1), g.Attrs(2))
	}
	if g.NumAttrs(0) != 2 {
		t.Fatalf("NumAttrs = %d", g.NumAttrs(0))
	}
}

func TestGraphSets(t *testing.T) {
	g := buildToy(t)
	tags := g.Set("tags", 0)
	if len(tags) != 2 || tags[0] != 3 || tags[1] != 7 {
		t.Fatalf("tags not sorted/copied: %v", tags)
	}
	if got := g.Set("tags", 1); len(got) != 0 {
		t.Fatalf("entity 1 should have no tags, got %v", got)
	}
	if got := g.Set("unknown", 0); got != nil {
		t.Fatalf("unknown set attr should be nil, got %v", got)
	}
}

func TestOutInEdges(t *testing.T) {
	g := buildToy(t)
	tos, ws := g.OutEdges(0, 0)
	if len(tos) != 2 || tos[0] != 1 || tos[1] != 2 || ws[0] != 1 {
		t.Fatalf("follow out of 0: %v %v", tos, ws)
	}
	if g.OutDegree(0, 0) != 2 || g.InDegree(0, 0) != 1 {
		t.Fatalf("degrees: out %d in %d", g.OutDegree(0, 0), g.InDegree(0, 0))
	}
	froms, ws2 := g.InEdges(1, 2)
	if len(froms) != 1 || froms[0] != 1 || ws2[0] != 3 {
		t.Fatalf("mention into 2: %v %v", froms, ws2)
	}
}

func TestBulkDegrees(t *testing.T) {
	g := buildToy(t)
	for lt := 0; lt < g.Schema().NumLinkTypes(); lt++ {
		out := g.OutDegrees(LinkTypeID(lt), nil)
		in := g.InDegrees(LinkTypeID(lt), nil)
		if len(out) != g.NumEntities() || len(in) != g.NumEntities() {
			t.Fatalf("lt %d: bulk degree lengths %d/%d", lt, len(out), len(in))
		}
		for v := 0; v < g.NumEntities(); v++ {
			if int(out[v]) != g.OutDegree(LinkTypeID(lt), EntityID(v)) {
				t.Fatalf("lt %d entity %d: OutDegrees %d != OutDegree %d",
					lt, v, out[v], g.OutDegree(LinkTypeID(lt), EntityID(v)))
			}
			if int(in[v]) != g.InDegree(LinkTypeID(lt), EntityID(v)) {
				t.Fatalf("lt %d entity %d: InDegrees %d != InDegree %d",
					lt, v, in[v], g.InDegree(LinkTypeID(lt), EntityID(v)))
			}
		}
	}
	// Appends to the tail of an existing slice.
	pre := []int32{42}
	got := g.OutDegrees(0, pre)
	if len(got) != 1+g.NumEntities() || got[0] != 42 {
		t.Fatalf("OutDegrees did not append: %v", got)
	}
}

func TestFindEdge(t *testing.T) {
	g := buildToy(t)
	if w, ok := g.FindEdge(1, 0, 1); !ok || w != 5 {
		t.Fatalf("FindEdge(mention,0,1) = %d %v", w, ok)
	}
	if _, ok := g.FindEdge(1, 2, 0); ok {
		t.Fatal("found non-existent edge")
	}
	if _, ok := g.FindEdge(0, 2, 1); ok {
		t.Fatal("found non-existent follow edge")
	}
}

func TestDuplicateEdgesMerge(t *testing.T) {
	s := userSchema(t)
	b := NewBuilder(s)
	b.AddEntity(0, "", 1980, 0)
	b.AddEntity(0, "", 1981, 1)
	mention := s.MustLinkTypeID("mention")
	follow := s.MustLinkTypeID("follow")
	for i := 0; i < 3; i++ {
		if err := b.AddEdge(mention, 0, 1, int32(i+1)); err != nil {
			t.Fatal(err)
		}
		if err := b.AddEdge(follow, 0, 1, 1); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if w, ok := g.FindEdge(mention, 0, 1); !ok || w != 6 {
		t.Fatalf("weighted duplicates must sum: got %d, %v", w, ok)
	}
	if g.NumEdges(mention) != 1 {
		t.Fatalf("mention edges = %d, want 1", g.NumEdges(mention))
	}
	if w, ok := g.FindEdge(follow, 0, 1); !ok || w != 1 {
		t.Fatalf("unweighted duplicates must collapse to 1: got %d, %v", w, ok)
	}
	if g.NumEdges(follow) != 1 {
		t.Fatalf("follow edges = %d, want 1", g.NumEdges(follow))
	}
}

func TestBuilderErrors(t *testing.T) {
	s := userSchema(t)
	b := NewBuilder(s)
	v0 := b.AddEntity(0, "", 1980, 0)
	v1 := b.AddEntity(0, "", 1981, 1)
	follow := s.MustLinkTypeID("follow")
	mention := s.MustLinkTypeID("mention")
	cases := []struct {
		name string
		err  error
	}{
		{"unknown link type", b.AddEdge(99, v0, v1, 1)},
		{"bad source", b.AddEdge(follow, -1, v1, 1)},
		{"bad destination", b.AddEdge(follow, v0, 99, 1)},
		{"self loop forbidden", b.AddEdge(follow, v0, v0, 1)},
		{"zero weight", b.AddEdge(mention, v0, v1, 0)},
		{"negative weight", b.AddEdge(mention, v0, v1, -2)},
		{"unweighted with weight", b.AddEdge(follow, v0, v1, 3)},
	}
	for _, tc := range cases {
		if tc.err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestBuilderEndpointTypeCheck(t *testing.T) {
	s := MustSchema(
		[]EntityType{{Name: "User"}, {Name: "Tweet"}},
		[]LinkType{{Name: "post", From: "User", To: "Tweet"}},
	)
	b := NewBuilder(s)
	u := b.AddEntity(0, "")
	tw := b.AddEntity(1, "")
	if err := b.AddEdge(0, u, tw, 1); err != nil {
		t.Fatalf("valid edge rejected: %v", err)
	}
	if err := b.AddEdge(0, tw, u, 1); err == nil {
		t.Fatal("reversed endpoint types accepted")
	}
	if err := b.AddEdge(0, u, u, 1); err == nil {
		t.Fatal("wrong destination type accepted")
	}
}

func TestBuilderPanics(t *testing.T) {
	s := userSchema(t)
	for name, fn := range map[string]func(){
		"unknown entity type": func() { NewBuilder(s).AddEntity(9, "") },
		"wrong attr count":    func() { NewBuilder(s).AddEntity(0, "", 1) },
		"set on bad entity":   func() { NewBuilder(s).SetSet("tags", 0, []int32{1}) },
		"unknown set attr": func() {
			b := NewBuilder(s)
			b.AddEntity(0, "", 1, 2)
			b.SetSet("nope", 0, []int32{1})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestBuildTwicePanicsOrErrors(t *testing.T) {
	b := NewBuilder(userSchema(t))
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(); err == nil {
		t.Fatal("second Build must fail")
	}
}

func TestSelfLoopAllowed(t *testing.T) {
	s := MustSchema(
		[]EntityType{{Name: "A"}},
		[]LinkType{{Name: "self", From: "A", To: "A", AllowSelf: true, Weighted: true}},
	)
	b := NewBuilder(s)
	v := b.AddEntity(0, "")
	if err := b.AddEdge(0, v, v, 4); err != nil {
		t.Fatal(err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if w, ok := g.FindEdge(0, v, v); !ok || w != 4 {
		t.Fatalf("self edge: %d %v", w, ok)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := buildToy(t)
	sub, orig, err := g.Induced([]EntityID{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumEntities() != 2 {
		t.Fatalf("NumEntities = %d", sub.NumEntities())
	}
	if orig[0] != 2 || orig[1] != 0 {
		t.Fatalf("orig map = %v", orig)
	}
	// Only edges with both endpoints inside survive: 0->2 follow.
	if sub.NumEdgesTotal() != 1 {
		t.Fatalf("NumEdgesTotal = %d", sub.NumEdgesTotal())
	}
	if w, ok := sub.FindEdge(0, 1, 0); !ok || w != 1 {
		t.Fatalf("relabeled follow edge: %d %v", w, ok)
	}
	// Attributes and sets travel.
	if sub.Attr(1, 0) != 1980 {
		t.Fatalf("attr: %d", sub.Attr(1, 0))
	}
	if tags := sub.Set("tags", 1); len(tags) != 2 {
		t.Fatalf("tags lost: %v", tags)
	}
}

func TestInducedErrors(t *testing.T) {
	g := buildToy(t)
	if _, _, err := g.Induced([]EntityID{0, 0}); err == nil {
		t.Fatal("duplicate ids accepted")
	}
	if _, _, err := g.Induced([]EntityID{99}); err == nil {
		t.Fatal("out-of-range id accepted")
	}
}

func TestInducedPermutationRelabels(t *testing.T) {
	g := buildToy(t)
	perm := []EntityID{2, 0, 1}
	rg, orig, err := g.Induced(perm)
	if err != nil {
		t.Fatal(err)
	}
	if rg.NumEdgesTotal() != g.NumEdgesTotal() {
		t.Fatalf("permutation lost edges: %d vs %d", rg.NumEdgesTotal(), g.NumEdgesTotal())
	}
	// Old edge 0-mention(5)->1 becomes new 1 -> 2.
	if w, ok := rg.FindEdge(1, 1, 2); !ok || w != 5 {
		t.Fatalf("relabeled mention: %d %v", w, ok)
	}
	for newID, oldID := range orig {
		if rg.Attr(EntityID(newID), 0) != g.Attr(oldID, 0) {
			t.Fatalf("attr mismatch at new %d / old %d", newID, oldID)
		}
	}
}

// Property: for random graphs, CSR invariants hold - rows sorted, forward
// and reverse views agree, and total degree equals edge count.
func TestCSRInvariantsProperty(t *testing.T) {
	s := userSchema(t)
	f := func(seed uint64) bool {
		rng := randx.New(seed)
		n := rng.IntRange(2, 40)
		b := NewBuilder(s)
		for i := 0; i < n; i++ {
			b.AddEntity(0, "", int64(1900+rng.Intn(100)), int64(rng.Intn(3)))
		}
		mention := s.MustLinkTypeID("mention")
		edges := rng.Intn(4 * n)
		for i := 0; i < edges; i++ {
			f := EntityID(rng.Intn(n))
			to := EntityID(rng.Intn(n))
			if f == to {
				continue
			}
			if err := b.AddEdge(mention, f, to, int32(rng.IntRange(1, 9))); err != nil {
				return false
			}
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		var outSum, inSum int
		for v := 0; v < n; v++ {
			tos, ws := g.OutEdges(mention, EntityID(v))
			if len(tos) != len(ws) {
				return false
			}
			for i := 1; i < len(tos); i++ {
				if tos[i] <= tos[i-1] {
					return false // unsorted or duplicate destination
				}
			}
			outSum += len(tos)
			inSum += g.InDegree(mention, EntityID(v))
			// Every forward edge appears in the reverse adjacency with the
			// same weight.
			for i, to := range tos {
				froms, rws := g.InEdges(mention, to)
				found := false
				for j, fr := range froms {
					if fr == EntityID(v) && rws[j] == ws[i] {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return int64(outSum) == g.NumEdges(mention) && outSum == inSum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Induced with the identity permutation is an exact copy.
func TestInducedIdentityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := randx.New(seed)
		s := MustSchema(
			[]EntityType{{Name: "U", Attrs: []string{"x"}}},
			[]LinkType{{Name: "e", From: "U", To: "U", Weighted: true}},
		)
		n := rng.IntRange(2, 25)
		b := NewBuilder(s)
		for i := 0; i < n; i++ {
			b.AddEntity(0, "", int64(rng.Intn(5)))
		}
		for i := 0; i < 3*n; i++ {
			f, to := EntityID(rng.Intn(n)), EntityID(rng.Intn(n))
			if f != to {
				_ = b.AddEdge(0, f, to, int32(rng.IntRange(1, 4)))
			}
		}
		g, _ := b.Build()
		ids := make([]EntityID, n)
		for i := range ids {
			ids[i] = EntityID(i)
		}
		cp, _, err := g.Induced(ids)
		if err != nil {
			return false
		}
		if cp.NumEdgesTotal() != g.NumEdgesTotal() {
			return false
		}
		for v := 0; v < n; v++ {
			t1, w1 := g.OutEdges(0, EntityID(v))
			t2, w2 := cp.OutEdges(0, EntityID(v))
			if len(t1) != len(t2) {
				return false
			}
			for i := range t1 {
				if t1[i] != t2[i] || w1[i] != w2[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMergedStrengthOverflow(t *testing.T) {
	s := MustSchema(
		[]EntityType{{Name: "U"}},
		[]LinkType{{Name: "e", From: "U", To: "U", Weighted: true}},
	)
	b := NewBuilder(s)
	b.AddEntity(0, "")
	b.AddEntity(0, "")
	// Two near-max weights merge past int32.
	if err := b.AddEdge(0, 0, 1, 1<<31-1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(0, 0, 1, 1<<31-1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(); err == nil {
		t.Fatal("strength overflow must fail the build")
	}
}

func TestSchemaTooManyTypes(t *testing.T) {
	ets := make([]EntityType, 251)
	for i := range ets {
		ets[i] = EntityType{Name: string(rune('A'+i%26)) + string(rune('0'+i/26))}
	}
	if _, err := NewSchema(ets, nil); err == nil {
		t.Fatal("251 entity types accepted")
	}
}

func TestEntityWithNoAttrs(t *testing.T) {
	s := MustSchema([]EntityType{{Name: "N"}}, nil)
	b := NewBuilder(s)
	v := b.AddEntity(0, "plain")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumAttrs(v) != 0 || len(g.Attrs(v)) != 0 {
		t.Fatal("attr-less entity should have empty attrs")
	}
	if g.Label(v) != "plain" {
		t.Fatal("label lost")
	}
}

func TestBuilderNumEntities(t *testing.T) {
	b := NewBuilder(userSchema(t))
	if b.NumEntities() != 0 {
		t.Fatal("fresh builder not empty")
	}
	b.AddEntity(0, "", 1, 2)
	b.AddEntity(0, "", 3, 4)
	if b.NumEntities() != 2 {
		t.Fatalf("NumEntities = %d", b.NumEntities())
	}
}

func TestEmptyGraphBuild(t *testing.T) {
	g, err := NewBuilder(userSchema(t)).Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEntities() != 0 || g.NumEdgesTotal() != 0 {
		t.Fatal("empty build not empty")
	}
	if got := g.EntitiesOfType(0); len(got) != 0 {
		t.Fatal("phantom entities")
	}
}
