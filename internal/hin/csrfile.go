package hin

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync/atomic"

	"github.com/hinpriv/dehin/internal/par"
)

// On-disk CSR graph format ("HINCSR"), version 1.
//
// A 24-byte header:
//
//	[0:8)   magic "HINCSR01"
//	[8:12)  format version, uint32 LE
//	[12:16) CRC-32C (Castagnoli) of everything after the header
//	[16:24) total file size in bytes, uint64 LE
//
// followed by length-prefixed sections ([uint64 LE length][payload]) in
// fixed order:
//
//	schema      JSON {EntityTypes, LinkTypes}, reconstructed via NewSchema
//	meta        3 x uint64 LE: numEntities, numLinkTypes, numSets
//	etype       one byte per entity
//	labelOff    (n+1) x uint64 LE byte offsets into labelBlob
//	labelBlob   concatenated label bytes
//	attrDict    distinct attribute values, int64 LE, first-occurrence order
//	attrOff     (n+1) x uint64 LE code-index offsets into attrCodes
//	attrCodes   one uint32 LE dictionary code per scalar attribute
//	sets        per set column, name-ascending: uint64 nameLen, name,
//	            (n+1) x uint64 value-index offsets, uint64 valueCount,
//	            values int32 LE
//	adjacency   per link type id ascending, four sections each:
//	            fwd dat, fwd rowOff, rev dat, rev rowOff (see adjcodec.go)
//
// The loader validates the header, then every section's structure - down
// to strict-decoding each adjacency row - before returning, so the hot
// query path may use the trusting decoder on mmap'd bytes.
const (
	csrMagic      = "HINCSR01"
	csrVersion    = 1
	csrHeaderSize = 24
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// sectionFile writes the section stream with placeholder lengths patched
// in after the payload sizes are known, so adjacency sections can stream
// without buffering. Errors are sticky: the first failure is returned by
// finish and every later write is a no-op.
type sectionFile struct {
	f        *os.File
	w        *writerCounter
	patches  []lenPatch
	curLen   int64 // file offset of the open section's length field
	curStart int64
	err      error
}

type lenPatch struct{ off, val int64 }

type writerCounter struct {
	buf []byte
	f   *os.File
	pos int64
}

func (w *writerCounter) write(p []byte) error {
	w.pos += int64(len(p))
	for len(p) > 0 {
		free := cap(w.buf) - len(w.buf)
		if free == 0 {
			if err := w.flush(); err != nil {
				return err
			}
			free = cap(w.buf)
		}
		k := min(free, len(p))
		w.buf = append(w.buf, p[:k]...)
		p = p[k:]
	}
	return nil
}

func (w *writerCounter) flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	_, err := w.f.Write(w.buf)
	w.buf = w.buf[:0]
	return err
}

func newSectionFile(path string) (*sectionFile, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	sf := &sectionFile{
		f:      f,
		w:      &writerCounter{buf: make([]byte, 0, 1<<20), f: f},
		curLen: -1,
	}
	sf.write(make([]byte, csrHeaderSize)) // patched by finish
	return sf, nil
}

func (sf *sectionFile) write(p []byte) {
	if sf.err != nil {
		return
	}
	sf.err = sf.w.write(p)
}

func (sf *sectionFile) begin() {
	sf.curLen = sf.w.pos
	sf.write(make([]byte, 8))
	sf.curStart = sf.w.pos
}

func (sf *sectionFile) end() {
	sf.patches = append(sf.patches, lenPatch{sf.curLen, sf.w.pos - sf.curStart})
	sf.curLen = -1
}

func (sf *sectionFile) writeSection(payload []byte) {
	sf.begin()
	sf.write(payload)
	sf.end()
}

// finish patches the section lengths, computes the body checksum in one
// sequential re-read, writes the header, and closes the file.
func (sf *sectionFile) finish() error {
	if sf.err == nil {
		sf.err = sf.w.flush()
	}
	if sf.err != nil {
		sf.f.Close()
		return sf.err
	}
	var le [8]byte
	for _, p := range sf.patches {
		binary.LittleEndian.PutUint64(le[:], uint64(p.val))
		if _, err := sf.f.WriteAt(le[:], p.off); err != nil {
			sf.f.Close()
			return err
		}
	}
	if _, err := sf.f.Seek(csrHeaderSize, io.SeekStart); err != nil {
		sf.f.Close()
		return err
	}
	crc := uint32(0)
	chunk := make([]byte, 1<<20)
	for {
		k, err := sf.f.Read(chunk)
		crc = crc32.Update(crc, castagnoli, chunk[:k])
		if err == io.EOF {
			break
		}
		if err != nil {
			sf.f.Close()
			return err
		}
	}
	var hdr [csrHeaderSize]byte
	copy(hdr[0:8], csrMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], csrVersion)
	binary.LittleEndian.PutUint32(hdr[12:16], crc)
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(sf.w.pos))
	if _, err := sf.f.WriteAt(hdr[:], 0); err != nil {
		sf.f.Close()
		return err
	}
	if err := sf.f.Sync(); err != nil {
		sf.f.Close()
		return err
	}
	return sf.f.Close()
}

type schemaJSON struct {
	EntityTypes []EntityType
	LinkTypes   []LinkType
}

func marshalSchema(s *Schema) ([]byte, error) {
	sj := schemaJSON{
		EntityTypes: make([]EntityType, s.NumEntityTypes()),
		LinkTypes:   make([]LinkType, s.NumLinkTypes()),
	}
	for i := range sj.EntityTypes {
		sj.EntityTypes[i] = s.EntityType(EntityTypeID(i))
	}
	for i := range sj.LinkTypes {
		sj.LinkTypes[i] = s.LinkType(LinkTypeID(i))
	}
	return json.Marshal(sj)
}

// WriteCSRFile persists any backend as a version-1 CSR file. It streams
// the adjacency sections row by row through one reused decode buffer;
// only the O(n) offset columns are materialized in memory.
func WriteCSRFile(path string, g GraphBackend) error {
	return WriteCSRFileOpt(path, g, CSRFileOptions{Workers: 1})
}

// WriteCSRFileOpt is WriteCSRFile with the adjacency encoding - the
// dominant cost - sharded across workers. Each shard encodes its row
// range into a private buffer with its own edge cursor; buffers are then
// written in shard order, so the file is byte-identical to the serial
// writer at any worker count. The parallel path trades the serial
// writer's O(1) adjacency buffering for holding one direction's encoded
// bytes in memory; Workers <= 1 keeps the streaming behavior.
func WriteCSRFileOpt(path string, g GraphBackend, opts CSRFileOptions) (err error) {
	sf, err := newSectionFile(path)
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			sf.f.Close()
			os.Remove(path)
		}
	}()

	s := g.Schema()
	sj, err := marshalSchema(s)
	if err != nil {
		return err
	}
	sf.writeSection(sj)

	n := g.NumEntities()
	L := s.NumLinkTypes()
	setNames := g.SetNames()
	meta := make([]byte, 0, 24)
	meta = appendU64(meta, uint64(n))
	meta = appendU64(meta, uint64(L))
	meta = appendU64(meta, uint64(len(setNames)))
	sf.writeSection(meta)

	// etype.
	sf.begin()
	chunk := make([]byte, 0, 1<<16)
	for v := 0; v < n; v++ {
		chunk = append(chunk, byte(g.EntityType(EntityID(v))))
		if len(chunk) == cap(chunk) {
			sf.write(chunk)
			chunk = chunk[:0]
		}
	}
	sf.write(chunk)
	sf.end()

	// labelOff (offset pre-pass), then labelBlob.
	sf.begin()
	var off uint64
	chunk = chunk[:0]
	chunk = appendU64(chunk, 0)
	for v := 0; v < n; v++ {
		off += uint64(len(g.Label(EntityID(v))))
		chunk = appendU64(chunk, off)
		if len(chunk)+8 > cap(chunk) {
			sf.write(chunk)
			chunk = chunk[:0]
		}
	}
	sf.write(chunk)
	sf.end()
	sf.begin()
	chunk = chunk[:0]
	for v := 0; v < n; v++ {
		l := g.Label(EntityID(v))
		if len(chunk)+len(l) > cap(chunk) {
			sf.write(chunk)
			chunk = chunk[:0]
		}
		if len(l) >= cap(chunk) {
			sf.write([]byte(l))
			continue
		}
		chunk = append(chunk, l...)
	}
	sf.write(chunk)
	sf.end()

	// Attribute columns: one interning pass buffers the codes (the dict
	// section precedes them and is only complete after the pass).
	intern := newAttrInterner()
	attrOff := make([]byte, 0, (n+1)*8)
	attrOff = appendU64(attrOff, 0)
	var attrCodes []byte
	var attrScratch []int64
	codes := 0
	for v := 0; v < n; v++ {
		attrScratch = g.AppendAttrs(attrScratch[:0], EntityID(v))
		for _, a := range attrScratch {
			attrCodes = binary.LittleEndian.AppendUint32(attrCodes, intern.code(a))
			codes++
		}
		attrOff = appendU64(attrOff, uint64(codes))
	}
	dict := make([]byte, 0, len(intern.dict)*8)
	for _, a := range intern.dict {
		dict = appendU64(dict, uint64(a))
	}
	sf.writeSection(dict)
	sf.writeSection(attrOff)
	sf.writeSection(attrCodes)

	// Sets: one composite section, names ascending.
	sf.begin()
	for _, name := range setNames {
		chunk = chunk[:0]
		chunk = appendU64(chunk, uint64(len(name)))
		chunk = append(chunk, name...)
		sf.write(chunk)
		var total uint64
		chunk = chunk[:0]
		chunk = appendU64(chunk, 0)
		for v := 0; v < n; v++ {
			total += uint64(len(g.Set(name, EntityID(v))))
			chunk = appendU64(chunk, total)
			if len(chunk)+8 > cap(chunk) {
				sf.write(chunk)
				chunk = chunk[:0]
			}
		}
		chunk = appendU64(chunk, total)
		sf.write(chunk)
		chunk = chunk[:0]
		for v := 0; v < n; v++ {
			for _, x := range g.Set(name, EntityID(v)) {
				chunk = binary.LittleEndian.AppendUint32(chunk, uint32(x))
				if len(chunk)+4 > cap(chunk) {
					sf.write(chunk)
					chunk = chunk[:0]
				}
			}
		}
		sf.write(chunk)
	}
	sf.end()

	// Adjacency: per link type, fwd then rev. The serial path streams
	// dat row by row while the rowOff column accumulates in memory; the
	// parallel path encodes fixed-width row shards concurrently and
	// concatenates them in shard order.
	shards := par.Shards(n, csrAdjShardRows)
	pool := par.Workers(opts.Workers, shards)
	ebuf := &EdgeBuf{}
	rowOff := make([]byte, 0, (n+1)*8)
	enc := make([]byte, 0, 4096)
	for lt := 0; lt < L; lt++ {
		weighted := s.LinkType(LinkTypeID(lt)).Weighted
		for dir := 0; dir < 2; dir++ {
			rowOff = rowOff[:0]
			rowOff = appendU64(rowOff, 0)
			var total uint64
			sf.begin()
			if pool <= 1 {
				for v := 0; v < n; v++ {
					var tos []EntityID
					var ws []int32
					if dir == 0 {
						tos, ws = g.OutEdgesBuf(ebuf, LinkTypeID(lt), EntityID(v))
					} else {
						tos, ws = g.InEdgesBuf(ebuf, LinkTypeID(lt), EntityID(v))
					}
					enc = appendAdjRow(enc[:0], tos, ws, weighted)
					total += uint64(len(enc))
					sf.write(enc)
					rowOff = appendU64(rowOff, total)
				}
			} else {
				encs := make([][]byte, shards)
				ends := make([][]uint64, shards)
				bufs := make([]EdgeBuf, pool)
				par.Run(opts.Workers, shards, func(wk, sh int) {
					lo, hi := par.Bounds(sh, n, csrAdjShardRows)
					buf := make([]byte, 0, 4096)
					rowEnds := make([]uint64, 0, hi-lo)
					for v := lo; v < hi; v++ {
						var tos []EntityID
						var ws []int32
						if dir == 0 {
							tos, ws = g.OutEdgesBuf(&bufs[wk], LinkTypeID(lt), EntityID(v))
						} else {
							tos, ws = g.InEdgesBuf(&bufs[wk], LinkTypeID(lt), EntityID(v))
						}
						buf = appendAdjRow(buf, tos, ws, weighted)
						rowEnds = append(rowEnds, uint64(len(buf)))
					}
					encs[sh], ends[sh] = buf, rowEnds
				})
				for sh := range encs {
					sf.write(encs[sh])
					for _, e := range ends[sh] {
						rowOff = appendU64(rowOff, total+e)
					}
					total += uint64(len(encs[sh]))
					encs[sh] = nil
				}
			}
			sf.end()
			sf.writeSection(rowOff)
		}
	}
	return sf.finish()
}

// CSRFile is an opened on-disk CSR graph: the decoded CSRGraph plus the
// mapping it aliases. Close releases the mapping; the graph must not be
// used afterwards.
//
// Long-lived holders that hand the graph to concurrent readers (the serve
// layer's epoch snapshots) guard the mapping with the pin count: every
// in-flight reader holds one Pin for as long as it may decode adjacency
// rows through an EdgeBuf cursor, and Close refuses to unmap while pins
// are outstanding. A retire-path bug then surfaces as ErrLiveCursors
// instead of a SIGSEGV on the unmapped pages.
type CSRFile struct {
	g     *CSRGraph
	unmap func() error
	// pins counts live cursor leases; csrFileClosed (negative) marks the
	// file closed so late Pin calls fail instead of racing the unmap.
	pins atomic.Int64
}

// csrFileClosed is the pin-count sentinel marking a closed file. Any
// negative value works; half the range keeps concurrent Unpin underflow
// (itself a bug) from ever wrapping back to a plausible count.
const csrFileClosed = int64(-1) << 40

// ErrLiveCursors is returned by Close while cursor pins are outstanding.
var ErrLiveCursors = errors.New("hin: csr file has live cursors")

// Graph returns the backend view of the file.
func (c *CSRFile) Graph() *CSRGraph { return c.g }

// Pin takes a cursor lease on the mapping: until the matching Unpin, Close
// fails with ErrLiveCursors instead of unmapping under a live EdgeBuf
// cursor. Pin fails once the file is closed. Lock-free; safe for any
// number of concurrent readers.
func (c *CSRFile) Pin() error {
	if c == nil {
		return errors.New("hin: pin of nil csr file")
	}
	for {
		p := c.pins.Load()
		if p < 0 {
			return errors.New("hin: pin of closed csr file")
		}
		if c.pins.CompareAndSwap(p, p+1) {
			return nil
		}
	}
}

// Unpin releases one Pin lease.
func (c *CSRFile) Unpin() {
	if c == nil {
		return
	}
	c.pins.Add(-1)
}

// Pins returns the number of outstanding cursor leases (0 after Close).
func (c *CSRFile) Pins() int64 {
	if c == nil {
		return 0
	}
	if p := c.pins.Load(); p > 0 {
		return p
	}
	return 0
}

// Close releases the underlying mapping. Idempotent. While Pin leases are
// outstanding it returns ErrLiveCursors and leaves the mapping intact, so
// a premature epoch retirement is a recoverable error, not a fault on the
// next row decode.
func (c *CSRFile) Close() error {
	if c == nil || c.unmap == nil {
		return nil
	}
	for !c.pins.CompareAndSwap(0, csrFileClosed) {
		switch p := c.pins.Load(); {
		case p < 0:
			return nil // already closed
		case p > 0:
			return fmt.Errorf("%w: %d outstanding pins", ErrLiveCursors, p)
		}
	}
	u := c.unmap
	c.unmap = nil
	c.g = nil
	return u()
}

type sectionCursor struct {
	data []byte
	pos  int
}

func (c *sectionCursor) next(name string) ([]byte, error) {
	if c.pos+8 > len(c.data) {
		return nil, fmt.Errorf("truncated %s section header at offset %d", name, c.pos)
	}
	l := binary.LittleEndian.Uint64(c.data[c.pos:])
	c.pos += 8
	if l > uint64(len(c.data)-c.pos) {
		return nil, fmt.Errorf("%s section length %d exceeds file", name, l)
	}
	payload := c.data[c.pos : c.pos+int(l)]
	c.pos += int(l)
	return payload, nil
}

// CSRFileOptions tunes OpenCSRFileOpt.
type CSRFileOptions struct {
	// Workers sizes the validation worker pool (0 = GOMAXPROCS). The
	// result — the graph and, for a corrupt file, which error is
	// reported — is identical at any count.
	Workers int
}

// OpenCSRFile maps path and returns the validated graph. On unix the file
// is mmap'd read-only (the adjacency and label columns alias the mapping);
// elsewhere it is read into memory. Every failure mode - short file, bad
// magic, version skew, checksum mismatch, malformed section - returns a
// descriptive error with the mapping already released.
func OpenCSRFile(path string) (*CSRFile, error) {
	return OpenCSRFileOpt(path, CSRFileOptions{})
}

// OpenCSRFileOpt is OpenCSRFile with the checksum and per-section
// validation sweeps spread over a worker pool: the body CRC is folded
// from fixed-size chunks via crc32Combine, and the offset-column and
// adjacency-row scans run as sharded tasks whose first error (by task
// index, i.e. serial validation order) is the one reported.
func OpenCSRFileOpt(path string, opts CSRFileOptions) (*CSRFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	size := st.Size()
	if size < csrHeaderSize {
		f.Close()
		return nil, fmt.Errorf("hin: csr file %s: truncated: %d bytes, need at least the %d-byte header", path, size, csrHeaderSize)
	}
	data, unmap, err := mmapFile(f, size)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("hin: csr file %s: %w", path, err)
	}
	g, err := parseCSRFile(data, opts.Workers)
	if err != nil {
		unmap() //hin:allow errdrop -- parse failure path: the parse error is the one worth surfacing
		return nil, fmt.Errorf("hin: csr file %s: %w", path, err)
	}
	return &CSRFile{g: g, unmap: unmap}, nil
}

// csrChecksumChunk is the fixed chunk width of the parallel body CRC.
// Boundaries depend only on the body length, so the folded result equals
// the one-pass checksum at any worker count.
const csrChecksumChunk = 4 << 20

// csrChecksum computes the CRC-32C of body, splitting it into fixed
// chunks across workers and folding the per-chunk checksums in chunk
// order with crc32Combine.
func csrChecksum(body []byte, workers int) uint32 {
	chunks := par.Shards(len(body), csrChecksumChunk)
	if chunks <= 1 || par.Workers(workers, chunks) <= 1 {
		return crc32.Checksum(body, castagnoli)
	}
	crcs := make([]uint32, chunks)
	par.Run(workers, chunks, func(_, i int) {
		lo, hi := par.Bounds(i, len(body), csrChecksumChunk)
		crcs[i] = crc32.Checksum(body[lo:hi], castagnoli)
	})
	crc := crcs[0]
	for i := 1; i < chunks; i++ {
		lo, hi := par.Bounds(i, len(body), csrChecksumChunk)
		crc = crc32Combine(crc, crcs[i], int64(hi-lo))
	}
	return crc
}

// csrAdjShardRows is how many adjacency rows one validation task strict-
// checks; boundaries depend only on the entity count.
const csrAdjShardRows = 1 << 16

func parseCSRFile(data []byte, workers int) (*CSRGraph, error) {
	if string(data[0:8]) != csrMagic {
		return nil, fmt.Errorf("bad magic %q, want %q", data[0:8], csrMagic)
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != csrVersion {
		return nil, fmt.Errorf("unsupported format version %d, want %d", v, csrVersion)
	}
	if sz := binary.LittleEndian.Uint64(data[16:24]); sz != uint64(len(data)) {
		return nil, fmt.Errorf("header records %d bytes but file has %d (truncated or padded)", sz, len(data))
	}
	want := binary.LittleEndian.Uint32(data[12:16])
	if got := csrChecksum(data[csrHeaderSize:], workers); got != want {
		return nil, fmt.Errorf("checksum mismatch: header %08x, body %08x", want, got)
	}

	cur := &sectionCursor{data: data, pos: csrHeaderSize}
	sj, err := cur.next("schema")
	if err != nil {
		return nil, err
	}
	var sd schemaJSON
	if err := json.Unmarshal(sj, &sd); err != nil {
		return nil, fmt.Errorf("schema section: %w", err)
	}
	schema, err := NewSchema(sd.EntityTypes, sd.LinkTypes)
	if err != nil {
		return nil, fmt.Errorf("schema section: %w", err)
	}

	meta, err := cur.next("meta")
	if err != nil {
		return nil, err
	}
	if len(meta) != 24 {
		return nil, fmt.Errorf("meta section: %d bytes, want 24", len(meta))
	}
	n64 := binary.LittleEndian.Uint64(meta[0:8])
	ltCount := binary.LittleEndian.Uint64(meta[8:16])
	setCount := binary.LittleEndian.Uint64(meta[16:24])
	if n64 > uint64(maxInt32) {
		return nil, fmt.Errorf("meta section: %d entities exceeds the int32 id space", n64)
	}
	n := int(n64)
	if int(ltCount) != schema.NumLinkTypes() {
		return nil, fmt.Errorf("meta section: %d link types but schema declares %d", ltCount, schema.NumLinkTypes())
	}

	// The walk below slices every section, runs the cheap structural
	// checks inline, and defers the O(bytes) scans to tasks. Tasks are
	// appended in serial validation order and the lowest-index error
	// wins, so a corrupt file reports the same error at any worker
	// count. Checks a later stage dereferences through (etype bytes
	// index the schema, rowOff columns bound the row slices) stay
	// inline so the tasks can't fault on garbage.
	var tasks []func() error

	g := &CSRGraph{schema: schema, n: n}
	if g.etype, err = cur.next("etype"); err != nil {
		return nil, err
	}
	if len(g.etype) != n {
		return nil, fmt.Errorf("etype section: %d bytes, want %d", len(g.etype), n)
	}
	for v := 0; v < n; v++ {
		if int(g.etype[v]) >= schema.NumEntityTypes() {
			return nil, fmt.Errorf("etype section: entity %d has unknown type %d", v, g.etype[v])
		}
	}

	if g.labelOff, err = cur.next("labelOff"); err != nil {
		return nil, err
	}
	if g.labelBlob, err = cur.next("labelBlob"); err != nil {
		return nil, err
	}
	tasks = append(tasks, func() error {
		return checkOffsets("labelOff", g.labelOff, n, uint64(len(g.labelBlob)))
	})

	dict, err := cur.next("attrDict")
	if err != nil {
		return nil, err
	}
	if len(dict)%8 != 0 {
		return nil, fmt.Errorf("attrDict section: length %d not a multiple of 8", len(dict))
	}
	g.attrDict = make([]int64, len(dict)/8)
	for i := range g.attrDict {
		g.attrDict[i] = int64(binary.LittleEndian.Uint64(dict[i*8:]))
	}
	if g.attrOff, err = cur.next("attrOff"); err != nil {
		return nil, err
	}
	if g.attrCodes, err = cur.next("attrCodes"); err != nil {
		return nil, err
	}
	if len(g.attrCodes)%4 != 0 {
		return nil, fmt.Errorf("attrCodes section: length %d not a multiple of 4", len(g.attrCodes))
	}
	tasks = append(tasks, func() error {
		return checkOffsets("attrOff", g.attrOff, n, uint64(len(g.attrCodes)/4))
	})
	tasks = append(tasks, func() error {
		for i := 0; i < len(g.attrCodes)/4; i++ {
			if code := binary.LittleEndian.Uint32(g.attrCodes[i*4:]); int(code) >= len(g.attrDict) {
				return fmt.Errorf("attrCodes section: code %d at index %d exceeds dictionary size %d", code, i, len(g.attrDict))
			}
		}
		return nil
	})
	tasks = append(tasks, func() error {
		if len(g.attrOff) != (n+1)*8 {
			return nil // the checkOffsets task reports the length
		}
		for v := 0; v < n; v++ {
			want := len(schema.EntityType(EntityTypeID(g.etype[v])).Attrs)
			if got := g.NumAttrs(EntityID(v)); got != want {
				return fmt.Errorf("attrOff section: entity %d has %d attrs, type %q declares %d",
					v, got, schema.EntityType(EntityTypeID(g.etype[v])).Name, want)
			}
		}
		return nil
	})

	setsPayload, err := cur.next("sets")
	if err != nil {
		return nil, err
	}
	if g.sets, err = parseSetColumns(setsPayload, schema, g.etype, n, int(setCount)); err != nil {
		return nil, err
	}

	// Adjacency: slice and offset-check every direction inline (the row
	// tasks slice dat through rowOff, so the column must be proven
	// sound first), then shard the strict row validation.
	L := schema.NumLinkTypes()
	g.fwd = make([]csrAdj, L)
	g.rev = make([]csrAdj, L)
	type adjPending struct {
		adj    csrAdj
		counts []int64
	}
	pending := make([]adjPending, 0, 2*L)
	for lt := 0; lt < L; lt++ {
		weighted := schema.LinkType(LinkTypeID(lt)).Weighted
		for dir := 0; dir < 2; dir++ {
			name := fmt.Sprintf("link %q fwd", schema.LinkType(LinkTypeID(lt)).Name)
			if dir == 1 {
				name = fmt.Sprintf("link %q rev", schema.LinkType(LinkTypeID(lt)).Name)
			}
			dat, err := cur.next(name + " dat")
			if err != nil {
				return nil, err
			}
			rowOff, err := cur.next(name + " rowOff")
			if err != nil {
				return nil, err
			}
			if err := checkOffsets(name+" rowOff", rowOff, n, uint64(len(dat))); err != nil {
				return nil, err
			}
			p := adjPending{
				adj:    csrAdj{rowOff: rowOff, dat: dat, weighted: weighted},
				counts: make([]int64, par.Shards(n, csrAdjShardRows)),
			}
			pending = append(pending, p)
			slot := len(pending) - 1
			for s := range p.counts {
				s := s
				tasks = append(tasks, func() error {
					lo, hi := par.Bounds(s, n, csrAdjShardRows)
					c := &pending[slot].adj
					var edges int64
					for v := lo; v < hi; v++ {
						deg, err := validateAdjRow(c.row(EntityID(v)), weighted, n)
						if err != nil {
							return fmt.Errorf("%s row %d: %w", name, v, err)
						}
						edges += int64(deg)
					}
					pending[slot].counts[s] = edges
					return nil
				})
			}
		}
	}
	trailing := len(data) - cur.pos

	var fe par.FirstErr
	par.Run(workers, len(tasks), func(_, i int) {
		fe.Set(i, tasks[i]())
	})
	if err := fe.Err(); err != nil {
		return nil, err
	}

	for i := range pending {
		var total int64
		for _, c := range pending[i].counts {
			total += c
		}
		pending[i].adj.count = total
		if i%2 == 0 {
			g.fwd[i/2] = pending[i].adj
		} else {
			g.rev[i/2] = pending[i].adj
		}
	}
	for lt := 0; lt < L; lt++ {
		if g.fwd[lt].count != g.rev[lt].count {
			name := schema.LinkType(LinkTypeID(lt)).Name
			return nil, fmt.Errorf("link %q: forward adjacency has %d edges, reverse %d", name, g.fwd[lt].count, g.rev[lt].count)
		}
	}
	if trailing != 0 {
		return nil, fmt.Errorf("%d trailing bytes after last section", trailing)
	}
	return g, nil
}

// checkOffsets validates an (n+1) x uint64 LE offset column: correct
// length, starts at 0, monotone non-decreasing, ends at end.
func checkOffsets(name string, raw []byte, n int, end uint64) error {
	if len(raw) != (n+1)*8 {
		return fmt.Errorf("%s section: %d bytes, want %d", name, len(raw), (n+1)*8)
	}
	prev := uint64(0)
	if first := binary.LittleEndian.Uint64(raw); first != 0 {
		return fmt.Errorf("%s section: first offset %d, want 0", name, first)
	}
	for v := 1; v <= n; v++ {
		o := binary.LittleEndian.Uint64(raw[v*8:])
		if o < prev {
			return fmt.Errorf("%s section: offset %d at entity %d below predecessor %d", name, o, v, prev)
		}
		prev = o
	}
	if prev != end {
		return fmt.Errorf("%s section: final offset %d, want %d", name, prev, end)
	}
	return nil
}

func parseSetColumns(payload []byte, schema *Schema, etype []byte, n, count int) (map[string]*setCol, error) {
	sets := make(map[string]*setCol, count)
	pos := 0
	u64 := func() (uint64, error) {
		if pos+8 > len(payload) {
			return 0, errors.New("sets section: truncated")
		}
		v := binary.LittleEndian.Uint64(payload[pos:])
		pos += 8
		return v, nil
	}
	prevName := ""
	for i := 0; i < count; i++ {
		nameLen, err := u64()
		if err != nil {
			return nil, err
		}
		if nameLen > uint64(len(payload)-pos) {
			return nil, fmt.Errorf("sets section: name length %d exceeds section", nameLen)
		}
		name := string(payload[pos : pos+int(nameLen)])
		pos += int(nameLen)
		if i > 0 && name <= prevName {
			return nil, fmt.Errorf("sets section: name %q out of order after %q", name, prevName)
		}
		prevName = name
		declared := false
		for t := 0; t < schema.NumEntityTypes(); t++ {
			if schema.SetAttrIndex(EntityTypeID(t), name) >= 0 {
				declared = true
			}
		}
		if !declared {
			return nil, fmt.Errorf("sets section: set %q not declared by any entity type", name)
		}
		if (n+1)*8 > len(payload)-pos {
			return nil, fmt.Errorf("sets section: set %q offsets truncated", name)
		}
		col := &setCol{off: make([]int64, n+1)}
		for v := 0; v <= n; v++ {
			col.off[v] = int64(binary.LittleEndian.Uint64(payload[pos+v*8:]))
		}
		pos += (n + 1) * 8
		valCount, err := u64()
		if err != nil {
			return nil, err
		}
		if col.off[0] != 0 {
			return nil, fmt.Errorf("sets section: set %q first offset %d, want 0", name, col.off[0])
		}
		for v := 0; v < n; v++ {
			if col.off[v+1] < col.off[v] {
				return nil, fmt.Errorf("sets section: set %q offsets decrease at entity %d", name, v+1)
			}
			if col.off[v+1] > col.off[v] && schema.SetAttrIndex(EntityTypeID(etype[v]), name) < 0 {
				return nil, fmt.Errorf("sets section: entity %d carries set %q its type does not declare", v, name)
			}
		}
		if col.off[n] != int64(valCount) {
			return nil, fmt.Errorf("sets section: set %q final offset %d, want %d values", name, col.off[n], valCount)
		}
		if valCount*4 > uint64(len(payload)-pos) {
			return nil, fmt.Errorf("sets section: set %q values truncated", name)
		}
		col.data = make([]int32, valCount)
		for j := range col.data {
			col.data[j] = int32(binary.LittleEndian.Uint32(payload[pos+j*4:]))
		}
		pos += int(valCount) * 4
		for v := 0; v < n; v++ {
			row := col.data[col.off[v]:col.off[v+1]]
			for j := 1; j < len(row); j++ {
				if row[j] < row[j-1] {
					return nil, fmt.Errorf("sets section: set %q values of entity %d not sorted", name, v)
				}
			}
		}
		sets[name] = col
	}
	if pos != len(payload) {
		return nil, fmt.Errorf("sets section: %d trailing bytes", len(payload)-pos)
	}
	return sets, nil
}
