package hin

import (
	"encoding/binary"
	"errors"
)

// Adjacency row codec for the compact CSR backend.
//
// One row (the out- or in-neighborhood of one entity via one link type)
// encodes as:
//
//	uvarint(degree)
//	repeat degree times:
//	    uvarint(delta)          delta = to - prev, prev starts at -1
//	    uvarint(strength)       only for weighted link types
//
// Destinations are sorted strictly ascending, so with prev = -1 every
// delta is >= 1 (the first delta is to[0]+1) and a zero delta always
// signals corruption. Strengths are in [1, 1<<31-1] by Builder/CSRWriter
// validation. The strict decoder (decodeAdjRow) validates everything and
// returns errors; the trusting decoder (decodeAdjRowFast) is the hot-path
// form used only on rows the loader has already strict-decoded once.

var (
	errAdjTruncated = errors.New("hin: adjacency row truncated")
	errAdjDegree    = errors.New("hin: adjacency row degree exceeds entity count")
	errAdjOrder     = errors.New("hin: adjacency row destinations not strictly ascending")
	errAdjRange     = errors.New("hin: adjacency row destination out of range")
	errAdjWeight    = errors.New("hin: adjacency row strength out of range")
	errAdjTrailing  = errors.New("hin: adjacency row has trailing bytes")
)

// appendAdjRow appends the encoded row (tos, ws) to dst and returns the
// extended slice. tos must be sorted strictly ascending with every value
// >= 0; for unweighted rows ws is ignored (pass nil).
func appendAdjRow(dst []byte, tos []EntityID, ws []int32, weighted bool) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(tos)))
	prev := int64(-1)
	for i, to := range tos {
		dst = binary.AppendUvarint(dst, uint64(int64(to)-prev))
		prev = int64(to)
		if weighted {
			dst = binary.AppendUvarint(dst, uint64(ws[i]))
		}
	}
	return dst
}

// decodeAdjRow strictly decodes one row occupying exactly dat, appending
// destinations and strengths into buf and returning views. numEntities
// bounds destination ids. Unweighted rows get strength 1. Any structural
// defect - truncation, non-ascending order, out-of-range id or strength,
// trailing bytes - returns an error; the function never panics on
// arbitrary input.
func decodeAdjRow(dat []byte, weighted bool, numEntities int, buf *EdgeBuf) ([]EntityID, []int32, error) {
	ids := buf.IDs[:0]
	ws := buf.Ws[:0]
	deg, p := binary.Uvarint(dat)
	if p <= 0 {
		return nil, nil, errAdjTruncated
	}
	if deg > uint64(numEntities) {
		return nil, nil, errAdjDegree
	}
	prev := int64(-1)
	for i := uint64(0); i < deg; i++ {
		delta, n := binary.Uvarint(dat[p:])
		if n <= 0 {
			return nil, nil, errAdjTruncated
		}
		p += n
		if delta == 0 || delta > uint64(numEntities) {
			return nil, nil, errAdjOrder
		}
		to := prev + int64(delta)
		if to >= int64(numEntities) {
			return nil, nil, errAdjRange
		}
		prev = to
		w := int64(1)
		if weighted {
			uw, n := binary.Uvarint(dat[p:])
			if n <= 0 {
				return nil, nil, errAdjTruncated
			}
			p += n
			if uw == 0 || uw > uint64(maxInt32) {
				return nil, nil, errAdjWeight
			}
			w = int64(uw)
		}
		ids = append(ids, EntityID(to))
		ws = append(ws, int32(w))
	}
	if p != len(dat) {
		return nil, nil, errAdjTrailing
	}
	buf.IDs = ids
	buf.Ws = ws
	return ids, ws, nil
}

// validateAdjRow strict-checks one encoded row occupying exactly dat
// without materializing destinations, returning the degree. It accepts
// exactly the rows decodeAdjRow accepts and returns the same sentinel
// errors — the loader's bulk validation path, which only needs
// yes/no + degree, skips the EdgeBuf stores entirely.
func validateAdjRow(dat []byte, weighted bool, numEntities int) (int, error) {
	deg, p := binary.Uvarint(dat)
	if p <= 0 {
		return 0, errAdjTruncated
	}
	if deg > uint64(numEntities) {
		return 0, errAdjDegree
	}
	prev := int64(-1)
	for i := uint64(0); i < deg; i++ {
		delta, n := binary.Uvarint(dat[p:])
		if n <= 0 {
			return 0, errAdjTruncated
		}
		p += n
		if delta == 0 || delta > uint64(numEntities) {
			return 0, errAdjOrder
		}
		to := prev + int64(delta)
		if to >= int64(numEntities) {
			return 0, errAdjRange
		}
		prev = to
		if weighted {
			uw, n := binary.Uvarint(dat[p:])
			if n <= 0 {
				return 0, errAdjTruncated
			}
			p += n
			if uw == 0 || uw > uint64(maxInt32) {
				return 0, errAdjWeight
			}
		}
	}
	if p != len(dat) {
		return 0, errAdjTrailing
	}
	return int(deg), nil
}

// uvarintAt decodes a uvarint from dat starting at p, returning the value
// and the position just past it. The caller guarantees a valid encoding
// (loader-validated data); out-of-range p would panic via bounds checks
// rather than read wild memory.
//
//hin:hot
func uvarintAt(dat []byte, p int) (uint64, int) {
	if b := dat[p]; b < 0x80 {
		return uint64(b), p + 1
	}
	var x uint64
	var s uint
	for {
		b := dat[p]
		p++
		if b < 0x80 {
			return x | uint64(b)<<s, p
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
}

// decodeAdjRowFast decodes a loader-validated row into buf, returning
// views. It trusts the encoding (no error paths) and is the per-query
// decode used by the attack's scratch frames: buf's capacity amortizes to
// the maximum row degree, after which decoding allocates nothing.
//
//hin:hot
func decodeAdjRowFast(dat []byte, weighted bool, buf *EdgeBuf) ([]EntityID, []int32) {
	ids := buf.IDs[:0]
	ws := buf.Ws[:0]
	deg, p := uvarintAt(dat, 0)
	prev := int64(-1)
	if weighted {
		for i := uint64(0); i < deg; i++ {
			delta, np := uvarintAt(dat, p)
			uw, np2 := uvarintAt(dat, np)
			p = np2
			prev += int64(delta)
			ids = append(ids, EntityID(prev))
			ws = append(ws, int32(uw))
		}
	} else {
		for i := uint64(0); i < deg; i++ {
			delta, np := uvarintAt(dat, p)
			p = np
			prev += int64(delta)
			ids = append(ids, EntityID(prev))
			ws = append(ws, 1)
		}
	}
	buf.IDs = ids
	buf.Ws = ws
	return ids, ws
}

// adjRowDegree returns the degree of an encoded row without decoding it.
//
//hin:hot
func adjRowDegree(dat []byte) int {
	deg, _ := uvarintAt(dat, 0)
	return int(deg)
}
