package hin

import (
	"math"
	"testing"
)

func targetSchema4(t *testing.T) *Schema {
	t.Helper()
	return MustSchema(
		[]EntityType{{Name: "User", Attrs: []string{"yob"}, SetAttrs: []string{"tags"}}},
		[]LinkType{
			{Name: "follow", From: "User", To: "User"},
			{Name: "mention", From: "User", To: "User", Weighted: true},
			{Name: "retweet", From: "User", To: "User", Weighted: true},
			{Name: "comment", From: "User", To: "User", Weighted: true},
		},
	)
}

func TestDensityEquation4(t *testing.T) {
	s := targetSchema4(t)
	b := NewBuilder(s)
	n := 10
	for i := 0; i < n; i++ {
		b.AddEntity(0, "", int64(i))
	}
	// 18 edges over 4 link types, no self-loop-allowing types:
	// denominator = 4 * 10 * 9 = 360.
	added := 0
	for lt := 0; lt < 3 && added < 18; lt++ {
		for i := 0; i < n && added < 18; i++ {
			j := (i + lt + 1) % n
			if i == j {
				continue
			}
			if err := b.AddEdge(LinkTypeID(lt), EntityID(i), EntityID(j), 1); err != nil {
				t.Fatal(err)
			}
			added++
		}
	}
	g, _ := b.Build()
	d, err := Density(g)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(added) / 360.0
	if math.Abs(d-want) > 1e-12 {
		t.Fatalf("density = %g, want %g", d, want)
	}
}

func TestDensityWithSelfLinkTypes(t *testing.T) {
	s := MustSchema(
		[]EntityType{{Name: "A"}},
		[]LinkType{
			{Name: "x", From: "A", To: "A", AllowSelf: true, Weighted: true},
			{Name: "y", From: "A", To: "A"},
		},
	)
	b := NewBuilder(s)
	for i := 0; i < 5; i++ {
		b.AddEntity(0, "")
	}
	if err := b.AddEdge(0, 2, 2, 3); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 0, 1, 1); err != nil {
		t.Fatal(err)
	}
	g, _ := b.Build()
	d, err := Density(g)
	if err != nil {
		t.Fatal(err)
	}
	// m=1, |L|=2: denominator = 1*25 + 1*20 = 45, edges = 2.
	want := 2.0 / 45.0
	if math.Abs(d-want) > 1e-12 {
		t.Fatalf("density = %g, want %g", d, want)
	}
}

func TestDensityErrors(t *testing.T) {
	s := MustSchema(
		[]EntityType{{Name: "A"}, {Name: "B"}},
		[]LinkType{{Name: "x", From: "A", To: "B"}},
	)
	b := NewBuilder(s)
	b.AddEntity(0, "")
	b.AddEntity(1, "")
	g, _ := b.Build()
	if _, err := Density(g); err == nil {
		t.Fatal("cross-type link density accepted")
	}

	b2 := NewBuilder(userSchema(t))
	b2.AddEntity(0, "", 1, 2)
	g2, _ := b2.Build()
	if _, err := Density(g2); err == nil {
		t.Fatal("single-entity density accepted")
	}
}

func TestMaxEdges(t *testing.T) {
	s := targetSchema4(t)
	if got := MaxEdges(s, 1000); got != 4*1000*999 {
		t.Fatalf("MaxEdges = %d", got)
	}
}

func TestOutDegreeStats(t *testing.T) {
	s := targetSchema4(t)
	b := NewBuilder(s)
	for i := 0; i < 4; i++ {
		b.AddEntity(0, "", int64(i))
	}
	// degrees via follow: 3, 1, 0, 0
	mustEdge := func(f, to EntityID) {
		if err := b.AddEdge(0, f, to, 1); err != nil {
			t.Fatal(err)
		}
	}
	mustEdge(0, 1)
	mustEdge(0, 2)
	mustEdge(0, 3)
	mustEdge(1, 0)
	g, _ := b.Build()
	st := OutDegreeStats(g, 0)
	if st.Min != 0 || st.Max != 3 || math.Abs(st.Mean-1.0) > 1e-12 {
		t.Fatalf("stats = %+v", st)
	}
	if st.P50 != 0 || st.P99 != 3 {
		t.Fatalf("percentiles = %+v", st)
	}
}

func TestCardinalities(t *testing.T) {
	s := targetSchema4(t)
	b := NewBuilder(s)
	years := []int64{1980, 1980, 1990, 2000}
	for i, y := range years {
		id := b.AddEntity(0, "", y)
		b.SetSet("tags", id, make([]int32, i%2+1)) // sizes 1,2,1,2
	}
	if err := b.AddEdge(1, 0, 1, 5); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 1, 2, 5); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 2, 3, 7); err != nil {
		t.Fatal(err)
	}
	g, _ := b.Build()
	if c := AttrCardinality(g, 0, 0); c != 3 {
		t.Fatalf("yob cardinality = %d", c)
	}
	if c := SetSizeCardinality(g, 0, "tags"); c != 2 {
		t.Fatalf("tag-size cardinality = %d", c)
	}
	if c := StrengthCardinality(g, 1); c != 2 {
		t.Fatalf("strength cardinality = %d", c)
	}
	if c := StrengthCardinality(g, 2); c != 0 {
		t.Fatalf("empty link type cardinality = %d", c)
	}
}

func TestMajorityStrength(t *testing.T) {
	s := targetSchema4(t)
	b := NewBuilder(s)
	for i := 0; i < 5; i++ {
		b.AddEntity(0, "", 0)
	}
	weights := []int32{7, 7, 7, 2, 5}
	k := 0
	for i := 0; i < 5 && k < len(weights); i++ {
		for j := 0; j < 5 && k < len(weights); j++ {
			if i == j {
				continue
			}
			if err := b.AddEdge(1, EntityID(i), EntityID(j), weights[k]); err != nil {
				t.Fatal(err)
			}
			k++
		}
	}
	g, _ := b.Build()
	w, c, ok := MajorityStrength(g, 1)
	if !ok || w != 7 || c != 3 {
		t.Fatalf("majority = %d x%d %v", w, c, ok)
	}
	if _, _, ok := MajorityStrength(g, 2); ok {
		t.Fatal("empty link type should report no majority")
	}
}

func TestMajorityStrengthTieBreaksLow(t *testing.T) {
	s := targetSchema4(t)
	b := NewBuilder(s)
	for i := 0; i < 3; i++ {
		b.AddEntity(0, "", 0)
	}
	if err := b.AddEdge(1, 0, 1, 9); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 1, 2, 4); err != nil {
		t.Fatal(err)
	}
	g, _ := b.Build()
	w, c, ok := MajorityStrength(g, 1)
	if !ok || c != 1 || w != 4 {
		t.Fatalf("tie must break to the smaller strength: %d x%d %v", w, c, ok)
	}
}

func TestEntitiesOfType(t *testing.T) {
	s := MustSchema(
		[]EntityType{{Name: "U"}, {Name: "T"}},
		[]LinkType{},
	)
	b := NewBuilder(s)
	b.AddEntity(0, "")
	b.AddEntity(1, "")
	b.AddEntity(0, "")
	g, _ := b.Build()
	us := g.EntitiesOfType(0)
	if len(us) != 2 || us[0] != 0 || us[1] != 2 {
		t.Fatalf("EntitiesOfType(U) = %v", us)
	}
	ts := g.EntitiesOfType(1)
	if len(ts) != 1 || ts[0] != 1 {
		t.Fatalf("EntitiesOfType(T) = %v", ts)
	}
}
