package baseline

import (
	"fmt"
	"sort"

	"github.com/hinpriv/dehin/internal/hin"
	"github.com/hinpriv/dehin/internal/randx"
)

// This file implements the active ("sybil") attack of Backstrom, Dwork and
// Kleinberg (Section 2.2): before the dataset is anonymized, the adversary
// creates a small gang of fake accounts wired together by a random
// pattern, attaches a distinct sybil subset to each target account, and
// after the release recovers the gang from the anonymized graph by its
// degrees-plus-pattern fingerprint, reading the targets off the recovered
// gang's out-edges.
//
// DeHIN's whole point is that none of this machinery is necessary in a
// heterogeneous network - and that the gang is structurally conspicuous:
// hin.SourceComponents finds it, as the tests demonstrate.

// SybilConfig parameterizes the planted gang.
type SybilConfig struct {
	// NumSybils is the gang size (Backstrom et al. need O(log n)).
	NumSybils int
	// Targets are the accounts to be re-identified, as entity ids in the
	// pre-release graph.
	Targets []hin.EntityID
	// LinkType is the link type the gang uses (follow in the t.qq
	// schema; it must allow User->User edges).
	LinkType hin.LinkTypeID
	// InternalProb is the density of the random internal pattern.
	InternalProb float64
	// Seed drives pattern randomness.
	Seed uint64
}

// SybilPlan is the adversary's secret: the internal pattern and which
// sybils point at which target. Indexes are gang-local (0..NumSybils-1).
type SybilPlan struct {
	// Sybils are the gang's entity ids in the planted (pre-anonymization)
	// graph, in gang order.
	Sybils []hin.EntityID
	// Internal[i][j] records the internal edge i -> j.
	Internal [][]bool
	// TargetSets[t] is the sybil subset attached to Targets[t]; subsets
	// are distinct across targets, which is what makes targets readable.
	TargetSets [][]int
	// Targets echoes the configured targets.
	Targets []hin.EntityID
	// LinkType echoes the configured link type.
	LinkType hin.LinkTypeID
}

// PlantSybils returns a copy of g with the gang added (sybils are new
// entities appended after the originals) plus the plan needed for
// recovery. Sybil profiles are copied from random existing users so
// attribute-level screening cannot reject them outright.
func PlantSybils(g *hin.Graph, cfg SybilConfig) (*hin.Graph, *SybilPlan, error) {
	k := cfg.NumSybils
	if k < 2 {
		return nil, nil, fmt.Errorf("baseline: gang needs >= 2 sybils, got %d", k)
	}
	if len(cfg.Targets) == 0 {
		return nil, nil, fmt.Errorf("baseline: no targets")
	}
	if cfg.InternalProb <= 0 || cfg.InternalProb >= 1 {
		return nil, nil, fmt.Errorf("baseline: InternalProb must be in (0,1)")
	}
	if int(cfg.LinkType) >= g.Schema().NumLinkTypes() {
		return nil, nil, fmt.Errorf("baseline: link type %d out of range", cfg.LinkType)
	}
	// Each target needs a distinct non-empty sybil subset.
	if maxSubsets := (int64(1) << uint(min(k, 62))) - 1; int64(len(cfg.Targets)) > maxSubsets {
		return nil, nil, fmt.Errorf("baseline: %d targets need more than %d distinct subsets",
			len(cfg.Targets), maxSubsets)
	}
	for _, t := range cfg.Targets {
		if t < 0 || int(t) >= g.NumEntities() {
			return nil, nil, fmt.Errorf("baseline: target %d out of range", t)
		}
	}
	rng := randx.New(cfg.Seed)
	schema := g.Schema()
	n := g.NumEntities()
	b := hin.NewBuilder(schema)
	for i := 0; i < n; i++ {
		id := hin.EntityID(i)
		b.AddEntity(g.EntityType(id), g.Label(id), g.Attrs(id)...)
		for _, sa := range schema.EntityType(g.EntityType(id)).SetAttrs {
			if s := g.Set(sa, id); len(s) > 0 {
				b.SetSet(sa, id, s)
			}
		}
	}
	userType, _ := schema.EntityTypeID(schema.LinkType(cfg.LinkType).From)
	plan := &SybilPlan{
		Targets:  append([]hin.EntityID(nil), cfg.Targets...),
		LinkType: cfg.LinkType,
	}
	for i := 0; i < k; i++ {
		// Clone a random organic user's profile.
		src := hin.EntityID(rng.Intn(n))
		for g.EntityType(src) != userType {
			src = hin.EntityID(rng.Intn(n))
		}
		id := b.AddEntity(userType, fmt.Sprintf("sybil%02d", i), g.Attrs(src)...)
		plan.Sybils = append(plan.Sybils, id)
	}
	// Internal random pattern.
	plan.Internal = make([][]bool, k)
	for i := range plan.Internal {
		plan.Internal[i] = make([]bool, k)
	}
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if i != j && rng.Bool(cfg.InternalProb) {
				plan.Internal[i][j] = true
				if err := b.AddEdge(cfg.LinkType, plan.Sybils[i], plan.Sybils[j], 1); err != nil {
					return nil, nil, err
				}
			}
		}
	}
	// Distinct subsets per target.
	seen := make(map[string]bool)
	for _, t := range cfg.Targets {
		var subset []int
		for {
			subset = subset[:0]
			for i := 0; i < k; i++ {
				if rng.Bool(0.5) {
					subset = append(subset, i)
				}
			}
			if len(subset) == 0 {
				continue
			}
			key := fmt.Sprint(subset)
			if !seen[key] {
				seen[key] = true
				break
			}
		}
		plan.TargetSets = append(plan.TargetSets, append([]int(nil), subset...))
		for _, i := range subset {
			if err := b.AddEdge(cfg.LinkType, plan.Sybils[i], t, 1); err != nil {
				return nil, nil, err
			}
		}
	}
	pg, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return pg, plan, nil
}

// RecoverSybils locates the gang inside the released (anonymized) graph by
// backtracking over nodes whose per-type in/out degrees match each sybil's
// known fingerprint and whose mutual edges realize the internal pattern.
// It returns the gang's entity ids in the released graph, in gang order,
// or an error when zero or multiple consistent embeddings exist (the
// attack then fails, as Backstrom et al. discuss for small gangs).
func RecoverSybils(released *hin.Graph, plan *SybilPlan) ([]hin.EntityID, error) {
	k := len(plan.Sybils)
	lt := plan.LinkType
	// Known exact degrees of each sybil in the released graph.
	outDeg := make([]int, k)
	inDeg := make([]int, k)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if plan.Internal[i][j] {
				outDeg[i]++
				inDeg[j]++
			}
		}
	}
	for _, subset := range plan.TargetSets {
		for _, i := range subset {
			outDeg[i]++
		}
	}
	// Candidate pool per gang slot.
	cands := make([][]hin.EntityID, k)
	for v := 0; v < released.NumEntities(); v++ {
		id := hin.EntityID(v)
		o := released.OutDegree(lt, id)
		in := released.InDegree(lt, id)
		for i := 0; i < k; i++ {
			if o == outDeg[i] && in == inDeg[i] {
				cands[i] = append(cands[i], id)
			}
		}
	}
	// Assign scarcest slots first.
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return len(cands[order[a]]) < len(cands[order[b]]) })

	assign := make([]hin.EntityID, k)
	used := make(map[hin.EntityID]bool, k)
	var found [][]hin.EntityID
	var bt func(pos int)
	bt = func(pos int) {
		if len(found) > 1 {
			return
		}
		if pos == k {
			found = append(found, append([]hin.EntityID(nil), assign...))
			return
		}
		slot := order[pos]
		for _, c := range cands[slot] {
			if used[c] {
				continue
			}
			ok := true
			for prev := 0; prev < pos; prev++ {
				p := order[prev]
				if _, has := released.FindEdge(lt, c, assign[p]); has != plan.Internal[slot][p] {
					ok = false
					break
				}
				if _, has := released.FindEdge(lt, assign[p], c); has != plan.Internal[p][slot] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			assign[slot] = c
			used[c] = true
			bt(pos + 1)
			used[c] = false
			if len(found) > 1 {
				return
			}
		}
	}
	bt(0)
	switch len(found) {
	case 0:
		return nil, fmt.Errorf("baseline: sybil gang not found in released graph")
	case 1:
		return found[0], nil
	default:
		return nil, fmt.Errorf("baseline: sybil pattern is ambiguous in released graph")
	}
}

// IdentifyTargets reads the targets off the recovered gang: target t's
// identity is the set of released entities that receive edges from
// exactly plan.TargetSets[t]'s sybils (and no other gang member).
// Result[t] is the candidate list for plan.Targets[t]; a singleton means
// the target is re-identified.
func IdentifyTargets(released *hin.Graph, plan *SybilPlan, gang []hin.EntityID) ([][]hin.EntityID, error) {
	if len(gang) != len(plan.Sybils) {
		return nil, fmt.Errorf("baseline: gang size %d != plan %d", len(gang), len(plan.Sybils))
	}
	lt := plan.LinkType
	gangSet := make(map[hin.EntityID]int, len(gang))
	for i, v := range gang {
		gangSet[v] = i
	}
	// For each non-gang entity, which gang members point at it?
	incoming := make(map[hin.EntityID][]int)
	for i, s := range gang {
		tos, _ := released.OutEdges(lt, s)
		for _, to := range tos {
			if _, isGang := gangSet[to]; isGang {
				continue
			}
			incoming[to] = append(incoming[to], i)
		}
	}
	out := make([][]hin.EntityID, len(plan.TargetSets))
	for ti, subset := range plan.TargetSets {
		want := fmt.Sprint(subset)
		for v, got := range incoming {
			sort.Ints(got)
			if fmt.Sprint(got) == want {
				out[ti] = append(out[ti], v)
			}
		}
		sort.Slice(out[ti], func(a, b int) bool { return out[ti][a] < out[ti][b] })
	}
	return out, nil
}

// DetectSybilGangs is the defender's counter: planted gangs are source
// strongly-connected components (nobody organic links into them), so they
// stand out structurally. It returns the suspicious components of size
// 2..maxGang whose internal link density (via any type) is at least
// minDensity.
func DetectSybilGangs(g *hin.Graph, maxGang int, minDensity float64) [][]hin.EntityID {
	var out [][]hin.EntityID
	for _, comp := range hin.SourceComponents(g, 2, maxGang) {
		inComp := make(map[hin.EntityID]bool, len(comp))
		for _, v := range comp {
			inComp[v] = true
		}
		var internal int64
		for _, v := range comp {
			for lt := 0; lt < g.Schema().NumLinkTypes(); lt++ {
				tos, _ := g.OutEdges(hin.LinkTypeID(lt), v)
				for _, to := range tos {
					if inComp[to] {
						internal++
					}
				}
			}
		}
		max := int64(len(comp)) * int64(len(comp)-1)
		if max > 0 && float64(internal)/float64(max) >= minDensity {
			out = append(out, comp)
		}
	}
	return out
}
