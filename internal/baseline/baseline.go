// Package baseline implements the prior-work attacks the paper positions
// DeHIN against (Section 2.2):
//
//   - ProfileOnly - the relational micro-data attack of Narayanan-Shmatikov
//     2008 transplanted to this setting: match on attribute information
//     alone, ignoring the graph. Equivalent to DeHIN at distance 0.
//   - Propagation - a Narayanan-Shmatikov 2009 style structural attack:
//     starting from pre-matched seed pairs, iteratively map target nodes to
//     auxiliary nodes by scoring how many already-mapped neighbors agree,
//     accepting a mapping only when its score stands out (eccentricity
//     test). Unlike DeHIN it needs seeds, uses no attribute or link-type
//     information beyond adjacency, and degrades on small targets - which
//     is precisely the gap the paper identifies.
package baseline

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"github.com/hinpriv/dehin/internal/hin"
)

// ProfileOnly returns, for each target entity, the auxiliary entities whose
// declared profile attributes match exactly. It is the paper's
// "utilizing attribute information of micro-data" strawman.
func ProfileOnly(target, aux *hin.Graph, attrs []int) ([][]hin.EntityID, error) {
	for _, ai := range attrs {
		if ai < 0 {
			return nil, fmt.Errorf("baseline: negative attribute index %d", ai)
		}
	}
	type key string
	index := make(map[key][]hin.EntityID)
	enc := func(g *hin.Graph, v hin.EntityID) (key, error) {
		var b []byte
		for _, ai := range attrs {
			if ai >= g.NumAttrs(v) {
				return "", fmt.Errorf("baseline: attr %d out of range", ai)
			}
			x := g.Attr(v, ai)
			for i := 0; i < 8; i++ {
				b = append(b, byte(x))
				x >>= 8
			}
		}
		return key(b), nil
	}
	for v := 0; v < aux.NumEntities(); v++ {
		k, err := enc(aux, hin.EntityID(v))
		if err != nil {
			return nil, err
		}
		index[k] = append(index[k], hin.EntityID(v))
	}
	out := make([][]hin.EntityID, target.NumEntities())
	for v := 0; v < target.NumEntities(); v++ {
		k, err := enc(target, hin.EntityID(v))
		if err != nil {
			return nil, err
		}
		out[v] = index[k]
	}
	return out, nil
}

// ProfileOnlyGrowing is ProfileOnly under the paper's time-gap threat
// model: exactAttrs must be equal, growAttrs may only have grown
// (auxiliary >= target). This is the attribute-only attack on equal
// footing with DeHIN's growth-tolerant matchers - exactly DeHIN at
// distance 0.
func ProfileOnlyGrowing(target, aux *hin.Graph, exactAttrs, growAttrs []int) ([][]hin.EntityID, error) {
	for _, ai := range append(append([]int(nil), exactAttrs...), growAttrs...) {
		if ai < 0 {
			return nil, fmt.Errorf("baseline: negative attribute index %d", ai)
		}
	}
	// Validate attribute indices up front (on the first entities), then
	// fan the scan out across targets - it is a pure read.
	if target.NumEntities() > 0 && aux.NumEntities() > 0 {
		for _, ai := range append(append([]int(nil), exactAttrs...), growAttrs...) {
			if ai >= target.NumAttrs(0) || ai >= aux.NumAttrs(0) {
				return nil, fmt.Errorf("baseline: attr %d out of range", ai)
			}
		}
	}
	out := make([][]hin.EntityID, target.NumEntities())
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	next := make(chan int)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tv := range next {
				for av := 0; av < aux.NumEntities(); av++ {
					ok := true
					for _, ai := range exactAttrs {
						if target.Attr(hin.EntityID(tv), ai) != aux.Attr(hin.EntityID(av), ai) {
							ok = false
							break
						}
					}
					if ok {
						for _, ai := range growAttrs {
							if aux.Attr(hin.EntityID(av), ai) < target.Attr(hin.EntityID(tv), ai) {
								ok = false
								break
							}
						}
					}
					if ok {
						out[tv] = append(out[tv], hin.EntityID(av))
					}
				}
			}
		}()
	}
	for tv := 0; tv < target.NumEntities(); tv++ {
		next <- tv
	}
	close(next)
	wg.Wait()
	return out, nil
}

// PropagationConfig parameterizes the seed-and-propagate attack.
type PropagationConfig struct {
	// Seeds maps target entities to their known auxiliary counterparts -
	// the attack's bootstrap. NS09 obtains these from re-identified
	// cliques; here the experiment supplies them.
	Seeds map[hin.EntityID]hin.EntityID
	// Theta is the eccentricity threshold: a candidate is accepted only
	// if its score exceeds the runner-up by at least Theta standard
	// deviations. NS09 uses ~0.5.
	Theta float64
	// MaxRounds bounds the propagation sweeps.
	MaxRounds int
}

// PropagationResult is the mapping the attack converged to.
type PropagationResult struct {
	// Mapping[tv] is the auxiliary entity chosen for target tv, or
	// hin.NoEntity if unmapped.
	Mapping []hin.EntityID
	// Rounds is how many sweeps ran.
	Rounds int
}

// Propagation runs the structural attack. Both graphs must share a schema;
// adjacency is used undirected and untyped (union over all link types), as
// in the original attack on homogeneous social graphs.
func Propagation(target, aux *hin.Graph, cfg PropagationConfig) (*PropagationResult, error) {
	if cfg.Theta < 0 {
		return nil, fmt.Errorf("baseline: negative Theta")
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 10
	}
	tn, an := target.NumEntities(), aux.NumEntities()
	mapping := make([]hin.EntityID, tn)
	mapped := make([]bool, an) // auxiliary side, to keep the mapping injective
	for i := range mapping {
		mapping[i] = hin.NoEntity
	}
	for tv, av := range cfg.Seeds {
		if int(tv) >= tn || int(av) >= an || tv < 0 || av < 0 {
			return nil, fmt.Errorf("baseline: seed (%d,%d) out of range", tv, av)
		}
		mapping[tv] = av
		mapped[av] = true
	}

	tAdj := undirectedAdj(target)
	aAdj := undirectedAdj(aux)

	res := &PropagationResult{}
	for round := 0; round < cfg.MaxRounds; round++ {
		changed := false
		for tv := 0; tv < tn; tv++ {
			if mapping[tv] != hin.NoEntity {
				continue
			}
			scores := make(map[hin.EntityID]float64)
			for _, tb := range tAdj[tv] {
				am := mapping[tb]
				if am == hin.NoEntity {
					continue
				}
				// Every auxiliary neighbor of the mapped image is a
				// candidate; normalize by its degree so hubs don't win by
				// volume.
				for _, ab := range aAdj[am] {
					if mapped[ab] {
						continue
					}
					scores[ab] += 1 / math.Sqrt(float64(len(aAdj[ab]))+1)
				}
			}
			best, ok := pickEccentric(scores, cfg.Theta)
			if !ok {
				continue
			}
			// Reverse check: run the same scoring from the auxiliary
			// side; accept only if it picks tv back.
			if !reverseAgrees(tv, best, mapping, mapped, tAdj, aAdj, cfg.Theta) {
				continue
			}
			mapping[tv] = best
			mapped[best] = true
			changed = true
		}
		res.Rounds = round + 1
		if !changed {
			break
		}
	}
	res.Mapping = mapping
	return res, nil
}

// undirectedAdj merges all link types in both directions into plain
// adjacency lists (deduplicated).
func undirectedAdj(g *hin.Graph) [][]hin.EntityID {
	n := g.NumEntities()
	adj := make([][]hin.EntityID, n)
	for lt := 0; lt < g.Schema().NumLinkTypes(); lt++ {
		for v := 0; v < n; v++ {
			tos, _ := g.OutEdges(hin.LinkTypeID(lt), hin.EntityID(v))
			for _, to := range tos {
				adj[v] = append(adj[v], to)
				adj[to] = append(adj[to], hin.EntityID(v))
			}
		}
	}
	for v := range adj {
		sort.Slice(adj[v], func(i, j int) bool { return adj[v][i] < adj[v][j] })
		adj[v] = dedupSorted(adj[v])
	}
	return adj
}

func dedupSorted(s []hin.EntityID) []hin.EntityID {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// pickEccentric returns the top-scoring candidate if its margin over the
// runner-up exceeds theta standard deviations of the score distribution.
func pickEccentric(scores map[hin.EntityID]float64, theta float64) (hin.EntityID, bool) {
	if len(scores) == 0 {
		return hin.NoEntity, false
	}
	var best, second float64
	bestID := hin.NoEntity
	var sum, sumSq float64
	for id, s := range scores {
		sum += s
		sumSq += s * s
		if s > best || (s == best && (bestID == hin.NoEntity || id < bestID)) {
			if bestID != hin.NoEntity {
				second = best
			}
			best, bestID = s, id
		} else if s > second {
			second = s
		}
	}
	n := float64(len(scores))
	if n == 1 {
		return bestID, best > 0
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 1e-12 {
		// All scores equal: nothing stands out.
		return hin.NoEntity, false
	}
	std := math.Sqrt(variance)
	if (best-second)/std < theta {
		return hin.NoEntity, false
	}
	return bestID, true
}

// reverseAgrees scores target candidates for auxiliary node av and checks
// the winner is tv, mirroring NS09's symmetric verification.
func reverseAgrees(tv int, av hin.EntityID, mapping []hin.EntityID, mapped []bool, tAdj, aAdj [][]hin.EntityID, theta float64) bool {
	inv := make(map[hin.EntityID]hin.EntityID, len(mapping))
	for t, a := range mapping {
		if a != hin.NoEntity {
			inv[a] = hin.EntityID(t)
		}
	}
	scores := make(map[hin.EntityID]float64)
	for _, ab := range aAdj[av] {
		tm, ok := inv[ab]
		if !ok {
			continue
		}
		for _, tb := range tAdj[tm] {
			if mapping[tb] != hin.NoEntity {
				continue
			}
			scores[tb] += 1 / math.Sqrt(float64(len(tAdj[tb]))+1)
		}
	}
	best, ok := pickEccentric(scores, theta)
	return ok && best == hin.EntityID(tv)
}

// Score evaluates a propagation mapping against ground truth, ignoring
// seeds: precision is correct/attempted, coverage attempted/eligible.
func Score(res *PropagationResult, truth []hin.EntityID, seeds map[hin.EntityID]hin.EntityID) (precision, coverage float64) {
	attempted, correct, eligible := 0, 0, 0
	for tv, av := range res.Mapping {
		if _, isSeed := seeds[hin.EntityID(tv)]; isSeed {
			continue
		}
		eligible++
		if av == hin.NoEntity {
			continue
		}
		attempted++
		if av == truth[tv] {
			correct++
		}
	}
	if attempted > 0 {
		precision = float64(correct) / float64(attempted)
	}
	if eligible > 0 {
		coverage = float64(attempted) / float64(eligible)
	}
	return precision, coverage
}
