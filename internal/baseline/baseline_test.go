package baseline

import (
	"testing"

	"github.com/hinpriv/dehin/internal/hin"
	"github.com/hinpriv/dehin/internal/randx"
	"github.com/hinpriv/dehin/internal/tqq"
)

func TestProfileOnly(t *testing.T) {
	s := tqq.TargetSchema()
	b := hin.NewBuilder(s)
	b.AddEntity(0, "a", 1980, 1, 100, 0)
	b.AddEntity(0, "b", 1980, 1, 100, 0)
	b.AddEntity(0, "c", 1990, 2, 50, 0)
	aux, _ := b.Build()

	tb := hin.NewBuilder(s)
	tb.AddEntity(0, "", 1980, 1, 100, 0)
	tb.AddEntity(0, "", 1990, 2, 50, 0)
	tb.AddEntity(0, "", 2000, 0, 1, 0)
	target, _ := tb.Build()

	attrs := []int{tqq.AttrYob, tqq.AttrGender, tqq.AttrTweets}
	cands, err := ProfileOnly(target, aux, attrs)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands[0]) != 2 {
		t.Fatalf("target 0 candidates = %v", cands[0])
	}
	if len(cands[1]) != 1 || cands[1][0] != 2 {
		t.Fatalf("target 1 candidates = %v", cands[1])
	}
	if len(cands[2]) != 0 {
		t.Fatalf("target 2 candidates = %v", cands[2])
	}
}

func TestProfileOnlyErrors(t *testing.T) {
	s := tqq.TargetSchema()
	b := hin.NewBuilder(s)
	b.AddEntity(0, "", 1, 1, 1, 0)
	g, _ := b.Build()
	if _, err := ProfileOnly(g, g, []int{-1}); err == nil {
		t.Fatal("negative attr accepted")
	}
	if _, err := ProfileOnly(g, g, []int{9}); err == nil {
		t.Fatal("out-of-range attr accepted")
	}
}

// propagationFixture samples a dense community as target (identity-mapped
// into the dataset) and returns seeds from the ground truth.
func propagationFixture(t *testing.T, seedCount int) (tgt *tqq.Target, aux *hin.Graph, seeds map[hin.EntityID]hin.EntityID) {
	t.Helper()
	cfg := tqq.DefaultConfig(1200, 19)
	cfg.Communities = []tqq.CommunitySpec{{Size: 200, Density: 0.02}}
	d, err := tqq.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err = tqq.CommunityTarget(d, 0, randx.New(5))
	if err != nil {
		t.Fatal(err)
	}
	seeds = make(map[hin.EntityID]hin.EntityID)
	rng := randx.New(100)
	for _, i := range rng.SampleWithoutReplacement(tgt.Graph.NumEntities(), seedCount) {
		seeds[hin.EntityID(i)] = tgt.Orig[i]
	}
	return tgt, d.Graph, seeds
}

func TestPropagationWithSeeds(t *testing.T) {
	tgt, aux, seeds := propagationFixture(t, 20)
	res, err := Propagation(tgt.Graph, aux, PropagationConfig{Seeds: seeds, Theta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	precision, coverage := Score(res, tgt.Orig, seeds)
	if coverage == 0 {
		t.Fatal("propagation mapped nothing beyond seeds")
	}
	if precision < 0.5 {
		t.Fatalf("propagation precision = %g on a dense community", precision)
	}
	t.Logf("propagation: precision=%.2f coverage=%.2f rounds=%d", precision, coverage, res.Rounds)
}

func TestPropagationNoSeedsMapsNothing(t *testing.T) {
	tgt, aux, _ := propagationFixture(t, 0)
	res, err := Propagation(tgt.Graph, aux, PropagationConfig{Theta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for tv, av := range res.Mapping {
		if av != hin.NoEntity {
			t.Fatalf("mapped %d without any seed", tv)
		}
	}
}

func TestPropagationMappingInjective(t *testing.T) {
	tgt, aux, seeds := propagationFixture(t, 15)
	res, err := Propagation(tgt.Graph, aux, PropagationConfig{Seeds: seeds, Theta: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[hin.EntityID]bool)
	for _, av := range res.Mapping {
		if av == hin.NoEntity {
			continue
		}
		if seen[av] {
			t.Fatalf("auxiliary entity %d mapped twice", av)
		}
		seen[av] = true
	}
}

func TestPropagationErrors(t *testing.T) {
	tgt, aux, _ := propagationFixture(t, 0)
	if _, err := Propagation(tgt.Graph, aux, PropagationConfig{Theta: -1}); err == nil {
		t.Fatal("negative theta accepted")
	}
	bad := map[hin.EntityID]hin.EntityID{9999: 0}
	if _, err := Propagation(tgt.Graph, aux, PropagationConfig{Seeds: bad, Theta: 0.5}); err == nil {
		t.Fatal("out-of-range seed accepted")
	}
}

func TestScoreIgnoresSeeds(t *testing.T) {
	truth := []hin.EntityID{10, 11, 12}
	seeds := map[hin.EntityID]hin.EntityID{0: 10}
	res := &PropagationResult{Mapping: []hin.EntityID{10, 11, hin.NoEntity}}
	precision, coverage := Score(res, truth, seeds)
	if precision != 1 {
		t.Fatalf("precision = %g", precision)
	}
	if coverage != 0.5 {
		t.Fatalf("coverage = %g", coverage)
	}
}

func TestProfileOnlyGrowing(t *testing.T) {
	s := tqq.TargetSchema()
	b := hin.NewBuilder(s)
	b.AddEntity(0, "a", 1980, 1, 100, 2)
	b.AddEntity(0, "b", 1980, 1, 150, 3) // grown twin of the target
	b.AddEntity(0, "c", 1980, 1, 50, 2)  // tweets shrank: impossible
	b.AddEntity(0, "d", 1981, 1, 100, 2) // different yob
	aux, _ := b.Build()

	tb := hin.NewBuilder(s)
	tb.AddEntity(0, "", 1980, 1, 100, 2)
	target, _ := tb.Build()

	cands, err := ProfileOnlyGrowing(target, aux,
		[]int{tqq.AttrYob, tqq.AttrGender},
		[]int{tqq.AttrTweets, tqq.AttrNumTags})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands[0]) != 2 || cands[0][0] != 0 || cands[0][1] != 1 {
		t.Fatalf("candidates = %v, want [a b]", cands[0])
	}
}

func TestProfileOnlyGrowingErrors(t *testing.T) {
	s := tqq.TargetSchema()
	b := hin.NewBuilder(s)
	b.AddEntity(0, "", 1, 1, 1, 0)
	g, _ := b.Build()
	if _, err := ProfileOnlyGrowing(g, g, []int{-1}, nil); err == nil {
		t.Fatal("negative attr accepted")
	}
	if _, err := ProfileOnlyGrowing(g, g, nil, []int{9}); err == nil {
		t.Fatal("out-of-range attr accepted")
	}
}
