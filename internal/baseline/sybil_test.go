package baseline

import (
	"testing"

	"github.com/hinpriv/dehin/internal/anonymize"
	"github.com/hinpriv/dehin/internal/hin"
	"github.com/hinpriv/dehin/internal/randx"
	"github.com/hinpriv/dehin/internal/tqq"
)

func sybilWorld(t *testing.T) (*tqq.Dataset, hin.LinkTypeID) {
	t.Helper()
	cfg := tqq.DefaultConfig(2000, 71)
	d, err := tqq.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d, d.Graph.Schema().MustLinkTypeID(tqq.LinkFollow)
}

func TestSybilEndToEnd(t *testing.T) {
	d, follow := sybilWorld(t)
	rng := randx.New(3)
	var targets []hin.EntityID
	for _, v := range rng.SampleWithoutReplacement(d.Graph.NumEntities(), 8) {
		targets = append(targets, hin.EntityID(v))
	}
	planted, plan, err := PlantSybils(d.Graph, SybilConfig{
		NumSybils:    12,
		Targets:      targets,
		LinkType:     follow,
		InternalProb: 0.5,
		Seed:         5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if planted.NumEntities() != d.Graph.NumEntities()+12 {
		t.Fatalf("planted size %d", planted.NumEntities())
	}
	// The publisher anonymizes the planted graph.
	release, err := anonymize.RandomizeIDs(planted, 99)
	if err != nil {
		t.Fatal(err)
	}
	// Plan ids refer to the planted graph; recovery works on the release.
	gang, err := RecoverSybils(release.Graph, plan)
	if err != nil {
		t.Fatal(err)
	}
	// Verify the recovered gang maps to the true sybils via ground truth.
	toOrig := release.ToOrig
	for i, v := range gang {
		if toOrig[v] != plan.Sybils[i] {
			t.Fatalf("gang slot %d recovered wrong entity", i)
		}
	}
	// Targets read off correctly.
	cands, err := IdentifyTargets(release.Graph, plan, gang)
	if err != nil {
		t.Fatal(err)
	}
	for ti, c := range cands {
		if len(c) != 1 {
			t.Fatalf("target %d: %d candidates", ti, len(c))
		}
		if toOrig[c[0]] != plan.Targets[ti] {
			t.Fatalf("target %d misidentified", ti)
		}
	}
}

func TestSybilDetection(t *testing.T) {
	d, follow := sybilWorld(t)
	targets := []hin.EntityID{1, 2, 3}
	planted, plan, err := PlantSybils(d.Graph, SybilConfig{
		NumSybils:    10,
		Targets:      targets,
		LinkType:     follow,
		InternalProb: 0.5,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	gangs := DetectSybilGangs(planted, 20, 0.2)
	if len(gangs) != 1 {
		t.Fatalf("detected %d gangs, want 1", len(gangs))
	}
	want := make(map[hin.EntityID]bool)
	for _, s := range plan.Sybils {
		want[s] = true
	}
	if len(gangs[0]) != len(plan.Sybils) {
		t.Fatalf("gang size %d, want %d", len(gangs[0]), len(plan.Sybils))
	}
	for _, v := range gangs[0] {
		if !want[v] {
			t.Fatalf("detector flagged organic user %d", v)
		}
	}
	// The clean graph has no dense source gangs.
	if clean := DetectSybilGangs(d.Graph, 20, 0.2); len(clean) != 0 {
		t.Fatalf("false positives on the clean graph: %d", len(clean))
	}
}

func TestPlantSybilsErrors(t *testing.T) {
	d, follow := sybilWorld(t)
	base := SybilConfig{NumSybils: 8, Targets: []hin.EntityID{1}, LinkType: follow, InternalProb: 0.5, Seed: 1}
	cases := []func(*SybilConfig){
		func(c *SybilConfig) { c.NumSybils = 1 },
		func(c *SybilConfig) { c.Targets = nil },
		func(c *SybilConfig) { c.Targets = []hin.EntityID{99999} },
		func(c *SybilConfig) { c.InternalProb = 0 },
		func(c *SybilConfig) { c.InternalProb = 1 },
		func(c *SybilConfig) { c.LinkType = 99 },
	}
	for i, mod := range cases {
		cfg := base
		mod(&cfg)
		if _, _, err := PlantSybils(d.Graph, cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestRecoverSybilsFailsWithoutGang(t *testing.T) {
	d, follow := sybilWorld(t)
	_, plan, err := PlantSybils(d.Graph, SybilConfig{
		NumSybils:    10,
		Targets:      []hin.EntityID{5},
		LinkType:     follow,
		InternalProb: 0.5,
		Seed:         11,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Search the CLEAN graph (gang never added): must not "find" it.
	if _, err := RecoverSybils(d.Graph, plan); err == nil {
		t.Fatal("recovered a gang that is not there")
	}
}

func TestIdentifyTargetsSizeMismatch(t *testing.T) {
	d, follow := sybilWorld(t)
	_, plan, err := PlantSybils(d.Graph, SybilConfig{
		NumSybils:    4,
		Targets:      []hin.EntityID{5},
		LinkType:     follow,
		InternalProb: 0.5,
		Seed:         13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := IdentifyTargets(d.Graph, plan, []hin.EntityID{1, 2}); err == nil {
		t.Fatal("gang size mismatch accepted")
	}
}
