// Package serve implements hinriskd's query layer: an HTTP/JSON surface
// over the risk and attack libraries with lock-free reads and atomic
// snapshot reloads.
//
// The core object is an immutable snapshot (graph + precomputed signature
// classes + prepared attack) swapped RCU-style through an atomic.Pointer.
// Readers never take a lock: a request acquires the current snapshot with
// an atomic refcount handshake, answers from precomputed arrays (or the
// attack's pooled scratch, which is per-snapshot and therefore per-epoch),
// and releases. A reload builds the next snapshot off to the side, swaps
// the pointer, and the retired epoch is closed by whichever holder drains
// the last reference — in-flight requests finish against the epoch they
// started on, and the mmap behind a retired CSR snapshot is unmapped only
// after its last cursor is gone (defense-in-depth: the CSR file's own pin
// count turns a premature close into an error, not a fault).
//
// Every response carries the epoch it was answered from, which is what
// lets the reload soak test assert "zero stale reads" from the outside.
package serve

import (
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hinpriv/dehin/internal/dehin"
	"github.com/hinpriv/dehin/internal/hin"
	"github.com/hinpriv/dehin/internal/obs"
	"github.com/hinpriv/dehin/internal/obs/trace"
)

// Config carries the server's query semantics and operational limits.
// The zero value is not useful — EntityAttrs and Profile must describe
// the schema being served — but every limit has a sensible default.
type Config struct {
	// MaxDistance bounds the distance parameter of /v1/risk and /v1/topk;
	// signature classes for every distance in [0, MaxDistance] are
	// precomputed at snapshot build time.
	MaxDistance int
	// LinkTypes are the utilized link types for both the risk sweep and
	// the attack; empty means all schema link types.
	LinkTypes []hin.LinkTypeID
	// EntityAttrs are the scalar attribute indices feeding the
	// distance-0 signature (risk.SignatureConfig.EntityAttrs).
	EntityAttrs []int
	// Profile declares how profile attributes match for /v1/dehin and
	// powers the attack's candidate index.
	Profile dehin.ProfileSpec
	// AttackDistance is the neighborhood depth of /v1/dehin matching
	// (dehin.Config.MaxDistance). Defaults to 1.
	AttackDistance int

	// MaxTopK caps /v1/topk's k parameter (default 1000).
	MaxTopK int
	// MaxSnippetEntities and MaxSnippetEdges bound the auxiliary snippet
	// a /v1/dehin request may post (defaults 256 and 1024).
	MaxSnippetEntities int
	MaxSnippetEdges    int
	// MaxCandidates caps the candidate list returned by /v1/dehin; the
	// response notes truncation (default 128).
	MaxCandidates int
	// MaxAttackInFlight bounds concurrently executing /v1/dehin attacks
	// (default GOMAXPROCS); MaxAttackQueue bounds requests waiting for a
	// slot before the server answers 429 (default 64).
	MaxAttackInFlight int
	MaxAttackQueue    int

	// Workers bounds snapshot-build parallelism (sweep and attack index).
	// 0 means GOMAXPROCS.
	Workers int

	// Metrics, Trace, and Log attach observability; all three follow the
	// obs nil-disables contract.
	Metrics *obs.Registry
	Trace   *trace.Tracer
	Log     *obs.Logger

	// Flight, when non-nil, attaches the tail-based request flight
	// recorder: every request records a span tree through admission
	// control and into the attack, and requests slower than the
	// recorder's threshold (or ending non-2xx) are retained for
	// /debug/requests. Nil — the default — costs one predictable branch
	// per request, like the rest of the obs surface.
	Flight *trace.Flight
}

// withDefaults resolves zero limits to their documented defaults.
func (c Config) withDefaults() Config {
	if c.AttackDistance == 0 {
		c.AttackDistance = 1
	}
	if c.MaxTopK == 0 {
		c.MaxTopK = 1000
	}
	if c.MaxSnippetEntities == 0 {
		c.MaxSnippetEntities = 256
	}
	if c.MaxSnippetEdges == 0 {
		c.MaxSnippetEdges = 1024
	}
	if c.MaxCandidates == 0 {
		c.MaxCandidates = 128
	}
	if c.MaxAttackInFlight == 0 {
		c.MaxAttackInFlight = runtime.GOMAXPROCS(0)
	}
	if c.MaxAttackQueue == 0 {
		c.MaxAttackQueue = 64
	}
	return c
}

// serverMetrics is the server's resolved metric handles (nil registry →
// nil handles → one-branch no-ops, per the obs contract).
type serverMetrics struct {
	epoch       *obs.Gauge
	reloads     *obs.Counter
	reloadErrs  *obs.Counter
	retired     *obs.Counter
	closeErrors *obs.Counter
	inflight    *obs.Gauge
	queueDepth  *obs.Gauge
	rejected    *obs.Counter
	snapAge     *obs.Gauge
	flightCap   *obs.Counter
}

// Server serves risk and attack queries over the current snapshot.
// Reads are lock-free; reloads serialize on a mutex that readers never
// touch. Safe for concurrent use.
type Server struct {
	cfg    Config
	log    *obs.Logger
	met    serverMetrics
	trace  *trace.Tracer
	flight *trace.Flight

	cur    atomic.Pointer[snapshot]
	epoch  atomic.Uint64 // last assigned epoch number
	live   atomic.Int64  // snapshots not yet fully drained+closed
	closed atomic.Bool

	reloadMu sync.Mutex // serializes Load/LoadBackend/Reload/Close

	// attackSlots is the admission semaphore for /v1/dehin; queued is
	// the number of requests waiting for a slot (mirrored by the
	// queueDepth gauge, which external scrapes read).
	attackSlots chan struct{}
	queued      atomic.Int64
}

// New builds a Server with no snapshot loaded; requests answer 503 until
// the first Load or LoadBackend.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:         cfg,
		log:         cfg.Log,
		trace:       cfg.Trace,
		flight:      cfg.Flight,
		attackSlots: make(chan struct{}, cfg.MaxAttackInFlight),
	}
	if m := cfg.Metrics; m != nil {
		s.met = serverMetrics{
			epoch:       m.Gauge("serve_epoch"),
			reloads:     m.Counter("serve_reloads_total"),
			reloadErrs:  m.Counter("serve_reload_errors_total"),
			retired:     m.Counter("serve_snapshots_retired_total"),
			closeErrors: m.Counter("serve_snapshot_close_errors_total"),
			inflight:    m.Gauge("serve_attack_inflight"),
			queueDepth:  m.Gauge("serve_attack_queue_depth"),
			rejected:    m.Counter("serve_attack_rejected_total"),
			snapAge:     m.Gauge("serve_snapshot_age_s"),
			flightCap:   m.Counter("serve_flight_captured_total"),
		}
	}
	return s
}

// errNoSnapshot is what acquire reports before the first load and after
// Close; handlers map it to 503.
var errNoSnapshot = errors.New("serve: no snapshot loaded")

// acquire takes a reference on the current snapshot and pins its backing
// file. The load→Add→recheck loop is the classic refcount handshake: a
// successful recheck proves the pointer still held this snapshot after
// our increment, so the increment strictly precedes any retirement
// decrement and the count can never resurrect from zero. On recheck
// failure the speculative reference is dropped (possibly closing a
// snapshot retired mid-handshake) and the loop retries on the new value.
func (s *Server) acquire() (*snapshot, error) {
	for {
		sn := s.cur.Load()
		if sn == nil {
			return nil, errNoSnapshot
		}
		sn.refs.Add(1)
		if s.cur.Load() != sn {
			sn.unref(s)
			continue
		}
		if sn.file != nil {
			// Cannot fail while we hold a reference (the file closes
			// only when refs drain); checked anyway so a refcount bug
			// degrades to a 503 instead of a fault.
			if err := sn.file.Pin(); err != nil {
				sn.unref(s)
				return nil, fmt.Errorf("serve: pin epoch %d: %w", sn.epoch, err)
			}
		}
		return sn, nil
	}
}

// release undoes acquire: unpin first, so the file's pin count is zero by
// the time the final unref closes it.
func (s *Server) release(sn *snapshot) {
	if sn.file != nil {
		sn.file.Unpin()
	}
	sn.unref(s)
}

// install publishes a freshly built snapshot and retires the previous one
// by dropping the pointer reference it held.
func (s *Server) install(sn *snapshot) {
	s.live.Add(1)
	s.met.epoch.Set(int64(sn.epoch))
	if old := s.cur.Swap(sn); old != nil {
		old.unref(s)
	}
}

// Load opens an HINCSR01 file and makes it the served snapshot. The build
// happens before the swap, so readers keep answering from the old epoch
// for the whole (checksum + sweep + index) build, then cut over atomically.
func (s *Server) Load(path string) error {
	if s == nil {
		return errors.New("serve: Load on nil server")
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	if s.closed.Load() {
		return errors.New("serve: server closed")
	}
	epoch := s.epoch.Add(1)
	cf, err := hin.OpenCSRFileOpt(path, hin.CSRFileOptions{Workers: s.cfg.Workers})
	if err != nil {
		s.met.reloadErrs.Inc()
		return fmt.Errorf("serve: open %s: %w", path, err)
	}
	sn, err := newSnapshot(epoch, path, cf.Graph(), cf, s.cfg)
	if err != nil {
		cf.Close() //hin:allow errdrop -- reload failure path: the snapshot error is the one worth surfacing
		s.met.reloadErrs.Inc()
		return err
	}
	s.install(sn)
	s.met.reloads.Inc()
	s.log.Info("serve: snapshot loaded", "epoch", epoch, "source", path,
		"users", sn.g.NumEntities(), "edges", sn.g.NumEdgesTotal())
	return nil
}

// LoadBackend makes an in-memory graph the served snapshot (tests and
// embedded use; no file to close when the epoch retires).
func (s *Server) LoadBackend(g hin.GraphBackend) error {
	if s == nil {
		return errors.New("serve: LoadBackend on nil server")
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	if s.closed.Load() {
		return errors.New("serve: server closed")
	}
	epoch := s.epoch.Add(1)
	sn, err := newSnapshot(epoch, "(memory)", g, nil, s.cfg)
	if err != nil {
		s.met.reloadErrs.Inc()
		return err
	}
	s.install(sn)
	s.met.reloads.Inc()
	return nil
}

// Reload re-loads the served file: the given path, or the current
// snapshot's source when path is empty. In-memory snapshots have no
// source to re-open, so an empty-path reload over one is an error.
func (s *Server) Reload(path string) error {
	if s == nil {
		return errors.New("serve: Reload on nil server")
	}
	if path == "" {
		sn := s.cur.Load()
		if sn == nil || sn.file == nil {
			return errors.New("serve: no file-backed snapshot to reload")
		}
		path = sn.source
	}
	return s.Load(path)
}

// Epoch returns the epoch of the current snapshot (0 before the first
// load).
func (s *Server) Epoch() uint64 {
	if s == nil {
		return 0
	}
	sn := s.cur.Load()
	if sn == nil {
		return 0
	}
	return sn.epoch
}

// closeDrainTimeout bounds how long Close waits for in-flight requests to
// drain before reporting the leak instead of hanging.
const closeDrainTimeout = 5 * time.Second

// Close retires the current snapshot and waits for every epoch to drain
// and close. New requests answer 503 immediately; requests already in
// flight finish against their acquired snapshot.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	if s.closed.Swap(true) {
		return nil
	}
	if old := s.cur.Swap(nil); old != nil {
		old.unref(s)
	}
	deadline := time.Now().Add(closeDrainTimeout)
	for s.live.Load() > 0 {
		if time.Now().After(deadline) {
			return fmt.Errorf("serve: %d snapshot(s) still referenced after %v", s.live.Load(), closeDrainTimeout)
		}
		time.Sleep(100 * time.Microsecond)
	}
	return nil
}

// Handler returns the server's full HTTP surface: the obs operational mux
// (/metrics, /debug/...) with the /v1 API mounted on top.
func (s *Server) Handler() http.Handler {
	if s == nil {
		return http.NotFoundHandler()
	}
	mux := obs.NewMux(s.cfg.Metrics)
	s.Register(mux)
	return mux
}
