package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/hinpriv/dehin/internal/hin"
	"github.com/hinpriv/dehin/internal/obs/trace"
)

// TestReloadUnderFire is the RCU soak: reader goroutines hammer /v1/risk
// over real HTTP while the snapshot is reloaded in a loop, and every
// single request must succeed (status 200, well-formed body, non-zero
// epoch). Each reader additionally asserts its observed epochs never go
// backwards - the atomic pointer swap is the only publication point, so a
// request started after a reload response returned can never read a
// retired epoch. Run under -race (the race-par lane does, at
// GOMAXPROCS=2) this doubles as the memory-model check on the
// acquire/release handshake; the final Close proves every retired epoch
// drained and unmapped cleanly.
func TestReloadUnderFire(t *testing.T) {
	dir := t.TempDir()
	paths := []string{filepath.Join(dir, "a.hincsr"), filepath.Join(dir, "b.hincsr")}
	if err := hin.WriteCSRFile(paths[0], testGraph(t, 500, 21)); err != nil {
		t.Fatal(err)
	}
	if err := hin.WriteCSRFile(paths[1], testGraph(t, 700, 22)); err != nil {
		t.Fatal(err)
	}

	// The flight recorder rides along at a 1ns threshold and a tiny ring:
	// every request commits a capture, so the ring wraps constantly while
	// readers race reloads — the recorder's pool/ring synchronization is
	// part of what this soak checks under -race.
	flight := trace.NewFlight(trace.FlightConfig{Capacity: 4, SlowThreshold: time.Nanosecond})
	cfg := testConfig()
	cfg.Flight = flight
	s := New(cfg)
	if err := s.Load(paths[0]); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const (
		readers = 8
		reloads = 6
	)
	var (
		stop     atomic.Bool
		failures atomic.Int64
		requests atomic.Int64
		wg       sync.WaitGroup
	)
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := &http.Client{}
			lastEpoch := uint64(0)
			for i := 0; !stop.Load(); i++ {
				// 500 users is the smaller fixture; staying below it
				// keeps every request a 200 on both epochs.
				url := fmt.Sprintf("%s/v1/risk?user=%d&distance=%d", ts.URL, (w*131+i)%500, i%3)
				resp, err := client.Get(url)
				if err != nil {
					failures.Add(1)
					t.Errorf("reader %d: %v", w, err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				requests.Add(1)
				var rr riskResponse
				if resp.StatusCode != 200 || json.Unmarshal(body, &rr) != nil || rr.Epoch == 0 {
					failures.Add(1)
					t.Errorf("reader %d: status %d body %s", w, resp.StatusCode, body)
					return
				}
				if rr.Epoch < lastEpoch {
					failures.Add(1)
					t.Errorf("reader %d: epoch went backwards: %d after %d", w, rr.Epoch, lastEpoch)
					return
				}
				lastEpoch = rr.Epoch
			}
		}(w)
	}

	for i := 0; i < reloads; i++ {
		if err := s.Reload(paths[(i+1)%2]); err != nil {
			t.Errorf("reload %d: %v", i, err)
		}
		// Export mid-soak: snapshotRecords copies ring slots while
		// commits race it, which -race must find unobjectionable.
		for _, rec := range flight.Records() {
			if rec.Path != "/v1/risk" || rec.Reason != "slow" || len(rec.Spans) == 0 {
				t.Errorf("malformed mid-soak record: %+v", rec)
			}
		}
	}
	stop.Store(true)
	wg.Wait()

	if failures.Load() != 0 {
		t.Fatalf("%d of %d requests failed during reloads", failures.Load(), requests.Load())
	}
	if requests.Load() == 0 {
		t.Fatal("soak made no requests")
	}
	// At a 1ns threshold every 200 qualifies as slow, so the recorder
	// must have seen and captured every request the soak made.
	if flight.Captured() == 0 || flight.Captured() != flight.Total() {
		t.Fatalf("flight captured %d of %d finished requests", flight.Captured(), flight.Total())
	}
	if flight.Captured() < requests.Load() {
		t.Fatalf("flight finished %d < %d HTTP requests", flight.Captured(), requests.Load())
	}
	if got := s.Epoch(); got != reloads+1 {
		t.Fatalf("final epoch = %d, want %d", got, reloads+1)
	}
	// Every retired epoch must drain and close; Close reporting leftover
	// references would mean a leaked acquire.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if m := s.cfg.Metrics.Snapshot(); m.Counter("serve_snapshots_retired_total") != reloads+1 {
		t.Fatalf("retired %d snapshots, want %d", m.Counter("serve_snapshots_retired_total"), reloads+1)
	}
}
