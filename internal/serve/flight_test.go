package serve

import (
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/hinpriv/dehin/internal/hin"
	"github.com/hinpriv/dehin/internal/obs/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

// flightServer starts a test server with a flight recorder at the given
// slow threshold (1ns captures everything, 1h captures only errors).
func flightServer(t *testing.T, slow time.Duration) (*Server, *trace.Flight, *httptest.Server) {
	t.Helper()
	f := trace.NewFlight(trace.FlightConfig{Capacity: 16, SlowThreshold: slow})
	cfg := testConfig()
	cfg.Flight = f
	s := New(cfg)
	if err := s.LoadBackend(testGraph(t, 300, 5)); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, f, ts
}

// flightEnvelope mirrors the /debug/requests?format=json body.
type flightEnvelope struct {
	Captured        int64                 `json:"captured"`
	Total           int64                 `json:"total"`
	SlowThresholdNS int64                 `json:"slow_threshold_ns"`
	Records         []trace.RequestRecord `json:"records"`
}

func fetchFlight(t *testing.T, ts *httptest.Server) flightEnvelope {
	t.Helper()
	var env flightEnvelope
	getJSON(t, ts, "/debug/requests?format=json", 200, &env)
	return env
}

// TestHealthz pins the readiness contract: 200 with epoch and age while a
// snapshot is served, 503 before the first load, and the age mirrored
// into the serve_snapshot_age_s gauge.
func TestHealthz(t *testing.T) {
	cfg := testConfig()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// No snapshot yet: unavailable.
	var h healthzResponse
	getJSON(t, ts, "/v1/healthz", 503, &h)
	if h.Status != "unavailable" || h.Error == "" {
		t.Fatalf("pre-load healthz = %+v", h)
	}

	if err := s.LoadBackend(testGraph(t, 200, 9)); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	getJSON(t, ts, "/v1/healthz", 200, &h)
	if h.Status != "ok" || h.Epoch != 1 || h.AgeS < 0 || h.AgeS > 60 {
		t.Fatalf("healthz = %+v", h)
	}
	if _, ok := cfg.Metrics.Snapshot().Gauges["serve_snapshot_age_s"]; !ok {
		t.Fatal("serve_snapshot_age_s gauge not registered")
	}
}

// TestFlightCapturesSlowDehin is the acceptance check for the tentpole: a
// forced-slow /v1/dehin (1ns threshold) must be retrievable from
// /debug/requests with its complete span tree — handler stages down
// through the attack's profile/neighbor stages and the response encode.
func TestFlightCapturesSlowDehin(t *testing.T) {
	s, f, ts := flightServer(t, time.Nanosecond)
	snip := snippetFromUser(mustGraph(t, s), 42)
	var dr dehinResponse
	postJSON(t, ts, "/v1/dehin", snip, 200, &dr)

	env := fetchFlight(t, ts)
	if env.Captured < 1 || env.Total < 1 || env.SlowThresholdNS != 1 {
		t.Fatalf("envelope counters = %+v", env)
	}
	var rec *trace.RequestRecord
	for i := range env.Records {
		if env.Records[i].Path == "/v1/dehin" {
			rec = &env.Records[i]
		}
	}
	if rec == nil {
		t.Fatalf("no /v1/dehin record in %+v", env.Records)
	}
	if rec.Method != "POST" || rec.Code != 200 || rec.Reason != "slow" || rec.Epoch != 1 {
		t.Fatalf("record = %+v", rec)
	}

	// The span tree must be complete: root, the handler stages, the
	// attack's internal stages, and the encode span.
	byName := map[string]trace.SpanRecord{}
	index := map[string]int{}
	for i, sp := range rec.Spans {
		byName[sp.Name] = sp
		index[sp.Name] = i
	}
	for _, name := range []string{"serve.dehin", "decode", "admission", "snippet", "attack", "profile_candidates", "neighbor_match", "encode"} {
		if _, ok := byName[name]; !ok {
			t.Fatalf("span %q missing from tree: %+v", name, rec.Spans)
		}
	}
	if rec.Spans[0].Name != "serve.dehin" || rec.Spans[0].Parent != -1 {
		t.Fatalf("root = %+v", rec.Spans[0])
	}
	root := index["serve.dehin"]
	for _, stage := range []string{"decode", "admission", "snippet", "attack", "encode"} {
		if byName[stage].Parent != root {
			t.Fatalf("%s parented to %d, want root %d", stage, byName[stage].Parent, root)
		}
	}
	for _, inner := range []string{"profile_candidates", "neighbor_match"} {
		if byName[inner].Parent != index["attack"] {
			t.Fatalf("%s parented to %d, want attack %d", inner, byName[inner].Parent, index["attack"])
		}
	}
	if byName["serve.dehin"].Attrs["code"] != 200 {
		t.Fatalf("root attrs = %+v", byName["serve.dehin"].Attrs)
	}
	if got := byName["attack"].Attrs["candidates"]; got != int64(dr.Candidates) {
		t.Fatalf("attack candidates attr = %d, response said %d", got, dr.Candidates)
	}
	// The flight-capture counter must match what the recorder retained.
	if got := s.cfg.Metrics.Snapshot().Counter("serve_flight_captured_total"); got != f.Captured() {
		t.Fatalf("serve_flight_captured_total = %d, recorder captured %d", got, f.Captured())
	}
}

// TestFlightTailPolicyOverHTTP pins the tail-based selection end to end:
// with a high threshold, fast successes leave no record while failures
// are always retained.
func TestFlightTailPolicyOverHTTP(t *testing.T) {
	_, f, ts := flightServer(t, time.Hour)
	getJSON(t, ts, "/v1/risk?user=5", 200, nil)
	getJSON(t, ts, "/v1/risk?user=99999", 404, nil)

	env := fetchFlight(t, ts)
	if env.Total < 2 {
		t.Fatalf("total = %d", env.Total)
	}
	if len(env.Records) != 1 {
		t.Fatalf("%d records, want only the 404", len(env.Records))
	}
	rec := env.Records[0]
	if rec.Code != 404 || rec.Reason != "error" || rec.Query != "user=99999" {
		t.Fatalf("record = %+v", rec)
	}
	if f.Captured() != 1 {
		t.Fatalf("captured = %d", f.Captured())
	}
}

// TestDebugRequestsDisabled: without a recorder the endpoint answers 404,
// so scrapes can tell "off" from "nothing captured yet".
func TestDebugRequestsDisabled(t *testing.T) {
	s := New(testConfig())
	if err := s.LoadBackend(testGraph(t, 200, 3)); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	getJSON(t, ts, "/debug/requests", 404, nil)
	getJSON(t, ts, "/debug/requests?format=json", 404, nil)
}

// TestDebugRequestsTextGolden pins the deterministic structure-only text
// page: fixed fixture, fixed request sequence, no timestamps or
// durations. Regenerate with:
//
//	go test ./internal/serve -run DebugRequestsTextGolden -update
func TestDebugRequestsTextGolden(t *testing.T) {
	s, _, ts := flightServer(t, time.Nanosecond)
	getJSON(t, ts, "/v1/risk?user=42&distance=2", 200, nil)
	getJSON(t, ts, "/v1/risk?user=99999", 404, nil)
	postJSON(t, ts, "/v1/dehin", snippetFromUser(mustGraph(t, s), 42), 200, nil)

	resp, err := http.Get(ts.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/plain") {
		t.Fatalf("status %d content-type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}

	golden := filepath.Join("testdata", "debug_requests.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, body, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if string(body) != string(want) {
		t.Fatalf("text mismatch:\ngot:\n%s\nwant:\n%s", body, want)
	}
	// With durations requested, every request line gains a wall time —
	// format smoke only; content is timing-dependent.
	resp, err = http.Get(ts.URL + "/debug/requests?durations=1")
	if err != nil {
		t.Fatal(err)
	}
	durBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(durBody), "finished (threshold") {
		t.Fatalf("durations header missing:\n%s", durBody)
	}
}

// mustGraph returns the currently served graph (test convenience for
// snippet building).
func mustGraph(t *testing.T, s *Server) *hin.Graph {
	t.Helper()
	sn, err := s.acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer s.release(sn)
	g, ok := sn.g.(*hin.Graph)
	if !ok {
		t.Fatalf("served backend is %T, not *hin.Graph", sn.g)
	}
	return g
}
