package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"github.com/hinpriv/dehin/internal/dehin"
	"github.com/hinpriv/dehin/internal/hin"
	"github.com/hinpriv/dehin/internal/obs"
	"github.com/hinpriv/dehin/internal/risk"
	"github.com/hinpriv/dehin/internal/tqq"
)

// testConfig is the t.qq-shaped server configuration the tests serve:
// numtags-seeded signatures (the paper's Section 6.1 choice) at distances
// 0..2, profile matching per TQQProfile.
func testConfig() Config {
	return Config{
		MaxDistance:    2,
		EntityAttrs:    []int{tqq.AttrNumTags},
		Profile:        dehin.TQQProfile(),
		AttackDistance: 1,
		Metrics:        obs.New(),
	}
}

func allLinkTypes(s *hin.Schema) []hin.LinkTypeID {
	lts := make([]hin.LinkTypeID, s.NumLinkTypes())
	for i := range lts {
		lts[i] = hin.LinkTypeID(i)
	}
	return lts
}

func testGraph(t *testing.T, users int, seed uint64) *hin.Graph {
	t.Helper()
	ds, err := tqq.Generate(tqq.DefaultConfig(users, seed))
	if err != nil {
		t.Fatal(err)
	}
	return ds.Graph
}

func getJSON(t *testing.T, ts *httptest.Server, path string, want int, out any) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != want {
		t.Fatalf("GET %s = %d, want %d: %s", path, resp.StatusCode, want, body)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("GET %s: decoding %q: %v", path, body, err)
		}
	}
}

func postJSON(t *testing.T, ts *httptest.Server, path string, reqBody any, want int, out any) {
	t.Helper()
	buf, err := json.Marshal(reqBody)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != want {
		t.Fatalf("POST %s = %d, want %d: %s", path, resp.StatusCode, want, body)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("POST %s: decoding %q: %v", path, body, err)
		}
	}
}

func TestEndpointsAgainstLibrary(t *testing.T) {
	g := testGraph(t, 600, 7)
	cfg := testConfig()
	s := New(cfg)
	if err := s.LoadBackend(g); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Snapshot info reflects the loaded graph and epoch 1.
	var info snapshotResponse
	getJSON(t, ts, "/v1/snapshot", 200, &info)
	if info.Epoch != 1 || info.Users != g.NumEntities() || info.Edges != g.NumEdgesTotal() {
		t.Fatalf("snapshot info = %+v", info)
	}
	if len(info.DatasetRisk) != cfg.MaxDistance+1 {
		t.Fatalf("dataset risk has %d entries, want %d", len(info.DatasetRisk), cfg.MaxDistance+1)
	}

	// /v1/risk must agree with standalone library sweeps at every distance
	// (the server's empty LinkTypes config means "all link types").
	for d := 0; d <= cfg.MaxDistance; d++ {
		sigs, err := risk.Signatures(g, risk.SignatureConfig{
			MaxDistance: d, LinkTypes: allLinkTypes(g.Schema()), EntityAttrs: cfg.EntityAttrs,
		})
		if err != nil {
			t.Fatal(err)
		}
		counts := make(map[uint64]int32)
		for _, sg := range sigs {
			counts[sg]++
		}
		for _, user := range []int{0, 17, 599} {
			var rr riskResponse
			getJSON(t, ts, fmt.Sprintf("/v1/risk?user=%d&distance=%d", user, d), 200, &rr)
			wantK := counts[sigs[user]]
			if rr.ClassSize != wantK || rr.Risk != 1/float64(wantK) || rr.Epoch != 1 {
				t.Fatalf("risk(%d, %d) = %+v, want class %d", user, d, rr, wantK)
			}
			if rr.Label != g.Label(hin.EntityID(user)) {
				t.Fatalf("risk label = %q", rr.Label)
			}
		}
	}

	// Top-k is sorted by ascending class size with ids breaking ties.
	var tk topkResponse
	getJSON(t, ts, "/v1/topk?k=25&distance=2", 200, &tk)
	if tk.K != 25 || len(tk.Users) != 25 {
		t.Fatalf("topk = %+v", tk)
	}
	for i := 1; i < len(tk.Users); i++ {
		a, b := tk.Users[i-1], tk.Users[i]
		if a.ClassSize > b.ClassSize || (a.ClassSize == b.ClassSize && a.User >= b.User) {
			t.Fatalf("topk order violated at %d: %+v then %+v", i, a, b)
		}
	}

	// Error surface: missing/malformed params, unknown users, oversized k.
	var er errResponse
	getJSON(t, ts, "/v1/risk", 400, &er)
	if er.Epoch != 1 || er.Error == "" {
		t.Fatalf("missing user error = %+v", er)
	}
	getJSON(t, ts, "/v1/risk?user=abc", 400, nil)
	getJSON(t, ts, "/v1/risk?user=5&distance=9", 400, nil)
	getJSON(t, ts, "/v1/risk?user=600000", 404, &er)
	if er.Epoch != 1 {
		t.Fatalf("unknown-user error must carry the epoch: %+v", er)
	}
	getJSON(t, ts, "/v1/topk?k=100000", 413, nil)
	getJSON(t, ts, "/v1/topk?k=0", 400, nil)

	// /v1/dehin answers exactly what the library's attack answers.
	attack, err := dehin.NewAttack(g, dehin.Config{
		MaxDistance: cfg.AttackDistance, Profile: cfg.Profile, UseIndex: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	snip := snippetFromUser(g, 42)
	want := attack.Deanonymize(mustBuildSnippet(t, g.Schema(), snip), hin.EntityID(snip.Target))
	var dr dehinResponse
	postJSON(t, ts, "/v1/dehin", snip, 200, &dr)
	if dr.Candidates != len(want) || len(dr.Matches) != len(want) {
		t.Fatalf("dehin candidates = %d, want %d", dr.Candidates, len(want))
	}
	for i, m := range dr.Matches {
		if m.User != int32(want[i]) {
			t.Fatalf("dehin match %d = %d, want %d", i, m.User, want[i])
		}
	}
	if dr.Unique != (len(want) == 1) {
		t.Fatalf("unique = %v with %d candidates", dr.Unique, len(want))
	}

	// Malformed snippet bodies.
	resp, err := http.Post(ts.URL+"/v1/dehin", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("malformed dehin body = %d", resp.StatusCode)
	}
	postJSON(t, ts, "/v1/dehin", dehinRequest{}, 400, nil)
	postJSON(t, ts, "/v1/dehin", dehinRequest{
		Entities: []dehinEntity{{Type: "nosuch", Attrs: nil}},
	}, 400, nil)
	postJSON(t, ts, "/v1/dehin", dehinRequest{
		Target:   5,
		Entities: []dehinEntity{{Type: "User", Attrs: []int64{1980, 0, 1, 1}}},
	}, 400, nil)
}

// snippetFromUser builds the attacker's view of one user: its profile and
// out-neighborhood, labels stripped. The target risk answers then depend
// only on structure, as in the paper's threat model.
func snippetFromUser(g *hin.Graph, u hin.EntityID) dehinRequest {
	schema := g.Schema()
	req := dehinRequest{Target: 0}
	ids := map[hin.EntityID]int{}
	addEntity := func(v hin.EntityID) int {
		if i, ok := ids[v]; ok {
			return i
		}
		i := len(req.Entities)
		ids[v] = i
		req.Entities = append(req.Entities, dehinEntity{
			Type:  schema.EntityType(g.EntityType(v)).Name,
			Attrs: g.Attrs(v),
		})
		return i
	}
	addEntity(u)
	for lt := 0; lt < schema.NumLinkTypes(); lt++ {
		tos, ws := g.OutEdges(hin.LinkTypeID(lt), u)
		for i, to := range tos {
			j := addEntity(to)
			req.Links = append(req.Links, dehinLink{
				Type: schema.LinkType(hin.LinkTypeID(lt)).Name,
				From: 0, To: j, Strength: ws[i],
			})
		}
	}
	return req
}

func mustBuildSnippet(t *testing.T, schema *hin.Schema, req dehinRequest) *hin.Graph {
	t.Helper()
	g, err := buildSnippet(schema, &req)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestReloadSwapsEpochAndRetiresFile(t *testing.T) {
	dir := t.TempDir()
	p1 := filepath.Join(dir, "g1.hincsr")
	p2 := filepath.Join(dir, "g2.hincsr")
	if err := hin.WriteCSRFile(p1, testGraph(t, 300, 1)); err != nil {
		t.Fatal(err)
	}
	if err := hin.WriteCSRFile(p2, testGraph(t, 400, 2)); err != nil {
		t.Fatal(err)
	}

	s := New(testConfig())
	if err := s.Load(p1); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var info snapshotResponse
	getJSON(t, ts, "/v1/snapshot", 200, &info)
	if info.Epoch != 1 || info.Users != 300 || info.Source != p1 {
		t.Fatalf("epoch 1 info = %+v", info)
	}

	// A reader holding epoch 1 across the reload keeps a usable graph.
	sn, err := s.acquire()
	if err != nil {
		t.Fatal(err)
	}

	postJSON(t, ts, "/v1/reload", reloadRequest{Source: p2}, 200, &info)
	if info.Epoch != 2 || info.Users != 400 || info.Source != p2 {
		t.Fatalf("epoch 2 info = %+v", info)
	}
	if got := s.Epoch(); got != 2 {
		t.Fatalf("Epoch() = %d", got)
	}

	// The retired epoch's mmap must still be readable while held.
	if sn.g.NumEntities() != 300 || sn.g.Label(7) == "" {
		t.Fatal("retired snapshot unreadable while referenced")
	}
	s.release(sn)

	// An empty source re-opens the current file.
	postJSON(t, ts, "/v1/reload", reloadRequest{}, 200, &info)
	if info.Epoch != 3 || info.Source != p2 {
		t.Fatalf("empty-source reload info = %+v", info)
	}

	// Close drains every epoch; afterwards requests answer 503 and
	// further loads fail.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	getJSON(t, ts, "/v1/risk?user=1", 503, nil)
	if err := s.Load(p1); err == nil {
		t.Fatal("Load after Close succeeded")
	}
}

func TestAttackAdmissionRejectsWhenSaturated(t *testing.T) {
	cfg := testConfig()
	cfg.MaxAttackInFlight = 1
	cfg.MaxAttackQueue = -1 // no waiting: reject the moment the slot is taken
	s := New(cfg)
	if err := s.LoadBackend(testGraph(t, 200, 3)); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	snip := dehinRequest{Entities: []dehinEntity{{Type: "User", Attrs: []int64{1985, 1, 10, 2}}}}

	// Occupy the single slot directly, then observe the fast 429.
	s.attackSlots <- struct{}{}
	postJSON(t, ts, "/v1/dehin", snip, 429, nil)
	if got := s.met.rejected.Value(); got != 1 {
		t.Fatalf("rejected counter = %d", got)
	}
	<-s.attackSlots

	var dr dehinResponse
	postJSON(t, ts, "/v1/dehin", snip, 200, &dr)
	if dr.Epoch != 1 {
		t.Fatalf("dehin epoch = %d", dr.Epoch)
	}
}

func TestNilServerSurface(t *testing.T) {
	var s *Server
	if err := s.Load("x"); err == nil {
		t.Fatal("nil Load")
	}
	if err := s.LoadBackend(nil); err == nil {
		t.Fatal("nil LoadBackend")
	}
	if err := s.Reload(""); err == nil {
		t.Fatal("nil Reload")
	}
	if s.Epoch() != 0 {
		t.Fatal("nil Epoch")
	}
	if err := s.Close(); err != nil {
		t.Fatal("nil Close must be a no-op")
	}
	s.Register(http.NewServeMux()) // must not panic
	if s.Handler() == nil {
		t.Fatal("nil Handler")
	}
}
