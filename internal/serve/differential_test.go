package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"github.com/hinpriv/dehin/internal/dehin"
	"github.com/hinpriv/dehin/internal/hin"
	"github.com/hinpriv/dehin/internal/risk"
	"github.com/hinpriv/dehin/internal/tqq"
)

// The differential graph: 12k t.qq users, large enough that signature
// classes are non-trivial at every distance while the sweep still runs in
// seconds. The sha256 of the serialized CSR file is pinned so the test
// fails loudly if generator or format drift ever changes the input — a
// byte-level comparison against the library is only meaningful when both
// sides provably computed from the same graph.
const (
	diffUsers       = 12000
	diffSeed        = 4
	diffFingerprint = "1a8c53e0655ba5006061ad2de143a913a17b6dabf6884b9f2a600b842e94a2f6"
)

func rawRequest(t *testing.T, ts *httptest.Server, method, path string, body []byte) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, got
}

// wantBody is the server's exact wire encoding of a response value:
// compact JSON plus the trailing newline writeJSON appends.
func wantBody(t *testing.T, v any) []byte {
	t.Helper()
	buf, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return append(buf, '\n')
}

// TestDifferentialAgainstLibrary pins the server to the library on a
// fingerprinted 12k-user graph: every sampled /v1/risk response must be
// byte-identical to the JSON a direct risk.SignatureGrid computation
// predicts, /v1/snapshot's dataset_risk must equal risk.NetworkSweep's
// floats bit-for-bit, and every sampled /v1/dehin answer must match a
// standalone dehin.Attack on the same snippet. The server side runs off
// the mmap CSR backend while the library side runs off the in-memory
// graph, so this doubles as a cross-backend equivalence check.
func TestDifferentialAgainstLibrary(t *testing.T) {
	ds, err := tqq.Generate(tqq.DefaultConfig(diffUsers, diffSeed))
	if err != nil {
		t.Fatal(err)
	}
	g := ds.Graph
	path := filepath.Join(t.TempDir(), "diff.hincsr")
	if err := hin.WriteCSRFile(path, g); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if fp := hex.EncodeToString(sumSHA256(raw)); fp != diffFingerprint {
		t.Fatalf("differential graph fingerprint changed: %s (update diffFingerprint if the generator or CSR format intentionally changed)", fp)
	}

	cfg := testConfig()
	s := New(cfg)
	if err := s.Load(path); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	lts := allLinkTypes(g.Schema())
	libCfg := risk.SignatureConfig{
		MaxDistance: cfg.MaxDistance,
		LinkTypes:   lts,
		EntityAttrs: cfg.EntityAttrs,
	}

	// Dataset risk: /v1/snapshot must carry NetworkSweep's floats exactly.
	sweep, err := risk.NetworkSweep(g, libCfg)
	if err != nil {
		t.Fatal(err)
	}
	var info snapshotResponse
	getJSON(t, ts, "/v1/snapshot", 200, &info)
	if len(info.DatasetRisk) != len(sweep.Risk) {
		t.Fatalf("dataset_risk has %d entries, want %d", len(info.DatasetRisk), len(sweep.Risk))
	}
	for d, want := range sweep.Risk {
		if info.DatasetRisk[d] != want {
			t.Fatalf("dataset_risk[%d] = %v, library NetworkSweep says %v", d, info.DatasetRisk[d], want)
		}
	}

	// Per-user risk: the server precomputes class sizes from
	// risk.SignatureGrid; recompute them independently here and demand the
	// full response body byte-matches at every distance for a spread of
	// users (stride chosen coprime to diffUsers so the sample wraps the
	// whole id space).
	grid, err := risk.SignatureGrid(g, libCfg)
	if err != nil {
		t.Fatal(err)
	}
	for d, sigs := range grid {
		counts := make(map[uint64]int32, len(sigs))
		for _, sg := range sigs {
			counts[sg]++
		}
		for i := 0; i < 40; i++ {
			u := (i * 997) % diffUsers
			k := counts[sigs[u]]
			want := wantBody(t, riskResponse{
				Epoch:     1,
				User:      int32(u),
				Label:     g.Label(hin.EntityID(u)),
				Distance:  d,
				ClassSize: k,
				Risk:      1 / float64(k),
			})
			status, got := rawRequest(t, ts, "GET",
				fmt.Sprintf("/v1/risk?user=%d&distance=%d", u, d), nil)
			if status != 200 || !bytes.Equal(got, want) {
				t.Fatalf("risk(user=%d, d=%d) = %d %q, library predicts %q", u, d, status, got, want)
			}
		}
	}

	// DeHIN: the server's candidate lists must match a standalone library
	// attack with the snapshot's exact configuration, snippet for snippet.
	attack, err := dehin.NewAttack(g, dehin.Config{
		MaxDistance: cfg.AttackDistance,
		LinkTypes:   lts,
		Profile:     cfg.Profile,
		UseIndex:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		u := hin.EntityID((i*577 + 13) % diffUsers)
		req := snippetFromUser(g, u)
		cands := attack.Deanonymize(mustBuildSnippet(t, g.Schema(), req), 0)
		resp := dehinResponse{
			Epoch:      1,
			Candidates: len(cands),
			Unique:     len(cands) == 1,
		}
		if len(cands) > s.cfg.MaxCandidates {
			cands = cands[:s.cfg.MaxCandidates]
			resp.Truncated = true
		}
		resp.Matches = make([]dehinMatch, len(cands))
		for j, v := range cands {
			resp.Matches[j] = dehinMatch{User: int32(v), Label: g.Label(v)}
		}
		body, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		want := wantBody(t, resp)
		status, got := rawRequest(t, ts, "POST", "/v1/dehin", body)
		if status != 200 || !bytes.Equal(got, want) {
			t.Fatalf("dehin(user=%d) = %d %q, library predicts %q", u, status, got, want)
		}
	}
}

func sumSHA256(b []byte) []byte {
	h := sha256.Sum256(b)
	return h[:]
}
