package serve

import (
	"testing"
	"time"

	"github.com/hinpriv/dehin/internal/hin"
	"github.com/hinpriv/dehin/internal/obs/trace"
	"github.com/hinpriv/dehin/internal/tqq"
)

// benchGraph is testGraph without the *testing.T (benchmarks share it).
func benchGraph(users int, seed uint64) (*hin.Graph, error) {
	ds, err := tqq.Generate(tqq.DefaultConfig(users, seed))
	if err != nil {
		return nil, err
	}
	return ds.Graph, nil
}

// riskCore is the steady-state /v1/risk serving path with the HTTP
// plumbing peeled off: per-request flight recording, snapshot acquire,
// the O(1) class lookup, release, capture decision, and the endpoint
// metrics — everything the handler does except URL parsing and JSON
// encoding (both of which allocate by stdlib design and are excluded
// from the zero-alloc contract). Returns the class size as a sink.
func riskCore(s *Server, em endpointMetrics, user int) int32 {
	tm := em.latency.Time()
	fr := s.flight.StartRequest("GET", "/v1/risk", "")
	root := fr.Root("serve.risk")
	var k int32
	code := 200
	sn, err := s.acquire()
	if err != nil {
		code = 503
	} else {
		fr.SetEpoch(sn.epoch)
		k = sn.class[2][user]
		s.release(sn)
	}
	root.Attr("code", int64(code))
	fr.Finish(code)
	tm.Stop()
	em.observe(code)
	return k
}

func newBenchServer(b *testing.B, flight *trace.Flight) (*Server, endpointMetrics) {
	b.Helper()
	cfg := testConfig()
	cfg.Flight = flight
	s := New(cfg)
	g, err := benchGraph(2000, 17)
	if err != nil {
		b.Fatal(err)
	}
	if err := s.LoadBackend(g); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	return s, s.newEndpointMetrics("risk")
}

// BenchmarkServeRisk is the uninstrumented baseline: flight recorder off,
// the nil-check branch is all the recording machinery costs.
func BenchmarkServeRisk(b *testing.B) {
	s, em := newBenchServer(b, nil)
	b.ReportAllocs()
	b.ResetTimer()
	var sink int32
	for i := 0; i < b.N; i++ {
		sink += riskCore(s, em, i%2000)
	}
	benchSink = int64(sink)
}

// BenchmarkServeRiskInstrumented is the same path with the flight
// recorder on and a 1ns threshold, so every iteration takes the
// worst-case route: span recording plus a ring commit. The benchdiff
// gate pins this at 0 allocs/op — the recorder must never add
// allocation to the serving path.
func BenchmarkServeRiskInstrumented(b *testing.B) {
	flight := trace.NewFlight(trace.FlightConfig{Capacity: 64, SlowThreshold: time.Nanosecond})
	s, em := newBenchServer(b, flight)
	b.ReportAllocs()
	b.ResetTimer()
	var sink int32
	for i := 0; i < b.N; i++ {
		sink += riskCore(s, em, i%2000)
	}
	benchSink = int64(sink)
}

var benchSink int64

// TestServeRiskInstrumentedZeroAlloc is the same assertion as the bench
// gate but local and absolute: the fully instrumented steady-state risk
// path performs zero allocations per request, captured or not.
func TestServeRiskInstrumentedZeroAlloc(t *testing.T) {
	for _, tc := range []struct {
		name string
		slow time.Duration
	}{
		{"captured", time.Nanosecond},
		{"uncaptured", time.Hour},
	} {
		t.Run(tc.name, func(t *testing.T) {
			flight := trace.NewFlight(trace.FlightConfig{Capacity: 16, SlowThreshold: tc.slow})
			cfg := testConfig()
			cfg.Flight = flight
			s := New(cfg)
			if err := s.LoadBackend(testGraph(t, 300, 5)); err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			em := s.newEndpointMetrics("risk")
			riskCore(s, em, 1) // warm the pool
			if got := testing.AllocsPerRun(500, func() {
				riskCore(s, em, 42)
			}); got != 0 {
				t.Fatalf("instrumented risk path allocates %.1f/op", got)
			}
		})
	}
}
