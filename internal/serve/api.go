package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"github.com/hinpriv/dehin/internal/hin"
	"github.com/hinpriv/dehin/internal/obs"
	"github.com/hinpriv/dehin/internal/obs/trace"
)

// maxBodyBytes bounds any request body; snippet count limits are checked
// after decoding, this is the pre-parse defense against unbounded reads.
const maxBodyBytes = 1 << 20

// errResponse is the uniform error body. Epoch is present whenever the
// error was answered from a live snapshot (e.g. unknown user), so even
// failures are attributable to an epoch.
type errResponse struct {
	Error string `json:"error"`
	Epoch uint64 `json:"epoch,omitempty"`
}

// riskResponse answers /v1/risk: the privacy risk 1/k of one user at one
// distance, where k is the user's signature class size (Definition 7).
type riskResponse struct {
	Epoch     uint64  `json:"epoch"`
	User      int32   `json:"user"`
	Label     string  `json:"label,omitempty"`
	Distance  int     `json:"distance"`
	ClassSize int32   `json:"class_size"`
	Risk      float64 `json:"risk"`
}

// topkResponse answers /v1/topk: the k most identifiable users (smallest
// signature class, ties by id) at one distance.
type topkResponse struct {
	Epoch    uint64      `json:"epoch"`
	Distance int         `json:"distance"`
	K        int         `json:"k"`
	Users    []topkEntry `json:"users"`
}

type topkEntry struct {
	User      int32   `json:"user"`
	Label     string  `json:"label,omitempty"`
	ClassSize int32   `json:"class_size"`
	Risk      float64 `json:"risk"`
}

// snapshotResponse answers /v1/snapshot and successful /v1/reload: the
// current epoch's provenance and precomputed dataset risk per distance.
type snapshotResponse struct {
	Epoch          uint64    `json:"epoch"`
	Source         string    `json:"source"`
	Users          int       `json:"users"`
	Edges          int64     `json:"edges"`
	MaxDistance    int       `json:"max_distance"`
	AttackDistance int       `json:"attack_distance"`
	LinkTypes      []string  `json:"link_types"`
	DatasetRisk    []float64 `json:"dataset_risk"`
}

// dehinEntity is one entity of a posted auxiliary snippet. Attrs are
// positional against the entity type's declared attributes; Sets name the
// type's set attributes (e.g. "tags").
type dehinEntity struct {
	Type  string             `json:"type"`
	Label string             `json:"label,omitempty"`
	Attrs []int64            `json:"attrs"`
	Sets  map[string][]int32 `json:"sets,omitempty"`
}

// dehinLink is one directed edge of a posted snippet. Strength 0 means 1
// (the only legal strength for unweighted link types).
type dehinLink struct {
	Type     string `json:"type"`
	From     int    `json:"from"`
	To       int    `json:"to"`
	Strength int32  `json:"strength,omitempty"`
}

// dehinRequest is the /v1/dehin body: a small target-network snippet (the
// attacker's view of an anonymized neighborhood) plus the index of the
// entity to de-anonymize against the served graph.
type dehinRequest struct {
	Target   int           `json:"target"`
	Entities []dehinEntity `json:"entities"`
	Links    []dehinLink   `json:"links"`
}

// dehinResponse answers /v1/dehin: the candidate entities of the served
// (auxiliary) graph that the DeHIN attack cannot distinguish from the
// posted target. Unique means the attack pinned exactly one identity.
type dehinResponse struct {
	Epoch      uint64       `json:"epoch"`
	Candidates int          `json:"candidates"`
	Unique     bool         `json:"unique"`
	Matches    []dehinMatch `json:"matches"`
	Truncated  bool         `json:"truncated,omitempty"`
}

type dehinMatch struct {
	User  int32  `json:"user"`
	Label string `json:"label,omitempty"`
}

// Register mounts the /v1 API on mux (typically the obs operational mux,
// so /metrics and /debug ride along). Method routing uses Go 1.22 mux
// patterns; wrong-method requests get the stdlib 405.
func (s *Server) Register(mux *http.ServeMux) {
	if s == nil || mux == nil {
		return
	}
	mux.HandleFunc("GET /v1/risk", s.handle("risk", s.handleRisk))
	mux.HandleFunc("GET /v1/topk", s.handle("topk", s.handleTopK))
	mux.HandleFunc("POST /v1/dehin", s.handle("dehin", s.handleDehin))
	mux.HandleFunc("GET /v1/snapshot", s.handle("snapshot", s.handleSnapshot))
	mux.HandleFunc("GET /v1/healthz", s.handle("healthz", s.handleHealthz))
	mux.HandleFunc("POST /v1/reload", s.handle("reload", s.handleReload))
	mux.HandleFunc("GET /debug/requests", s.handleDebugRequests)
}

// endpointMetrics are one endpoint's pre-resolved handles: registry
// lookups take a mutex, so the per-request path must not perform any.
// The code counters cover every status the handlers emit.
type endpointMetrics struct {
	latency *obs.Histogram
	codes   map[int]*obs.Counter
	other   *obs.Counter
}

func (s *Server) newEndpointMetrics(name string) endpointMetrics {
	m := s.cfg.Metrics
	em := endpointMetrics{
		latency: m.Histogram("serve_request_ns", "endpoint", name),
		codes:   make(map[int]*obs.Counter),
	}
	if m == nil {
		return em
	}
	for _, code := range []int{200, 400, 404, 413, 429, 500, 503} {
		em.codes[code] = m.Counter("serve_requests_total",
			"endpoint", name, "code", strconv.Itoa(code))
	}
	em.other = m.Counter("serve_requests_total", "endpoint", name, "code", "other")
	return em
}

func (em endpointMetrics) observe(code int) {
	if c, ok := em.codes[code]; ok {
		c.Inc()
		return
	}
	em.other.Inc()
}

// handle wraps an endpoint body with the cross-cutting concerns: request
// body capping, latency histogram, status counters, a trace span, the
// flight recorder's per-request span tree, and JSON encoding of whatever
// (status, body) the endpoint returns. The endpoint receives the request
// plus its flight recording handle (nil when the recorder is off; every
// method on it no-ops).
func (s *Server) handle(name string, fn func(r *http.Request, fr *trace.FlightReq) (int, any)) http.HandlerFunc {
	em := s.newEndpointMetrics(name)
	spanName := "serve." + name
	return func(w http.ResponseWriter, r *http.Request) {
		tm := em.latency.Time()
		sp := s.trace.Start(spanName)
		fr := s.flight.StartRequest(r.Method, r.URL.Path, r.URL.RawQuery)
		root := fr.Root(spanName)
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
		}
		code, body := fn(r, fr)
		es := root.Child("encode")
		writeJSON(w, code, body)
		es.End()
		root.Attr("code", int64(code))
		sp.Attr("code", int64(code))
		sp.End()
		if fr.Finish(code) {
			s.met.flightCap.Inc()
		}
		tm.Stop()
		em.observe(code)
	}
}

// handleDebugRequests serves the flight recorder's retained requests:
// deterministic text by default (append ?durations=1 for wall times,
// x/net/trace style), or the JSON export with ?format=json. 404 when no
// recorder is configured, so scrapes can tell "off" from "empty".
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	if s == nil || s.flight == nil {
		http.Error(w, `{"error":"flight recorder disabled"}`, http.StatusNotFound)
		return
	}
	q := r.URL.Query()
	if q.Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		_ = s.flight.WriteJSON(w) //hin:allow errdrop -- a failed debug-response write is the client's problem
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = s.flight.WriteText(w, trace.TreeOptions{Durations: q.Get("durations") == "1"}) //hin:allow errdrop -- a failed debug-response write is the client's problem
}

func writeJSON(w http.ResponseWriter, code int, body any) {
	buf, err := json.Marshal(body)
	if err != nil {
		// Response types are plain data; a marshal failure is a
		// programming error, answered as a bare 500.
		http.Error(w, `{"error":"encoding failure"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(buf, '\n')) //hin:allow errdrop -- the status is already written; a failed body write has no remedy
}

// queryInt parses an integer query parameter, with def when absent.
func queryInt(r *http.Request, name string, def int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: not an integer", name)
	}
	return v, nil
}

// distanceParam parses the shared distance parameter (default: the
// server's MaxDistance — the most identifying view).
func (s *Server) distanceParam(r *http.Request) (int, error) {
	d, err := queryInt(r, "distance", s.cfg.MaxDistance)
	if err != nil {
		return 0, err
	}
	if d < 0 || d > s.cfg.MaxDistance {
		return 0, fmt.Errorf("parameter \"distance\": out of range [0, %d]", s.cfg.MaxDistance)
	}
	return d, nil
}

func (s *Server) handleRisk(r *http.Request, fr *trace.FlightReq) (int, any) {
	sn, err := s.acquire()
	if err != nil {
		return http.StatusServiceUnavailable, errResponse{Error: err.Error()}
	}
	defer s.release(sn)
	fr.SetEpoch(sn.epoch)

	d, err := s.distanceParam(r)
	if err != nil {
		return http.StatusBadRequest, errResponse{Error: err.Error(), Epoch: sn.epoch}
	}
	if r.URL.Query().Get("user") == "" {
		return http.StatusBadRequest, errResponse{Error: `parameter "user": required`, Epoch: sn.epoch}
	}
	user, err := queryInt(r, "user", 0)
	if err != nil {
		return http.StatusBadRequest, errResponse{Error: err.Error(), Epoch: sn.epoch}
	}
	if user < 0 || user >= sn.g.NumEntities() {
		return http.StatusNotFound, errResponse{Error: fmt.Sprintf("unknown user %d", user), Epoch: sn.epoch}
	}
	k := sn.class[d][user]
	return http.StatusOK, riskResponse{
		Epoch:     sn.epoch,
		User:      int32(user),
		Label:     sn.g.Label(hin.EntityID(user)),
		Distance:  d,
		ClassSize: k,
		Risk:      1 / float64(k),
	}
}

func (s *Server) handleTopK(r *http.Request, fr *trace.FlightReq) (int, any) {
	sn, err := s.acquire()
	if err != nil {
		return http.StatusServiceUnavailable, errResponse{Error: err.Error()}
	}
	defer s.release(sn)
	fr.SetEpoch(sn.epoch)

	d, err := s.distanceParam(r)
	if err != nil {
		return http.StatusBadRequest, errResponse{Error: err.Error(), Epoch: sn.epoch}
	}
	k, err := queryInt(r, "k", 10)
	if err != nil {
		return http.StatusBadRequest, errResponse{Error: err.Error(), Epoch: sn.epoch}
	}
	if k <= 0 {
		return http.StatusBadRequest, errResponse{Error: `parameter "k": must be positive`, Epoch: sn.epoch}
	}
	if k > s.cfg.MaxTopK {
		return http.StatusRequestEntityTooLarge, errResponse{
			Error: fmt.Sprintf(`parameter "k": %d exceeds limit %d`, k, s.cfg.MaxTopK), Epoch: sn.epoch}
	}
	order := sn.order[d]
	if k > len(order) {
		k = len(order)
	}
	resp := topkResponse{Epoch: sn.epoch, Distance: d, K: k, Users: make([]topkEntry, k)}
	for i := 0; i < k; i++ {
		v := order[i]
		c := sn.class[d][v]
		resp.Users[i] = topkEntry{
			User:      v,
			Label:     sn.g.Label(hin.EntityID(v)),
			ClassSize: c,
			Risk:      1 / float64(c),
		}
	}
	return http.StatusOK, resp
}

func (s *Server) handleSnapshot(r *http.Request, fr *trace.FlightReq) (int, any) {
	sn, err := s.acquire()
	if err != nil {
		return http.StatusServiceUnavailable, errResponse{Error: err.Error()}
	}
	defer s.release(sn)
	fr.SetEpoch(sn.epoch)
	return http.StatusOK, s.snapshotInfo(sn)
}

// healthzResponse answers /v1/healthz: whether a snapshot is being
// served, its epoch, and the snapshot's age in seconds. Load balancers
// and hinload -wait-ready poll this; 503 until the first load lands.
type healthzResponse struct {
	Status string  `json:"status"`
	Epoch  uint64  `json:"epoch,omitempty"`
	AgeS   float64 `json:"age_s"`
	Error  string  `json:"error,omitempty"`
}

func (s *Server) handleHealthz(r *http.Request, fr *trace.FlightReq) (int, any) {
	sn, err := s.acquire()
	if err != nil {
		return http.StatusServiceUnavailable, healthzResponse{Status: "unavailable", Error: err.Error()}
	}
	defer s.release(sn)
	fr.SetEpoch(sn.epoch)
	age := time.Since(sn.loadedAt).Seconds()
	s.met.snapAge.Set(int64(age))
	return http.StatusOK, healthzResponse{Status: "ok", Epoch: sn.epoch, AgeS: age}
}

func (s *Server) snapshotInfo(sn *snapshot) snapshotResponse {
	schema := sn.g.Schema()
	lts := make([]string, 0, schema.NumLinkTypes())
	if len(s.cfg.LinkTypes) == 0 {
		for i := 0; i < schema.NumLinkTypes(); i++ {
			lts = append(lts, schema.LinkType(hin.LinkTypeID(i)).Name)
		}
	} else {
		for _, lt := range s.cfg.LinkTypes {
			lts = append(lts, schema.LinkType(lt).Name)
		}
	}
	return snapshotResponse{
		Epoch:          sn.epoch,
		Source:         sn.source,
		Users:          sn.g.NumEntities(),
		Edges:          sn.g.NumEdgesTotal(),
		MaxDistance:    s.cfg.MaxDistance,
		AttackDistance: s.cfg.AttackDistance,
		LinkTypes:      lts,
		DatasetRisk:    sn.risk,
	}
}

// reloadRequest is the optional /v1/reload body; an absent or empty
// source re-opens the current snapshot's file.
type reloadRequest struct {
	Source string `json:"source"`
}

func (s *Server) handleReload(r *http.Request, fr *trace.FlightReq) (int, any) {
	var req reloadRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			return http.StatusBadRequest, errResponse{Error: "malformed body: " + err.Error(), Epoch: s.Epoch()}
		}
	}
	ls := fr.Span("load")
	err := s.Reload(req.Source)
	ls.End()
	if err != nil {
		return http.StatusInternalServerError, errResponse{Error: err.Error(), Epoch: s.Epoch()}
	}
	sn, err := s.acquire()
	if err != nil {
		return http.StatusServiceUnavailable, errResponse{Error: err.Error()}
	}
	defer s.release(sn)
	fr.SetEpoch(sn.epoch)
	return http.StatusOK, s.snapshotInfo(sn)
}

// errAttackBusy is the admission-control rejection; handlers map it
// to 429.
var errAttackBusy = errors.New("serve: attack capacity exhausted")

// admitAttack bounds concurrent /v1/dehin work: MaxAttackInFlight slots
// execute, up to MaxAttackQueue requests wait for one, and everything
// beyond that is rejected immediately so a burst degrades to fast 429s
// instead of an unbounded goroutine pile-up. The queue-depth and
// in-flight gauges expose the pressure to scrapes.
func (s *Server) admitAttack(ctx context.Context) (release func(), err error) {
	select {
	case s.attackSlots <- struct{}{}:
	default:
		q := s.queued.Add(1)
		if q > int64(s.cfg.MaxAttackQueue) {
			s.queued.Add(-1)
			s.met.rejected.Inc()
			return nil, errAttackBusy
		}
		s.met.queueDepth.Set(q)
		select {
		case s.attackSlots <- struct{}{}:
			s.met.queueDepth.Set(s.queued.Add(-1))
		case <-ctx.Done():
			s.met.queueDepth.Set(s.queued.Add(-1))
			return nil, ctx.Err()
		}
	}
	s.met.inflight.Inc()
	return func() {
		s.met.inflight.Dec()
		<-s.attackSlots
	}, nil
}

func (s *Server) handleDehin(r *http.Request, fr *trace.FlightReq) (int, any) {
	var req dehinRequest
	ds := fr.Span("decode")
	err := json.NewDecoder(r.Body).Decode(&req)
	ds.End()
	if err != nil {
		return http.StatusBadRequest, errResponse{Error: "malformed body: " + err.Error(), Epoch: s.Epoch()}
	}
	if len(req.Entities) == 0 {
		return http.StatusBadRequest, errResponse{Error: "snippet has no entities", Epoch: s.Epoch()}
	}
	if len(req.Entities) > s.cfg.MaxSnippetEntities {
		return http.StatusRequestEntityTooLarge, errResponse{
			Error: fmt.Sprintf("snippet has %d entities, limit %d", len(req.Entities), s.cfg.MaxSnippetEntities),
			Epoch: s.Epoch()}
	}
	if len(req.Links) > s.cfg.MaxSnippetEdges {
		return http.StatusRequestEntityTooLarge, errResponse{
			Error: fmt.Sprintf("snippet has %d links, limit %d", len(req.Links), s.cfg.MaxSnippetEdges),
			Epoch: s.Epoch()}
	}
	if req.Target < 0 || req.Target >= len(req.Entities) {
		return http.StatusBadRequest, errResponse{
			Error: fmt.Sprintf("target %d out of range [0, %d)", req.Target, len(req.Entities)),
			Epoch: s.Epoch()}
	}

	as := fr.Span("admission")
	release, err := s.admitAttack(r.Context())
	as.End()
	if err != nil {
		if errors.Is(err, errAttackBusy) {
			return http.StatusTooManyRequests, errResponse{Error: err.Error(), Epoch: s.Epoch()}
		}
		return http.StatusServiceUnavailable, errResponse{Error: err.Error(), Epoch: s.Epoch()}
	}
	defer release()

	sn, err := s.acquire()
	if err != nil {
		return http.StatusServiceUnavailable, errResponse{Error: err.Error()}
	}
	defer s.release(sn)
	fr.SetEpoch(sn.epoch)

	ss := fr.Span("snippet")
	target, err := buildSnippet(sn.g.Schema(), &req)
	ss.End()
	if err != nil {
		return http.StatusBadRequest, errResponse{Error: err.Error(), Epoch: sn.epoch}
	}
	qs := fr.Span("attack")
	cands := sn.attack.DeanonymizeSpan(target, hin.EntityID(req.Target), qs)
	qs.Attr("candidates", int64(len(cands)))
	qs.End()
	resp := dehinResponse{
		Epoch:      sn.epoch,
		Candidates: len(cands),
		Unique:     len(cands) == 1,
	}
	if len(cands) > s.cfg.MaxCandidates {
		cands = cands[:s.cfg.MaxCandidates]
		resp.Truncated = true
	}
	resp.Matches = make([]dehinMatch, len(cands))
	for i, v := range cands {
		resp.Matches[i] = dehinMatch{User: int32(v), Label: sn.g.Label(v)}
	}
	return http.StatusOK, resp
}

// buildSnippet materializes a posted snippet as an in-memory graph over
// the served schema. Everything the Builder would panic on is validated
// here first, so malformed snippets come back as 400s.
func buildSnippet(schema *hin.Schema, req *dehinRequest) (*hin.Graph, error) {
	b := hin.NewBuilder(schema)
	for i, e := range req.Entities {
		t, ok := schema.EntityTypeID(e.Type)
		if !ok {
			return nil, fmt.Errorf("entity %d: unknown entity type %q", i, e.Type)
		}
		decl := schema.EntityType(t)
		if len(e.Attrs) != len(decl.Attrs) {
			return nil, fmt.Errorf("entity %d: type %q takes %d attrs, got %d",
				i, e.Type, len(decl.Attrs), len(e.Attrs))
		}
		label := e.Label
		if label == "" {
			label = fmt.Sprintf("t%d", i)
		}
		id := b.AddEntity(t, label, e.Attrs...)
		for name, vals := range e.Sets {
			if schema.SetAttrIndex(t, name) < 0 {
				return nil, fmt.Errorf("entity %d: type %q has no set attribute %q", i, e.Type, name)
			}
			b.SetSet(name, id, vals)
		}
	}
	for i, l := range req.Links {
		lt, ok := schema.LinkTypeID(l.Type)
		if !ok {
			return nil, fmt.Errorf("link %d: unknown link type %q", i, l.Type)
		}
		if l.From < 0 || l.From >= len(req.Entities) || l.To < 0 || l.To >= len(req.Entities) {
			return nil, fmt.Errorf("link %d: endpoint out of range [0, %d)", i, len(req.Entities))
		}
		w := l.Strength
		if w == 0 {
			w = 1
		}
		if err := b.AddEdge(lt, hin.EntityID(l.From), hin.EntityID(l.To), w); err != nil {
			return nil, fmt.Errorf("link %d: %v", i, err)
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("snippet: %v", err)
	}
	return g, nil
}
