package serve

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"github.com/hinpriv/dehin/internal/dehin"
	"github.com/hinpriv/dehin/internal/hin"
	"github.com/hinpriv/dehin/internal/risk"
)

// snapshot is one immutable epoch of served state: the graph, the
// precomputed per-distance signature classes that answer /v1/risk and
// /v1/topk in O(1) and O(k), and the prepared DeHIN attack whose scratch
// pool is naturally keyed to this epoch (the pool lives on the Attack,
// the Attack lives here, so a reload can never hand one epoch's scratch
// to another epoch's graph).
//
// Lifetime is reference-counted, RCU style. refs starts at 1 — the
// reference owned by Server.cur while the snapshot is current. Request
// handlers acquire/release around each request; Server.install transfers
// the pointer reference to the incoming snapshot and drops the retired
// one's. The holder that drops the last reference closes the backing CSR
// file, so a retired epoch lives exactly until its in-flight requests
// drain, and the mmap is never unmapped under a live reader.
type snapshot struct {
	epoch  uint64
	source string // file path, or "(memory)" for LoadBackend epochs
	g      hin.GraphBackend
	file   *hin.CSRFile // nil when the graph is not file-backed

	// class[d][v] is the size of v's signature equivalence class at
	// distance d; per-entity risk is 1/class[d][v] (Definition 7).
	class [][]int32
	// order[d] holds every entity id sorted by (class size asc, id asc):
	// the top-k most identifiable users at distance d are order[d][:k].
	order [][]int32
	// risk[d] is the dataset risk at distance d, bit-identical to
	// risk.NetworkSweep's Risk column (same summation order).
	risk []float64

	attack *dehin.Attack
	refs   atomic.Int64

	// loadedAt is when the snapshot finished building; /v1/healthz
	// reports the age and mirrors it into serve_snapshot_age_s.
	loadedAt time.Time
}

// newSnapshot precomputes the served state for one graph. The signature
// grid is one sweep (risk.SignatureGrid), so building a snapshot costs the
// same as a single MaxDistance risk run plus the attack index.
func newSnapshot(epoch uint64, source string, g hin.GraphBackend, file *hin.CSRFile, cfg Config) (*snapshot, error) {
	// An empty LinkTypes config means "utilize every schema link type".
	// The risk sweep takes the selection literally (Table 1 passes
	// explicit subsets; an empty subset really means no refinement), so
	// the default is resolved here, per snapshot, against the schema.
	lts := cfg.LinkTypes
	if len(lts) == 0 {
		for i := 0; i < g.Schema().NumLinkTypes(); i++ {
			lts = append(lts, hin.LinkTypeID(i))
		}
	}
	grid, err := risk.SignatureGrid(g, risk.SignatureConfig{
		MaxDistance: cfg.MaxDistance,
		LinkTypes:   lts,
		EntityAttrs: cfg.EntityAttrs,
		Workers:     cfg.Workers,
		Metrics:     cfg.Metrics,
		Trace:       cfg.Trace,
	})
	if err != nil {
		return nil, fmt.Errorf("serve: signature grid: %w", err)
	}
	sn := &snapshot{
		epoch:  epoch,
		source: source,
		g:      g,
		file:   file,
		class:  make([][]int32, len(grid)),
		order:  make([][]int32, len(grid)),
		risk:   make([]float64, len(grid)),
	}
	n := g.NumEntities()
	for d, sigs := range grid {
		counts := make(map[uint64]int32, n)
		for _, s := range sigs {
			counts[s]++
		}
		class := make([]int32, n)
		order := make([]int32, n)
		sum := 0.0
		for v, s := range sigs {
			k := counts[s]
			class[v] = k
			order[v] = int32(v)
			sum += 1 / float64(k)
		}
		sort.Slice(order, func(i, j int) bool {
			a, b := order[i], order[j]
			if class[a] != class[b] {
				return class[a] < class[b]
			}
			return a < b
		})
		sn.class[d] = class
		sn.order[d] = order
		if n > 0 {
			sn.risk[d] = sum / float64(n)
		}
	}
	attack, err := dehin.NewAttack(g, dehin.Config{
		MaxDistance: cfg.AttackDistance,
		LinkTypes:   lts,
		Profile:     cfg.Profile,
		UseIndex:    true,
		Parallelism: cfg.Workers,
		Metrics:     cfg.Metrics,
	})
	if err != nil {
		return nil, fmt.Errorf("serve: attack: %w", err)
	}
	sn.attack = attack
	sn.loadedAt = time.Now()
	sn.refs.Store(1)
	return sn, nil
}

// unref drops one reference. The holder that observes zero is by
// construction the last: the snapshot is already retired (the current
// snapshot always holds the Server.cur reference, so a live epoch cannot
// drain), every reader has unpinned, and nobody can acquire it again — so
// closing the file here is race-free, and exactly one goroutine does it.
func (sn *snapshot) unref(s *Server) {
	if sn.refs.Add(-1) != 0 {
		return
	}
	s.met.retired.Inc()
	s.live.Add(-1)
	if sn.file != nil {
		if err := sn.file.Close(); err != nil {
			s.met.closeErrors.Inc()
			s.log.Error("serve: closing retired snapshot", "epoch", sn.epoch, "err", err)
		}
	}
}
