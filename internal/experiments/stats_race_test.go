package experiments

import (
	"runtime"
	"sync"
	"testing"

	"github.com/hinpriv/dehin/internal/dehin"
)

// TestStatsRacingCacheFills hammers Workbench.Stats from a pool of readers
// while other goroutines fill every artifact cache (targets, CGA
// completions, attacks) concurrently. Under -race this proves the Stats
// path is data-race free (the pre-obs implementation read six counters
// non-atomically); the monotonicity and exact-total assertions prove the
// snapshot view is coherent, not just race-free: per-reader snapshots never
// run backwards, and once the fills quiesce the counters add up to exactly
// the accesses performed.
func TestStatsRacingCacheFills(t *testing.T) {
	p := QuickParams()
	p.AuxUsers = 2000
	p.TargetSize = 100
	p.Densities = []float64{0.005, 0.01}
	w, err := NewWorkbench(p)
	if err != nil {
		t.Fatal(err)
	}
	nc := len(p.Densities) * p.SamplesPerDensity

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < runtime.GOMAXPROCS(0)+1; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var prev CacheStats
			for {
				s := w.Stats()
				if s.TargetHits < prev.TargetHits || s.TargetMisses < prev.TargetMisses ||
					s.CGAHits < prev.CGAHits || s.CGAMisses < prev.CGAMisses ||
					s.AttackHits < prev.AttackHits || s.AttackMisses < prev.AttackMisses {
					t.Errorf("Stats ran backwards: %+v -> %+v", prev, s)
					return
				}
				prev = s
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
	}

	const fillers = 8
	var fills sync.WaitGroup
	for i := 0; i < fillers; i++ {
		fills.Add(1)
		go func(i int) {
			defer fills.Done()
			for di := range p.Densities {
				if _, err := w.Targets(di); err != nil {
					t.Error(err)
				}
				if _, err := w.CompletedTargets(di, i%2 == 0); err != nil {
					t.Error(err)
				}
			}
			if _, err := w.Attack(dehin.Config{MaxDistance: 1 + i%2, UseIndex: true}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	fills.Wait()
	close(stop)
	readers.Wait()

	// Exact accounting once quiescent. Targets: nc warm-up misses, then
	// every Targets call hits (fillers x densities) and every CGA miss
	// re-reads its base target (one hit each). CGA: one miss per touched
	// (varyWeights, community) pair - both flavors touch all nc - the rest
	// of the fillers' accesses hit. Attacks: two distinct configurations.
	s := w.Stats()
	cgaMisses := int64(2 * nc)
	cgaAccesses := int64(fillers * len(p.Densities))
	wantTargetHits := int64(fillers*len(p.Densities)) + cgaMisses
	check := func(name string, got, want int64) {
		if got != want {
			t.Errorf("%s = %d, want %d (stats %+v)", name, got, want, s)
		}
	}
	check("TargetMisses", s.TargetMisses, int64(nc))
	check("TargetHits", s.TargetHits, wantTargetHits)
	check("CGAMisses", s.CGAMisses, cgaMisses)
	check("CGAHits", s.CGAHits, cgaAccesses-cgaMisses)
	check("AttackMisses", s.AttackMisses, 2)
	check("AttackHits", s.AttackHits, int64(fillers)-2)
}
