package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"runtime"
	"sync"
	"testing"

	"github.com/hinpriv/dehin/internal/dehin"
)

// parTestParams is small enough to run the full suite several times in a
// test, with two densities and two samples so caches see real sharing.
func parTestParams() Params {
	return Params{
		Seed:              3,
		AuxUsers:          2500,
		TargetSize:        150,
		SamplesPerDensity: 1,
		Densities:         []float64{0.004, 0.01},
		Distances:         []int{0, 1, 2},
	}
}

// tablesHash fingerprints a full suite run by hashing every rendered
// table in order - the "byte-identical output" of the acceptance
// criteria.
func tablesHash(tables []*Table) string {
	h := sha256.New()
	for _, t := range tables {
		h.Write([]byte(t.String()))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestRunAllDeterministicAcrossWorkers is the suite-level determinism
// guarantee: RunAll renders byte-identical tables whether the pipeline is
// fully serial (Workers=1), wide (Workers=8), or GOMAXPROCS-bound at
// either extreme.
func TestRunAllDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) string {
		p := parTestParams()
		p.Workers = workers
		tables, err := RunAll(p)
		if err != nil {
			t.Fatalf("Workers=%d: %v", workers, err)
		}
		if len(tables) != len(runAllOrder) {
			t.Fatalf("Workers=%d: got %d tables, want %d", workers, len(tables), len(runAllOrder))
		}
		return tablesHash(tables)
	}

	serial := run(1)
	if wide := run(8); wide != serial {
		t.Fatal("Workers=8 tables differ from serial")
	}
	prev := runtime.GOMAXPROCS(1)
	atOne := run(0)
	runtime.GOMAXPROCS(runtime.NumCPU())
	atAll := run(0)
	runtime.GOMAXPROCS(prev)
	if atOne != serial {
		t.Fatal("GOMAXPROCS=1 tables differ from serial")
	}
	if atAll != serial {
		t.Fatal("GOMAXPROCS=NumCPU tables differ from serial")
	}
}

// TestWorkbenchCacheConcurrency hammers the artifact cache from many
// goroutines (run under -race via the verify target). Each artifact must
// be computed exactly once and every caller must observe the same shared
// instance.
func TestWorkbenchCacheConcurrency(t *testing.T) {
	p := parTestParams()
	w, err := NewWorkbench(p)
	if err != nil {
		t.Fatal(err)
	}
	warm := w.Stats()
	nComms := len(p.Densities) * p.SamplesPerDensity
	if int(warm.TargetMisses) != nComms {
		t.Fatalf("warm-up released %d targets, want %d", warm.TargetMisses, nComms)
	}

	cfgs := []dehin.Config{
		{MaxDistance: 0},
		{MaxDistance: 1},
		{MaxDistance: 2, RemoveMajorityStrength: true, FallbackProfileOnly: true},
	}
	const goroutines = 16
	baseTargets := make([][]*ReleasedTarget, len(p.Densities))
	baseAttacks := make([]*dehin.Attack, len(cfgs))
	for di := range baseTargets {
		if baseTargets[di], err = w.Targets(di); err != nil {
			t.Fatal(err)
		}
	}
	for i, cfg := range cfgs {
		if baseAttacks[i], err = w.Attack(cfg); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for di := range p.Densities {
				ts, err := w.Targets(di)
				if err != nil {
					errCh <- err
					return
				}
				for ti := range ts {
					if ts[ti] != baseTargets[di][ti] {
						t.Errorf("goroutine %d: target (%d,%d) not the cached instance", g, di, ti)
					}
				}
				if _, err := w.CompletedTargets(di, g%2 == 1); err != nil {
					errCh <- err
					return
				}
			}
			for i, cfg := range cfgs {
				a, err := w.Attack(cfg)
				if err != nil {
					errCh <- err
					return
				}
				if a != baseAttacks[i] {
					t.Errorf("goroutine %d: attack %d not the cached instance", g, i)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	s := w.Stats()
	if s.TargetMisses != warm.TargetMisses {
		t.Fatalf("targets re-released under concurrency: %d misses, want %d", s.TargetMisses, warm.TargetMisses)
	}
	// Both weight modes were requested for every community: 2*nComms
	// completions, computed once each.
	if want := int64(2 * nComms); s.CGAMisses != want {
		t.Fatalf("CGA completions computed %d times, want %d", s.CGAMisses, want)
	}
	if want := int64(len(cfgs)); s.AttackMisses != want {
		t.Fatalf("attacks constructed %d times, want %d", s.AttackMisses, want)
	}
	if s.TargetHits == 0 || s.AttackHits == 0 || s.CGAHits == 0 {
		t.Fatalf("expected cache hits in every class, got %+v", s)
	}
}

// TestAttackCacheBypassesCustomMatchers: configs carrying func-valued
// matchers are not comparable and must never be conflated by the cache.
func TestAttackCacheBypassesCustomMatchers(t *testing.T) {
	p := parTestParams()
	w, err := NewWorkbench(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := dehin.Config{
		MaxDistance: 1,
		EntityMatch: dehin.TQQProfile().ExactMatcher(),
		LinkMatch:   dehin.ExactLinkMatcher,
	}
	a1, err := w.Attack(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := w.Attack(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a1 == a2 {
		t.Fatal("custom-matcher attacks must not be cached")
	}
	if s := w.Stats(); s.AttackMisses != 0 || s.AttackHits != 0 {
		t.Fatalf("custom-matcher attacks should bypass the cache counters, got %+v", s)
	}
}
