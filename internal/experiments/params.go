// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6) on the synthetic t.qq substrate, plus the design
// ablations DESIGN.md calls out. Each experiment has a Run function
// returning a typed result that renders to a paper-shaped text table.
//
// Absolute numbers depend on the (scaled) auxiliary size and the synthetic
// data; the shapes the paper reports are what these runners reproduce and
// what the package tests assert.
package experiments

import (
	"fmt"

	"github.com/hinpriv/dehin/internal/hin"
	"github.com/hinpriv/dehin/internal/obs"
	"github.com/hinpriv/dehin/internal/obs/trace"
	"github.com/hinpriv/dehin/internal/tqq"
)

// Params sizes an experiment run. The paper's setting is AuxUsers
// 2,320,895 / TargetSize 1000 / 57 samples at density 0.01; defaults are
// scaled to run the full suite on a laptop and EXPERIMENTS.md records the
// parameters behind the committed numbers.
type Params struct {
	// Seed drives all dataset and anonymization randomness.
	Seed uint64
	// AuxUsers is the auxiliary network size.
	AuxUsers int
	// TargetSize is the number of users per released target graph.
	TargetSize int
	// SamplesPerDensity is how many independent target graphs are
	// averaged per density (the paper's "57 of the sampled target graphs
	// have density 0.01").
	SamplesPerDensity int
	// Densities are the Equation-4 densities to sweep (Table 2/4,
	// Figure 8).
	Densities []float64
	// Distances are the max-distance values to sweep.
	Distances []int
	// Parallelism bounds attack concurrency; 0 means GOMAXPROCS.
	Parallelism int
	// Workers bounds pipeline concurrency outside the attack inner loop:
	// the sharded generator, the workbench release warm-up pool, and how
	// many experiments RunAll computes at once. 0 means GOMAXPROCS; 1
	// forces the fully serial pipeline. Results are identical for every
	// value.
	Workers int
	// Metrics, when non-nil, attaches the whole pipeline to an obs
	// registry: generator stage timings, workbench cache traffic, attack
	// pruning counters, and per-experiment wall-time histograms. Nil (the
	// default) leaves the attack hot path uninstrumented; the workbench
	// still tracks cache statistics on a private registry so Stats()
	// always works. Metrics never influence results - no random stream
	// ever observes them.
	Metrics *obs.Registry
	// Trace, when non-nil, records the pipeline's span timeline
	// (internal/obs/trace): generator shards, workbench cache fills and
	// hits, one span per RunAll experiment slot, and sampled attack query
	// spans. Like Metrics, tracing never influences results.
	Trace *trace.Tracer
	// Log receives levelled pipeline progress events. Nil disables
	// logging.
	Log *obs.Logger
	// Backend selects the auxiliary graph representation the attacks run
	// against: "" or "mem" keeps the in-memory hin.Graph, "csr" converts
	// it to the compact CSR backend (hin.FromGraph). Results are identical
	// for every value - the backends are differentially tested - so this
	// is a performance/measurement knob, not an experimental variable.
	Backend string
}

// DefaultParams returns the committed configuration: every paper shape is
// visible and the full suite runs in minutes on one core. EXPERIMENTS.md
// records these numbers.
func DefaultParams() Params {
	return Params{
		Seed:              1,
		AuxUsers:          12000,
		TargetSize:        500,
		SamplesPerDensity: 1,
		Densities:         []float64{0.001, 0.002, 0.003, 0.004, 0.005, 0.006, 0.007, 0.008, 0.009, 0.01},
		Distances:         []int{0, 1, 2, 3},
	}
}

// PaperScaleParams returns a larger configuration (50k auxiliary users,
// 1000-user targets like the paper's, 2 samples per density) for the long
// run; expect a couple of hours on a single core. The paper's own 2.3M-
// user scale fits the data structures too (see TestLargeScale) but makes
// the full sweep a batch job.
func PaperScaleParams() Params {
	return Params{
		Seed:              1,
		AuxUsers:          50000,
		TargetSize:        1000,
		SamplesPerDensity: 2,
		Densities:         []float64{0.001, 0.002, 0.003, 0.004, 0.005, 0.006, 0.007, 0.008, 0.009, 0.01},
		Distances:         []int{0, 1, 2, 3},
	}
}

// QuickParams returns a reduced configuration for tests and smoke runs.
func QuickParams() Params {
	return Params{
		Seed:              1,
		AuxUsers:          4000,
		TargetSize:        250,
		SamplesPerDensity: 1,
		Densities:         []float64{0.002, 0.006, 0.01},
		Distances:         []int{0, 1, 2},
	}
}

func (p Params) validate() error {
	if p.AuxUsers < 2 || p.TargetSize < 2 {
		return fmt.Errorf("experiments: bad sizes aux=%d target=%d", p.AuxUsers, p.TargetSize)
	}
	if p.SamplesPerDensity < 1 {
		return fmt.Errorf("experiments: SamplesPerDensity must be >= 1")
	}
	if len(p.Densities) == 0 || len(p.Distances) == 0 {
		return fmt.Errorf("experiments: empty density or distance sweep")
	}
	need := p.TargetSize * p.SamplesPerDensity * len(p.Densities)
	if need > p.AuxUsers {
		return fmt.Errorf("experiments: %d community users exceed %d auxiliary users", need, p.AuxUsers)
	}
	switch p.Backend {
	case "", BackendMem, BackendCSR:
	default:
		return fmt.Errorf("experiments: unknown backend %q (want %q or %q)", p.Backend, BackendMem, BackendCSR)
	}
	return nil
}

// Backend values for Params.Backend.
const (
	BackendMem = "mem"
	BackendCSR = "csr"
)

// LinkSubset names one of the 15 non-empty subsets of {follow, mention,
// comment, retweet} in the paper's Table 1/3 notation (f, m, c, r).
type LinkSubset struct {
	Name  string
	Links []hin.LinkTypeID
}

// LinkSubsets enumerates the subsets in the paper's row order.
func LinkSubsets(schema *hin.Schema) []LinkSubset {
	f := schema.MustLinkTypeID(tqq.LinkFollow)
	m := schema.MustLinkTypeID(tqq.LinkMention)
	c := schema.MustLinkTypeID(tqq.LinkComment)
	r := schema.MustLinkTypeID(tqq.LinkRetweet)
	return []LinkSubset{
		{"f", []hin.LinkTypeID{f}},
		{"m", []hin.LinkTypeID{m}},
		{"c", []hin.LinkTypeID{c}},
		{"r", []hin.LinkTypeID{r}},
		{"f-m", []hin.LinkTypeID{f, m}},
		{"f-c", []hin.LinkTypeID{f, c}},
		{"f-r", []hin.LinkTypeID{f, r}},
		{"m-c", []hin.LinkTypeID{m, c}},
		{"m-r", []hin.LinkTypeID{m, r}},
		{"c-r", []hin.LinkTypeID{c, r}},
		{"f-m-c", []hin.LinkTypeID{f, m, c}},
		{"f-m-r", []hin.LinkTypeID{f, m, r}},
		{"f-c-r", []hin.LinkTypeID{f, c, r}},
		{"m-c-r", []hin.LinkTypeID{m, c, r}},
		{"f-m-c-r", []hin.LinkTypeID{f, m, c, r}},
	}
}
