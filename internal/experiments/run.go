package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Runner regenerates one paper artifact (or ablation) on a prepared
// workbench, returning the rendered tables.
type Runner func(*Workbench) ([]*Table, error)

// Registry maps experiment ids (DESIGN.md's per-experiment index) to
// runners.
func Registry() map[string]Runner {
	return map[string]Runner{
		"table1": func(w *Workbench) ([]*Table, error) {
			r, err := RunTable1(w)
			if err != nil {
				return nil, err
			}
			return []*Table{r.Render()}, nil
		},
		"figure7": func(w *Workbench) ([]*Table, error) {
			r, err := RunTable1(w)
			if err != nil {
				return nil, err
			}
			return []*Table{RunFigure7(r).Render()}, nil
		},
		"table2": func(w *Workbench) ([]*Table, error) {
			r, err := RunTable2(w)
			if err != nil {
				return nil, err
			}
			return []*Table{r.Render()}, nil
		},
		"table3": func(w *Workbench) ([]*Table, error) {
			r, err := RunTable3(w)
			if err != nil {
				return nil, err
			}
			return []*Table{r.Render()}, nil
		},
		"figure9": func(w *Workbench) ([]*Table, error) {
			r, err := RunTable3(w)
			if err != nil {
				return nil, err
			}
			return []*Table{RunFigure9(r).Render()}, nil
		},
		"table4": func(w *Workbench) ([]*Table, error) {
			r, err := RunTable4(w)
			if err != nil {
				return nil, err
			}
			return []*Table{r.Render()}, nil
		},
		"figure8": func(w *Workbench) ([]*Table, error) {
			r, err := RunFigure8(w)
			if err != nil {
				return nil, err
			}
			return []*Table{r.Render()}, nil
		},
		"ablation-growth": func(w *Workbench) ([]*Table, error) {
			r, err := RunGrowthAblation(w)
			if err != nil {
				return nil, err
			}
			return []*Table{r.Render()}, nil
		},
		"ablation-baseline": func(w *Workbench) ([]*Table, error) {
			r, err := RunBaselineAblation(w)
			if err != nil {
				return nil, err
			}
			return []*Table{r.Render()}, nil
		},
		"ablation-homog": func(w *Workbench) ([]*Table, error) {
			r, err := RunHomogeneousAblation(w)
			if err != nil {
				return nil, err
			}
			return []*Table{r.Render()}, nil
		},
		"utility": func(w *Workbench) ([]*Table, error) {
			r, err := RunUtility(w)
			if err != nil {
				return nil, err
			}
			return []*Table{r.Render()}, nil
		},
		"ablation-perturb": func(w *Workbench) ([]*Table, error) {
			r, err := RunPerturbAblation(w)
			if err != nil {
				return nil, err
			}
			return []*Table{r.Render()}, nil
		},
		"obscurity": func(w *Workbench) ([]*Table, error) {
			r, err := RunObscurity(w)
			if err != nil {
				return nil, err
			}
			return []*Table{r.Render()}, nil
		},
		"ablation-bottleneck": func(w *Workbench) ([]*Table, error) {
			r, err := RunBottleneck(w)
			if err != nil {
				return nil, err
			}
			return []*Table{r.Render()}, nil
		},
	}
}

// Names lists the registered experiment ids, sorted.
func Names() []string {
	reg := Registry()
	out := make([]string, 0, len(reg))
	for k := range reg {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by id on a fresh workbench.
func Run(id string, p Params) ([]*Table, error) {
	r, ok := Registry()[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, Names())
	}
	w, err := NewWorkbench(p)
	if err != nil {
		return nil, err
	}
	return r(w)
}

// RunAll executes every experiment on one shared workbench, computing the
// expensive sweeps once: Table 1 also yields Figure 7, Table 3 yields
// Figure 9, and Table 2 plus the two CGA sweeps yield Table 4 and
// Figure 8.
func RunAll(p Params) ([]*Table, error) {
	return RunAllTo(nil, p)
}

// RunAllTo is RunAll streaming each rendered table (with a timing line) to
// w as soon as it is computed; pass nil to collect silently.
func RunAllTo(sink io.Writer, p Params) ([]*Table, error) {
	w, err := NewWorkbench(p)
	if err != nil {
		return nil, err
	}
	if sink != nil {
		fmt.Fprintf(sink, "workbench ready: %d users, %d edges\n\n",
			w.Dataset.Graph.NumEntities(), w.Dataset.Graph.NumEdgesTotal())
	}
	var out []*Table
	last := time.Now()
	add := func(t *Table) {
		out = append(out, t)
		if sink != nil {
			fmt.Fprintf(sink, "%s[%v]\n\n", t, time.Since(last).Round(time.Millisecond))
			last = time.Now()
		}
	}

	t1, err := RunTable1(w)
	if err != nil {
		return nil, fmt.Errorf("experiments: table1: %w", err)
	}
	add(t1.Render())
	add(RunFigure7(t1).Render())

	t2, err := RunTable2(w)
	if err != nil {
		return nil, fmt.Errorf("experiments: table2: %w", err)
	}
	add(t2.Render())

	t3, err := RunTable3(w)
	if err != nil {
		return nil, fmt.Errorf("experiments: table3: %w", err)
	}
	add(t3.Render())
	add(RunFigure9(t3).Render())

	cga, err := runCGASweep(w, false)
	if err != nil {
		return nil, fmt.Errorf("experiments: table4: %w", err)
	}
	add(cga.Render())
	vw, err := runCGASweep(w, true)
	if err != nil {
		return nil, fmt.Errorf("experiments: figure8: %w", err)
	}
	add(figure8From(p, t2, cga, vw).Render())

	growth, err := RunGrowthAblation(w)
	if err != nil {
		return nil, fmt.Errorf("experiments: ablation-growth: %w", err)
	}
	add(growth.Render())
	base, err := RunBaselineAblation(w)
	if err != nil {
		return nil, fmt.Errorf("experiments: ablation-baseline: %w", err)
	}
	add(base.Render())
	homog, err := RunHomogeneousAblation(w)
	if err != nil {
		return nil, fmt.Errorf("experiments: ablation-homog: %w", err)
	}
	add(homog.Render())
	util, err := RunUtility(w)
	if err != nil {
		return nil, fmt.Errorf("experiments: utility: %w", err)
	}
	add(util.Render())
	perturb, err := RunPerturbAblation(w)
	if err != nil {
		return nil, fmt.Errorf("experiments: ablation-perturb: %w", err)
	}
	add(perturb.Render())
	bottleneck, err := RunBottleneck(w)
	if err != nil {
		return nil, fmt.Errorf("experiments: ablation-bottleneck: %w", err)
	}
	add(bottleneck.Render())
	obscurity, err := RunObscurity(w)
	if err != nil {
		return nil, fmt.Errorf("experiments: obscurity: %w", err)
	}
	add(obscurity.Render())
	return out, nil
}
