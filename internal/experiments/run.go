package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Runner regenerates one paper artifact (or ablation) on a prepared
// workbench, returning the rendered tables.
type Runner func(*Workbench) ([]*Table, error)

// Registry maps experiment ids (DESIGN.md's per-experiment index) to
// runners.
func Registry() map[string]Runner {
	return map[string]Runner{
		"table1": func(w *Workbench) ([]*Table, error) {
			r, err := RunTable1(w)
			if err != nil {
				return nil, err
			}
			return []*Table{r.Render()}, nil
		},
		"figure7": func(w *Workbench) ([]*Table, error) {
			r, err := RunTable1(w)
			if err != nil {
				return nil, err
			}
			return []*Table{RunFigure7(r).Render()}, nil
		},
		"table2": func(w *Workbench) ([]*Table, error) {
			r, err := RunTable2(w)
			if err != nil {
				return nil, err
			}
			return []*Table{r.Render()}, nil
		},
		"table3": func(w *Workbench) ([]*Table, error) {
			r, err := RunTable3(w)
			if err != nil {
				return nil, err
			}
			return []*Table{r.Render()}, nil
		},
		"figure9": func(w *Workbench) ([]*Table, error) {
			r, err := RunTable3(w)
			if err != nil {
				return nil, err
			}
			return []*Table{RunFigure9(r).Render()}, nil
		},
		"table4": func(w *Workbench) ([]*Table, error) {
			r, err := RunTable4(w)
			if err != nil {
				return nil, err
			}
			return []*Table{r.Render()}, nil
		},
		"figure8": func(w *Workbench) ([]*Table, error) {
			r, err := RunFigure8(w)
			if err != nil {
				return nil, err
			}
			return []*Table{r.Render()}, nil
		},
		"ablation-growth": func(w *Workbench) ([]*Table, error) {
			r, err := RunGrowthAblation(w)
			if err != nil {
				return nil, err
			}
			return []*Table{r.Render()}, nil
		},
		"ablation-baseline": func(w *Workbench) ([]*Table, error) {
			r, err := RunBaselineAblation(w)
			if err != nil {
				return nil, err
			}
			return []*Table{r.Render()}, nil
		},
		"ablation-homog": func(w *Workbench) ([]*Table, error) {
			r, err := RunHomogeneousAblation(w)
			if err != nil {
				return nil, err
			}
			return []*Table{r.Render()}, nil
		},
		"utility": func(w *Workbench) ([]*Table, error) {
			r, err := RunUtility(w)
			if err != nil {
				return nil, err
			}
			return []*Table{r.Render()}, nil
		},
		"ablation-perturb": func(w *Workbench) ([]*Table, error) {
			r, err := RunPerturbAblation(w)
			if err != nil {
				return nil, err
			}
			return []*Table{r.Render()}, nil
		},
		"obscurity": func(w *Workbench) ([]*Table, error) {
			r, err := RunObscurity(w)
			if err != nil {
				return nil, err
			}
			return []*Table{r.Render()}, nil
		},
		"ablation-bottleneck": func(w *Workbench) ([]*Table, error) {
			r, err := RunBottleneck(w)
			if err != nil {
				return nil, err
			}
			return []*Table{r.Render()}, nil
		},
	}
}

// Names lists the registered experiment ids, sorted.
func Names() []string {
	reg := Registry()
	out := make([]string, 0, len(reg))
	for k := range reg {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by id on a fresh workbench.
func Run(id string, p Params) ([]*Table, error) {
	w, err := NewWorkbench(p)
	if err != nil {
		return nil, err
	}
	return RunOn(w, id)
}

// RunOn executes one experiment by id on a caller-owned workbench,
// sharing its artifact cache with whatever ran before.
func RunOn(w *Workbench, id string) ([]*Table, error) {
	r, ok := Registry()[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, Names())
	}
	return r(w)
}

// cell is a concurrency-safe lazily-computed intermediate shared between
// experiment slots (Table 1 feeds Figure 7, Table 3 feeds Figure 9, the
// CGA sweeps feed Table 4 and Figure 8). Whichever slot asks first
// computes; the rest block on the same result.
type cell[T any] struct {
	once sync.Once
	fn   func() (T, error)
	val  T
	err  error
}

func newCell[T any](fn func() (T, error)) *cell[T] {
	return &cell[T]{fn: fn}
}

func (c *cell[T]) get() (T, error) {
	c.once.Do(func() {
		c.val, c.err = c.fn()
		c.fn = nil
	})
	return c.val, c.err
}

// runAllOrder is the fixed output order of the full suite - the order the
// serial pipeline always printed, kept stable no matter which experiment
// finishes first.
var runAllOrder = []string{
	"table1", "figure7", "table2", "table3", "figure9", "table4", "figure8",
	"ablation-growth", "ablation-baseline", "ablation-homog", "utility",
	"ablation-perturb", "ablation-bottleneck", "obscurity",
}

// ExperimentTiming records one experiment slot's wall time inside RunAll.
// Under concurrency the times overlap; their sum exceeds the suite's
// wall clock.
type ExperimentTiming struct {
	ID      string
	Elapsed time.Duration
}

// RunAll executes every experiment on one shared workbench, computing the
// expensive sweeps once: Table 1 also yields Figure 7, Table 3 yields
// Figure 9, and Table 2 plus the two CGA sweeps yield Table 4 and
// Figure 8.
func RunAll(p Params) ([]*Table, error) {
	out, _, _, err := RunAllTimed(nil, p)
	return out, err
}

// RunAllTo is RunAll streaming each rendered table (with a timing line) to
// sink as soon as its turn in the fixed order comes; pass nil to collect
// silently.
func RunAllTo(sink io.Writer, p Params) ([]*Table, error) {
	out, _, _, err := RunAllTimed(sink, p)
	return out, err
}

// RunAllTimed is RunAllTo returning per-experiment wall times and the
// final artifact-cache statistics alongside the tables.
//
// Independent experiments run concurrently over the shared workbench, at
// most p.Workers at a time (0 = GOMAXPROCS). Shared intermediates are
// computed once in whichever slot needs them first; every other artifact
// comes from the workbench cache. Output is streamed to sink in the fixed
// suite order as a finished slot reaches the front, so the rendered
// tables are byte-identical for every Workers value - concurrency moves
// only the timing lines.
func RunAllTimed(sink io.Writer, p Params) ([]*Table, []ExperimentTiming, CacheStats, error) {
	w, err := NewWorkbench(p)
	if err != nil {
		return nil, nil, CacheStats{}, err
	}
	if sink != nil {
		//hin:allow errdrop -- progress narration: a sink write failure must not abort the run
		fmt.Fprintf(sink, "workbench ready: %d users, %d edges\n\n",
			w.Dataset.Graph.NumEntities(), w.Dataset.Graph.NumEdgesTotal())
	}

	t1 := newCell(func() (*Table1Result, error) { return RunTable1(w) })
	t2 := newCell(func() (*Table2Result, error) { return RunTable2(w) })
	t3 := newCell(func() (*Table3Result, error) { return RunTable3(w) })
	cga := newCell(func() (*Table4Result, error) { return runCGASweep(w, false) })
	vw := newCell(func() (*Table4Result, error) { return runCGASweep(w, true) })

	compute := map[string]func() (*Table, error){
		"table1": func() (*Table, error) {
			r, err := t1.get()
			if err != nil {
				return nil, err
			}
			return r.Render(), nil
		},
		"figure7": func() (*Table, error) {
			r, err := t1.get()
			if err != nil {
				return nil, err
			}
			return RunFigure7(r).Render(), nil
		},
		"table2": func() (*Table, error) {
			r, err := t2.get()
			if err != nil {
				return nil, err
			}
			return r.Render(), nil
		},
		"table3": func() (*Table, error) {
			r, err := t3.get()
			if err != nil {
				return nil, err
			}
			return r.Render(), nil
		},
		"figure9": func() (*Table, error) {
			r, err := t3.get()
			if err != nil {
				return nil, err
			}
			return RunFigure9(r).Render(), nil
		},
		"table4": func() (*Table, error) {
			r, err := cga.get()
			if err != nil {
				return nil, err
			}
			return r.Render(), nil
		},
		"figure8": func() (*Table, error) {
			t2r, err := t2.get()
			if err != nil {
				return nil, err
			}
			cgar, err := cga.get()
			if err != nil {
				return nil, err
			}
			vwr, err := vw.get()
			if err != nil {
				return nil, err
			}
			return figure8From(p, t2r, cgar, vwr).Render(), nil
		},
	}
	for _, id := range []string{"ablation-growth", "ablation-baseline",
		"ablation-homog", "utility", "ablation-perturb",
		"ablation-bottleneck", "obscurity"} {
		runner := Registry()[id]
		compute[id] = func() (*Table, error) {
			ts, err := runner(w)
			if err != nil {
				return nil, err
			}
			return ts[0], nil
		}
	}

	type slotResult struct {
		tbl     *Table
		err     error
		elapsed time.Duration
	}
	results := make([]slotResult, len(runAllOrder))
	done := make([]chan struct{}, len(runAllOrder))
	for i := range done {
		done[i] = make(chan struct{})
	}
	// One span per experiment slot, each on its own lane: the exported
	// timeline shows the actual concurrency schedule - which slots ran
	// together and which serialized behind a shared intermediate.
	suite := p.Trace.Start("experiments.run_all")
	suite.Attr("slots", int64(len(runAllOrder)))
	go runLimited(p.Workers, len(runAllOrder), func(i int) {
		sp := suite.Fork(runAllOrder[i])
		//hin:allow determinism -- per-slot wall time feeds the -timing report and histograms only; experiment tables never see it
		start := time.Now()
		tbl, err := compute[runAllOrder[i]]()
		//hin:allow determinism -- reporting-only, same as the time.Now above
		elapsed := time.Since(start)
		sp.End()
		// One histogram per experiment id; under concurrency the slots
		// overlap, so these record per-slot wall time, not suite time.
		p.Metrics.Histogram("experiments_run_ns", "id", runAllOrder[i]).
			Observe(elapsed.Nanoseconds())
		p.Log.Debug("experiments: slot done",
			"id", runAllOrder[i], "elapsed", elapsed)
		results[i] = slotResult{tbl: tbl, err: err, elapsed: elapsed}
		close(done[i])
	})

	defer suite.End()
	var out []*Table
	timings := make([]ExperimentTiming, 0, len(runAllOrder))
	var firstErr error
	for i, id := range runAllOrder {
		<-done[i]
		r := results[i]
		timings = append(timings, ExperimentTiming{ID: id, Elapsed: r.elapsed})
		if r.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("experiments: %s: %w", id, r.err)
			}
			continue
		}
		if firstErr != nil {
			continue
		}
		out = append(out, r.tbl)
		if sink != nil {
			fmt.Fprintf(sink, "%s\n\n", r.tbl) //hin:allow errdrop -- progress narration: a sink write failure must not abort the run
		}
	}
	if firstErr != nil {
		return nil, timings, w.Stats(), firstErr
	}
	return out, timings, w.Stats(), nil
}
