package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment artifact: a titled, aligned text table
// mirroring the paper's layout.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		b.WriteString("* ")
		b.WriteString(n)
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the table as RFC-4180 comma-separated values (header row
// first, notes omitted), ready for external plotting tools.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Slug derives a filesystem-friendly name from the table title, e.g.
// "table-1" or "ablation-time-gap-growth".
func (t *Table) Slug() string {
	title := t.Title
	if i := strings.IndexByte(title, ':'); i >= 0 {
		title = title[:i]
	}
	var b strings.Builder
	lastDash := true
	for _, r := range strings.ToLower(title) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
			lastDash = false
		default:
			if !lastDash {
				b.WriteByte('-')
				lastDash = true
			}
		}
	}
	return strings.TrimRight(b.String(), "-")
}

// pct formats a fraction as a percentage with one decimal, like the
// paper's tables.
func pct(v float64) string { return fmt.Sprintf("%.1f", v*100) }

// pct3 formats a fraction as a percentage with three decimals (reduction
// rates in the paper are reported as e.g. 99.989).
func pct3(v float64) string { return fmt.Sprintf("%.3f", v*100) }
