package experiments

import (
	"strings"
	"sync"
	"testing"
)

// sharedBench builds one quick workbench for the whole test package; the
// fixture is immutable, so tests share it safely.
var (
	benchOnce sync.Once
	benchW    *Workbench
	benchErr  error
)

func quickBench(t *testing.T) *Workbench {
	t.Helper()
	benchOnce.Do(func() {
		benchW, benchErr = NewWorkbench(QuickParams())
	})
	if benchErr != nil {
		t.Fatal(benchErr)
	}
	return benchW
}

func TestParamsValidate(t *testing.T) {
	good := QuickParams()
	if err := good.validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Params){
		func(p *Params) { p.AuxUsers = 1 },
		func(p *Params) { p.TargetSize = 1 },
		func(p *Params) { p.SamplesPerDensity = 0 },
		func(p *Params) { p.Densities = nil },
		func(p *Params) { p.Distances = nil },
		func(p *Params) { p.AuxUsers = p.TargetSize * len(p.Densities) * p.SamplesPerDensity / 2 },
	}
	for i, mod := range bad {
		p := QuickParams()
		mod(&p)
		if err := p.validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestLinkSubsetsOrder(t *testing.T) {
	w := quickBench(t)
	subs := LinkSubsets(w.Dataset.Graph.Schema())
	if len(subs) != 15 {
		t.Fatalf("got %d subsets", len(subs))
	}
	if subs[0].Name != "f" || subs[14].Name != "f-m-c-r" {
		t.Fatalf("order wrong: %s .. %s", subs[0].Name, subs[14].Name)
	}
	sizes := 0
	for _, s := range subs {
		sizes += len(s.Links)
		if subsetSize(s.Name) != len(s.Links) {
			t.Fatalf("%s: name/links mismatch", s.Name)
		}
	}
	if sizes != 32 { // 4*1 + 6*2 + 4*3 + 1*4
		t.Fatalf("total link count %d", sizes)
	}
}

func TestWorkbenchTargets(t *testing.T) {
	w := quickBench(t)
	for di := range w.Params.Densities {
		targets, err := w.Targets(di)
		if err != nil {
			t.Fatal(err)
		}
		if len(targets) != w.Params.SamplesPerDensity {
			t.Fatalf("density %d: %d targets", di, len(targets))
		}
		for _, rt := range targets {
			if rt.Graph.NumEntities() != w.Params.TargetSize {
				t.Fatalf("target size %d", rt.Graph.NumEntities())
			}
			if len(rt.Truth) != w.Params.TargetSize {
				t.Fatalf("truth size %d", len(rt.Truth))
			}
			// Ground truth consistency: same attributes.
			for i := 0; i < 20; i++ {
				a := rt.Graph.Attrs(0)
				b := w.Dataset.Graph.Attrs(rt.Truth[0])
				for j := range a {
					if a[j] != b[j] {
						t.Fatal("truth attribute mismatch")
					}
				}
			}
			// Labels actually anonymized.
			if rt.Graph.Label(0) == w.Dataset.Graph.Label(rt.Truth[0]) {
				t.Fatal("labels leak identity")
			}
		}
	}
	if _, err := w.Targets(99); err == nil {
		t.Fatal("bad density index accepted")
	}
}

func TestTable1Shapes(t *testing.T) {
	w := quickBench(t)
	r, err := RunTable1(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Subsets) != 15 {
		t.Fatalf("subsets = %d", len(r.Subsets))
	}
	// Paper shape 1: n=0 risk is tiny (tag-count cardinality / N).
	if r.RiskAtZero > 0.1 {
		t.Fatalf("distance-0 risk = %g, should be small", r.RiskAtZero)
	}
	// Paper shape 2: risk at distance >= 1 is large for the full subset.
	full := r.Risk[14]
	if full[0] < 0.5 {
		t.Fatalf("full-subset distance-1 risk = %g, want large", full[0])
	}
	// Paper shape 3: risk is non-decreasing in distance per subset.
	for si, row := range r.Risk {
		for ni := 1; ni < len(row); ni++ {
			if row[ni] < row[ni-1]-1e-9 {
				t.Fatalf("subset %s: risk fell from %g to %g", r.Subsets[si], row[ni-1], row[ni])
			}
		}
	}
	// Paper shape 4: the full subset dominates every single-type subset.
	for si := 0; si < 4; si++ {
		if r.Risk[si][0] > full[0]+1e-9 {
			t.Fatalf("single subset %s beats full subset", r.Subsets[si])
		}
	}
}

func TestFigure7MonotoneInLinkCount(t *testing.T) {
	w := quickBench(t)
	t1, err := RunTable1(w)
	if err != nil {
		t.Fatal(err)
	}
	f7 := RunFigure7(t1)
	if len(f7.Series) != 4 {
		t.Fatalf("series = %d", len(f7.Series))
	}
	// At each distance >= 1, average risk grows with the number of link
	// types.
	for ni := 1; ni < len(f7.Distances); ni++ {
		for k := 1; k < 4; k++ {
			if f7.Series[k][ni] < f7.Series[k-1][ni]-1e-9 {
				t.Fatalf("distance %d: risk with %d types < with %d", f7.Distances[ni], k+1, k)
			}
		}
	}
	// Distance 0 equals the profile-only constant.
	for k := 0; k < 4; k++ {
		if f7.Series[k][0] != t1.RiskAtZero {
			t.Fatal("distance-0 column should be the constant profile risk")
		}
	}
}

func TestTable2Shapes(t *testing.T) {
	w := quickBench(t)
	r, err := RunTable2(w)
	if err != nil {
		t.Fatal(err)
	}
	nd, nn := len(r.Densities), len(r.Distances)
	// Paper shape 1: at max distance, precision grows with density
	// (endpoints; mid-sweep noise tolerated).
	if r.Cells[nd-1][nn-1].Precision <= r.Cells[0][nn-1].Precision {
		t.Fatalf("densest precision %g <= sparsest %g",
			r.Cells[nd-1][nn-1].Precision, r.Cells[0][nn-1].Precision)
	}
	// Paper shape 2: distance 1 crushes distance 0 at high density.
	if r.Cells[nd-1][1].Precision < 4*r.Cells[nd-1][0].Precision {
		t.Fatalf("distance-1 precision %g not >> distance-0 %g",
			r.Cells[nd-1][1].Precision, r.Cells[nd-1][0].Precision)
	}
	// Paper shape 3: precision never decreases with distance.
	for di := range r.Cells {
		for ni := 1; ni < nn; ni++ {
			if r.Cells[di][ni].Precision < r.Cells[di][ni-1].Precision-1e-9 {
				t.Fatalf("density %g: precision fell with distance", r.Densities[di])
			}
		}
	}
	// Paper shape 4: reduction rate is always enormous.
	for di := range r.Cells {
		for ni := 0; ni < nn; ni++ {
			if r.Cells[di][ni].ReductionRate < 0.99 {
				t.Fatalf("reduction rate %g < 0.99", r.Cells[di][ni].ReductionRate)
			}
		}
	}
	// Paper shape 5: densest target at distance >= 1 is mostly
	// de-anonymized.
	if r.Cells[nd-1][nn-1].Precision < 0.6 {
		t.Fatalf("densest precision = %g, want most users de-anonymized",
			r.Cells[nd-1][nn-1].Precision)
	}
}

func TestTable3Shapes(t *testing.T) {
	w := quickBench(t)
	r, err := RunTable3(w)
	if err != nil {
		t.Fatal(err)
	}
	f9 := RunFigure9(r)
	// Precision averaged by link-type count is monotone in the count at
	// every distance.
	for ni := range f9.Distances {
		for k := 1; k < 4; k++ {
			if f9.Series[k][ni] < f9.Series[k-1][ni]-1e-9 {
				t.Fatalf("distance idx %d: precision with %d types < with %d", ni, k+1, k)
			}
		}
	}
	// Full subset beats the profile-only floor decisively.
	last := len(r.Distances) - 1
	if r.Cells[14][last].Precision < 4*r.AtZero.Precision {
		t.Fatalf("full subset %g not >> profile-only %g",
			r.Cells[14][last].Precision, r.AtZero.Precision)
	}
}

func TestTable4AndFigure8Shapes(t *testing.T) {
	w := quickBench(t)
	f8, err := RunFigure8(w)
	if err != nil {
		t.Fatal(err)
	}
	nd := len(f8.Densities)
	nn := len(f8.Distances)
	for di := 0; di < nd; di++ {
		for ni := 0; ni < nn; ni++ {
			k, c, v := f8.KDDA[di][ni], f8.CGA[di][ni], f8.VWCGA[di][ni]
			// CGA degrades DeHIN but does not stop it at distance >= 1
			// for dense targets; VW-CGA pins it at the n=0 level.
			if ni >= 1 {
				if c > k+1e-9 {
					t.Fatalf("density %g n=%d: CGA precision %g exceeds KDDA %g",
						f8.Densities[di], f8.Distances[ni], c, k)
				}
				if v > f8.VWCGA[di][0]+1e-9 {
					t.Fatalf("density %g: VW-CGA precision grew with distance (%g > %g)",
						f8.Densities[di], v, f8.VWCGA[di][0])
				}
			}
		}
	}
	// At the densest panel and deepest distance, CGA still loses badly
	// to the attack (the paper's headline for Section 6.2) while VW-CGA
	// holds it near the profile floor.
	dLast, nLast := nd-1, nn-1
	if f8.CGA[dLast][nLast] < 0.4 {
		t.Fatalf("re-configured DeHIN vs CGA precision = %g, want substantial", f8.CGA[dLast][nLast])
	}
	if f8.VWCGA[dLast][nLast] > 2*f8.KDDA[dLast][0]+0.05 {
		t.Fatalf("VW-CGA precision %g should stay near the profile floor %g",
			f8.VWCGA[dLast][nLast], f8.KDDA[dLast][0])
	}
}

func TestGrowthAblation(t *testing.T) {
	w := quickBench(t)
	r, err := RunGrowthAblation(w)
	if err != nil {
		t.Fatal(err)
	}
	last := len(r.Distances) - 1
	// Exact matching on a synchronized snapshot is the easiest setting.
	if r.Synchronized[last].Precision < r.GrownTolerant[last].Precision-1e-9 {
		t.Fatalf("synchronized precision %g < grown-tolerant %g",
			r.Synchronized[last].Precision, r.GrownTolerant[last].Precision)
	}
	// A mis-specified exact matcher against a grown crawl collapses.
	if r.GrownExact[last].Precision > r.GrownTolerant[last].Precision {
		t.Fatalf("exact matcher on grown aux (%g) should not beat tolerant (%g)",
			r.GrownExact[last].Precision, r.GrownTolerant[last].Precision)
	}
	// Growth-tolerant attack still works after growth.
	if r.GrownTolerant[last].Precision < 0.3 {
		t.Fatalf("growth-tolerant precision %g collapsed", r.GrownTolerant[last].Precision)
	}
}

func TestBaselineAblation(t *testing.T) {
	w := quickBench(t)
	r, err := RunBaselineAblation(w)
	if err != nil {
		t.Fatal(err)
	}
	last := len(r.Densities) - 1
	// DeHIN beats the profile-only attack on dense targets.
	if r.DeHIN1[last] <= r.ProfileOnly[last] {
		t.Fatalf("DeHIN %g <= profile-only %g", r.DeHIN1[last], r.ProfileOnly[last])
	}
}

func TestHomogeneousAblation(t *testing.T) {
	w := quickBench(t)
	r, err := RunHomogeneousAblation(w)
	if err != nil {
		t.Fatal(err)
	}
	last := len(r.Distances) - 1
	for li, name := range r.Names {
		if r.Single[li][last] > r.All[last]+1e-9 {
			t.Fatalf("homogeneous %s (%g) beats heterogeneous (%g)",
				name, r.Single[li][last], r.All[last])
		}
	}
}

func TestUtilityTradeoff(t *testing.T) {
	w := quickBench(t)
	r, err := RunUtility(w)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]UtilityRow{}
	for _, row := range r.Rows {
		byName[row.Scheme] = row
	}
	kdda := byName["KDDA (ID randomization)"]
	cga := byName["CGA"]
	vw := byName["VW-CGA"]
	kcopy := byName["k-copy automorphism (k=2)"]
	if kcopy.Precision < kdda.Precision-1e-9 {
		t.Fatalf("k-copy lowered precision: %g vs %g (structural anonymity inside the release must not matter)",
			kcopy.Precision, kdda.Precision)
	}
	if kdda.EdgesAdded != 0 || kdda.WeightL1 != 0 {
		t.Fatal("KDDA should cost nothing")
	}
	if cga.EdgesAdded == 0 || vw.EdgesAdded == 0 {
		t.Fatal("CGA variants must add edges")
	}
	// Section 6.3: VW-CGA buys privacy (lower precision) at higher
	// information loss than CGA.
	if vw.Precision > cga.Precision+1e-9 {
		t.Fatalf("VW-CGA precision %g should be <= CGA %g", vw.Precision, cga.Precision)
	}
	if vw.FakeWeight <= cga.FakeWeight {
		t.Fatalf("VW-CGA fake weight %d should exceed CGA %d", vw.FakeWeight, cga.FakeWeight)
	}
}

func TestPerturbAblation(t *testing.T) {
	w := quickBench(t)
	r, err := RunPerturbAblation(w)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rates[0] != 0 {
		t.Fatal("sweep must include the unperturbed point")
	}
	// Rate 0 equals the plain attack; heavy perturbation must hurt.
	if r.Precision[0] < r.Precision[len(r.Precision)-1] {
		t.Fatalf("perturbation helped the attacker: %v", r.Precision)
	}
	if r.Precision[len(r.Precision)-1] > 0.8*r.Precision[0]+0.05 {
		t.Fatalf("40%% perturbation barely hurt: %v", r.Precision)
	}
	// Utility cost grows with the rate.
	for i := 1; i < len(r.EditRatio); i++ {
		if r.EditRatio[i] < r.EditRatio[i-1]-1e-9 {
			t.Fatalf("edit ratio not monotone: %v", r.EditRatio)
		}
	}
}

func TestBottleneck(t *testing.T) {
	w := quickBench(t)
	r, err := RunBottleneck(w)
	if err != nil {
		t.Fatal(err)
	}
	last := len(r.Distances) - 1
	if r.Converged[last] != 1 {
		t.Fatalf("final distance must be fully converged: %v", r.Converged)
	}
	for i := 1; i <= last; i++ {
		if r.Risk[i] < r.Risk[i-1]-1e-9 || r.Converged[i] < r.Converged[i-1]-1e-9 {
			t.Fatalf("profiles not monotone: risk=%v conv=%v", r.Risk, r.Converged)
		}
	}
	if r.LeafFrac < 0 || r.LeafFrac > 1 {
		t.Fatalf("leaf fraction %g", r.LeafFrac)
	}
}

func TestObscurity(t *testing.T) {
	w := quickBench(t)
	r, err := RunObscurity(w)
	if err != nil {
		t.Fatal(err)
	}
	last := len(r.Densities) - 1
	// Section 6.4: the fixed re-configured attack stays substantial on
	// BOTH anonymizations at the densest setting.
	if r.ReconfigKDDA[last] < 0.3 || r.ReconfigCGA[last] < 0.3 {
		t.Fatalf("re-configured attack collapsed: kdda=%g cga=%g",
			r.ReconfigKDDA[last], r.ReconfigCGA[last])
	}
	// The informed adversary is at least as good as the one-size-fits-all
	// attack on KDDA.
	if r.Plain[last] < r.ReconfigKDDA[last]-1e-9 {
		t.Fatalf("plain %g < reconfig-on-KDDA %g", r.Plain[last], r.ReconfigKDDA[last])
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{
		Title:  "T",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"x", "y"}, {"longer", "z"}},
		Notes:  []string{"note"},
	}
	out := tbl.String()
	for _, want := range []string{"T\n", "a", "bb", "longer", "* note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryAndRunUnknown(t *testing.T) {
	if len(Names()) != 14 {
		t.Fatalf("registered experiments = %d: %v", len(Names()), Names())
	}
	if _, err := Run("nope", QuickParams()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestAllRenders exercises every experiment's Render path end to end on
// the shared quick workbench, checking each table has a title, a header,
// and at least one row.
func TestAllRenders(t *testing.T) {
	w := quickBench(t)
	var tables []*Table

	t1, err := RunTable1(w)
	if err != nil {
		t.Fatal(err)
	}
	tables = append(tables, t1.Render(), RunFigure7(t1).Render())
	t2, err := RunTable2(w)
	if err != nil {
		t.Fatal(err)
	}
	tables = append(tables, t2.Render())
	t3, err := RunTable3(w)
	if err != nil {
		t.Fatal(err)
	}
	tables = append(tables, t3.Render(), RunFigure9(t3).Render())
	t4, err := RunTable4(w)
	if err != nil {
		t.Fatal(err)
	}
	tables = append(tables, t4.Render())
	f8, err := RunFigure8(w)
	if err != nil {
		t.Fatal(err)
	}
	tables = append(tables, f8.Render())
	growth, err := RunGrowthAblation(w)
	if err != nil {
		t.Fatal(err)
	}
	tables = append(tables, growth.Render())
	base, err := RunBaselineAblation(w)
	if err != nil {
		t.Fatal(err)
	}
	tables = append(tables, base.Render())
	homog, err := RunHomogeneousAblation(w)
	if err != nil {
		t.Fatal(err)
	}
	tables = append(tables, homog.Render())
	util, err := RunUtility(w)
	if err != nil {
		t.Fatal(err)
	}
	tables = append(tables, util.Render())
	perturb, err := RunPerturbAblation(w)
	if err != nil {
		t.Fatal(err)
	}
	tables = append(tables, perturb.Render())
	bn, err := RunBottleneck(w)
	if err != nil {
		t.Fatal(err)
	}
	tables = append(tables, bn.Render())
	ob, err := RunObscurity(w)
	if err != nil {
		t.Fatal(err)
	}
	tables = append(tables, ob.Render())

	for i, tb := range tables {
		if tb.Title == "" || len(tb.Header) == 0 || len(tb.Rows) == 0 {
			t.Fatalf("table %d is hollow: %+v", i, tb)
		}
		out := tb.String()
		if !strings.Contains(out, tb.Header[0]) {
			t.Fatalf("table %d render lost its header:\n%s", i, out)
		}
	}
}

// TestRunRegisteredExperiment covers the Run entry point on the cheapest
// experiment id.
func TestRunRegisteredExperiment(t *testing.T) {
	p := QuickParams()
	p.AuxUsers = 2000
	p.TargetSize = 150
	p.Densities = []float64{0.01}
	p.Distances = []int{0, 1}
	tables, err := Run("table1", p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) != 15 {
		t.Fatalf("table1 run: %v", tables)
	}
}

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTableCSVAndSlug(t *testing.T) {
	tbl := &Table{
		Title:  "Table 2: DeHIN on things, in percent",
		Header: []string{"Density", "Prec"},
		Rows:   [][]string{{"0.001", "12.6"}, {"has,comma", `has"quote`}},
		Notes:  []string{"ignored in CSV"},
	}
	csv := tbl.CSV()
	want := "Density,Prec\n0.001,12.6\n\"has,comma\",\"has\"\"quote\"\n"
	if csv != want {
		t.Fatalf("CSV:\n%q\nwant\n%q", csv, want)
	}
	if got := tbl.Slug(); got != "table-2" {
		t.Fatalf("Slug = %q", got)
	}
	if got := (&Table{Title: "Ablation: time-gap growth!"}).Slug(); got != "ablation" {
		t.Fatalf("Slug = %q", got)
	}
	if got := (&Table{Title: "Figure 8 panels"}).Slug(); got != "figure-8-panels" {
		t.Fatalf("Slug = %q", got)
	}
}
