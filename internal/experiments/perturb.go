package experiments

import (
	"fmt"

	"github.com/hinpriv/dehin/internal/anonymize"
	"github.com/hinpriv/dehin/internal/dehin"
	"github.com/hinpriv/dehin/internal/hin"
	"github.com/hinpriv/dehin/internal/risk"
	"github.com/hinpriv/dehin/internal/tqq"
)

// PerturbAblationResult sweeps random edge perturbation (the Section 4.1
// "adding, deleting, switching edges" toolbox) on the densest targets and
// reports the privacy/utility frontier it buys: deleting or rewiring real
// edges is the only lever here that can break DeHIN's no-false-negative
// guarantee, and it does so in proportion to the damage.
type PerturbAblationResult struct {
	Params  Params
	Density float64
	// Rates are the swept perturbation rates (applied as both DeleteProb
	// and SwitchProb/2, with matching AddFrac).
	Rates []float64
	// Precision[i] is DeHIN precision at the deepest distance under
	// Rates[i]; EditRatio[i] the edge-edit distance over original edges.
	Precision []float64
	EditRatio []float64
}

// RunPerturbAblation executes the sweep.
func RunPerturbAblation(w *Workbench) (*PerturbAblationResult, error) {
	p := w.Params
	di := len(p.Densities) - 1
	targets, err := w.Targets(di)
	if err != nil {
		return nil, err
	}
	maxN := 0
	for _, n := range p.Distances {
		if n > maxN {
			maxN = n
		}
	}
	strengthMax := w.GenConfig().StrengthMax
	res := &PerturbAblationResult{
		Params:  p,
		Density: p.Densities[di],
		Rates:   []float64{0, 0.05, 0.1, 0.2, 0.4},
	}
	for ri, rate := range res.Rates {
		// The rational adversary calibrates neighbor tolerance to the
		// damage: with deletion rate r, rewiring r/2 and addition r, the
		// expected bad-edge fraction per link type is about 1.5r; the
		// adversary over-provisions to 2.5r to absorb binomial spread.
		tol := 2.5 * rate
		if tol > 0.9 {
			tol = 0.9
		}
		a, err := w.Attack(dehin.Config{MaxDistance: maxN, NeighborTolerance: tol})
		if err != nil {
			return nil, err
		}
		var precSum, editSum float64
		for ti, rt := range targets {
			pg, err := anonymize.Perturb(rt.Graph, anonymize.PerturbOptions{
				DeleteProb:  rate,
				SwitchProb:  rate / 2,
				AddFrac:     rate,
				StrengthMax: strengthMax,
				Seed:        p.Seed + uint64(ri*100+ti),
			})
			if err != nil {
				return nil, err
			}
			u, err := anonymize.MeasureUtility(rt.Graph, pg)
			if err != nil {
				return nil, err
			}
			r, err := a.Run(pg, rt.Truth)
			if err != nil {
				return nil, err
			}
			precSum += r.Precision
			editSum += float64(u.EdgeEditDistance()) / float64(rt.Graph.NumEdgesTotal())
		}
		n := float64(len(targets))
		res.Precision = append(res.Precision, precSum/n)
		res.EditRatio = append(res.EditRatio, editSum/n)
	}
	return res, nil
}

// Render lays the frontier out one rate per row.
func (r *PerturbAblationResult) Render() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Ablation: random edge perturbation vs DeHIN (density %g)", r.Density),
		Header: []string{"Rate", "Precision %", "Edit ratio"},
	}
	for i, rate := range r.Rates {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", rate),
			pct(r.Precision[i]),
			fmt.Sprintf("%.2f", r.EditRatio[i]),
		})
	}
	t.Notes = append(t.Notes,
		"rate r: each edge deleted w.p. r, rewired w.p. r/2, and r fake edges added per survivor",
		"unlike CGA, deletion/rewiring can eliminate the true counterpart (no-false-negative breaks)")
	return t
}

// BottleneckResult realizes the Section 4.4 / Figure 5 analysis: how much
// of the network has already converged (signature final) at each distance,
// explaining why risk saturates instead of growing to 1.
type BottleneckResult struct {
	Params  Params
	Density float64
	// Distances lists 0..max; Risk and Converged come from
	// risk.ConvergenceProfile averaged over samples.
	Distances []int
	Risk      []float64
	Converged []float64
	// LeafFrac is the fraction of entities with no out-edges via any
	// utilized link type (the v4'/v5' leaf scenario of Figure 5).
	LeafFrac float64
}

// RunBottleneck computes the convergence profile on the densest targets.
func RunBottleneck(w *Workbench) (*BottleneckResult, error) {
	p := w.Params
	di := len(p.Densities) - 1
	targets, err := w.Targets(di)
	if err != nil {
		return nil, err
	}
	maxN := 0
	for _, n := range p.Distances {
		if n > maxN {
			maxN = n
		}
	}
	var lts []hin.LinkTypeID
	for i := 0; i < w.Dataset.Graph.Schema().NumLinkTypes(); i++ {
		lts = append(lts, hin.LinkTypeID(i))
	}
	res := &BottleneckResult{Params: p, Density: p.Densities[di]}
	for n := 0; n <= maxN; n++ {
		res.Distances = append(res.Distances, n)
	}
	res.Risk = make([]float64, maxN+1)
	res.Converged = make([]float64, maxN+1)
	leafs := 0
	total := 0
	for _, rt := range targets {
		cv, err := risk.ConvergenceProfile(rt.Graph, risk.SignatureConfig{
			MaxDistance: maxN,
			LinkTypes:   lts,
			EntityAttrs: []int{tqq.AttrNumTags},
			Workers:     p.Workers,
		})
		if err != nil {
			return nil, err
		}
		for d := 0; d <= maxN; d++ {
			res.Risk[d] += cv.Risk[d]
			res.Converged[d] += cv.Converged[d]
		}
		for v := 0; v < rt.Graph.NumEntities(); v++ {
			total++
			deg := 0
			for _, lt := range lts {
				deg += rt.Graph.OutDegree(lt, hin.EntityID(v))
			}
			if deg == 0 {
				leafs++
			}
		}
	}
	n := float64(len(targets))
	for d := 0; d <= maxN; d++ {
		res.Risk[d] /= n
		res.Converged[d] /= n
	}
	res.LeafFrac = float64(leafs) / float64(total)
	return res, nil
}

// Render lays the profile out one distance per row.
func (r *BottleneckResult) Render() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Ablation: risk saturation bottlenecks (Section 4.4, density %g)", r.Density),
		Header: []string{"Max distance", "Risk %", "Converged %"},
	}
	for i, d := range r.Distances {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", d),
			pct(r.Risk[i]),
			pct(r.Converged[i]),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("leaf entities (no out-edges via any utilized link type): %s%%", pct(r.LeafFrac)),
		"risk stops growing once the converged fraction reaches 1 (Figure 5's bottleneck scenarios)")
	return t
}
