package experiments

import (
	"fmt"

	"github.com/hinpriv/dehin/internal/risk"
	"github.com/hinpriv/dehin/internal/tqq"
)

// Table1Result reproduces Table 1 (and feeds Figure 7): the privacy risk
// of the anonymized density-0.01 target network as the utilized link types
// and the max distance of utilized neighbors grow.
type Table1Result struct {
	Params Params
	// Density is the density of the analyzed targets (the paper's 0.01 -
	// here the largest swept density).
	Density float64
	// Distances are the max-distance columns (>= 1; distance 0 is the
	// constant RiskAtZero, as in the paper's footnote).
	Distances []int
	// Subsets are the 15 link-type subsets in paper order.
	Subsets []string
	// Risk[si][di] is the mean risk for subset si at Distances[di].
	Risk [][]float64
	// RiskAtZero is the n=0 risk (profile-only; numtags cardinality / N).
	RiskAtZero float64
}

// RunTable1 evaluates privacy risk per Theorem 1 on the released targets
// of the largest density, sweeping link-type subsets and distances.
// Entity cardinality uses only the number of tags, per Section 6.1.
func RunTable1(w *Workbench) (*Table1Result, error) {
	p := w.Params
	di := len(p.Densities) - 1
	targets, err := w.Targets(di)
	if err != nil {
		return nil, err
	}
	var distances []int
	for _, n := range p.Distances {
		if n >= 1 {
			distances = append(distances, n)
		}
	}
	if len(distances) == 0 {
		return nil, fmt.Errorf("experiments: table1 needs a distance >= 1")
	}
	subsets := LinkSubsets(w.Dataset.Graph.Schema())
	res := &Table1Result{
		Params:    p,
		Density:   p.Densities[di],
		Distances: distances,
	}
	maxDist := 0
	for _, n := range distances {
		if n > maxDist {
			maxDist = n
		}
	}
	for _, s := range subsets {
		res.Subsets = append(res.Subsets, s.Name)
		row := make([]float64, len(distances))
		// One sweep per target covers every distance column at once
		// (risk.SweepResult risk values are bit-identical to the
		// per-distance NetworkRisk calls this replaces).
		for _, rt := range targets {
			sw, err := risk.NetworkSweep(rt.Graph, risk.SignatureConfig{
				MaxDistance: maxDist,
				LinkTypes:   s.Links,
				EntityAttrs: []int{tqq.AttrNumTags},
				Workers:     p.Workers,
			})
			if err != nil {
				return nil, err
			}
			for ni, n := range distances {
				row[ni] += sw.Risk[n]
			}
		}
		for ni := range row {
			row[ni] /= float64(len(targets))
		}
		res.Risk = append(res.Risk, row)
	}
	r0 := 0.0
	for _, rt := range targets {
		r, err := risk.NetworkRisk(rt.Graph, risk.SignatureConfig{
			MaxDistance: 0,
			EntityAttrs: []int{tqq.AttrNumTags},
			Workers:     p.Workers,
		})
		if err != nil {
			return nil, err
		}
		r0 += r
	}
	res.RiskAtZero = r0 / float64(len(targets))
	return res, nil
}

// Render lays the result out like the paper's Table 1.
func (r *Table1Result) Render() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Table 1: Privacy risk of the anonymized t.qq-style network (density %g, size %d), in percent", r.Density, r.Params.TargetSize),
		Header: []string{"Types of Links \\ Max Distance"},
	}
	for _, n := range r.Distances {
		t.Header = append(t.Header, fmt.Sprintf("%d", n))
	}
	for si, name := range r.Subsets {
		row := []string{name}
		for ni := range r.Distances {
			row = append(row, pct(r.Risk[si][ni]))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"f: follow; m: mention; r: retweet; c: comment",
		fmt.Sprintf("n = 0: only target entities' profiles are utilized and risk is always %s%%", pct(r.RiskAtZero)),
	)
	return t
}

// Figure7Result averages Table 1's risk over subsets with the same number
// of link types, per distance 0..max - the paper's Figure 7 series.
type Figure7Result struct {
	Params Params
	// Distances includes 0.
	Distances []int
	// Series[k-1][di] is the mean risk using k link types at
	// Distances[di].
	Series [][]float64
}

// RunFigure7 derives Figure 7 from a Table 1 run.
func RunFigure7(t1 *Table1Result) *Figure7Result {
	res := &Figure7Result{
		Params:    t1.Params,
		Distances: append([]int{0}, t1.Distances...),
	}
	for k := 1; k <= 4; k++ {
		series := make([]float64, len(res.Distances))
		series[0] = t1.RiskAtZero
		count := 0
		for si, name := range t1.Subsets {
			if subsetSize(name) != k {
				continue
			}
			count++
			for ni := range t1.Distances {
				series[ni+1] += t1.Risk[si][ni]
			}
		}
		for ni := 1; ni < len(series); ni++ {
			series[ni] /= float64(count)
		}
		res.Series = append(res.Series, series)
	}
	return res
}

// subsetSize counts the link types in a subset name like "f-m-c".
func subsetSize(name string) int {
	n := 1
	for _, c := range name {
		if c == '-' {
			n++
		}
	}
	return n
}

// Render lays Figure 7 out as a table: one row per link-type count, one
// column per distance.
func (r *Figure7Result) Render() *Table {
	t := &Table{
		Title:  "Figure 7: Privacy risk (percent) vs max distance, averaged by number of utilized link types",
		Header: []string{"Link types \\ Max Distance"},
	}
	for _, n := range r.Distances {
		t.Header = append(t.Header, fmt.Sprintf("%d", n))
	}
	for k, series := range r.Series {
		row := []string{fmt.Sprintf("%d", k+1)}
		for _, v := range series {
			row = append(row, pct(v))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
