package experiments

import (
	"os"
	"strconv"
	"testing"
	"time"

	"github.com/hinpriv/dehin/internal/dehin"
)

// TestLargeScale exercises the generation and attack pipeline at a large
// auxiliary size (default 500k users; the paper's 2.3M fits the same data
// structures). It is opt-in because it needs several GB of memory:
//
//	DEHIN_LARGE=500000 go test ./internal/experiments/ -run TestLargeScale -v
func TestLargeScale(t *testing.T) {
	env := os.Getenv("DEHIN_LARGE")
	if env == "" {
		t.Skip("set DEHIN_LARGE=<users> to run the large-scale pipeline test")
	}
	users, err := strconv.Atoi(env)
	if err != nil || users < 10000 {
		t.Fatalf("bad DEHIN_LARGE %q", env)
	}
	start := time.Now()
	p := Params{
		Seed:              1,
		AuxUsers:          users,
		TargetSize:        1000,
		SamplesPerDensity: 1,
		Densities:         []float64{0.01},
		Distances:         []int{0, 1},
	}
	w, err := NewWorkbench(p)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("generated %d users, %d edges in %v",
		w.Dataset.Graph.NumEntities(), w.Dataset.Graph.NumEdgesTotal(),
		time.Since(start).Round(time.Millisecond))

	targets, err := w.Targets(0)
	if err != nil {
		t.Fatal(err)
	}
	a, err := w.Attack(dehin.Config{MaxDistance: 1})
	if err != nil {
		t.Fatal(err)
	}
	mid := time.Now()
	res, err := a.Run(targets[0].Graph, targets[0].Truth)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("attack on 1000 targets vs %d-user aux: precision %.1f%%, reduction %.3f%%, %v",
		users, res.Precision*100, res.ReductionRate*100, time.Since(mid).Round(time.Millisecond))
	if res.Precision < 0.5 {
		t.Fatalf("density-0.01 precision collapsed at scale: %g", res.Precision)
	}
	if res.ReductionRate < 0.999 {
		t.Fatalf("reduction rate %g", res.ReductionRate)
	}
	// Spot-check the generator's profile calibration holds at scale.
	if c := len(w.Dataset.Communities[0]); c != 1000 {
		t.Fatalf("community size %d", c)
	}
}
