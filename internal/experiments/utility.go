package experiments

import (
	"fmt"

	"github.com/hinpriv/dehin/internal/anonymize"
	"github.com/hinpriv/dehin/internal/dehin"
	"github.com/hinpriv/dehin/internal/hin"
)

// UtilityRow pairs one anonymization scheme's privacy outcome (DeHIN
// precision at the deepest swept distance) with its utility cost, making
// the paper's Section 6.3 privacy/utility tradeoff explicit.
type UtilityRow struct {
	Scheme        string
	Precision     float64
	EdgesAdded    int64
	WeightL1      int64
	FakeWeight    int64
	EdgeEditRatio float64 // edits / original edges
}

// UtilityResult covers KDDA, CGA, VW-CGA, k-degree and strength
// generalization on the densest targets.
type UtilityResult struct {
	Params  Params
	Density float64
	Rows    []UtilityRow
}

// RunUtility measures the privacy/utility frontier.
func RunUtility(w *Workbench) (*UtilityResult, error) {
	p := w.Params
	di := len(p.Densities) - 1
	targets, err := w.Targets(di)
	if err != nil {
		return nil, err
	}
	maxN := 0
	for _, n := range p.Distances {
		if n > maxN {
			maxN = n
		}
	}
	strengthMax := w.GenConfig().StrengthMax
	// The CGA / VW-CGA rows reuse the workbench's cached completions -
	// the exact graphs Table 4 and Figure 8 attack - so the frontier is
	// measured on the artifacts the privacy numbers came from.
	cga, err := w.CompletedTargets(di, false)
	if err != nil {
		return nil, err
	}
	vwcga, err := w.CompletedTargets(di, true)
	if err != nil {
		return nil, err
	}
	res := &UtilityResult{Params: p, Density: p.Densities[di]}

	type scheme struct {
		name      string
		transform func(*ReleasedTarget, int) (*ReleasedTarget, anonymize.Utility, error)
		reconfig  bool
	}
	schemes := []scheme{
		{"KDDA (ID randomization)", func(rt *ReleasedTarget, i int) (*ReleasedTarget, anonymize.Utility, error) {
			return rt, anonymize.Utility{}, nil
		}, false},
		{"CGA", func(rt *ReleasedTarget, i int) (*ReleasedTarget, anonymize.Utility, error) {
			u, err := anonymize.MeasureUtility(rt.Graph, cga[i].Graph)
			return cga[i], u, err
		}, true},
		{"VW-CGA", func(rt *ReleasedTarget, i int) (*ReleasedTarget, anonymize.Utility, error) {
			u, err := anonymize.MeasureUtility(rt.Graph, vwcga[i].Graph)
			return vwcga[i], u, err
		}, true},
		{"k-degree (k=10)", func(rt *ReleasedTarget, i int) (*ReleasedTarget, anonymize.Utility, error) {
			g, err := anonymize.KDegree(rt.Graph, anonymize.KDegreeOptions{K: 10, StrengthMax: strengthMax, Seed: p.Seed + uint64(i)})
			if err != nil {
				return nil, anonymize.Utility{}, err
			}
			u, err := anonymize.MeasureUtility(rt.Graph, g)
			return &ReleasedTarget{Graph: g, Truth: rt.Truth}, u, err
		}, true},
		{"k-copy automorphism (k=2)", func(rt *ReleasedTarget, i int) (*ReleasedTarget, anonymize.Utility, error) {
			// Structural anonymity inside the release; utility measured
			// as the duplicated edge mass. DeHIN is unaffected - each
			// copy joins to the same individual outside.
			res, err := anonymize.KCopy(rt.Graph, 2)
			if err != nil {
				return nil, anonymize.Utility{}, err
			}
			truth := make([]hin.EntityID, len(res.ToOrig))
			for ri, orig := range res.ToOrig {
				truth[ri] = rt.Truth[orig]
			}
			u := anonymize.Utility{EdgesAdded: rt.Graph.NumEdgesTotal()}
			return &ReleasedTarget{Graph: res.Graph, Truth: truth}, u, nil
		}, false},
		{"strength generalization (k=5)", func(rt *ReleasedTarget, i int) (*ReleasedTarget, anonymize.Utility, error) {
			g, _, _, err := anonymize.GeneralizeStrengths(rt.Graph, 5, strengthMax)
			if err != nil {
				return nil, anonymize.Utility{}, err
			}
			u, err := anonymize.MeasureUtility(rt.Graph, g)
			return &ReleasedTarget{Graph: g, Truth: rt.Truth}, u, err
		}, false},
	}

	for _, s := range schemes {
		var precSum float64
		var util anonymize.Utility
		var origEdges int64
		for ti, rt := range targets {
			hardened, u, err := s.transform(rt, ti)
			if err != nil {
				return nil, err
			}
			util.EdgesAdded += u.EdgesAdded
			util.EdgesRemoved += u.EdgesRemoved
			util.WeightL1 += u.WeightL1
			util.FakeWeightMass += u.FakeWeightMass
			origEdges += rt.Graph.NumEdgesTotal()
			a, err := w.Attack(dehin.Config{
				MaxDistance:            maxN,
				RemoveMajorityStrength: s.reconfig,
				FallbackProfileOnly:    s.reconfig,
			})
			if err != nil {
				return nil, err
			}
			r, err := a.Run(hardened.Graph, hardened.Truth)
			if err != nil {
				return nil, err
			}
			precSum += r.Precision
		}
		n := float64(len(targets))
		res.Rows = append(res.Rows, UtilityRow{
			Scheme:        s.name,
			Precision:     precSum / n,
			EdgesAdded:    util.EdgesAdded,
			WeightL1:      util.WeightL1,
			FakeWeight:    util.FakeWeightMass,
			EdgeEditRatio: float64(util.EdgeEditDistance()) / float64(origEdges),
		})
	}
	return res, nil
}

// Render lays the tradeoff out one scheme per row.
func (r *UtilityResult) Render() *Table {
	t := &Table{
		Title: fmt.Sprintf("Privacy/utility tradeoff (density %g): DeHIN precision vs information loss", r.Density),
		Header: []string{"Scheme", "Precision %", "Edges added", "Weight L1",
			"Fake weight", "Edit ratio"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Scheme,
			pct(row.Precision),
			fmt.Sprintf("%d", row.EdgesAdded),
			fmt.Sprintf("%d", row.WeightL1),
			fmt.Sprintf("%d", row.FakeWeight),
			fmt.Sprintf("%.2f", row.EdgeEditRatio),
		})
	}
	t.Notes = append(t.Notes, "CGA/VW-CGA rows attack with the re-configured DeHIN; utility sums over all samples")
	return t
}
