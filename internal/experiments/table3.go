package experiments

import (
	"fmt"

	"github.com/hinpriv/dehin/internal/dehin"
)

// Table3Result reproduces Table 3 (and feeds Figure 9): DeHIN on the
// densest targets as the utilized link types grow.
type Table3Result struct {
	Params    Params
	Density   float64
	Distances []int // >= 1
	Subsets   []string
	// Cells[si][ni] is the mean over samples for subset si at
	// Distances[ni].
	Cells [][]Cell
	// AtZero is the distance-0 (profile-only) cell, constant across
	// subsets.
	AtZero Cell
}

// RunTable3 sweeps the 15 link-type subsets at the largest density.
func RunTable3(w *Workbench) (*Table3Result, error) {
	p := w.Params
	di := len(p.Densities) - 1
	targets, err := w.Targets(di)
	if err != nil {
		return nil, err
	}
	var distances []int
	for _, n := range p.Distances {
		if n >= 1 {
			distances = append(distances, n)
		}
	}
	if len(distances) == 0 {
		return nil, fmt.Errorf("experiments: table3 needs a distance >= 1")
	}
	res := &Table3Result{Params: p, Density: p.Densities[di], Distances: distances}
	for _, s := range LinkSubsets(w.Dataset.Graph.Schema()) {
		res.Subsets = append(res.Subsets, s.Name)
		row := make([]Cell, len(distances))
		for ni, n := range distances {
			a, err := w.Attack(dehin.Config{MaxDistance: n, LinkTypes: s.Links})
			if err != nil {
				return nil, err
			}
			prec, red, err := averageRun(a, targets, nil)
			if err != nil {
				return nil, err
			}
			row[ni] = Cell{Precision: prec, ReductionRate: red}
		}
		res.Cells = append(res.Cells, row)
	}
	a0, err := w.Attack(dehin.Config{MaxDistance: 0})
	if err != nil {
		return nil, err
	}
	prec, red, err := averageRun(a0, targets, nil)
	if err != nil {
		return nil, err
	}
	res.AtZero = Cell{Precision: prec, ReductionRate: red}
	return res, nil
}

// Render lays the result out like the paper's Table 3.
func (r *Table3Result) Render() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Table 3: DeHIN (density %g) as utilized link types increase, in percent", r.Density),
		Header: []string{"Types of Links"},
	}
	for _, n := range r.Distances {
		t.Header = append(t.Header,
			fmt.Sprintf("Prec(n=%d)", n),
			fmt.Sprintf("Red(n=%d)", n),
		)
	}
	for si, name := range r.Subsets {
		row := []string{name}
		for ni := range r.Distances {
			c := r.Cells[si][ni]
			row = append(row, pct(c.Precision), pct3(c.ReductionRate))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"f: follow; m: mention; r: retweet; c: comment",
		fmt.Sprintf("n = 0: precision and reduction rate are always %s%% and %s%%",
			pct(r.AtZero.Precision), pct3(r.AtZero.ReductionRate)),
	)
	return t
}

// Figure9Result averages Table 3 precision over subsets with the same
// number of link types - the paper's Figure 9.
type Figure9Result struct {
	Params    Params
	Distances []int
	// Series[k-1][ni] is the mean precision using k link types.
	Series [][]float64
}

// RunFigure9 derives Figure 9 from a Table 3 run.
func RunFigure9(t3 *Table3Result) *Figure9Result {
	res := &Figure9Result{Params: t3.Params, Distances: t3.Distances}
	for k := 1; k <= 4; k++ {
		series := make([]float64, len(t3.Distances))
		count := 0
		for si, name := range t3.Subsets {
			if subsetSize(name) != k {
				continue
			}
			count++
			for ni := range t3.Distances {
				series[ni] += t3.Cells[si][ni].Precision
			}
		}
		for ni := range series {
			series[ni] /= float64(count)
		}
		res.Series = append(res.Series, series)
	}
	return res
}

// Render lays Figure 9 out as a table.
func (r *Figure9Result) Render() *Table {
	t := &Table{
		Title:  "Figure 9: DeHIN precision (percent) vs max distance, averaged by number of utilized link types",
		Header: []string{"Link types \\ Max Distance"},
	}
	for _, n := range r.Distances {
		t.Header = append(t.Header, fmt.Sprintf("%d", n))
	}
	for k, series := range r.Series {
		row := []string{fmt.Sprintf("%d", k+1)}
		for _, v := range series {
			row = append(row, pct(v))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
