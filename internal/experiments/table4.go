package experiments

import (
	"fmt"

	"github.com/hinpriv/dehin/internal/dehin"
)

// Table4Result reproduces Table 4: the re-configured DeHIN (majority-
// strength removal, Section 6.2) against targets hardened with Complete
// Graph Anonymity.
type Table4Result struct {
	Params    Params
	Densities []float64
	Distances []int
	Cells     [][]Cell
}

// RunTable4 completes every released target per link type, then attacks
// it with the re-configured DeHIN.
func RunTable4(w *Workbench) (*Table4Result, error) {
	return runCGASweep(w, false)
}

// runCGASweep powers Table 4 (varyWeights=false) and the VW-CGA series of
// Figure 8 (varyWeights=true). Completions come from the workbench cache,
// shared with the utility and obscurity experiments.
func runCGASweep(w *Workbench, varyWeights bool) (*Table4Result, error) {
	p := w.Params
	res := &Table4Result{Params: p, Densities: p.Densities, Distances: p.Distances}
	for di := range p.Densities {
		completed, err := w.CompletedTargets(di, varyWeights)
		if err != nil {
			return nil, err
		}
		row := make([]Cell, len(p.Distances))
		for ni, n := range p.Distances {
			cfg := dehin.Config{
				MaxDistance:            n,
				RemoveMajorityStrength: n > 0,
				FallbackProfileOnly:    n > 0,
			}
			a, err := w.Attack(cfg)
			if err != nil {
				return nil, err
			}
			prec, red, err := averageRun(a, completed, nil)
			if err != nil {
				return nil, err
			}
			row[ni] = Cell{Precision: prec, ReductionRate: red}
		}
		res.Cells = append(res.Cells, row)
	}
	return res, nil
}

// Render lays the result out like the paper's Table 4.
func (r *Table4Result) Render() *Table {
	return renderDensityTable(
		"Table 4: re-configured DeHIN vs Complete Graph Anonymity, in percent",
		r.Densities, r.Distances, r.Cells,
	)
}

// Figure8Result reproduces Figure 8(a)-(j): for each density, DeHIN
// precision vs max distance against the three anonymizations.
type Figure8Result struct {
	Params    Params
	Densities []float64
	Distances []int
	// KDDA / CGA / VWCGA [di][ni] are the precision series per panel.
	KDDA, CGA, VWCGA [][]float64
}

// RunFigure8 runs all three anonymization pipelines. The KDDA series is
// the plain DeHIN of Table 2; CGA and VW-CGA use the re-configured attack.
func RunFigure8(w *Workbench) (*Figure8Result, error) {
	t2, err := RunTable2(w)
	if err != nil {
		return nil, err
	}
	cga, err := runCGASweep(w, false)
	if err != nil {
		return nil, err
	}
	vw, err := runCGASweep(w, true)
	if err != nil {
		return nil, err
	}
	return figure8From(w.Params, t2, cga, vw), nil
}

// figure8From assembles Figure 8 from already-computed sweeps, letting
// RunAll share the expensive parts across artifacts.
func figure8From(p Params, t2 *Table2Result, cga, vw *Table4Result) *Figure8Result {
	res := &Figure8Result{
		Params:    p,
		Densities: p.Densities,
		Distances: p.Distances,
	}
	pick := func(cells [][]Cell) [][]float64 {
		out := make([][]float64, len(cells))
		for di, row := range cells {
			out[di] = make([]float64, len(row))
			for ni, c := range row {
				out[di][ni] = c.Precision
			}
		}
		return out
	}
	res.KDDA = pick(t2.Cells)
	res.CGA = pick(cga.Cells)
	res.VWCGA = pick(vw.Cells)
	return res
}

// Render emits one block per density panel, mirroring Figure 8(a)-(j).
func (r *Figure8Result) Render() *Table {
	t := &Table{
		Title:  "Figure 8: DeHIN precision (percent) vs max distance per anonymization, one row group per density panel",
		Header: []string{"Density", "Scheme"},
	}
	for _, n := range r.Distances {
		t.Header = append(t.Header, fmt.Sprintf("n=%d", n))
	}
	for di, d := range r.Densities {
		for _, series := range []struct {
			name string
			vals []float64
		}{
			{"KDDA", r.KDDA[di]},
			{"CGA", r.CGA[di]},
			{"VW-CGA", r.VWCGA[di]},
		} {
			row := []string{fmt.Sprintf("%.3f", d), series.name}
			for _, v := range series.vals {
				row = append(row, pct(v))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = append(t.Notes,
		"KDDA: KDD-Cup-style ID randomization, plain DeHIN",
		"CGA: Complete Graph Anonymity, re-configured DeHIN (majority-strength removal)",
		"VW-CGA: Varying Weight CGA; neighbor matching collapses, DeHIN falls back to profiles")
	return t
}
