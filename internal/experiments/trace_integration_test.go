package experiments

import (
	"strings"
	"testing"

	"github.com/hinpriv/dehin/internal/obs/trace"
)

// TestRunAllTraced is the pipeline-level golden test for the tracing
// layer: a traced quick suite run must export valid Chrome trace-event
// JSON (parseable, monotonic timestamps, matched span nesting — see
// trace.ValidateChromeTrace) covering every instrumented stage, and the
// tracer must not perturb the rendered tables.
func TestRunAllTraced(t *testing.T) {
	plain := parTestParams()
	tables, err := RunAll(plain)
	if err != nil {
		t.Fatal(err)
	}
	want := tablesHash(tables)

	p := parTestParams()
	tr := trace.New(trace.DefaultCapacity)
	p.Trace = tr
	tables, err = RunAll(p)
	if err != nil {
		t.Fatal(err)
	}
	if tablesHash(tables) != want {
		t.Fatal("tracing changed the rendered tables")
	}

	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	stats, err := trace.ValidateChromeTrace([]byte(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("dropped %d spans with a default-capacity buffer", tr.Dropped())
	}

	// One span family per instrumented layer: generator, workbench cache,
	// suite scheduler, attack engine.
	for _, name := range []string{
		"tqq.generate", "profiles_shard", "edge_task", "reclog_shard",
		"workbench.warm", "workbench.target_fill", "workbench.attack_fill",
		"experiments.run_all", "dehin.run", "query",
	} {
		if stats.Names[name] == 0 {
			t.Errorf("no %q span in traced suite run (names: %v)", name, stats.Names)
		}
	}
	// One scheduler slot span per experiment, under the suite root.
	if stats.Names["experiments.run_all"] != 1 {
		t.Errorf("experiments.run_all spans = %d, want 1", stats.Names["experiments.run_all"])
	}
	for _, id := range runAllOrder {
		if stats.Names[id] != 1 {
			t.Errorf("slot span %q count = %d, want 1", id, stats.Names[id])
		}
	}
}

// TestTracerOffByDefault pins that an untraced workbench run touches no
// tracer state: nil Params.Trace propagates as nil everywhere and the
// suite still runs (this is the default path every benchmark takes).
func TestTracerOffByDefault(t *testing.T) {
	p := parTestParams()
	w, err := NewWorkbench(p)
	if err != nil {
		t.Fatal(err)
	}
	if w.tr != nil {
		t.Fatal("workbench picked up a tracer from nil Params.Trace")
	}
	if _, err := RunOn(w, "table1"); err != nil {
		t.Fatal(err)
	}
}
