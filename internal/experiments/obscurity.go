package experiments

import (
	"fmt"

	"github.com/hinpriv/dehin/internal/dehin"
)

// ObscurityResult realizes Section 6.4: an adversary who does not know
// which anonymization was applied can always run the re-configured DeHIN
// (majority-strength removal + profile fallback). The experiment compares
// that one fixed attack against KDDA-only targets and against CGA-hardened
// targets - if both stay high, "security by obscurity" buys the publisher
// nothing.
type ObscurityResult struct {
	Params    Params
	Densities []float64
	// Plain[di] is the plain DeHIN on KDDA targets (the informed
	// adversary); ReconfigKDDA and ReconfigCGA are the one-size-fits-all
	// re-configured attack on KDDA and CGA targets. All at the deepest
	// swept distance.
	Plain, ReconfigKDDA, ReconfigCGA []float64
}

// RunObscurity executes the comparison across densities.
func RunObscurity(w *Workbench) (*ObscurityResult, error) {
	p := w.Params
	maxN := 0
	for _, n := range p.Distances {
		if n > maxN {
			maxN = n
		}
	}
	plain, err := w.Attack(dehin.Config{MaxDistance: maxN})
	if err != nil {
		return nil, err
	}
	reconfig, err := w.Attack(dehin.Config{
		MaxDistance:            maxN,
		RemoveMajorityStrength: true,
		FallbackProfileOnly:    true,
	})
	if err != nil {
		return nil, err
	}
	res := &ObscurityResult{Params: p, Densities: p.Densities}
	for di := range p.Densities {
		targets, err := w.Targets(di)
		if err != nil {
			return nil, err
		}
		pPlain, _, err := averageRun(plain, targets, nil)
		if err != nil {
			return nil, err
		}
		pKDDA, _, err := averageRun(reconfig, targets, nil)
		if err != nil {
			return nil, err
		}
		// The CGA side reuses the workbench's cached completions (the
		// same ones Table 4 attacks), exercising the re-configured
		// attack on hardened targets without re-anonymizing.
		completed, err := w.CompletedTargets(di, false)
		if err != nil {
			return nil, err
		}
		pCGA, _, err := averageRun(reconfig, completed, nil)
		if err != nil {
			return nil, err
		}
		res.Plain = append(res.Plain, pPlain)
		res.ReconfigKDDA = append(res.ReconfigKDDA, pKDDA)
		res.ReconfigCGA = append(res.ReconfigCGA, pCGA)
	}
	return res, nil
}

// Render lays the comparison out per density.
func (r *ObscurityResult) Render() *Table {
	t := &Table{
		Title: "Section 6.4: one re-configured DeHIN against unknown anonymization (precision %)",
		Header: []string{"Density", "Informed (plain, KDDA)",
			"Re-configured on KDDA", "Re-configured on CGA"},
	}
	for di, d := range r.Densities {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.3f", d),
			pct(r.Plain[di]),
			pct(r.ReconfigKDDA[di]),
			pct(r.ReconfigCGA[di]),
		})
	}
	t.Notes = append(t.Notes,
		"the re-configured attack pays a fixed price (majority-strength links lost) regardless",
		"of whether fakes were present - ignorance of the scheme does not protect the publisher")
	return t
}
