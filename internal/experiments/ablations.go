package experiments

import (
	"fmt"

	"github.com/hinpriv/dehin/internal/baseline"
	"github.com/hinpriv/dehin/internal/dehin"
	"github.com/hinpriv/dehin/internal/hin"
	"github.com/hinpriv/dehin/internal/randx"
	"github.com/hinpriv/dehin/internal/tqq"
)

// GrowthAblationResult measures the cost of the time gap (Section 5.1):
// attacking a synchronized auxiliary with exact matchers versus a grown
// auxiliary with growth-tolerant matchers, at the largest density.
type GrowthAblationResult struct {
	Params Params
	// Distances swept (>= 0).
	Distances []int
	// Synchronized[ni]: exact matchers against the ungrown dataset.
	// GrownTolerant[ni]: growth matchers against a grown crawl.
	// GrownExact[ni]: exact matchers against the grown crawl - the
	// mis-specified adversary, demonstrating why growth tolerance is
	// necessary (precision collapses).
	Synchronized, GrownTolerant, GrownExact []Cell
}

// RunGrowthAblation executes the three matcher/auxiliary combinations.
func RunGrowthAblation(w *Workbench) (*GrowthAblationResult, error) {
	p := w.Params
	di := len(p.Densities) - 1
	targets, err := w.Targets(di)
	if err != nil {
		return nil, err
	}
	gcfg := tqq.DefaultGrowth(p.Seed + 999)
	gcfg.NewUsers = p.AuxUsers / 20
	grown, err := tqq.Grow(w.Dataset, w.GenConfig(), gcfg)
	if err != nil {
		return nil, err
	}
	res := &GrowthAblationResult{Params: p, Distances: p.Distances}
	for _, n := range p.Distances {
		sync, err := w.Attack(dehin.Config{
			MaxDistance: n,
			EntityMatch: dehin.TQQProfile().ExactMatcher(),
			LinkMatch:   dehin.ExactLinkMatcher,
		})
		if err != nil {
			return nil, err
		}
		prec, red, err := averageRun(sync, targets, nil)
		if err != nil {
			return nil, err
		}
		res.Synchronized = append(res.Synchronized, Cell{prec, red})

		tol, err := AttackOn(grown.Graph, dehin.Config{MaxDistance: n, Parallelism: p.Parallelism})
		if err != nil {
			return nil, err
		}
		prec, red, err = averageRun(tol, targets, nil)
		if err != nil {
			return nil, err
		}
		res.GrownTolerant = append(res.GrownTolerant, Cell{prec, red})

		exact, err := AttackOn(grown.Graph, dehin.Config{
			MaxDistance: n,
			EntityMatch: dehin.TQQProfile().ExactMatcher(),
			LinkMatch:   dehin.ExactLinkMatcher,
			Parallelism: p.Parallelism,
		})
		if err != nil {
			return nil, err
		}
		prec, red, err = averageRun(exact, targets, nil)
		if err != nil {
			return nil, err
		}
		res.GrownExact = append(res.GrownExact, Cell{prec, red})
	}
	return res, nil
}

// Render lays the growth ablation out as rows per scenario.
func (r *GrowthAblationResult) Render() *Table {
	t := &Table{
		Title:  "Ablation: time-gap growth and matcher choice (precision %, densest targets)",
		Header: []string{"Scenario"},
	}
	for _, n := range r.Distances {
		t.Header = append(t.Header, fmt.Sprintf("n=%d", n))
	}
	for _, s := range []struct {
		name  string
		cells []Cell
	}{
		{"synchronized aux, exact matchers", r.Synchronized},
		{"grown aux, growth-tolerant matchers", r.GrownTolerant},
		{"grown aux, exact matchers (mis-specified)", r.GrownExact},
	} {
		row := []string{s.name}
		for _, c := range s.cells {
			row = append(row, pct(c.Precision))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// BaselineAblationResult compares DeHIN against the prior-work attacks on
// the same targets across densities.
type BaselineAblationResult struct {
	Params    Params
	Densities []float64
	// DeHIN1 is DeHIN at distance 1; ProfileOnly the attribute-only
	// attack under the same growth-tolerant semantics (= DeHIN at
	// distance 0); both report precision (unique correct / targets).
	DeHIN1, ProfileOnly []float64
	// PropPrecision / PropCoverage score the NS09-style propagation
	// attack with 5% ground-truth seeds (precision over its attempted
	// mappings, coverage of non-seed targets).
	PropPrecision, PropCoverage []float64
}

// RunBaselineAblation executes the three attacks per density.
func RunBaselineAblation(w *Workbench) (*BaselineAblationResult, error) {
	p := w.Params
	res := &BaselineAblationResult{Params: p, Densities: p.Densities}
	exactAttrs := []int{tqq.AttrYob, tqq.AttrGender}
	growAttrs := []int{tqq.AttrTweets, tqq.AttrNumTags}
	rng := randx.New(p.Seed + 4242)
	for di := range p.Densities {
		targets, err := w.Targets(di)
		if err != nil {
			return nil, err
		}
		a, err := w.Attack(dehin.Config{MaxDistance: 1})
		if err != nil {
			return nil, err
		}
		prec, _, err := averageRun(a, targets, nil)
		if err != nil {
			return nil, err
		}
		res.DeHIN1 = append(res.DeHIN1, prec)

		var po, pp, pc float64
		for _, rt := range targets {
			cands, err := baseline.ProfileOnlyGrowing(rt.Graph, w.Dataset.Graph, exactAttrs, growAttrs)
			if err != nil {
				return nil, err
			}
			correct := 0
			for tv, c := range cands {
				if len(c) == 1 && c[0] == rt.Truth[tv] {
					correct++
				}
			}
			po += float64(correct) / float64(len(cands))

			seeds := make(map[hin.EntityID]hin.EntityID)
			seedCount := rt.Graph.NumEntities() / 20
			if seedCount < 3 {
				seedCount = 3
			}
			for _, i := range rng.SampleWithoutReplacement(rt.Graph.NumEntities(), seedCount) {
				seeds[hin.EntityID(i)] = rt.Truth[i]
			}
			pres, err := baseline.Propagation(rt.Graph, w.Dataset.Graph, baseline.PropagationConfig{
				Seeds: seeds,
				Theta: 0.5,
			})
			if err != nil {
				return nil, err
			}
			precP, cov := baseline.Score(pres, rt.Truth, seeds)
			pp += precP
			pc += cov
		}
		n := float64(len(targets))
		res.ProfileOnly = append(res.ProfileOnly, po/n)
		res.PropPrecision = append(res.PropPrecision, pp/n)
		res.PropCoverage = append(res.PropCoverage, pc/n)
	}
	return res, nil
}

// Render lays the baseline comparison out per density.
func (r *BaselineAblationResult) Render() *Table {
	t := &Table{
		Title: "Ablation: DeHIN vs prior-work attacks (percent)",
		Header: []string{"Density", "DeHIN n=1", "Profile-only",
			"NS09 precision", "NS09 coverage"},
	}
	for di, d := range r.Densities {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.3f", d),
			pct(r.DeHIN1[di]),
			pct(r.ProfileOnly[di]),
			pct(r.PropPrecision[di]),
			pct(r.PropCoverage[di]),
		})
	}
	t.Notes = append(t.Notes, "NS09 gets 5% ground-truth seeds; DeHIN and profile-only get none")
	return t
}

// HomogeneousAblationResult quantifies the paper's Section 5.2 claim that
// DeHIN also works on a homogeneous network "with slight performance
// degradation": precision using each single link type alone versus all
// four.
type HomogeneousAblationResult struct {
	Params    Params
	Density   float64
	Distances []int
	// Single[li][ni] is precision with only link type li; All[ni] with
	// every link type.
	Names  []string
	Single [][]float64
	All    []float64
}

// RunHomogeneousAblation sweeps single link types at the largest density.
func RunHomogeneousAblation(w *Workbench) (*HomogeneousAblationResult, error) {
	p := w.Params
	di := len(p.Densities) - 1
	targets, err := w.Targets(di)
	if err != nil {
		return nil, err
	}
	var distances []int
	for _, n := range p.Distances {
		if n >= 1 {
			distances = append(distances, n)
		}
	}
	res := &HomogeneousAblationResult{Params: p, Density: p.Densities[di], Distances: distances}
	schema := w.Dataset.Graph.Schema()
	for lt := 0; lt < schema.NumLinkTypes(); lt++ {
		res.Names = append(res.Names, schema.LinkType(hin.LinkTypeID(lt)).Name)
		row := make([]float64, len(distances))
		for ni, n := range distances {
			a, err := w.Attack(dehin.Config{
				MaxDistance: n,
				LinkTypes:   []hin.LinkTypeID{hin.LinkTypeID(lt)},
			})
			if err != nil {
				return nil, err
			}
			prec, _, err := averageRun(a, targets, nil)
			if err != nil {
				return nil, err
			}
			row[ni] = prec
		}
		res.Single = append(res.Single, row)
	}
	for _, n := range distances {
		a, err := w.Attack(dehin.Config{MaxDistance: n})
		if err != nil {
			return nil, err
		}
		prec, _, err := averageRun(a, targets, nil)
		if err != nil {
			return nil, err
		}
		res.All = append(res.All, prec)
	}
	return res, nil
}

// Render lays the homogeneous ablation out per link type.
func (r *HomogeneousAblationResult) Render() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Ablation: homogeneous (single-link-type) DeHIN vs heterogeneous (density %g), precision %%", r.Density),
		Header: []string{"Network"},
	}
	for _, n := range r.Distances {
		t.Header = append(t.Header, fmt.Sprintf("n=%d", n))
	}
	for li, name := range r.Names {
		row := []string{"only " + name}
		for ni := range r.Distances {
			row = append(row, pct(r.Single[li][ni]))
		}
		t.Rows = append(t.Rows, row)
	}
	row := []string{"all four (heterogeneous)"}
	for ni := range r.Distances {
		row = append(row, pct(r.All[ni]))
	}
	t.Rows = append(t.Rows, row)
	return t
}
