package experiments

import (
	"fmt"

	"github.com/hinpriv/dehin/internal/dehin"
)

// Cell is one (precision, reduction rate) measurement.
type Cell struct {
	Precision     float64
	ReductionRate float64
}

// Table2Result reproduces Table 2: DeHIN against the KDDA-anonymized
// targets across densities and distances.
type Table2Result struct {
	Params    Params
	Densities []float64
	Distances []int
	// Cells[di][ni] is the mean over samples at Densities[di],
	// Distances[ni].
	Cells [][]Cell
}

// RunTable2 attacks every released target of every density at every
// distance with the growth-tolerant DeHIN.
func RunTable2(w *Workbench) (*Table2Result, error) {
	res := &Table2Result{
		Params:    w.Params,
		Densities: w.Params.Densities,
		Distances: w.Params.Distances,
	}
	for di := range w.Params.Densities {
		targets, err := w.Targets(di)
		if err != nil {
			return nil, err
		}
		row := make([]Cell, len(w.Params.Distances))
		for ni, n := range w.Params.Distances {
			a, err := w.Attack(dehin.Config{MaxDistance: n})
			if err != nil {
				return nil, err
			}
			p, r, err := averageRun(a, targets, nil)
			if err != nil {
				return nil, err
			}
			row[ni] = Cell{Precision: p, ReductionRate: r}
		}
		res.Cells = append(res.Cells, row)
	}
	return res, nil
}

// Render lays the result out like the paper's Table 2.
func (r *Table2Result) Render() *Table {
	return renderDensityTable(
		fmt.Sprintf("Table 2: DeHIN on the anonymized t.qq-style dataset (aux %d users), in percent", r.Params.AuxUsers),
		r.Densities, r.Distances, r.Cells,
	)
}

// renderDensityTable renders the shared density x distance layout of
// Tables 2 and 4.
func renderDensityTable(title string, densities []float64, distances []int, cells [][]Cell) *Table {
	t := &Table{Title: title, Header: []string{"Density"}}
	for _, n := range distances {
		t.Header = append(t.Header,
			fmt.Sprintf("Prec(n=%d)", n),
			fmt.Sprintf("Red(n=%d)", n),
		)
	}
	for di, d := range densities {
		row := []string{fmt.Sprintf("%.3f", d)}
		for ni := range distances {
			c := cells[di][ni]
			row = append(row, pct(c.Precision), pct3(c.ReductionRate))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "n: max distance of utilized neighbors; n=0 uses profile attributes only")
	return t
}
