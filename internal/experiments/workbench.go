package experiments

import (
	"fmt"

	"github.com/hinpriv/dehin/internal/anonymize"
	"github.com/hinpriv/dehin/internal/dehin"
	"github.com/hinpriv/dehin/internal/hin"
	"github.com/hinpriv/dehin/internal/randx"
	"github.com/hinpriv/dehin/internal/tqq"
)

// Workbench builds the shared experimental fixture once: the auxiliary
// network with SamplesPerDensity planted communities per density, the
// released (KDDA-anonymized) target graphs, and a shared candidate index.
type Workbench struct {
	Params  Params
	Dataset *tqq.Dataset
	Index   *dehin.Index

	// byDensity[i] lists the community indices of Params.Densities[i].
	byDensity [][]int
}

// ReleasedTarget is one anonymized target graph ready to attack: the graph
// the adversary sees plus the ground truth into the auxiliary dataset.
type ReleasedTarget struct {
	Graph *hin.Graph
	Truth []hin.EntityID
}

// NewWorkbench generates the fixture for the given parameters.
func NewWorkbench(p Params) (*Workbench, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	cfg := tqq.DefaultConfig(p.AuxUsers, p.Seed)
	byDensity := make([][]int, len(p.Densities))
	for i, d := range p.Densities {
		for s := 0; s < p.SamplesPerDensity; s++ {
			byDensity[i] = append(byDensity[i], len(cfg.Communities))
			cfg.Communities = append(cfg.Communities, tqq.CommunitySpec{
				Size:    p.TargetSize,
				Density: d,
			})
		}
	}
	ds, err := tqq.Generate(cfg)
	if err != nil {
		return nil, err
	}
	idx, err := dehin.NewIndex(ds.Graph, dehin.TQQProfile())
	if err != nil {
		return nil, err
	}
	return &Workbench{Params: p, Dataset: ds, Index: idx, byDensity: byDensity}, nil
}

// GenConfig returns the tqq generator configuration the workbench used
// (needed by growth experiments).
func (w *Workbench) GenConfig() tqq.Config {
	cfg := tqq.DefaultConfig(w.Params.AuxUsers, w.Params.Seed)
	return cfg
}

// Targets returns the released target graphs for the di-th density:
// community samples, KDDA-anonymized (ids shuffled and relabeled), with
// composed ground truth into the dataset.
func (w *Workbench) Targets(di int) ([]*ReleasedTarget, error) {
	if di < 0 || di >= len(w.byDensity) {
		return nil, fmt.Errorf("experiments: density index %d out of range", di)
	}
	var out []*ReleasedTarget
	for _, ci := range w.byDensity[di] {
		rt, err := w.releaseCommunity(ci)
		if err != nil {
			return nil, err
		}
		out = append(out, rt)
	}
	return out, nil
}

// releaseCommunity samples community ci and anonymizes it KDDA-style.
func (w *Workbench) releaseCommunity(ci int) (*ReleasedTarget, error) {
	rng := randx.New(w.Params.Seed).Split(uint64(1000 + ci))
	tgt, err := tqq.CommunityTarget(w.Dataset, ci, rng)
	if err != nil {
		return nil, err
	}
	anon, err := anonymize.RandomizeIDs(tgt.Graph, w.Params.Seed+uint64(77+ci))
	if err != nil {
		return nil, err
	}
	truth := make([]hin.EntityID, len(anon.ToOrig))
	for i, t0 := range anon.ToOrig {
		truth[i] = tgt.Orig[t0]
	}
	return &ReleasedTarget{Graph: anon.Graph, Truth: truth}, nil
}

// Attack builds a DeHIN attack against the workbench's auxiliary network,
// sharing the prebuilt index.
func (w *Workbench) Attack(cfg dehin.Config) (*dehin.Attack, error) {
	cfg.Profile = dehin.TQQProfile()
	cfg.SharedIndex = w.Index
	if cfg.Parallelism == 0 {
		cfg.Parallelism = w.Params.Parallelism
	}
	return dehin.NewAttack(w.Dataset.Graph, cfg)
}

// AttackOn is Attack against an alternative auxiliary graph (e.g. a grown
// crawl), building a fresh index.
func AttackOn(aux *hin.Graph, cfg dehin.Config) (*dehin.Attack, error) {
	cfg.Profile = dehin.TQQProfile()
	cfg.UseIndex = true
	return dehin.NewAttack(aux, cfg)
}

// averageRun attacks every released target with the given attack and
// averages precision and reduction rate.
func averageRun(a *dehin.Attack, targets []*ReleasedTarget, transform func(*hin.Graph) (*hin.Graph, error)) (precision, reduction float64, err error) {
	if len(targets) == 0 {
		return 0, 0, fmt.Errorf("experiments: no targets")
	}
	for _, rt := range targets {
		g := rt.Graph
		if transform != nil {
			g, err = transform(g)
			if err != nil {
				return 0, 0, err
			}
		}
		res, err := a.Run(g, rt.Truth)
		if err != nil {
			return 0, 0, err
		}
		precision += res.Precision
		reduction += res.ReductionRate
	}
	n := float64(len(targets))
	return precision / n, reduction / n, nil
}
