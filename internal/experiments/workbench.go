package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/hinpriv/dehin/internal/anonymize"
	"github.com/hinpriv/dehin/internal/dehin"
	"github.com/hinpriv/dehin/internal/hin"
	"github.com/hinpriv/dehin/internal/obs"
	"github.com/hinpriv/dehin/internal/obs/trace"
	"github.com/hinpriv/dehin/internal/randx"
	"github.com/hinpriv/dehin/internal/tqq"
)

// Workbench builds the shared experimental fixture once: the auxiliary
// network with SamplesPerDensity planted communities per density, the
// released (KDDA-anonymized) target graphs, and a shared candidate index.
//
// Everything derived from the fixture is memoized in a thread-safe
// artifact cache - released targets per community, CGA-completed targets
// per (community, weight mode), and constructed dehin.Attack values per
// configuration - so table2/table3/ablations never recompute what table1
// already produced, and concurrent experiments share one copy. All cached
// artifacts are pure functions of (Params, key): releases draw from
// per-community streams and completions from per-target seeds, never from
// a shared sequential stream, so the cache contents are independent of
// which experiment asks first.
type Workbench struct {
	Params  Params
	Dataset *tqq.Dataset
	Index   *dehin.Index
	// Aux is the auxiliary graph in the backend Params.Backend selected:
	// Dataset.Graph itself for "mem" (the default), or its compact CSR
	// form for "csr". Every attack the workbench builds runs against Aux.
	Aux hin.GraphBackend

	// byDensity[i] lists the community indices of Params.Densities[i].
	byDensity [][]int

	targets   []targetSlot    // released targets, one slot per community
	completed [2][]targetSlot // CGA completions: [varyWeights][community]
	mu        sync.Mutex
	attacks   map[string]*attackSlot

	// obs is never nil: Params.Metrics when provided, else a private
	// registry, so the cache counters (and Stats) work with or without an
	// exposed metrics endpoint.
	obs   *obs.Registry
	stats cacheCounters
	// tr mirrors Params.Trace (nil = tracing off): cache fills record
	// spans with real durations, cache hits record instant spans, so an
	// exported timeline shows which experiment paid for an artifact and
	// which ones rode along.
	tr *trace.Tracer
}

// ReleasedTarget is one anonymized target graph ready to attack: the graph
// the adversary sees plus the ground truth into the auxiliary dataset.
type ReleasedTarget struct {
	Graph *hin.Graph
	Truth []hin.EntityID
}

// targetSlot memoizes one released (or CGA-completed) target.
type targetSlot struct {
	once sync.Once
	rt   *ReleasedTarget
	err  error
}

// attackSlot memoizes one constructed attack.
type attackSlot struct {
	once sync.Once
	a    *dehin.Attack
	err  error
}

// cacheCounters are the workbench's resolved obs handles. The counter
// names are part of the exposed metric surface (see OBSERVABILITY.md).
type cacheCounters struct {
	targetHits, targetMisses *obs.Counter
	cgaHits, cgaMisses       *obs.Counter
	attackHits, attackMisses *obs.Counter
}

func newCacheCounters(r *obs.Registry) cacheCounters {
	return cacheCounters{
		targetHits:   r.Counter("workbench_target_cache_hits_total"),
		targetMisses: r.Counter("workbench_target_cache_misses_total"),
		cgaHits:      r.Counter("workbench_cga_cache_hits_total"),
		cgaMisses:    r.Counter("workbench_cga_cache_misses_total"),
		attackHits:   r.Counter("workbench_attack_cache_hits_total"),
		attackMisses: r.Counter("workbench_attack_cache_misses_total"),
	}
}

// CacheStats is a point-in-time snapshot of the workbench artifact cache.
// A miss is a computation; a hit is a request served from a completed (or
// in-flight) slot.
type CacheStats struct {
	TargetHits, TargetMisses int64
	CGAHits, CGAMisses       int64
	AttackHits, AttackMisses int64
}

// Stats snapshots the cache counters. The view is built from one
// stabilized registry snapshot (obs.Registry.Snapshot reads until two
// passes agree), not from six independent atomic loads, so a snapshot
// taken mid-run is internally consistent whenever the cache quiesces even
// briefly and is always monotone against earlier snapshots.
func (w *Workbench) Stats() CacheStats {
	s := w.obs.Snapshot()
	return CacheStats{
		TargetHits:   s.Counter("workbench_target_cache_hits_total"),
		TargetMisses: s.Counter("workbench_target_cache_misses_total"),
		CGAHits:      s.Counter("workbench_cga_cache_hits_total"),
		CGAMisses:    s.Counter("workbench_cga_cache_misses_total"),
		AttackHits:   s.Counter("workbench_attack_cache_hits_total"),
		AttackMisses: s.Counter("workbench_attack_cache_misses_total"),
	}
}

// Metrics returns the registry the workbench records into: the one from
// Params.Metrics, or the workbench-private registry when none was given.
func (w *Workbench) Metrics() *obs.Registry { return w.obs }

// String renders the snapshot as one stderr-friendly line.
func (s CacheStats) String() string {
	return fmt.Sprintf("cache: targets %d hit / %d miss, cga %d hit / %d miss, attacks %d hit / %d miss",
		s.TargetHits, s.TargetMisses, s.CGAHits, s.CGAMisses, s.AttackHits, s.AttackMisses)
}

// NewWorkbench generates the fixture for the given parameters. The
// generator runs sharded on p.Workers workers and every community's
// release is warmed concurrently in the same bounded pool, so the
// workbench comes back fully materialized; output is identical for every
// worker count.
func NewWorkbench(p Params) (*Workbench, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	reg := p.Metrics
	if reg == nil {
		reg = obs.New()
	}
	cfg := tqq.DefaultConfig(p.AuxUsers, p.Seed)
	cfg.Workers = p.Workers
	cfg.Metrics = reg
	cfg.Trace = p.Trace
	cfg.Log = p.Log
	byDensity := make([][]int, len(p.Densities))
	for i, d := range p.Densities {
		for s := 0; s < p.SamplesPerDensity; s++ {
			byDensity[i] = append(byDensity[i], len(cfg.Communities))
			cfg.Communities = append(cfg.Communities, tqq.CommunitySpec{
				Size:    p.TargetSize,
				Density: d,
			})
		}
	}
	ds, err := tqq.Generate(cfg)
	if err != nil {
		return nil, err
	}
	var aux hin.GraphBackend = ds.Graph
	if p.Backend == BackendCSR {
		sp := p.Trace.Start("workbench.csr_convert")
		aux = hin.FromGraph(ds.Graph)
		sp.End()
	}
	idx, err := dehin.NewIndex(aux, dehin.TQQProfile())
	if err != nil {
		return nil, err
	}
	w := &Workbench{
		Params:    p,
		Dataset:   ds,
		Index:     idx,
		Aux:       aux,
		byDensity: byDensity,
		targets:   make([]targetSlot, len(cfg.Communities)),
		attacks:   make(map[string]*attackSlot),
		obs:       reg,
		stats:     newCacheCounters(reg),
		tr:        p.Trace,
	}
	for vw := range w.completed {
		w.completed[vw] = make([]targetSlot, len(cfg.Communities))
	}
	// Warm every release now; experiments then only ever hit the cache.
	nc := len(cfg.Communities)
	warm := w.tr.Start("workbench.warm")
	warm.Attr("communities", int64(nc))
	errs := make([]error, nc)
	runLimited(p.Workers, nc, func(ci int) {
		_, errs[ci] = w.target(ci)
	})
	warm.End()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	p.Log.Info("experiments: workbench ready",
		"users", ds.Graph.NumEntities(), "edges", ds.Graph.NumEdgesTotal(),
		"communities", nc)
	return w, nil
}

// runLimited executes fn(0..n-1) on a pool of at most `workers`
// goroutines (0 = GOMAXPROCS). Calls must be independent.
func runLimited(workers, n int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// GenConfig returns the tqq generator configuration the workbench used
// (needed by growth experiments).
func (w *Workbench) GenConfig() tqq.Config {
	cfg := tqq.DefaultConfig(w.Params.AuxUsers, w.Params.Seed)
	cfg.Workers = w.Params.Workers
	return cfg
}

// Targets returns the released target graphs for the di-th density:
// community samples, KDDA-anonymized (ids shuffled and relabeled), with
// composed ground truth into the dataset. Results are cached; callers
// across goroutines receive the same shared, read-only values.
func (w *Workbench) Targets(di int) ([]*ReleasedTarget, error) {
	if di < 0 || di >= len(w.byDensity) {
		return nil, fmt.Errorf("experiments: density index %d out of range", di)
	}
	out := make([]*ReleasedTarget, 0, len(w.byDensity[di]))
	for _, ci := range w.byDensity[di] {
		rt, err := w.target(ci)
		if err != nil {
			return nil, err
		}
		out = append(out, rt)
	}
	return out, nil
}

// target returns community ci's released target, computing it at most
// once.
func (w *Workbench) target(ci int) (*ReleasedTarget, error) {
	s := &w.targets[ci]
	fresh := false
	s.once.Do(func() {
		fresh = true
		w.stats.targetMisses.Add(1)
		sp := w.tr.Start("workbench.target_fill")
		sp.Attr("community", int64(ci))
		s.rt, s.err = w.releaseCommunity(ci)
		sp.End()
	})
	if !fresh {
		w.stats.targetHits.Add(1)
		w.cacheHitSpan("workbench.target_hit", int64(ci))
	}
	return s.rt, s.err
}

// cacheHitSpan records an instant root span marking a cache hit - the
// near-zero-width counterpart of the *_fill spans, cheap enough for the
// hot cache paths because the zero-tracer case is one branch.
func (w *Workbench) cacheHitSpan(name string, key int64) {
	if w.tr == nil {
		return
	}
	sp := w.tr.Start(name)
	sp.Attr("key", key)
	sp.End()
}

// CompletedTargets returns the di-th density's released targets hardened
// with Complete Graph Anonymity (varying fake weights when varyWeights).
// Completion seeds are a pure function of the target's (density, sample)
// position, so Table 4, Figure 8, the utility frontier, and the obscurity
// comparison all share one completion per target. Results are cached.
func (w *Workbench) CompletedTargets(di int, varyWeights bool) ([]*ReleasedTarget, error) {
	if di < 0 || di >= len(w.byDensity) {
		return nil, fmt.Errorf("experiments: density index %d out of range", di)
	}
	vw := 0
	if varyWeights {
		vw = 1
	}
	strengthMax := w.GenConfig().StrengthMax
	out := make([]*ReleasedTarget, 0, len(w.byDensity[di]))
	for ti, ci := range w.byDensity[di] {
		s := &w.completed[vw][ci]
		fresh := false
		s.once.Do(func() {
			fresh = true
			w.stats.cgaMisses.Add(1)
			sp := w.tr.Start("workbench.cga_fill")
			sp.Attr("community", int64(ci))
			sp.Attr("vary_weights", int64(vw))
			defer sp.End()
			rt, err := w.target(ci)
			if err != nil {
				s.err = err
				return
			}
			cg, err := anonymize.CompleteGraph(rt.Graph, anonymize.CGAOptions{
				VaryWeights: varyWeights,
				StrengthMax: strengthMax,
				Seed:        w.Params.Seed + uint64(di*100+ti),
			})
			if err != nil {
				s.err = err
				return
			}
			s.rt = &ReleasedTarget{Graph: cg, Truth: rt.Truth}
		})
		if !fresh {
			w.stats.cgaHits.Add(1)
			w.cacheHitSpan("workbench.cga_hit", int64(ci))
		}
		if s.err != nil {
			return nil, s.err
		}
		out = append(out, s.rt)
	}
	return out, nil
}

// releaseCommunity samples community ci and anonymizes it KDDA-style. The
// randomness is a pure function of (Params.Seed, ci), never of call
// order, which is what lets releases be computed lazily, concurrently, or
// warmed up front with identical results.
func (w *Workbench) releaseCommunity(ci int) (*ReleasedTarget, error) {
	rng := randx.New(w.Params.Seed).Split(uint64(1000 + ci))
	tgt, err := tqq.CommunityTarget(w.Dataset, ci, rng)
	if err != nil {
		return nil, err
	}
	anon, err := anonymize.RandomizeIDs(tgt.Graph, w.Params.Seed+uint64(77+ci))
	if err != nil {
		return nil, err
	}
	truth := make([]hin.EntityID, len(anon.ToOrig))
	for i, t0 := range anon.ToOrig {
		truth[i] = tgt.Orig[t0]
	}
	return &ReleasedTarget{Graph: anon.Graph, Truth: truth}, nil
}

// Attack builds a DeHIN attack against the workbench's auxiliary network,
// sharing the prebuilt index. Attacks for func-free configurations are
// memoized by configuration value - dehin.Attack is safe for concurrent
// use, so one instance serves every experiment that asks for the same
// setup (table2 alone asks for each distance configuration once per
// density). Configurations carrying custom EntityMatch/LinkMatch funcs
// are not comparable and bypass the cache.
func (w *Workbench) Attack(cfg dehin.Config) (*dehin.Attack, error) {
	cfg.Profile = dehin.TQQProfile()
	cfg.SharedIndex = w.Index
	if cfg.Parallelism == 0 {
		cfg.Parallelism = w.Params.Parallelism
	}
	if cfg.Metrics == nil {
		// Instrument attacks only when the caller asked for an exposed
		// registry: the private workbench registry records cache traffic
		// (cold path) but must not tax the query hot path by default.
		cfg.Metrics = w.Params.Metrics
	}
	if cfg.Trace == nil {
		// Attacks inherit the pipeline tracer so Run spans (and sampled
		// query spans) appear in the suite timeline.
		cfg.Trace = w.Params.Trace
	}
	if cfg.EntityMatch != nil || cfg.LinkMatch != nil {
		return dehin.NewAttack(w.Aux, cfg)
	}
	key := attackKey(cfg)
	w.mu.Lock()
	s, ok := w.attacks[key]
	if !ok {
		s = &attackSlot{}
		w.attacks[key] = s
	}
	w.mu.Unlock()
	fresh := false
	s.once.Do(func() {
		fresh = true
		w.stats.attackMisses.Add(1)
		sp := w.tr.Start("workbench.attack_fill")
		sp.Attr("distance", int64(cfg.MaxDistance))
		sp.Attr("link_types", int64(len(cfg.LinkTypes)))
		s.a, s.err = dehin.NewAttack(w.Aux, cfg)
		sp.End()
	})
	if !fresh {
		w.stats.attackHits.Add(1)
		w.cacheHitSpan("workbench.attack_hit", int64(cfg.MaxDistance))
	}
	return s.a, s.err
}

// attackKey canonicalizes the comparable dehin.Config fields. Profile and
// SharedIndex are workbench-constant and excluded; Metrics and Trace are
// part of the key because they are baked into the constructed attack.
func attackKey(cfg dehin.Config) string {
	lts := make([]int, len(cfg.LinkTypes))
	for i, lt := range cfg.LinkTypes {
		lts[i] = int(lt)
	}
	sort.Ints(lts)
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d lt=%v maj=%t fb=%t in=%t tol=%g idx=%t par=%d met=%p tr=%p",
		cfg.MaxDistance, lts, cfg.RemoveMajorityStrength, cfg.FallbackProfileOnly,
		cfg.UseInEdges, cfg.NeighborTolerance, cfg.UseIndex, cfg.Parallelism,
		cfg.Metrics, cfg.Trace)
	return b.String()
}

// AttackOn is Attack against an alternative auxiliary graph (e.g. a grown
// crawl), building a fresh index.
func AttackOn(aux hin.GraphBackend, cfg dehin.Config) (*dehin.Attack, error) {
	cfg.Profile = dehin.TQQProfile()
	cfg.UseIndex = true
	return dehin.NewAttack(aux, cfg)
}

// averageRun attacks every released target with the given attack and
// averages precision and reduction rate.
func averageRun(a *dehin.Attack, targets []*ReleasedTarget, transform func(*hin.Graph) (*hin.Graph, error)) (precision, reduction float64, err error) {
	if len(targets) == 0 {
		return 0, 0, fmt.Errorf("experiments: no targets")
	}
	for _, rt := range targets {
		g := rt.Graph
		if transform != nil {
			g, err = transform(g)
			if err != nil {
				return 0, 0, err
			}
		}
		res, err := a.Run(g, rt.Truth)
		if err != nil {
			return 0, 0, err
		}
		precision += res.Precision
		reduction += res.ReductionRate
	}
	n := float64(len(targets))
	return precision / n, reduction / n, nil
}
