package dehin

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"github.com/hinpriv/dehin/internal/bipartite"
	"github.com/hinpriv/dehin/internal/hin"
)

// Config parameterizes the DeHIN attack.
type Config struct {
	// MaxDistance is n, the maximum distance of utilized neighbors:
	// 0 compares profiles only; d > 0 recursively compares typed
	// neighborhoods to depth d.
	MaxDistance int
	// LinkTypes are the target-network-schema link types to utilize;
	// both graphs must share the schema. Empty means all link types.
	LinkTypes []hin.LinkTypeID
	// Profile declares how profile attributes match; it also powers the
	// candidate index. Leave zero only if EntityMatch and a full scan are
	// acceptable.
	Profile ProfileSpec
	// EntityMatch overrides the profile-derived matcher (optional).
	EntityMatch EntityMatcher
	// LinkMatch compares strengths; nil means GrowthLinkMatcher.
	LinkMatch LinkMatcher
	// UseIndex enables the (gender, yob, ...)-bucketed candidate index.
	// It requires EntityMatch to imply equality on Profile.ExactAttrs and
	// auxiliary >= target on the first Profile.GrowAttrs entry, which
	// holds for the built-in matchers. Disable for exotic matchers.
	UseIndex bool
	// SharedIndex supplies a prebuilt index (see NewIndex) so many attack
	// configurations over the same auxiliary graph can share one. It must
	// have been built from the same graph and ProfileSpec.
	SharedIndex *Index
	// RemoveMajorityStrength preprocesses the target graph by deleting,
	// per link type, every edge carrying that type's majority strength -
	// the re-configured DeHIN of Section 6.2 that strips Complete Graph
	// Anonymity's fake links (and, unavoidably, real links sharing the
	// majority value; unweighted link types lose all edges).
	RemoveMajorityStrength bool
	// FallbackProfileOnly degrades a target whose neighbor matching
	// eliminates every profile candidate to its profile-only candidate
	// set. This is the rational adversary's response to Varying Weight
	// CGA - neighborhoods are unusable, so n collapses to 0 - and
	// reproduces Figure 8's flat VW-CGA curves.
	FallbackProfileOnly bool
	// UseInEdges additionally requires in-neighborhoods to match - an
	// extension beyond the paper's out-link feature expansion.
	UseInEdges bool
	// NeighborTolerance relaxes Algorithm 2 (an extension beyond the
	// paper): instead of every target neighbor needing a distinct match,
	// only ceil((1-tolerance) * |N_b|) per link type and direction must
	// be matched. Zero reproduces the paper exactly; positive values are
	// the rational adversary's response to edge-perturbation defenses,
	// which delete or rewire a fraction of real links and would
	// otherwise eliminate the true counterpart.
	NeighborTolerance float64
	// Parallelism bounds concurrent target queries in Run; 0 means
	// GOMAXPROCS.
	Parallelism int
}

// Attack is a DeHIN attacker bound to one auxiliary graph. It is safe for
// concurrent use once built.
type Attack struct {
	aux   *hin.Graph
	cfg   Config
	em    EntityMatcher
	lm    LinkMatcher
	index *profileIndex
}

// NewAttack prepares an attack against the given auxiliary graph.
func NewAttack(aux *hin.Graph, cfg Config) (*Attack, error) {
	if cfg.MaxDistance < 0 {
		return nil, fmt.Errorf("dehin: negative MaxDistance")
	}
	if cfg.NeighborTolerance < 0 || cfg.NeighborTolerance >= 1 {
		return nil, fmt.Errorf("dehin: NeighborTolerance %g out of [0,1)", cfg.NeighborTolerance)
	}
	if len(cfg.LinkTypes) == 0 {
		for i := 0; i < aux.Schema().NumLinkTypes(); i++ {
			cfg.LinkTypes = append(cfg.LinkTypes, hin.LinkTypeID(i))
		}
	}
	for _, lt := range cfg.LinkTypes {
		if int(lt) >= aux.Schema().NumLinkTypes() {
			return nil, fmt.Errorf("dehin: link type %d out of range", lt)
		}
	}
	a := &Attack{aux: aux, cfg: cfg}
	a.em = cfg.EntityMatch
	if a.em == nil {
		a.em = cfg.Profile.GrowthMatcher()
	}
	a.lm = cfg.LinkMatch
	if a.lm == nil {
		a.lm = GrowthLinkMatcher
	}
	switch {
	case cfg.SharedIndex != nil:
		if cfg.SharedIndex.idx.aux != aux {
			return nil, fmt.Errorf("dehin: SharedIndex was built from a different auxiliary graph")
		}
		a.index = cfg.SharedIndex.idx
	case cfg.UseIndex:
		idx, err := buildProfileIndex(aux, cfg.Profile)
		if err != nil {
			return nil, err
		}
		a.index = idx
	}
	return a, nil
}

// Index is a reusable profile candidate index over one auxiliary graph.
type Index struct {
	idx *profileIndex
}

// NewIndex builds a candidate index for the given auxiliary graph and
// profile specification, shareable across attacks via Config.SharedIndex.
func NewIndex(aux *hin.Graph, spec ProfileSpec) (*Index, error) {
	idx, err := buildProfileIndex(aux, spec)
	if err != nil {
		return nil, err
	}
	return &Index{idx: idx}, nil
}

// Aux returns the auxiliary graph the attack is bound to.
func (a *Attack) Aux() *hin.Graph { return a.aux }

// PrepareTarget applies the attack-side preprocessing to a released target
// graph (currently majority-strength removal when configured) and returns
// the graph the matching will actually run on.
func (a *Attack) PrepareTarget(target *hin.Graph) (*hin.Graph, error) {
	if !a.cfg.RemoveMajorityStrength {
		return target, nil
	}
	return RemoveMajorityStrengthEdges(target)
}

// Deanonymize runs Algorithm 1 for one target entity against the prepared
// target graph, returning the candidate set of auxiliary entities. The
// caller is responsible for having applied PrepareTarget.
func (a *Attack) Deanonymize(target *hin.Graph, tv hin.EntityID) []hin.EntityID {
	profile := a.profileCandidates(target, tv)
	if a.cfg.MaxDistance == 0 || len(profile) == 0 {
		return profile
	}
	memo := make(map[memoKey]bool)
	out := make([]hin.EntityID, 0, 4)
	for _, av := range profile {
		if a.linkMatch(target, a.cfg.MaxDistance, tv, av, memo) {
			out = append(out, av)
		}
	}
	if len(out) == 0 && a.cfg.FallbackProfileOnly {
		return profile
	}
	return out
}

// profileCandidates implements the entity_attribute_match stage of
// Algorithm 1, via the index when available.
func (a *Attack) profileCandidates(target *hin.Graph, tv hin.EntityID) []hin.EntityID {
	var out []hin.EntityID
	if a.index != nil {
		for _, av := range a.index.lookup(target, tv) {
			if a.em(target, a.aux, tv, av) {
				out = append(out, av)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	for av := 0; av < a.aux.NumEntities(); av++ {
		if a.em(target, a.aux, tv, hin.EntityID(av)) {
			out = append(out, hin.EntityID(av))
		}
	}
	return out
}

type memoKey struct {
	tv, av hin.EntityID
	depth  int32
}

// linkMatch is Algorithm 2: do the typed neighborhoods of target entity tv
// and auxiliary entity av match to depth n? For each utilized link type,
// every target neighbor needs a distinct compatible auxiliary neighbor -
// a perfect left matching in the bipartite candidate graph. Extra
// auxiliary neighbors are tolerated as links grown during the time gap.
//
// The paper's pseudocode recurses with the original pair (v', v); the
// evident intent - and what makes distance-n meaningful - is to recurse on
// the neighbor pair (b'_i, b_i), which is what this does. Results are
// memoized per (target, candidate, depth) across the whole query.
func (a *Attack) linkMatch(target *hin.Graph, n int, tv, av hin.EntityID, memo map[memoKey]bool) bool {
	key := memoKey{tv, av, int32(n)}
	if r, ok := memo[key]; ok {
		return r
	}
	res := a.linkMatchUncached(target, n, tv, av, memo)
	memo[key] = res
	return res
}

func (a *Attack) linkMatchUncached(target *hin.Graph, n int, tv, av hin.EntityID, memo map[memoKey]bool) bool {
	for _, lt := range a.cfg.LinkTypes {
		if !a.directionMatch(target, n, tv, av, lt, false, memo) {
			return false
		}
		if a.cfg.UseInEdges && !a.directionMatch(target, n, tv, av, lt, true, memo) {
			return false
		}
	}
	return true
}

// directionMatch checks one link type in one direction.
func (a *Attack) directionMatch(target *hin.Graph, n int, tv, av hin.EntityID, lt hin.LinkTypeID, inEdges bool, memo map[memoKey]bool) bool {
	var tns []hin.EntityID
	var tws []int32
	var ans []hin.EntityID
	var aws []int32
	if inEdges {
		tns, tws = target.InEdges(lt, tv)
		ans, aws = a.aux.InEdges(lt, av)
	} else {
		tns, tws = target.OutEdges(lt, tv)
		ans, aws = a.aux.OutEdges(lt, av)
	}
	need := len(tns)
	if a.cfg.NeighborTolerance > 0 {
		// Round the allowance up so small neighborhoods get at least one
		// forgivable edge - a 10-edge neighborhood at 7% tolerance must
		// still tolerate a single fake.
		need = len(tns) - int(math.Ceil(a.cfg.NeighborTolerance*float64(len(tns))))
	}
	if need <= 0 || len(tns) == 0 {
		return true
	}
	if need > len(ans) {
		// Even a maximum matching cannot reach the quota.
		return false
	}
	adj := make([][]int32, len(tns))
	empties := 0
	for i, tb := range tns {
		for j, ab := range ans {
			if !a.lm(tws[i], aws[j]) {
				continue
			}
			if !a.em(target, a.aux, tb, ab) {
				continue
			}
			if n > 1 && !a.linkMatch(target, n-1, tb, ab, memo) {
				continue
			}
			adj[i] = append(adj[i], int32(j))
		}
		if len(adj[i]) == 0 {
			empties++
			if len(tns)-empties < need {
				return false
			}
		}
	}
	g := bipartite.Graph{NLeft: len(tns), NRight: len(ans), Adj: adj}
	if need == len(tns) {
		return bipartite.HasPerfectLeftMatching(g)
	}
	_, _, size := bipartite.HopcroftKarp(g)
	return size >= need
}

// RemoveMajorityStrengthEdges returns a copy of g without, per link type,
// the edges carrying that type's most frequent strength. On an unweighted
// link type every edge carries strength 1, so the whole type is dropped -
// which is what completing the follow graph costs the defender's victim
// (Section 6.2).
func RemoveMajorityStrengthEdges(g *hin.Graph) (*hin.Graph, error) {
	schema := g.Schema()
	b := hin.NewBuilder(schema)
	n := g.NumEntities()
	for i := 0; i < n; i++ {
		id := hin.EntityID(i)
		b.AddEntity(g.EntityType(id), g.Label(id), g.Attrs(id)...)
		for _, sa := range schema.EntityType(g.EntityType(id)).SetAttrs {
			if s := g.Set(sa, id); len(s) > 0 {
				b.SetSet(sa, id, s)
			}
		}
	}
	for lt := 0; lt < schema.NumLinkTypes(); lt++ {
		ltid := hin.LinkTypeID(lt)
		maj, _, ok := hin.MajorityStrength(g, ltid)
		for v := 0; v < n; v++ {
			tos, ws := g.OutEdges(ltid, hin.EntityID(v))
			for j, to := range tos {
				if ok && ws[j] == maj {
					continue
				}
				if err := b.AddEdge(ltid, hin.EntityID(v), to, ws[j]); err != nil {
					return nil, err
				}
			}
		}
	}
	return b.Build()
}

// TargetOutcome records the attack's result on one target entity.
type TargetOutcome struct {
	// Candidates is |C(v')|, the candidate set size.
	Candidates int
	// Unique reports |C| == 1; Correct that the unique candidate is the
	// true counterpart.
	Unique, Correct bool
}

// Result aggregates an attack over a whole target graph with the paper's
// two metrics (Section 6.1).
type Result struct {
	// Precision is the fraction of targets de-anonymized by a unique,
	// correct matching.
	Precision float64
	// ReductionRate is the mean of 1 - |C(v')| / |V| over targets.
	ReductionRate float64
	// PerTarget holds each target entity's outcome, indexed like the
	// target graph.
	PerTarget []TargetOutcome
}

// Run executes the attack on every entity of the released target graph.
// truth[i] names the auxiliary entity actually behind target entity i and
// is used only for scoring. PrepareTarget preprocessing is applied
// automatically.
func (a *Attack) Run(target *hin.Graph, truth []hin.EntityID) (Result, error) {
	if len(truth) != target.NumEntities() {
		return Result{}, fmt.Errorf("dehin: truth size %d != %d targets", len(truth), target.NumEntities())
	}
	prepared, err := a.PrepareTarget(target)
	if err != nil {
		return Result{}, err
	}
	n := prepared.NumEntities()
	out := Result{PerTarget: make([]TargetOutcome, n)}
	workers := a.cfg.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tv := range next {
				c := a.Deanonymize(prepared, hin.EntityID(tv))
				o := TargetOutcome{Candidates: len(c)}
				if len(c) == 1 {
					o.Unique = true
					o.Correct = c[0] == truth[tv]
				}
				out.PerTarget[tv] = o
			}
		}()
	}
	for tv := 0; tv < n; tv++ {
		next <- tv
	}
	close(next)
	wg.Wait()

	auxN := float64(a.aux.NumEntities())
	correct, reduction := 0, 0.0
	for _, o := range out.PerTarget {
		if o.Correct {
			correct++
		}
		reduction += 1 - float64(o.Candidates)/auxN
	}
	out.Precision = float64(correct) / float64(n)
	out.ReductionRate = reduction / float64(n)
	return out, nil
}
