package dehin

import (
	"fmt"
	"math"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"github.com/hinpriv/dehin/internal/hin"
	"github.com/hinpriv/dehin/internal/obs"
	"github.com/hinpriv/dehin/internal/obs/trace"
)

// Config parameterizes the DeHIN attack.
type Config struct {
	// MaxDistance is n, the maximum distance of utilized neighbors:
	// 0 compares profiles only; d > 0 recursively compares typed
	// neighborhoods to depth d.
	MaxDistance int
	// LinkTypes are the target-network-schema link types to utilize;
	// both graphs must share the schema. Empty means all link types.
	LinkTypes []hin.LinkTypeID
	// Profile declares how profile attributes match; it also powers the
	// candidate index. Leave zero only if EntityMatch and a full scan are
	// acceptable.
	Profile ProfileSpec
	// EntityMatch overrides the profile-derived matcher (optional).
	EntityMatch EntityMatcher
	// LinkMatch compares strengths; nil means GrowthLinkMatcher.
	LinkMatch LinkMatcher
	// UseIndex enables the (gender, yob, ...)-bucketed candidate index.
	// It requires EntityMatch to imply equality on Profile.ExactAttrs and
	// auxiliary >= target on the first Profile.GrowAttrs entry, which
	// holds for the built-in matchers. Disable for exotic matchers.
	UseIndex bool
	// SharedIndex supplies a prebuilt index (see NewIndex) so many attack
	// configurations over the same auxiliary graph can share one. It must
	// have been built from the same graph and ProfileSpec.
	SharedIndex *Index
	// RemoveMajorityStrength preprocesses the target graph by deleting,
	// per link type, every edge carrying that type's majority strength -
	// the re-configured DeHIN of Section 6.2 that strips Complete Graph
	// Anonymity's fake links (and, unavoidably, real links sharing the
	// majority value; unweighted link types lose all edges).
	RemoveMajorityStrength bool
	// FallbackProfileOnly degrades a target whose neighbor matching
	// eliminates every profile candidate to its profile-only candidate
	// set. This is the rational adversary's response to Varying Weight
	// CGA - neighborhoods are unusable, so n collapses to 0 - and
	// reproduces Figure 8's flat VW-CGA curves.
	FallbackProfileOnly bool
	// UseInEdges additionally requires in-neighborhoods to match - an
	// extension beyond the paper's out-link feature expansion.
	UseInEdges bool
	// NeighborTolerance relaxes Algorithm 2 (an extension beyond the
	// paper): instead of every target neighbor needing a distinct match,
	// only ceil((1-tolerance) * |N_b|) per link type and direction must
	// be matched. Zero reproduces the paper exactly; positive values are
	// the rational adversary's response to edge-perturbation defenses,
	// which delete or rewire a fraction of real links and would
	// otherwise eliminate the true counterpart.
	NeighborTolerance float64
	// Parallelism bounds concurrent target queries in Run; 0 means
	// GOMAXPROCS.
	Parallelism int
	// Metrics attaches the attack to an observability registry
	// (internal/obs): candidates considered, degree-pruned rejections,
	// memo hits/misses, matcher invocations, and per-Run wall time. Nil
	// (the default) disables instrumentation entirely; the query hot path
	// then pays a single predictable branch per query (see DESIGN.md
	// §5.2). Metric names are listed in OBSERVABILITY.md.
	Metrics *obs.Registry
	// Trace attaches Run to a span tracer (internal/obs/trace): one span
	// per Run on its own lane per worker, plus SAMPLED per-query child
	// spans (every querySampleEvery-th query, at most querySampleCap per
	// Run) broken into profile_candidates / degree_prune / neighbor_match
	// stages, so a 12k-target trace stays bounded. Nil (the default)
	// disables tracing; the single-query paths (Deanonymize,
	// DeanonymizeAppend) are never traced, preserving their
	// zero-allocation guarantee bit for bit.
	Trace *trace.Tracer
}

// Attack is a DeHIN attacker bound to one auxiliary graph. It is safe for
// concurrent use once built: per-query working memory lives in pooled
// queryScratch instances, never in the Attack itself.
type Attack struct {
	aux     hin.GraphBackend
	cfg     Config
	em      EntityMatcher
	lm      LinkMatcher
	index   *profileIndex
	deg     *degSignature  // nil when degree pruning is disabled
	met     *attackMetrics // nil when Config.Metrics is nil
	scratch sync.Pool      // *queryScratch
}

// NewAttack prepares an attack against the given auxiliary graph.
func NewAttack(aux hin.GraphBackend, cfg Config) (*Attack, error) {
	if cfg.MaxDistance < 0 {
		return nil, fmt.Errorf("dehin: negative MaxDistance")
	}
	if cfg.NeighborTolerance < 0 || cfg.NeighborTolerance >= 1 {
		return nil, fmt.Errorf("dehin: NeighborTolerance %g out of [0,1)", cfg.NeighborTolerance)
	}
	if len(cfg.LinkTypes) == 0 {
		for i := 0; i < aux.Schema().NumLinkTypes(); i++ {
			cfg.LinkTypes = append(cfg.LinkTypes, hin.LinkTypeID(i))
		}
	}
	for _, lt := range cfg.LinkTypes {
		if int(lt) >= aux.Schema().NumLinkTypes() {
			return nil, fmt.Errorf("dehin: link type %d out of range", lt)
		}
	}
	a := &Attack{aux: aux, cfg: cfg, met: newAttackMetrics(cfg.Metrics)}
	a.em = cfg.EntityMatch
	if a.em == nil {
		// The profile spec drives attribute reads on both graphs; validate
		// it against the shared schema up front so a bad index surfaces
		// here instead of as garbage reads or silently empty candidate
		// sets at query time.
		if err := validateProfileSpec(aux.Schema(), cfg.Profile); err != nil {
			return nil, err
		}
		a.em = cfg.Profile.GrowthMatcher()
	}
	a.lm = cfg.LinkMatch
	if a.lm == nil {
		a.lm = GrowthLinkMatcher
	}
	switch {
	case cfg.SharedIndex != nil:
		if cfg.SharedIndex.idx.aux != aux {
			return nil, fmt.Errorf("dehin: SharedIndex was built from a different auxiliary graph")
		}
		a.index = cfg.SharedIndex.idx
	case cfg.UseIndex:
		// The build runs on the same pool size the queries will; the
		// index contents are identical at any parallelism.
		idx, err := buildProfileIndex(aux, cfg.Profile, cfg.Parallelism)
		if err != nil {
			return nil, err
		}
		a.index = idx
	}
	// Degree-signature pruning is sound whenever the per-type quota
	// directionMatch enforces is the plain neighbor count (see the
	// degSignature soundness note); conservatively gate it off for
	// re-configured (majority-strength-removed) attacks and custom
	// matchers so the pruned engine provably matches reference semantics.
	if cfg.MaxDistance > 0 && !cfg.RemoveMajorityStrength &&
		cfg.EntityMatch == nil && cfg.LinkMatch == nil {
		a.deg = buildDegSignature(aux, cfg.LinkTypes, cfg.UseInEdges)
	}
	return a, nil
}

// Index is a reusable profile candidate index over one auxiliary graph.
type Index struct {
	idx *profileIndex
}

// NewIndex builds a candidate index for the given auxiliary graph and
// profile specification, shareable across attacks via Config.SharedIndex.
// The build is sharded across all cores; the result does not depend on
// the core count.
func NewIndex(aux hin.GraphBackend, spec ProfileSpec) (*Index, error) {
	idx, err := buildProfileIndex(aux, spec, 0)
	if err != nil {
		return nil, err
	}
	return &Index{idx: idx}, nil
}

// Aux returns the auxiliary graph the attack is bound to.
func (a *Attack) Aux() hin.GraphBackend { return a.aux }

// PrepareTarget applies the attack-side preprocessing to a released target
// graph (currently majority-strength removal when configured) and returns
// the graph the matching will actually run on.
func (a *Attack) PrepareTarget(target hin.GraphBackend) (hin.GraphBackend, error) {
	if !a.cfg.RemoveMajorityStrength {
		return target, nil
	}
	g, err := RemoveMajorityStrengthEdges(target)
	if err != nil {
		return nil, err
	}
	return g, nil
}

func (a *Attack) getScratch() *queryScratch {
	if s, ok := a.scratch.Get().(*queryScratch); ok {
		return s
	}
	return &queryScratch{}
}

func (a *Attack) putScratch(s *queryScratch) { a.scratch.Put(s) }

// Deanonymize runs Algorithm 1 for one target entity against the prepared
// target graph, returning the candidate set of auxiliary entities. The
// caller is responsible for having applied PrepareTarget.
func (a *Attack) Deanonymize(target hin.GraphBackend, tv hin.EntityID) []hin.EntityID {
	return a.DeanonymizeAppend(nil, target, tv)
}

// DeanonymizeAppend is Deanonymize appending into dst (which may be nil),
// returning the extended slice. Reusing dst across queries makes a
// steady-state query allocation-free: all internal working memory is
// pooled and the result lands in the caller's buffer.
func (a *Attack) DeanonymizeAppend(dst []hin.EntityID, target hin.GraphBackend, tv hin.EntityID) []hin.EntityID {
	s := a.getScratch()
	dst = a.deanonymize(s, dst, target, tv)
	a.putScratch(s)
	return dst
}

// DeanonymizeSpan is Deanonymize carrying a caller-provided query span:
// when qs is active the query records the same profile_candidates /
// degree_prune / neighbor_match stage children that Run's sampled
// queries get, parented under qs — this is how the serving layer's
// per-request flight recorder sees inside an attack. An inactive span
// (the zero Span) makes this exactly Deanonymize, so the plain
// single-query paths stay untraced and allocation-free.
func (a *Attack) DeanonymizeSpan(target hin.GraphBackend, tv hin.EntityID, qs trace.Span) []hin.EntityID {
	s := a.getScratch()
	dst := a.deanonymizeTraced(s, nil, target, tv, qs)
	a.putScratch(s)
	return dst
}

// ensureMemo (re)binds the scratch's memo table to the given prepared
// target graph. Memoized results - linkMatch verdicts at depths >= 1 and
// entity-matcher verdicts at depth 0 - are pure functions of (target
// graph, auxiliary graph, config), so they stay valid for the lifetime of
// the (attack, target graph) pair: the table resets only when the scratch
// sees a different graph. This is what lets a whole Run (500 queries
// against one release) amortize the depth-1 neighborhood recursion that
// different targets share.
func (a *Attack) ensureMemo(s *queryScratch, target hin.GraphBackend) {
	if s.memoTarget == target {
		return
	}
	s.memo.reset(memoPackable(target, a.aux, a.cfg.MaxDistance))
	s.memoTarget = target
}

// emCached is the entity matcher memoized per (target entity, auxiliary
// entity) as depth-0 entries of the query memo. The matcher compares
// attribute tuples (several Graph.Attr reads per call) and the same
// neighbor pair is re-examined once per link type, direction, and parent
// pair, so a table probe is substantially cheaper than re-evaluating it.
//
//hin:hot
func (a *Attack) emCached(s *queryScratch, target hin.GraphBackend, tb, ab hin.EntityID) bool {
	if r, ok := s.memo.get(tb, ab, 0); ok {
		s.stats.memoHits++
		return r
	}
	r := a.em(target, a.aux, tb, ab)
	s.memo.put(tb, ab, 0, r)
	s.stats.memoMisses++
	return r
}

// deanonymize is the per-query entry point: the uninstrumented core plus,
// when a metrics registry is attached, one batched flush of the query's
// scratch-local event tally. The disabled path costs exactly this one
// predictable branch (the zero Span inside the core adds only dead
// single-branch no-ops).
func (a *Attack) deanonymize(s *queryScratch, dst []hin.EntityID, target hin.GraphBackend, tv hin.EntityID) []hin.EntityID {
	if a.met == nil {
		return a.deanonymizeCore(s, dst, target, tv, trace.Span{})
	}
	s.stats = queryStats{}
	dst = a.deanonymizeCore(s, dst, target, tv, trace.Span{})
	a.met.flush(&s.stats)
	return dst
}

// deanonymizeTraced is deanonymize carrying a live query span, used only
// for the queries Run samples. An inactive span falls through to the
// untraced path so callers need not branch.
func (a *Attack) deanonymizeTraced(s *queryScratch, dst []hin.EntityID, target hin.GraphBackend, tv hin.EntityID, qs trace.Span) []hin.EntityID {
	if !qs.Active() {
		return a.deanonymize(s, dst, target, tv)
	}
	if a.met == nil {
		return a.deanonymizeCore(s, dst, target, tv, qs)
	}
	s.stats = queryStats{}
	dst = a.deanonymizeCore(s, dst, target, tv, qs)
	a.met.flush(&s.stats)
	return dst
}

// deanonymizeCore runs Algorithm 1 for one target. qs, when active, is the
// sampled query span whose stage children record where the query's time
// went; the zero Span (the usual case) makes every trace call a
// predictable no-op branch.
//
//hin:hot
func (a *Attack) deanonymizeCore(s *queryScratch, dst []hin.EntityID, target hin.GraphBackend, tv hin.EntityID, qs trace.Span) []hin.EntityID {
	ps := qs.Child("profile_candidates")
	profile := a.profileCandidates(s, target, tv)
	ps.Attr("candidates", int64(len(profile)))
	ps.End()
	s.stats.candidates += int64(len(profile))
	if a.cfg.MaxDistance == 0 || len(profile) == 0 {
		return append(dst, profile...)
	}
	a.ensureMemo(s, target)
	prune := a.deg != nil
	if prune {
		dp := qs.Child("degree_prune")
		a.computeNeeds(s, target, tv)
		dp.End()
	}
	ms := qs.Child("neighbor_match")
	base := len(dst)
	pruned := int64(0)
	for _, av := range profile {
		// A candidate the degree signature rejects is one Algorithm 2
		// would reject; skipping it here keeps FallbackProfileOnly
		// semantics identical (it still counts as a neighbor-stage
		// elimination, not a profile-stage one).
		if prune && !a.deg.admits(s.needs, av) {
			pruned++
			continue
		}
		if a.linkMatch(s, target, a.cfg.MaxDistance, tv, av) {
			dst = append(dst, av)
		}
	}
	s.stats.pruned += pruned
	ms.Attr("pruned", pruned)
	ms.Attr("survivors", int64(len(dst)-base))
	ms.End()
	if len(dst) == base && a.cfg.FallbackProfileOnly {
		s.stats.fallbacks++
		return append(dst, profile...)
	}
	return dst
}

// profileCandidates implements the entity_attribute_match stage of
// Algorithm 1, via the index when available. The result lives in s.cand
// and is valid until the scratch's next query.
//
//hin:hot
func (a *Attack) profileCandidates(s *queryScratch, target hin.GraphBackend, tv hin.EntityID) []hin.EntityID {
	out := s.cand[:0]
	if a.index != nil {
		for _, av := range a.index.lookup(target, tv) {
			if a.em(target, a.aux, tv, av) {
				out = append(out, av)
			}
		}
		slices.Sort(out)
	} else {
		for av := 0; av < a.aux.NumEntities(); av++ {
			if a.em(target, a.aux, tv, hin.EntityID(av)) {
				out = append(out, hin.EntityID(av))
			}
		}
	}
	s.cand = out
	return out
}

// quota returns how many of deg target neighbors must find distinct
// matches under the configured tolerance.
func (a *Attack) quota(deg int) int {
	if a.cfg.NeighborTolerance <= 0 {
		return deg
	}
	// Round the allowance up so small neighborhoods get at least one
	// forgivable edge - a 10-edge neighborhood at 7% tolerance must
	// still tolerate a single fake.
	return deg - int(math.Ceil(a.cfg.NeighborTolerance*float64(deg)))
}

// linkMatch is Algorithm 2: do the typed neighborhoods of target entity tv
// and auxiliary entity av match to depth n? For each utilized link type,
// every target neighbor needs a distinct compatible auxiliary neighbor -
// a perfect left matching in the bipartite candidate graph. Extra
// auxiliary neighbors are tolerated as links grown during the time gap.
//
// The paper's pseudocode recurses with the original pair (v', v); the
// evident intent - and what makes distance-n meaningful - is to recurse on
// the neighbor pair (b'_i, b_i), which is what this does. Results are
// memoized per (target, candidate, depth) across the whole query.
//
//hin:hot
func (a *Attack) linkMatch(s *queryScratch, target hin.GraphBackend, n int, tv, av hin.EntityID) bool {
	if r, ok := s.memo.get(tv, av, n); ok {
		s.stats.memoHits++
		return r
	}
	res := a.linkMatchUncached(s, target, n, tv, av)
	s.memo.put(tv, av, n, res)
	s.stats.memoMisses++
	return res
}

//hin:hot
func (a *Attack) linkMatchUncached(s *queryScratch, target hin.GraphBackend, n int, tv, av hin.EntityID) bool {
	for _, lt := range a.cfg.LinkTypes {
		if !a.directionMatch(s, target, n, tv, av, lt, false) {
			return false
		}
		if a.cfg.UseInEdges && !a.directionMatch(s, target, n, tv, av, lt, true) {
			return false
		}
	}
	return true
}

// directionMatch checks one link type in one direction, building the
// bipartite compatibility graph into the scratch frame of this recursion
// depth (deeper linkMatch calls use deeper frames, so the build never
// clobbers an in-progress one).
//
//hin:hot
func (a *Attack) directionMatch(s *queryScratch, target hin.GraphBackend, n int, tv, av hin.EntityID, lt hin.LinkTypeID, inEdges bool) bool {
	// The frame is claimed before any row decode: its pooled tbuf/abuf
	// cursors hold the decoded rows for this depth, and deeper recursion
	// uses deeper frames, so the rows below stay valid across the loop.
	f := s.frame(n)
	var tns []hin.EntityID
	var tws []int32
	if inEdges {
		tns, tws = target.InEdgesBuf(&f.tbuf, lt, tv)
	} else {
		tns, tws = target.OutEdgesBuf(&f.tbuf, lt, tv)
	}
	need := a.quota(len(tns))
	if need <= 0 || len(tns) == 0 {
		return true
	}
	var ans []hin.EntityID
	var aws []int32
	if inEdges {
		if need > a.aux.InDegree(lt, av) {
			// Even a maximum matching cannot reach the quota; checked
			// against the degree so the auxiliary row is never decoded.
			return false
		}
		ans, aws = a.aux.InEdgesBuf(&f.abuf, lt, av)
	} else {
		if need > a.aux.OutDegree(lt, av) {
			return false
		}
		ans, aws = a.aux.OutEdgesBuf(&f.abuf, lt, av)
	}
	f.reset()
	empties := 0
	for i, tb := range tns {
		row := len(f.dat)
		for j, ab := range ans {
			if !a.lm(tws[i], aws[j]) {
				continue
			}
			if !a.emCached(s, target, tb, ab) {
				continue
			}
			if n > 1 && !a.linkMatch(s, target, n-1, tb, ab) {
				continue
			}
			f.dat = append(f.dat, int32(j))
		}
		if len(f.dat) == row {
			empties++
			if len(tns)-empties < need {
				return false
			}
		}
		f.closeRow()
	}
	g := f.graph(len(ans))
	s.stats.matcherRuns++
	if need == len(tns) {
		return s.matcher.HasPerfectLeftMatching(g)
	}
	return s.matcher.Match(g) >= need
}

// RemoveMajorityStrengthEdges returns a copy of g without, per link type,
// the edges carrying that type's most frequent strength. On an unweighted
// link type every edge carries strength 1, so the whole type is dropped -
// which is what completing the follow graph costs the defender's victim
// (Section 6.2).
func RemoveMajorityStrengthEdges(g hin.GraphBackend) (*hin.Graph, error) {
	schema := g.Schema()
	b := hin.NewBuilder(schema)
	n := g.NumEntities()
	var attrs []int64
	for i := 0; i < n; i++ {
		id := hin.EntityID(i)
		attrs = g.AppendAttrs(attrs[:0], id)
		b.AddEntity(g.EntityType(id), g.Label(id), attrs...)
		for _, sa := range schema.EntityType(g.EntityType(id)).SetAttrs {
			if s := g.Set(sa, id); len(s) > 0 {
				b.SetSet(sa, id, s)
			}
		}
	}
	buf := &hin.EdgeBuf{}
	for lt := 0; lt < schema.NumLinkTypes(); lt++ {
		ltid := hin.LinkTypeID(lt)
		maj, _, ok := hin.MajorityStrength(g, ltid)
		for v := 0; v < n; v++ {
			tos, ws := g.OutEdgesBuf(buf, ltid, hin.EntityID(v))
			for j, to := range tos {
				if ok && ws[j] == maj {
					continue
				}
				if err := b.AddEdge(ltid, hin.EntityID(v), to, ws[j]); err != nil {
					return nil, err
				}
			}
		}
	}
	return b.Build()
}

// Query-span sampling policy for Run (see Config.Trace): trace every
// querySampleEvery-th query, never more than querySampleCap per Run.
const (
	querySampleEvery = 64
	querySampleCap   = 256
)

// TargetOutcome records the attack's result on one target entity.
type TargetOutcome struct {
	// Candidates is |C(v')|, the candidate set size.
	Candidates int
	// Unique reports |C| == 1; Correct that the unique candidate is the
	// true counterpart.
	Unique, Correct bool
}

// Result aggregates an attack over a whole target graph with the paper's
// two metrics (Section 6.1).
type Result struct {
	// Precision is the fraction of targets de-anonymized by a unique,
	// correct matching.
	Precision float64
	// ReductionRate is the mean of 1 - |C(v')| / |V| over targets.
	ReductionRate float64
	// PerTarget holds each target entity's outcome, indexed like the
	// target graph.
	PerTarget []TargetOutcome
}

// Run executes the attack on every entity of the released target graph.
// truth[i] names the auxiliary entity actually behind target entity i and
// is used only for scoring. PrepareTarget preprocessing is applied
// automatically.
//
// Work is distributed by chunked work stealing over targets ordered by
// descending utilized degree: expensive hub entities are handed out first
// and a worker stuck on one cannot strand queued work behind it, so the
// tail of a Run stays balanced. A zero-entity target yields zero metrics
// (not NaN) and no error.
func (a *Attack) Run(target hin.GraphBackend, truth []hin.EntityID) (Result, error) {
	if len(truth) != target.NumEntities() {
		return Result{}, fmt.Errorf("dehin: truth size %d != %d targets", len(truth), target.NumEntities())
	}
	prepared, err := a.PrepareTarget(target)
	if err != nil {
		return Result{}, err
	}
	if a.met != nil {
		a.met.runs.Inc()
		t := a.met.runNs.Time()
		defer t.Stop()
	}
	n := prepared.NumEntities()
	out := Result{PerTarget: make([]TargetOutcome, n)}
	if n == 0 {
		return out, nil
	}
	workers := a.cfg.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	// Tracing: one lane per worker so sampled query spans land on stable
	// timeline rows; a shared counter samples every querySampleEvery-th
	// query up to querySampleCap, keeping large-target traces bounded.
	root := a.cfg.Trace.Start("dehin.run")
	root.Attr("targets", int64(n))
	root.Attr("workers", int64(workers))
	defer root.End()
	var lanes []trace.Track
	if a.cfg.Trace != nil {
		lanes = make([]trace.Track, workers)
		for i := range lanes {
			lanes[i] = a.cfg.Trace.NewTrack()
		}
	}
	var qSeen, qSampled atomic.Int64

	order := a.runOrder(prepared)
	// Small chunks amortize the atomic fetch without re-creating the
	// convoy a static partition (or one target per channel send) causes
	// when a single hub query dominates.
	chunk := max(1, min(64, n/(workers*8)))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := a.getScratch()
			defer a.putScratch(s)
			var buf []hin.EntityID
			for {
				start := int(next.Add(int64(chunk))) - chunk
				if start >= n {
					return
				}
				for _, tv32 := range order[start:min(start+chunk, n)] {
					tv := hin.EntityID(tv32)
					var sp trace.Span
					if lanes != nil {
						if k := qSeen.Add(1); (k-1)%querySampleEvery == 0 &&
							qSampled.Add(1) <= querySampleCap {
							sp = root.ChildOn(lanes[w], "query")
							sp.Attr("target", int64(tv))
						}
					}
					buf = a.deanonymizeTraced(s, buf[:0], prepared, tv, sp)
					if sp.Active() {
						sp.Attr("candidates", int64(len(buf)))
						sp.End()
					}
					o := TargetOutcome{Candidates: len(buf)}
					if len(buf) == 1 {
						o.Unique = true
						o.Correct = buf[0] == truth[tv]
					}
					out.PerTarget[tv] = o
				}
			}
		}(w)
	}
	wg.Wait()

	auxN := float64(a.aux.NumEntities())
	correct, reduction := 0, 0.0
	for _, o := range out.PerTarget {
		if o.Correct {
			correct++
		}
		if auxN > 0 {
			reduction += 1 - float64(o.Candidates)/auxN
		}
	}
	out.Precision = float64(correct) / float64(n)
	out.ReductionRate = reduction / float64(n)
	return out, nil
}

// runOrder returns the target entities sorted by descending total utilized
// degree (ties by ascending id, keeping the order deterministic).
func (a *Attack) runOrder(prepared hin.GraphBackend) []int32 {
	n := prepared.NumEntities()
	total := make([]int64, n)
	var deg []int32
	for _, lt := range a.cfg.LinkTypes {
		deg = prepared.OutDegrees(lt, deg[:0])
		for v, d := range deg {
			total[v] += int64(d)
		}
		if a.cfg.UseInEdges {
			deg = prepared.InDegrees(lt, deg[:0])
			for v, d := range deg {
				total[v] += int64(d)
			}
		}
	}
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	slices.SortFunc(order, func(x, y int32) int {
		if total[x] != total[y] {
			if total[x] > total[y] {
				return -1
			}
			return 1
		}
		return int(x) - int(y)
	})
	return order
}
