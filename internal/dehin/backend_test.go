package dehin

import (
	"os"
	"testing"

	"github.com/hinpriv/dehin/internal/anonymize"
	"github.com/hinpriv/dehin/internal/hin"
	"github.com/hinpriv/dehin/internal/randx"
	"github.com/hinpriv/dehin/internal/tqq"
)

// TestDeanonymizeSteadyStateZeroAllocCSR is the compact-backend twin of
// TestDeanonymizeSteadyStateZeroAlloc: with both auxiliary and target on
// the CSR backend, a warmed query must still allocate nothing - the
// varint rows decode into the pooled per-frame cursors, never into fresh
// slices.
func TestDeanonymizeSteadyStateZeroAllocCSR(t *testing.T) {
	cfgGen := tqq.DefaultConfig(2000, 29)
	cfgGen.Communities = []tqq.CommunitySpec{{Size: 200, Density: 0.01}}
	d, err := tqq.Generate(cfgGen)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := tqq.CommunityTarget(d, 0, randx.New(19))
	if err != nil {
		t.Fatal(err)
	}
	aux := hin.FromGraph(d.Graph)
	target := hin.FromGraph(tgt.Graph)
	for _, cfg := range []Config{
		{MaxDistance: 2, Profile: TQQProfile(), UseIndex: true},
		{MaxDistance: 2, Profile: TQQProfile(), UseIndex: true, UseInEdges: true, NeighborTolerance: 0.25},
	} {
		a, err := NewAttack(aux, cfg)
		if err != nil {
			t.Fatal(err)
		}
		s := &queryScratch{}
		var dst []hin.EntityID
		n := target.NumEntities()
		for tv := 0; tv < n; tv++ { // warm every buffer past its high-water mark
			dst = a.deanonymize(s, dst[:0], target, hin.EntityID(tv))
		}
		allocs := testing.AllocsPerRun(20, func() {
			for tv := 0; tv < 25; tv++ {
				dst = a.deanonymize(s, dst[:0], target, hin.EntityID(tv))
			}
		})
		if allocs != 0 {
			t.Errorf("cfg %+v: steady-state CSR query allocated %.1f times per 25-query batch", cfg, allocs)
		}
	}
}

// runBackendDifferential generates an auxiliary network with one planted
// community, releases it KDDA-style, and asserts the attack returns
// identical candidate sets and run fingerprints whether the graphs live on
// the in-memory or the compact CSR backend.
func runBackendDifferential(t *testing.T, auxUsers, targetSize, queries int, seed uint64) {
	t.Helper()
	cfgGen := tqq.DefaultConfig(auxUsers, seed)
	cfgGen.Communities = []tqq.CommunitySpec{{Size: targetSize, Density: 0.01}}
	d, err := tqq.Generate(cfgGen)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := tqq.CommunityTarget(d, 0, randx.New(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	anon, err := anonymize.RandomizeIDs(tgt.Graph, seed+2)
	if err != nil {
		t.Fatal(err)
	}
	truth := make([]hin.EntityID, len(anon.ToOrig))
	for i, t0 := range anon.ToOrig {
		truth[i] = tgt.Orig[t0]
	}
	csrAux := hin.FromGraph(d.Graph)
	csrTarget := hin.FromGraph(anon.Graph)
	for _, cfg := range []Config{
		{MaxDistance: 2, Profile: TQQProfile(), UseIndex: true},
		{MaxDistance: 2, Profile: TQQProfile(), UseIndex: true, UseInEdges: true, NeighborTolerance: 0.25},
	} {
		mem, err := NewAttack(d.Graph, cfg)
		if err != nil {
			t.Fatal(err)
		}
		csr, err := NewAttack(csrAux, cfg)
		if err != nil {
			t.Fatal(err)
		}
		n := min(queries, anon.Graph.NumEntities())
		for tv := 0; tv < n; tv++ {
			got := csr.Deanonymize(csrTarget, hin.EntityID(tv))
			want := mem.Deanonymize(anon.Graph, hin.EntityID(tv))
			if len(got) != len(want) {
				t.Fatalf("cfg %+v target %d: csr %v, mem %v", cfg, tv, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("cfg %+v target %d: csr %v, mem %v", cfg, tv, got, want)
				}
			}
		}
		// Whole-run fingerprint: precision, reduction, and every per-target
		// outcome must agree.
		rm, err := mem.Run(anon.Graph, truth)
		if err != nil {
			t.Fatal(err)
		}
		rc, err := csr.Run(csrTarget, truth)
		if err != nil {
			t.Fatal(err)
		}
		if rm.Precision != rc.Precision || rm.ReductionRate != rc.ReductionRate {
			t.Fatalf("cfg %+v: run fingerprints differ: mem %v/%v, csr %v/%v",
				cfg, rm.Precision, rm.ReductionRate, rc.Precision, rc.ReductionRate)
		}
		for i := range rm.PerTarget {
			if rm.PerTarget[i] != rc.PerTarget[i] {
				t.Fatalf("cfg %+v: per-target outcome %d differs across backends", cfg, i)
			}
		}
	}
}

// TestBackendDifferential12k is the committed-scale backend equivalence
// check (the DefaultParams auxiliary size).
func TestBackendDifferential12k(t *testing.T) {
	runBackendDifferential(t, 12000, 500, 60, 5)
}

// TestBackendDifferential50k is the PaperScaleParams-sized check. It adds
// minutes of generator time, so it only runs when PAPERSCALE is set (the
// same switch as the paperscale benchmarks in the root bench package).
func TestBackendDifferential50k(t *testing.T) {
	if os.Getenv("PAPERSCALE") == "" {
		t.Skip("set PAPERSCALE=1 to run the 50k-user backend differential")
	}
	runBackendDifferential(t, 50000, 1000, 100, 7)
}
