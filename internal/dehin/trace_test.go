package dehin

import (
	"strings"
	"testing"

	"github.com/hinpriv/dehin/internal/hin"
	"github.com/hinpriv/dehin/internal/obs/trace"
	"github.com/hinpriv/dehin/internal/randx"
	"github.com/hinpriv/dehin/internal/tqq"
)

// traceFixture builds a small generated dataset and community target for
// the tracing tests (same shape as the differential-test fixtures).
func traceFixture(t *testing.T) (*tqq.Dataset, *tqq.Target) {
	t.Helper()
	cfgGen := tqq.DefaultConfig(1500, 41)
	cfgGen.Communities = []tqq.CommunitySpec{{Size: 150, Density: 0.01}}
	d, err := tqq.Generate(cfgGen)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := tqq.CommunityTarget(d, 0, randx.New(7))
	if err != nil {
		t.Fatal(err)
	}
	return d, tgt
}

// TestRunTraceSpans verifies the Run-level tracing contract: a traced Run
// records one dehin.run root plus rate-limited query samples with their
// stage children, the export passes the Perfetto invariants, and tracing
// does not perturb attack results.
func TestRunTraceSpans(t *testing.T) {
	d, tgt := traceFixture(t)
	base := Config{MaxDistance: 2, Profile: TQQProfile(), UseIndex: true, Parallelism: 4}

	plain, err := NewAttack(d.Graph, base)
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain.Run(tgt.Graph, tgt.Orig)
	if err != nil {
		t.Fatal(err)
	}

	traced := base
	tr := trace.New(trace.DefaultCapacity)
	traced.Trace = tr
	a, err := NewAttack(d.Graph, traced)
	if err != nil {
		t.Fatal(err)
	}
	got, err := a.Run(tgt.Graph, tgt.Orig)
	if err != nil {
		t.Fatal(err)
	}
	if got.Precision != want.Precision || got.ReductionRate != want.ReductionRate {
		t.Fatalf("tracing changed results: %v/%v vs %v/%v",
			got.Precision, got.ReductionRate, want.Precision, want.ReductionRate)
	}

	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	stats, err := trace.ValidateChromeTrace([]byte(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("dropped %d spans with a default-capacity buffer", tr.Dropped())
	}
	if stats.Names["dehin.run"] != 1 {
		t.Fatalf("dehin.run spans = %d, want 1 (names: %v)", stats.Names["dehin.run"], stats.Names)
	}
	// 150 targets sampled every querySampleEvery-th query.
	wantQueries := (tgt.Graph.NumEntities() + querySampleEvery - 1) / querySampleEvery
	if q := stats.Names["query"]; q != wantQueries {
		t.Fatalf("query spans = %d, want %d", q, wantQueries)
	}
	if stats.Names["query"] > querySampleCap {
		t.Fatalf("query spans %d exceed cap %d", stats.Names["query"], querySampleCap)
	}
	// Every sampled query carries its pipeline-stage children.
	if stats.Names["profile_candidates"] != stats.Names["query"] {
		t.Fatalf("profile_candidates = %d, want one per query (%d)",
			stats.Names["profile_candidates"], stats.Names["query"])
	}
}

// TestSingleQueryPathsNeverTraced pins the hot-path contract from the
// Config.Trace docs: even with a tracer configured, Deanonymize and
// DeanonymizeAppend record no spans and a warmed query stays
// allocation-free — only Run samples queries.
func TestSingleQueryPathsNeverTraced(t *testing.T) {
	d, tgt := traceFixture(t)
	tr := trace.New(trace.DefaultCapacity)
	a, err := NewAttack(d.Graph, Config{
		MaxDistance: 2, Profile: TQQProfile(), UseIndex: true, Trace: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	prepared, err := a.PrepareTarget(tgt.Graph)
	if err != nil {
		t.Fatal(err)
	}

	var dst []hin.EntityID
	n := tgt.Graph.NumEntities()
	for tv := 0; tv < n; tv++ {
		dst = a.DeanonymizeAppend(dst[:0], prepared, hin.EntityID(tv))
	}
	if tr.Len() != 0 {
		t.Fatalf("DeanonymizeAppend recorded %d spans; single-query paths must stay untraced", tr.Len())
	}

	// Allocation check via the pinned-scratch internal path, like
	// TestDeanonymizeSteadyStateZeroAlloc (the sync.Pool's GC interaction
	// would make the public-path count nondeterministic).
	s := &queryScratch{}
	for tv := 0; tv < n; tv++ {
		dst = a.deanonymize(s, dst[:0], prepared, hin.EntityID(tv))
	}
	allocs := testing.AllocsPerRun(20, func() {
		for tv := 0; tv < 25; tv++ {
			dst = a.deanonymize(s, dst[:0], prepared, hin.EntityID(tv))
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state query with a configured tracer allocated %.1f times per 25-query batch", allocs)
	}
}
