package dehin

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Report summarizes an attack Result the way an auditor reads it: how the
// candidate-set sizes distribute, what the residual anonymity is, and the
// paper's two headline metrics.
type Report struct {
	Targets       int
	Precision     float64
	ReductionRate float64
	// UniqueCorrect / UniqueWrong / Ambiguous / Eliminated partition the
	// targets by outcome: exactly one candidate (right or wrong), more
	// than one, or none.
	UniqueCorrect, UniqueWrong, Ambiguous, Eliminated int
	// MeanCandidates and MedianCandidates describe |C(v')|.
	MeanCandidates   float64
	MedianCandidates int
	// MeanGuessProb is the mean of 1/|C| over non-empty candidate sets -
	// the adversary's expected random-guess success after reduction,
	// mirroring the paper's 1/k(t) mathematical factor.
	MeanGuessProb float64
	// Histogram buckets candidate-set sizes: 0, 1, 2-10, 11-100, >100.
	Histogram [5]int
}

// NewReport derives a Report from a Result.
func NewReport(res Result) Report {
	r := Report{
		Targets:       len(res.PerTarget),
		Precision:     res.Precision,
		ReductionRate: res.ReductionRate,
	}
	sizes := make([]int, 0, len(res.PerTarget))
	var sum float64
	var guess float64
	for _, o := range res.PerTarget {
		sizes = append(sizes, o.Candidates)
		sum += float64(o.Candidates)
		switch {
		case o.Candidates == 0:
			r.Eliminated++
			r.Histogram[0]++
		case o.Candidates == 1:
			if o.Correct {
				r.UniqueCorrect++
			} else {
				r.UniqueWrong++
			}
			r.Histogram[1]++
		default:
			r.Ambiguous++
			switch {
			case o.Candidates <= 10:
				r.Histogram[2]++
			case o.Candidates <= 100:
				r.Histogram[3]++
			default:
				r.Histogram[4]++
			}
		}
		if o.Candidates > 0 {
			guess += 1 / float64(o.Candidates)
		}
	}
	if r.Targets > 0 {
		r.MeanCandidates = sum / float64(r.Targets)
		sort.Ints(sizes)
		r.MedianCandidates = sizes[r.Targets/2]
		r.MeanGuessProb = guess / float64(r.Targets)
	}
	return r
}

// String renders the report as a short multi-line audit block.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "targets: %d\n", r.Targets)
	fmt.Fprintf(&b, "precision: %.1f%%   reduction rate: %.3f%%\n",
		r.Precision*100, r.ReductionRate*100)
	fmt.Fprintf(&b, "outcomes: %d unique-correct, %d unique-wrong, %d ambiguous, %d eliminated\n",
		r.UniqueCorrect, r.UniqueWrong, r.Ambiguous, r.Eliminated)
	fmt.Fprintf(&b, "candidates: mean %.1f, median %d, mean guess probability %.4f\n",
		r.MeanCandidates, r.MedianCandidates, r.MeanGuessProb)
	fmt.Fprintf(&b, "|C| histogram: 0:%d  1:%d  2-10:%d  11-100:%d  >100:%d\n",
		r.Histogram[0], r.Histogram[1], r.Histogram[2], r.Histogram[3], r.Histogram[4])
	return b.String()
}

// EffectiveAnonymity returns the residual k-anonymity the attack leaves: a
// target with |C| candidates can only be guessed with probability 1/|C|,
// so the value is the harmonic-style summary floor(1/MeanGuessProb), or
// MaxInt if no target retained any candidate.
func (r Report) EffectiveAnonymity() int {
	if r.MeanGuessProb <= 0 {
		return math.MaxInt
	}
	return int(1 / r.MeanGuessProb)
}
