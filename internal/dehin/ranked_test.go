package dehin

import (
	"testing"

	"github.com/hinpriv/dehin/internal/hin"
	"github.com/hinpriv/dehin/internal/randx"
	"github.com/hinpriv/dehin/internal/tqq"
)

func TestDeanonymizeRankedOrdersTruthFirst(t *testing.T) {
	cfg := tqq.DefaultConfig(2000, 51)
	cfg.Communities = []tqq.CommunitySpec{{Size: 250, Density: 0.01}}
	d, err := tqq.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := tqq.CommunityTarget(d, 0, randx.New(17))
	if err != nil {
		t.Fatal(err)
	}
	a := newTQQAttack(t, d.Graph, Config{MaxDistance: 1})
	topHits, checked := 0, 0
	for tv := 0; tv < 60; tv++ {
		ranked := a.DeanonymizeRanked(tgt.Graph, hin.EntityID(tv))
		if len(ranked) == 0 {
			continue
		}
		checked++
		// Scores sorted descending and within [0,1].
		for i, rc := range ranked {
			if rc.Score < 0 || rc.Score > 1 {
				t.Fatalf("score out of range: %v", rc)
			}
			if i > 0 && rc.Score > ranked[i-1].Score {
				t.Fatalf("ranking not sorted at %d", i)
			}
		}
		// The true counterpart must score a perfect 1 (it absorbs every
		// neighbor slot) and therefore sit in the top score band.
		var truthScore float64 = -1
		for _, rc := range ranked {
			if rc.Entity == tgt.Orig[tv] {
				truthScore = rc.Score
			}
		}
		if truthScore != 1 {
			t.Fatalf("target %d: truth score %g, want 1", tv, truthScore)
		}
		if ranked[0].Entity == tgt.Orig[tv] || ranked[0].Score == 1 {
			topHits++
		}
	}
	if checked == 0 {
		t.Fatal("no targets had candidates")
	}
	if topHits != checked {
		t.Fatalf("top of ranking missed a perfect score: %d/%d", topHits, checked)
	}
}

func TestDeanonymizeRankedConsistentWithBoolean(t *testing.T) {
	cfg := tqq.DefaultConfig(1200, 52)
	cfg.Communities = []tqq.CommunitySpec{{Size: 150, Density: 0.01}}
	d, err := tqq.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := tqq.CommunityTarget(d, 0, randx.New(18))
	if err != nil {
		t.Fatal(err)
	}
	a := newTQQAttack(t, d.Graph, Config{MaxDistance: 2})
	for tv := 0; tv < 40; tv++ {
		exact := a.Deanonymize(tgt.Graph, hin.EntityID(tv))
		isExact := make(map[hin.EntityID]bool, len(exact))
		for _, v := range exact {
			isExact[v] = true
		}
		for _, rc := range a.DeanonymizeRanked(tgt.Graph, hin.EntityID(tv)) {
			if isExact[rc.Entity] && rc.Score != 1 {
				t.Fatalf("boolean-accepted candidate %d scored %g", rc.Entity, rc.Score)
			}
		}
	}
}

func TestDeanonymizeRankedDistanceZero(t *testing.T) {
	aux := buildAux(t)
	target := buildTarget(t)
	a := newTQQAttack(t, aux, Config{MaxDistance: 0})
	ranked := a.DeanonymizeRanked(target, 0)
	if len(ranked) != 2 {
		t.Fatalf("ranked = %v", ranked)
	}
	for _, rc := range ranked {
		if rc.Score != 1 {
			t.Fatalf("distance-0 scores must be 1: %v", rc)
		}
	}
}
