package dehin

import (
	"math"
	"testing"

	"github.com/hinpriv/dehin/internal/hin"
	"github.com/hinpriv/dehin/internal/tqq"
)

// FuzzProfileSpecValidate feeds arbitrary attribute-index lists through
// validateProfileSpec against the t.qq target schema. The invariant is
// twofold: validation never panics (NewAttack promises a clean error for
// any misconfigured spec, however hostile), and it agrees with the
// independent oracle below - a spec passes iff every scalar index fits
// inside every entity type of the schema.
func FuzzProfileSpecValidate(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 1, 1, 2, 2})       // the TQQProfile shape: exact 0, grow 1, set "x"
	f.Add([]byte{0, 0xFF, 1, 0x80})       // far out of range, both roles
	f.Add([]byte{0xFF, 0xFF, 0x80, 0x00}) // negative indexes
	f.Add([]byte{2, 'x', 0, 3, 1, 200, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		s := tqq.TargetSchema()
		var spec ProfileSpec
		for i := 0; i+1 < len(data); i += 2 {
			// Both bytes feed the value so negative and far-out-of-range
			// indexes are reachable, not just 0..255.
			v := int(int16(uint16(data[i])<<8 | uint16(data[i+1])))
			switch data[i] % 3 {
			case 0:
				spec.ExactAttrs = append(spec.ExactAttrs, v)
			case 1:
				spec.GrowAttrs = append(spec.GrowAttrs, v)
			case 2:
				spec.SubsetSets = append(spec.SubsetSets, string(data[i+1:i+2]))
			}
		}

		err := validateProfileSpec(s, spec)

		// Oracle: an index is acceptable iff it is in range for EVERY
		// entity type, i.e. below the smallest attribute count.
		minAttrs := math.MaxInt
		for ti := 0; ti < s.NumEntityTypes(); ti++ {
			if n := len(s.EntityType(hin.EntityTypeID(ti)).Attrs); n < minAttrs {
				minAttrs = n
			}
		}
		valid := true
		for _, ai := range spec.ExactAttrs {
			valid = valid && ai >= 0 && ai < minAttrs
		}
		for _, ai := range spec.GrowAttrs {
			valid = valid && ai >= 0 && ai < minAttrs
		}

		if valid && err != nil {
			t.Fatalf("in-range spec rejected: %v (spec %+v)", err, spec)
		}
		if !valid && err == nil {
			t.Fatalf("out-of-range spec accepted (spec %+v)", spec)
		}
	})
}
