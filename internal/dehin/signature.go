package dehin

import (
	"runtime"
	"sync"

	"github.com/hinpriv/dehin/internal/hin"
)

// degSignature is the auxiliary graph's per-entity, per-link-type degree
// vector, interleaved as out[av*L+k] = out-degree of entity av via
// lts[k] (and likewise in when in-neighborhoods are matched). It lets the
// query engine reject a profile candidate with one flat scan before any
// neighbor enumeration or bipartite matching runs.
//
// Soundness: Algorithm 2 accepts a candidate only if, for every utilized
// link type and direction, a matching assigns `need` target neighbors to
// DISTINCT auxiliary neighbors, where need is the per-type quota after
// NeighborTolerance. Such a matching requires at least `need` auxiliary
// neighbors to exist, whatever the entity and link matchers decide about
// individual pairs - so rejecting when aux degree < need can never drop a
// candidate directionMatch would have kept (it is the same bound
// directionMatch enforces via len(ans), hoisted in front of the whole
// recursion). Under the growth threat model this is exactly the
// degree-monotonicity that degree-sequence attacks exploit: auxiliary
// neighborhoods only gain edges after the target snapshot. NewAttack still
// disables the filter when RemoveMajorityStrength or a custom LinkMatch/
// EntityMatch is configured - those reshape what "compatible neighbor"
// means, and a conservative gate keeps the pruned engine byte-identical
// to the reference semantics without asking exotic matchers to certify
// the bound.
type degSignature struct {
	lts []hin.LinkTypeID
	out []int32
	in  []int32 // nil unless in-edges are matched
}

// buildDegSignature precomputes the signature, parallelized across
// GOMAXPROCS over disjoint entity ranges (each worker writes its own
// slice segment; no synchronization beyond the WaitGroup).
func buildDegSignature(aux hin.GraphBackend, lts []hin.LinkTypeID, useIn bool) *degSignature {
	n := aux.NumEntities()
	L := len(lts)
	sig := &degSignature{lts: lts, out: make([]int32, n*L)}
	if useIn {
		sig.in = make([]int32, n*L)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, n)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for v := lo; v < hi; v++ {
				for k, lt := range lts {
					sig.out[v*L+k] = int32(aux.OutDegree(lt, hin.EntityID(v)))
					if sig.in != nil {
						sig.in[v*L+k] = int32(aux.InDegree(lt, hin.EntityID(v)))
					}
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	return sig
}

// admits reports whether candidate av's degree vector can satisfy the
// target's per-type quotas (see Attack.computeNeeds). needs holds the out
// quotas in [0,L) and, when in-edges are matched, the in quotas in [L,2L).
//
//hin:hot
func (d *degSignature) admits(needs []int32, av hin.EntityID) bool {
	L := len(d.lts)
	base := int(av) * L
	for k := 0; k < L; k++ {
		if d.out[base+k] < needs[k] {
			return false
		}
	}
	if d.in != nil {
		for k := 0; k < L; k++ {
			if d.in[base+k] < needs[L+k] {
				return false
			}
		}
	}
	return true
}

// computeNeeds fills s.needs with the target entity's per-type matching
// quotas (out first, then in when matched), mirroring directionMatch's
// tolerance arithmetic; quotas clamp at zero because a non-positive need
// constrains nothing.
//
//hin:hot
func (a *Attack) computeNeeds(s *queryScratch, target hin.GraphBackend, tv hin.EntityID) {
	L := len(a.cfg.LinkTypes)
	sz := L
	if a.cfg.UseInEdges {
		sz = 2 * L
	}
	if cap(s.needs) < sz {
		s.needs = make([]int32, sz)
	} else {
		s.needs = s.needs[:sz]
	}
	for k, lt := range a.cfg.LinkTypes {
		s.needs[k] = int32(max(0, a.quota(target.OutDegree(lt, tv))))
		if a.cfg.UseInEdges {
			s.needs[L+k] = int32(max(0, a.quota(target.InDegree(lt, tv))))
		}
	}
}
