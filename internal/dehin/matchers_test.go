package dehin

import (
	"testing"

	"github.com/hinpriv/dehin/internal/hin"
	"github.com/hinpriv/dehin/internal/tqq"
)

// TestMatcherSpecializationsAgree pins the hand-specialized matcher bodies
// to the generic interface fallback: growthMatchMem, growthMatchCSR, and
// the mixed-backend path inside GrowthMatcher must return the same verdict
// for every pair. The specializations exist purely for devirtualization,
// so any divergence is a bug in one of the mirrored bodies.
func TestMatcherSpecializationsAgree(t *testing.T) {
	cfg := tqq.DefaultConfig(600, 41)
	d, err := tqq.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mem := d.Graph
	csr := hin.FromGraph(mem)
	ps := TQQProfile()
	ps.SubsetSets = []string{tqq.TagsAttr} // exercise the shared set tail too
	em := ps.GrowthMatcher()
	n := mem.NumEntities()
	pairs := 0
	agreed := 0
	for tv := 0; tv < n; tv += 7 {
		for av := 0; av < n; av += 11 {
			t0, a0 := hin.EntityID(tv), hin.EntityID(av)
			want := em(mem, csr, t0, a0) // mixed backends: generic fallback
			gotMem := em(mem, mem, t0, a0)
			gotCSR := em(csr, csr, t0, a0)
			if gotMem != want || gotCSR != want {
				t.Fatalf("pair (%d,%d): fallback=%v mem=%v csr=%v", tv, av, want, gotMem, gotCSR)
			}
			pairs++
			if want {
				agreed++
			}
		}
	}
	if pairs == 0 || agreed == 0 || agreed == pairs {
		t.Fatalf("degenerate coverage: %d/%d pairs matched", agreed, pairs)
	}
}
