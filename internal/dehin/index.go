package dehin

import (
	"fmt"
	"sort"

	"github.com/hinpriv/dehin/internal/hin"
)

// profileIndex buckets auxiliary entities by their exact-match attribute
// tuple and sorts each bucket descending by the primary growable attribute,
// so a candidate lookup scans only entities that can still satisfy
// "auxiliary >= target" on that attribute. With the t.qq profile this is a
// (yob, gender) index ordered by tweet count - it turns Algorithm 1's scan
// over millions of auxiliary users into a few hundred comparisons.
type profileIndex struct {
	aux     *hin.Graph
	spec    ProfileSpec
	buckets map[string][]hin.EntityID // each sorted desc by primary grow attr
	primary int                       // attr index used for ordering, -1 if none
}

func buildProfileIndex(aux *hin.Graph, spec ProfileSpec) (*profileIndex, error) {
	idx := &profileIndex{
		aux:     aux,
		spec:    spec,
		buckets: make(map[string][]hin.EntityID),
		primary: -1,
	}
	if len(spec.GrowAttrs) > 0 {
		idx.primary = spec.GrowAttrs[0]
	}
	for v := 0; v < aux.NumEntities(); v++ {
		key, err := profileKey(aux, hin.EntityID(v), spec.ExactAttrs)
		if err != nil {
			return nil, err
		}
		idx.buckets[key] = append(idx.buckets[key], hin.EntityID(v))
	}
	if idx.primary >= 0 {
		for _, b := range idx.buckets {
			sort.Slice(b, func(i, j int) bool {
				return aux.Attr(b[i], idx.primary) > aux.Attr(b[j], idx.primary)
			})
		}
	}
	return idx, nil
}

// profileKey encodes the exact-match attribute tuple of v. An empty
// ExactAttrs list maps every entity to one bucket.
func profileKey(g *hin.Graph, v hin.EntityID, exact []int) (string, error) {
	var b []byte
	for _, ai := range exact {
		if ai < 0 || ai >= g.NumAttrs(v) {
			return "", fmt.Errorf("dehin: profile attr %d out of range for entity %d", ai, v)
		}
		x := g.Attr(v, ai)
		for i := 0; i < 8; i++ {
			b = append(b, byte(x))
			x >>= 8
		}
	}
	return string(b), nil
}

// lookup returns the auxiliary entities whose exact attributes equal the
// target's and whose primary growable attribute is >= the target's. The
// caller still applies the full entity matcher to each.
func (idx *profileIndex) lookup(target *hin.Graph, tv hin.EntityID) []hin.EntityID {
	key, err := profileKey(target, tv, idx.spec.ExactAttrs)
	if err != nil {
		return nil
	}
	bucket := idx.buckets[key]
	if idx.primary < 0 {
		return bucket
	}
	want := target.Attr(tv, idx.primary)
	// Bucket is sorted descending; entries [0, i) have attr >= want.
	i := sort.Search(len(bucket), func(i int) bool {
		return idx.aux.Attr(bucket[i], idx.primary) < want
	})
	return bucket[:i]
}
