package dehin

import (
	"fmt"
	"math"
	"sort"

	"github.com/hinpriv/dehin/internal/hin"
	"github.com/hinpriv/dehin/internal/par"
)

// profileIndex buckets auxiliary entities by their exact-match attribute
// tuple and sorts each bucket descending by the primary growable attribute,
// so a candidate lookup scans only entities that can still satisfy
// "auxiliary >= target" on that attribute. With the t.qq profile this is a
// (yob, gender) index ordered by tweet count - it turns Algorithm 1's scan
// over millions of auxiliary users into a few hundred comparisons.
//
// With at most two exact attributes whose values all fit in int32 (the
// t.qq case: yob and gender), the bucket key is the two values packed into
// one uint64, so a lookup is a single integer map probe with no per-call
// string allocation. Wider or overflowing tuples fall back to the byte-
// string encoding.
type profileIndex struct {
	aux     hin.GraphBackend
	spec    ProfileSpec
	primary int // attr index used for ordering, -1 if none

	packed   bool
	bucketsP map[uint64][]hin.EntityID // packed-key buckets (packed == true)
	buckets  map[string][]hin.EntityID // string-key buckets (packed == false)
}

// indexShardRows is how many auxiliary entities one index-build task
// buckets; boundaries depend only on the entity count, never the worker
// count.
const indexShardRows = 1 << 14

func buildProfileIndex(aux hin.GraphBackend, spec ProfileSpec, workers int) (*profileIndex, error) {
	return buildProfileIndexOpt(aux, spec, false, workers)
}

// buildProfileIndexOpt exists so tests and benchmarks can force the
// string-key fallback on a spec the packed path would normally take.
//
// workers sizes the build pool (0 = GOMAXPROCS). The index is identical
// at any count: each shard buckets a fixed entity range into a private
// map (recording keys in first-occurrence order, so no merge step ranges
// over a map), and shards merge in shard order - every bucket lists its
// entities ascending, exactly as the serial scan appended them, which
// also makes the subsequent unstable per-bucket sort deterministic.
func buildProfileIndexOpt(aux hin.GraphBackend, spec ProfileSpec, forceString bool, workers int) (*profileIndex, error) {
	if err := validateProfileSpec(aux.Schema(), spec); err != nil {
		return nil, err
	}
	idx := &profileIndex{
		aux:     aux,
		spec:    spec,
		primary: -1,
	}
	if len(spec.GrowAttrs) > 0 {
		idx.primary = spec.GrowAttrs[0]
	}
	n := aux.NumEntities()
	shards := par.Shards(n, indexShardRows)
	var keysP []uint64
	var keysS []string
	if !forceString && len(spec.ExactAttrs) <= 2 {
		type packedShard struct {
			keys     []uint64
			m        map[uint64][]hin.EntityID
			overflow bool
		}
		ps := make([]packedShard, shards)
		par.Run(workers, shards, func(_, s int) {
			lo, hi := par.Bounds(s, n, indexShardRows)
			m := make(map[uint64][]hin.EntityID)
			var keys []uint64
			for v := lo; v < hi; v++ {
				key, ok := packedProfileKey(aux, hin.EntityID(v), spec.ExactAttrs)
				if !ok { // an attribute value outside int32: fall back wholesale
					ps[s].overflow = true
					return
				}
				b, seen := m[key]
				if !seen {
					keys = append(keys, key)
				}
				m[key] = append(b, hin.EntityID(v))
			}
			ps[s].keys, ps[s].m = keys, m
		})
		idx.packed = true
		for s := range ps {
			if ps[s].overflow {
				idx.packed = false
				break
			}
		}
		if idx.packed {
			idx.bucketsP = make(map[uint64][]hin.EntityID)
			for s := range ps {
				for _, k := range ps[s].keys {
					b, seen := idx.bucketsP[k]
					if !seen {
						keysP = append(keysP, k)
					}
					idx.bucketsP[k] = append(b, ps[s].m[k]...)
				}
			}
		}
	}
	if !idx.packed {
		type stringShard struct {
			keys []string
			m    map[string][]hin.EntityID
			err  error
		}
		ss := make([]stringShard, shards)
		var fe par.FirstErr
		par.Run(workers, shards, func(_, s int) {
			lo, hi := par.Bounds(s, n, indexShardRows)
			m := make(map[string][]hin.EntityID)
			var keys []string
			for v := lo; v < hi; v++ {
				key, err := profileKey(aux, hin.EntityID(v), spec.ExactAttrs)
				if err != nil {
					fe.Set(s, err)
					return
				}
				b, seen := m[key]
				if !seen {
					keys = append(keys, key)
				}
				m[key] = append(b, hin.EntityID(v))
			}
			ss[s].keys, ss[s].m = keys, m
		})
		if err := fe.Err(); err != nil {
			return nil, err
		}
		idx.buckets = make(map[string][]hin.EntityID)
		for s := range ss {
			for _, k := range ss[s].keys {
				b, seen := idx.buckets[k]
				if !seen {
					keysS = append(keysS, k)
				}
				idx.buckets[k] = append(b, ss[s].m[k]...)
			}
		}
	}
	if idx.primary >= 0 {
		sortBucket := func(b []hin.EntityID) {
			sort.Slice(b, func(i, j int) bool {
				return aux.Attr(b[i], idx.primary) > aux.Attr(b[j], idx.primary)
			})
		}
		if idx.packed {
			par.Run(workers, len(keysP), func(_, i int) {
				sortBucket(idx.bucketsP[keysP[i]])
			})
		} else {
			par.Run(workers, len(keysS), func(_, i int) {
				sortBucket(idx.buckets[keysS[i]])
			})
		}
	}
	return idx, nil
}

// validateProfileSpec checks every scalar attribute index the spec names
// against every entity type of the schema, so misconfigured indexes fail
// at NewAttack/NewIndex time instead of producing silently empty candidate
// sets (or out-of-range attribute reads) per query.
func validateProfileSpec(s *hin.Schema, spec ProfileSpec) error {
	check := func(role string, attrs []int) error {
		for _, ai := range attrs {
			for t := 0; t < s.NumEntityTypes(); t++ {
				et := s.EntityType(hin.EntityTypeID(t))
				if ai < 0 || ai >= len(et.Attrs) {
					return fmt.Errorf("dehin: profile %s attr %d out of range for entity type %q (%d attrs)",
						role, ai, et.Name, len(et.Attrs))
				}
			}
		}
		return nil
	}
	if err := check("exact", spec.ExactAttrs); err != nil {
		return err
	}
	return check("grow", spec.GrowAttrs)
}

// packedProfileKey encodes up to two exact-match attribute values of v in
// one uint64 (each truncation-checked into 32 bits). The second result is
// false when a value does not fit - the caller falls back to string keys
// (index build) or reports no bucket (lookup: if every auxiliary value
// fits and the target's does not, no auxiliary entity can equal it).
func packedProfileKey(g hin.GraphBackend, v hin.EntityID, exact []int) (uint64, bool) {
	var key uint64
	for _, ai := range exact {
		x := g.Attr(v, ai)
		if x < math.MinInt32 || x > math.MaxInt32 {
			return 0, false
		}
		key = key<<32 | uint64(uint32(int32(x)))
	}
	return key, true
}

// profileKey encodes the exact-match attribute tuple of v as a byte
// string. An empty ExactAttrs list maps every entity to one bucket.
func profileKey(g hin.GraphBackend, v hin.EntityID, exact []int) (string, error) {
	var b []byte
	for _, ai := range exact {
		if ai < 0 || ai >= g.NumAttrs(v) {
			return "", fmt.Errorf("dehin: profile attr %d out of range for entity %d", ai, v)
		}
		x := g.Attr(v, ai)
		for i := 0; i < 8; i++ {
			b = append(b, byte(x))
			x >>= 8
		}
	}
	return string(b), nil
}

// lookup returns the auxiliary entities whose exact attributes equal the
// target's and whose primary growable attribute is >= the target's. The
// caller still applies the full entity matcher to each.
func (idx *profileIndex) lookup(target hin.GraphBackend, tv hin.EntityID) []hin.EntityID {
	var bucket []hin.EntityID
	if idx.packed {
		key, ok := packedProfileKey(target, tv, idx.spec.ExactAttrs)
		if !ok {
			// Every auxiliary value fit in 32 bits (or the index would have
			// fallen back to strings), so an overflowing target value
			// matches no auxiliary entity.
			return nil
		}
		bucket = idx.bucketsP[key]
	} else {
		key, err := profileKey(target, tv, idx.spec.ExactAttrs)
		if err != nil {
			// Unreachable for targets conforming to the schema the spec was
			// validated against at build time.
			return nil
		}
		bucket = idx.buckets[key]
	}
	if idx.primary < 0 {
		return bucket
	}
	want := target.Attr(tv, idx.primary)
	// Bucket is sorted descending; entries [0, i) have attr >= want.
	i := sort.Search(len(bucket), func(i int) bool {
		return idx.aux.Attr(bucket[i], idx.primary) < want
	})
	return bucket[:i]
}
