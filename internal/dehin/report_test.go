package dehin

import (
	"math"
	"strings"
	"testing"
)

func sampleResult() Result {
	return Result{
		Precision:     0.5,
		ReductionRate: 0.999,
		PerTarget: []TargetOutcome{
			{Candidates: 1, Unique: true, Correct: true},
			{Candidates: 1, Unique: true, Correct: false},
			{Candidates: 4},
			{Candidates: 0},
			{Candidates: 50},
			{Candidates: 200},
		},
	}
}

func TestNewReport(t *testing.T) {
	r := NewReport(sampleResult())
	if r.Targets != 6 {
		t.Fatalf("targets = %d", r.Targets)
	}
	if r.UniqueCorrect != 1 || r.UniqueWrong != 1 || r.Ambiguous != 3 || r.Eliminated != 1 {
		t.Fatalf("outcomes = %+v", r)
	}
	if r.Histogram != [5]int{1, 2, 1, 1, 1} {
		t.Fatalf("histogram = %v", r.Histogram)
	}
	wantMean := (1.0 + 1 + 4 + 0 + 50 + 200) / 6
	if math.Abs(r.MeanCandidates-wantMean) > 1e-9 {
		t.Fatalf("mean = %g, want %g", r.MeanCandidates, wantMean)
	}
	if r.MedianCandidates != 4 {
		t.Fatalf("median = %d", r.MedianCandidates)
	}
	wantGuess := (1.0 + 1 + 0.25 + 0.02 + 0.005) / 6
	if math.Abs(r.MeanGuessProb-wantGuess) > 1e-9 {
		t.Fatalf("guess prob = %g, want %g", r.MeanGuessProb, wantGuess)
	}
}

func TestReportString(t *testing.T) {
	out := NewReport(sampleResult()).String()
	for _, want := range []string{"targets: 6", "precision: 50.0%", "1 unique-correct", "histogram"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestEffectiveAnonymity(t *testing.T) {
	r := NewReport(sampleResult())
	want := int(1 / r.MeanGuessProb)
	if got := r.EffectiveAnonymity(); got != want {
		t.Fatalf("effective anonymity = %d, want %d", got, want)
	}
	empty := NewReport(Result{PerTarget: []TargetOutcome{{Candidates: 0}}})
	if empty.EffectiveAnonymity() != math.MaxInt {
		t.Fatal("all-eliminated should report MaxInt anonymity")
	}
}

func TestReportEmpty(t *testing.T) {
	r := NewReport(Result{})
	if r.Targets != 0 || r.MeanCandidates != 0 {
		t.Fatalf("empty report: %+v", r)
	}
}
