package dehin_test

import (
	"fmt"

	"github.com/hinpriv/dehin/internal/anonymize"
	"github.com/hinpriv/dehin/internal/dehin"
	"github.com/hinpriv/dehin/internal/hin"
	"github.com/hinpriv/dehin/internal/randx"
	"github.com/hinpriv/dehin/internal/tqq"
)

// Example runs the full pipeline on a small synthetic network: generate,
// sample a dense community, anonymize it KDD-Cup-style, and de-anonymize
// it with DeHIN at distance 2.
func Example() {
	cfg := tqq.DefaultConfig(3000, 7)
	cfg.Communities = []tqq.CommunitySpec{{Size: 300, Density: 0.01}}
	world, err := tqq.Generate(cfg)
	if err != nil {
		panic(err)
	}
	target, err := tqq.CommunityTarget(world, 0, randx.New(1))
	if err != nil {
		panic(err)
	}
	release, err := anonymize.RandomizeIDs(target.Graph, 2)
	if err != nil {
		panic(err)
	}
	truth := make([]hin.EntityID, len(release.ToOrig))
	for i, t0 := range release.ToOrig {
		truth[i] = target.Orig[t0]
	}
	attack, err := dehin.NewAttack(world.Graph, dehin.Config{
		MaxDistance: 2,
		Profile:     dehin.TQQProfile(),
		UseIndex:    true,
	})
	if err != nil {
		panic(err)
	}
	res, err := attack.Run(release.Graph, truth)
	if err != nil {
		panic(err)
	}
	fmt.Printf("most users de-anonymized: %v\n", res.Precision > 0.8)
	fmt.Printf("reduction rate above 99%%: %v\n", res.ReductionRate > 0.99)
	// Output:
	// most users de-anonymized: true
	// reduction rate above 99%: true
}
