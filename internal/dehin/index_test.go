package dehin

import (
	"runtime"
	"slices"
	"testing"

	"github.com/hinpriv/dehin/internal/hin"
	"github.com/hinpriv/dehin/internal/randx"
	"github.com/hinpriv/dehin/internal/tqq"
)

func buildIndexFixture(tb testing.TB, users int) (*tqq.Dataset, *tqq.Target) {
	tb.Helper()
	cfg := tqq.DefaultConfig(users, 51)
	cfg.Communities = []tqq.CommunitySpec{{Size: max(40, users/20), Density: 0.01}}
	d, err := tqq.Generate(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	tgt, err := tqq.CommunityTarget(d, 0, randx.New(13))
	if err != nil {
		tb.Fatal(err)
	}
	return d, tgt
}

// TestPackedAndStringIndexAgree verifies the packed-uint64 key path and the
// byte-string fallback produce identical buckets and lookups over the same
// graph and spec.
func TestPackedAndStringIndexAgree(t *testing.T) {
	d, tgt := buildIndexFixture(t, 600)
	spec := TQQProfile()
	packed, err := buildProfileIndexOpt(d.Graph, spec, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	str, err := buildProfileIndexOpt(d.Graph, spec, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !packed.packed {
		t.Fatal("two-attribute int32-range spec did not take the packed path")
	}
	if str.packed {
		t.Fatal("forceString index still packed")
	}
	n := tgt.Graph.NumEntities()
	for tv := 0; tv < n; tv++ {
		p := packed.lookup(tgt.Graph, hin.EntityID(tv))
		s := str.lookup(tgt.Graph, hin.EntityID(tv))
		if len(p) != len(s) {
			t.Fatalf("target %d: packed %d candidates, string %d", tv, len(p), len(s))
		}
		for i := range p {
			if p[i] != s[i] {
				t.Fatalf("target %d: packed[%d]=%d, string[%d]=%d", tv, i, p[i], i, s[i])
			}
		}
	}
}

// TestPackedIndexOverflowFallsBack pins the wholesale fallback: one
// auxiliary attribute value outside int32 must push the entire index onto
// string keys, with lookups still correct.
func TestPackedIndexOverflowFallsBack(t *testing.T) {
	s := tqq.TargetSchema()
	b := hin.NewBuilder(s)
	b.AddEntity(0, "huge", int64(1)<<40, 1, 100, 2)
	small := b.AddEntity(0, "small", 1980, 1, 100, 2)
	aux, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	idx, err := buildProfileIndex(aux, TQQProfile(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if idx.packed {
		t.Fatal("index stayed packed despite a 2^40 attribute value")
	}
	tb := hin.NewBuilder(s)
	tb.AddEntity(0, "t", 1980, 1, 50, 1)
	target, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	got := idx.lookup(target, 0)
	if len(got) != 1 || got[0] != small {
		t.Fatalf("fallback lookup = %v, want [%d]", got, small)
	}
}

// TestPackedIndexOverflowingTargetValue pins the other direction: the
// auxiliary graph packs fine, a target value overflows int32 - the packed
// key computation fails and the lookup must report no candidates (correct,
// since no in-range auxiliary value can equal it).
func TestPackedIndexOverflowingTargetValue(t *testing.T) {
	aux := buildAux(t)
	idx, err := buildProfileIndex(aux, TQQProfile(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !idx.packed {
		t.Fatal("fixture index unexpectedly unpacked")
	}
	tb := hin.NewBuilder(tqq.TargetSchema())
	tb.AddEntity(0, "t", int64(1)<<40, 1, 50, 1)
	target, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := idx.lookup(target, 0); got != nil {
		t.Fatalf("overflowing target value matched %v, want nil", got)
	}
}

// TestIndexBuildWorkerFingerprint pins the parallel build contract: at
// every worker count the index is identical - same buckets, same entity
// order within each bucket - on both the packed and string key paths.
// The fixture spans several build shards so the merge really runs.
func TestIndexBuildWorkerFingerprint(t *testing.T) {
	s := tqq.TargetSchema()
	rng := randx.New(77)
	b := hin.NewBuilder(s)
	n := 2*indexShardRows + 123
	for i := 0; i < n; i++ {
		b.AddEntity(0, "", int64(1900+rng.Intn(80)), int64(rng.Intn(2)), int64(rng.Intn(5000)), int64(rng.Intn(4)))
	}
	aux, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, forceString := range []bool{false, true} {
		ref, err := buildProfileIndexOpt(aux, TQQProfile(), forceString, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, runtime.NumCPU(), 0} {
			got, err := buildProfileIndexOpt(aux, TQQProfile(), forceString, workers)
			if err != nil {
				t.Fatalf("forceString=%v workers=%d: %v", forceString, workers, err)
			}
			if got.packed != ref.packed {
				t.Fatalf("forceString=%v workers=%d: packed=%v, want %v", forceString, workers, got.packed, ref.packed)
			}
			if len(got.bucketsP) != len(ref.bucketsP) || len(got.buckets) != len(ref.buckets) {
				t.Fatalf("forceString=%v workers=%d: bucket count mismatch", forceString, workers)
			}
			for k, rb := range ref.bucketsP {
				if !slices.Equal(got.bucketsP[k], rb) {
					t.Fatalf("forceString=%v workers=%d: packed bucket %x differs", forceString, workers, k)
				}
			}
			for k, rb := range ref.buckets {
				if !slices.Equal(got.buckets[k], rb) {
					t.Fatalf("forceString=%v workers=%d: string bucket %q differs", forceString, workers, k)
				}
			}
		}
	}
}

func benchmarkLookup(b *testing.B, forceString bool) {
	d, tgt := buildIndexFixture(b, 5000)
	idx, err := buildProfileIndexOpt(d.Graph, TQQProfile(), forceString, 1)
	if err != nil {
		b.Fatal(err)
	}
	n := tgt.Graph.NumEntities()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.lookup(tgt.Graph, hin.EntityID(i%n))
	}
}

func BenchmarkProfileLookupPacked(b *testing.B) { benchmarkLookup(b, false) }
func BenchmarkProfileLookupString(b *testing.B) { benchmarkLookup(b, true) }
