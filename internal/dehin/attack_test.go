package dehin

import (
	"testing"

	"github.com/hinpriv/dehin/internal/anonymize"
	"github.com/hinpriv/dehin/internal/hin"
	"github.com/hinpriv/dehin/internal/randx"
	"github.com/hinpriv/dehin/internal/tqq"
)

// buildAux constructs a small hand-checked auxiliary network:
//
//	id  yob   gender tweets tags
//	0   1980  1      100    {1,2}   "Ada"
//	1   1980  1      100    {1}     "Bob"   (profile twin of Ada except tags)
//	2   1985  2      50     {}      "Cyn"
//	3   1970  1      80     {3}     "Dan"
//	4   1980  1      200    {1,2,9} "Eve"   (grown twin of Ada)
//
// Links: Ada -mention(5)-> Cyn, Ada -follow-> Dan,
//
//	Eve -mention(7)-> Cyn, Eve -follow-> Dan, Eve -follow-> Bob,
//	Bob -mention(5)-> Dan.
func buildAux(t testing.TB) *hin.Graph {
	t.Helper()
	s := tqq.TargetSchema()
	b := hin.NewBuilder(s)
	add := func(label string, yob, gender, tweets int64, tags []int32) hin.EntityID {
		id := b.AddEntity(0, label, yob, gender, tweets, int64(len(tags)))
		if len(tags) > 0 {
			b.SetSet(tqq.TagsAttr, id, tags)
		}
		return id
	}
	ada := add("Ada", 1980, 1, 100, []int32{1, 2})
	bob := add("Bob", 1980, 1, 100, []int32{1})
	cyn := add("Cyn", 1985, 2, 50, nil)
	dan := add("Dan", 1970, 1, 80, []int32{3})
	eve := add("Eve", 1980, 1, 200, []int32{1, 2, 9})
	mention := s.MustLinkTypeID(tqq.LinkMention)
	follow := s.MustLinkTypeID(tqq.LinkFollow)
	for _, e := range []struct {
		lt       hin.LinkTypeID
		from, to hin.EntityID
		w        int32
	}{
		{mention, ada, cyn, 5},
		{follow, ada, dan, 1},
		{mention, eve, cyn, 7},
		{follow, eve, dan, 1},
		{follow, eve, bob, 1},
		{mention, bob, dan, 5},
	} {
		if err := b.AddEdge(e.lt, e.from, e.to, e.w); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// buildTarget builds the anonymized target: Ada (A3H) with her links into
// anonymized Cyn (F8P) and Dan.
func buildTarget(t testing.TB) *hin.Graph {
	t.Helper()
	s := tqq.TargetSchema()
	b := hin.NewBuilder(s)
	a3h := b.AddEntity(0, "A3H", 1980, 1, 100, 2)
	b.SetSet(tqq.TagsAttr, a3h, []int32{1, 2})
	f8p := b.AddEntity(0, "F8P", 1985, 2, 50, 0)
	m7r := b.AddEntity(0, "M7R", 1970, 1, 80, 1)
	b.SetSet(tqq.TagsAttr, m7r, []int32{3})
	if err := b.AddEdge(s.MustLinkTypeID(tqq.LinkMention), a3h, f8p, 5); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(s.MustLinkTypeID(tqq.LinkFollow), a3h, m7r, 1); err != nil {
		t.Fatal(err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func newTQQAttack(t testing.TB, aux *hin.Graph, cfg Config) *Attack {
	t.Helper()
	cfg.Profile = TQQProfile()
	cfg.UseIndex = true
	a, err := NewAttack(aux, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestMotivatingExample(t *testing.T) {
	// Section 1.1: A3H's profile plus mention/follow neighborhood single
	// out Ada even though Bob shares her (yob, gender, tweets) and Eve is
	// a grown superset-profile twin.
	aux := buildAux(t)
	target := buildTarget(t)
	a := newTQQAttack(t, aux, Config{MaxDistance: 1})

	got := a.Deanonymize(target, 0)
	// Profile stage keeps Ada (exact) and Eve (grown: tweets 200>=100,
	// tags superset); Bob lacks tag 2. Link stage keeps both: Eve
	// mentions Cyn with strength 7>=5 and follows Dan. Both are
	// legitimate under growth semantics.
	if len(got) != 2 || got[0] != 0 || got[1] != 4 {
		t.Fatalf("distance-1 candidates = %v, want [Ada Eve]", got)
	}

	// With exact matchers (time-synchronized datasets), only Ada remains:
	// unique matching established.
	exact := Config{
		MaxDistance: 1,
		Profile:     TQQProfile(),
		EntityMatch: TQQProfile().ExactMatcher(),
		LinkMatch:   ExactLinkMatcher,
		UseIndex:    true,
	}
	ae, err := NewAttack(aux, exact)
	if err != nil {
		t.Fatal(err)
	}
	got = ae.Deanonymize(target, 0)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("exact candidates = %v, want [Ada]", got)
	}
}

func TestDistanceZeroIsProfileOnly(t *testing.T) {
	aux := buildAux(t)
	target := buildTarget(t)
	a := newTQQAttack(t, aux, Config{MaxDistance: 0})
	got := a.Deanonymize(target, 0)
	if len(got) != 2 {
		t.Fatalf("profile-only candidates = %v, want Ada and Eve", got)
	}
}

func TestNeighborProfileDisambiguates(t *testing.T) {
	// F8P (the mentionee) has a specific profile; if the target instead
	// mentioned someone like Dan, Ada would no longer match.
	aux := buildAux(t)
	s := tqq.TargetSchema()
	b := hin.NewBuilder(s)
	v := b.AddEntity(0, "X", 1980, 1, 100, 2)
	b.SetSet(tqq.TagsAttr, v, []int32{1, 2})
	nb := b.AddEntity(0, "Y", 1999, 0, 1, 0) // profile matching nobody in aux
	if err := b.AddEdge(s.MustLinkTypeID(tqq.LinkMention), v, nb, 5); err != nil {
		t.Fatal(err)
	}
	target, _ := b.Build()
	a := newTQQAttack(t, aux, Config{MaxDistance: 1})
	if got := a.Deanonymize(target, 0); len(got) != 0 {
		t.Fatalf("impossible neighborhood still matched: %v", got)
	}
}

func TestDistanceTwoUsesNeighborsOfNeighbors(t *testing.T) {
	// Two aux users share profiles and distance-1 neighborhoods but their
	// neighbors' neighborhoods differ; distance 2 separates them.
	s := tqq.TargetSchema()
	b := hin.NewBuilder(s)
	add := func(yob int64, tweets int64) hin.EntityID {
		return b.AddEntity(0, "", yob, 1, tweets, 0)
	}
	// aux: u0 -m(2)-> x0 -m(9)-> z (z yob 1950)
	//      u1 -m(2)-> x1 -m(9)-> w (w yob 1960)
	u0, u1 := add(1980, 10), add(1980, 10)
	x0, x1 := add(1990, 20), add(1990, 20)
	z, w := add(1950, 5), add(1960, 5)
	mention := s.MustLinkTypeID(tqq.LinkMention)
	for _, e := range []struct {
		f, to hin.EntityID
		w     int32
	}{{u0, x0, 2}, {u1, x1, 2}, {x0, z, 9}, {x1, w, 9}} {
		if err := b.AddEdge(mention, e.f, e.to, e.w); err != nil {
			t.Fatal(err)
		}
	}
	aux, _ := b.Build()

	// Target: u0's two-hop chain, anonymized.
	tb := hin.NewBuilder(s)
	tu := tb.AddEntity(0, "", 1980, 1, 10, 0)
	tx := tb.AddEntity(0, "", 1990, 1, 20, 0)
	tz := tb.AddEntity(0, "", 1950, 1, 5, 0)
	if err := tb.AddEdge(mention, tu, tx, 2); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddEdge(mention, tx, tz, 9); err != nil {
		t.Fatal(err)
	}
	target, _ := tb.Build()

	a1 := newTQQAttack(t, aux, Config{MaxDistance: 1})
	if got := a1.Deanonymize(target, 0); len(got) != 2 {
		t.Fatalf("distance 1 should be ambiguous: %v", got)
	}
	a2 := newTQQAttack(t, aux, Config{MaxDistance: 2})
	got := a2.Deanonymize(target, 0)
	if len(got) != 1 || got[0] != u0 {
		t.Fatalf("distance 2 candidates = %v, want [u0]", got)
	}
}

func TestBipartiteContention(t *testing.T) {
	// The target has two distinct neighbors with identical profiles and
	// strengths; a candidate with only ONE such neighbor must fail (it
	// cannot saturate both), a candidate with two must pass.
	s := tqq.TargetSchema()
	b := hin.NewBuilder(s)
	add := func(yob int64) hin.EntityID { return b.AddEntity(0, "", yob, 1, 10, 0) }
	good, bad := add(1980), add(1980)
	n1, n2, n3 := add(1990), add(1990), add(1990)
	mention := s.MustLinkTypeID(tqq.LinkMention)
	// good mentions two 1990-ers; bad mentions one (twice the strength
	// doesn't help).
	for _, e := range []struct {
		f, to hin.EntityID
		w     int32
	}{{good, n1, 3}, {good, n2, 3}, {bad, n3, 6}} {
		if err := b.AddEdge(mention, e.f, e.to, e.w); err != nil {
			t.Fatal(err)
		}
	}
	aux, _ := b.Build()

	tb := hin.NewBuilder(s)
	tu := tb.AddEntity(0, "", 1980, 1, 10, 0)
	ta := tb.AddEntity(0, "", 1990, 1, 10, 0)
	tb2 := tb.AddEntity(0, "", 1990, 1, 10, 0)
	if err := tb.AddEdge(mention, tu, ta, 3); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddEdge(mention, tu, tb2, 3); err != nil {
		t.Fatal(err)
	}
	target, _ := tb.Build()

	a := newTQQAttack(t, aux, Config{MaxDistance: 1})
	got := a.Deanonymize(target, 0)
	if len(got) != 1 || got[0] != good {
		t.Fatalf("candidates = %v, want [good]", got)
	}
}

func TestRunOnAnonymizedSample(t *testing.T) {
	// End-to-end: dense community sampled, KDDA-anonymized, attacked
	// against the full dataset. Precision at distance 1 must be high and
	// the true counterpart must always be among the candidates.
	cfg := tqq.DefaultConfig(3000, 41)
	cfg.Communities = []tqq.CommunitySpec{{Size: 300, Density: 0.01}}
	d, err := tqq.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := randx.New(8)
	tgt, err := tqq.CommunityTarget(d, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	anon, err := anonymize.RandomizeIDs(tgt.Graph, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Compose ground truth: anonymized i -> target ToOrig[i] -> dataset.
	truth := make([]hin.EntityID, len(anon.ToOrig))
	for i, t0 := range anon.ToOrig {
		truth[i] = tgt.Orig[t0]
	}
	a := newTQQAttack(t, d.Graph, Config{MaxDistance: 1})
	res, err := a.Run(anon.Graph, truth)
	if err != nil {
		t.Fatal(err)
	}
	if res.Precision < 0.7 {
		t.Fatalf("precision = %g, want >= 0.7 on a density-0.01 community", res.Precision)
	}
	if res.ReductionRate < 0.99 {
		t.Fatalf("reduction rate = %g", res.ReductionRate)
	}
	// Recall sanity: the truth is never eliminated.
	for tv := 0; tv < anon.Graph.NumEntities(); tv++ {
		c := a.Deanonymize(anon.Graph, hin.EntityID(tv))
		found := false
		for _, v := range c {
			if v == truth[tv] {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("true counterpart of target %d eliminated", tv)
		}
	}
}

func TestCandidatesShrinkWithDistance(t *testing.T) {
	cfg := tqq.DefaultConfig(1500, 14)
	cfg.Communities = []tqq.CommunitySpec{{Size: 200, Density: 0.01}}
	d, err := tqq.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := tqq.CommunityTarget(d, 0, randx.New(2))
	if err != nil {
		t.Fatal(err)
	}
	var prev []int
	for n := 0; n <= 3; n++ {
		a := newTQQAttack(t, d.Graph, Config{MaxDistance: n})
		sizes := make([]int, 50)
		for tv := 0; tv < 50; tv++ {
			sizes[tv] = len(a.Deanonymize(tgt.Graph, hin.EntityID(tv)))
		}
		if prev != nil {
			for tv := range sizes {
				if sizes[tv] > prev[tv] {
					t.Fatalf("distance %d grew candidate set for %d: %d -> %d",
						n, tv, prev[tv], sizes[tv])
				}
			}
		}
		prev = sizes
	}
}

func TestMoreLinkTypesNeverGrowCandidates(t *testing.T) {
	cfg := tqq.DefaultConfig(1500, 15)
	cfg.Communities = []tqq.CommunitySpec{{Size: 200, Density: 0.01}}
	d, err := tqq.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := tqq.CommunityTarget(d, 0, randx.New(3))
	if err != nil {
		t.Fatal(err)
	}
	subsets := [][]hin.LinkTypeID{{0}, {0, 1}, {0, 1, 2}, {0, 1, 2, 3}}
	var prev []int
	for _, lts := range subsets {
		a := newTQQAttack(t, d.Graph, Config{MaxDistance: 1, LinkTypes: lts})
		sizes := make([]int, 40)
		for tv := 0; tv < 40; tv++ {
			sizes[tv] = len(a.Deanonymize(tgt.Graph, hin.EntityID(tv)))
		}
		if prev != nil {
			for tv := range sizes {
				if sizes[tv] > prev[tv] {
					t.Fatalf("adding link types grew candidates for %d", tv)
				}
			}
		}
		prev = sizes
	}
}

func TestGrowthRecall(t *testing.T) {
	// Attack against a grown auxiliary network: candidates must still
	// contain the truth for every target (growth-tolerant matchers).
	cfg := tqq.DefaultConfig(1200, 77)
	cfg.Communities = []tqq.CommunitySpec{{Size: 150, Density: 0.01}}
	d, err := tqq.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gcfg := tqq.DefaultGrowth(5)
	gcfg.NewUsers = 200
	grown, err := tqq.Grow(d, cfg, gcfg)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := tqq.CommunityTarget(d, 0, randx.New(4))
	if err != nil {
		t.Fatal(err)
	}
	a := newTQQAttack(t, grown.Graph, Config{MaxDistance: 2})
	for tv := 0; tv < tgt.Graph.NumEntities(); tv++ {
		c := a.Deanonymize(tgt.Graph, hin.EntityID(tv))
		found := false
		for _, v := range c {
			if v == tgt.Orig[tv] {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("growth eliminated the true counterpart of %d", tv)
		}
	}
}

func TestRemoveMajorityStrengthEdges(t *testing.T) {
	s := tqq.TargetSchema()
	b := hin.NewBuilder(s)
	for i := 0; i < 4; i++ {
		b.AddEntity(0, "", 1980, 1, 10, 0)
	}
	mention := s.MustLinkTypeID(tqq.LinkMention)
	follow := s.MustLinkTypeID(tqq.LinkFollow)
	for _, e := range []struct {
		f, to hin.EntityID
		w     int32
	}{{0, 1, 7}, {0, 2, 7}, {1, 2, 3}, {2, 3, 7}} {
		if err := b.AddEdge(mention, e.f, e.to, e.w); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.AddEdge(follow, 0, 1, 1); err != nil {
		t.Fatal(err)
	}
	g, _ := b.Build()
	rg, err := RemoveMajorityStrengthEdges(g)
	if err != nil {
		t.Fatal(err)
	}
	// Majority mention strength 7 removed; the lone 3 survives.
	if rg.NumEdges(mention) != 1 {
		t.Fatalf("mention edges after removal = %d", rg.NumEdges(mention))
	}
	if _, ok := rg.FindEdge(mention, 1, 2); !ok {
		t.Fatal("non-majority edge removed")
	}
	// Unweighted follow: every edge carries the majority value 1.
	if rg.NumEdges(follow) != 0 {
		t.Fatalf("follow edges after removal = %d", rg.NumEdges(follow))
	}
}

func TestVWCGAFallsBackToProfileOnly(t *testing.T) {
	cfg := tqq.DefaultConfig(1200, 31)
	cfg.Communities = []tqq.CommunitySpec{{Size: 150, Density: 0.01}}
	d, err := tqq.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := tqq.CommunityTarget(d, 0, randx.New(6))
	if err != nil {
		t.Fatal(err)
	}
	vw, err := anonymize.CompleteGraph(tgt.Graph, anonymize.CGAOptions{
		VaryWeights: true, StrengthMax: cfg.StrengthMax, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Re-configured DeHIN with fallback: every target degrades to its
	// profile-only candidate set, so results equal the distance-0 attack.
	aFall := newTQQAttack(t, d.Graph, Config{
		MaxDistance:            2,
		RemoveMajorityStrength: true,
		FallbackProfileOnly:    true,
	})
	a0 := newTQQAttack(t, d.Graph, Config{MaxDistance: 0})
	resFall, err := aFall.Run(vw, tgt.Orig)
	if err != nil {
		t.Fatal(err)
	}
	res0, err := a0.Run(tgt.Graph, tgt.Orig)
	if err != nil {
		t.Fatal(err)
	}
	if resFall.Precision != res0.Precision {
		t.Fatalf("VW-CGA precision %g != distance-0 precision %g",
			resFall.Precision, res0.Precision)
	}
	// Without fallback the attack returns empty candidate sets.
	aStrict := newTQQAttack(t, d.Graph, Config{
		MaxDistance:            2,
		RemoveMajorityStrength: true,
	})
	resStrict, err := aStrict.Run(vw, tgt.Orig)
	if err != nil {
		t.Fatal(err)
	}
	if resStrict.Precision != 0 {
		t.Fatalf("strict attack on VW-CGA should fail entirely, got %g", resStrict.Precision)
	}
}

func TestCGARemovalRecoversAttack(t *testing.T) {
	// Section 6.2: against CGA, re-configured DeHIN still de-anonymizes,
	// with (at most) slight degradation versus attacking the bare sample.
	cfg := tqq.DefaultConfig(1500, 55)
	cfg.Communities = []tqq.CommunitySpec{{Size: 200, Density: 0.01}}
	d, err := tqq.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := tqq.CommunityTarget(d, 0, randx.New(7))
	if err != nil {
		t.Fatal(err)
	}
	cga, err := anonymize.CompleteGraph(tgt.Graph, anonymize.CGAOptions{
		StrengthMax: cfg.StrengthMax, Seed: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := newTQQAttack(t, d.Graph, Config{
		MaxDistance:            1,
		RemoveMajorityStrength: true,
		FallbackProfileOnly:    true,
	})
	res, err := a.Run(cga, tgt.Orig)
	if err != nil {
		t.Fatal(err)
	}
	if res.Precision < 0.4 {
		t.Fatalf("re-configured DeHIN vs CGA precision = %g, want substantial", res.Precision)
	}
}

func TestRunErrors(t *testing.T) {
	aux := buildAux(t)
	a := newTQQAttack(t, aux, Config{MaxDistance: 1})
	if _, err := a.Run(buildTarget(t), []hin.EntityID{0}); err == nil {
		t.Fatal("truth size mismatch accepted")
	}
}

func TestNewAttackErrors(t *testing.T) {
	aux := buildAux(t)
	if _, err := NewAttack(aux, Config{MaxDistance: -1}); err == nil {
		t.Fatal("negative distance accepted")
	}
	if _, err := NewAttack(aux, Config{LinkTypes: []hin.LinkTypeID{77}}); err == nil {
		t.Fatal("bad link type accepted")
	}
	if _, err := NewAttack(aux, Config{UseIndex: true, Profile: ProfileSpec{ExactAttrs: []int{99}}}); err == nil {
		t.Fatal("bad profile attr accepted")
	}
}

func TestNoIndexScanEquivalence(t *testing.T) {
	// Index and full scan agree on candidates.
	cfg := tqq.DefaultConfig(800, 23)
	cfg.Communities = []tqq.CommunitySpec{{Size: 100, Density: 0.01}}
	d, err := tqq.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := tqq.CommunityTarget(d, 0, randx.New(9))
	if err != nil {
		t.Fatal(err)
	}
	withIdx := newTQQAttack(t, d.Graph, Config{MaxDistance: 1})
	noIdx, err := NewAttack(d.Graph, Config{MaxDistance: 1, Profile: TQQProfile()})
	if err != nil {
		t.Fatal(err)
	}
	for tv := 0; tv < 30; tv++ {
		c1 := withIdx.Deanonymize(tgt.Graph, hin.EntityID(tv))
		c2 := noIdx.Deanonymize(tgt.Graph, hin.EntityID(tv))
		if len(c1) != len(c2) {
			t.Fatalf("target %d: index %v vs scan %v", tv, c1, c2)
		}
		for i := range c1 {
			if c1[i] != c2[i] {
				t.Fatalf("target %d: index %v vs scan %v", tv, c1, c2)
			}
		}
	}
}

func TestUseInEdgesTightens(t *testing.T) {
	cfg := tqq.DefaultConfig(1200, 61)
	cfg.Communities = []tqq.CommunitySpec{{Size: 150, Density: 0.005}}
	d, err := tqq.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := tqq.CommunityTarget(d, 0, randx.New(11))
	if err != nil {
		t.Fatal(err)
	}
	plain := newTQQAttack(t, d.Graph, Config{MaxDistance: 1})
	both := newTQQAttack(t, d.Graph, Config{MaxDistance: 1, UseInEdges: true})
	for tv := 0; tv < 40; tv++ {
		c1 := len(plain.Deanonymize(tgt.Graph, hin.EntityID(tv)))
		c2 := len(both.Deanonymize(tgt.Graph, hin.EntityID(tv)))
		if c2 > c1 {
			t.Fatalf("in-edge matching grew candidates for %d: %d -> %d", tv, c1, c2)
		}
	}
}

func BenchmarkDeanonymizeDistance1(b *testing.B) {
	cfg := tqq.DefaultConfig(5000, 3)
	cfg.Communities = []tqq.CommunitySpec{{Size: 500, Density: 0.01}}
	d, err := tqq.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	tgt, err := tqq.CommunityTarget(d, 0, randx.New(1))
	if err != nil {
		b.Fatal(err)
	}
	a := newTQQAttack(b, d.Graph, Config{MaxDistance: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Deanonymize(tgt.Graph, hin.EntityID(i%500))
	}
}

func TestNeighborToleranceRecoversFromBadEdge(t *testing.T) {
	// Target has two neighbors; one of them matches nothing in the
	// auxiliary data (a rewired fake). Strict matching rejects the true
	// candidate; 50% tolerance accepts it.
	s := tqq.TargetSchema()
	b := hin.NewBuilder(s)
	add := func(yob int64) hin.EntityID { return b.AddEntity(0, "", yob, 1, 10, 0) }
	u := add(1980)
	x := add(1990)
	if err := b.AddEdge(s.MustLinkTypeID(tqq.LinkMention), u, x, 3); err != nil {
		t.Fatal(err)
	}
	aux, _ := b.Build()

	tb := hin.NewBuilder(s)
	tu := tb.AddEntity(0, "", 1980, 1, 10, 0)
	tx := tb.AddEntity(0, "", 1990, 1, 10, 0)
	fake := tb.AddEntity(0, "", 1930, 2, 9999, 0) // matches nobody
	mention := s.MustLinkTypeID(tqq.LinkMention)
	if err := tb.AddEdge(mention, tu, tx, 3); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddEdge(mention, tu, fake, 7); err != nil {
		t.Fatal(err)
	}
	target, _ := tb.Build()

	strict := newTQQAttack(t, aux, Config{MaxDistance: 1})
	if got := strict.Deanonymize(target, 0); len(got) != 0 {
		t.Fatalf("strict matching should reject: %v", got)
	}
	tolerant := newTQQAttack(t, aux, Config{MaxDistance: 1, NeighborTolerance: 0.5})
	got := tolerant.Deanonymize(target, 0)
	if len(got) != 1 || got[0] != u {
		t.Fatalf("tolerant candidates = %v, want [u]", got)
	}
}

func TestNeighborToleranceZeroIsStrict(t *testing.T) {
	cfg := tqq.DefaultConfig(800, 91)
	cfg.Communities = []tqq.CommunitySpec{{Size: 100, Density: 0.01}}
	d, err := tqq.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := tqq.CommunityTarget(d, 0, randx.New(12))
	if err != nil {
		t.Fatal(err)
	}
	a0 := newTQQAttack(t, d.Graph, Config{MaxDistance: 2})
	aTol := newTQQAttack(t, d.Graph, Config{MaxDistance: 2, NeighborTolerance: 0})
	for tv := 0; tv < 30; tv++ {
		c0 := a0.Deanonymize(tgt.Graph, hin.EntityID(tv))
		c1 := aTol.Deanonymize(tgt.Graph, hin.EntityID(tv))
		if len(c0) != len(c1) {
			t.Fatalf("tolerance 0 diverged from default at %d", tv)
		}
	}
}

func TestNeighborToleranceWidensCandidates(t *testing.T) {
	cfg := tqq.DefaultConfig(800, 92)
	cfg.Communities = []tqq.CommunitySpec{{Size: 100, Density: 0.01}}
	d, err := tqq.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := tqq.CommunityTarget(d, 0, randx.New(13))
	if err != nil {
		t.Fatal(err)
	}
	strict := newTQQAttack(t, d.Graph, Config{MaxDistance: 1})
	loose := newTQQAttack(t, d.Graph, Config{MaxDistance: 1, NeighborTolerance: 0.8})
	for tv := 0; tv < 40; tv++ {
		cs := len(strict.Deanonymize(tgt.Graph, hin.EntityID(tv)))
		cl := len(loose.Deanonymize(tgt.Graph, hin.EntityID(tv)))
		if cl < cs {
			t.Fatalf("tolerance shrank candidates at %d: %d -> %d", tv, cs, cl)
		}
	}
}

func TestNewAttackToleranceErrors(t *testing.T) {
	aux := buildAux(t)
	for _, tol := range []float64{-0.1, 1, 1.5} {
		if _, err := NewAttack(aux, Config{NeighborTolerance: tol}); err == nil {
			t.Errorf("tolerance %g accepted", tol)
		}
	}
}

func TestSharedIndexAndAux(t *testing.T) {
	aux := buildAux(t)
	idx, err := NewIndex(aux, TQQProfile())
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAttack(aux, Config{MaxDistance: 1, Profile: TQQProfile(), SharedIndex: idx})
	if err != nil {
		t.Fatal(err)
	}
	if a.Aux() != aux {
		t.Fatal("Aux() returned a different graph")
	}
	// Shared index agrees with a private one.
	b, err := NewAttack(aux, Config{MaxDistance: 1, Profile: TQQProfile(), UseIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	target := buildTarget(t)
	c1 := a.Deanonymize(target, 0)
	c2 := b.Deanonymize(target, 0)
	if len(c1) != len(c2) {
		t.Fatalf("shared index diverged: %v vs %v", c1, c2)
	}
	// An index built from another graph is rejected.
	other := buildTarget(t)
	if _, err := NewAttack(other, Config{Profile: TQQProfile(), SharedIndex: idx}); err == nil {
		t.Fatal("foreign index accepted")
	}
}

func TestSubsetSetMatchers(t *testing.T) {
	// Exercise ProfileSpec.SubsetSets (not used by TQQProfile because tag
	// IDs are anonymized, but part of the matcher API for datasets where
	// set attributes ARE joinable).
	s := tqq.TargetSchema()
	b := hin.NewBuilder(s)
	mk := func(tags []int32) hin.EntityID {
		id := b.AddEntity(0, "", 1980, 1, 10, int64(len(tags)))
		if len(tags) > 0 {
			b.SetSet(tqq.TagsAttr, id, tags)
		}
		return id
	}
	tgt := mk([]int32{3, 5})
	superset := mk([]int32{3, 5, 9})
	disjoint := mk([]int32{1, 2})
	exactTwin := mk([]int32{3, 5})
	g, _ := b.Build()

	spec := ProfileSpec{
		ExactAttrs: []int{tqq.AttrYob, tqq.AttrGender},
		SubsetSets: []string{tqq.TagsAttr},
	}
	grow := spec.GrowthMatcher()
	exact := spec.ExactMatcher()
	if !grow(g, g, tgt, superset) {
		t.Fatal("growth matcher must accept a tag superset")
	}
	if grow(g, g, tgt, disjoint) {
		t.Fatal("growth matcher accepted disjoint tags")
	}
	if exact(g, g, tgt, superset) {
		t.Fatal("exact matcher accepted a strict superset")
	}
	if !exact(g, g, tgt, exactTwin) {
		t.Fatal("exact matcher rejected an identical tag set")
	}
}

func TestRunParallelismDeterministic(t *testing.T) {
	cfg := tqq.DefaultConfig(1000, 71)
	cfg.Communities = []tqq.CommunitySpec{{Size: 120, Density: 0.01}}
	d, err := tqq.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := tqq.CommunityTarget(d, 0, randx.New(21))
	if err != nil {
		t.Fatal(err)
	}
	a1 := newTQQAttack(t, d.Graph, Config{MaxDistance: 1, Parallelism: 1})
	a4 := newTQQAttack(t, d.Graph, Config{MaxDistance: 1, Parallelism: 4})
	r1, err := a1.Run(tgt.Graph, tgt.Orig)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := a4.Run(tgt.Graph, tgt.Orig)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Precision != r4.Precision || r1.ReductionRate != r4.ReductionRate {
		t.Fatalf("parallelism changed results: %v vs %v", r1.Precision, r4.Precision)
	}
	for i := range r1.PerTarget {
		if r1.PerTarget[i] != r4.PerTarget[i] {
			t.Fatalf("per-target outcome %d differs", i)
		}
	}
}

// TestKCopyDoesNotStopDeHIN demonstrates why released-graph-internal
// k-anonymity (k-automorphism / k-symmetry via disjoint copies) is the
// wrong invariant: every copy of a user joins to the same real individual
// in the auxiliary network, so DeHIN's precision is unchanged.
func TestKCopyDoesNotStopDeHIN(t *testing.T) {
	cfg := tqq.DefaultConfig(1500, 83)
	cfg.Communities = []tqq.CommunitySpec{{Size: 150, Density: 0.01}}
	d, err := tqq.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := tqq.CommunityTarget(d, 0, randx.New(23))
	if err != nil {
		t.Fatal(err)
	}
	a := newTQQAttack(t, d.Graph, Config{MaxDistance: 1})
	base, err := a.Run(tgt.Graph, tgt.Orig)
	if err != nil {
		t.Fatal(err)
	}
	kc, err := anonymize.KCopy(tgt.Graph, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Truth for the copied release: copy c of target v is still tgt.Orig[v].
	truth := make([]hin.EntityID, len(kc.ToOrig))
	for i, orig := range kc.ToOrig {
		truth[i] = tgt.Orig[orig]
	}
	res, err := a.Run(kc.Graph, truth)
	if err != nil {
		t.Fatal(err)
	}
	if res.Precision < base.Precision-1e-9 {
		t.Fatalf("k-copy reduced DeHIN precision: %g -> %g (it must not)",
			base.Precision, res.Precision)
	}
}
