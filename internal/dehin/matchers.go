// Package dehin implements the paper's core contribution: the DeHIN
// de-anonymization attack against heterogeneous information networks
// (Section 5, Algorithms 1 and 2).
//
// Given an anonymized target graph and a non-anonymized auxiliary graph
// over the same target network schema, DeHIN computes, for each target
// entity, the candidate set of auxiliary entities whose profile attributes
// match (Algorithm 1) and whose typed neighborhoods recursively match up
// to the configured distance, deciding neighborhood compatibility by
// maximum bipartite matching per link type (Algorithm 2, Hopcroft-Karp).
// A candidate set of size one that names the right individual is a
// successful de-anonymization.
package dehin

import (
	"github.com/hinpriv/dehin/internal/hin"
	"github.com/hinpriv/dehin/internal/tqq"
)

// EntityMatcher decides whether auxiliary entity av could be target entity
// tv - the paper's configurable entity_attribute_match. Implementations
// must be conservative in one direction only: the true counterpart must
// always match (no false negatives), or the attack silently loses recall.
type EntityMatcher func(tg, ag hin.GraphBackend, tv, av hin.EntityID) bool

// LinkMatcher decides whether an auxiliary link strength is compatible
// with a target link strength - the paper's link_attribute_match.
type LinkMatcher func(targetW, auxW int32) bool

// GrowthLinkMatcher accepts any auxiliary strength at least the target
// strength, per the threat model: interaction counters only grow between
// the target release and the auxiliary crawl.
func GrowthLinkMatcher(targetW, auxW int32) bool { return auxW >= targetW }

// ExactLinkMatcher requires identical strengths - the time-synchronized
// special case.
func ExactLinkMatcher(targetW, auxW int32) bool { return auxW == targetW }

// ProfileSpec declares how profile attributes are compared, by role:
// ExactAttrs must be equal (immutable facts such as year of birth and
// gender), GrowAttrs may only grow (counters such as tweet count and
// number of tags), and SubsetSets are set attributes where the target's
// value must be a subset of the auxiliary's (tag sets only gain tags).
type ProfileSpec struct {
	ExactAttrs []int
	GrowAttrs  []int
	SubsetSets []string
}

// TQQProfile is the profile specification for the t.qq target schema: yob
// and gender exact; tweet count and number of tags growable. Tag IDs are
// deliberately NOT matched: the KDD Cup release replaced them with
// meaningless IDs, so only the tag count is joinable with the auxiliary
// data (an attack matching tag identities would be unsound against the
// real release - see anonymize.RandomizeIDs, which remaps them).
func TQQProfile() ProfileSpec {
	return ProfileSpec{
		ExactAttrs: []int{tqq.AttrYob, tqq.AttrGender},
		GrowAttrs:  []int{tqq.AttrTweets, tqq.AttrNumTags},
	}
}

// GrowthMatcher builds the growth-tolerant entity matcher the paper's
// evaluation uses: exact attributes equal, growable attributes
// auxiliary >= target, set attributes superset.
//
// The closure dispatches once per call to a same-backend specialization
// when both graphs share a concrete type: the matcher runs per candidate
// pair in the engine's innermost loop, and the concrete attribute reads
// inline where the interface calls cannot (worth ~20% of whole-query time
// on the in-memory backend). Go's gcshape generics would not recover
// this - all pointer instantiations share one dictionary-dispatched body -
// so the specializations are spelled out.
func (ps ProfileSpec) GrowthMatcher() EntityMatcher {
	return func(tg, ag hin.GraphBackend, tv, av hin.EntityID) bool {
		switch tgc := tg.(type) {
		case *hin.Graph:
			if agc, ok := ag.(*hin.Graph); ok {
				return ps.growthMatchMem(tgc, agc, tv, av)
			}
		case *hin.CSRGraph:
			if agc, ok := ag.(*hin.CSRGraph); ok {
				return ps.growthMatchCSR(tgc, agc, tv, av)
			}
		}
		for _, i := range ps.ExactAttrs {
			if tg.Attr(tv, i) != ag.Attr(av, i) {
				return false
			}
		}
		for _, i := range ps.GrowAttrs {
			if ag.Attr(av, i) < tg.Attr(tv, i) {
				return false
			}
		}
		return ps.subsetSetsMatch(tg, ag, tv, av)
	}
}

// growthMatchMem is GrowthMatcher's body with both graphs on the
// in-memory backend; the devirtualized Attr calls inline to two loads.
// Any edit here must be mirrored in growthMatchCSR and the interface
// fallback above (TestMatcherSpecializationsAgree pins the equivalence).
func (ps ProfileSpec) growthMatchMem(tg, ag *hin.Graph, tv, av hin.EntityID) bool {
	for _, i := range ps.ExactAttrs {
		if tg.Attr(tv, i) != ag.Attr(av, i) {
			return false
		}
	}
	for _, i := range ps.GrowAttrs {
		if ag.Attr(av, i) < tg.Attr(tv, i) {
			return false
		}
	}
	return ps.subsetSetsMatch(tg, ag, tv, av)
}

// growthMatchCSR is growthMatchMem for the compact backend.
func (ps ProfileSpec) growthMatchCSR(tg, ag *hin.CSRGraph, tv, av hin.EntityID) bool {
	for _, i := range ps.ExactAttrs {
		if tg.Attr(tv, i) != ag.Attr(av, i) {
			return false
		}
	}
	for _, i := range ps.GrowAttrs {
		if ag.Attr(av, i) < tg.Attr(tv, i) {
			return false
		}
	}
	return ps.subsetSetsMatch(tg, ag, tv, av)
}

// subsetSetsMatch checks the SubsetSets clause (target set a subset of the
// auxiliary's). Set lookups are per-name map probes on either backend, so
// this shared tail costs the specializations nothing.
func (ps ProfileSpec) subsetSetsMatch(tg, ag hin.GraphBackend, tv, av hin.EntityID) bool {
	for _, name := range ps.SubsetSets {
		if !sortedSubset(tg.Set(name, tv), ag.Set(name, av)) {
			return false
		}
	}
	return true
}

// ExactMatcher builds a strict matcher: every declared attribute equal and
// set attributes identical. Appropriate when target and auxiliary are
// time-synchronized snapshots.
func (ps ProfileSpec) ExactMatcher() EntityMatcher {
	return func(tg, ag hin.GraphBackend, tv, av hin.EntityID) bool {
		for _, i := range ps.ExactAttrs {
			if tg.Attr(tv, i) != ag.Attr(av, i) {
				return false
			}
		}
		for _, i := range ps.GrowAttrs {
			if tg.Attr(tv, i) != ag.Attr(av, i) {
				return false
			}
		}
		for _, name := range ps.SubsetSets {
			a, b := tg.Set(name, tv), ag.Set(name, av)
			if len(a) != len(b) {
				return false
			}
			if !sortedSubset(a, b) {
				return false
			}
		}
		return true
	}
}

// sortedSubset reports whether sorted slice sub is a subset of sorted
// slice sup.
func sortedSubset(sub, sup []int32) bool {
	j := 0
	for _, v := range sub {
		for j < len(sup) && sup[j] < v {
			j++
		}
		if j >= len(sup) || sup[j] != v {
			return false
		}
		j++
	}
	return true
}
