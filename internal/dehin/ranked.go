package dehin

import (
	"sort"

	"github.com/hinpriv/dehin/internal/hin"
)

// RankedCandidate is one auxiliary candidate with its neighborhood match
// score.
type RankedCandidate struct {
	Entity hin.EntityID
	// Score is the fraction of the target's neighbor slots (across
	// utilized link types and directions) that a maximum matching can
	// fill against this candidate, in [0, 1]. Exact candidates (the ones
	// Deanonymize returns at tolerance 0) score 1.
	Score float64
}

// DeanonymizeRanked runs Algorithm 1's candidate generation but instead of
// the boolean accept/reject of Algorithm 2 it scores every profile
// candidate by how much of the target's typed neighborhood it can absorb,
// returning all candidates sorted by descending score (ties broken by
// entity id).
//
// This operationalizes the paper's reduction-rate observation: "even when
// precision is relatively low ... high reduction rate makes manual
// investigation of matched candidates possibly practical" - an analyst
// works the ranked list from the top.
func (a *Attack) DeanonymizeRanked(target hin.GraphBackend, tv hin.EntityID) []RankedCandidate {
	s := a.getScratch()
	defer a.putScratch(s)
	profile := a.profileCandidates(s, target, tv)
	out := make([]RankedCandidate, 0, len(profile))
	a.ensureMemo(s, target)
	for _, av := range profile {
		out = append(out, RankedCandidate{
			Entity: av,
			Score:  a.neighborhoodScore(s, target, tv, av),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Entity < out[j].Entity
	})
	return out
}

// neighborhoodScore computes matched-slots / total-slots at depth
// cfg.MaxDistance (depth 0 scores every profile candidate 1). It builds
// into the frame above the linkMatch recursion's deepest use, so the two
// never collide.
func (a *Attack) neighborhoodScore(s *queryScratch, target hin.GraphBackend, tv, av hin.EntityID) float64 {
	if a.cfg.MaxDistance == 0 {
		return 1
	}
	totalSlots, matchedSlots := 0, 0
	count := func(lt hin.LinkTypeID, inEdges bool) {
		f := s.frame(a.cfg.MaxDistance)
		var tns []hin.EntityID
		var tws []int32
		var ans []hin.EntityID
		var aws []int32
		if inEdges {
			tns, tws = target.InEdgesBuf(&f.tbuf, lt, tv)
			ans, aws = a.aux.InEdgesBuf(&f.abuf, lt, av)
		} else {
			tns, tws = target.OutEdgesBuf(&f.tbuf, lt, tv)
			ans, aws = a.aux.OutEdgesBuf(&f.abuf, lt, av)
		}
		if len(tns) == 0 {
			return
		}
		totalSlots += len(tns)
		f.reset()
		for i, tb := range tns {
			for j, ab := range ans {
				if !a.lm(tws[i], aws[j]) {
					continue
				}
				if !a.emCached(s, target, tb, ab) {
					continue
				}
				if a.cfg.MaxDistance > 1 && !a.linkMatch(s, target, a.cfg.MaxDistance-1, tb, ab) {
					continue
				}
				f.dat = append(f.dat, int32(j))
			}
			f.closeRow()
		}
		matchedSlots += s.matcher.Match(f.graph(len(ans)))
	}
	for _, lt := range a.cfg.LinkTypes {
		count(lt, false)
		if a.cfg.UseInEdges {
			count(lt, true)
		}
	}
	if totalSlots == 0 {
		return 1
	}
	return float64(matchedSlots) / float64(totalSlots)
}
