package dehin

import (
	"fmt"
	"math"
	"testing"

	"github.com/hinpriv/dehin/internal/anonymize"
	"github.com/hinpriv/dehin/internal/bipartite"
	"github.com/hinpriv/dehin/internal/hin"
	"github.com/hinpriv/dehin/internal/randx"
	"github.com/hinpriv/dehin/internal/tqq"
)

// refDeanonymize is an independently kept copy of the seed implementation
// of Algorithm 1/2 (fresh map memo, fresh slice allocations, full
// auxiliary scan, package-level Hopcroft-Karp, no degree pruning). The
// differential tests assert the scratch-reusing, signature-pruning engine
// returns identical candidate sets.
func refDeanonymize(a *Attack, target hin.GraphBackend, tv hin.EntityID) []hin.EntityID {
	var profile []hin.EntityID
	for av := 0; av < a.aux.NumEntities(); av++ {
		if a.em(target, a.aux, tv, hin.EntityID(av)) {
			profile = append(profile, hin.EntityID(av))
		}
	}
	if a.cfg.MaxDistance == 0 || len(profile) == 0 {
		return profile
	}
	memo := make(map[memoKey]bool)
	out := make([]hin.EntityID, 0, 4)
	for _, av := range profile {
		if refLinkMatch(a, target, a.cfg.MaxDistance, tv, av, memo) {
			out = append(out, av)
		}
	}
	if len(out) == 0 && a.cfg.FallbackProfileOnly {
		return profile
	}
	return out
}

func refLinkMatch(a *Attack, target hin.GraphBackend, n int, tv, av hin.EntityID, memo map[memoKey]bool) bool {
	key := memoKey{tv, av, int32(n)}
	if r, ok := memo[key]; ok {
		return r
	}
	res := true
	for _, lt := range a.cfg.LinkTypes {
		if !refDirectionMatch(a, target, n, tv, av, lt, false, memo) {
			res = false
			break
		}
		if a.cfg.UseInEdges && !refDirectionMatch(a, target, n, tv, av, lt, true, memo) {
			res = false
			break
		}
	}
	memo[key] = res
	return res
}

func refDirectionMatch(a *Attack, target hin.GraphBackend, n int, tv, av hin.EntityID, lt hin.LinkTypeID, inEdges bool, memo map[memoKey]bool) bool {
	var tns []hin.EntityID
	var tws []int32
	var ans []hin.EntityID
	var aws []int32
	tbuf, abuf := &hin.EdgeBuf{}, &hin.EdgeBuf{}
	if inEdges {
		tns, tws = target.InEdgesBuf(tbuf, lt, tv)
		ans, aws = a.aux.InEdgesBuf(abuf, lt, av)
	} else {
		tns, tws = target.OutEdgesBuf(tbuf, lt, tv)
		ans, aws = a.aux.OutEdgesBuf(abuf, lt, av)
	}
	need := len(tns)
	if a.cfg.NeighborTolerance > 0 {
		need = len(tns) - int(math.Ceil(a.cfg.NeighborTolerance*float64(len(tns))))
	}
	if need <= 0 || len(tns) == 0 {
		return true
	}
	if need > len(ans) {
		return false
	}
	adj := make([][]int32, len(tns))
	empties := 0
	for i, tb := range tns {
		for j, ab := range ans {
			if !a.lm(tws[i], aws[j]) {
				continue
			}
			if !a.em(target, a.aux, tb, ab) {
				continue
			}
			if n > 1 && !refLinkMatch(a, target, n-1, tb, ab, memo) {
				continue
			}
			adj[i] = append(adj[i], int32(j))
		}
		if len(adj[i]) == 0 {
			empties++
			if len(tns)-empties < need {
				return false
			}
		}
	}
	g := bipartite.Graph{NLeft: len(tns), NRight: len(ans), Adj: adj}
	if need == len(tns) {
		return bipartite.HasPerfectLeftMatching(g)
	}
	_, _, size := bipartite.HopcroftKarp(g)
	return size >= need
}

// TestDifferentialEngineMatchesSeed sweeps every engine-relevant flag
// combination over randomized anonymized communities and asserts the
// query engine (degree pruning + scratch reuse + packed index) returns
// candidate sets identical to the seed reference implementation.
func TestDifferentialEngineMatchesSeed(t *testing.T) {
	for _, seed := range []uint64{17, 91} {
		cfgGen := tqq.DefaultConfig(900, seed)
		cfgGen.Communities = []tqq.CommunitySpec{{Size: 120, Density: 0.01}}
		d, err := tqq.Generate(cfgGen)
		if err != nil {
			t.Fatal(err)
		}
		tgt, err := tqq.CommunityTarget(d, 0, randx.New(seed+1))
		if err != nil {
			t.Fatal(err)
		}
		anon, err := anonymize.RandomizeIDs(tgt.Graph, seed+2)
		if err != nil {
			t.Fatal(err)
		}
		shared, err := NewIndex(d.Graph, TQQProfile())
		if err != nil {
			t.Fatal(err)
		}
		for _, useIn := range []bool{false, true} {
			for _, tol := range []float64{0, 0.3} {
				for _, fb := range []bool{false, true} {
					for _, rm := range []bool{false, true} {
						for _, sharedIdx := range []bool{false, true} {
							cfg := Config{
								MaxDistance:            2,
								Profile:                TQQProfile(),
								UseInEdges:             useIn,
								NeighborTolerance:      tol,
								FallbackProfileOnly:    fb,
								RemoveMajorityStrength: rm,
							}
							if sharedIdx {
								cfg.SharedIndex = shared
							} else {
								cfg.UseIndex = true
							}
							name := fmt.Sprintf("seed=%d in=%v tol=%g fb=%v rm=%v shared=%v",
								seed, useIn, tol, fb, rm, sharedIdx)
							a, err := NewAttack(d.Graph, cfg)
							if err != nil {
								t.Fatal(err)
							}
							prepared, err := a.PrepareTarget(anon.Graph)
							if err != nil {
								t.Fatal(err)
							}
							for tv := 0; tv < 40; tv++ {
								got := a.Deanonymize(prepared, hin.EntityID(tv))
								want := refDeanonymize(a, prepared, hin.EntityID(tv))
								if len(got) != len(want) {
									t.Fatalf("%s target %d: engine %v, reference %v", name, tv, got, want)
								}
								for i := range got {
									if got[i] != want[i] {
										t.Fatalf("%s target %d: engine %v, reference %v", name, tv, got, want)
									}
								}
							}
						}
					}
				}
			}
		}
	}
}

// TestRunWorkStealingConcurrent stresses the chunked work-stealing Run
// under many workers and the full flag surface; with -race it doubles as
// the data-race check for scratch pooling and result writes.
func TestRunWorkStealingConcurrent(t *testing.T) {
	cfgGen := tqq.DefaultConfig(1200, 33)
	cfgGen.Communities = []tqq.CommunitySpec{{Size: 150, Density: 0.01}}
	d, err := tqq.Generate(cfgGen)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := tqq.CommunityTarget(d, 0, randx.New(3))
	if err != nil {
		t.Fatal(err)
	}
	base := Config{MaxDistance: 2, UseInEdges: true, NeighborTolerance: 0.2, Profile: TQQProfile(), UseIndex: true}
	serial := base
	serial.Parallelism = 1
	a1, err := NewAttack(d.Graph, serial)
	if err != nil {
		t.Fatal(err)
	}
	wide := base
	wide.Parallelism = 8
	a8, err := NewAttack(d.Graph, wide)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := a1.Run(tgt.Graph, tgt.Orig)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := a8.Run(tgt.Graph, tgt.Orig)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Precision != r8.Precision || r1.ReductionRate != r8.ReductionRate {
		t.Fatalf("work stealing changed results: %v/%v vs %v/%v",
			r1.Precision, r1.ReductionRate, r8.Precision, r8.ReductionRate)
	}
	for i := range r1.PerTarget {
		if r1.PerTarget[i] != r8.PerTarget[i] {
			t.Fatalf("per-target outcome %d differs across worker counts", i)
		}
	}
}

// TestRunEmptyTarget is the NaN regression test: a zero-entity target must
// produce zero metrics, not 0/0.
func TestRunEmptyTarget(t *testing.T) {
	aux := buildAux(t)
	a := newTQQAttack(t, aux, Config{MaxDistance: 1})
	empty, err := hin.NewBuilder(tqq.TargetSchema()).Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Run(empty, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.Precision) || math.IsNaN(res.ReductionRate) {
		t.Fatalf("empty target produced NaN: %+v", res)
	}
	if res.Precision != 0 || res.ReductionRate != 0 || len(res.PerTarget) != 0 {
		t.Fatalf("empty target result = %+v, want zeros", res)
	}
}

// TestDeanonymizeSteadyStateZeroAlloc drives the internal engine with a
// pinned scratch (bypassing the pool, whose GC interaction would make the
// count nondeterministic) and asserts a warmed query allocates nothing.
func TestDeanonymizeSteadyStateZeroAlloc(t *testing.T) {
	cfgGen := tqq.DefaultConfig(2000, 29)
	cfgGen.Communities = []tqq.CommunitySpec{{Size: 200, Density: 0.01}}
	d, err := tqq.Generate(cfgGen)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := tqq.CommunityTarget(d, 0, randx.New(19))
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{
		{MaxDistance: 2, Profile: TQQProfile(), UseIndex: true},
		{MaxDistance: 2, Profile: TQQProfile(), UseIndex: true, UseInEdges: true, NeighborTolerance: 0.25},
	} {
		a, err := NewAttack(d.Graph, cfg)
		if err != nil {
			t.Fatal(err)
		}
		s := &queryScratch{}
		var dst []hin.EntityID
		n := tgt.Graph.NumEntities()
		for tv := 0; tv < n; tv++ { // warm every buffer past its high-water mark
			dst = a.deanonymize(s, dst[:0], tgt.Graph, hin.EntityID(tv))
		}
		allocs := testing.AllocsPerRun(20, func() {
			for tv := 0; tv < 25; tv++ {
				dst = a.deanonymize(s, dst[:0], tgt.Graph, hin.EntityID(tv))
			}
		})
		if allocs != 0 {
			t.Errorf("cfg %+v: steady-state query allocated %.1f times per 25-query batch", cfg, allocs)
		}
	}
}

// TestDegreePruningDisabledForExoticConfigs pins the soundness gate: the
// signature must not be built when majority-strength removal or custom
// matchers are configured, and must be built for the plain growth attack.
func TestDegreePruningGate(t *testing.T) {
	aux := buildAux(t)
	plain := newTQQAttack(t, aux, Config{MaxDistance: 1})
	if plain.deg == nil {
		t.Fatal("degree signature missing on the plain growth attack")
	}
	if plain.deg.in != nil {
		t.Fatal("in-degree signature built without UseInEdges")
	}
	both := newTQQAttack(t, aux, Config{MaxDistance: 1, UseInEdges: true})
	if both.deg == nil || both.deg.in == nil {
		t.Fatal("in-degree signature missing with UseInEdges")
	}
	for name, cfg := range map[string]Config{
		"distance 0":      {MaxDistance: 0},
		"remove majority": {MaxDistance: 1, RemoveMajorityStrength: true},
		"custom link":     {MaxDistance: 1, LinkMatch: ExactLinkMatcher},
		"custom entity":   {MaxDistance: 1, EntityMatch: TQQProfile().ExactMatcher()},
	} {
		a := newTQQAttack(t, aux, cfg)
		if a.deg != nil {
			t.Errorf("%s: degree signature built despite the soundness gate", name)
		}
	}
}

// TestProfileSpecValidation covers the NewAttack/NewIndex-time validation
// that replaced lookup's silent empty candidate set.
func TestProfileSpecValidation(t *testing.T) {
	aux := buildAux(t)
	if _, err := NewIndex(aux, ProfileSpec{ExactAttrs: []int{9}}); err == nil {
		t.Fatal("NewIndex accepted an out-of-range exact attr")
	}
	if _, err := NewIndex(aux, ProfileSpec{GrowAttrs: []int{-1}}); err == nil {
		t.Fatal("NewIndex accepted a negative grow attr")
	}
	// Even without an index, a profile-derived matcher would read out of
	// range; NewAttack must reject it up front.
	if _, err := NewAttack(aux, Config{Profile: ProfileSpec{GrowAttrs: []int{12}}}); err == nil {
		t.Fatal("NewAttack accepted an out-of-range profile attr without an index")
	}
	// A custom entity matcher does not consult the profile spec, so a
	// stale spec next to it stays legal.
	any := func(tg, ag hin.GraphBackend, tv, av hin.EntityID) bool { return true }
	if _, err := NewAttack(aux, Config{EntityMatch: any, Profile: ProfileSpec{ExactAttrs: []int{42}}}); err != nil {
		t.Fatalf("custom-matcher attack rejected: %v", err)
	}
}

// TestMemoTablePackedVsMap drives the open-addressing memo through
// collisions, growth, and generation resets, cross-checking every answer
// against a plain map.
func TestMemoTablePackedVsMap(t *testing.T) {
	var mt memoTable
	rng := randx.New(7)
	for gen := 0; gen < 5; gen++ {
		mt.reset(true)
		ref := map[memoKey]bool{}
		for i := 0; i < 3000; i++ {
			tv := hin.EntityID(rng.Intn(200))
			av := hin.EntityID(rng.Intn(200))
			depth := rng.Intn(4) + 1
			k := memoKey{tv, av, int32(depth)}
			if rng.Bool(0.5) {
				v := rng.Bool(0.5)
				mt.put(tv, av, depth, v)
				ref[k] = v
			} else {
				got, ok := mt.get(tv, av, depth)
				want, wantOK := ref[k]
				if got != want || ok != wantOK {
					t.Fatalf("gen %d op %d: memo (%v,%v) != map (%v,%v)", gen, i, got, ok, want, wantOK)
				}
			}
		}
	}
}
