package dehin

import (
	"strings"
	"testing"

	"github.com/hinpriv/dehin/internal/hin"
	"github.com/hinpriv/dehin/internal/tqq"
)

func TestExplainMatchAccepted(t *testing.T) {
	aux := buildAux(t)
	target := buildTarget(t)
	a := newTQQAttack(t, aux, Config{MaxDistance: 1})
	// Ada (entity 0 in aux) is a real candidate for A3H (target 0).
	ex := a.ExplainMatch(target, 0, 0)
	if !ex.Complete {
		t.Fatalf("Ada should explain A3H completely: %+v", ex)
	}
	// Two neighbor slots: mention->F8P and follow->M7R.
	if len(ex.Pairings) != 2 || len(ex.Unmatched) != 0 {
		t.Fatalf("pairings=%d unmatched=%d", len(ex.Pairings), len(ex.Unmatched))
	}
	out := ex.Render(target, aux)
	for _, want := range []string{"A3H", "Ada", "complete=true", "mention(5)", "Cyn"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestExplainMatchRejected(t *testing.T) {
	aux := buildAux(t)
	target := buildTarget(t)
	a := newTQQAttack(t, aux, Config{MaxDistance: 1})
	// Bob (entity 1) mentions only Dan; A3H's mention of F8P-like Cyn
	// cannot be explained.
	ex := a.ExplainMatch(target, 0, 1)
	if ex.Complete {
		t.Fatal("Bob should not explain A3H")
	}
	if len(ex.Unmatched) == 0 {
		t.Fatal("expected unmatched slots")
	}
	out := ex.Render(target, aux)
	if !strings.Contains(out, "UNMATCHED") {
		t.Fatalf("render missing UNMATCHED:\n%s", out)
	}
}

func TestExplainMatchAgreesWithBoolean(t *testing.T) {
	cfg := tqq.DefaultConfig(1000, 81)
	cfg.Communities = []tqq.CommunitySpec{{Size: 120, Density: 0.01}}
	d, err := tqq.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := newTQQAttack(t, d.Graph, Config{MaxDistance: 2})
	tgt, _, err := d.Graph.Induced(d.Communities[0])
	if err != nil {
		t.Fatal(err)
	}
	// For accepted candidates the explanation must be complete; for the
	// profile candidates the boolean filter rejected, incomplete.
	for tv := 0; tv < 25; tv++ {
		accepted := make(map[int32]bool)
		for _, av := range a.Deanonymize(tgt, hin.EntityID(tv)) {
			accepted[int32(av)] = true
		}
		for _, rc := range a.DeanonymizeRanked(tgt, hin.EntityID(tv)) {
			ex := a.ExplainMatch(tgt, hin.EntityID(tv), rc.Entity)
			if accepted[int32(rc.Entity)] != ex.Complete {
				t.Fatalf("target %d candidate %d: boolean %v vs explanation %v",
					tv, rc.Entity, accepted[int32(rc.Entity)], ex.Complete)
			}
		}
	}
}
