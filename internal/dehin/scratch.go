package dehin

import (
	"github.com/hinpriv/dehin/internal/bipartite"
	"github.com/hinpriv/dehin/internal/hin"
)

// queryScratch holds every piece of per-query working memory the engine
// needs, so a steady-state Deanonymize performs zero heap allocations: the
// profile candidate buffer, the memo table for Algorithm 2's recursion, a
// flat adjacency frame per recursion depth, one reusable Hopcroft-Karp
// matcher, and the degree-quota vector for signature pruning. Attacks hand
// these out through a sync.Pool (one per concurrent query) so the public
// Deanonymize signature stays allocation-free without exposing the type.
type queryScratch struct {
	memo memoTable
	// memoTarget is the prepared target graph the memo's entries are
	// valid for. Entries are pure in (target graph, auxiliary graph,
	// config), so they survive across queries until the scratch sees a
	// different graph (see Attack.ensureMemo). Holding the backend also
	// keeps that graph alive, which is what makes the identity check
	// sound: a dead graph's address can never be reused while the
	// scratch still references it.
	memoTarget hin.GraphBackend
	matcher    bipartite.Matcher
	frames     []adjFrame
	cand       []hin.EntityID // profile candidate buffer
	needs      []int32        // per-(link type, direction) quota of the current target entity
	// stats tallies this query's instrumentation events as plain local
	// integers; Attack.deanonymize flushes them to the shared atomic
	// counters once per query when metrics are enabled (and never reads
	// them otherwise - see metrics.go).
	stats queryStats
}

// frame returns the adjacency frame for recursion depth n (1-based).
// directionMatch at depth n builds its bipartite graph into frame n while
// the recursive linkMatch calls it makes during the build use frames
// 1..n-1, so one frame per depth is exactly enough; the Hopcroft-Karp runs
// themselves never nest (each fires only after its frame's build loop, and
// all deeper runs, have completed), which is why a single matcher is
// shared across depths.
//
//hin:hot
func (s *queryScratch) frame(n int) *adjFrame {
	for len(s.frames) < n {
		s.frames = append(s.frames, adjFrame{})
	}
	return &s.frames[n-1]
}

// adjFrame is a reusable flat (CSR-style) bipartite adjacency: row i of
// the current graph lives in dat[off[i]:off[i+1]]. rows rebuilds the
// []slice headers bipartite.Graph wants after dat has stopped moving -
// sub-slicing during the build would dangle whenever an append reallocates
// dat.
type adjFrame struct {
	off  []int32
	dat  []int32
	rows [][]int32
	// tbuf and abuf are this depth's pooled adjacency decode cursors: the
	// target and auxiliary rows directionMatch compares. Compact backends
	// decode varint rows into them (capacity amortizes to the largest row
	// seen); the in-memory backend returns zero-copy views and leaves
	// them untouched. One pair per frame keeps the rows of an in-progress
	// build alive while deeper recursion decodes its own.
	tbuf hin.EdgeBuf
	abuf hin.EdgeBuf
}

//hin:hot
func (f *adjFrame) reset() {
	f.off = append(f.off[:0], 0)
	f.dat = f.dat[:0]
}

//hin:hot
func (f *adjFrame) closeRow() {
	f.off = append(f.off, int32(len(f.dat)))
}

// graph materializes the frame as a bipartite.Graph with nRight right
// vertices. Row count is len(off)-1.
//
//hin:hot
func (f *adjFrame) graph(nRight int) bipartite.Graph {
	n := len(f.off) - 1
	if cap(f.rows) < n {
		f.rows = make([][]int32, n)
	} else {
		f.rows = f.rows[:n]
	}
	for i := 0; i < n; i++ {
		f.rows[i] = f.dat[f.off[i]:f.off[i+1]]
	}
	return bipartite.Graph{NLeft: n, NRight: nRight, Adj: f.rows}
}

// memoKey is the fallback (map) memo key for graphs too large, or
// recursion too deep, for the packed representation.
type memoKey struct {
	tv, av hin.EntityID
	depth  int32
}

// Packed memo keys put the target id in bits 36..63, the auxiliary id in
// bits 8..35 and the depth in bits 0..7, so both graphs must stay under
// 2^28 entities and the distance under 256 - far beyond the paper's scale
// (2.3M users) and anything Run sees in practice. memoPackable gates per
// query and the memoTable falls back to a Go map beyond those limits.
const (
	memoMaxEntities = 1 << 28
	memoMaxDepth    = 255
)

func memoPackable(target, aux hin.GraphBackend, maxDistance int) bool {
	return target.NumEntities() < memoMaxEntities &&
		aux.NumEntities() < memoMaxEntities &&
		maxDistance <= memoMaxDepth
}

func packMemoKey(tv, av hin.EntityID, depth int) uint64 {
	return uint64(uint32(tv))<<36 | uint64(uint32(av))<<8 | uint64(uint8(depth))
}

// memoTable memoizes linkMatch results per (target, candidate, depth). The
// fast path is an open-addressing table over packed uint64 keys whose
// slots are invalidated wholesale by bumping a generation counter - reset
// between queries costs O(1) and no allocation. Capacity persists across
// queries (it only ever grows), so a steady-state query stays on the warm
// arrays.
type memoTable struct {
	keys []uint64
	vals []bool
	gens []uint32
	gen  uint32
	used int

	packed bool
	slow   map[memoKey]bool // fallback beyond packing limits
}

const memoMinSize = 256 // power of two

func (t *memoTable) reset(packed bool) {
	t.packed = packed
	if !packed {
		if t.slow == nil {
			t.slow = make(map[memoKey]bool, 64)
		} else {
			clear(t.slow)
		}
		return
	}
	if len(t.keys) == 0 {
		t.keys = make([]uint64, memoMinSize)
		t.vals = make([]bool, memoMinSize)
		t.gens = make([]uint32, memoMinSize)
	}
	t.used = 0
	t.gen++
	if t.gen == 0 { // generation wrapped: wipe stale marks once per 2^32 queries
		for i := range t.gens {
			t.gens[i] = 0
		}
		t.gen = 1
	}
}

func memoHash(k uint64) uint64 {
	k *= 0x9E3779B97F4A7C15 // Fibonacci hashing; mixes the packed fields well
	return k ^ (k >> 29)
}

//hin:hot
func (t *memoTable) get(tv, av hin.EntityID, depth int) (res, ok bool) {
	if !t.packed {
		res, ok = t.slow[memoKey{tv, av, int32(depth)}]
		return res, ok
	}
	k := packMemoKey(tv, av, depth)
	mask := uint64(len(t.keys) - 1)
	for i := memoHash(k) & mask; ; i = (i + 1) & mask {
		if t.gens[i] != t.gen {
			return false, false
		}
		if t.keys[i] == k {
			return t.vals[i], true
		}
	}
}

//hin:hot
func (t *memoTable) put(tv, av hin.EntityID, depth int, res bool) {
	if !t.packed {
		t.slow[memoKey{tv, av, int32(depth)}] = res
		return
	}
	if t.used*4 >= len(t.keys)*3 {
		t.grow()
	}
	t.insert(packMemoKey(tv, av, depth), res)
}

//hin:hot
func (t *memoTable) insert(k uint64, res bool) {
	mask := uint64(len(t.keys) - 1)
	for i := memoHash(k) & mask; ; i = (i + 1) & mask {
		if t.gens[i] != t.gen {
			t.gens[i] = t.gen
			t.keys[i] = k
			t.vals[i] = res
			t.used++
			return
		}
		if t.keys[i] == k {
			t.vals[i] = res
			return
		}
	}
}

func (t *memoTable) grow() {
	oldKeys, oldVals, oldGens := t.keys, t.vals, t.gens
	n := len(oldKeys) * 2
	t.keys = make([]uint64, n)
	t.vals = make([]bool, n)
	t.gens = make([]uint32, n)
	t.used = 0
	for i, g := range oldGens {
		if g == t.gen {
			t.insert(oldKeys[i], oldVals[i])
		}
	}
}
