package dehin

import (
	"fmt"
	"strings"

	"github.com/hinpriv/dehin/internal/bipartite"
	"github.com/hinpriv/dehin/internal/hin"
)

// NeighborPairing records one matched neighbor slot: the target's neighbor
// was explained by the auxiliary candidate's neighbor via the same link
// type.
type NeighborPairing struct {
	LinkType       hin.LinkTypeID
	TargetNeighbor hin.EntityID
	TargetStrength int32
	AuxNeighbor    hin.EntityID
	AuxStrength    int32
}

// MatchExplanation is the evidence DeHIN has for (target entity, auxiliary
// candidate): a concrete witness assignment of target neighbors to
// distinct auxiliary neighbors, per link type. It is what an analyst
// reviews before acting on a de-anonymization claim (the Section 1.1
// story: "Ada has the same social interactions with the other users of
// the same gender and age...").
type MatchExplanation struct {
	Target, Candidate hin.EntityID
	// Complete reports whether every target neighbor was matched
	// (i.e. the boolean Algorithm 2 would accept).
	Complete bool
	// Pairings is the witness assignment; unmatched target neighbors
	// appear in Unmatched.
	Pairings  []NeighborPairing
	Unmatched []NeighborPairing // AuxNeighbor fields zeroed
}

// ExplainMatch reconstructs the matching evidence for one
// (target, candidate) pair at the attack's configured distance. The
// candidate need not have been accepted; for a rejected candidate the
// explanation shows exactly which neighbor slots could not be filled.
func (a *Attack) ExplainMatch(target hin.GraphBackend, tv, av hin.EntityID) *MatchExplanation {
	ex := &MatchExplanation{Target: tv, Candidate: av, Complete: true}
	s := a.getScratch()
	defer a.putScratch(s)
	a.ensureMemo(s, target)
	tbuf, abuf := &hin.EdgeBuf{}, &hin.EdgeBuf{}
	for _, lt := range a.cfg.LinkTypes {
		tns, tws := target.OutEdgesBuf(tbuf, lt, tv)
		ans, aws := a.aux.OutEdgesBuf(abuf, lt, av)
		if len(tns) == 0 {
			continue
		}
		adj := make([][]int32, len(tns))
		for i, tb := range tns {
			for j, ab := range ans {
				if !a.lm(tws[i], aws[j]) {
					continue
				}
				if !a.em(target, a.aux, tb, ab) {
					continue
				}
				if a.cfg.MaxDistance > 1 && !a.linkMatch(s, target, a.cfg.MaxDistance-1, tb, ab) {
					continue
				}
				adj[i] = append(adj[i], int32(j))
			}
		}
		matchL, _, _ := bipartite.HopcroftKarp(bipartite.Graph{
			NLeft:  len(tns),
			NRight: len(ans),
			Adj:    adj,
		})
		for i, tb := range tns {
			if matchL[i] == bipartite.NoMatch {
				ex.Complete = false
				ex.Unmatched = append(ex.Unmatched, NeighborPairing{
					LinkType:       lt,
					TargetNeighbor: tb,
					TargetStrength: tws[i],
				})
				continue
			}
			j := matchL[i]
			ex.Pairings = append(ex.Pairings, NeighborPairing{
				LinkType:       lt,
				TargetNeighbor: tb,
				TargetStrength: tws[i],
				AuxNeighbor:    ans[j],
				AuxStrength:    aws[j],
			})
		}
	}
	return ex
}

// Render writes the explanation with human-readable labels from the two
// graphs.
func (ex *MatchExplanation) Render(target, aux hin.GraphBackend) string {
	var b strings.Builder
	fmt.Fprintf(&b, "target %q vs candidate %q: complete=%v, %d matched, %d unmatched\n",
		target.Label(ex.Target), aux.Label(ex.Candidate), ex.Complete,
		len(ex.Pairings), len(ex.Unmatched))
	name := func(lt hin.LinkTypeID) string { return aux.Schema().LinkType(lt).Name }
	for _, p := range ex.Pairings {
		fmt.Fprintf(&b, "  %s(%d): %q  <->  %s(%d): %q\n",
			name(p.LinkType), p.TargetStrength, target.Label(p.TargetNeighbor),
			name(p.LinkType), p.AuxStrength, aux.Label(p.AuxNeighbor))
	}
	for _, p := range ex.Unmatched {
		fmt.Fprintf(&b, "  %s(%d): %q  <->  UNMATCHED\n",
			name(p.LinkType), p.TargetStrength, target.Label(p.TargetNeighbor))
	}
	return b.String()
}
