package dehin

import "github.com/hinpriv/dehin/internal/obs"

// attackMetrics holds the attack's resolved metric handles; nil when
// Config.Metrics is nil (the default), which disables the whole layer.
//
// The hot path never touches these atomics directly: per-query events
// accumulate as plain integers in the queryScratch (queryStats below) and
// are flushed in one batch per query behind a single a.met != nil branch.
// That keeps the instrumented steady-state query allocation-free and the
// disabled one indistinguishable from uninstrumented code - the scratch
// increments are register-cheap and the only added control flow is the
// per-query flush branch (see DESIGN.md §5.2).
type attackMetrics struct {
	queries     *obs.Counter
	candidates  *obs.Counter
	pruned      *obs.Counter
	memoHits    *obs.Counter
	memoMisses  *obs.Counter
	matcherRuns *obs.Counter
	fallbacks   *obs.Counter
	runs        *obs.Counter
	runNs       *obs.Histogram
}

func newAttackMetrics(r *obs.Registry) *attackMetrics {
	if r == nil {
		return nil
	}
	return &attackMetrics{
		queries:     r.Counter("dehin_attack_queries_total"),
		candidates:  r.Counter("dehin_attack_profile_candidates_total"),
		pruned:      r.Counter("dehin_attack_degree_pruned_total"),
		memoHits:    r.Counter("dehin_attack_memo_hits_total"),
		memoMisses:  r.Counter("dehin_attack_memo_misses_total"),
		matcherRuns: r.Counter("dehin_attack_matcher_runs_total"),
		fallbacks:   r.Counter("dehin_attack_profile_fallbacks_total"),
		runs:        r.Counter("dehin_attack_runs_total"),
		runNs:       r.Histogram("dehin_attack_run_ns"),
	}
}

// queryStats is the scratch-local event tally of one query: candidates
// considered after profile matching, candidates rejected by the degree
// signature, memo probes served/filled, Hopcroft-Karp invocations, and
// profile-only fallbacks taken. Plain (non-atomic) fields: each scratch is
// owned by exactly one goroutine for the duration of a query.
type queryStats struct {
	candidates  int64
	pruned      int64
	memoHits    int64
	memoMisses  int64
	matcherRuns int64
	fallbacks   int64
}

// flush publishes one query's tally and resets it.
func (m *attackMetrics) flush(st *queryStats) {
	m.queries.Inc()
	m.candidates.Add(st.candidates)
	m.pruned.Add(st.pruned)
	m.memoHits.Add(st.memoHits)
	m.memoMisses.Add(st.memoMisses)
	m.matcherRuns.Add(st.matcherRuns)
	m.fallbacks.Add(st.fallbacks)
	*st = queryStats{}
}
