package tqq

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"github.com/hinpriv/dehin/internal/hin"
)

// File names of the on-disk dataset layout, mirroring the KDD Cup 2012
// track-1 release (tab-separated text, one record per line).
const (
	fileProfile     = "user_profile.txt"
	fileFollow      = "user_sns.txt" // the KDD release calls the follow file user_sns
	fileMention     = "user_mention.txt"
	fileRetweet     = "user_retweet.txt"
	fileComment     = "user_comment.txt"
	fileItems       = "item.txt"
	fileRec         = "rec_log.txt"
	fileCommunities = "communities.txt"
)

// WriteDataset persists d under dir in the KDD-Cup-like text layout:
//
//	user_profile.txt   user \t yob \t gender \t tweets \t tag;tag;...
//	user_sns.txt       follower \t followee
//	user_mention.txt   user \t user \t strength   (likewise retweet, comment)
//	item.txt           id \t name \t category
//	rec_log.txt        user \t item \t 1|-1
//	communities.txt    space-separated member labels, one community per line
//
// Users are identified by their labels, as in the real release.
func WriteDataset(d *Dataset, dir string) (err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	g := d.Graph
	schema := g.Schema()

	write := func(name string, fn func(w *bufio.Writer) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		w := bufio.NewWriter(f)
		if err := fn(w); err != nil {
			f.Close()
			return err
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}

	if err := write(fileProfile, func(w *bufio.Writer) error {
		for v := 0; v < g.NumEntities(); v++ {
			id := hin.EntityID(v)
			tags := g.Set(TagsAttr, id)
			parts := make([]string, len(tags))
			for i, t := range tags {
				parts[i] = strconv.Itoa(int(t))
			}
			if _, err := fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%s\n",
				g.Label(id), g.Attr(id, AttrYob), g.Attr(id, AttrGender),
				g.Attr(id, AttrTweets), strings.Join(parts, ";")); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}

	linkFile := map[string]string{
		LinkFollow:  fileFollow,
		LinkMention: fileMention,
		LinkRetweet: fileRetweet,
		LinkComment: fileComment,
	}
	for _, name := range LinkNames {
		lt := schema.MustLinkTypeID(name)
		weighted := schema.LinkType(lt).Weighted
		if err := write(linkFile[name], func(w *bufio.Writer) error {
			for v := 0; v < g.NumEntities(); v++ {
				tos, ws := g.OutEdges(lt, hin.EntityID(v))
				for i, to := range tos {
					if weighted {
						if _, err := fmt.Fprintf(w, "%s\t%s\t%d\n",
							g.Label(hin.EntityID(v)), g.Label(to), ws[i]); err != nil {
							return err
						}
					} else {
						if _, err := fmt.Fprintf(w, "%s\t%s\n",
							g.Label(hin.EntityID(v)), g.Label(to)); err != nil {
							return err
						}
					}
				}
			}
			return nil
		}); err != nil {
			return err
		}
	}

	if err := write(fileItems, func(w *bufio.Writer) error {
		for _, it := range d.Items {
			if _, err := fmt.Fprintf(w, "%d\t%s\t%s\n", it.ID, it.Name, it.Category); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}

	if err := write(fileRec, func(w *bufio.Writer) error {
		for _, r := range d.Rec {
			res := -1
			if r.Accepted {
				res = 1
			}
			if _, err := fmt.Fprintf(w, "%s\t%d\t%d\n", g.Label(r.User), r.Item, res); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}

	return write(fileCommunities, func(w *bufio.Writer) error {
		for _, c := range d.Communities {
			parts := make([]string, len(c))
			for i, v := range c {
				parts[i] = g.Label(v)
			}
			if _, err := fmt.Fprintln(w, strings.Join(parts, " ")); err != nil {
				return err
			}
		}
		return nil
	})
}

// LoadDataset reads a dataset previously written by WriteDataset.
func LoadDataset(dir string) (*Dataset, error) {
	schema := TargetSchema()
	b := hin.NewBuilder(schema)
	byLabel := make(map[string]hin.EntityID)

	if err := eachLine(filepath.Join(dir, fileProfile), func(lineNo int, fields []string) error {
		if len(fields) != 5 {
			return fmt.Errorf("want 5 fields, got %d", len(fields))
		}
		yob, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return fmt.Errorf("yob: %v", err)
		}
		gender, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return fmt.Errorf("gender: %v", err)
		}
		tweets, err := strconv.ParseInt(fields[3], 10, 64)
		if err != nil {
			return fmt.Errorf("tweets: %v", err)
		}
		var tags []int32
		if fields[4] != "" {
			for _, p := range strings.Split(fields[4], ";") {
				t, err := strconv.ParseInt(p, 10, 32)
				if err != nil {
					return fmt.Errorf("tag %q: %v", p, err)
				}
				tags = append(tags, int32(t))
			}
		}
		if _, dup := byLabel[fields[0]]; dup {
			return fmt.Errorf("duplicate user %q", fields[0])
		}
		id := b.AddEntity(0, fields[0], yob, gender, tweets, int64(len(tags)))
		if len(tags) > 0 {
			b.SetSet(TagsAttr, id, tags)
		}
		byLabel[fields[0]] = id
		return nil
	}); err != nil {
		return nil, err
	}

	resolve := func(label string) (hin.EntityID, error) {
		id, ok := byLabel[label]
		if !ok {
			return 0, fmt.Errorf("unknown user %q", label)
		}
		return id, nil
	}

	linkFile := map[string]string{
		LinkFollow:  fileFollow,
		LinkMention: fileMention,
		LinkRetweet: fileRetweet,
		LinkComment: fileComment,
	}
	for _, name := range LinkNames {
		lt := schema.MustLinkTypeID(name)
		weighted := schema.LinkType(lt).Weighted
		if err := eachLine(filepath.Join(dir, linkFile[name]), func(lineNo int, fields []string) error {
			want := 2
			if weighted {
				want = 3
			}
			if len(fields) != want {
				return fmt.Errorf("want %d fields, got %d", want, len(fields))
			}
			from, err := resolve(fields[0])
			if err != nil {
				return err
			}
			to, err := resolve(fields[1])
			if err != nil {
				return err
			}
			w := int32(1)
			if weighted {
				x, err := strconv.ParseInt(fields[2], 10, 32)
				if err != nil {
					return fmt.Errorf("strength: %v", err)
				}
				w = int32(x)
			}
			return b.AddEdge(lt, from, to, w)
		}); err != nil {
			return nil, err
		}
	}

	d := &Dataset{}
	if err := eachLine(filepath.Join(dir, fileItems), func(lineNo int, fields []string) error {
		if len(fields) != 3 {
			return fmt.Errorf("want 3 fields, got %d", len(fields))
		}
		id, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return fmt.Errorf("item id: %v", err)
		}
		d.Items = append(d.Items, Item{ID: int32(id), Name: fields[1], Category: fields[2]})
		return nil
	}); err != nil {
		return nil, err
	}

	if err := eachLine(filepath.Join(dir, fileRec), func(lineNo int, fields []string) error {
		if len(fields) != 3 {
			return fmt.Errorf("want 3 fields, got %d", len(fields))
		}
		u, err := resolve(fields[0])
		if err != nil {
			return err
		}
		item, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return fmt.Errorf("item: %v", err)
		}
		d.Rec = append(d.Rec, RecEntry{User: u, Item: int32(item), Accepted: fields[2] == "1"})
		return nil
	}); err != nil {
		return nil, err
	}

	if err := eachLineSep(filepath.Join(dir, fileCommunities), " ", func(lineNo int, fields []string) error {
		var ids []hin.EntityID
		for _, label := range fields {
			id, err := resolve(label)
			if err != nil {
				return err
			}
			ids = append(ids, id)
		}
		d.Communities = append(d.Communities, ids)
		return nil
	}); err != nil {
		return nil, err
	}

	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	d.Graph = g
	return d, nil
}

// eachLine streams a tab-separated file line by line.
func eachLine(path string, fn func(lineNo int, fields []string) error) error {
	return eachLineSep(path, "\t", fn)
}

func eachLineSep(path, sep string, fn func(lineNo int, fields []string) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if err := fn(lineNo, strings.Split(line, sep)); err != nil {
			return fmt.Errorf("%s:%d: %v", filepath.Base(path), lineNo, err)
		}
	}
	return sc.Err()
}
