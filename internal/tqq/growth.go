package tqq

import (
	"fmt"

	"github.com/hinpriv/dehin/internal/hin"
	"github.com/hinpriv/dehin/internal/randx"
)

// GrowthConfig models the paper's Section 5.1 threat model: the adversary
// crawls the auxiliary network some time after the target dataset was
// released, so the auxiliary is a superset - it "contains all the target
// users and links among them" plus new users, new links, and grown
// monotone counters (tweet count, mention/retweet/comment strengths).
type GrowthConfig struct {
	// NewUsers users are appended (original ids stay stable, which is
	// what keeps the ground truth the identity map on old ids).
	NewUsers int
	// NewEdgeFrac adds, per link type, this fraction of the existing edge
	// count as brand-new edges with random endpoints.
	NewEdgeFrac float64
	// StrengthGrowProb is the chance each existing weighted edge gains
	// additional interactions (a geometric increment).
	StrengthGrowProb float64
	// TweetGrowProb is the chance each user's tweet count grows.
	TweetGrowProb float64
	// TagAddProb is the chance a user acquires one extra tag (tag sets
	// only grow; the matcher treats target tags as a subset requirement).
	TagAddProb float64
	// Seed drives the growth randomness.
	Seed uint64
}

// DefaultGrowth returns a moderate growth configuration: ~5% new users,
// ~10% new edges, and gentle counter growth.
func DefaultGrowth(seed uint64) GrowthConfig {
	return GrowthConfig{
		NewUsers:         0, // set proportionally by callers that want it
		NewEdgeFrac:      0.10,
		StrengthGrowProb: 0.15,
		TweetGrowProb:    0.30,
		TagAddProb:       0.05,
		Seed:             seed,
	}
}

// Grow returns a new dataset representing the auxiliary crawl: a strict
// superset of d in users and links, with monotonically grown counters.
// Entity ids of d are preserved, so d's id i denotes the same individual
// in the grown dataset.
func Grow(d *Dataset, cfg Config, gcfg GrowthConfig) (*Dataset, error) {
	if gcfg.NewUsers < 0 || gcfg.NewEdgeFrac < 0 {
		return nil, fmt.Errorf("tqq: negative growth")
	}
	rng := randx.New(gcfg.Seed)
	g := d.Graph
	schema := g.Schema()
	n := g.NumEntities()
	b := hin.NewBuilder(schema)

	gender, err := randx.NewAlias(cfg.GenderWeights)
	if err != nil {
		return nil, err
	}
	tagPop, err := randx.NewAlias(randx.ZipfWeights(cfg.TagUniverse, cfg.TagZipf))
	if err != nil {
		return nil, err
	}

	// Existing users: copy, with grown counters and possibly a new tag.
	prng := rng.Split(1)
	for v := 0; v < n; v++ {
		id := hin.EntityID(v)
		yob := g.Attr(id, AttrYob)
		gen := g.Attr(id, AttrGender)
		tweets := g.Attr(id, AttrTweets)
		if prng.Bool(gcfg.TweetGrowProb) {
			tweets += int64(prng.Geometric(0.05)) // mean 20 new tweets
		}
		tags := append([]int32(nil), g.Set(TagsAttr, id)...)
		if prng.Bool(gcfg.TagAddProb) && len(tags) < cfg.TagUniverse {
			for {
				t := int32(tagPop.Sample(prng))
				if !containsInt32(tags, t) {
					tags = append(tags, t)
					break
				}
			}
		}
		nid := b.AddEntity(0, g.Label(id), yob, gen, tweets, int64(len(tags)))
		if len(tags) > 0 {
			b.SetSet(TagsAttr, nid, tags)
		}
	}
	// New users.
	for v := 0; v < gcfg.NewUsers; v++ {
		yob := int64(prng.IntRange(cfg.YearMin, cfg.YearMax))
		gen := int64(gender.Sample(prng))
		tweets := int64(prng.LogUniformInt(0, cfg.TweetCountMax))
		ntags := prng.Intn(cfg.MaxTags + 1)
		nid := b.AddEntity(0, fmt.Sprintf("g%07d", v), yob, gen, tweets, int64(ntags))
		if ntags > 0 {
			tags := make([]int32, 0, ntags)
			for len(tags) < ntags {
				t := int32(tagPop.Sample(prng))
				if !containsInt32(tags, t) {
					tags = append(tags, t)
				}
			}
			b.SetSet(TagsAttr, nid, tags)
		}
	}

	total := n + gcfg.NewUsers
	erng := rng.Split(2)
	for lt := 0; lt < schema.NumLinkTypes(); lt++ {
		ltid := hin.LinkTypeID(lt)
		weighted := schema.LinkType(ltid).Weighted
		// Copy existing edges with possible strength growth.
		for v := 0; v < n; v++ {
			tos, ws := g.OutEdges(ltid, hin.EntityID(v))
			for i, to := range tos {
				w := ws[i]
				if weighted && erng.Bool(gcfg.StrengthGrowProb) {
					w += int32(erng.Geometric(0.5))
				}
				if err := b.AddEdge(ltid, hin.EntityID(v), to, w); err != nil {
					return nil, err
				}
			}
		}
		// New edges anywhere in the grown network.
		extra := int64(float64(g.NumEdges(ltid)) * gcfg.NewEdgeFrac)
		for e := int64(0); e < extra; e++ {
			from := hin.EntityID(erng.Intn(total))
			to := hin.EntityID(erng.Intn(total))
			if from == to {
				continue
			}
			w := int32(1)
			if weighted {
				w = strength(cfg, erng)
			}
			if err := b.AddEdge(ltid, from, to, w); err != nil {
				return nil, err
			}
		}
	}
	ng, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Dataset{
		Graph:       ng,
		Items:       d.Items,
		Rec:         d.Rec,
		Communities: d.Communities,
	}, nil
}

func containsInt32(s []int32, v int32) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
