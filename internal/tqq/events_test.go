package tqq

import (
	"testing"

	"github.com/hinpriv/dehin/internal/hin"
)

func TestGenerateEventsAndProject(t *testing.T) {
	cfg := DefaultEventConfig(120, 33)
	g, err := GenerateEvents(cfg)
	if err != nil {
		t.Fatal(err)
	}
	userType, _ := g.Schema().EntityTypeID("User")
	users := g.EntitiesOfType(userType)
	if len(users) != 120 {
		t.Fatalf("users = %d", len(users))
	}
	if g.NumEntities() <= 120 {
		t.Fatal("no tweet/comment entities generated")
	}

	pg, origs, err := ProjectEvents(g)
	if err != nil {
		t.Fatal(err)
	}
	if pg.NumEntities() != 120 || len(origs) != 120 {
		t.Fatalf("projected users = %d", pg.NumEntities())
	}
	// The projected schema carries the four target link types.
	for _, name := range LinkNames {
		if _, ok := pg.Schema().LinkTypeID(name); !ok {
			t.Fatalf("projected schema missing %q", name)
		}
	}
	// Profiles survive projection.
	for i, orig := range origs {
		if pg.Attr(hin.EntityID(i), AttrYob) != g.Attr(orig, AttrYob) {
			t.Fatalf("yob lost for user %d", i)
		}
	}
	// Some heterogeneous links must exist.
	mention := pg.Schema().MustLinkTypeID(LinkMention)
	follow := pg.Schema().MustLinkTypeID(LinkFollow)
	if pg.NumEdges(mention) == 0 {
		t.Fatal("no short-circuited mention links")
	}
	if pg.NumEdges(follow) == 0 {
		t.Fatal("no reproduced follow links")
	}
}

// TestProjectionMatchesManualCount cross-checks one user's short-circuited
// mention strength against a hand count over the event graph.
func TestProjectionMatchesManualCount(t *testing.T) {
	cfg := DefaultEventConfig(60, 9)
	g, err := GenerateEvents(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pg, origs, err := ProjectEvents(g)
	if err != nil {
		t.Fatal(err)
	}
	s := g.Schema()
	post := s.MustLinkTypeID("post")
	postc := s.MustLinkTypeID("post_comment")
	tmention := s.MustLinkTypeID("tweet_mention")
	cmention := s.MustLinkTypeID("comment_mention")

	mention := pg.Schema().MustLinkTypeID(LinkMention)
	back := make(map[hin.EntityID]hin.EntityID, len(origs))
	for i, o := range origs {
		back[o] = hin.EntityID(i)
	}
	for pi, orig := range origs {
		want := make(map[hin.EntityID]int32)
		tos, _ := g.OutEdges(post, orig)
		for _, tw := range tos {
			ms, _ := g.OutEdges(tmention, tw)
			for _, m := range ms {
				want[back[m]]++
			}
		}
		cs, _ := g.OutEdges(postc, orig)
		for _, c := range cs {
			ms, _ := g.OutEdges(cmention, c)
			for _, m := range ms {
				want[back[m]]++
			}
		}
		gts, gws := pg.OutEdges(mention, hin.EntityID(pi))
		if len(gts) != len(want) {
			t.Fatalf("user %d: %d mention edges, want %d", pi, len(gts), len(want))
		}
		for i, to := range gts {
			if want[to] != gws[i] {
				t.Fatalf("user %d -> %d: strength %d, want %d", pi, to, gws[i], want[to])
			}
		}
	}
}

func TestGenerateEventsErrors(t *testing.T) {
	cfg := DefaultEventConfig(1, 1)
	if _, err := GenerateEvents(cfg); err == nil {
		t.Fatal("single-user event network accepted")
	}
	cfg = DefaultEventConfig(10, 1)
	cfg.TweetsPerUser = 0
	cfg.CommentsPerUser = 0
	if _, err := GenerateEvents(cfg); err == nil {
		t.Fatal("tweetless network accepted")
	}
}

func TestEventSchemaProjectsToTargetSchema(t *testing.T) {
	ps, err := hin.ProjectSchema(EventSchema(), "User", TargetMetaPaths())
	if err != nil {
		t.Fatal(err)
	}
	want := TargetSchema()
	if ps.NumLinkTypes() != want.NumLinkTypes() {
		t.Fatalf("projected link types = %d, want %d", ps.NumLinkTypes(), want.NumLinkTypes())
	}
	for _, name := range LinkNames {
		pid, ok := ps.LinkTypeID(name)
		if !ok {
			t.Fatalf("missing %q", name)
		}
		wid := want.MustLinkTypeID(name)
		if ps.LinkType(pid).Weighted != want.LinkType(wid).Weighted {
			t.Fatalf("%q weightedness differs", name)
		}
	}
}
