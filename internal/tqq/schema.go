// Package tqq synthesizes t.qq-style heterogeneous information networks
// standing in for the proprietary KDD Cup 2012 Tencent Weibo dataset the
// paper evaluates on. The generator is calibrated to every statistic the
// paper reports (Section 6.1): four directed user-user link types (follow,
// mention, retweet, comment) with integer strengths, power-law out-degrees,
// profile attribute cardinalities of roughly 3 (gender), 87 (year of
// birth), 643 (tweet count among 1000 users) and 11 (number of tags), a
// recommendation preference log, and planted 1000-user communities of
// controlled Equation-4 density for use as target graphs.
//
// The package also provides an event-level generator (users, tweets,
// comments as entities; post/mention/retweet/comment links among them)
// whose hin.ProjectGraph projection reproduces the same target network
// schema, exercising the paper's meta-path machinery end to end.
package tqq

import "github.com/hinpriv/dehin/internal/hin"

// Attribute positions within the User entity type, in declaration order.
const (
	AttrYob = iota
	AttrGender
	AttrTweets
	AttrNumTags
)

// TagsAttr names the multi-valued tag-ID attribute of users.
const TagsAttr = "tags"

// Link type names of the target network schema (paper Figure 3).
const (
	LinkFollow  = "follow"
	LinkMention = "mention"
	LinkRetweet = "retweet"
	LinkComment = "comment"
)

// LinkNames lists the four target-schema link types in canonical order.
var LinkNames = []string{LinkFollow, LinkMention, LinkRetweet, LinkComment}

// TargetSchema returns the target network schema of the paper's Figure 3:
// a single User entity type with yob, gender, tweet count and number-of-
// tags scalar attributes plus the tag-ID set, connected by the follow link
// and the three short-circuited links (mention, retweet, comment) whose
// strengths are the short-circuited features.
func TargetSchema() *hin.Schema {
	return hin.MustSchema(
		[]hin.EntityType{{
			Name:     "User",
			Attrs:    []string{"yob", "gender", "tweets", "numtags"},
			SetAttrs: []string{TagsAttr},
		}},
		[]hin.LinkType{
			{Name: LinkFollow, From: "User", To: "User"},
			{Name: LinkMention, From: "User", To: "User", Weighted: true},
			{Name: LinkRetweet, From: "User", To: "User", Weighted: true},
			{Name: LinkComment, From: "User", To: "User", Weighted: true},
		},
	)
}

// EventSchema returns the full network schema of the paper's Figure 2
// (trimmed to the entities the released dataset describes): users post
// tweets and comments; tweets and comments mention users; tweets retweet
// tweets; comments comment on tweets or comments.
func EventSchema() *hin.Schema {
	return hin.MustSchema(
		[]hin.EntityType{
			{
				Name:     "User",
				Attrs:    []string{"yob", "gender", "tweets", "numtags"},
				SetAttrs: []string{TagsAttr},
			},
			{Name: "Tweet"},
			{Name: "Comment"},
		},
		[]hin.LinkType{
			{Name: "post", From: "User", To: "Tweet"},
			{Name: "post_comment", From: "User", To: "Comment"},
			{Name: "tweet_mention", From: "Tweet", To: "User"},
			{Name: "comment_mention", From: "Comment", To: "User"},
			{Name: "retweet_of", From: "Tweet", To: "Tweet"},
			{Name: "comment_on", From: "Comment", To: "Tweet"},
			{Name: LinkFollow, From: "User", To: "User"},
		},
	)
}

// TargetMetaPaths returns the paper's Section 3 target meta paths over
// EventSchema: the user mention path (via tweets or comments), the user
// retweet path, the user comment path, and the reproduced follow path.
// Projecting EventSchema along these paths yields TargetSchema.
func TargetMetaPaths() []hin.MetaPath {
	return []hin.MetaPath{
		{Name: LinkFollow, Steps: []hin.Step{{Link: LinkFollow}}},
		{Name: LinkMention, Steps: []hin.Step{{Link: "post"}, {Link: "tweet_mention"}}},
		{Name: LinkMention, Steps: []hin.Step{{Link: "post_comment"}, {Link: "comment_mention"}}},
		{Name: LinkRetweet, Steps: []hin.Step{{Link: "post"}, {Link: "retweet_of"}, {Link: "post", Reverse: true}}},
		{Name: LinkComment, Steps: []hin.Step{{Link: "post_comment"}, {Link: "comment_on"}, {Link: "post", Reverse: true}}},
	}
}
