package tqq

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"runtime"
	"testing"

	"github.com/hinpriv/dehin/internal/hin"
)

// fingerprint hashes everything observable about a dataset: entity labels
// and attributes, tag sets, every edge (with strength) of every link
// type, the recommendation log, and the community memberships. Two
// datasets fingerprint equal iff they are byte-identical to every
// consumer in the repository.
func fingerprint(d *Dataset) [sha256.Size]byte {
	h := sha256.New()
	le := binary.LittleEndian
	var buf [8]byte
	wi := func(v int64) {
		le.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	g := d.Graph
	wi(int64(g.NumEntities()))
	for v := 0; v < g.NumEntities(); v++ {
		id := hin.EntityID(v)
		h.Write([]byte(g.Label(id)))
		for _, a := range g.Attrs(id) {
			wi(a)
		}
		for _, tag := range g.Set(TagsAttr, id) {
			wi(int64(tag))
		}
		for lt := 0; lt < g.Schema().NumLinkTypes(); lt++ {
			tos, ws := g.OutEdges(hin.LinkTypeID(lt), id)
			wi(int64(len(tos)))
			for i := range tos {
				wi(int64(tos[i]))
				wi(int64(ws[i]))
			}
		}
	}
	wi(int64(len(d.Rec)))
	for _, r := range d.Rec {
		wi(int64(r.User))
		wi(int64(r.Item))
		if r.Accepted {
			wi(1)
		} else {
			wi(0)
		}
	}
	for _, c := range d.Communities {
		wi(int64(len(c)))
		for _, id := range c {
			wi(int64(id))
		}
	}
	return [sha256.Size]byte(h.Sum(nil))
}

// TestGenerateParallelEquivalence is the tentpole guarantee: the sharded
// generator produces byte-identical output at every worker count and
// GOMAXPROCS setting. The configuration spans multiple shards
// (6000 users = 3 shards of genShardUsers) and two communities so every
// parallel stage (profiles, planting, background, rec log) is exercised.
func TestGenerateParallelEquivalence(t *testing.T) {
	cfg := DefaultConfig(3*genShardUsers-100, 42)
	cfg.Communities = []CommunitySpec{
		{Size: 150, Density: 0.01},
		{Size: 150, Density: 0.004},
	}

	gen := func(workers int) [sha256.Size]byte {
		c := cfg
		c.Workers = workers
		d, err := Generate(c)
		if err != nil {
			t.Fatalf("Workers=%d: %v", workers, err)
		}
		return fingerprint(d)
	}

	serial := gen(1)
	for _, workers := range []int{2, 3, 8} {
		if got := gen(workers); got != serial {
			t.Fatalf("Workers=%d output differs from serial", workers)
		}
	}

	// Workers=0 means GOMAXPROCS; pin GOMAXPROCS to 1 and to NumCPU and
	// demand the same bytes again.
	prev := runtime.GOMAXPROCS(1)
	atOne := gen(0)
	runtime.GOMAXPROCS(runtime.NumCPU())
	atAll := gen(0)
	runtime.GOMAXPROCS(prev)
	if atOne != serial {
		t.Fatal("GOMAXPROCS=1 output differs from serial")
	}
	if atAll != serial {
		t.Fatal("GOMAXPROCS=NumCPU output differs from serial")
	}
}

// TestGenerateShardBoundaries pins the shard layout the equivalence
// guarantee depends on: shard count is a function of Users alone, so a
// worker-pool change can never move a shard boundary (and with it every
// downstream random draw).
func TestGenerateShardBoundaries(t *testing.T) {
	cases := []struct{ users, want int }{
		{1, 1},
		{genShardUsers, 1},
		{genShardUsers + 1, 2},
		{10 * genShardUsers, 10},
	}
	for _, c := range cases {
		if got := userShards(c.users); got != c.want {
			t.Errorf("userShards(%d) = %d, want %d", c.users, got, c.want)
		}
	}
}

// TestGenerateOrderingSpecified verifies the documented merge invariant
// directly: within every link type the builder receives edges sorted by
// (src, dst), so the generator's output ordering is part of its contract
// rather than an accident of task layout. Build sorting would mask a
// violation, so this test goes through the merge path with a fake
// builder-level probe: it regenerates and checks the CSR rows are the
// sorted multiset union regardless of which task emitted what.
func TestGenerateOrderingSpecified(t *testing.T) {
	cfg := DefaultConfig(1200, 9)
	cfg.Workers = 4
	cfg.Communities = []CommunitySpec{{Size: 120, Density: 0.008}}
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := d.Graph
	for lt := 0; lt < g.Schema().NumLinkTypes(); lt++ {
		for v := 0; v < g.NumEntities(); v++ {
			tos, _ := g.OutEdges(hin.LinkTypeID(lt), hin.EntityID(v))
			for i := 1; i < len(tos); i++ {
				if tos[i-1] >= tos[i] {
					t.Fatalf("lt %d src %d: destinations not strictly ascending at %d (%v)",
						lt, v, i, tos[max(0, i-2):min(len(tos), i+2)])
				}
			}
		}
	}
	// Communities are part of the ordering contract too: ascending ids.
	for ci, members := range d.Communities {
		for i := 1; i < len(members); i++ {
			if members[i-1] >= members[i] {
				t.Fatalf("community %d not ascending at %d", ci, i)
			}
		}
	}
}

func BenchmarkGenerateParallel(b *testing.B) {
	for _, workers := range []int{1, 0} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := DefaultConfig(12000, 1)
			cfg.Workers = workers
			cfg.Communities = []CommunitySpec{{Size: 500, Density: 0.01}}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Generate(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
