package tqq

import (
	"fmt"

	"github.com/hinpriv/dehin/internal/hin"
	"github.com/hinpriv/dehin/internal/randx"
)

// Target is a released target graph: the induced subgraph on a user sample
// together with the ground-truth map back into the dataset it was sampled
// from. Orig[i] is the dataset entity behind target entity i; experiments
// use it only to score attacks, never inside them.
type Target struct {
	Graph *hin.Graph
	Orig  []hin.EntityID
}

// SampleTarget returns the target graph induced by the given dataset users,
// mirroring the paper's sampling ("vertices are randomly sampled and all
// the edges among them are preserved").
func SampleTarget(d *Dataset, users []hin.EntityID) (*Target, error) {
	g, orig, err := d.Graph.Induced(users)
	if err != nil {
		return nil, err
	}
	return &Target{Graph: g, Orig: orig}, nil
}

// RandomSample draws size users uniformly without replacement and returns
// the induced target graph.
func RandomSample(d *Dataset, size int, rng *randx.RNG) (*Target, error) {
	n := d.Graph.NumEntities()
	if size > n {
		return nil, fmt.Errorf("tqq: sample size %d exceeds dataset size %d", size, n)
	}
	idx := rng.SampleWithoutReplacement(n, size)
	users := make([]hin.EntityID, size)
	for i, v := range idx {
		users[i] = hin.EntityID(v)
	}
	return SampleTarget(d, users)
}

// CommunityTarget returns the target graph induced by planted community i,
// with members presented in a random order so target entity ids carry no
// information about dataset ids.
func CommunityTarget(d *Dataset, i int, rng *randx.RNG) (*Target, error) {
	if i < 0 || i >= len(d.Communities) {
		return nil, fmt.Errorf("tqq: no community %d (have %d)", i, len(d.Communities))
	}
	members := append([]hin.EntityID(nil), d.Communities[i]...)
	rng.Shuffle(len(members), func(a, b int) {
		members[a], members[b] = members[b], members[a]
	})
	return SampleTarget(d, members)
}

// RecFor returns the recommendation log entries of dataset user u.
func (d *Dataset) RecFor(u hin.EntityID) []RecEntry {
	var out []RecEntry
	for _, r := range d.Rec {
		if r.User == u {
			out = append(out, r)
		}
	}
	return out
}

// ItemByName resolves an item by its name; ok is false if absent.
func (d *Dataset) ItemByName(name string) (Item, bool) {
	for _, it := range d.Items {
		if it.Name == name {
			return it, true
		}
	}
	return Item{}, false
}
