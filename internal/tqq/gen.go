package tqq

import (
	"fmt"
	"sort"

	"github.com/hinpriv/dehin/internal/hin"
	"github.com/hinpriv/dehin/internal/randx"
)

// CommunitySpec requests one planted community: Size users whose induced
// subgraph has exactly the Equation-4 density Density (up to rounding to a
// whole number of edges). Planted communities play the role of the paper's
// sampled 1000-vertex target graphs of known density.
type CommunitySpec struct {
	Size    int
	Density float64
}

// Config parameterizes the synthetic t.qq generator. The zero value is not
// usable; start from DefaultConfig.
type Config struct {
	// Users is the total number of user entities (the paper's auxiliary
	// network has 2,320,895; experiments here default to a scaled-down
	// network and record the size used).
	Users int
	// Seed drives all generator randomness.
	Seed uint64

	// YearMin and YearMax bound the year-of-birth attribute; the default
	// span of 87 years matches the paper's reported yob cardinality.
	YearMin, YearMax int
	// GenderWeights give the relative frequency of the gender codes
	// 0..len-1. Three codes match the paper's gender cardinality of 3.
	GenderWeights []float64
	// TweetCountMax bounds the log-uniform tweet-count attribute. The
	// default of 30000 yields ~640 distinct values per 1000 users,
	// matching the paper's tweet-count cardinality of 643.
	TweetCountMax int
	// TagUniverse is the number of distinct tag IDs; MaxTags the largest
	// per-user tag-set size (uniform 0..MaxTags gives the paper's
	// number-of-tags cardinality of MaxTags+1 = 11); TagZipf the skew of
	// tag popularity.
	TagUniverse int
	MaxTags     int
	TagZipf     float64

	// BackgroundAvgOutDeg is the mean out-degree per link type of the
	// background (non-community) edge process; DegreeAlpha its power-law
	// exponent and DegreeMax the largest raw degree draw.
	BackgroundAvgOutDeg float64
	DegreeAlpha         float64
	DegreeMax           int

	// StrengthP is the geometric parameter for link strengths (mention/
	// retweet/comment counts); StrengthMax caps them.
	StrengthP   float64
	StrengthMax int

	// ZeroOutFrac is the MINIMUM fraction of community members with no
	// out-edges of a given link type. Real induced samples of social
	// networks have a sizable per-type isolated population - it is what
	// keeps the paper's single-link-type risk at ~84-90% rather than
	// ~100% at distance 1 (isolated users collide on profile features
	// alone). At low densities the effective zero fraction grows well
	// beyond this floor: edges concentrate on a heavy tail (see
	// DegreeTailAlpha) and most members end up isolated, exactly like a
	// sparse induced sample of a power-law graph.
	ZeroOutFrac float64
	// DegreeTailAlpha is the power-law exponent of non-isolated community
	// members' out-degrees. The planter keeps this tail shape fixed and
	// absorbs low edge budgets by enlarging the isolated population; only
	// when the budget exceeds what the tail can carry at the minimum zero
	// fraction does the exponent decrease.
	DegreeTailAlpha float64

	// Communities are the planted target blocks.
	Communities []CommunitySpec

	// Items is the number of recommendable items; RecPerUser the average
	// number of recommendation log entries per user.
	Items      int
	RecPerUser int
}

// DefaultConfig returns a configuration calibrated to the paper's reported
// dataset statistics, with users scaled down from 2.3M to the given count.
func DefaultConfig(users int, seed uint64) Config {
	return Config{
		Users:               users,
		Seed:                seed,
		YearMin:             1920,
		YearMax:             2006, // 87 distinct years
		GenderWeights:       []float64{0.52, 0.42, 0.06},
		TweetCountMax:       30000,
		TagUniverse:         500,
		MaxTags:             10,
		TagZipf:             1.1,
		BackgroundAvgOutDeg: 6.5,
		DegreeAlpha:         2.3,
		DegreeMax:           300,
		StrengthP:           0.35,
		StrengthMax:         60,
		ZeroOutFrac:         0.10,
		DegreeTailAlpha:     1.8,
		Items:               200,
		RecPerUser:          3,
	}
}

// Item is a recommendable entity from the recommendation log (the paper's
// motivating example uses bank-account recommendations).
type Item struct {
	ID       int32
	Name     string
	Category string
}

// RecEntry is one recommendation preference log record: the user was shown
// the item and accepted or rejected it. This is the sensitive payload the
// adversary is after.
type RecEntry struct {
	User     hin.EntityID
	Item     int32
	Accepted bool
}

// Dataset bundles a generated network with its recommendation log and the
// planted community memberships.
type Dataset struct {
	Graph *hin.Graph
	Items []Item
	Rec   []RecEntry
	// Communities[i] lists the user ids of the i-th requested community,
	// in ascending order.
	Communities [][]hin.EntityID
}

// Generate synthesizes a dataset per cfg. It returns an error if the
// configuration is inconsistent (too few users for the requested
// communities, bad ranges, or a community density that exceeds 1).
func Generate(cfg Config) (*Dataset, error) {
	if err := validate(&cfg); err != nil {
		return nil, err
	}
	rng := randx.New(cfg.Seed)
	schema := TargetSchema()
	b := hin.NewBuilder(schema)

	genProfiles(b, cfg, rng.Split(1))

	// Reserve community members: disjoint random user sets.
	comms, inCommunity, err := placeCommunities(cfg, rng.Split(2))
	if err != nil {
		return nil, err
	}
	for i, spec := range cfg.Communities {
		if err := plantCommunity(b, schema, spec, comms[i], cfg, rng.Split(uint64(10+i))); err != nil {
			return nil, err
		}
	}
	genBackground(b, schema, cfg, inCommunity, rng.Split(3))

	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	items, rec := genRecLog(cfg, rng.Split(4))
	return &Dataset{Graph: g, Items: items, Rec: rec, Communities: comms}, nil
}

func validate(cfg *Config) error {
	if cfg.Users < 1 {
		return fmt.Errorf("tqq: Users must be positive, got %d", cfg.Users)
	}
	if cfg.YearMax < cfg.YearMin {
		return fmt.Errorf("tqq: YearMax %d < YearMin %d", cfg.YearMax, cfg.YearMin)
	}
	if len(cfg.GenderWeights) == 0 {
		return fmt.Errorf("tqq: GenderWeights empty")
	}
	if cfg.TweetCountMax < 0 || cfg.MaxTags < 0 || cfg.TagUniverse < cfg.MaxTags {
		return fmt.Errorf("tqq: invalid profile ranges")
	}
	if cfg.StrengthP <= 0 || cfg.StrengthP > 1 {
		return fmt.Errorf("tqq: StrengthP must be in (0,1], got %g", cfg.StrengthP)
	}
	if cfg.StrengthMax < 1 {
		return fmt.Errorf("tqq: StrengthMax must be >= 1")
	}
	if cfg.ZeroOutFrac < 0 || cfg.ZeroOutFrac >= 1 {
		return fmt.Errorf("tqq: ZeroOutFrac must be in [0,1), got %g", cfg.ZeroOutFrac)
	}
	if cfg.DegreeTailAlpha <= 1 {
		return fmt.Errorf("tqq: DegreeTailAlpha must be > 1, got %g", cfg.DegreeTailAlpha)
	}
	total := 0
	for i, c := range cfg.Communities {
		if c.Size < 2 {
			return fmt.Errorf("tqq: community %d size %d too small", i, c.Size)
		}
		if c.Density < 0 || c.Density > 1 {
			return fmt.Errorf("tqq: community %d density %g out of [0,1]", i, c.Density)
		}
		total += c.Size
	}
	if total > cfg.Users {
		return fmt.Errorf("tqq: communities need %d users, only %d available", total, cfg.Users)
	}
	return nil
}

// genProfiles adds all user entities with calibrated profile attributes.
func genProfiles(b *hin.Builder, cfg Config, rng *randx.RNG) {
	gender, err := randx.NewAlias(cfg.GenderWeights)
	if err != nil {
		panic(err) // validated already
	}
	tagPop, err := randx.NewAlias(randx.ZipfWeights(cfg.TagUniverse, cfg.TagZipf))
	if err != nil {
		panic(err)
	}
	for i := 0; i < cfg.Users; i++ {
		yob := int64(rng.IntRange(cfg.YearMin, cfg.YearMax))
		gen := int64(gender.Sample(rng))
		tweets := int64(rng.LogUniformInt(0, cfg.TweetCountMax))
		ntags := rng.Intn(cfg.MaxTags + 1)
		id := b.AddEntity(0, fmt.Sprintf("u%07d", i), yob, gen, tweets, int64(ntags))
		if ntags > 0 {
			tags := make([]int32, 0, ntags)
			seen := make(map[int32]bool, ntags)
			for len(tags) < ntags {
				t := int32(tagPop.Sample(rng))
				if !seen[t] {
					seen[t] = true
					tags = append(tags, t)
				}
			}
			b.SetSet(TagsAttr, id, tags)
		}
	}
}

// placeCommunities picks disjoint random user sets for the requested
// communities and returns them (each ascending) plus a membership mask.
func placeCommunities(cfg Config, rng *randx.RNG) ([][]hin.EntityID, []bool, error) {
	total := 0
	for _, c := range cfg.Communities {
		total += c.Size
	}
	inCommunity := make([]bool, cfg.Users)
	if total == 0 {
		return nil, inCommunity, nil
	}
	pool := rng.SampleWithoutReplacement(cfg.Users, total)
	comms := make([][]hin.EntityID, len(cfg.Communities))
	at := 0
	for i, c := range cfg.Communities {
		ids := make([]hin.EntityID, c.Size)
		for j := 0; j < c.Size; j++ {
			ids[j] = hin.EntityID(pool[at])
			inCommunity[pool[at]] = true
			at++
		}
		sortEntityIDs(ids)
		comms[i] = ids
	}
	return comms, inCommunity, nil
}

// plantCommunity adds intra-community edges so that the induced subgraph on
// members has exactly the spec'd Equation-4 density. The edge budget is
// split evenly across link types (remainder to the earliest types) and each
// type's edges follow a power-law out-degree profile within the block.
func plantCommunity(b *hin.Builder, schema *hin.Schema, spec CommunitySpec, members []hin.EntityID, cfg Config, rng *randx.RNG) error {
	nTypes := schema.NumLinkTypes()
	budget := int64(spec.Density*float64(hin.MaxEdges(schema, spec.Size)) + 0.5)
	maxPerType := int64(spec.Size) * int64(spec.Size-1)
	for lt := 0; lt < nTypes; lt++ {
		share := budget / int64(nTypes)
		if int64(lt) < budget%int64(nTypes) {
			share++
		}
		if share > maxPerType {
			return fmt.Errorf("tqq: community density %g overfills link type %d", spec.Density, lt)
		}
		if err := plantTypeEdges(b, schema, hin.LinkTypeID(lt), members, share, cfg, rng.Split(uint64(lt))); err != nil {
			return err
		}
	}
	return nil
}

// plantTypeEdges adds exactly budget edges of one link type among members.
// A ZeroOutFrac share of members gets no out-edges of this type (induced
// social-network samples always have a per-type isolated population); the
// rest draw out-degree quotas from a power law whose exponent is solved so
// the expected total meets the budget, preserving the real skew - a mass
// of degree-1-and-2 users plus a heavy tail - at every density. Each
// source gets distinct destinations, so no duplicates arise and the edge
// count is exact after a small random repair.
func plantTypeEdges(b *hin.Builder, schema *hin.Schema, lt hin.LinkTypeID, members []hin.EntityID, budget int64, cfg Config, rng *randx.RNG) error {
	if budget == 0 {
		return nil
	}
	size := len(members)
	// Decide the isolated fraction: keep the degree tail's shape fixed
	// and let sparsity enlarge the zero population, as in real induced
	// samples. zeroFrac = 1 - budget/(size * tailMean), floored at
	// cfg.ZeroOutFrac; if the budget exceeds what the tail carries at the
	// floor, the tail is made heavier instead (powerLawWithMean).
	tail, err := randx.NewPowerLaw(1, size-1, cfg.DegreeTailAlpha)
	if err != nil {
		return err
	}
	wantMeanAll := float64(budget) / float64(size)
	zeroFrac := 1 - wantMeanAll/tail.Mean()
	if zeroFrac < cfg.ZeroOutFrac {
		zeroFrac = cfg.ZeroOutFrac
	}
	active := make([]bool, size)
	nActive := 0
	for i := range active {
		if !rng.Bool(zeroFrac) {
			active[i] = true
			nActive++
		}
	}
	// Ensure the budget is reachable: activate more members if needed.
	for int64(nActive)*int64(size-1) < budget {
		i := rng.Intn(size)
		if !active[i] {
			active[i] = true
			nActive++
		}
	}
	wantMean := float64(budget) / float64(nActive)
	pl := tail
	if wantMean > tail.Mean() {
		pl, err = powerLawWithMean(size-1, wantMean)
		if err != nil {
			return err
		}
	}
	quota := make([]int, size)
	var assigned int64
	for i := range quota {
		if !active[i] {
			continue
		}
		q := pl.Sample(rng)
		if q > size-1 {
			q = size - 1
		}
		quota[i] = q
		assigned += int64(q)
	}
	// The heavy tail makes the drawn total high-variance; an unlucky big
	// draw can overshoot the budget by a multiple. Rescale quotas
	// proportionally first (keeping every active member at >= 1 so the
	// isolated population stays exactly the mask), then repair the small
	// residue randomly.
	if assigned > budget {
		scale := float64(budget) / float64(assigned)
		assigned = 0
		for i, q := range quota {
			if q == 0 {
				continue
			}
			nq := int(float64(q) * scale)
			if nq < 1 {
				nq = 1
			}
			quota[i] = nq
			assigned += int64(nq)
		}
	}
	for assigned < budget {
		i := rng.Intn(size)
		if active[i] && quota[i] < size-1 {
			quota[i]++
			assigned++
		}
	}
	tries := 0
	for assigned > budget {
		i := rng.Intn(size)
		// Prefer trimming the tail; only zero out degree-1 members when
		// the overshoot leaves no choice (budget below the active count).
		if quota[i] > 1 || (tries > 10*size && quota[i] > 0) {
			quota[i]--
			assigned--
		}
		tries++
	}
	weighted := schema.LinkType(lt).Weighted
	for i, q := range quota {
		if q == 0 {
			continue
		}
		src := members[i]
		for _, j := range rng.SampleWithoutReplacement(size-1, q) {
			// Map [0,size-1) onto member indices skipping self.
			dj := j
			if dj >= i {
				dj++
			}
			w := int32(1)
			if weighted {
				w = strength(cfg, rng)
			}
			if err := b.AddEdge(lt, src, members[dj], w); err != nil {
				return err
			}
		}
	}
	return nil
}

// genBackground adds sparse power-law edges among all users. Edges whose
// endpoints both lie inside the same community are skipped so planted
// densities stay exact; community members still get background edges to
// the outside, which is what makes de-anonymizing against the full
// auxiliary network non-trivial.
func genBackground(b *hin.Builder, schema *hin.Schema, cfg Config, inCommunity []bool, rng *randx.RNG) {
	if cfg.Users < 2 || cfg.BackgroundAvgOutDeg <= 0 {
		return
	}
	maxDeg := cfg.DegreeMax
	if maxDeg > cfg.Users-1 {
		maxDeg = cfg.Users - 1
	}
	pl, err := randx.NewPowerLaw(1, maxDeg, cfg.DegreeAlpha)
	if err != nil {
		panic(err)
	}
	scale := cfg.BackgroundAvgOutDeg / pl.Mean()
	for lt := 0; lt < schema.NumLinkTypes(); lt++ {
		ltr := rng.Split(uint64(lt))
		weighted := schema.LinkType(hin.LinkTypeID(lt)).Weighted
		for u := 0; u < cfg.Users; u++ {
			deg := int(float64(pl.Sample(ltr))*scale + ltr.Float64())
			for e := 0; e < deg; e++ {
				v := ltr.Intn(cfg.Users)
				if v == u {
					continue
				}
				if inCommunity[u] && inCommunity[v] {
					// May be the same community; keep planted densities
					// exact by skipping all community-internal pairs.
					continue
				}
				w := int32(1)
				if weighted {
					w = strength(cfg, ltr)
				}
				// Duplicate (u,v) pairs merge at Build; they are rare and
				// merely nudge strengths, matching organic repeat
				// interactions.
				if err := b.AddEdge(hin.LinkTypeID(lt), hin.EntityID(u), hin.EntityID(v), w); err != nil {
					panic(err) // endpoints are in range by construction
				}
			}
		}
	}
}

// powerLawWithMean builds a power-law sampler on [1, maxK] whose exponent
// is solved (by bisection; the truncated mean is monotone in alpha) so the
// mean approximates wantMean. Out-of-range means clamp to the nearest
// achievable exponent; the caller's budget repair closes the residue.
func powerLawWithMean(maxK int, wantMean float64) (*randx.PowerLaw, error) {
	const aLo, aHi = 1.01, 8.0
	lo, err := randx.NewPowerLaw(1, maxK, aHi)
	if err != nil {
		return nil, err
	}
	if wantMean <= lo.Mean() {
		return lo, nil
	}
	hi, err := randx.NewPowerLaw(1, maxK, aLo)
	if err != nil {
		return nil, err
	}
	if wantMean >= hi.Mean() {
		return hi, nil
	}
	a, b := aLo, aHi // mean decreases in alpha: mean(a) > wantMean > mean(b)
	var best *randx.PowerLaw
	for i := 0; i < 40; i++ {
		mid := (a + b) / 2
		pl, err := randx.NewPowerLaw(1, maxK, mid)
		if err != nil {
			return nil, err
		}
		best = pl
		if pl.Mean() > wantMean {
			a = mid
		} else {
			b = mid
		}
	}
	return best, nil
}

// strength draws a link strength: geometric with cap, giving the heavy
// head (strength 1-3) and occasional strong ties real interaction counts
// show.
func strength(cfg Config, rng *randx.RNG) int32 {
	s := rng.Geometric(cfg.StrengthP)
	if s > cfg.StrengthMax {
		s = cfg.StrengthMax
	}
	return int32(s)
}

// genRecLog synthesizes items and the recommendation preference log.
func genRecLog(cfg Config, rng *randx.RNG) ([]Item, []RecEntry) {
	if cfg.Items == 0 {
		return nil, nil
	}
	categories := []string{"bank", "celebrity", "news", "sports", "tech"}
	items := make([]Item, cfg.Items)
	for i := range items {
		cat := categories[i%len(categories)]
		items[i] = Item{
			ID:       int32(i),
			Name:     fmt.Sprintf("%s-%03d", cat, i),
			Category: cat,
		}
	}
	pop, err := randx.NewAlias(randx.ZipfWeights(cfg.Items, 1.0))
	if err != nil {
		panic(err)
	}
	var rec []RecEntry
	for u := 0; u < cfg.Users; u++ {
		n := rng.Intn(2*cfg.RecPerUser + 1)
		for i := 0; i < n; i++ {
			rec = append(rec, RecEntry{
				User:     hin.EntityID(u),
				Item:     int32(pop.Sample(rng)),
				Accepted: rng.Bool(0.3),
			})
		}
	}
	return items, rec
}

// sortEntityIDs sorts ids ascending in place.
func sortEntityIDs(ids []hin.EntityID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
