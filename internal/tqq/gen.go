package tqq

import (
	"fmt"
	"slices"

	"github.com/hinpriv/dehin/internal/hin"
	"github.com/hinpriv/dehin/internal/obs"
	"github.com/hinpriv/dehin/internal/obs/trace"
	"github.com/hinpriv/dehin/internal/par"
	"github.com/hinpriv/dehin/internal/randx"
)

// CommunitySpec requests one planted community: Size users whose induced
// subgraph has exactly the Equation-4 density Density (up to rounding to a
// whole number of edges). Planted communities play the role of the paper's
// sampled 1000-vertex target graphs of known density.
type CommunitySpec struct {
	Size    int
	Density float64
}

// Config parameterizes the synthetic t.qq generator. The zero value is not
// usable; start from DefaultConfig.
type Config struct {
	// Users is the total number of user entities (the paper's auxiliary
	// network has 2,320,895; experiments here default to a scaled-down
	// network and record the size used).
	Users int
	// Seed drives all generator randomness.
	Seed uint64

	// Workers bounds the generator's worker pool; 0 means GOMAXPROCS.
	// The generated dataset is a function of the Config alone: work is
	// cut into fixed-size shards whose random streams derive only from
	// (Seed, shard id), so output is byte-identical for every Workers
	// value and every GOMAXPROCS setting.
	Workers int

	// YearMin and YearMax bound the year-of-birth attribute; the default
	// span of 87 years matches the paper's reported yob cardinality.
	YearMin, YearMax int
	// GenderWeights give the relative frequency of the gender codes
	// 0..len-1. Three codes match the paper's gender cardinality of 3.
	GenderWeights []float64
	// TweetCountMax bounds the log-uniform tweet-count attribute. The
	// default of 30000 yields ~640 distinct values per 1000 users,
	// matching the paper's tweet-count cardinality of 643.
	TweetCountMax int
	// TagUniverse is the number of distinct tag IDs; MaxTags the largest
	// per-user tag-set size (uniform 0..MaxTags gives the paper's
	// number-of-tags cardinality of MaxTags+1 = 11); TagZipf the skew of
	// tag popularity.
	TagUniverse int
	MaxTags     int
	TagZipf     float64

	// BackgroundAvgOutDeg is the mean out-degree per link type of the
	// background (non-community) edge process; DegreeAlpha its power-law
	// exponent and DegreeMax the largest raw degree draw.
	BackgroundAvgOutDeg float64
	DegreeAlpha         float64
	DegreeMax           int

	// StrengthP is the geometric parameter for link strengths (mention/
	// retweet/comment counts); StrengthMax caps them.
	StrengthP   float64
	StrengthMax int

	// ZeroOutFrac is the MINIMUM fraction of community members with no
	// out-edges of a given link type. Real induced samples of social
	// networks have a sizable per-type isolated population - it is what
	// keeps the paper's single-link-type risk at ~84-90% rather than
	// ~100% at distance 1 (isolated users collide on profile features
	// alone). At low densities the effective zero fraction grows well
	// beyond this floor: edges concentrate on a heavy tail (see
	// DegreeTailAlpha) and most members end up isolated, exactly like a
	// sparse induced sample of a power-law graph.
	ZeroOutFrac float64
	// DegreeTailAlpha is the power-law exponent of non-isolated community
	// members' out-degrees. The planter keeps this tail shape fixed and
	// absorbs low edge budgets by enlarging the isolated population; only
	// when the budget exceeds what the tail can carry at the minimum zero
	// fraction does the exponent decrease.
	DegreeTailAlpha float64

	// Communities are the planted target blocks.
	Communities []CommunitySpec

	// Items is the number of recommendable items; RecPerUser the average
	// number of recommendation log entries per user.
	Items      int
	RecPerUser int

	// Metrics attaches the generator to an observability registry
	// (internal/obs): run/user/edge counters, whole-run wall time, and a
	// per-task latency histogram labeled by stage (profiles, edges,
	// reclog). Nil disables instrumentation. Metrics never touch the
	// random streams, so the generated dataset stays byte-identical with
	// and without a registry.
	Metrics *obs.Registry

	// Trace attaches the generator to a span tracer
	// (internal/obs/trace): one root span per run, a child span per
	// stage, and per-task spans (shard index, link type, edge counts) on
	// one timeline lane per pool worker, so an exported trace shows which
	// shard straggled and how the pool actually scheduled. Nil (the
	// default) disables tracing; like Metrics, the tracer never touches a
	// random stream.
	Trace *trace.Tracer

	// Log receives levelled progress events (run start/done with sizes at
	// Debug/Info). Nil disables logging.
	Log *obs.Logger
}

// DefaultConfig returns a configuration calibrated to the paper's reported
// dataset statistics, with users scaled down from 2.3M to the given count.
func DefaultConfig(users int, seed uint64) Config {
	return Config{
		Users:               users,
		Seed:                seed,
		YearMin:             1920,
		YearMax:             2006, // 87 distinct years
		GenderWeights:       []float64{0.52, 0.42, 0.06},
		TweetCountMax:       30000,
		TagUniverse:         500,
		MaxTags:             10,
		TagZipf:             1.1,
		BackgroundAvgOutDeg: 6.5,
		DegreeAlpha:         2.3,
		DegreeMax:           300,
		StrengthP:           0.35,
		StrengthMax:         60,
		ZeroOutFrac:         0.10,
		DegreeTailAlpha:     1.8,
		Items:               200,
		RecPerUser:          3,
	}
}

// Item is a recommendable entity from the recommendation log (the paper's
// motivating example uses bank-account recommendations).
type Item struct {
	ID       int32
	Name     string
	Category string
}

// RecEntry is one recommendation preference log record: the user was shown
// the item and accepted or rejected it. This is the sensitive payload the
// adversary is after.
type RecEntry struct {
	User     hin.EntityID
	Item     int32
	Accepted bool
}

// Dataset bundles a generated network with its recommendation log and the
// planted community memberships.
type Dataset struct {
	Graph *hin.Graph
	Items []Item
	Rec   []RecEntry
	// Communities[i] lists the user ids of the i-th requested community,
	// in ascending order.
	Communities [][]hin.EntityID
}

// genShardUsers is the fixed shard width of the parallel generator. Shard
// boundaries (and therefore shard random streams) depend only on the user
// count, never on the worker pool size, which is what makes the output
// independent of Workers/GOMAXPROCS.
const genShardUsers = 2048

// edge is one generated directed edge awaiting the deterministic merge
// into the hin.Builder.
type edge struct {
	src, dst hin.EntityID
	w        int32
}

// Generate synthesizes a dataset per cfg. It returns an error if the
// configuration is inconsistent (too few users for the requested
// communities, bad ranges, or a community density that exceeds 1).
//
// Determinism and ordering invariant: the dataset is a pure function of
// cfg. Every stage (profiles, community planting, background edges,
// recommendation log) is cut into tasks whose random streams are derived
// serially - before any worker runs - from the stage stream, with fixed
// shard boundaries (genShardUsers) or fixed task identity (community
// index, link type). Workers only consume pre-derived streams and write
// to pre-assigned slots. Edges are then handed to the Builder per link
// type in ascending order, each type's buffer stably sorted by
// (src, dst); ties (duplicate pairs, merged by summed strength at Build)
// keep task order. The AddEntity/AddEdge sequence is therefore fully
// specified, not an accident of scheduling: Generate(cfg) is
// byte-identical for every Workers and GOMAXPROCS value.
func Generate(cfg Config) (*Dataset, error) {
	if err := validate(&cfg); err != nil {
		return nil, err
	}
	if cfg.Metrics != nil {
		cfg.Metrics.Counter("tqq_generate_runs_total").Inc()
		cfg.Metrics.Counter("tqq_generate_users_total").Add(int64(cfg.Users))
		t := cfg.Metrics.Histogram("tqq_generate_ns").Time()
		defer t.Stop()
	}
	root := cfg.Trace.Start("tqq.generate")
	root.Attr("users", int64(cfg.Users))
	root.Attr("communities", int64(len(cfg.Communities)))
	defer root.End()
	cfg.Log.Debug("tqq: generate start",
		"users", cfg.Users, "shards", userShards(cfg.Users),
		"communities", len(cfg.Communities))
	rng := randx.New(cfg.Seed)
	schema := TargetSchema()
	b := hin.NewBuilder(schema)

	stage := root.Child("profiles")
	genProfiles(b, cfg, rng.Split(1), stage)
	stage.End()

	// Reserve community members: disjoint random user sets.
	comms, inCommunity, err := placeCommunities(cfg, rng.Split(2))
	if err != nil {
		return nil, err
	}

	// Plan community planting: budgets (and their validation) are serial
	// and cheap; the edge sampling is the expensive part and runs as one
	// task per (community, link type), each on its own pre-derived
	// stream.
	var tasks []*edgeTask
	for i, spec := range cfg.Communities {
		ctasks, err := planCommunity(schema, spec, comms[i], cfg, rng.Split(uint64(10+i)))
		if err != nil {
			return nil, err
		}
		tasks = append(tasks, ctasks...)
	}
	tasks = append(tasks, planBackground(schema, cfg, inCommunity, rng.Split(3))...)

	stage = root.Child("edges")
	lanes := workerLanes(cfg.Trace, cfg.Workers, len(tasks))
	edgeTaskNs := stageTaskHist(cfg, "edges")
	runTasks(cfg.Workers, len(tasks), func(w, i int) {
		var sp trace.Span
		if lanes != nil {
			sp = stage.ChildOn(lanes[w], "edge_task")
			sp.Attr("task", int64(i))
			sp.Attr("link_type", int64(tasks[i].lt))
		}
		tm := edgeTaskNs.Time()
		t := tasks[i]
		t.out, t.err = t.gen()
		tm.Stop()
		if sp.Active() {
			sp.Attr("edges", int64(len(t.out)))
			sp.End()
		}
	})
	stage.End()
	var emitted int64
	for _, t := range tasks {
		if t.err != nil {
			return nil, t.err
		}
		emitted += int64(len(t.out))
	}
	if cfg.Metrics != nil {
		cfg.Metrics.Counter("tqq_generate_edges_total").Add(emitted)
	}
	stage = root.Child("merge")
	err = mergeEdges(b, schema, tasks)
	stage.End()
	if err != nil {
		return nil, err
	}

	stage = root.Child("build")
	g, err := b.Build()
	stage.End()
	if err != nil {
		return nil, err
	}
	stage = root.Child("reclog")
	items, rec := genRecLog(cfg, rng.Split(4), stage)
	stage.End()
	cfg.Log.Info("tqq: generate done",
		"users", cfg.Users, "edges", emitted, "rec_entries", len(rec))
	return &Dataset{Graph: g, Items: items, Rec: rec, Communities: comms}, nil
}

// edgeTask is one independent edge-sampling unit: it draws only from its
// own RNG and emits into its own buffer, merged later in task order.
type edgeTask struct {
	lt  hin.LinkTypeID
	gen func() ([]edge, error)
	out []edge
	err error
}

// runTasks executes n independent tasks on a worker pool of the given
// size (0 = GOMAXPROCS). Tasks must be independent: they draw randomness
// only from streams derived before dispatch and write only to their own
// slots, so the schedule cannot affect the result. The callback receives
// the pool worker index (stable per goroutine, always 0 when serial) so
// instrumentation can attribute work to timeline lanes.
//
// The pool itself now lives in internal/par (the shared deterministic
// sweep layer grown out of this recipe); these wrappers keep the
// generator's call sites and vocabulary unchanged.
func runTasks(workers, n int, task func(worker, i int)) {
	par.Run(workers, n, task)
}

// poolSize resolves the effective worker count runTasks will use for n
// tasks: 0 means GOMAXPROCS, never more workers than tasks, at least 1.
func poolSize(workers, n int) int {
	return par.Workers(workers, n)
}

// workerLanes allocates one tracer track per pool worker, so the spans of
// concurrently running tasks land on stable timeline lanes (Perfetto
// renders one row per track and expects same-row spans to nest). Returns
// nil when tracing is off - the single branch the disabled path pays.
func workerLanes(tr *trace.Tracer, workers, n int) []trace.Track {
	return par.Lanes(tr, workers, n)
}

// userShards returns the number of fixed-width user shards for cfg.
func userShards(users int) int {
	return (users + genShardUsers - 1) / genShardUsers
}

// stageTaskHist resolves the per-task latency histogram for one generator
// stage; nil (a no-op timer source) when metrics are disabled.
func stageTaskHist(cfg Config, stage string) *obs.Histogram {
	return cfg.Metrics.Histogram("tqq_generate_task_ns", "stage", stage)
}

func validate(cfg *Config) error {
	if cfg.Users < 1 {
		return fmt.Errorf("tqq: Users must be positive, got %d", cfg.Users)
	}
	if cfg.YearMax < cfg.YearMin {
		return fmt.Errorf("tqq: YearMax %d < YearMin %d", cfg.YearMax, cfg.YearMin)
	}
	if len(cfg.GenderWeights) == 0 {
		return fmt.Errorf("tqq: GenderWeights empty")
	}
	if cfg.TweetCountMax < 0 || cfg.MaxTags < 0 || cfg.TagUniverse < cfg.MaxTags {
		return fmt.Errorf("tqq: invalid profile ranges")
	}
	if cfg.StrengthP <= 0 || cfg.StrengthP > 1 {
		return fmt.Errorf("tqq: StrengthP must be in (0,1], got %g", cfg.StrengthP)
	}
	if cfg.StrengthMax < 1 {
		return fmt.Errorf("tqq: StrengthMax must be >= 1")
	}
	if cfg.ZeroOutFrac < 0 || cfg.ZeroOutFrac >= 1 {
		return fmt.Errorf("tqq: ZeroOutFrac must be in [0,1), got %g", cfg.ZeroOutFrac)
	}
	if cfg.DegreeTailAlpha <= 1 {
		return fmt.Errorf("tqq: DegreeTailAlpha must be > 1, got %g", cfg.DegreeTailAlpha)
	}
	total := 0
	for i, c := range cfg.Communities {
		if c.Size < 2 {
			return fmt.Errorf("tqq: community %d size %d too small", i, c.Size)
		}
		if c.Density < 0 || c.Density > 1 {
			return fmt.Errorf("tqq: community %d density %g out of [0,1]", i, c.Density)
		}
		total += c.Size
	}
	if total > cfg.Users {
		return fmt.Errorf("tqq: communities need %d users, only %d available", total, cfg.Users)
	}
	return nil
}

// profileShard buffers one user shard's drawn profile, filled by a worker
// and drained serially into the Builder in shard order.
type profileShard struct {
	label  []string
	scalar [][4]int64 // yob, gender, tweets, ntags
	tags   [][]int32  // nil when the user has no tags
}

// genProfiles adds all user entities with calibrated profile attributes.
// Each fixed-width user shard draws from its own stream (forked serially
// from the stage stream) into a private buffer; the Builder is then fed
// in shard order, so entity ids and attributes never depend on
// scheduling.
func genProfiles(b *hin.Builder, cfg Config, rng *randx.RNG, stage trace.Span) {
	gender, err := randx.NewAlias(cfg.GenderWeights)
	if err != nil {
		panic(err) // validated already
	}
	tagPop, err := randx.NewAlias(randx.ZipfWeights(cfg.TagUniverse, cfg.TagZipf))
	if err != nil {
		panic(err)
	}
	nShards := userShards(cfg.Users)
	rngs := rng.Fork(nShards)
	shards := make([]profileShard, nShards)
	shardNs := stageTaskHist(cfg, "profiles")
	lanes := workerLanes(cfg.Trace, cfg.Workers, nShards)
	runTasks(cfg.Workers, nShards, func(w, s int) {
		if lanes != nil {
			sp := stage.ChildOn(lanes[w], "profiles_shard")
			sp.Attr("shard", int64(s))
			defer sp.End()
		}
		tm := shardNs.Time()
		defer tm.Stop()
		lo := s * genShardUsers
		hi := min(lo+genShardUsers, cfg.Users)
		r := rngs[s]
		sh := &shards[s]
		sh.label = make([]string, 0, hi-lo)
		sh.scalar = make([][4]int64, 0, hi-lo)
		sh.tags = make([][]int32, 0, hi-lo)
		for i := lo; i < hi; i++ {
			yob := int64(r.IntRange(cfg.YearMin, cfg.YearMax))
			gen := int64(gender.Sample(r))
			tweets := int64(r.LogUniformInt(0, cfg.TweetCountMax))
			ntags := r.Intn(cfg.MaxTags + 1)
			var tags []int32
			if ntags > 0 {
				tags = make([]int32, 0, ntags)
				seen := make(map[int32]bool, ntags)
				for len(tags) < ntags {
					t := int32(tagPop.Sample(r))
					if !seen[t] {
						seen[t] = true
						tags = append(tags, t)
					}
				}
			}
			sh.label = append(sh.label, fmt.Sprintf("u%07d", i))
			sh.scalar = append(sh.scalar, [4]int64{yob, gen, tweets, int64(ntags)})
			sh.tags = append(sh.tags, tags)
		}
	})
	for s := range shards {
		sh := &shards[s]
		for i := range sh.label {
			a := sh.scalar[i]
			id := b.AddEntity(0, sh.label[i], a[0], a[1], a[2], a[3])
			if len(sh.tags[i]) > 0 {
				b.SetSet(TagsAttr, id, sh.tags[i])
			}
		}
	}
}

// placeCommunities picks disjoint random user sets for the requested
// communities and returns them (each ascending) plus a membership mask.
func placeCommunities(cfg Config, rng *randx.RNG) ([][]hin.EntityID, []bool, error) {
	total := 0
	for _, c := range cfg.Communities {
		total += c.Size
	}
	inCommunity := make([]bool, cfg.Users)
	if total == 0 {
		return nil, inCommunity, nil
	}
	pool := rng.SampleWithoutReplacement(cfg.Users, total)
	comms := make([][]hin.EntityID, len(cfg.Communities))
	at := 0
	for i, c := range cfg.Communities {
		ids := make([]hin.EntityID, c.Size)
		for j := 0; j < c.Size; j++ {
			ids[j] = hin.EntityID(pool[at])
			inCommunity[pool[at]] = true
			at++
		}
		sortEntityIDs(ids)
		comms[i] = ids
	}
	return comms, inCommunity, nil
}

// planCommunity splits one planted community's Equation-4 edge budget
// evenly across link types (remainder to the earliest types) and returns
// one edge-sampling task per type, each bound to a stream pre-derived
// from the community's stream. Budget validation happens here, before any
// worker runs.
func planCommunity(schema *hin.Schema, spec CommunitySpec, members []hin.EntityID, cfg Config, rng *randx.RNG) ([]*edgeTask, error) {
	nTypes := schema.NumLinkTypes()
	budget := int64(spec.Density*float64(hin.MaxEdges(schema, spec.Size)) + 0.5)
	maxPerType := int64(spec.Size) * int64(spec.Size-1)
	tasks := make([]*edgeTask, 0, nTypes)
	for lt := 0; lt < nTypes; lt++ {
		share := budget / int64(nTypes)
		if int64(lt) < budget%int64(nTypes) {
			share++
		}
		if share > maxPerType {
			return nil, fmt.Errorf("tqq: community density %g overfills link type %d", spec.Density, lt)
		}
		ltid := hin.LinkTypeID(lt)
		r := rng.Split(uint64(lt))
		tasks = append(tasks, &edgeTask{
			lt: ltid,
			gen: func() ([]edge, error) {
				return plantTypeEdges(schema, ltid, members, share, cfg, r)
			},
		})
	}
	return tasks, nil
}

// plantTypeEdges samples exactly budget edges of one link type among
// members. A ZeroOutFrac share of members gets no out-edges of this type
// (induced social-network samples always have a per-type isolated
// population); the rest draw out-degree quotas from a power law whose
// exponent is solved so the expected total meets the budget, preserving
// the real skew - a mass of degree-1-and-2 users plus a heavy tail - at
// every density. Each source gets distinct destinations, so no duplicates
// arise and the edge count is exact after a small random repair.
func plantTypeEdges(schema *hin.Schema, lt hin.LinkTypeID, members []hin.EntityID, budget int64, cfg Config, rng *randx.RNG) ([]edge, error) {
	if budget == 0 {
		return nil, nil
	}
	size := len(members)
	// Decide the isolated fraction: keep the degree tail's shape fixed
	// and let sparsity enlarge the zero population, as in real induced
	// samples. zeroFrac = 1 - budget/(size * tailMean), floored at
	// cfg.ZeroOutFrac; if the budget exceeds what the tail carries at the
	// floor, the tail is made heavier instead (powerLawWithMean).
	tail, err := randx.NewPowerLaw(1, size-1, cfg.DegreeTailAlpha)
	if err != nil {
		return nil, err
	}
	wantMeanAll := float64(budget) / float64(size)
	zeroFrac := 1 - wantMeanAll/tail.Mean()
	if zeroFrac < cfg.ZeroOutFrac {
		zeroFrac = cfg.ZeroOutFrac
	}
	active := make([]bool, size)
	nActive := 0
	for i := range active {
		if !rng.Bool(zeroFrac) {
			active[i] = true
			nActive++
		}
	}
	// Ensure the budget is reachable: activate more members if needed.
	for int64(nActive)*int64(size-1) < budget {
		i := rng.Intn(size)
		if !active[i] {
			active[i] = true
			nActive++
		}
	}
	wantMean := float64(budget) / float64(nActive)
	pl := tail
	if wantMean > tail.Mean() {
		pl, err = powerLawWithMean(size-1, wantMean)
		if err != nil {
			return nil, err
		}
	}
	quota := make([]int, size)
	var assigned int64
	for i := range quota {
		if !active[i] {
			continue
		}
		q := pl.Sample(rng)
		if q > size-1 {
			q = size - 1
		}
		quota[i] = q
		assigned += int64(q)
	}
	// The heavy tail makes the drawn total high-variance; an unlucky big
	// draw can overshoot the budget by a multiple. Rescale quotas
	// proportionally first (keeping every active member at >= 1 so the
	// isolated population stays exactly the mask), then repair the small
	// residue randomly.
	if assigned > budget {
		scale := float64(budget) / float64(assigned)
		assigned = 0
		for i, q := range quota {
			if q == 0 {
				continue
			}
			nq := int(float64(q) * scale)
			if nq < 1 {
				nq = 1
			}
			quota[i] = nq
			assigned += int64(nq)
		}
	}
	for assigned < budget {
		i := rng.Intn(size)
		if active[i] && quota[i] < size-1 {
			quota[i]++
			assigned++
		}
	}
	tries := 0
	for assigned > budget {
		i := rng.Intn(size)
		// Prefer trimming the tail; only zero out degree-1 members when
		// the overshoot leaves no choice (budget below the active count).
		if quota[i] > 1 || (tries > 10*size && quota[i] > 0) {
			quota[i]--
			assigned--
		}
		tries++
	}
	weighted := schema.LinkType(lt).Weighted
	out := make([]edge, 0, budget)
	for i, q := range quota {
		if q == 0 {
			continue
		}
		src := members[i]
		for _, j := range rng.SampleWithoutReplacement(size-1, q) {
			// Map [0,size-1) onto member indices skipping self.
			dj := j
			if dj >= i {
				dj++
			}
			w := int32(1)
			if weighted {
				w = strength(cfg, rng)
			}
			out = append(out, edge{src: src, dst: members[dj], w: w})
		}
	}
	return out, nil
}

// planBackground returns the sparse power-law background edge tasks: one
// per (link type, user shard), each on a stream forked serially from the
// stage stream. Edges whose endpoints both lie inside a community are
// skipped so planted densities stay exact; community members still get
// background edges to the outside, which is what makes de-anonymizing
// against the full auxiliary network non-trivial.
func planBackground(schema *hin.Schema, cfg Config, inCommunity []bool, rng *randx.RNG) []*edgeTask {
	if cfg.Users < 2 || cfg.BackgroundAvgOutDeg <= 0 {
		return nil
	}
	maxDeg := cfg.DegreeMax
	if maxDeg > cfg.Users-1 {
		maxDeg = cfg.Users - 1
	}
	pl, err := randx.NewPowerLaw(1, maxDeg, cfg.DegreeAlpha)
	if err != nil {
		panic(err)
	}
	scale := cfg.BackgroundAvgOutDeg / pl.Mean()
	nShards := userShards(cfg.Users)
	var tasks []*edgeTask
	for lt := 0; lt < schema.NumLinkTypes(); lt++ {
		ltid := hin.LinkTypeID(lt)
		weighted := schema.LinkType(ltid).Weighted
		rngs := rng.Split(uint64(lt)).Fork(nShards)
		for s := 0; s < nShards; s++ {
			lo := s * genShardUsers
			hi := min(lo+genShardUsers, cfg.Users)
			r := rngs[s]
			tasks = append(tasks, &edgeTask{
				lt: ltid,
				gen: func() ([]edge, error) {
					return genBackgroundShard(cfg, inCommunity, weighted, lo, hi, pl, scale, r), nil
				},
			})
		}
	}
	return tasks
}

// genBackgroundShard draws the background out-edges of users [lo, hi) for
// one link type from the shard's private stream.
func genBackgroundShard(cfg Config, inCommunity []bool, weighted bool, lo, hi int, pl *randx.PowerLaw, scale float64, rng *randx.RNG) []edge {
	out := make([]edge, 0, int(float64(hi-lo)*cfg.BackgroundAvgOutDeg))
	for u := lo; u < hi; u++ {
		deg := int(float64(pl.Sample(rng))*scale + rng.Float64())
		for e := 0; e < deg; e++ {
			v := rng.Intn(cfg.Users)
			if v == u {
				continue
			}
			if inCommunity[u] && inCommunity[v] {
				// May be the same community; keep planted densities
				// exact by skipping all community-internal pairs.
				continue
			}
			w := int32(1)
			if weighted {
				w = strength(cfg, rng)
			}
			// Duplicate (u,v) pairs merge at Build; they are rare and
			// merely nudge strengths, matching organic repeat
			// interactions.
			out = append(out, edge{src: hin.EntityID(u), dst: hin.EntityID(v), w: w})
		}
	}
	return out
}

// mergeEdges feeds every task's edges into the Builder under the
// specified ordering invariant: link types ascending, each type's
// concatenated buffers (community tasks first, then background shards,
// both in creation order) stably sorted by (src, dst). Duplicate pairs
// merge at Build by summing strengths, which is order-independent, so
// this ordering is about making the AddEdge sequence reproducible and
// reviewable rather than an accident of task layout.
func mergeEdges(b *hin.Builder, schema *hin.Schema, tasks []*edgeTask) error {
	perType := make([][]edge, schema.NumLinkTypes())
	for _, t := range tasks {
		perType[t.lt] = append(perType[t.lt], t.out...)
	}
	for lt, edges := range perType {
		slices.SortStableFunc(edges, func(a, b edge) int {
			if a.src != b.src {
				return int(a.src) - int(b.src)
			}
			return int(a.dst) - int(b.dst)
		})
		for _, e := range edges {
			if err := b.AddEdge(hin.LinkTypeID(lt), e.src, e.dst, e.w); err != nil {
				return err
			}
		}
	}
	return nil
}

// powerLawWithMean builds a power-law sampler on [1, maxK] whose exponent
// is solved (by bisection; the truncated mean is monotone in alpha) so the
// mean approximates wantMean. Out-of-range means clamp to the nearest
// achievable exponent; the caller's budget repair closes the residue.
func powerLawWithMean(maxK int, wantMean float64) (*randx.PowerLaw, error) {
	const aLo, aHi = 1.01, 8.0
	lo, err := randx.NewPowerLaw(1, maxK, aHi)
	if err != nil {
		return nil, err
	}
	if wantMean <= lo.Mean() {
		return lo, nil
	}
	hi, err := randx.NewPowerLaw(1, maxK, aLo)
	if err != nil {
		return nil, err
	}
	if wantMean >= hi.Mean() {
		return hi, nil
	}
	a, b := aLo, aHi // mean decreases in alpha: mean(a) > wantMean > mean(b)
	var best *randx.PowerLaw
	for i := 0; i < 40; i++ {
		mid := (a + b) / 2
		pl, err := randx.NewPowerLaw(1, maxK, mid)
		if err != nil {
			return nil, err
		}
		best = pl
		if pl.Mean() > wantMean {
			a = mid
		} else {
			b = mid
		}
	}
	return best, nil
}

// strength draws a link strength: geometric with cap, giving the heavy
// head (strength 1-3) and occasional strong ties real interaction counts
// show.
func strength(cfg Config, rng *randx.RNG) int32 {
	s := rng.Geometric(cfg.StrengthP)
	if s > cfg.StrengthMax {
		s = cfg.StrengthMax
	}
	return int32(s)
}

// recShard buffers one user shard's recommendation log entries.
type recShard struct {
	rec []RecEntry
}

// genRecLog synthesizes items and the recommendation preference log. Items
// are deterministic; log entries are drawn per user shard from forked
// streams and concatenated in shard order.
func genRecLog(cfg Config, rng *randx.RNG, stage trace.Span) ([]Item, []RecEntry) {
	if cfg.Items == 0 {
		return nil, nil
	}
	categories := []string{"bank", "celebrity", "news", "sports", "tech"}
	items := make([]Item, cfg.Items)
	for i := range items {
		cat := categories[i%len(categories)]
		items[i] = Item{
			ID:       int32(i),
			Name:     fmt.Sprintf("%s-%03d", cat, i),
			Category: cat,
		}
	}
	pop, err := randx.NewAlias(randx.ZipfWeights(cfg.Items, 1.0))
	if err != nil {
		panic(err)
	}
	nShards := userShards(cfg.Users)
	rngs := rng.Fork(nShards)
	shards := make([]recShard, nShards)
	shardNs := stageTaskHist(cfg, "reclog")
	lanes := workerLanes(cfg.Trace, cfg.Workers, nShards)
	runTasks(cfg.Workers, nShards, func(w, s int) {
		var sp trace.Span
		if lanes != nil {
			sp = stage.ChildOn(lanes[w], "reclog_shard")
			sp.Attr("shard", int64(s))
		}
		tm := shardNs.Time()
		lo := s * genShardUsers
		hi := min(lo+genShardUsers, cfg.Users)
		r := rngs[s]
		for u := lo; u < hi; u++ {
			n := r.Intn(2*cfg.RecPerUser + 1)
			for i := 0; i < n; i++ {
				shards[s].rec = append(shards[s].rec, RecEntry{
					User:     hin.EntityID(u),
					Item:     int32(pop.Sample(r)),
					Accepted: r.Bool(0.3),
				})
			}
		}
		tm.Stop()
		if sp.Active() {
			sp.Attr("entries", int64(len(shards[s].rec)))
			sp.End()
		}
	})
	var rec []RecEntry
	for s := range shards {
		rec = append(rec, shards[s].rec...)
	}
	return items, rec
}

// sortEntityIDs sorts ids ascending in place. The order is part of the
// generator's contract (Dataset.Communities lists members ascending), not
// an incidental property of the sampler.
func sortEntityIDs(ids []hin.EntityID) {
	slices.Sort(ids)
}
