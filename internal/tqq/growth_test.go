package tqq

import (
	"testing"

	"github.com/hinpriv/dehin/internal/hin"
)

func TestGrowSupersetProperty(t *testing.T) {
	cfg := DefaultConfig(800, 21)
	cfg.Communities = []CommunitySpec{{Size: 150, Density: 0.01}}
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gcfg := DefaultGrowth(77)
	gcfg.NewUsers = 100
	grown, err := Grow(d, cfg, gcfg)
	if err != nil {
		t.Fatal(err)
	}
	if grown.Graph.NumEntities() != 900 {
		t.Fatalf("grown users = %d", grown.Graph.NumEntities())
	}
	// Threat model (Section 5.1): the auxiliary "contains all the target
	// users and links among them" - every original edge survives with
	// strength >= original, every counter is monotone, identities stable.
	for v := 0; v < 800; v++ {
		id := hin.EntityID(v)
		if grown.Graph.Label(id) != d.Graph.Label(id) {
			t.Fatalf("label changed for %d", v)
		}
		if grown.Graph.Attr(id, AttrYob) != d.Graph.Attr(id, AttrYob) {
			t.Fatalf("yob changed for %d", v)
		}
		if grown.Graph.Attr(id, AttrGender) != d.Graph.Attr(id, AttrGender) {
			t.Fatalf("gender changed for %d", v)
		}
		if grown.Graph.Attr(id, AttrTweets) < d.Graph.Attr(id, AttrTweets) {
			t.Fatalf("tweet count shrank for %d", v)
		}
		if grown.Graph.Attr(id, AttrNumTags) < d.Graph.Attr(id, AttrNumTags) {
			t.Fatalf("numtags shrank for %d", v)
		}
		// Original tags form a subset of the grown tags.
		old := d.Graph.Set(TagsAttr, id)
		now := grown.Graph.Set(TagsAttr, id)
		for _, tag := range old {
			if !containsInt32(now, tag) {
				t.Fatalf("tag %d disappeared for %d", tag, v)
			}
		}
		for lt := 0; lt < 4; lt++ {
			tos, ws := d.Graph.OutEdges(hin.LinkTypeID(lt), id)
			for i, to := range tos {
				w, ok := grown.Graph.FindEdge(hin.LinkTypeID(lt), id, to)
				if !ok {
					t.Fatalf("edge lt=%d %d->%d disappeared", lt, v, to)
				}
				if w < ws[i] {
					t.Fatalf("edge lt=%d %d->%d strength shrank %d -> %d", lt, v, to, ws[i], w)
				}
			}
		}
	}
	if grown.Graph.NumEdgesTotal() <= d.Graph.NumEdgesTotal() {
		t.Fatal("growth added no edges")
	}
}

func TestGrowDeterministic(t *testing.T) {
	cfg := DefaultConfig(300, 2)
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := Grow(d, cfg, DefaultGrowth(5))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Grow(d, cfg, DefaultGrowth(5))
	if err != nil {
		t.Fatal(err)
	}
	if g1.Graph.NumEdgesTotal() != g2.Graph.NumEdgesTotal() {
		t.Fatal("growth not deterministic")
	}
}

func TestGrowErrors(t *testing.T) {
	cfg := DefaultConfig(50, 1)
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bad := DefaultGrowth(1)
	bad.NewUsers = -1
	if _, err := Grow(d, cfg, bad); err == nil {
		t.Fatal("negative NewUsers accepted")
	}
	bad = DefaultGrowth(1)
	bad.NewEdgeFrac = -0.5
	if _, err := Grow(d, cfg, bad); err == nil {
		t.Fatal("negative NewEdgeFrac accepted")
	}
}

func TestGrowZeroIsStillSuperset(t *testing.T) {
	cfg := DefaultConfig(200, 9)
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	grown, err := Grow(d, cfg, GrowthConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if grown.Graph.NumEntities() != 200 || grown.Graph.NumEdgesTotal() != d.Graph.NumEdgesTotal() {
		t.Fatal("zero growth changed the network")
	}
}
