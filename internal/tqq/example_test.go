package tqq_test

import (
	"fmt"

	"github.com/hinpriv/dehin/internal/hin"
	"github.com/hinpriv/dehin/internal/tqq"
)

// Example generates a synthetic t.qq-style network with one planted
// 200-user community of Equation-4 density 0.01 and verifies the plant.
func Example() {
	cfg := tqq.DefaultConfig(2000, 1)
	cfg.Communities = []tqq.CommunitySpec{{Size: 200, Density: 0.01}}
	d, err := tqq.Generate(cfg)
	if err != nil {
		panic(err)
	}
	sub, _, err := d.Graph.Induced(d.Communities[0])
	if err != nil {
		panic(err)
	}
	density, err := hin.Density(sub)
	if err != nil {
		panic(err)
	}
	fmt.Printf("users: %d\n", d.Graph.NumEntities())
	fmt.Printf("community density: %.3f\n", density)
	// Output:
	// users: 2000
	// community density: 0.010
}

// ExampleGenerateEvents builds the event-level network of the paper's
// Figure 1 and projects it onto the target network schema of Figure 3.
func ExampleGenerateEvents() {
	g, err := tqq.GenerateEvents(tqq.DefaultEventConfig(100, 3))
	if err != nil {
		panic(err)
	}
	projected, users, err := tqq.ProjectEvents(g)
	if err != nil {
		panic(err)
	}
	fmt.Printf("projected %d users with %d link types\n",
		len(users), projected.Schema().NumLinkTypes())
	// Output:
	// projected 100 users with 4 link types
}
