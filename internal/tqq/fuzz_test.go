package tqq

import "testing"

// FuzzGenerateSmall drives the sharded generator with arbitrary small
// configurations and checks the package's central determinism contract on
// each: Generate(cfg) is byte-identical (full dataset fingerprint) for
// Workers=1 and Workers=4, and the two runs agree on whether the
// configuration is rejected at all. Sizes are clamped to one shard
// (<= 200 users) so individual fuzz executions stay fast; the multi-shard
// regime is pinned by TestGenerateParallelEquivalence.
func FuzzGenerateSmall(f *testing.F) {
	f.Add(uint64(1), uint16(50), byte(128), byte(10))
	f.Add(uint64(42), uint16(0), byte(0), byte(0)) // minimum: 2 users, no community
	f.Add(uint64(7), uint16(198), byte(255), byte(40))
	f.Add(uint64(9), uint16(30), byte(5), byte(255)) // community larger than the network: must error
	f.Fuzz(func(t *testing.T, seed uint64, usersRaw uint16, densB, commB byte) {
		users := 2 + int(usersRaw)%199 // 2..200
		cfg := DefaultConfig(users, seed)
		if commB >= 2 {
			// Density spans [~0.001, ~0.2] including Equation-4 boundary
			// values; oversized communities (commB > users) exercise the
			// validation path, which must fail identically at every
			// worker count.
			cfg.Communities = []CommunitySpec{
				{Size: int(commB), Density: 0.001 + float64(densB)/255.0*0.2},
			}
		}

		run := func(workers int) (ok bool, fp [32]byte, msg string) {
			c := cfg
			c.Workers = workers
			d, err := Generate(c)
			if err != nil {
				return false, fp, err.Error()
			}
			return true, fingerprint(d), ""
		}

		ok1, fp1, err1 := run(1)
		ok4, fp4, err4 := run(4)
		if ok1 != ok4 || err1 != err4 {
			t.Fatalf("Workers=1 vs 4 disagree on validity: (%v %q) vs (%v %q)", ok1, err1, ok4, err4)
		}
		if ok1 && fp1 != fp4 {
			t.Fatalf("Workers=1 and Workers=4 datasets differ (users=%d comm=%d dens=%d seed=%d)",
				users, commB, densB, seed)
		}
	})
}
