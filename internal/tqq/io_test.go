package tqq

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/hinpriv/dehin/internal/hin"
)

func TestWriteLoadRoundTrip(t *testing.T) {
	cfg := DefaultConfig(300, 17)
	cfg.Communities = []CommunitySpec{{Size: 50, Density: 0.02}}
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := WriteDataset(d, dir); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Graph.NumEntities() != d.Graph.NumEntities() {
		t.Fatalf("entities: %d vs %d", got.Graph.NumEntities(), d.Graph.NumEntities())
	}
	if got.Graph.NumEdgesTotal() != d.Graph.NumEdgesTotal() {
		t.Fatalf("edges: %d vs %d", got.Graph.NumEdgesTotal(), d.Graph.NumEdgesTotal())
	}
	// Profiles survive by label (load order equals write order here).
	for v := 0; v < d.Graph.NumEntities(); v++ {
		id := hin.EntityID(v)
		if got.Graph.Label(id) != d.Graph.Label(id) {
			t.Fatalf("label mismatch at %d", v)
		}
		a, b := got.Graph.Attrs(id), d.Graph.Attrs(id)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("attr mismatch at %d[%d]", v, i)
			}
		}
		ta, tb := got.Graph.Set(TagsAttr, id), d.Graph.Set(TagsAttr, id)
		if len(ta) != len(tb) {
			t.Fatalf("tags mismatch at %d", v)
		}
		for i := range ta {
			if ta[i] != tb[i] {
				t.Fatalf("tag %d mismatch at %d", i, v)
			}
		}
	}
	// Edges with strengths survive.
	for lt := 0; lt < 4; lt++ {
		for v := 0; v < d.Graph.NumEntities(); v++ {
			tos, ws := d.Graph.OutEdges(hin.LinkTypeID(lt), hin.EntityID(v))
			for i, to := range tos {
				w, ok := got.Graph.FindEdge(hin.LinkTypeID(lt), hin.EntityID(v), to)
				if !ok || w != ws[i] {
					t.Fatalf("edge lt=%d %d->%d lost or changed", lt, v, to)
				}
			}
		}
	}
	// Rec log, items, communities survive.
	if len(got.Rec) != len(d.Rec) || len(got.Items) != len(d.Items) {
		t.Fatalf("rec/items: %d/%d vs %d/%d", len(got.Rec), len(got.Items), len(d.Rec), len(d.Items))
	}
	for i := range d.Rec {
		if got.Rec[i] != d.Rec[i] {
			t.Fatalf("rec %d mismatch", i)
		}
	}
	if len(got.Communities) != 1 || len(got.Communities[0]) != 50 {
		t.Fatal("communities lost")
	}
	for i, v := range d.Communities[0] {
		if got.Communities[0][i] != v {
			t.Fatalf("community member %d mismatch", i)
		}
	}
}

func TestLoadDatasetMissingDir(t *testing.T) {
	if _, err := LoadDataset(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing directory accepted")
	}
}

func TestLoadDatasetCorruptProfile(t *testing.T) {
	d, err := Generate(DefaultConfig(20, 1))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := WriteDataset(d, dir); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name    string
		content string
	}{
		{"too few fields", "u1\t1980\n"},
		{"bad yob", "u1\tabc\t0\t10\t\n"},
		{"bad tag", "u1\t1980\t0\t10\tx;y\n"},
		{"duplicate user", "u1\t1980\t0\t10\t\nu1\t1980\t0\t10\t\n"},
	} {
		if err := os.WriteFile(filepath.Join(dir, "user_profile.txt"), []byte(tc.content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadDataset(dir); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestLoadDatasetUnknownUserInEdges(t *testing.T) {
	d, err := Generate(DefaultConfig(20, 1))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := WriteDataset(d, dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "user_sns.txt"), []byte("ghost\tu0000001\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDataset(dir); err == nil {
		t.Fatal("unknown user in follow file accepted")
	}
}

func TestLoadDatasetCorruptEdgeFiles(t *testing.T) {
	d, err := Generate(DefaultConfig(20, 2))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := WriteDataset(d, dir); err != nil {
		t.Fatal(err)
	}
	cases := []struct{ file, content string }{
		{"user_mention.txt", "u0000001\tu0000002\n"},          // missing strength
		{"user_mention.txt", "u0000001\tu0000002\tNaN\n"},     // bad strength
		{"user_mention.txt", "u0000001\tu0000002\t0\n"},       // zero strength
		{"user_sns.txt", "u0000001\tu0000002\textra\n"},       // too many fields
		{"rec_log.txt", "u0000001\tx\t1\n"},                   // bad item id
		{"rec_log.txt", "ghost\t1\t1\n"},                      // unknown user
		{"item.txt", "x\tname\tcat\n"},                        // bad item id
		{"communities.txt", "ghost\n"},                        // unknown member
	}
	for _, tc := range cases {
		if err := os.WriteFile(filepath.Join(dir, tc.file), []byte(tc.content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadDataset(dir); err == nil {
			t.Errorf("%s with %q: expected error", tc.file, tc.content)
		}
		// Restore a clean copy for the next case.
		if err := WriteDataset(d, dir); err != nil {
			t.Fatal(err)
		}
	}
}

func TestWriteDatasetToUnwritableDir(t *testing.T) {
	d, err := Generate(DefaultConfig(5, 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteDataset(d, "/proc/definitely/not/writable"); err == nil {
		t.Fatal("unwritable directory accepted")
	}
}
