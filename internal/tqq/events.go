package tqq

import (
	"fmt"

	"github.com/hinpriv/dehin/internal/hin"
	"github.com/hinpriv/dehin/internal/randx"
)

// EventConfig parameterizes the event-level generator, which materializes
// tweets and comments as entities (the paper's Figure 1 network) rather
// than pre-projected user-user links. Projecting the result along
// TargetMetaPaths yields a TargetSchema network, exercising the paper's
// short-circuited-feature machinery end to end.
type EventConfig struct {
	Users int
	Seed  uint64

	// TweetsPerUser and CommentsPerUser are mean activity counts
	// (geometrically distributed around these means).
	TweetsPerUser   float64
	CommentsPerUser float64
	// MentionProb is the chance a tweet or comment mentions a user;
	// RetweetProb the chance a tweet retweets another tweet; each comment
	// always attaches to some tweet.
	MentionProb float64
	RetweetProb float64
	// FollowAvgDeg is the mean follow out-degree.
	FollowAvgDeg float64

	// Profile model (shared with Config).
	YearMin, YearMax int
	GenderWeights    []float64
	TweetCountMax    int
	TagUniverse      int
	MaxTags          int
	TagZipf          float64
}

// DefaultEventConfig returns an event-level configuration for the given
// user count.
func DefaultEventConfig(users int, seed uint64) EventConfig {
	base := DefaultConfig(users, seed)
	return EventConfig{
		Users:           users,
		Seed:            seed,
		TweetsPerUser:   4,
		CommentsPerUser: 3,
		MentionProb:     0.5,
		RetweetProb:     0.4,
		FollowAvgDeg:    5,
		YearMin:         base.YearMin,
		YearMax:         base.YearMax,
		GenderWeights:   base.GenderWeights,
		TweetCountMax:   base.TweetCountMax,
		TagUniverse:     base.TagUniverse,
		MaxTags:         base.MaxTags,
		TagZipf:         base.TagZipf,
	}
}

// GenerateEvents synthesizes an event-level t.qq network over EventSchema:
// users post tweets and comments, tweets mention users and retweet tweets,
// comments mention users and attach to tweets, and users follow users.
func GenerateEvents(cfg EventConfig) (*hin.Graph, error) {
	if cfg.Users < 2 {
		return nil, fmt.Errorf("tqq: event generator needs >= 2 users, got %d", cfg.Users)
	}
	rng := randx.New(cfg.Seed)
	schema := EventSchema()
	b := hin.NewBuilder(schema)

	gender, err := randx.NewAlias(cfg.GenderWeights)
	if err != nil {
		return nil, err
	}
	tagPop, err := randx.NewAlias(randx.ZipfWeights(cfg.TagUniverse, cfg.TagZipf))
	if err != nil {
		return nil, err
	}

	userType, _ := schema.EntityTypeID("User")
	tweetType, _ := schema.EntityTypeID("Tweet")
	commentType, _ := schema.EntityTypeID("Comment")
	lt := func(name string) hin.LinkTypeID { return schema.MustLinkTypeID(name) }

	users := make([]hin.EntityID, cfg.Users)
	prng := rng.Split(1)
	for i := range users {
		yob := int64(prng.IntRange(cfg.YearMin, cfg.YearMax))
		gen := int64(gender.Sample(prng))
		tweets := int64(prng.LogUniformInt(0, cfg.TweetCountMax))
		ntags := prng.Intn(cfg.MaxTags + 1)
		users[i] = b.AddEntity(userType, fmt.Sprintf("u%05d", i), yob, gen, tweets, int64(ntags))
		if ntags > 0 {
			tags := make([]int32, 0, ntags)
			for len(tags) < ntags {
				t := int32(tagPop.Sample(prng))
				if !containsInt32(tags, t) {
					tags = append(tags, t)
				}
			}
			b.SetSet(TagsAttr, users[i], tags)
		}
	}

	// Tweets: posted, possibly mentioning users and retweeting earlier
	// tweets.
	trng := rng.Split(2)
	var tweets []hin.EntityID
	tweetAuthor := make(map[hin.EntityID]int)
	for i, u := range users {
		n := activity(trng, cfg.TweetsPerUser)
		for j := 0; j < n; j++ {
			tw := b.AddEntity(tweetType, fmt.Sprintf("t%d.%d", i, j))
			if err := b.AddEdge(lt("post"), u, tw, 1); err != nil {
				return nil, err
			}
			if trng.Bool(cfg.MentionProb) {
				m := users[trng.Intn(cfg.Users)]
				if m != u {
					if err := b.AddEdge(lt("tweet_mention"), tw, m, 1); err != nil {
						return nil, err
					}
				}
			}
			if len(tweets) > 0 && trng.Bool(cfg.RetweetProb) {
				orig := tweets[trng.Intn(len(tweets))]
				if tweetAuthor[orig] != i {
					if err := b.AddEdge(lt("retweet_of"), tw, orig, 1); err != nil {
						return nil, err
					}
				}
			}
			tweets = append(tweets, tw)
			tweetAuthor[tw] = i
		}
	}
	if len(tweets) == 0 {
		return nil, fmt.Errorf("tqq: event generator produced no tweets; raise TweetsPerUser")
	}

	// Comments: posted, attached to a tweet, possibly mentioning users.
	crng := rng.Split(3)
	for i, u := range users {
		n := activity(crng, cfg.CommentsPerUser)
		for j := 0; j < n; j++ {
			c := b.AddEntity(commentType, fmt.Sprintf("c%d.%d", i, j))
			if err := b.AddEdge(lt("post_comment"), u, c, 1); err != nil {
				return nil, err
			}
			target := tweets[crng.Intn(len(tweets))]
			if err := b.AddEdge(lt("comment_on"), c, target, 1); err != nil {
				return nil, err
			}
			if crng.Bool(cfg.MentionProb) {
				m := users[crng.Intn(cfg.Users)]
				if m != u {
					if err := b.AddEdge(lt("comment_mention"), c, m, 1); err != nil {
						return nil, err
					}
				}
			}
		}
	}

	// Follow edges.
	frng := rng.Split(4)
	for _, u := range users {
		n := activity(frng, cfg.FollowAvgDeg)
		if n > cfg.Users-1 {
			n = cfg.Users - 1
		}
		for _, j := range frng.SampleWithoutReplacement(cfg.Users, n) {
			v := users[j]
			if v == u {
				continue
			}
			if err := b.AddEdge(lt(LinkFollow), u, v, 1); err != nil {
				return nil, err
			}
		}
	}
	return b.Build()
}

// activity draws a non-negative activity count with the given mean.
func activity(rng *randx.RNG, mean float64) int {
	if mean <= 0 {
		return 0
	}
	return rng.Geometric(1/(mean+1)) - 1
}

// ProjectEvents projects an event-level network onto the target network
// schema along the paper's target meta paths, returning the projected
// user-user graph and the original user entity ids.
func ProjectEvents(g *hin.Graph) (*hin.Graph, []hin.EntityID, error) {
	return hin.ProjectGraph(g, "User", TargetMetaPaths())
}
