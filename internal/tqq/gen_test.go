package tqq

import (
	"math"
	"testing"

	"github.com/hinpriv/dehin/internal/hin"
	"github.com/hinpriv/dehin/internal/randx"
)

func TestGenerateBasic(t *testing.T) {
	cfg := DefaultConfig(2000, 7)
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := d.Graph
	if g.NumEntities() != 2000 {
		t.Fatalf("users = %d", g.NumEntities())
	}
	if g.NumEdgesTotal() == 0 {
		t.Fatal("no edges generated")
	}
	for v := 0; v < g.NumEntities(); v++ {
		id := hin.EntityID(v)
		yob := g.Attr(id, AttrYob)
		if yob < int64(cfg.YearMin) || yob > int64(cfg.YearMax) {
			t.Fatalf("yob out of range: %d", yob)
		}
		if gen := g.Attr(id, AttrGender); gen < 0 || gen >= int64(len(cfg.GenderWeights)) {
			t.Fatalf("gender out of range: %d", gen)
		}
		if tw := g.Attr(id, AttrTweets); tw < 0 || tw > int64(cfg.TweetCountMax) {
			t.Fatalf("tweets out of range: %d", tw)
		}
		nt := g.Attr(id, AttrNumTags)
		if nt < 0 || nt > int64(cfg.MaxTags) {
			t.Fatalf("numtags out of range: %d", nt)
		}
		if int64(len(g.Set(TagsAttr, id))) != nt {
			t.Fatalf("numtags attr %d disagrees with tag set %v", nt, g.Set(TagsAttr, id))
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig(500, 42)
	cfg.Communities = []CommunitySpec{{Size: 100, Density: 0.01}}
	d1, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Graph.NumEdgesTotal() != d2.Graph.NumEdgesTotal() {
		t.Fatalf("edge counts differ: %d vs %d", d1.Graph.NumEdgesTotal(), d2.Graph.NumEdgesTotal())
	}
	for v := 0; v < d1.Graph.NumEntities(); v++ {
		id := hin.EntityID(v)
		a1, a2 := d1.Graph.Attrs(id), d2.Graph.Attrs(id)
		for i := range a1 {
			if a1[i] != a2[i] {
				t.Fatalf("entity %d attr %d differs", v, i)
			}
		}
		for lt := 0; lt < 4; lt++ {
			t1, w1 := d1.Graph.OutEdges(hin.LinkTypeID(lt), id)
			t2, w2 := d2.Graph.OutEdges(hin.LinkTypeID(lt), id)
			if len(t1) != len(t2) {
				t.Fatalf("entity %d lt %d degree differs", v, lt)
			}
			for i := range t1 {
				if t1[i] != t2[i] || w1[i] != w2[i] {
					t.Fatalf("entity %d lt %d edge %d differs", v, lt, i)
				}
			}
		}
	}
	if len(d1.Rec) != len(d2.Rec) {
		t.Fatal("rec logs differ")
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	d1, err := Generate(DefaultConfig(300, 1))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Generate(DefaultConfig(300, 2))
	if err != nil {
		t.Fatal(err)
	}
	if d1.Graph.NumEdgesTotal() == d2.Graph.NumEdgesTotal() {
		// Edge counts could coincide; check attributes too before failing.
		same := true
		for v := 0; v < 50; v++ {
			if d1.Graph.Attr(hin.EntityID(v), AttrTweets) != d2.Graph.Attr(hin.EntityID(v), AttrTweets) {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical datasets")
		}
	}
}

func TestProfileCalibration(t *testing.T) {
	// Section 6.1 reports average cardinalities of 3 (gender), 87 (yob),
	// 643 (tweet count) and 11 (number of tags) per 1000-user sample. The
	// generator must land near them.
	d, err := Generate(DefaultConfig(1000, 99))
	if err != nil {
		t.Fatal(err)
	}
	g := d.Graph
	if c := hin.AttrCardinality(g, 0, AttrGender); c != 3 {
		t.Errorf("gender cardinality = %d, want 3", c)
	}
	if c := hin.AttrCardinality(g, 0, AttrYob); c < 80 || c > 87 {
		t.Errorf("yob cardinality = %d, want ~87", c)
	}
	if c := hin.AttrCardinality(g, 0, AttrTweets); c < 550 || c > 750 {
		t.Errorf("tweet-count cardinality = %d, want ~643", c)
	}
	if c := hin.AttrCardinality(g, 0, AttrNumTags); c != 11 {
		t.Errorf("numtags cardinality = %d, want 11", c)
	}
}

func TestPlantedCommunityDensity(t *testing.T) {
	for _, density := range []float64{0.001, 0.005, 0.01} {
		cfg := DefaultConfig(3000, 5)
		cfg.Communities = []CommunitySpec{{Size: 500, Density: density}}
		d, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(d.Communities) != 1 || len(d.Communities[0]) != 500 {
			t.Fatalf("density %g: communities misplaced", density)
		}
		sub, _, err := d.Graph.Induced(d.Communities[0])
		if err != nil {
			t.Fatal(err)
		}
		got, err := hin.Density(sub)
		if err != nil {
			t.Fatal(err)
		}
		// Exact up to integer rounding of the edge budget.
		tol := 4.0 / float64(hin.MaxEdges(sub.Schema(), 500))
		if math.Abs(got-density) > tol {
			t.Errorf("density %g: induced density %g (tol %g)", density, got, tol)
		}
	}
}

func TestMultipleCommunitiesDisjoint(t *testing.T) {
	cfg := DefaultConfig(2000, 3)
	cfg.Communities = []CommunitySpec{
		{Size: 300, Density: 0.01},
		{Size: 300, Density: 0.002},
	}
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[hin.EntityID]bool)
	for _, c := range d.Communities {
		for _, v := range c {
			if seen[v] {
				t.Fatalf("user %d in two communities", v)
			}
			seen[v] = true
		}
	}
	// Each community keeps its own density.
	for i, want := range []float64{0.01, 0.002} {
		sub, _, _ := d.Graph.Induced(d.Communities[i])
		got, _ := hin.Density(sub)
		tol := 4.0 / float64(hin.MaxEdges(sub.Schema(), 300))
		if math.Abs(got-want) > tol {
			t.Errorf("community %d density %g, want %g", i, got, want)
		}
	}
}

func TestCommunityMembersHaveOutsideEdges(t *testing.T) {
	cfg := DefaultConfig(2000, 11)
	cfg.Communities = []CommunitySpec{{Size: 400, Density: 0.01}}
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	member := make(map[hin.EntityID]bool)
	for _, v := range d.Communities[0] {
		member[v] = true
	}
	outside := 0
	for _, v := range d.Communities[0] {
		for lt := 0; lt < 4; lt++ {
			tos, _ := d.Graph.OutEdges(hin.LinkTypeID(lt), v)
			for _, to := range tos {
				if !member[to] {
					outside++
				}
			}
		}
	}
	if outside == 0 {
		t.Fatal("community is isolated from the background network")
	}
}

func TestGenerateErrors(t *testing.T) {
	base := DefaultConfig(100, 1)
	cases := []func(*Config){
		func(c *Config) { c.Users = 0 },
		func(c *Config) { c.YearMax = c.YearMin - 1 },
		func(c *Config) { c.GenderWeights = nil },
		func(c *Config) { c.StrengthP = 0 },
		func(c *Config) { c.StrengthMax = 0 },
		func(c *Config) { c.Communities = []CommunitySpec{{Size: 1, Density: 0.1}} },
		func(c *Config) { c.Communities = []CommunitySpec{{Size: 10, Density: 1.5}} },
		func(c *Config) { c.Communities = []CommunitySpec{{Size: 200, Density: 0.1}} },
		func(c *Config) { c.TagUniverse = 2; c.MaxTags = 5 },
	}
	for i, mod := range cases {
		cfg := base
		mod(&cfg)
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestRecLog(t *testing.T) {
	cfg := DefaultConfig(200, 8)
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Items) != cfg.Items {
		t.Fatalf("items = %d", len(d.Items))
	}
	if len(d.Rec) == 0 {
		t.Fatal("no recommendation log")
	}
	for _, r := range d.Rec {
		if int(r.User) < 0 || int(r.User) >= 200 {
			t.Fatalf("rec user out of range: %d", r.User)
		}
		if int(r.Item) < 0 || int(r.Item) >= cfg.Items {
			t.Fatalf("rec item out of range: %d", r.Item)
		}
	}
	// RecFor returns exactly this user's entries.
	u := d.Rec[0].User
	for _, r := range d.RecFor(u) {
		if r.User != u {
			t.Fatal("RecFor returned foreign entry")
		}
	}
	if _, ok := d.ItemByName(d.Items[3].Name); !ok {
		t.Fatal("ItemByName failed")
	}
	if _, ok := d.ItemByName("no-such-item"); ok {
		t.Fatal("ItemByName found a ghost")
	}
}

func TestSampleTargetAndCommunityTarget(t *testing.T) {
	cfg := DefaultConfig(1500, 13)
	cfg.Communities = []CommunitySpec{{Size: 200, Density: 0.01}}
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := randx.New(1)
	tgt, err := CommunityTarget(d, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if tgt.Graph.NumEntities() != 200 || len(tgt.Orig) != 200 {
		t.Fatalf("target size %d / %d", tgt.Graph.NumEntities(), len(tgt.Orig))
	}
	// Ground truth: target entity attrs equal dataset entity attrs.
	for i := 0; i < 200; i++ {
		want := d.Graph.Attrs(tgt.Orig[i])
		got := tgt.Graph.Attrs(hin.EntityID(i))
		for j := range want {
			if want[j] != got[j] {
				t.Fatalf("target %d attr %d mismatch", i, j)
			}
		}
	}
	// Every target edge exists in the dataset with identical strength.
	for lt := 0; lt < 4; lt++ {
		for v := 0; v < 200; v++ {
			tos, ws := tgt.Graph.OutEdges(hin.LinkTypeID(lt), hin.EntityID(v))
			for i, to := range tos {
				w, ok := d.Graph.FindEdge(hin.LinkTypeID(lt), tgt.Orig[v], tgt.Orig[to])
				if !ok || w != ws[i] {
					t.Fatalf("target edge missing in dataset: lt %d %d->%d", lt, v, to)
				}
			}
		}
	}
	if _, err := CommunityTarget(d, 5, rng); err == nil {
		t.Fatal("missing community accepted")
	}

	rt, err := RandomSample(d, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Graph.NumEntities() != 100 {
		t.Fatalf("random sample size %d", rt.Graph.NumEntities())
	}
	if _, err := RandomSample(d, 99999, rng); err == nil {
		t.Fatal("oversized sample accepted")
	}
}

// TestCommunityDegreeShape pins the degree model DESIGN.md §4 describes:
// at low density most members are isolated per link type (like a sparse
// induced sample of a power-law graph); at high density the isolated
// fraction stays near the configured floor and degree-1 users remain
// plentiful (the mass that makes risk grow from n=1 to n=2).
func TestCommunityDegreeShape(t *testing.T) {
	cfg := DefaultConfig(5000, 61)
	cfg.Communities = []CommunitySpec{
		{Size: 1000, Density: 0.001},
		{Size: 1000, Density: 0.01},
	}
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	isolatedFrac := func(ci int, lt hin.LinkTypeID) float64 {
		sub, _, err := d.Graph.Induced(d.Communities[ci])
		if err != nil {
			t.Fatal(err)
		}
		zero := 0
		for v := 0; v < sub.NumEntities(); v++ {
			if sub.OutDegree(lt, hin.EntityID(v)) == 0 {
				zero++
			}
		}
		return float64(zero) / float64(sub.NumEntities())
	}
	degreeOneFrac := func(ci int, lt hin.LinkTypeID) float64 {
		sub, _, err := d.Graph.Induced(d.Communities[ci])
		if err != nil {
			t.Fatal(err)
		}
		ones := 0
		for v := 0; v < sub.NumEntities(); v++ {
			if sub.OutDegree(lt, hin.EntityID(v)) == 1 {
				ones++
			}
		}
		return float64(ones) / float64(sub.NumEntities())
	}
	for lt := hin.LinkTypeID(0); lt < 4; lt++ {
		sparse := isolatedFrac(0, lt)
		dense := isolatedFrac(1, lt)
		if sparse < 0.5 {
			t.Errorf("lt %d: sparse community isolated fraction %.2f, want most members isolated", lt, sparse)
		}
		if dense < cfg.ZeroOutFrac-0.05 || dense > 0.35 {
			t.Errorf("lt %d: dense community isolated fraction %.2f, want near floor %.2f", lt, dense, cfg.ZeroOutFrac)
		}
		if sparse <= dense {
			t.Errorf("lt %d: isolation must grow as density falls (%.2f vs %.2f)", lt, sparse, dense)
		}
		if d1 := degreeOneFrac(1, lt); d1 < 0.05 {
			t.Errorf("lt %d: dense community degree-1 fraction %.2f, want a heavy low-degree mass", lt, d1)
		}
	}
}

func TestGenerateRejectsBadDegreeModel(t *testing.T) {
	cfg := DefaultConfig(100, 1)
	cfg.ZeroOutFrac = 1
	if _, err := Generate(cfg); err == nil {
		t.Fatal("ZeroOutFrac=1 accepted")
	}
	cfg = DefaultConfig(100, 1)
	cfg.DegreeTailAlpha = 1
	if _, err := Generate(cfg); err == nil {
		t.Fatal("DegreeTailAlpha=1 accepted")
	}
}
