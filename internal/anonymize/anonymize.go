// Package anonymize implements the anonymization schemes the paper
// evaluates DeHIN against, plus utility metrics quantifying what each
// scheme costs:
//
//   - RandomizeIDs - the KDD Cup 2012 release style ("KDDA"): entity ids
//     are replaced by meaningless random strings and entities reordered;
//     structure and attributes are untouched.
//   - CompleteGraph - Complete Graph Anonymity (Section 6.2): every absent
//     link is added as a fake edge so structural k grows to |V|, the best
//     case for the surveyed k-degree / k-neighborhood / k-automorphism /
//     k-symmetry / k-security schemes. Fake short-circuited strengths all
//     take one random constant.
//   - CompleteGraph with VaryWeights - Varying Weight Complete Graph
//     Anonymity (Section 6.3): fake strengths are random per edge,
//     sacrificing far more utility but defeating majority-weight removal.
//   - KDegree - a Liu-Terzi-style k-degree anonymization by edge addition.
//   - GeneralizeStrengths - a k-neighborhood-signature anonymization by
//     strength generalization (coarsening strengths into buckets until
//     every distance-1 neighborhood signature has >= k copies).
//
// Every function in this package is safe for concurrent use: each call
// reads its input graph (never mutating it), builds a fresh output graph,
// and draws randomness only from an RNG derived from the explicit seed
// argument - there is no package-level state. The parallel experiments
// workbench relies on this to release and harden many targets at once.
package anonymize

import (
	"fmt"

	"github.com/hinpriv/dehin/internal/hin"
	"github.com/hinpriv/dehin/internal/randx"
)

// Result is an anonymized graph together with its ground truth: ToOrig[i]
// is the pre-anonymization entity behind anonymized entity i. Experiments
// use ToOrig only for scoring; attacks never see it.
type Result struct {
	Graph  *hin.Graph
	ToOrig []hin.EntityID
}

// RandomizeIDs anonymizes g the way the KDD Cup 2012 release did: entities
// are shuffled, their labels replaced by meaningless random strings, and
// set-attribute values (tag IDs) consistently remapped to meaningless IDs,
// so tag identities cannot be joined with the auxiliary data - only the
// tag count survives, as in the real release. Scalar attributes, links and
// strengths are preserved verbatim (the utility the recommendation task
// needs), which is exactly the residual information DeHIN exploits.
func RandomizeIDs(g *hin.Graph, seed uint64) (*Result, error) {
	rng := randx.New(seed)
	n := g.NumEntities()
	perm := make([]hin.EntityID, n)
	for i, p := range rng.Perm(n) {
		perm[i] = hin.EntityID(p)
	}
	setMap := make(map[int32]int32)
	remapSet := func(vals []int32) []int32 {
		out := make([]int32, len(vals))
		for i, v := range vals {
			m, ok := setMap[v]
			for !ok {
				// Draw fresh meaningless ids, avoiding collisions.
				c := int32(rng.Intn(1 << 30))
				used := false
				for _, x := range setMap {
					if x == c {
						used = true
						break
					}
				}
				if !used {
					m = c
					setMap[v] = c
					ok = true
				}
			}
			out[i] = m
		}
		return out
	}
	ag, err := rebuildWithSets(g, perm, func(i int) string { return anonLabel(rng) }, remapSet)
	if err != nil {
		return nil, err
	}
	return &Result{Graph: ag, ToOrig: perm}, nil
}

// anonLabel draws a random 8-character base-32 string.
func anonLabel(rng *randx.RNG) string {
	const alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZ234567"
	b := make([]byte, 8)
	for i := range b {
		b[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return string(b)
}

// rebuildWithSets constructs a new graph whose entity i is g's entity
// perm[i], relabeled by label(i), transforming set-attribute values through
// remapSet when non-nil. Edges and attributes are carried over.
func rebuildWithSets(g *hin.Graph, perm []hin.EntityID, label func(i int) string, remapSet func([]int32) []int32) (*hin.Graph, error) {
	n := g.NumEntities()
	if len(perm) != n {
		return nil, fmt.Errorf("anonymize: permutation size %d != %d entities", len(perm), n)
	}
	inv := make([]hin.EntityID, n)
	seen := make([]bool, n)
	for i, p := range perm {
		if p < 0 || int(p) >= n || seen[p] {
			return nil, fmt.Errorf("anonymize: invalid permutation at %d", i)
		}
		seen[p] = true
		inv[p] = hin.EntityID(i)
	}
	schema := g.Schema()
	b := hin.NewBuilder(schema)
	for i := 0; i < n; i++ {
		old := perm[i]
		b.AddEntity(g.EntityType(old), label(i), g.Attrs(old)...)
		for _, sa := range schema.EntityType(g.EntityType(old)).SetAttrs {
			if s := g.Set(sa, old); len(s) > 0 {
				if remapSet != nil {
					s = remapSet(s)
				}
				b.SetSet(sa, hin.EntityID(i), s)
			}
		}
	}
	for lt := 0; lt < schema.NumLinkTypes(); lt++ {
		ltid := hin.LinkTypeID(lt)
		for old := 0; old < n; old++ {
			tos, ws := g.OutEdges(ltid, hin.EntityID(old))
			for j, to := range tos {
				if err := b.AddEdge(ltid, inv[old], inv[to], ws[j]); err != nil {
					return nil, err
				}
			}
		}
	}
	return b.Build()
}

// CGAOptions parameterizes CompleteGraph.
type CGAOptions struct {
	// VaryWeights switches from Complete Graph Anonymity (all fake
	// strengths equal one random constant per link type) to Varying
	// Weight Complete Graph Anonymity (each fake strength random).
	VaryWeights bool
	// StrengthMax bounds random fake strengths (and the constant). It
	// should match the real data's strength range so fakes blend in.
	StrengthMax int
	// Seed drives the fake-strength randomness.
	Seed uint64
}

// CompleteGraph returns a copy of g in which every link type is completed:
// all absent ordered pairs gain a fake edge. Entity order and labels are
// untouched (compose with RandomizeIDs for a full release pipeline). It is
// intended for released target graphs (~10^3 entities); completing a graph
// with more than ~5000 entities is rejected as a likely mistake, since the
// result has O(|L| n^2) edges.
func CompleteGraph(g *hin.Graph, opt CGAOptions) (*hin.Graph, error) {
	n := g.NumEntities()
	if n > 5000 {
		return nil, fmt.Errorf("anonymize: refusing to complete a graph with %d entities", n)
	}
	if opt.StrengthMax < 1 {
		return nil, fmt.Errorf("anonymize: StrengthMax must be >= 1")
	}
	schema := g.Schema()
	for lt := 0; lt < schema.NumLinkTypes(); lt++ {
		decl := schema.LinkType(hin.LinkTypeID(lt))
		if decl.From != decl.To {
			return nil, fmt.Errorf("anonymize: cannot complete cross-type link %q", decl.Name)
		}
	}
	rng := randx.New(opt.Seed)
	b := hin.NewBuilder(schema)
	for i := 0; i < n; i++ {
		id := hin.EntityID(i)
		b.AddEntity(g.EntityType(id), g.Label(id), g.Attrs(id)...)
		for _, sa := range schema.EntityType(g.EntityType(id)).SetAttrs {
			if s := g.Set(sa, id); len(s) > 0 {
				b.SetSet(sa, id, s)
			}
		}
	}
	for lt := 0; lt < schema.NumLinkTypes(); lt++ {
		ltid := hin.LinkTypeID(lt)
		decl := schema.LinkType(ltid)
		constant := int32(rng.IntRange(1, opt.StrengthMax))
		for u := 0; u < n; u++ {
			uid := hin.EntityID(u)
			tos, ws := g.OutEdges(ltid, uid)
			// Real edges keep their strengths.
			for j, to := range tos {
				if err := b.AddEdge(ltid, uid, to, ws[j]); err != nil {
					return nil, err
				}
			}
			// Fake edges fill the gaps; tos is sorted, walk it in step.
			j := 0
			for v := 0; v < n; v++ {
				if v == u && !decl.AllowSelf {
					continue
				}
				for j < len(tos) && int(tos[j]) < v {
					j++
				}
				if j < len(tos) && int(tos[j]) == v {
					continue // real edge exists
				}
				w := int32(1)
				if decl.Weighted {
					if opt.VaryWeights {
						w = int32(rng.IntRange(1, opt.StrengthMax))
					} else {
						w = constant
					}
				}
				if err := b.AddEdge(ltid, uid, hin.EntityID(v), w); err != nil {
					return nil, err
				}
			}
		}
	}
	return b.Build()
}
