package anonymize

import (
	"fmt"

	"github.com/hinpriv/dehin/internal/hin"
)

// Utility quantifies the information loss an anonymization inflicted,
// comparing the released graph against the original. The paper's Section
// 6.3 trades exactly this against privacy: CGA costs fake edges with a
// constant weight, VW-CGA additionally destroys the weight distribution.
type Utility struct {
	// EdgesAdded and EdgesRemoved count edge-set changes across all link
	// types.
	EdgesAdded, EdgesRemoved int64
	// WeightL1 sums |w_anon - w_orig| over edges present in both graphs.
	WeightL1 int64
	// FakeWeightMass sums the strengths of added edges (the spurious
	// signal injected into short-circuited features).
	FakeWeightMass int64
}

// EdgeEditDistance is the total number of edge insertions plus deletions.
func (u Utility) EdgeEditDistance() int64 { return u.EdgesAdded + u.EdgesRemoved }

// TotalLoss is a single scalar: edge edits plus weight perturbation plus
// fake weight mass. Lower is better utility.
func (u Utility) TotalLoss() int64 {
	return u.EdgeEditDistance() + u.WeightL1 + u.FakeWeightMass
}

// MeasureUtility compares anonymized against original. Both graphs must
// have the same entity count and schema link-type count, with entity i
// denoting the same individual in both (i.e. measure before any ID
// permutation, or after composing it away).
func MeasureUtility(original, anonymized *hin.Graph) (Utility, error) {
	if original.NumEntities() != anonymized.NumEntities() {
		return Utility{}, fmt.Errorf("anonymize: utility comparison across sizes %d vs %d",
			original.NumEntities(), anonymized.NumEntities())
	}
	if original.Schema().NumLinkTypes() != anonymized.Schema().NumLinkTypes() {
		return Utility{}, fmt.Errorf("anonymize: utility comparison across schemas")
	}
	var u Utility
	n := original.NumEntities()
	for lt := 0; lt < original.Schema().NumLinkTypes(); lt++ {
		ltid := hin.LinkTypeID(lt)
		for v := 0; v < n; v++ {
			ot, ow := original.OutEdges(ltid, hin.EntityID(v))
			at, aw := anonymized.OutEdges(ltid, hin.EntityID(v))
			// Both adjacency rows are sorted; merge-walk them.
			i, j := 0, 0
			for i < len(ot) || j < len(at) {
				switch {
				case j >= len(at) || (i < len(ot) && ot[i] < at[j]):
					u.EdgesRemoved++
					i++
				case i >= len(ot) || at[j] < ot[i]:
					u.EdgesAdded++
					u.FakeWeightMass += int64(aw[j])
					j++
				default:
					d := int64(aw[j]) - int64(ow[i])
					if d < 0 {
						d = -d
					}
					u.WeightL1 += d
					i++
					j++
				}
			}
		}
	}
	return u, nil
}
