package anonymize

import (
	"testing"

	"github.com/hinpriv/dehin/internal/hin"
	"github.com/hinpriv/dehin/internal/tqq"
)

func smallDataset(t testing.TB, users int, seed uint64) *tqq.Dataset {
	t.Helper()
	cfg := tqq.DefaultConfig(users, seed)
	d, err := tqq.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRandomizeIDsPreservesStructure(t *testing.T) {
	d := smallDataset(t, 200, 1)
	g := d.Graph
	res, err := RandomizeIDs(g, 9)
	if err != nil {
		t.Fatal(err)
	}
	ag := res.Graph
	if ag.NumEntities() != g.NumEntities() || ag.NumEdgesTotal() != g.NumEdgesTotal() {
		t.Fatal("size changed")
	}
	// Ground truth: anonymized entity i carries orig's attributes and, up
	// to relabeling, orig's edges.
	for i := 0; i < ag.NumEntities(); i++ {
		orig := res.ToOrig[i]
		a, b := ag.Attrs(hin.EntityID(i)), g.Attrs(orig)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("attrs changed for %d", i)
			}
		}
		if ag.Label(hin.EntityID(i)) == g.Label(orig) {
			t.Fatalf("label %q not anonymized", g.Label(orig))
		}
		ta, tb := ag.Set(tqq.TagsAttr, hin.EntityID(i)), g.Set(tqq.TagsAttr, orig)
		if len(ta) != len(tb) {
			t.Fatalf("tags changed for %d", i)
		}
	}
	// Edges map through ToOrig with identical strengths.
	inv := make(map[hin.EntityID]hin.EntityID)
	for i, o := range res.ToOrig {
		inv[o] = hin.EntityID(i)
	}
	for lt := 0; lt < 4; lt++ {
		for v := 0; v < g.NumEntities(); v++ {
			tos, ws := g.OutEdges(hin.LinkTypeID(lt), hin.EntityID(v))
			for j, to := range tos {
				w, ok := ag.FindEdge(hin.LinkTypeID(lt), inv[hin.EntityID(v)], inv[to])
				if !ok || w != ws[j] {
					t.Fatalf("edge lt=%d %d->%d lost", lt, v, to)
				}
			}
		}
	}
}

func TestRandomizeIDsDeterministic(t *testing.T) {
	d := smallDataset(t, 100, 2)
	r1, err := RandomizeIDs(d.Graph, 5)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RandomizeIDs(d.Graph, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.ToOrig {
		if r1.ToOrig[i] != r2.ToOrig[i] {
			t.Fatal("permutation not deterministic")
		}
		if r1.Graph.Label(hin.EntityID(i)) != r2.Graph.Label(hin.EntityID(i)) {
			t.Fatal("labels not deterministic")
		}
	}
}

func TestCompleteGraphCGA(t *testing.T) {
	d := smallDataset(t, 60, 3)
	g := d.Graph
	cg, err := CompleteGraph(g, CGAOptions{StrengthMax: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	n := int64(60)
	// Every link type complete: n(n-1) edges each (no self links).
	for lt := 0; lt < 4; lt++ {
		if got := cg.NumEdges(hin.LinkTypeID(lt)); got != n*(n-1) {
			t.Fatalf("lt %d edges = %d, want %d", lt, got, n*(n-1))
		}
	}
	den, err := hin.Density(cg)
	if err != nil {
		t.Fatal(err)
	}
	if den != 1 {
		t.Fatalf("complete graph density = %g", den)
	}
	// Real edges keep their strengths.
	for lt := 0; lt < 4; lt++ {
		for v := 0; v < 60; v++ {
			tos, ws := g.OutEdges(hin.LinkTypeID(lt), hin.EntityID(v))
			for j, to := range tos {
				w, ok := cg.FindEdge(hin.LinkTypeID(lt), hin.EntityID(v), to)
				if !ok || w != ws[j] {
					t.Fatalf("real edge perturbed: lt %d %d->%d", lt, v, to)
				}
			}
		}
	}
	// Fake weighted edges all share one constant per link type.
	for _, name := range []string{tqq.LinkMention, tqq.LinkRetweet, tqq.LinkComment} {
		lt := cg.Schema().MustLinkTypeID(name)
		seen := make(map[int32]int)
		for v := 0; v < 60; v++ {
			tos, ws := cg.OutEdges(lt, hin.EntityID(v))
			for j, to := range tos {
				if _, real := g.FindEdge(lt, hin.EntityID(v), to); !real {
					seen[ws[j]]++
				}
			}
		}
		if len(seen) != 1 {
			t.Fatalf("%s: fake strengths not constant: %v", name, seen)
		}
	}
}

func TestCompleteGraphVaryWeights(t *testing.T) {
	d := smallDataset(t, 60, 4)
	cg, err := CompleteGraph(d.Graph, CGAOptions{VaryWeights: true, StrengthMax: 50, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	lt := cg.Schema().MustLinkTypeID(tqq.LinkMention)
	seen := make(map[int32]int)
	for v := 0; v < 60; v++ {
		_, ws := cg.OutEdges(lt, hin.EntityID(v))
		for _, w := range ws {
			seen[w]++
		}
	}
	if len(seen) < 10 {
		t.Fatalf("varying weights produced only %d distinct strengths", len(seen))
	}
}

func TestCompleteGraphErrors(t *testing.T) {
	d := smallDataset(t, 20, 5)
	if _, err := CompleteGraph(d.Graph, CGAOptions{StrengthMax: 0}); err == nil {
		t.Fatal("StrengthMax 0 accepted")
	}
	big := smallDataset(t, 5001, 5)
	if _, err := CompleteGraph(big.Graph, CGAOptions{StrengthMax: 10}); err == nil {
		t.Fatal("oversized graph accepted")
	}
	cross := hin.MustSchema(
		[]hin.EntityType{{Name: "A"}, {Name: "B"}},
		[]hin.LinkType{{Name: "x", From: "A", To: "B"}},
	)
	b := hin.NewBuilder(cross)
	b.AddEntity(0, "")
	b.AddEntity(1, "")
	cg, _ := b.Build()
	if _, err := CompleteGraph(cg, CGAOptions{StrengthMax: 10}); err == nil {
		t.Fatal("cross-type link accepted")
	}
}

func TestKDegree(t *testing.T) {
	d := smallDataset(t, 150, 6)
	for _, k := range []int{2, 5, 10} {
		ag, err := KDegree(d.Graph, KDegreeOptions{K: k, StrengthMax: 50, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		for lt := 0; lt < 4; lt++ {
			if level := DegreeAnonymityLevel(ag, hin.LinkTypeID(lt)); level < k {
				t.Fatalf("k=%d: link type %d only %d-degree anonymous", k, lt, level)
			}
		}
		// Edge addition only: originals survive.
		for lt := 0; lt < 4; lt++ {
			for v := 0; v < 150; v++ {
				tos, _ := d.Graph.OutEdges(hin.LinkTypeID(lt), hin.EntityID(v))
				for _, to := range tos {
					if _, ok := ag.FindEdge(hin.LinkTypeID(lt), hin.EntityID(v), to); !ok {
						t.Fatalf("k=%d: original edge removed", k)
					}
				}
			}
		}
		if ag.NumEdgesTotal() < d.Graph.NumEdgesTotal() {
			t.Fatal("edges vanished")
		}
	}
}

func TestKDegreeErrors(t *testing.T) {
	d := smallDataset(t, 30, 8)
	if _, err := KDegree(d.Graph, KDegreeOptions{K: 0, StrengthMax: 10, Seed: 1}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := KDegree(d.Graph, KDegreeOptions{K: 31, StrengthMax: 10, Seed: 1}); err == nil {
		t.Fatal("k>n accepted")
	}
	if _, err := KDegree(d.Graph, KDegreeOptions{K: 2, StrengthMax: 0, Seed: 1}); err == nil {
		t.Fatal("strengthMax=0 accepted")
	}
}

func TestGeneralizeStrengths(t *testing.T) {
	d := smallDataset(t, 120, 10)
	ag, width, achieved, err := GeneralizeStrengths(d.Graph, 2, 60)
	if err != nil {
		t.Fatal(err)
	}
	if width < 1 {
		t.Fatalf("width = %d", width)
	}
	// Same edge sets, only strengths coarsened (never increased).
	if ag.NumEdgesTotal() != d.Graph.NumEdgesTotal() {
		t.Fatal("generalization changed the edge set")
	}
	for lt := 0; lt < 4; lt++ {
		for v := 0; v < 120; v++ {
			tos, ws := d.Graph.OutEdges(hin.LinkTypeID(lt), hin.EntityID(v))
			for j, to := range tos {
				w, ok := ag.FindEdge(hin.LinkTypeID(lt), hin.EntityID(v), to)
				if !ok {
					t.Fatal("edge vanished")
				}
				if w > ws[j] {
					t.Fatalf("bucketing raised a strength: %d -> %d", ws[j], w)
				}
			}
		}
	}
	if achieved {
		if level := neighborhoodAnonymityLevel(ag); level < 2 {
			t.Fatalf("claimed k=2 but level=%d", level)
		}
	}
}

func TestGeneralizeStrengthsK1IsIdentity(t *testing.T) {
	d := smallDataset(t, 50, 11)
	ag, width, achieved, err := GeneralizeStrengths(d.Graph, 1, 60)
	if err != nil {
		t.Fatal(err)
	}
	if !achieved || width != 1 {
		t.Fatalf("k=1 should hold immediately: width=%d achieved=%v", width, achieved)
	}
	for lt := 0; lt < 4; lt++ {
		for v := 0; v < 50; v++ {
			tos, ws := d.Graph.OutEdges(hin.LinkTypeID(lt), hin.EntityID(v))
			for j, to := range tos {
				w, _ := ag.FindEdge(hin.LinkTypeID(lt), hin.EntityID(v), to)
				if w != ws[j] {
					t.Fatal("k=1 must not modify strengths")
				}
			}
		}
	}
}

func TestGeneralizeStrengthsErrors(t *testing.T) {
	d := smallDataset(t, 20, 12)
	if _, _, _, err := GeneralizeStrengths(d.Graph, 0, 10); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, _, _, err := GeneralizeStrengths(d.Graph, 2, 0); err == nil {
		t.Fatal("strengthMax=0 accepted")
	}
}

func TestMeasureUtility(t *testing.T) {
	d := smallDataset(t, 80, 13)
	g := d.Graph
	// Identity: zero loss.
	u, err := MeasureUtility(g, g)
	if err != nil {
		t.Fatal(err)
	}
	if u.TotalLoss() != 0 {
		t.Fatalf("self-comparison loss = %+v", u)
	}
	// CGA: only additions; no removals or weight perturbation.
	cg, err := CompleteGraph(g, CGAOptions{StrengthMax: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	u, err = MeasureUtility(g, cg)
	if err != nil {
		t.Fatal(err)
	}
	if u.EdgesRemoved != 0 || u.WeightL1 != 0 {
		t.Fatalf("CGA should only add: %+v", u)
	}
	wantAdded := 4*int64(80*79) - g.NumEdgesTotal()
	if u.EdgesAdded != wantAdded {
		t.Fatalf("EdgesAdded = %d, want %d", u.EdgesAdded, wantAdded)
	}
	// VW-CGA injects strictly more fake weight mass than CGA with the
	// same cap would on average... at minimum it is positive.
	if u.FakeWeightMass <= 0 {
		t.Fatal("no fake weight mass recorded")
	}
	// Generalization: no edge edits, only weight L1.
	ag, _, _, err := GeneralizeStrengths(g, 3, 60)
	if err != nil {
		t.Fatal(err)
	}
	u, err = MeasureUtility(g, ag)
	if err != nil {
		t.Fatal(err)
	}
	if u.EdgesAdded != 0 || u.EdgesRemoved != 0 {
		t.Fatalf("generalization edited edges: %+v", u)
	}
}

func TestMeasureUtilityErrors(t *testing.T) {
	a := smallDataset(t, 20, 1).Graph
	b := smallDataset(t, 30, 1).Graph
	if _, err := MeasureUtility(a, b); err == nil {
		t.Fatal("size mismatch accepted")
	}
}
