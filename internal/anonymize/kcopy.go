package anonymize

import (
	"fmt"

	"github.com/hinpriv/dehin/internal/hin"
)

// KCopy releases k disjoint copies of g as one graph: every entity then
// has k-1 automorphic images (the copy-swap automorphisms), so the release
// satisfies k-automorphism / k-symmetry in the strictest possible sense -
// no subgraph an adversary knows can pin an entity below confidence 1/k
// WITHIN the released graph.
//
// It exists to demonstrate the paper's deeper point about the surveyed
// structural schemes: DeHIN does not compare target entities with each
// other, it joins them against an external auxiliary network - and each of
// the k copies joins to the same real individual, so the "k-anonymous"
// release de-anonymizes exactly as well as the original (see the
// anonymize tests). Structural indistinguishability inside the release is
// the wrong invariant to protect.
//
// The returned ToOrig maps each released entity to its original (copy
// c of entity v maps to v).
func KCopy(g *hin.Graph, k int) (*Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("anonymize: k must be >= 1, got %d", k)
	}
	n := g.NumEntities()
	if int64(n)*int64(k) > int64(1)<<30 {
		return nil, fmt.Errorf("anonymize: %d copies of %d entities is too large", k, n)
	}
	schema := g.Schema()
	b := hin.NewBuilder(schema)
	res := &Result{ToOrig: make([]hin.EntityID, 0, n*k)}
	for c := 0; c < k; c++ {
		for v := 0; v < n; v++ {
			id := hin.EntityID(v)
			nid := b.AddEntity(g.EntityType(id), fmt.Sprintf("%s#%d", g.Label(id), c), g.Attrs(id)...)
			for _, sa := range schema.EntityType(g.EntityType(id)).SetAttrs {
				if s := g.Set(sa, id); len(s) > 0 {
					b.SetSet(sa, nid, s)
				}
			}
			res.ToOrig = append(res.ToOrig, id)
		}
	}
	for lt := 0; lt < schema.NumLinkTypes(); lt++ {
		ltid := hin.LinkTypeID(lt)
		for c := 0; c < k; c++ {
			off := hin.EntityID(c * n)
			for v := 0; v < n; v++ {
				tos, ws := g.OutEdges(ltid, hin.EntityID(v))
				for j, to := range tos {
					if err := b.AddEdge(ltid, off+hin.EntityID(v), off+to, ws[j]); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	rg, err := b.Build()
	if err != nil {
		return nil, err
	}
	res.Graph = rg
	return res, nil
}

// AutomorphismLevel verifies the copy-swap anonymity of a KCopy release:
// it returns the number of entities sharing each entity's (attribute,
// per-type out-degree multiset, per-type in-degree) fingerprint, minimized
// over entities - a necessary condition for k-automorphism (every
// automorphic image must share the fingerprint). KCopy(g, k) always scores
// >= k.
func AutomorphismLevel(g *hin.Graph) int {
	counts := make(map[string]int)
	var buf []byte
	for v := 0; v < g.NumEntities(); v++ {
		buf = buf[:0]
		id := hin.EntityID(v)
		for _, a := range g.Attrs(id) {
			buf = appendInt32(buf, int32(a))
			buf = append(buf, ',')
		}
		for lt := 0; lt < g.Schema().NumLinkTypes(); lt++ {
			buf = append(buf, '|')
			buf = appendInt32(buf, int32(g.OutDegree(hin.LinkTypeID(lt), id)))
			buf = append(buf, ':')
			buf = appendInt32(buf, int32(g.InDegree(hin.LinkTypeID(lt), id)))
		}
		counts[string(buf)]++
	}
	min := 0
	for _, c := range counts {
		if min == 0 || c < min {
			min = c
		}
	}
	return min
}
