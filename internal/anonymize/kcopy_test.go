package anonymize

import (
	"testing"

	"github.com/hinpriv/dehin/internal/hin"
)

func TestKCopyStructure(t *testing.T) {
	d := smallDataset(t, 80, 30)
	g := d.Graph
	res, err := KCopy(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	rg := res.Graph
	if rg.NumEntities() != 240 {
		t.Fatalf("entities = %d", rg.NumEntities())
	}
	if rg.NumEdgesTotal() != 3*g.NumEdgesTotal() {
		t.Fatalf("edges = %d, want %d", rg.NumEdgesTotal(), 3*g.NumEdgesTotal())
	}
	// ToOrig maps copy c of v back to v; copies are attribute-identical.
	for c := 0; c < 3; c++ {
		for v := 0; v < 80; v++ {
			rid := hin.EntityID(c*80 + v)
			if res.ToOrig[rid] != hin.EntityID(v) {
				t.Fatalf("ToOrig[%d] = %d", rid, res.ToOrig[rid])
			}
			a, b := rg.Attrs(rid), g.Attrs(hin.EntityID(v))
			for i := range a {
				if a[i] != b[i] {
					t.Fatal("copy attrs diverged")
				}
			}
		}
	}
	// Copies are disjoint: no edge crosses copy boundaries.
	for lt := 0; lt < 4; lt++ {
		for v := 0; v < 240; v++ {
			tos, _ := rg.OutEdges(hin.LinkTypeID(lt), hin.EntityID(v))
			for _, to := range tos {
				if int(to)/80 != v/80 {
					t.Fatalf("edge crosses copies: %d -> %d", v, to)
				}
			}
		}
	}
}

func TestKCopyAutomorphismLevel(t *testing.T) {
	d := smallDataset(t, 60, 31)
	for _, k := range []int{1, 2, 4} {
		res, err := KCopy(d.Graph, k)
		if err != nil {
			t.Fatal(err)
		}
		if level := AutomorphismLevel(res.Graph); level < k {
			t.Fatalf("k=%d: automorphism fingerprint level %d", k, level)
		}
	}
}

func TestKCopyErrors(t *testing.T) {
	d := smallDataset(t, 10, 32)
	if _, err := KCopy(d.Graph, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}
