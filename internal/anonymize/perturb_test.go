package anonymize

import (
	"testing"

	"github.com/hinpriv/dehin/internal/hin"
)

func TestPerturbIdentity(t *testing.T) {
	d := smallDataset(t, 100, 20)
	pg, err := Perturb(d.Graph, PerturbOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if pg.NumEdgesTotal() != d.Graph.NumEdgesTotal() {
		t.Fatal("zero perturbation changed the edge count")
	}
	for lt := 0; lt < 4; lt++ {
		for v := 0; v < 100; v++ {
			tos, ws := d.Graph.OutEdges(hin.LinkTypeID(lt), hin.EntityID(v))
			for j, to := range tos {
				w, ok := pg.FindEdge(hin.LinkTypeID(lt), hin.EntityID(v), to)
				if !ok || w != ws[j] {
					t.Fatal("zero perturbation modified an edge")
				}
			}
		}
	}
}

func TestPerturbDelete(t *testing.T) {
	d := smallDataset(t, 200, 21)
	pg, err := Perturb(d.Graph, PerturbOptions{DeleteProb: 0.5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	before, after := d.Graph.NumEdgesTotal(), pg.NumEdgesTotal()
	if after >= before {
		t.Fatalf("deletion did not shrink: %d -> %d", before, after)
	}
	// Roughly half survive.
	if float64(after) < 0.35*float64(before) || float64(after) > 0.65*float64(before) {
		t.Fatalf("survival rate off: %d of %d", after, before)
	}
	// Survivors are original edges with original strengths.
	for lt := 0; lt < 4; lt++ {
		for v := 0; v < 200; v++ {
			tos, ws := pg.OutEdges(hin.LinkTypeID(lt), hin.EntityID(v))
			for j, to := range tos {
				w, ok := d.Graph.FindEdge(hin.LinkTypeID(lt), hin.EntityID(v), to)
				if !ok || w != ws[j] {
					t.Fatal("deletion fabricated or altered an edge")
				}
			}
		}
	}
}

func TestPerturbAdd(t *testing.T) {
	d := smallDataset(t, 200, 22)
	pg, err := Perturb(d.Graph, PerturbOptions{AddFrac: 0.3, StrengthMax: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if pg.NumEdgesTotal() <= d.Graph.NumEdgesTotal() {
		t.Fatal("addition did not grow the graph")
	}
	// Original edges survive with at least their strength (coincident
	// additions merge upward).
	for lt := 0; lt < 4; lt++ {
		for v := 0; v < 200; v++ {
			tos, ws := d.Graph.OutEdges(hin.LinkTypeID(lt), hin.EntityID(v))
			for j, to := range tos {
				w, ok := pg.FindEdge(hin.LinkTypeID(lt), hin.EntityID(v), to)
				if !ok || w < ws[j] {
					t.Fatal("addition destroyed an original edge")
				}
			}
		}
	}
}

func TestPerturbSwitchPreservesSourceDegrees(t *testing.T) {
	d := smallDataset(t, 200, 23)
	pg, err := Perturb(d.Graph, PerturbOptions{SwitchProb: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Rewiring may only lose edges to self-loop drops or duplicate
	// merges; out-degree never grows.
	for lt := 0; lt < 4; lt++ {
		for v := 0; v < 200; v++ {
			if pg.OutDegree(hin.LinkTypeID(lt), hin.EntityID(v)) > d.Graph.OutDegree(hin.LinkTypeID(lt), hin.EntityID(v)) {
				t.Fatal("switching grew an out-degree")
			}
		}
	}
}

func TestPerturbStrengthNoise(t *testing.T) {
	d := smallDataset(t, 150, 24)
	pg, err := Perturb(d.Graph, PerturbOptions{StrengthNoise: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	mention := d.Graph.Schema().MustLinkTypeID("mention")
	changed := false
	for v := 0; v < 150; v++ {
		tos, ws := d.Graph.OutEdges(mention, hin.EntityID(v))
		for j, to := range tos {
			w, ok := pg.FindEdge(mention, hin.EntityID(v), to)
			if !ok {
				t.Fatal("noise deleted an edge")
			}
			if w < 1 {
				t.Fatalf("noise produced strength %d", w)
			}
			d := w - ws[j]
			if d < -3 || d > 3 {
				t.Fatalf("noise out of range: %d", d)
			}
			if d != 0 {
				changed = true
			}
		}
	}
	if !changed {
		t.Fatal("noise changed nothing")
	}
}

func TestPerturbErrors(t *testing.T) {
	d := smallDataset(t, 20, 25)
	for i, opt := range []PerturbOptions{
		{DeleteProb: -0.1},
		{DeleteProb: 1.1},
		{SwitchProb: -1},
		{SwitchProb: 2},
		{AddFrac: -0.5},
		{StrengthNoise: -1},
		{AddFrac: 0.5, StrengthMax: 0},
	} {
		if _, err := Perturb(d.Graph, opt); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestPerturbDeterministic(t *testing.T) {
	d := smallDataset(t, 100, 26)
	opt := PerturbOptions{DeleteProb: 0.2, AddFrac: 0.2, SwitchProb: 0.1, StrengthMax: 10, Seed: 6}
	p1, err := Perturb(d.Graph, opt)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Perturb(d.Graph, opt)
	if err != nil {
		t.Fatal(err)
	}
	if p1.NumEdgesTotal() != p2.NumEdgesTotal() {
		t.Fatal("perturbation not deterministic")
	}
}
