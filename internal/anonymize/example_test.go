package anonymize_test

import (
	"fmt"

	"github.com/hinpriv/dehin/internal/anonymize"
	"github.com/hinpriv/dehin/internal/hin"
	"github.com/hinpriv/dehin/internal/tqq"
)

// ExampleCompleteGraph hardens a tiny release with Complete Graph
// Anonymity and shows the structural k reaching its maximum while the
// utility cost is measured.
func ExampleCompleteGraph() {
	cfg := tqq.DefaultConfig(40, 3)
	d, err := tqq.Generate(cfg)
	if err != nil {
		panic(err)
	}
	hardened, err := anonymize.CompleteGraph(d.Graph, anonymize.CGAOptions{
		StrengthMax: cfg.StrengthMax,
		Seed:        1,
	})
	if err != nil {
		panic(err)
	}
	density, _ := hin.Density(hardened)
	u, err := anonymize.MeasureUtility(d.Graph, hardened)
	if err != nil {
		panic(err)
	}
	follow := hardened.Schema().MustLinkTypeID(tqq.LinkFollow)
	fmt.Printf("density after CGA: %.0f\n", density)
	fmt.Printf("k-degree anonymity level: %d\n", anonymize.DegreeAnonymityLevel(hardened, follow))
	fmt.Printf("edges added: %v\n", u.EdgesAdded > 0)
	// Output:
	// density after CGA: 1
	// k-degree anonymity level: 40
	// edges added: true
}

// ExampleKCopy shows a strictly 3-automorphic release.
func ExampleKCopy() {
	cfg := tqq.DefaultConfig(30, 4)
	d, err := tqq.Generate(cfg)
	if err != nil {
		panic(err)
	}
	res, err := anonymize.KCopy(d.Graph, 3)
	if err != nil {
		panic(err)
	}
	fmt.Printf("released entities: %d\n", res.Graph.NumEntities())
	fmt.Printf("automorphism level >= 3: %v\n", anonymize.AutomorphismLevel(res.Graph) >= 3)
	// Output:
	// released entities: 90
	// automorphism level >= 3: true
}
