package anonymize

import (
	"fmt"
	"sort"

	"github.com/hinpriv/dehin/internal/hin"
)

// GeneralizeStrengths anonymizes g against neighborhood attacks (Zhou-Pei
// style) by generalization rather than fabrication: link strengths are
// coarsened into buckets of width 2^r, doubling r until every entity's
// distance-1 neighborhood signature (the multiset of (link type, bucketed
// strength, out-degree-class) features an adversary could match on) occurs
// at least k times, or strengths have been fully generalized (width
// swallowing StrengthMax, i.e. all weighted edges indistinguishable).
//
// It returns the anonymized graph, the bucket width reached, and whether
// k-anonymity of neighborhood signatures was actually achieved - full
// generalization does not guarantee it, since degrees alone can still
// single entities out.
func GeneralizeStrengths(g *hin.Graph, k int, strengthMax int) (*hin.Graph, int, bool, error) {
	if k < 1 {
		return nil, 0, false, fmt.Errorf("anonymize: k must be >= 1, got %d", k)
	}
	if strengthMax < 1 {
		return nil, 0, false, fmt.Errorf("anonymize: strengthMax must be >= 1")
	}
	for width := 1; ; width *= 2 {
		ag, err := bucketStrengths(g, width)
		if err != nil {
			return nil, 0, false, err
		}
		if level := neighborhoodAnonymityLevel(ag); level >= k {
			return ag, width, true, nil
		}
		if width > strengthMax {
			return ag, width, false, nil
		}
	}
}

// bucketStrengths returns a copy of g with every weighted strength w
// replaced by its bucket floor ((w-1)/width*width + 1), so width 1 is the
// identity.
func bucketStrengths(g *hin.Graph, width int) (*hin.Graph, error) {
	schema := g.Schema()
	b := hin.NewBuilder(schema)
	n := g.NumEntities()
	for i := 0; i < n; i++ {
		id := hin.EntityID(i)
		b.AddEntity(g.EntityType(id), g.Label(id), g.Attrs(id)...)
		for _, sa := range schema.EntityType(g.EntityType(id)).SetAttrs {
			if s := g.Set(sa, id); len(s) > 0 {
				b.SetSet(sa, id, s)
			}
		}
	}
	for lt := 0; lt < schema.NumLinkTypes(); lt++ {
		ltid := hin.LinkTypeID(lt)
		weighted := schema.LinkType(ltid).Weighted
		for v := 0; v < n; v++ {
			tos, ws := g.OutEdges(ltid, hin.EntityID(v))
			for j, to := range tos {
				w := ws[j]
				if weighted && width > 1 {
					w = (w-1)/int32(width)*int32(width) + 1
				}
				if err := b.AddEdge(ltid, hin.EntityID(v), to, w); err != nil {
					return nil, err
				}
			}
		}
	}
	return b.Build()
}

// neighborhoodAnonymityLevel returns the size of the smallest equivalence
// class of distance-1 neighborhood signatures: the multiset, per link
// type, of outgoing strengths (destination identities excluded - the
// adversary of the neighborhood attack knows the neighborhood's shape, not
// its anonymized ids).
func neighborhoodAnonymityLevel(g *hin.Graph) int {
	counts := make(map[string]int)
	var buf []byte
	for v := 0; v < g.NumEntities(); v++ {
		buf = buf[:0]
		for lt := 0; lt < g.Schema().NumLinkTypes(); lt++ {
			_, ws := g.OutEdges(hin.LinkTypeID(lt), hin.EntityID(v))
			sorted := append([]int32(nil), ws...)
			sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
			buf = append(buf, byte(lt), '[')
			for _, w := range sorted {
				buf = appendInt32(buf, w)
				buf = append(buf, ',')
			}
			buf = append(buf, ']')
		}
		counts[string(buf)]++
	}
	min := 0
	for _, c := range counts {
		if min == 0 || c < min {
			min = c
		}
	}
	return min
}

func appendInt32(b []byte, v int32) []byte {
	if v == 0 {
		return append(b, '0')
	}
	if v < 0 {
		b = append(b, '-')
		v = -v
	}
	var tmp [12]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, tmp[i:]...)
}
