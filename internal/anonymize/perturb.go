package anonymize

import (
	"fmt"

	"github.com/hinpriv/dehin/internal/hin"
	"github.com/hinpriv/dehin/internal/randx"
)

// PerturbOptions parameterizes random edge perturbation - the
// "adding, deleting, switching edges" family of modifications the paper's
// Section 4.1 lists as the standard anonymization toolbox.
type PerturbOptions struct {
	// DeleteProb removes each existing edge independently.
	DeleteProb float64
	// AddFrac adds, per link type, this fraction of the surviving edge
	// count as fresh random edges.
	AddFrac float64
	// SwitchProb rewires each surviving edge's destination to a uniform
	// random entity (degree sequence of sources preserved; a classic
	// "edge switching" perturbation).
	SwitchProb float64
	// StrengthNoise, when positive, adds uniform noise in
	// [-StrengthNoise, +StrengthNoise] to each weighted strength
	// (clamped to >= 1).
	StrengthNoise int
	// StrengthMax bounds strengths of added edges.
	StrengthMax int
	// Seed drives the randomness.
	Seed uint64
}

// Perturb returns a randomly perturbed copy of g. Unlike CGA this breaks
// DeHIN's no-false-negative guarantee: deleting or switching a real edge
// can eliminate the true counterpart, trading recall for privacy - the
// ablation-perturb experiment quantifies that frontier.
func Perturb(g *hin.Graph, opt PerturbOptions) (*hin.Graph, error) {
	if opt.DeleteProb < 0 || opt.DeleteProb > 1 {
		return nil, fmt.Errorf("anonymize: DeleteProb %g out of [0,1]", opt.DeleteProb)
	}
	if opt.SwitchProb < 0 || opt.SwitchProb > 1 {
		return nil, fmt.Errorf("anonymize: SwitchProb %g out of [0,1]", opt.SwitchProb)
	}
	if opt.AddFrac < 0 {
		return nil, fmt.Errorf("anonymize: negative AddFrac")
	}
	if opt.StrengthNoise < 0 {
		return nil, fmt.Errorf("anonymize: negative StrengthNoise")
	}
	if opt.AddFrac > 0 && opt.StrengthMax < 1 {
		return nil, fmt.Errorf("anonymize: StrengthMax must be >= 1 when adding edges")
	}
	rng := randx.New(opt.Seed)
	schema := g.Schema()
	n := g.NumEntities()
	b := hin.NewBuilder(schema)
	for i := 0; i < n; i++ {
		id := hin.EntityID(i)
		b.AddEntity(g.EntityType(id), g.Label(id), g.Attrs(id)...)
		for _, sa := range schema.EntityType(g.EntityType(id)).SetAttrs {
			if s := g.Set(sa, id); len(s) > 0 {
				b.SetSet(sa, id, s)
			}
		}
	}
	for lt := 0; lt < schema.NumLinkTypes(); lt++ {
		ltid := hin.LinkTypeID(lt)
		decl := schema.LinkType(ltid)
		var kept int64
		for v := 0; v < n; v++ {
			tos, ws := g.OutEdges(ltid, hin.EntityID(v))
			for j, to := range tos {
				if rng.Bool(opt.DeleteProb) {
					continue
				}
				dst := to
				if rng.Bool(opt.SwitchProb) {
					dst = hin.EntityID(rng.Intn(n))
					if dst == hin.EntityID(v) && !decl.AllowSelf {
						continue // switched onto itself: drop
					}
				}
				w := ws[j]
				if decl.Weighted && opt.StrengthNoise > 0 {
					w += int32(rng.IntRange(-opt.StrengthNoise, opt.StrengthNoise))
					if w < 1 {
						w = 1
					}
				}
				if err := b.AddEdge(ltid, hin.EntityID(v), dst, w); err != nil {
					return nil, err
				}
				kept++
			}
		}
		extra := int64(float64(kept) * opt.AddFrac)
		for e := int64(0); e < extra; e++ {
			from := hin.EntityID(rng.Intn(n))
			to := hin.EntityID(rng.Intn(n))
			if from == to && !decl.AllowSelf {
				continue
			}
			w := int32(1)
			if decl.Weighted {
				w = int32(rng.IntRange(1, opt.StrengthMax))
			}
			if err := b.AddEdge(ltid, from, to, w); err != nil {
				return nil, err
			}
		}
	}
	return b.Build()
}
