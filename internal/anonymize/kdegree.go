package anonymize

import (
	"fmt"
	"sort"

	"github.com/hinpriv/dehin/internal/hin"
	"github.com/hinpriv/dehin/internal/randx"
)

// KDegreeOptions parameterizes KDegree.
type KDegreeOptions struct {
	// K is the anonymity level.
	K int
	// StrengthMax bounds fake strengths.
	StrengthMax int
	// VaryWeights draws a random strength per fake edge instead of one
	// constant per link type. The paper's treatment of the surveyed
	// structural schemes keeps fake short-circuited values constant
	// ("to be consistent with these original algorithms that do not
	// consider short-circuited features"); varying them turns k-degree
	// into a cheap cousin of VW-CGA.
	VaryWeights bool
	// Seed drives fake-edge randomness.
	Seed uint64
}

// KDegree returns a copy of g that is k-degree anonymous per link type in
// the Liu-Terzi sense adapted to directed typed graphs: for every entity v
// and every link type, at least k-1 other entities share v's out-degree.
// Anonymity is achieved purely by edge addition (the variant the paper's
// Section 6.2 argument covers - adding edges is how all the surveyed
// schemes reach their best case).
func KDegree(g *hin.Graph, opt KDegreeOptions) (*hin.Graph, error) {
	k, strengthMax, seed := opt.K, opt.StrengthMax, opt.Seed
	if k < 1 {
		return nil, fmt.Errorf("anonymize: k must be >= 1, got %d", k)
	}
	if strengthMax < 1 {
		return nil, fmt.Errorf("anonymize: strengthMax must be >= 1")
	}
	n := g.NumEntities()
	if k > n {
		return nil, fmt.Errorf("anonymize: k=%d exceeds %d entities", k, n)
	}
	schema := g.Schema()
	rng := randx.New(seed)

	// Copy the graph into a builder.
	b := hin.NewBuilder(schema)
	for i := 0; i < n; i++ {
		id := hin.EntityID(i)
		b.AddEntity(g.EntityType(id), g.Label(id), g.Attrs(id)...)
		for _, sa := range schema.EntityType(g.EntityType(id)).SetAttrs {
			if s := g.Set(sa, id); len(s) > 0 {
				b.SetSet(sa, id, s)
			}
		}
	}
	for lt := 0; lt < schema.NumLinkTypes(); lt++ {
		ltid := hin.LinkTypeID(lt)
		decl := schema.LinkType(ltid)
		if decl.From != decl.To {
			return nil, fmt.Errorf("anonymize: KDegree requires same-typed links, %q is not", decl.Name)
		}
		constant := int32(rng.IntRange(1, strengthMax))
		// Existing neighbor sets, for duplicate avoidance.
		nbrs := make([]map[hin.EntityID]bool, n)
		deg := make([]int, n)
		for v := 0; v < n; v++ {
			tos, ws := g.OutEdges(ltid, hin.EntityID(v))
			nbrs[v] = make(map[hin.EntityID]bool, len(tos))
			for j, to := range tos {
				nbrs[v][to] = true
				if err := b.AddEdge(ltid, hin.EntityID(v), to, ws[j]); err != nil {
					return nil, err
				}
			}
			deg[v] = len(tos)
		}
		// Degree-sequence anonymization: sort descending, greedily group
		// runs of >= k and raise each member to its group's max degree.
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return deg[order[a]] > deg[order[b]] })
		target := make([]int, n)
		for start := 0; start < n; {
			end := start + k
			if end > n {
				// The tail group must absorb the remainder.
				end = n
				start = n - k
				if start < 0 {
					start = 0
				}
			}
			// Extend the group while extending is cheaper than starting a
			// new group of k (simple greedy cost heuristic).
			for end < n && (n-end < k || deg[order[end]] == deg[order[start]]) {
				end++
			}
			max := deg[order[start]]
			for i := start; i < end; i++ {
				target[order[i]] = max
			}
			start = end
		}
		// Add fake edges to reach target degrees.
		maxDeg := n - 1
		if decl.AllowSelf {
			maxDeg = n
		}
		for v := 0; v < n; v++ {
			want := target[v]
			if want > maxDeg {
				want = maxDeg
			}
			for deg[v] < want {
				to := hin.EntityID(rng.Intn(n))
				if (int(to) == v && !decl.AllowSelf) || nbrs[v][to] {
					continue
				}
				w := int32(1)
				if decl.Weighted {
					if opt.VaryWeights {
						w = int32(rng.IntRange(1, strengthMax))
					} else {
						w = constant
					}
				}
				if err := b.AddEdge(ltid, hin.EntityID(v), to, w); err != nil {
					return nil, err
				}
				nbrs[v][to] = true
				deg[v]++
			}
		}
	}
	return b.Build()
}

// DegreeAnonymityLevel returns the k for which g is k-degree anonymous on
// link type lt: the size of the smallest out-degree equivalence class.
func DegreeAnonymityLevel(g *hin.Graph, lt hin.LinkTypeID) int {
	counts := make(map[int]int)
	for v := 0; v < g.NumEntities(); v++ {
		counts[g.OutDegree(lt, hin.EntityID(v))]++
	}
	min := 0
	for _, c := range counts {
		if min == 0 || c < min {
			min = c
		}
	}
	return min
}
