package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// NilSafe enforces the instrumentation layer's core contract: a nil
// handle disables the layer, so every exported pointer-receiver method of
// internal/obs and internal/obs/trace must begin with a nil-receiver guard
// before any receiver state is touched. Concretely, before the method
// dereferences its receiver (field read, *r, or indexing), some top-level
// statement must be an if whose condition checks `r == nil` and whose body
// terminates (return or panic). Methods that never dereference the
// receiver - pure delegators like WritePrometheus, which only call other
// (themselves nil-safe) methods - need no guard: Go happily dispatches a
// method on a nil pointer, and responsibility moves to the callee, which
// this check covers in turn when it is exported.
const checkNilSafe = "nilsafe"

var NilSafe = &Analyzer{
	Name: checkNilSafe,
	Doc:  "exported pointer-receiver methods of the obs packages must nil-guard before dereferencing the receiver",
	Run:  runNilSafe,
}

func runNilSafe(p *Package, cfg *Config) []Diagnostic {
	if !matchPkg(p.Path, cfg.NilSafePkgs) {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			recv := fn.Recv.List[0]
			if _, ok := recv.Type.(*ast.StarExpr); !ok {
				continue // value receiver: nil cannot occur
			}
			if len(recv.Names) == 0 || recv.Names[0].Name == "_" {
				continue // unnamed receiver cannot be dereferenced
			}
			recvObj := p.Info.Defs[recv.Names[0]]
			if recvObj == nil {
				continue
			}
			if d, bad := checkGuarded(p, fn, recvObj); bad {
				out = append(out, d)
			}
		}
	}
	return out
}

// checkGuarded scans the method body's top-level statements in order: a
// receiver dereference reached before a terminating `recv == nil` guard is
// a finding.
func checkGuarded(p *Package, fn *ast.FuncDecl, recv types.Object) (Diagnostic, bool) {
	for _, stmt := range fn.Body.List {
		if isNilGuard(p, stmt, recv) {
			return Diagnostic{}, false
		}
		if pos, found := firstDeref(p, stmt, recv); found {
			return Diagnostic{
				Pos:   p.Fset.Position(pos),
				Check: checkNilSafe,
				Message: fmt.Sprintf("exported method %s dereferences receiver %q before a nil guard; a nil *%s must be a no-op",
					fn.Name.Name, recv.Name(), recvTypeName(fn)),
			}, true
		}
	}
	return Diagnostic{}, false
}

func recvTypeName(fn *ast.FuncDecl) string {
	if star, ok := fn.Recv.List[0].Type.(*ast.StarExpr); ok {
		switch t := star.X.(type) {
		case *ast.Ident:
			return t.Name
		case *ast.IndexExpr: // generic receiver T[P]
			if id, ok := t.X.(*ast.Ident); ok {
				return id.Name
			}
		}
	}
	return "?"
}

// isNilGuard recognizes `if recv == nil { ...; return/panic }`, including
// compound conditions like `if recv == nil || n <= 0`, provided the
// condition itself does not dereference the receiver and the body
// terminates.
func isNilGuard(p *Package, stmt ast.Stmt, recv types.Object) bool {
	ifs, ok := stmt.(*ast.IfStmt)
	if !ok || ifs.Init != nil {
		return false
	}
	if !condChecksNil(p, ifs.Cond, recv) {
		return false
	}
	if _, derefs := firstDeref(p, &ast.ExprStmt{X: ifs.Cond}, recv); derefs {
		return false
	}
	return terminates(ifs.Body)
}

// condChecksNil reports whether the condition contains `recv == nil` (or
// `nil == recv`) as itself or an || operand.
func condChecksNil(p *Package, cond ast.Expr, recv types.Object) bool {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LOR:
			return condChecksNil(p, e.X, recv) || condChecksNil(p, e.Y, recv)
		case token.EQL:
			return (isRecvIdent(p, e.X, recv) && isNilIdent(p, e.Y)) ||
				(isNilIdent(p, e.X) && isRecvIdent(p, e.Y, recv))
		}
	}
	return false
}

func isRecvIdent(p *Package, e ast.Expr, recv types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && p.Info.Uses[id] == recv
}

func isNilIdent(p *Package, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := p.Info.Uses[id].(*types.Nil)
	return isNil
}

// terminates reports whether the block's last statement unconditionally
// leaves the method (return or panic).
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// firstDeref returns the position of the first receiver dereference in the
// statement: a field selection rooted at the receiver, an explicit *recv,
// or indexing the receiver. Method calls on the receiver are not
// dereferences (dispatch on a nil pointer is legal; the callee guards).
func firstDeref(p *Package, stmt ast.Stmt, recv types.Object) (token.Pos, bool) {
	var pos token.Pos
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if !isRecvIdent(p, n.X, recv) {
				return true
			}
			if s, ok := p.Info.Selections[n]; ok && s.Kind() == types.FieldVal {
				pos, found = n.Pos(), true
				return false
			}
		case *ast.StarExpr:
			if isRecvIdent(p, n.X, recv) {
				pos, found = n.Pos(), true
				return false
			}
		case *ast.IndexExpr:
			if isRecvIdent(p, n.X, recv) {
				pos, found = n.Pos(), true
				return false
			}
		}
		return true
	})
	return pos, found
}
