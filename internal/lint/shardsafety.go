package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ShardSafety enforces the internal/par ownership contract that makes
// the sweeps deterministic and race-free: a worker closure may write a
// captured slice or map only through indices it positionally owns. Two
// rules with different strictness, matching how the code is allowed to
// be written:
//
// Worker closures passed directly to par.Run / par.Sweep (strict):
// owned index variables are exactly the worker parameter, the task
// index (Run) or lo (Sweep), and variables derived from them
// (`for v := lo; v < hi; v++`). Every index on the path to a captured
// write must mention an owned variable; hi is deliberately NOT owned —
// it is the exclusive bound, so `sig[hi] = 0` is the textbook
// out-of-shard write and must be a finding. Writes to captured scalars
// are findings outright: aggregation goes through per-worker slots.
//
// Ad-hoc `go func` literals (loose): ownership tokens are the
// literal's parameters, channel receives (including range-over-channel
// variables — the fan-in idiom), values claimed through sync/atomic
// counters (the chunk-stealing idiom), and variables derived from
// those.
// A captured write whose indices mention no owned variable — or a bare
// captured scalar write — is unsynchronized shared state. Literals
// that take a sync.Mutex/RWMutex lock are skipped: they opted into
// lock-based ownership, which is vet -race territory, not index
// discipline.
const checkShardSafety = "shardsafety"

var ShardSafety = &Analyzer{
	Name: checkShardSafety,
	Doc:  "par worker closures and go literals may write captured slices/maps only through positionally-owned indices",
	Run:  runShardSafety,
}

func runShardSafety(p *Package, cfg *Config) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if kind := parWorkerKind(p.Info, n); kind != "" {
					if lit, ok := lastArgLit(n); ok {
						out = append(out, checkWorkerLit(p, lit, kind)...)
					}
				}
			case *ast.GoStmt:
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					out = append(out, checkGoLit(p, lit)...)
				}
			}
			return true
		})
	}
	return out
}

// parWorkerKind classifies a call as a par worker-pool entry point:
// "run" for par.Run(workers, n, task(worker, i)), "sweep" for
// par.Sweep(workers, n, width, fn(worker, lo, hi)).
func parWorkerKind(info *types.Info, call *ast.CallExpr) string {
	qname, _ := calleeQName(info, call)
	switch {
	case qnameMatches(qname, "internal/par:Run"):
		return "run"
	case qnameMatches(qname, "internal/par:Sweep"):
		return "sweep"
	}
	return ""
}

func lastArgLit(call *ast.CallExpr) (*ast.FuncLit, bool) {
	if len(call.Args) == 0 {
		return nil, false
	}
	lit, ok := ast.Unparen(call.Args[len(call.Args)-1]).(*ast.FuncLit)
	return lit, ok
}

// checkWorkerLit applies the strict rule to a par.Run/par.Sweep worker
// closure.
func checkWorkerLit(p *Package, lit *ast.FuncLit, kind string) []Diagnostic {
	owned := make(map[*types.Var]bool)
	params := litParams(p, lit)
	// Run(worker, i): both owned. Sweep(worker, lo, hi): worker and lo
	// owned; hi is the exclusive bound and stays unowned.
	for i, v := range params {
		if kind == "sweep" && i == 2 {
			continue
		}
		owned[v] = true
	}
	growOwned(p, lit, owned)
	return findBadWrites(p, lit, owned, true)
}

// checkGoLit applies the loose rule to an ad-hoc goroutine literal.
func checkGoLit(p *Package, lit *ast.FuncLit) []Diagnostic {
	if litTakesLock(p, lit) {
		return nil
	}
	owned := make(map[*types.Var]bool)
	for _, v := range litParams(p, lit) {
		owned[v] = true
	}
	recvOwned := collectReceiveVars(p, lit)
	for v := range recvOwned {
		owned[v] = true
	}
	growOwned(p, lit, owned)
	return findBadWrites(p, lit, owned, false)
}

func litParams(p *Package, lit *ast.FuncLit) []*types.Var {
	var out []*types.Var
	if lit.Type.Params == nil {
		return out
	}
	for _, f := range lit.Type.Params.List {
		for _, name := range f.Names {
			if v, ok := p.Info.Defs[name].(*types.Var); ok {
				out = append(out, v)
			}
		}
	}
	return out
}

// collectReceiveVars gathers channel-derived variables: `v := <-ch`,
// `v, ok := <-ch`, `for v := range ch`, and select receive arms.
func collectReceiveVars(p *Package, lit *ast.FuncLit) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	bind := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok {
			if v := identVar(p.Info, id); v != nil {
				out[v] = true
			}
		}
	}
	inspectOwnScope(lit, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 {
				if ue, ok := ast.Unparen(n.Rhs[0]).(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
					for _, l := range n.Lhs {
						bind(l)
					}
				}
			}
		case *ast.RangeStmt:
			if isChannelType(p.Info, n.X) {
				bind(n.Key)
			}
		}
		return true
	})
	return out
}

// growOwned closes the owned set over derivation: a variable assigned
// from an expression mentioning an owned variable — or claimed through a
// sync/atomic counter, the chunk-stealing idiom — becomes owned
// (`for v := lo; v < hi; v++` — v is owned via lo; `start :=
// int(next.Add(chunk)) - chunk` — start is owned via the atomic claim),
// and so do range variables over an owned-derived sequence. Iterates to
// a fixed point; function bodies are tiny.
func growOwned(p *Package, lit *ast.FuncLit, owned map[*types.Var]bool) {
	claim := func(id *ast.Ident, src ast.Expr, grew *bool) {
		if id == nil {
			return
		}
		v := identVar(p.Info, id)
		if v == nil || owned[v] {
			return
		}
		if mentionsOwned(p, src, owned) || atomicToken(p, src) {
			owned[v] = true
			*grew = true
		}
	}
	for {
		grew := false
		inspectOwnScope(lit, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				// Only plain assignment and definition derive ownership:
				// `total += i` mixes prior (unowned) state into the result.
				if len(n.Lhs) != len(n.Rhs) || n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
					return true
				}
				for i, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						claim(id, n.Rhs[i], &grew)
					}
				}
			case *ast.RangeStmt:
				key, _ := n.Key.(*ast.Ident)
				val, _ := n.Value.(*ast.Ident)
				claim(key, n.X, &grew)
				claim(val, n.X, &grew)
			}
			return true
		})
		if !grew {
			return
		}
	}
}

// atomicToken reports whether the expression claims through a
// sync/atomic method (Add, CompareAndSwap, ...): the claimed value is an
// ownership token — each goroutine observes a distinct result, so slots
// indexed by it are positionally owned.
func atomicToken(p *Package, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if qname, _ := calleeQName(p.Info, call); strings.HasPrefix(qname, "sync/atomic:") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func mentionsOwned(p *Package, e ast.Expr, owned map[*types.Var]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if v := identVar(p.Info, id); v != nil && owned[v] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// litTakesLock reports whether the literal body locks a sync mutex.
func litTakesLock(p *Package, lit *ast.FuncLit) bool {
	found := false
	inspectOwnScope(lit, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			switch qname, _ := calleeQName(p.Info, call); qname {
			case "sync:Mutex.Lock", "sync:RWMutex.Lock", "sync:RWMutex.RLock":
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// findBadWrites reports writes to captured state that do not go through
// an owned index. strict distinguishes the message wording only; the
// mechanics are shared.
func findBadWrites(p *Package, lit *ast.FuncLit, owned map[*types.Var]bool, strict bool) []Diagnostic {
	var out []Diagnostic
	report := func(n ast.Node, root *types.Var, indexed bool) {
		var msg string
		ctx := "go literal"
		if strict {
			ctx = "par worker closure"
		}
		if indexed {
			msg = fmt.Sprintf("%s writes captured %q outside its owned shard: no index derives from the worker's bounds; use the shard/task index or a per-worker slot", ctx, root.Name())
		} else {
			msg = fmt.Sprintf("%s writes captured variable %q without ownership: use a per-worker slot, a channel, or sync/atomic", ctx, root.Name())
		}
		out = append(out, Diagnostic{
			Pos:     p.Fset.Position(n.Pos()),
			Check:   checkShardSafety,
			Message: msg,
		})
	}
	check := func(n ast.Node, lhs ast.Expr) {
		root, indices, ok := writeRoot(p, lhs)
		if !ok || root == nil {
			return
		}
		if !capturedBy(lit, root) || owned[root] {
			return
		}
		if len(indices) == 0 {
			// Captured scalar (or whole-slice/map reassignment through a
			// selector chain without an index).
			report(n, root, false)
			return
		}
		for _, idx := range indices {
			if mentionsOwned(p, idx, owned) {
				return
			}
		}
		report(n, root, true)
	}
	inspectOwnScope(lit, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				check(n, lhs)
			}
		case *ast.IncDecStmt:
			check(n, n.X)
		}
		return true
	})
	return out
}

// writeRoot peels an assignment destination to its root variable,
// collecting the index expressions crossed on the way
// (ps[s].overflow → root ps, indices [s]).
func writeRoot(p *Package, lhs ast.Expr) (root *types.Var, indices []ast.Expr, ok bool) {
	for {
		switch e := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			return identVar(p.Info, e), indices, true
		case *ast.IndexExpr:
			indices = append(indices, e.Index)
			lhs = e.X
		case *ast.SelectorExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		default:
			return nil, nil, false
		}
	}
}

// capturedBy reports whether the variable is declared outside the
// literal (captured from the enclosing function).
func capturedBy(lit *ast.FuncLit, v *types.Var) bool {
	return v.Pos() < lit.Pos() || v.Pos() >= lit.End()
}

// inspectOwnScope walks the literal's body without entering nested
// function literals (they are analyzed as their own scopes).
func inspectOwnScope(lit *ast.FuncLit, fn func(ast.Node) bool) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && inner != lit {
			return false
		}
		return fn(n)
	})
}
