// Package lint implements hinlint, the repository's custom static-analysis
// suite. It mechanically enforces the invariants the attack pipeline's
// correctness and performance story rests on - invariants `go vet` has no
// notion of and that PRs 1-4 re-proved by hand on every change:
//
//   - determinism: the result-producing packages (generator, query engine,
//     risk metrics, experiment pipeline) may not read wall clocks, the
//     process environment, or the global math/rand stream, and may not let
//     map iteration order leak into output (see determinism.go).
//   - nilsafe: every exported pointer-receiver method of the
//     instrumentation layer (internal/obs, internal/obs/trace) must guard
//     against a nil receiver before touching receiver state, because the
//     whole layer is compiled out by passing nil handles (see nilsafe.go).
//   - hotpath: functions annotated //hin:hot - the DeHIN query path and the
//     Hopcroft-Karp matcher - may not re-introduce the per-query
//     allocations PR 1 removed (see hotpath.go).
//   - logdiscipline: ad-hoc stderr printing and the standard log package
//     are forbidden outside internal/obs; commands go through the nil-safe
//     obs.Logger (see logdiscipline.go).
//
// The suite is written purely against the standard library (go/parser,
// go/ast, go/types with the source-mode go/importer) so the module stays
// dependency-free. Findings are suppressed inline with
//
//	//hin:allow <check> -- <reason>
//
// on the offending line or the line directly above it; the reason is
// mandatory, so every suppression documents why the invariant legitimately
// does not apply. See LINT.md for the full check catalogue.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"github.com/hinpriv/dehin/internal/par"
)

// Diagnostic is one finding: a position, the check that fired, and a
// human-readable message. String renders the canonical
// "file:line:col: [check] message" form cmd/hinlint prints.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Analyzer is one hinlint check. Run inspects a type-checked package and
// returns raw findings; suppression directives are applied centrally by
// Package.Lint, so analyzers never need to know about //hin:allow.
type Analyzer struct {
	// Name is the check identifier used in diagnostics and //hin:allow
	// directives.
	Name string
	// Doc is a one-line description (shown by `hinlint -checks`).
	Doc string
	// Run reports the analyzer's findings on one package.
	Run func(p *Package, cfg *Config) []Diagnostic
}

// Analyzers returns the full suite in its canonical order: the PR 5
// syntactic checks first, then the flow-sensitive lifecycle checks
// built on the CFG/dataflow layer (cfg.go, dataflow.go).
func Analyzers() []*Analyzer {
	return []*Analyzer{
		Determinism, NilSafe, HotPath, LogDiscipline,
		Pairing, ShardSafety, GoLeak, ErrDrop,
	}
}

// Config scopes the analyzers to package sets. Entries match an import
// path either exactly or as a path-wise suffix ("internal/tqq" matches
// "github.com/hinpriv/dehin/internal/tqq" but not ".../internal/tqq2" or
// ".../internal/tqq/sub"). The zero Config disables every package-scoped
// check; use DefaultConfig for the repository's invariants.
type Config struct {
	// DeterministicPkgs lists the packages whose outputs must be a pure
	// function of their inputs; the determinism check runs only there.
	DeterministicPkgs []string
	// NilSafePkgs lists the packages whose exported pointer-receiver
	// methods must begin with a nil-receiver guard.
	NilSafePkgs []string
	// LogExemptPkgs lists the packages allowed to bypass obs.Logger (the
	// logging layer itself).
	LogExemptPkgs []string
	// Pairs declares the acquire/release lifecycles the pairing analyzer
	// tracks (see pairing.go for the qualified-name format).
	Pairs []ResourcePair
	// MustCall pins release-endpoint implementations: each listed
	// function's body must still contain its inner release calls.
	MustCall []CallContract
	// GoExemptPkgs lists path segments whose packages skip the goleak
	// check ("cmd": binaries own process-lifetime goroutines).
	GoExemptPkgs []string
	// ErrDropExempt lists callees (qualified-name format, see pairing.go)
	// whose dropped errors are not findings: the best-effort cleanup
	// families where the surrounding code has already chosen which error
	// to surface.
	ErrDropExempt []string
}

// DefaultConfig returns the repository's invariant scopes: the nine
// result-producing packages are deterministic; the two instrumentation
// packages plus the server layer (whose handlers must degrade, not
// panic, on a nil or closed *Server) must be nil-safe; and only the
// instrumentation layer may write raw logs.
func DefaultConfig() *Config {
	return &Config{
		DeterministicPkgs: []string{
			"internal/tqq", "internal/dehin", "internal/hin",
			"internal/risk", "internal/anonymize", "internal/baseline",
			"internal/bipartite", "internal/randx", "internal/experiments",
		},
		NilSafePkgs:   []string{"internal/obs", "internal/obs/trace", "internal/serve"},
		LogExemptPkgs: []string{"internal/obs", "internal/obs/trace"},
		// The serving layer's three lifecycles (SERVICE.md): snapshot
		// references, mmap pins, and attack-admission slots. Removing a
		// release on any handler path — or the Unpin inside release
		// itself — must turn the lint gate red.
		Pairs: []ResourcePair{
			{
				Name:           "snapshot reference",
				Acquire:        "internal/serve:Server.acquire",
				ResourceResult: 0,
				Releases: []string{
					"internal/serve:Server.release",
					"internal/serve:snapshot.unref",
				},
			},
			{
				Name:           "file pin",
				Acquire:        "internal/hin:CSRFile.Pin",
				ResourceResult: -1,
				Releases:       []string{"internal/hin:CSRFile.Unpin"},
			},
			{
				Name:           "attack admission slot",
				Acquire:        "internal/serve:Server.admitAttack",
				ResourceResult: 0,
				Releases:       []string{"()"},
			},
		},
		MustCall: []CallContract{
			{
				Func: "internal/serve:Server.release",
				Callees: []string{
					"internal/hin:CSRFile.Unpin",
					"internal/serve:snapshot.unref",
				},
			},
		},
		GoExemptPkgs: []string{"cmd"},
		// Best-effort cleanup: error-path f.Close()/os.Remove before
		// returning the original error, response-body closes, and process
		// teardown signals. Durable closes stay checked because they are
		// written `return f.Close()`, which is not a drop.
		ErrDropExempt: []string{
			"os:File.Close", "os:Remove",
			"io:Closer.Close", "io:ReadCloser.Close",
			"os:Process.Kill", "os:Process.Signal",
		},
	}
}

// matchPkg reports whether the import path is selected by any entry.
func matchPkg(path string, entries []string) bool {
	for _, e := range entries {
		if path == e || strings.HasSuffix(path, "/"+e) {
			return true
		}
	}
	return false
}

// Package is one parsed and type-checked package ready for analysis.
// Construct via a Loader (see load.go).
type Package struct {
	// Path is the package's import path (go list's ImportPath).
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	allows    map[allowKey]bool
	malformed []Diagnostic // ill-formed //hin: directives, reported as check "directive"
}

type allowKey struct {
	file  string
	line  int
	check string
}

// directivePrefix introduces every hinlint source directive.
const directivePrefix = "//hin:"

// scanDirectives indexes //hin:allow directives and validates directive
// syntax. It runs once at package construction.
func (p *Package) scanDirectives() {
	p.allows = make(map[allowKey]bool)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(text, directivePrefix)
				verb, arg, _ := strings.Cut(rest, " ")
				switch verb {
				case "hot":
					// Valid bare or with a trailing "-- reason"; nothing to index
					// here - hotpath.go reads it off function doc comments.
				case "allow":
					check, reason, found := strings.Cut(arg, "--")
					check = strings.TrimSpace(check)
					reason = strings.TrimSpace(reason)
					if check == "" || !found || reason == "" {
						p.malformed = append(p.malformed, Diagnostic{
							Pos:   pos,
							Check: "directive",
							Message: fmt.Sprintf("malformed %q: want //hin:allow <check> -- <reason>",
								text),
						})
						continue
					}
					if !knownCheck(check) {
						p.malformed = append(p.malformed, Diagnostic{
							Pos:     pos,
							Check:   "directive",
							Message: fmt.Sprintf("//hin:allow names unknown check %q", check),
						})
						continue
					}
					p.allows[allowKey{pos.Filename, pos.Line, check}] = true
				default:
					p.malformed = append(p.malformed, Diagnostic{
						Pos:     pos,
						Check:   "directive",
						Message: fmt.Sprintf("unknown directive %q (known: //hin:allow, //hin:hot)", directivePrefix+verb),
					})
				}
			}
		}
	}
}

func knownCheck(name string) bool {
	for _, a := range Analyzers() {
		if a.Name == name {
			return true
		}
	}
	return false
}

// suppressed reports whether an //hin:allow for the check sits on the
// diagnostic's line or the line directly above it.
func (p *Package) suppressed(d Diagnostic) bool {
	return p.allows[allowKey{d.Pos.Filename, d.Pos.Line, d.Check}] ||
		p.allows[allowKey{d.Pos.Filename, d.Pos.Line - 1, d.Check}]
}

// Lint runs the analyzers over the package, drops suppressed findings, and
// returns the rest (plus any malformed-directive findings) sorted.
func (p *Package) Lint(cfg *Config, analyzers []*Analyzer) []Diagnostic {
	out := append([]Diagnostic(nil), p.malformed...)
	for _, a := range analyzers {
		for _, d := range a.Run(p, cfg) {
			if !p.suppressed(d) {
				out = append(out, d)
			}
		}
	}
	Sort(out)
	return out
}

// Run lints every package with the full suite under the default config -
// the exact gate `make verify` and CI enforce.
func Run(pkgs []*Package) []Diagnostic {
	return RunConfigured(DefaultConfig(), Analyzers(), pkgs)
}

// RunConfigured lints every package with an explicit config and analyzer
// set, concatenating the per-package findings in deterministic order.
// Packages are analyzed on parallel workers — Lint only reads the
// package and the config, and each worker writes its own positional
// slot — then merged and sorted, so the output is byte-identical to the
// serial run.
func RunConfigured(cfg *Config, analyzers []*Analyzer, pkgs []*Package) []Diagnostic {
	results := make([][]Diagnostic, len(pkgs))
	par.Run(0, len(pkgs), func(_, i int) {
		results[i] = pkgs[i].Lint(cfg, analyzers)
	})
	var out []Diagnostic
	for _, r := range results {
		out = append(out, r...)
	}
	Sort(out)
	return out
}

// Sort orders diagnostics by (file, line, column, check, message), the
// stable order all hinlint output uses.
func Sort(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
}

// pkgFunc returns the package-level function (not method) a selector or
// identifier resolves to, or nil.
func pkgFunc(info *types.Info, e ast.Expr) *types.Func {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return nil // method, not a package-level function
	}
	return fn
}

// isPkgFunc reports whether the call's callee is the named package-level
// function of the given package path.
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) bool {
	fn := pkgFunc(info, call.Fun)
	if fn == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}
