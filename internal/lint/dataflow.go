package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Forward dataflow over the CFG in cfg.go: a fixed-point worklist
// iteration with a caller-supplied lattice. The framework is generic in
// the fact type; analyzers provide bottom/clone/join/transfer, and
// optionally a per-edge refinement hook so branch conditions (the
// `if err != nil` shape pairing cares about) can specialize the fact
// flowing down each successor edge.

// flowFuncs is one analysis' lattice and transfer behaviour over facts
// of type F.
type flowFuncs[F any] struct {
	// bottom returns the "no information" fact blocks start from.
	bottom func() F
	// clone deep-copies a fact so transfer can mutate freely.
	clone func(F) F
	// join merges src into dst, reporting whether dst changed.
	join func(dst, src F) bool
	// transfer applies one statement to the fact in place.
	transfer func(fact F, s ast.Stmt)
	// refine, if non-nil, specializes the fact flowing from b to
	// b.Succs[succIdx] using b.Cond (succIdx 0 = condition true,
	// 1 = false). It must not mutate the input.
	refine func(fact F, b *Block, succIdx int) F
}

// forward runs the analysis to fixed point and returns each block's
// entry fact (the join over incoming edges, before the block's own
// statements run). The entry block starts from init; unreachable blocks
// keep bottom.
func forward[F any](c *CFG, fns flowFuncs[F], init F) map[*Block]F {
	in := make(map[*Block]F, len(c.Blocks))
	for _, b := range c.Blocks {
		in[b] = fns.bottom()
	}
	fns.join(in[c.Entry], init)

	work := []*Block{c.Entry}
	queued := map[*Block]bool{c.Entry: true}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false

		out := fns.clone(in[b])
		for _, s := range b.Stmts {
			fns.transfer(out, s)
		}
		for i, succ := range b.Succs {
			edge := out
			if fns.refine != nil && b.Cond != nil {
				edge = fns.refine(out, b, i)
			}
			if fns.join(in[succ], edge) && !queued[succ] {
				queued[succ] = true
				work = append(work, succ)
			}
		}
	}
	return in
}

// exitFact computes the fact at one block's out edge set (entry fact
// pushed through its statements) — used to read the state at Exit/Panic
// predecessors when reporting.
func exitFact[F any](fns flowFuncs[F], in map[*Block]F, b *Block) F {
	out := fns.clone(in[b])
	for _, s := range b.Stmts {
		fns.transfer(out, s)
	}
	return out
}

// --- reaching definitions -------------------------------------------------
//
// A small concrete instance of the framework used by the flow-aware
// hotpath append check: for each variable, which assignments can reach a
// given statement. Definitions are the RHS expression (nil for zero-value
// var declarations); a definition site inside a loop reaches itself.

// defSite is one assignment to a variable: the defining expression and
// its position (for dedup). rhs is nil for zero-valued declarations.
type defSite struct {
	rhs ast.Expr
	pos token.Pos
}

// reachFact maps each variable to the set of definitions reaching a
// program point.
type reachFact map[*types.Var]map[defSite]bool

// reachingDefs runs reaching-definitions over the CFG and returns, for
// every statement in every block, the fact holding just before the
// statement executes. info resolves identifiers.
func reachingDefs(c *CFG, info *types.Info) map[ast.Stmt]reachFact {
	fns := flowFuncs[reachFact]{
		bottom: func() reachFact { return reachFact{} },
		clone: func(f reachFact) reachFact {
			out := make(reachFact, len(f))
			for v, defs := range f {
				nd := make(map[defSite]bool, len(defs))
				for d := range defs {
					nd[d] = true
				}
				out[v] = nd
			}
			return out
		},
		join: func(dst, src reachFact) bool {
			changed := false
			for v, defs := range src {
				dd := dst[v]
				if dd == nil {
					dd = make(map[defSite]bool, len(defs))
					dst[v] = dd
				}
				for d := range defs {
					if !dd[d] {
						dd[d] = true
						changed = true
					}
				}
			}
			return changed
		},
		transfer: func(fact reachFact, s ast.Stmt) {
			applyDefs(fact, s, info)
		},
	}
	in := forward(c, fns, reachFact{})

	at := make(map[ast.Stmt]reachFact)
	for _, b := range c.Blocks {
		fact := fns.clone(in[b])
		for _, s := range b.Stmts {
			at[s] = fns.clone(fact)
			fns.transfer(fact, s)
		}
	}
	return at
}

// applyDefs updates the reaching fact for one statement's definitions.
// Assignments kill previous definitions of the variable (strong update:
// the LHS is a plain identifier); `x = append(x, ...)` is treated as
// preserving x's origins rather than redefining them, matching the
// hotpath idiom.
func applyDefs(fact reachFact, s ast.Stmt, info *types.Info) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		for i, lhs := range s.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			v := identVar(info, id)
			if v == nil {
				continue
			}
			var rhs ast.Expr
			if len(s.Rhs) == len(s.Lhs) {
				rhs = s.Rhs[i]
			} else if len(s.Rhs) == 1 {
				rhs = s.Rhs[0]
			}
			if selfAppend(rhs, id.Name) {
				continue // preserves, not redefines
			}
			fact[v] = map[defSite]bool{{rhs: rhs, pos: id.Pos()}: true}
		}
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				v := identVar(info, name)
				if v == nil {
					continue
				}
				var rhs ast.Expr
				if i < len(vs.Values) {
					rhs = vs.Values[i]
				}
				fact[v] = map[defSite]bool{{rhs: rhs, pos: name.Pos()}: true}
			}
		}
	case *ast.RangeStmt:
		for _, e := range []ast.Expr{s.Key, s.Value} {
			id, ok := e.(*ast.Ident)
			if !ok {
				continue
			}
			if v := identVar(info, id); v != nil {
				fact[v] = map[defSite]bool{{rhs: s.X, pos: id.Pos()}: true}
			}
		}
	case *ast.IncDecStmt:
		if id, ok := s.X.(*ast.Ident); ok {
			if v := identVar(info, id); v != nil {
				fact[v] = map[defSite]bool{{rhs: s.X, pos: s.Pos()}: true}
			}
		}
	}
}

// identVar resolves an identifier to the variable it defines or uses.
func identVar(info *types.Info, id *ast.Ident) *types.Var {
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id]
	}
	v, _ := obj.(*types.Var)
	return v
}
