package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// sharedLoader serves every test: the source importer type-checks each
// dependency once per process, so fixture loads after the first are cheap.
var (
	loaderOnce sync.Once
	loader     *Loader
)

func testLoader() *Loader {
	loaderOnce.Do(func() { loader = NewLoader() })
	return loader
}

// wantRe extracts expectations from fixture sources: every occurrence of
// the marker `want "regex"` on a line expects one diagnostic there whose
// "[check] message" rendering matches the regex.
var wantRe = regexp.MustCompile(`want "([^"]*)"`)

type lineKey struct {
	file string
	line int
}

// parseWants scans the fixture directory's Go sources for want markers.
func parseWants(t *testing.T, dir string) map[lineKey][]*regexp.Regexp {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	wants := make(map[lineKey][]*regexp.Regexp)
	for _, path := range matches {
		if strings.HasSuffix(path, "_test.go") {
			continue
		}
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			for _, m := range wantRe.FindAllStringSubmatch(sc.Text(), -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regex %q: %v", path, line, m[1], err)
				}
				wants[lineKey{path, line}] = append(wants[lineKey{path, line}], re)
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	return wants
}

// runFixture lints one testdata package and checks its diagnostics against
// the want markers: every diagnostic needs a matching want on its line, and
// every want needs a diagnostic.
func runFixture(t *testing.T, name string, cfg *Config, analyzers ...*Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", name)
	p, err := testLoader().LoadDir(dir, "fixture/"+name)
	if err != nil {
		t.Fatal(err)
	}
	diags := p.Lint(cfg, analyzers)
	wants := parseWants(t, dir)

	byLine := make(map[lineKey][]Diagnostic)
	for _, d := range diags {
		k := lineKey{d.Pos.Filename, d.Pos.Line}
		byLine[k] = append(byLine[k], d)
	}
	for k, res := range wants {
		got := byLine[k]
		for _, re := range res {
			matched := false
			for i, d := range got {
				if re.MatchString(fmt.Sprintf("[%s] %s", d.Check, d.Message)) {
					got = append(got[:i], got[i+1:]...)
					matched = true
					break
				}
			}
			if !matched {
				t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, re)
			}
		}
		byLine[k] = got
	}
	for _, rest := range byLine {
		for _, d := range rest {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

func TestDeterminismFixture(t *testing.T) {
	cfg := &Config{DeterministicPkgs: []string{"fixture/determinism"}}
	runFixture(t, "determinism", cfg, Determinism)
}

func TestNilSafeFixture(t *testing.T) {
	cfg := &Config{NilSafePkgs: []string{"fixture/nilsafe"}}
	runFixture(t, "nilsafe", cfg, NilSafe)
}

func TestHotPathFixture(t *testing.T) {
	// hotpath is opt-in via //hin:hot, so no package scoping is needed.
	runFixture(t, "hotpath", &Config{}, HotPath)
}

func TestLogDisciplineFixture(t *testing.T) {
	// The fixture path is not log-exempt, so the check applies.
	runFixture(t, "logdiscipline", &Config{}, LogDiscipline)
}

func TestPairingFixture(t *testing.T) {
	// The fixture mirrors the serve layer's three lifecycles on local
	// types: a result resource (Pool.Get/Put), a receiver resource
	// (File.Pin/Unpin), and a returned release func (Pool.Admit), plus a
	// MustCall contract on the fixture's release endpoints.
	cfg := &Config{
		Pairs: []ResourcePair{
			{Name: "snap", Acquire: "fixture/pairing:Pool.Get", ResourceResult: 0,
				Releases: []string{"fixture/pairing:Pool.Put"}},
			{Name: "pin", Acquire: "fixture/pairing:File.Pin", ResourceResult: -1,
				Releases: []string{"fixture/pairing:File.Unpin"}},
			{Name: "slot", Acquire: "fixture/pairing:Pool.Admit", ResourceResult: 0,
				Releases: []string{"()"}},
		},
		MustCall: []CallContract{
			{Func: "fixture/pairing:leakyPut", Callees: []string{"fixture/pairing:File.Unpin"}},
			{Func: "fixture/pairing:Pool.Put", Callees: []string{"fixture/pairing:File.Unpin"}},
		},
	}
	runFixture(t, "pairing", cfg, Pairing)
}

func TestShardSafetyFixture(t *testing.T) {
	// shardsafety keys on the par call sites and go statements themselves;
	// no package scoping involved.
	runFixture(t, "shardsafety", &Config{}, ShardSafety)
}

func TestGoLeakFixture(t *testing.T) {
	runFixture(t, "goleak", &Config{}, GoLeak)
}

// TestGoLeakExempt proves GoExemptPkgs scoping: the same fixture is
// silent when a path segment of its import path is exempted.
func TestGoLeakExempt(t *testing.T) {
	p, err := testLoader().LoadDir(filepath.Join("testdata", "goleak"), "fixture/goleak")
	if err != nil {
		t.Fatal(err)
	}
	cfg := &Config{GoExemptPkgs: []string{"fixture"}}
	if diags := p.Lint(cfg, []*Analyzer{GoLeak}); len(diags) != 0 {
		t.Errorf("exempt package should produce no goleak findings, got %v", diags)
	}
}

func TestErrDropFixture(t *testing.T) {
	cfg := &Config{ErrDropExempt: []string{"os:File.Close", "io:Closer.Close"}}
	runFixture(t, "errdrop", cfg, ErrDrop)
}

func TestDirectiveFixture(t *testing.T) {
	// Malformed directives surface regardless of analyzer set; Determinism
	// runs too, proving a malformed //hin:allow does not suppress.
	cfg := &Config{DeterministicPkgs: []string{"fixture/directive"}}
	runFixture(t, "directive", cfg, Determinism)
}

// TestScopedOut proves package scoping: the same fixtures produce zero
// findings when their import paths are not in the config's scope.
func TestScopedOut(t *testing.T) {
	for _, name := range []string{"determinism", "nilsafe"} {
		p, err := testLoader().LoadDir(filepath.Join("testdata", name), "fixture/"+name)
		if err != nil {
			t.Fatal(err)
		}
		if diags := p.Lint(&Config{}, []*Analyzer{Determinism, NilSafe}); len(diags) != 0 {
			t.Errorf("%s: zero Config should scope the checks out, got %v", name, diags)
		}
	}
}

// moduleRoot walks up from the working directory to the go.mod, so the
// repo-wide tests run regardless of which package directory hosts them.
func moduleRoot(t testing.TB) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above working directory")
		}
		dir = parent
	}
}

// TestRepoIsClean is the smoke test `make lint` mirrors: the whole module
// must lint clean under the default config. A regression here means a
// change reintroduced nondeterminism, an unguarded obs method, hot-path
// allocation, or ad-hoc logging - fix it or add a reasoned //hin:allow.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is slow; skipped with -short")
	}
	pkgs, err := testLoader().LoadPatterns(moduleRoot(t), "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Run(pkgs) {
		t.Errorf("%s", d)
	}
}

// BenchmarkHinlintSelf measures the analysis phase (loading excluded) of
// the full suite over the linter's own packages - the self-hosting case
// cmd/benchdump records into the committed snapshot so analyzer slowdowns
// show up in bench diffs.
func BenchmarkHinlintSelf(b *testing.B) {
	pkgs, err := NewLoader().LoadPatterns(moduleRoot(b), "./internal/lint", "./cmd/hinlint")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if diags := Run(pkgs); len(diags) != 0 {
			b.Fatalf("unexpected findings: %v", diags)
		}
	}
}
