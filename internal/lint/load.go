package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"

	"github.com/hinpriv/dehin/internal/par"
)

// Loader parses and type-checks packages for analysis. One Loader shares a
// file set and a source-mode importer across every package it loads, so the
// standard-library and module-internal dependencies each type-check once
// per process instead of once per linted package.
//
// The source importer resolves module-internal imports through the go
// command, so loading must run with a working directory inside the module
// (cmd/hinlint, make lint, and the tests all do).
type Loader struct {
	fset *token.FileSet
	imp  types.ImporterFrom
}

// NewLoader returns a loader with a fresh file set and source importer.
// The importer is wrapped in a mutex so LoadPatterns can type-check
// packages on parallel workers: dependency resolution serializes (each
// dependency still type-checks exactly once), while parsing and each
// package's own body check run concurrently.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		fset: fset,
		imp:  &lockedImporter{imp: importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)},
	}
}

// lockedImporter makes the source importer safe for concurrent Check
// calls. go/importer's source mode keeps an internal package cache with
// no locking, so all importer entry points funnel through one mutex.
type lockedImporter struct {
	mu  sync.Mutex
	imp types.ImporterFrom
}

func (l *lockedImporter) Import(path string) (*types.Package, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.imp.Import(path)
}

func (l *lockedImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.imp.ImportFrom(path, dir, mode)
}

// listEntry is the subset of `go list -json` output the loader consumes.
type listEntry struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Error      *struct{ Err string }
}

// LoadPatterns walks `go list <patterns>` run in dir and loads every
// matched package. Packages with no non-test Go files (e.g. a module root
// holding only _test.go files) are skipped: there is nothing to analyze.
func (l *Loader) LoadPatterns(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"list", "-json=ImportPath,Dir,GoFiles,Error"}, patterns...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var entries []listEntry
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if e.Error != nil {
			return nil, fmt.Errorf("lint: go list %s: %s", e.ImportPath, e.Error.Err)
		}
		if len(e.GoFiles) == 0 {
			continue
		}
		entries = append(entries, e)
	}
	// Load on parallel workers into positional slots, so the package
	// order (and with it all downstream output) matches the serial
	// go list order exactly.
	pkgs := make([]*Package, len(entries))
	var firstErr par.FirstErr
	par.Run(0, len(entries), func(_, i int) {
		e := entries[i]
		files := make([]string, len(e.GoFiles))
		for j, f := range e.GoFiles {
			files[j] = filepath.Join(e.Dir, f)
		}
		p, err := l.load(e.ImportPath, files)
		if err != nil {
			firstErr.Set(i, err)
			return
		}
		pkgs[i] = p
	})
	if err := firstErr.Err(); err != nil {
		return nil, err
	}
	return pkgs, nil
}

// LoadDir loads the non-test Go files of one directory as a package under
// the given import path. This is the fixture entry point: testdata
// packages are invisible to go list, so the file walk is direct.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	var files []string
	for _, m := range matches {
		if !strings.HasSuffix(m, "_test.go") {
			files = append(files, m)
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	return l.load(importPath, files)
}

// load parses and type-checks one package's files.
func (l *Loader) load(importPath string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l.imp}
	pkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", importPath, err)
	}
	p := &Package{Path: importPath, Fset: l.fset, Files: files, Pkg: pkg, Info: info}
	p.scanDirectives()
	return p, nil
}
