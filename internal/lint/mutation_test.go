package lint

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The mutation tests are the lint gate's proof of strength: they copy
// real packages, re-introduce the exact regressions the flow-sensitive
// analyzers exist to stop — an unpaired acquire in a serve handler, a
// release endpoint that forgot its inner Unpin, an out-of-shard write in
// risk's sweep — and assert the default-config suite reports them with a
// file:line diagnostic. The copies live under testdata (invisible to go
// list, inside the module so the source importer resolves their real
// imports) with import paths whose suffixes match the default specs.

// copyPackage copies the package's non-test Go sources into dstDir,
// passing each file through mutate (file base name, contents).
func copyPackage(t *testing.T, srcDir, dstDir string, mutate func(name string, src []byte) []byte) {
	t.Helper()
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(srcDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if mutate != nil {
			src = mutate(name, src)
		}
		if err := os.WriteFile(filepath.Join(dstDir, name), src, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// lintMutant copies the package at pkgRel (module-relative), mutates it,
// and lints the copy exactly as `make lint` would: default config, full
// analyzer suite.
func lintMutant(t *testing.T, pkgRel, importPath string, mutate func(name string, src []byte) []byte) []Diagnostic {
	t.Helper()
	root := moduleRoot(t)
	tmp, err := os.MkdirTemp(filepath.Join(root, "internal", "lint", "testdata"), "mut-*")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(tmp) })
	copyPackage(t, filepath.Join(root, filepath.FromSlash(pkgRel)), tmp, mutate)
	p, err := testLoader().LoadDir(tmp, importPath)
	if err != nil {
		t.Fatalf("mutant %s failed to load: %v", importPath, err)
	}
	return p.Lint(DefaultConfig(), Analyzers())
}

// replaceOnce asserts the mutation actually applied — a silent no-op
// replacement would make the kill assertion vacuous.
func replaceOnce(t *testing.T, src []byte, old, new string) []byte {
	t.Helper()
	if bytes.Count(src, []byte(old)) == 0 {
		t.Fatalf("mutation anchor %q not found; the source moved under the test", old)
	}
	return bytes.Replace(src, []byte(old), []byte(new), 1)
}

// requireFinding asserts a diagnostic of the check, in the file, whose
// message contains want — with a real position, since the acceptance bar
// is a file:line the developer can jump to.
func requireFinding(t *testing.T, diags []Diagnostic, check, file, want string) {
	t.Helper()
	for _, d := range diags {
		if d.Check == check && filepath.Base(d.Pos.Filename) == file && strings.Contains(d.Message, want) {
			if d.Pos.Line <= 0 {
				t.Fatalf("finding has no line: %s", d)
			}
			return
		}
	}
	t.Fatalf("no [%s] finding in %s containing %q; got %v", check, file, want, diags)
}

// TestMutationControl proves the unmutated copies lint clean under the
// default config — the baseline that gives the kill tests their meaning.
func TestMutationControl(t *testing.T) {
	if testing.Short() {
		t.Skip("package copies re-type-check the module; skipped with -short")
	}
	for _, c := range []struct{ pkgRel, importPath string }{
		{"internal/serve", "mut/internal/serve"},
		{"internal/risk", "mut/internal/risk"},
	} {
		if diags := lintMutant(t, c.pkgRel, c.importPath, nil); len(diags) != 0 {
			t.Errorf("control copy of %s must lint clean, got %v", c.pkgRel, diags)
		}
	}
}

// TestMutationUnpairedAcquire deletes one handler's deferred release:
// the pairing analyzer must report the acquire as leaking.
func TestMutationUnpairedAcquire(t *testing.T) {
	if testing.Short() {
		t.Skip("package copies re-type-check the module; skipped with -short")
	}
	diags := lintMutant(t, "internal/serve", "mut/internal/serve", func(name string, src []byte) []byte {
		if name != "api.go" {
			return src
		}
		return replaceOnce(t, src, "\tdefer s.release(sn)\n", "")
	})
	requireFinding(t, diags, "pairing", "api.go", "snapshot reference acquired by Server.acquire is not released on every path")
}

// TestMutationMissingUnpin deletes the Unpin inside Server.release: the
// MustCall contract must report the hollowed-out release endpoint.
func TestMutationMissingUnpin(t *testing.T) {
	if testing.Short() {
		t.Skip("package copies re-type-check the module; skipped with -short")
	}
	diags := lintMutant(t, "internal/serve", "mut/internal/serve", func(name string, src []byte) []byte {
		if name != "server.go" {
			return src
		}
		return replaceOnce(t, src, "\t\tsn.file.Unpin()\n", "")
	})
	requireFinding(t, diags, "pairing", "server.go", "no longer calls CSRFile.Unpin")
}

// TestMutationOutOfShardWrite injects a write at the exclusive bound
// into risk's NetworkSweep worker: the shardsafety analyzer must flag
// the out-of-shard index.
func TestMutationOutOfShardWrite(t *testing.T) {
	if testing.Short() {
		t.Skip("package copies re-type-check the module; skipped with -short")
	}
	diags := lintMutant(t, "internal/risk", "mut/internal/risk", func(name string, src []byte) []byte {
		if name != "sweep.go" {
			return src
		}
		return replaceOnce(t, src,
			"initShard(g, attrs, sig, lo, hi)\n",
			"initShard(g, attrs, sig, lo, hi)\n\t\tsig[hi] = 0\n")
	})
	requireFinding(t, diags, "shardsafety", "sweep.go", `writes captured "sig" outside its owned shard`)
}
