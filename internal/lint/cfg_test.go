package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses a function body snippet into its AST. The CFG builder
// works without type information (info == nil), so the shapes tests stay
// self-contained.
func parseBody(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "snippet.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse %q: %v", body, err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

// blockOf finds the block holding a call statement to the named function
// (markers like a(), b() in the snippets). Fails the test if absent.
func blockOf(t *testing.T, c *CFG, name string) *Block {
	t.Helper()
	for _, b := range c.Blocks {
		for _, s := range b.Stmts {
			found := false
			// The block-local view: container bodies (range/switch/select)
			// live in their own blocks, so don't look inside them here.
			shallowInspect(s, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
						found = true
						return false
					}
				}
				return true
			})
			if found {
				return b
			}
		}
	}
	t.Fatalf("no block contains a call to %s()", name)
	return nil
}

func TestCFGStraightLine(t *testing.T) {
	c := buildCFG(parseBody(t, "a()\nb()"), nil)
	live := reachableFrom(c.Entry)
	if !live[c.Exit] {
		t.Error("exit must be reachable")
	}
	if live[c.Panic] {
		t.Error("panic sink must be unreachable without panic-shaped calls")
	}
	if len(c.loopBlocks()) != 0 {
		t.Error("straight-line code has no loop blocks")
	}
	if blockOf(t, c, "a") != blockOf(t, c, "b") {
		t.Error("consecutive statements belong to one basic block")
	}
}

func TestCFGIfElse(t *testing.T) {
	c := buildCFG(parseBody(t, "if cond {\na()\n} else {\nb()\n}\nm()"), nil)
	live := reachableFrom(c.Entry)
	ba, bb, bm := blockOf(t, c, "a"), blockOf(t, c, "b"), blockOf(t, c, "m")
	for _, b := range []*Block{ba, bb, bm} {
		if !live[b] {
			t.Errorf("block %d must be entry-reachable", b.Index)
		}
	}
	if ba == bb {
		t.Error("then and else bodies are separate blocks")
	}
	if !reachableFrom(ba)[bm] || !reachableFrom(bb)[bm] {
		t.Error("both branches must reach the merge")
	}
	if c.Entry.Cond == nil {
		t.Error("the branching block must carry the if condition")
	}
	if got := c.Entry.Succs; len(got) != 2 || got[0] != ba || got[1] != bb {
		t.Errorf("branch successors must be ordered [true, false]")
	}
}

func TestCFGEarlyReturn(t *testing.T) {
	c := buildCFG(parseBody(t, "if cond {\nreturn\n}\na()"), nil)
	if !reachableFrom(c.Entry)[blockOf(t, c, "a")] {
		t.Error("code after a conditional return stays reachable")
	}

	c = buildCFG(parseBody(t, "return\ndead()"), nil)
	if reachableFrom(c.Entry)[blockOf(t, c, "dead")] {
		t.Error("code after an unconditional return must be unreachable")
	}
	if !reachableFrom(c.Entry)[c.Exit] {
		t.Error("the return must reach exit")
	}
}

func TestCFGForLoop(t *testing.T) {
	c := buildCFG(parseBody(t, "for i := 0; i < n; i++ {\na()\n}\nm()"), nil)
	loops := c.loopBlocks()
	if !loops[blockOf(t, c, "a")] {
		t.Error("the loop body must be on a cycle")
	}
	if loops[blockOf(t, c, "m")] {
		t.Error("code after the loop is not on a cycle")
	}
	if !reachableFrom(c.Entry)[c.Exit] {
		t.Error("a conditioned loop must reach exit")
	}
	// The body must be able to come back around to itself via the post.
	ba := blockOf(t, c, "a")
	if !reachableFrom(ba)[ba] {
		t.Error("loop body must re-reach itself")
	}
}

func TestCFGForever(t *testing.T) {
	c := buildCFG(parseBody(t, "for {\na()\n}"), nil)
	if reachableFrom(c.Entry)[c.Exit] {
		t.Error("for{} without break must not reach exit")
	}
	if !c.loopBlocks()[blockOf(t, c, "a")] {
		t.Error("for{} body is on a cycle")
	}

	c = buildCFG(parseBody(t, "for {\nif cond {\nbreak\n}\na()\n}\nm()"), nil)
	if !reachableFrom(c.Entry)[blockOf(t, c, "m")] {
		t.Error("break must make the loop exit reachable")
	}
	if !c.loopBlocks()[blockOf(t, c, "a")] {
		t.Error("the non-breaking path still forms a cycle")
	}
}

func TestCFGBreakIsNotALoop(t *testing.T) {
	// A "loop" whose body unconditionally breaks never iterates: the
	// flow-aware loop notion hotpath relies on must not include it.
	c := buildCFG(parseBody(t, "for {\na()\nbreak\n}\nm()"), nil)
	if c.loopBlocks()[blockOf(t, c, "a")] {
		t.Error("a body that always breaks is not on a cycle")
	}
	if !reachableFrom(c.Entry)[blockOf(t, c, "m")] {
		t.Error("fallthrough after the broken loop stays reachable")
	}
}

func TestCFGRange(t *testing.T) {
	c := buildCFG(parseBody(t, "for _, v := range xs {\na()\n}\nm()"), nil)
	if !c.loopBlocks()[blockOf(t, c, "a")] {
		t.Error("range body must be on a cycle")
	}
	if !reachableFrom(c.Entry)[blockOf(t, c, "m")] {
		t.Error("range loop must reach its exit")
	}
	// The RangeStmt itself lives whole in the head block.
	found := false
	for _, b := range c.Blocks {
		for _, s := range b.Stmts {
			if _, ok := s.(*ast.RangeStmt); ok {
				found = true
			}
		}
	}
	if !found {
		t.Error("the RangeStmt container must be stored in a block")
	}
}

func TestCFGSwitch(t *testing.T) {
	c := buildCFG(parseBody(t, "switch x {\ncase 1:\na()\ncase 2:\nb()\nfallthrough\ncase 3:\nd()\ndefault:\ne()\n}\nm()"), nil)
	live := reachableFrom(c.Entry)
	for _, name := range []string{"a", "b", "d", "e", "m"} {
		if !live[blockOf(t, c, name)] {
			t.Errorf("case marker %s() must be reachable", name)
		}
	}
	if !reachableFrom(blockOf(t, c, "b"))[blockOf(t, c, "d")] {
		t.Error("fallthrough must chain case 2 into case 3")
	}
	if reachableFrom(blockOf(t, c, "a"))[blockOf(t, c, "b")] {
		t.Error("case bodies without fallthrough must not chain")
	}
	if len(c.loopBlocks()) != 0 {
		t.Error("a switch is not a loop")
	}
}

func TestCFGSelect(t *testing.T) {
	c := buildCFG(parseBody(t, "select {\ncase <-ch1:\na()\ncase v := <-ch2:\nb()\n}\nm()"), nil)
	live := reachableFrom(c.Entry)
	for _, name := range []string{"a", "b", "m"} {
		if !live[blockOf(t, c, name)] {
			t.Errorf("select marker %s() must be reachable", name)
		}
	}
	if blockOf(t, c, "a") == blockOf(t, c, "b") {
		t.Error("select arms are separate blocks")
	}
}

func TestCFGDefer(t *testing.T) {
	// Defer is a straight-line statement: it stays in its block in order,
	// available to the pairing/goleak scans.
	c := buildCFG(parseBody(t, "defer a()\nb()"), nil)
	ba := blockOf(t, c, "a")
	if ba != blockOf(t, c, "b") {
		t.Error("defer shares the basic block with its neighbors")
	}
	if _, ok := ba.Stmts[0].(*ast.DeferStmt); !ok {
		t.Error("the DeferStmt must be first in the block")
	}
}

func TestCFGGotoLoop(t *testing.T) {
	c := buildCFG(parseBody(t, "i := 0\nagain:\na()\ni++\nif i < n {\ngoto again\n}\nm()"), nil)
	if !c.loopBlocks()[blockOf(t, c, "a")] {
		t.Error("a goto-formed loop is a cycle")
	}
	if !reachableFrom(c.Entry)[blockOf(t, c, "m")] {
		t.Error("the goto loop's fallthrough must stay reachable")
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	c := buildCFG(parseBody(t, "outer:\nfor {\nfor {\nif cond {\nbreak outer\n}\na()\n}\n}\nm()"), nil)
	if !reachableFrom(c.Entry)[blockOf(t, c, "m")] {
		t.Error("break outer must reach past both loops")
	}
	if !c.loopBlocks()[blockOf(t, c, "a")] {
		t.Error("the inner body is still on a cycle")
	}
}

func TestCFGPanicPath(t *testing.T) {
	c := buildCFG(parseBody(t, "a()\npanic(\"boom\")"), nil)
	live := reachableFrom(c.Entry)
	if live[c.Exit] {
		t.Error("a body ending in panic must not reach the normal exit")
	}
	if !live[c.Panic] {
		t.Error("panic must reach the panic sink")
	}

	c = buildCFG(parseBody(t, "if cond {\npanic(\"boom\")\n}\nm()"), nil)
	live = reachableFrom(c.Entry)
	if !live[c.Exit] || !live[c.Panic] {
		t.Error("a conditional panic keeps both exits reachable")
	}
	if !live[blockOf(t, c, "m")] {
		t.Error("the non-panicking path stays reachable")
	}
}
